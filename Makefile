GO ?= go

.PHONY: all build test test-short vet bench bench-lookup bench-round bench-tenant bench-dataplane bench-recovery bench-tiered bench-fabric bench-serve bench-cache bench-compare bench-all chaos experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Fault-injected Fig 8 soak: reconvergence and transactional-round
# invariants under the default and outage chaos profiles, repeated.
chaos:
	$(GO) test -run TestChaos -count=3 -v ./internal/experiments

# One benchmark per paper table/figure plus the design-choice ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Lookup fast-path benchmarks (compiled index vs linear scan) plus the
# committed BENCH_lookup.json baseline.
bench-lookup:
	$(GO) test -bench 'Lookup' -benchmem -run '^$$' ./internal/tcam
	$(GO) run ./cmd/adabench -lookup-out BENCH_lookup.json lookup

# Control-round benchmarks (incremental vs full repopulation) plus the
# committed BENCH_round.json baseline.
bench-round:
	$(GO) test -bench 'Round' -benchmem -run '^$$' ./internal/experiments
	$(GO) run ./cmd/adabench -round-out BENCH_round.json roundbench

# Multi-tenant arbitration: elastic vs static split on one shared table,
# plus the committed BENCH_tenant.json baseline.
bench-tenant:
	$(GO) test -run TenantBench -v ./internal/experiments
	$(GO) run ./cmd/adabench -tenant-out BENCH_tenant.json tenant

# Data-plane hot path: typed zero-allocation observe+eval (0 allocs/op in
# steady state) vs the pre-change baseline, plus the committed
# BENCH_dataplane.json artefact.
bench-dataplane:
	$(GO) test -bench 'ObserveEval|Dataplane' -benchmem -run '^$$' ./internal/core
	$(GO) run ./cmd/adabench -dataplane-out BENCH_dataplane.json dataplane

# Failure model v2: silent-corruption detection latency, anti-entropy
# repair writes vs full repopulation, and the arithmetic error of the
# corruption window, plus the committed BENCH_recovery.json artefact.
bench-recovery:
	$(GO) test -run TestRecoveryBenchAcceptance -v ./internal/experiments
	$(GO) run ./cmd/adabench -recovery-out BENCH_recovery.json recovery

# Tiered TCAM+SRAM store: error-vs-budget sweep extending 10× past the
# TCAM slice at unchanged ternary capacity, the fingerprint differential
# against the pure table, and the committed BENCH_tiered.json artefact.
bench-tiered:
	$(GO) test -run 'TestTieredBenchAcceptance|TestTieredDifferential' -v ./internal/experiments
	$(GO) run ./cmd/adabench -tiered-out BENCH_tiered.json tiered

# Sharded multi-switch fabric: elastic rebalancing vs static placement at
# 64 switches, the replay-scaling grid, and round latency under per-switch
# faults, plus the committed BENCH_fabric.json artefact.
bench-fabric:
	$(GO) test -run TestFabricBenchElasticBeatsStatic -v ./internal/experiments
	$(GO) run ./cmd/adabench -fabric-out BENCH_fabric.json fabric

# Service-mode soak: drift-paced control rounds vs the paper's fixed
# repopulation cadence over identical streams, with tenant churn, injected
# faults, a mid-soak crash/restart, and leak/allocation accounting, plus
# the committed BENCH_serve.json artefact.
bench-serve:
	$(GO) test -run TestServeBenchAcceptance -v ./internal/experiments
	$(GO) run ./cmd/adabench -serve-out BENCH_serve.json serve

# Lookup-cache hot path: the Zipf × cache-size sweep with cached-vs-uncached
# throughput, standalone dedup rows, the 500-round bitwise differential
# (churn, faults, crash/restart), and the committed BENCH_cache.json
# artefact. The acceptance test asserts the headline speedup and that the
# cached path stays allocation-free per batch.
bench-cache:
	$(GO) test -run TestCacheBenchAcceptance -v -timeout 30m ./internal/experiments
	$(GO) run ./cmd/adabench -cache-out BENCH_cache.json cache

# A/B comparison capture for benchstat. Run once before a change and once
# after, then diff:
#   make bench-compare OUT=before.txt
#   ...edit...
#   make bench-compare OUT=after.txt
#   benchstat before.txt after.txt
# (benchstat: go run golang.org/x/perf/cmd/benchstat@latest works too.)
OUT ?= bench.txt
bench-compare:
	$(GO) test -bench . -benchmem -count 6 -run '^$$' ./internal/tcam ./internal/core ./internal/experiments | tee $(OUT)

# All committed benchmark baselines in one go.
bench-all: bench-lookup bench-round bench-tenant bench-dataplane bench-recovery bench-tiered bench-fabric bench-serve bench-cache

# Regenerate every evaluation table/figure as text.
experiments:
	$(GO) run ./cmd/adabench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ratelimiter
	$(GO) run ./examples/rcp
	$(GO) run ./examples/heavyhitter
	$(GO) run ./examples/multitenant

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
