// Command adaserve runs the ADA control plane as a long-running service:
// tenant clones of an operation mount on one shared physical table, a
// synthetic seeded workload streams through the sharded zero-allocation
// ingest path, and the pacer triggers control rounds only when a tenant's
// traffic actually drifts — arbitrated against a per-tenant error SLO, a
// minimum round spacing, and a rolling TCAM write budget. Prometheus-format
// metrics and a health probe are served over HTTP when -listen is set.
//
// Halfway through a bounded run (-duration) the workload's operand
// distribution shifts, so a default invocation demonstrates the full loop:
// quiet steady-state ticks, a burst of drift-triggered rounds at the shift,
// then convergence back to quiet.
//
// Usage:
//
//	adaserve -duration 5s -dump-metrics
//	adaserve -op sqrt -tenants 8 -calc 48 -listen :9090
//	adaserve -duration 10s -drift 2 -staleness 500ms   # fixed-cadence baseline
//	adaserve -duration 10s -slo 0.02 -write-budget 256 -budget-window 2s
//
// Each ingest worker fronts its tenant's calculation table with a
// generation-keyed hot-key lookup cache (-lookup-cache entries per worker,
// 0 disables; see the ada_lookup_cache_* counters on /metrics).
//
// Invalid flag values (zero or negative budgets, a width outside [1, 64], a
// drift trigger or SLO below zero, a non-positive rate or batch size, a
// negative -lookup-cache, -rearm above -drift) are usage errors: adaserve reports them and exits
// with status 2; runtime failures exit 1. With -duration 0 the service runs
// until interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/serve"
	"github.com/ada-repro/ada/internal/stats"
)

// usageError is a flag or argument validation failure: the values parsed
// but make no sense. main reports it and exits 2 — the conventional
// usage-error status — while runtime failures keep exiting 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaserve:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("adaserve", flag.ContinueOnError)
	var (
		opName   = fs.String("op", "square", "operation: square, double, sqrt, log2, recip")
		width    = fs.Int("width", 12, "operand width in bits")
		monitorN = fs.Int("monitor", 12, "monitoring TCAM entries per tenant")
		calcN    = fs.Int("calc", 64, "calculation TCAM entries per tenant")
		tenants  = fs.Int("tenants", 4, "tenant clones sharing the physical table")
		shards   = fs.Int("shards", 4, "ingest worker shards")
		queue    = fs.Int("queue", 64, "per-shard queue depth in batches")
		tick     = fs.Duration("tick", 100*time.Millisecond, "pacer tick period")
		drift    = fs.Float64("drift", 0.15, "drift trigger (TV distance; > 1 disables drift = fixed cadence)")
		rearm    = fs.Float64("rearm", 0, "drift re-arm level (0 = trigger/2)")
		spacing  = fs.Duration("spacing", 100*time.Millisecond, "minimum spacing between one tenant's rounds")
		stale    = fs.Duration("staleness", 10*time.Second, "maximum staleness before a forced round (negative disables)")
		slo      = fs.Float64("slo", 0, "per-tenant mean relative error SLO (0 disables)")
		budget   = fs.Int("write-budget", 0, "TCAM row writes allowed per budget window (0 = unlimited)")
		window   = fs.Duration("budget-window", 10*time.Second, "rolling write budget window")
		listen   = fs.String("listen", "", "serve /metrics and /healthz on this address (empty = no HTTP)")
		duration = fs.Duration("duration", 0, "run this long then summarise (0 = until interrupt)")
		rate     = fs.Int("rate", 200, "ingest batches per second per tenant")
		batchN   = fs.Int("batch", 64, "operands per ingest batch")
		seed     = fs.Int64("seed", 1, "workload generator seed")
		cacheN   = fs.Int("lookup-cache", 4096, "hot-key lookup cache entries per ingest worker (0 disables)")
		dumpMet  = fs.Bool("dump-metrics", false, "write the final Prometheus exposition to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return usagef("%v", err)
	}
	switch {
	case *width < 1 || *width > 64:
		return usagef("-width must be in [1, 64], got %d", *width)
	case *monitorN < 1:
		return usagef("-monitor must be >= 1, got %d", *monitorN)
	case *calcN < 1:
		return usagef("-calc must be >= 1, got %d", *calcN)
	case *tenants < 1:
		return usagef("-tenants must be >= 1, got %d", *tenants)
	case *shards < 1:
		return usagef("-shards must be >= 1, got %d", *shards)
	case *queue < 1:
		return usagef("-queue must be >= 1, got %d", *queue)
	case *tick <= 0:
		return usagef("-tick must be positive, got %v", *tick)
	case *drift < 0:
		return usagef("-drift must be >= 0, got %v", *drift)
	case *rearm < 0 || (*rearm > *drift && *drift <= 1):
		return usagef("-rearm must be in [0, -drift], got %v", *rearm)
	case *spacing <= 0:
		return usagef("-spacing must be positive, got %v", *spacing)
	case *slo < 0:
		return usagef("-slo must be >= 0, got %v", *slo)
	case *budget < 0:
		return usagef("-write-budget must be >= 0, got %d", *budget)
	case *window <= 0:
		return usagef("-budget-window must be positive, got %v", *window)
	case *duration < 0:
		return usagef("-duration must be >= 0, got %v", *duration)
	case *rate < 1:
		return usagef("-rate must be >= 1, got %d", *rate)
	case *batchN < 1:
		return usagef("-batch must be >= 1, got %d", *batchN)
	case *cacheN < 0:
		return usagef("-lookup-cache must be >= 0, got %d", *cacheN)
	}
	ops := map[string]arith.UnaryOp{
		"square": arith.OpSquare, "double": arith.OpDouble,
		"sqrt": arith.OpSqrt, "log2": arith.OpLog2, "recip": arith.OpRecip,
	}
	op, ok := ops[*opName]
	if !ok {
		return usagef("unknown operation %q", *opName)
	}

	reg, err := core.NewRegistry(core.SharedConfig{
		Name:         "adaserve",
		TotalEntries: *tenants * *calcN,
	})
	if err != nil {
		return err
	}
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
		cfg := core.DefaultConfig(*width)
		cfg.MonitorEntries = *monitorN
		cfg.CalcEntries = *calcN
		cfg.LookupCacheEntries = *cacheN
		if _, err := reg.MountUnary(names[i], cfg, op); err != nil {
			return err
		}
	}

	srv, err := serve.NewServer(reg, serve.Config{
		Shards:            *shards,
		QueueDepth:        *queue,
		Drift:             serve.DriftConfig{Trigger: *drift, Rearm: *rearm},
		MinRoundSpacing:   *spacing,
		MaxRoundStaleness: *stale,
		ErrorSLO:          *slo,
		WriteBudget:       *budget,
		WriteBudgetWindow: *window,
		TickEvery:         *tick,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	for _, name := range names {
		if err := srv.Attach(name); err != nil {
			return err
		}
	}

	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		fmt.Fprintf(stdout, "serving http://%s/metrics and /healthz\n", ln.Addr())
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), time.Second)
			defer scancel()
			httpSrv.Shutdown(sctx)
		}()
	}

	fmt.Fprintf(stdout, "adaserve: %d %v tenants, drift trigger %v, tick %v",
		*tenants, op, *drift, *tick)
	if *duration > 0 {
		fmt.Fprintf(stdout, ", running %v", *duration)
	}
	fmt.Fprintln(stdout)

	// The load generator streams seeded batches round-robin over the
	// tenants; halfway through a bounded run the operand distribution
	// shifts so drift rounds have something to react to.
	genCtx, genStop := context.WithCancel(ctx)
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		loadgen(genCtx, srv, names, *width, *rate, *batchN, *seed, shiftAt(*duration))
	}()

	if err := srv.Run(ctx); err != nil && !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) {
		genStop()
		<-genDone
		return err
	}
	genStop()
	<-genDone
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	srv.Drain(dctx)

	summarise(stdout, srv, names)
	if *dumpMet {
		fmt.Fprintln(stdout)
		if err := srv.Metrics().WriteText(stdout); err != nil {
			return err
		}
	}
	return nil
}

// shiftAt returns the wall-clock moment the workload's distribution moves
// (zero time = never, for unbounded runs).
func shiftAt(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d / 2)
}

// loadgen streams seeded batches into the server until ctx ends. Before
// shift the operands cluster low in the domain; after it they cluster
// high — a distribution change the drift detector must catch.
func loadgen(ctx context.Context, srv *serve.Server, names []string,
	width, rate, batchN int, seed int64, shift time.Time) {
	rng := rand.New(rand.NewSource(seed))
	max := uint64(1)<<uint(width) - 1
	xs := make([]uint64, batchN)
	interval := time.Second / time.Duration(rate*len(names))
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		peak := max / 8
		if !shift.IsZero() && time.Now().After(shift) {
			peak = max - max/8
		}
		spread := max/16 + 1
		for j := range xs {
			d := int64(rng.Uint64()%spread) - int64(rng.Uint64()%spread)
			v := int64(peak) + d
			if v < 0 {
				v = 0
			}
			if v > int64(max) {
				v = int64(max)
			}
			xs[j] = uint64(v)
		}
		srv.Ingest(names[i%len(names)], xs)
	}
}

// summarise prints the per-tenant round/write/error table and the service
// totals from the metrics registry.
func summarise(stdout io.Writer, srv *serve.Server, names []string) {
	snap := srv.Metrics().Snapshot()
	get := func(name, labels string) float64 { return snap[name+labels] }
	tl := func(tenant string) string { return fmt.Sprintf(`{tenant="%s"}`, tenant) }

	tbl := stats.NewTable("Service summary by tenant",
		"tenant", "lookups", "drift rounds", "slo rounds", "stale rounds",
		"suppressed", "tcam writes", "error est")
	for _, name := range names {
		suppressed := get("ada_serve_rounds_suppressed_total",
			fmt.Sprintf(`{reason="spacing",tenant="%s"}`, name)) +
			get("ada_serve_rounds_suppressed_total",
				fmt.Sprintf(`{reason="budget",tenant="%s"}`, name))
		tbl.AddF(name,
			int(get("ada_serve_lookups_total", tl(name))),
			int(get("ada_serve_rounds_total", fmt.Sprintf(`{cause="drift",tenant="%s"}`, name))),
			int(get("ada_serve_rounds_total", fmt.Sprintf(`{cause="slo",tenant="%s"}`, name))),
			int(get("ada_serve_rounds_total", fmt.Sprintf(`{cause="staleness",tenant="%s"}`, name))),
			int(suppressed),
			int(get("ada_serve_tcam_writes_total", tl(name))),
			fmt.Sprintf("%.4f", get("ada_serve_error_estimate", tl(name))),
		)
	}
	fmt.Fprintln(stdout, tbl.String())

	var dropped float64
	for key, v := range snap {
		if strings.HasPrefix(key, "ada_serve_dropped_batches_total{") {
			dropped += v
		}
	}
	fmt.Fprintf(stdout, "ticks: %d, batches: %d, dropped: %d, degraded: %v\n",
		int(get("ada_serve_ticks_total", "")),
		int(get("ada_serve_batch_seconds_count", "")),
		int(dropped),
		srv.Degraded())
}
