package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter lets the HTTP test read partial output while run still writes.
type syncWriter struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// waitForAddr polls run's output for the "serving http://HOST:PORT/metrics"
// line and extracts the bound address.
func waitForAddr(t *testing.T, w *syncWriter) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := w.String()
		if i := strings.Index(s, "serving http://"); i >= 0 {
			rest := s[i+len("serving http://"):]
			if j := strings.Index(rest, "/metrics"); j >= 0 {
				return rest[:j]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("listener address never printed; output:\n%s", w.String())
	return ""
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestBadFlagsAreUsageErrors pins the validation sweep: flag values that
// parse but make no sense must come back as usageError (exit 2 in main),
// before any service starts.
func TestBadFlagsAreUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"zero width", []string{"-width", "0"}},
		{"width above 64", []string{"-width", "65"}},
		{"zero monitor budget", []string{"-monitor", "0"}},
		{"zero calc budget", []string{"-calc", "0"}},
		{"zero tenants", []string{"-tenants", "0"}},
		{"negative tenants", []string{"-tenants", "-3"}},
		{"zero shards", []string{"-shards", "0"}},
		{"zero queue depth", []string{"-queue", "0"}},
		{"zero tick", []string{"-tick", "0s"}},
		{"negative tick", []string{"-tick", "-100ms"}},
		{"negative drift trigger", []string{"-drift", "-0.1"}},
		{"rearm above trigger", []string{"-drift", "0.2", "-rearm", "0.5"}},
		{"negative rearm", []string{"-rearm", "-0.1"}},
		{"zero spacing", []string{"-spacing", "0s"}},
		{"negative slo", []string{"-slo", "-0.01"}},
		{"negative write budget", []string{"-write-budget", "-5"}},
		{"zero budget window", []string{"-budget-window", "0s"}},
		{"negative duration", []string{"-duration", "-1s"}},
		{"zero rate", []string{"-rate", "0"}},
		{"zero batch", []string{"-batch", "0"}},
		{"negative lookup cache", []string{"-lookup-cache", "-1"}},
		{"unknown op", []string{"-op", "cube"}},
		{"unknown flag", []string{"-no-such-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			err := run(context.Background(), tt.args, &out)
			if err == nil {
				t.Fatalf("run(%v): want usage error, got nil", tt.args)
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("run(%v): got %v (%T), want usageError", tt.args, err, err)
			}
		})
	}
}

// TestRunBoundedService runs a short real service: the summary table, the
// tick counter, and at least one control round must all appear.
func TestRunBoundedService(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-duration", "600ms", "-tick", "25ms", "-spacing", "25ms",
		"-staleness", "200ms", "-tenants", "2", "-rate", "400",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Service summary by tenant", "t00", "t01", "ticks:", "degraded: false"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "ticks: 0,") {
		t.Errorf("pacer never ticked:\n%s", s)
	}
	if strings.Contains(s, "# HELP") {
		t.Errorf("metrics dumped without -dump-metrics:\n%s", s)
	}
}

// TestRunDumpMetrics checks the -dump-metrics exposition carries the
// service's key families in Prometheus text format.
func TestRunDumpMetrics(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-duration", "300ms", "-tick", "25ms", "-spacing", "25ms",
		"-tenants", "1", "-dump-metrics",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# TYPE ada_serve_lookups_total counter",
		"# TYPE ada_serve_batch_seconds histogram",
		"# TYPE ada_serve_drift_distance gauge",
		`ada_serve_tenants 1`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in exposition:\n%s", want, s)
		}
	}
}

// TestRunCancelledContext covers the interrupt path: a cancelled parent
// context must stop an unbounded run cleanly, not error.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	var out strings.Builder
	err := run(ctx, []string{"-tick", "25ms", "-tenants", "1"}, &out)
	if err != nil {
		t.Fatalf("interrupted run returned %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Service summary by tenant") {
		t.Errorf("no summary after interrupt:\n%s", out.String())
	}
}

// TestRunHTTPListener boots the HTTP side on an ephemeral port and scrapes
// /metrics and /healthz while the service runs.
func TestRunHTTPListener(t *testing.T) {
	out := &syncWriter{b: &strings.Builder{}}
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-tick", "25ms", "-tenants", "1",
			"-duration", "2s",
		}, out)
	}()
	addr := waitForAddr(t, out)

	body := httpGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "ada_serve_ticks_total") {
		t.Errorf("/metrics missing families:\n%s", body)
	}
	if body := httpGet(t, "http://"+addr+"/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q, want ok", body)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
