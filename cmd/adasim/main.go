// Command adasim runs a packet-level network simulation scenario with a
// selectable topology, transport, and in-network application, printing
// flow-completion and port statistics.
//
// Usage:
//
//	adasim -topo leafspine -transport dctcp -app nimble -load 0.4 -duration 20ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adasim", flag.ContinueOnError)
	var (
		topoName  = fs.String("topo", "leafspine", "topology: leafspine, fattree, dumbbell, star")
		transport = fs.String("transport", "dctcp", "transport: reno, cubic, dctcp, rcp, xcp")
		app       = fs.String("app", "none", "in-network app: none, nimble, nimble-ada, rcp-ada")
		spines    = fs.Int("spines", 2, "spine count (leafspine)")
		leaves    = fs.Int("leaves", 4, "leaf count (leafspine)")
		hostsPer  = fs.Int("hosts-per-leaf", 4, "hosts per leaf (leafspine)")
		hosts     = fs.Int("hosts", 8, "host count (dumbbell: per side, star: total)")
		rateGbps  = fs.Float64("rate", 10, "link rate in Gbps")
		load      = fs.Float64("load", 0.4, "offered load fraction")
		duration  = fs.Duration("duration", 20*time.Millisecond, "flow arrival window")
		limitGbps = fs.Uint64("limit", 9, "nimble rate limit in Gbps")
		seed      = fs.Int64("seed", 1, "workload seed")
		ecnKB     = fs.Int("ecn-kb", 30, "ECN threshold in KB (0 disables)")
		arity     = fs.Int("k", 4, "fat-tree arity (fattree topology)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rateBps := *rateGbps * 1e9
	var topo *netsim.Topology
	var nHosts int
	switch *topoName {
	case "fattree":
		cfg := netsim.FatTreeConfig{K: *arity, LinkRateBps: rateBps, LinkDelay: netsim.Microsecond}
		var err error
		topo, err = netsim.BuildFatTree(cfg)
		if err != nil {
			return err
		}
		nHosts = cfg.Hosts()
	case "leafspine":
		cfg := netsim.LeafSpineConfig{
			Spines: *spines, Leaves: *leaves, HostsPerLeaf: *hostsPer,
			LinkRateBps: rateBps, LinkDelay: netsim.Microsecond,
		}
		topo = netsim.BuildLeafSpine(cfg)
		nHosts = cfg.Hosts()
	case "dumbbell":
		topo = netsim.BuildDumbbell(netsim.DumbbellConfig{
			HostsPerSide: *hosts, AccessRateBps: rateBps,
			BottleneckRateBps: rateBps, LinkDelay: netsim.Microsecond,
		})
		nHosts = 2 * *hosts
	case "star":
		topo = netsim.BuildStar(netsim.StarConfig{
			Hosts: *hosts, LinkRateBps: rateBps, LinkDelay: netsim.Microsecond,
		})
		nHosts = *hosts
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	if *ecnKB > 0 {
		topo.SetECNThreshold(*ecnKB * 1024)
	}
	net := topo.Net
	simDuration := netsim.Time(duration.Nanoseconds()) * netsim.Nanosecond

	var factory netsim.TransportFactory
	switch *transport {
	case "reno":
		factory = netsim.NewWindowTransport(netsim.Reno)
	case "cubic":
		factory = netsim.NewWindowTransport(netsim.Cubic)
	case "dctcp":
		factory = netsim.NewWindowTransport(netsim.DCTCP)
	case "rcp":
		factory = netsim.NewRCPTransport(rateBps)
	case "xcp":
		factory = netsim.NewXCPTransport()
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}

	switch *app {
	case "none":
	case "nimble", "nimble-ada":
		var a netsim.Arithmetic = netsim.IdealArith{}
		if *app == "nimble-ada" {
			ada, err := apps.NewADARateMultiplier(8, 20, 2, 12, 2)
			if err != nil {
				return err
			}
			ada.ScheduleSync(net.Sim, 500*netsim.Microsecond)
			a = ada
		}
		for _, ports := range topo.DownPorts {
			for _, p := range ports {
				nim, err := apps.NewNimble(a, *limitGbps, 400*1024)
				if err != nil {
					return err
				}
				nim.ECNThresholdBytes = 30 * 1024
				p.Filter = nim
			}
		}
	case "rcp-ada":
		ada, err := apps.NewADARCPSites(uint64(rateBps/1e6), 128, 12)
		if err != nil {
			return err
		}
		ada.ScheduleSync(net.Sim, 500*netsim.Microsecond)
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachRCPSites(net.Sim, p, ada.Sites(), 28*netsim.Microsecond)
		}
	default:
		return fmt.Errorf("unknown app %q", *app)
	}
	if *transport == "rcp" && *app == "none" {
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachRCP(net.Sim, p, netsim.IdealArith{}, 28*netsim.Microsecond)
		}
	}
	if *transport == "xcp" {
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachXCP(net.Sim, p, netsim.UniformXCPSites(netsim.IdealArith{}), 28*netsim.Microsecond)
		}
	}

	wl := netsim.DefaultWorkload(*load, simDuration, *seed)
	flows := netsim.GenerateFlows(net, nHosts, rateBps, wl)
	if len(flows) == 0 {
		return fmt.Errorf("no flows generated (check -load and -duration)")
	}
	if err := netsim.StartAll(net, flows, factory); err != nil {
		return err
	}
	net.Sim.Run(simDuration * 5)

	short := netsim.CollectFCT(net.Flows(), netsim.ShortFlows(wl.ShortMax))
	long := netsim.CollectFCT(net.Flows(), netsim.LongFlows(wl.ShortMax))
	t := stats.NewTable(
		fmt.Sprintf("adasim: %s/%s/%s, %d hosts, load %.0f%%, %d flows, %d events",
			*topoName, *transport, *app, nHosts, *load*100, len(flows), net.Sim.Processed),
		"class", "done", "unfinished", "mean FCT", "median", "p99")
	t.AddF("short", short.N, short.Unfinished, short.Mean.String(), short.Median.String(), short.P99.String())
	t.AddF("long", long.N, long.Unfinished, long.Mean.String(), long.Median.String(), long.P99.String())
	fmt.Println(t.String())
	return nil
}
