// Command adactl is the offline analogue of ADA's control plane: it reads a
// trace of operand values (one unsigned integer per line, or inline via
// -values), runs the monitoring trie to convergence, and prints the
// monitoring bins plus the calculation TCAM population it would install for
// the chosen operation — exactly what the gRPC controller pushes to the
// switch.
//
// With -faults the trace is instead replayed through the full closed-loop
// system (monitor → controller → calculation TCAM) with the switch driver
// wrapped in a deterministic fault injector, printing per-round retry and
// degradation behaviour — a command-line replay of the chaos experiments.
// Adding -audit N enables the controller's read-back audit every N rounds;
// silent row faults in the profile (corrupt=, ghost=, droprow=) are injected
// between rounds, and each audit's verdict (corrupted/ghost/missing rows and
// repair writes) is printed per round.
//
// With -fabric N the trace is instead fanned across an N-switch sharded
// fabric: -fabric-tenants clones of the operation are consistent-hashed over
// the switches (-calc is each switch's physical capacity, split equally among
// its tenants), the stream is round-robined across the tenants and replayed
// through the zero-allocation fan-out, and -fabric-workers concurrent control
// rounds run per fabric round. With -fabric-migrate M > 0 the fabric arbiter
// may migrate tenants toward spare capacity every M rounds; -faults wraps
// every switch driver in its own deterministically re-seeded injector.
//
// Usage:
//
//	adactl -op square -width 16 -monitor 12 -calc 64 < trace.txt
//	adactl -op double -values 94,94,94,47,47
//	adactl -op square -faults default < trace.txt
//	adactl -op square -faults "seed=7,write=0.2,stale=0.05" -values 9,9,9,200
//	adactl -op square -faults "seed=7,corrupt=0.5,ghost=0.2" -audit 2 < trace.txt
//	adactl -op square -fabric 8 -fabric-tenants 6 -calc 128 < trace.txt
//	adactl -op sqrt -fabric 4 -faults outages -rounds 6 < trace.txt
//
// Invalid flag values (zero or negative budgets, a width outside [1, 64], a
// threshold outside [0, 1], a malformed fault profile, a negative fabric
// size, fabric sub-flags without -fabric, -audit or a width above 32 with
// -fabric) are usage errors: adactl reports them and exits with status 2;
// runtime failures exit 1.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/fabric"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/trie"
)

// usageError is a flag or argument validation failure: the values parsed but
// make no sense (negative budgets, a threshold outside [0,1], a malformed
// fault profile). main reports it and exits 2 — the conventional usage-error
// status — while runtime failures keep exiting 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adactl:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("adactl", flag.ContinueOnError)
	var (
		opName    = fs.String("op", "square", "operation: square, double, sqrt, log2, recip")
		width     = fs.Int("width", 16, "operand width in bits")
		monitorN  = fs.Int("monitor", 12, "monitoring TCAM entries")
		calcN     = fs.Int("calc", 64, "calculation TCAM entries")
		rounds    = fs.Int("rounds", 8, "control rounds over the trace")
		thBalance = fs.Float64("th-balance", 0.20, "Algorithm 2 rebalance threshold")
		values    = fs.String("values", "", "comma-separated operand values (default: read stdin)")
		faultSpec = fs.String("faults", "", `replay through a fault-injected driver: "default", "outages", or "seed=7,write=0.05,stale=0.01,..."`)
		auditN    = fs.Int("audit", 0, "with -faults: read-back audit of the calculation TCAM every N rounds (0 = off)")
		fabricN   = fs.Int("fabric", 0, "fan the trace across an N-switch sharded fabric (0 = single-switch mode)")
		fabricT   = fs.Int("fabric-tenants", 4, "with -fabric: tenant clones consistent-hashed over the switches")
		fabricW   = fs.Int("fabric-workers", 2, "with -fabric: concurrent control rounds per fabric round")
		fabricM   = fs.Int("fabric-migrate", 2, "with -fabric: fabric arbiter migration cadence in rounds (0 = static placement)")
	)
	if err := fs.Parse(args); err != nil {
		return usagef("%v", err)
	}
	if *fabricN == 0 {
		var stray string
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "fabric-tenants", "fabric-workers", "fabric-migrate":
				stray = fl.Name
			}
		})
		if stray != "" {
			return usagef("-%s requires -fabric", stray)
		}
	}
	switch {
	case *width < 1 || *width > 64:
		return usagef("-width must be in [1, 64], got %d", *width)
	case *monitorN < 1:
		return usagef("-monitor must be >= 1, got %d", *monitorN)
	case *calcN < 1:
		return usagef("-calc must be >= 1, got %d", *calcN)
	case *rounds < 1:
		return usagef("-rounds must be >= 1, got %d", *rounds)
	case math.IsNaN(*thBalance) || *thBalance < 0 || *thBalance > 1:
		return usagef("-th-balance must be in [0, 1], got %v", *thBalance)
	case *auditN < 0:
		return usagef("-audit must be >= 0, got %d", *auditN)
	case *fabricN < 0:
		return usagef("-fabric must be >= 0, got %d", *fabricN)
	}
	if *fabricN > 0 {
		switch {
		case *fabricT < 1:
			return usagef("-fabric-tenants must be >= 1, got %d", *fabricT)
		case *fabricW < 1:
			return usagef("-fabric-workers must be >= 1, got %d", *fabricW)
		case *fabricM < 0:
			return usagef("-fabric-migrate must be >= 0, got %d", *fabricM)
		case *auditN != 0:
			return usagef("-audit is not supported with -fabric (the audit is the single-switch closed loop)")
		case *width > 32:
			return usagef("-fabric packs operands with their tenant index; -width must be <= 32, got %d", *width)
		}
	}

	ops := map[string]arith.UnaryOp{
		"square": arith.OpSquare, "double": arith.OpDouble,
		"sqrt": arith.OpSqrt, "log2": arith.OpLog2, "recip": arith.OpRecip,
	}
	op, ok := ops[*opName]
	if !ok {
		return usagef("unknown operation %q", *opName)
	}

	trace, err := readTrace(stdin, *values)
	if err != nil {
		return err
	}
	if len(trace) == 0 {
		return fmt.Errorf("empty trace")
	}

	if *fabricN > 0 {
		return runFabric(stdout, op, *width, *monitorN, *calcN, *rounds,
			*thBalance, *faultSpec, *fabricN, *fabricT, *fabricW, *fabricM, trace)
	}
	if *faultSpec != "" {
		return runFaulty(stdout, op, *width, *monitorN, *calcN, *rounds, *auditN, *thBalance, *faultSpec, trace)
	}
	if *auditN != 0 {
		return usagef("-audit requires -faults (the audit only matters when the hardware can diverge)")
	}

	tr, err := trie.NewInitial(*monitorN, *width)
	if err != nil {
		return err
	}
	chunk := (len(trace) + *rounds - 1) / *rounds
	for start := 0; start < len(trace); start += chunk {
		end := start + chunk
		if end > len(trace) {
			end = len(trace)
		}
		tr.ResetHits()
		tr.RecordAll(trace[start:end])
		for i := 0; i < 4 && tr.Rebalance(*thBalance); i++ {
		}
	}
	tr.ResetHits()
	tr.RecordAll(trace)

	mon := stats.NewTable(
		fmt.Sprintf("Monitoring TCAM (%d bins over %d-bit operands, %d samples)",
			tr.NumLeaves(), *width, len(trace)),
		"entry", "range", "hits")
	for _, b := range tr.Leaves() {
		mon.AddF(b.Prefix.String(), fmt.Sprintf("[%d, %d]", b.Prefix.Lo(), b.Prefix.Hi()), b.Hits)
	}
	fmt.Fprintln(stdout, mon.String())

	entries, err := population.ADAUnary(tr, op.Func(), *calcN, population.Midpoint)
	if err != nil {
		return err
	}
	calc := stats.NewTable(
		fmt.Sprintf("Calculation TCAM for %v (%d entries)", op, len(entries)),
		"entry", "range", "result")
	for _, e := range entries {
		calc.AddF(e.P.String(), fmt.Sprintf("[%d, %d]", e.P.Lo(), e.P.Hi()), e.Result)
	}
	fmt.Fprintln(stdout, calc.String())
	return nil
}

// runFaulty replays the trace through the closed-loop system with the
// switch driver wrapped in a seeded fault injector: chunked observe+sync
// rounds, per-round degradation reporting, and the final monitoring shape.
// With auditN > 0 the controller also read-back audits the calculation TCAM
// every auditN rounds, and silent row faults in the profile (corrupt, ghost,
// droprow) are injected between rounds so the audits have something to find.
func runFaulty(stdout io.Writer, op arith.UnaryOp, width, monitorN, calcN, rounds, auditN int,
	thBalance float64, spec string, trace []uint64) error {
	prof, err := faults.ParseProfile(spec)
	if err != nil {
		return usagef("bad -faults spec: %v", err)
	}
	inj, err := faults.New(prof)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(width)
	cfg.MonitorEntries = monitorN
	cfg.CalcEntries = calcN
	cfg.ThBalance = thBalance
	cfg.WrapDriver = inj.Wrap
	cfg.AuditEvery = auditN
	sys, err := core.NewUnary(cfg, op)
	if err != nil {
		return err
	}
	inj.AttachTable(sys.Engine().Table())
	tamper := prof.Corrupt > 0 || prof.Ghost > 0 || prof.DropRow > 0

	tbl := stats.NewTable(
		fmt.Sprintf("Fault-injected replay for %v (profile %s, %d samples, %d rounds)",
			op, prof, len(trace), rounds),
		"round", "samples", "delay", "status", "retries", "driver errors", "audit")
	chunk := (len(trace) + rounds - 1) / rounds
	degraded := 0
	var audits, mismatches, repairWrites int
	for start, round := 0, 1; start < len(trace); start, round = start+chunk, round+1 {
		end := start + chunk
		if end > len(trace) {
			end = len(trace)
		}
		for _, v := range trace[start:end] {
			sys.Observe(v)
		}
		rep, err := sys.Sync()
		if err != nil {
			return err
		}
		status := "committed"
		if rep.Degraded {
			degraded++
			status = "degraded: " + string(rep.DegradedReason)
		}
		if rep.Health == controlplane.Unhealthy {
			status += " (unhealthy)"
		}
		audit := "-"
		if rep.AuditRan {
			audits++
			mismatches += rep.Audit.Mismatched()
			repairWrites += rep.Audit.RepairWrites
			if rep.Audit.Clean() {
				audit = "clean"
			} else {
				audit = fmt.Sprintf("%dc/%dg/%dm +%dw",
					rep.Audit.Corrupted, rep.Audit.Ghost, rep.Audit.Missing, rep.Audit.RepairWrites)
			}
		}
		tbl.AddF(round, end-start, rep.Delay, status, rep.Retries, rep.DriverErrors, audit)
		// Tamper after the commit so the silent divergence is what the next
		// audit reads back, not what the populate just overwrote.
		if tamper {
			if _, err := inj.TamperStore(sys.Engine().Table()); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(stdout, tbl.String())

	st := inj.Stats()
	fmt.Fprintf(stdout,
		"injected: %d write failures, %d row failures, %d dropped / %d stale snapshots, %d outage ops, %d ack drops, %v latency\n",
		st.WriteFailures, st.RowFailures, st.SnapshotDrops, st.StaleSnapshots, st.OutageOps, st.AckDrops, st.Injected)
	if tamper {
		fmt.Fprintf(stdout, "tampered: %d corrupted, %d ghost, %d dropped rows\n",
			st.TamperedRows, st.GhostRows, st.DroppedRows)
	}
	if auditN > 0 {
		fmt.Fprintf(stdout, "audits: %d ran, %d divergent rows found, %d repair writes\n",
			audits, mismatches, repairWrites)
	}
	fmt.Fprintf(stdout, "degraded rounds: %d (last good population kept serving)\n\n", degraded)

	tr := sys.Controller().Trie()
	mon := stats.NewTable(
		fmt.Sprintf("Final monitoring TCAM (%d bins, health %v)",
			tr.NumLeaves(), sys.Controller().Health()),
		"entry", "range", "hits")
	for _, b := range tr.Leaves() {
		mon.AddF(b.Prefix.String(), fmt.Sprintf("[%d, %d]", b.Prefix.Lo(), b.Prefix.Hi()), b.Hits)
	}
	fmt.Fprintln(stdout, mon.String())
	fmt.Fprintf(stdout, "calculation TCAM: %d entries installed (generation %d)\n",
		sys.Engine().Table().Len(), sys.Engine().Table().Generation())
	return nil
}

// runFabric fans the trace across a sharded multi-switch fabric: tenant
// clones of op are consistent-hashed over the switches with equal splits of
// each switch's -calc capacity, the stream is round-robined across the
// tenants, replayed through the zero-allocation sharded fan-out, and synced
// with concurrent per-switch control rounds. With migrateEvery > 0 the
// fabric arbiter may move tenants toward spare capacity; with a fault spec
// every switch driver runs behind its own deterministically re-seeded
// injector (disarmed while the fleet mounts, so faults hit steady state).
func runFabric(stdout io.Writer, op arith.UnaryOp, width, monitorN, calcN, rounds int,
	thBalance float64, spec string, switches, tenants, workers, migrateEvery int, trace []uint64) error {
	fcfg := fabric.Config{
		Switches:      switches,
		SwitchEntries: calcN,
		Workers:       workers,
	}
	if migrateEvery > 0 {
		fcfg.Migration = fabric.MigrationConfig{Every: migrateEvery}
	}
	var injectors []*faults.Injector
	if spec != "" {
		prof, err := faults.ParseProfile(spec)
		if err != nil {
			return usagef("bad -faults spec: %v", err)
		}
		injectors = make([]*faults.Injector, switches)
		for i := range injectors {
			p := prof
			p.Seed = prof.Seed + int64(i)*101
			inj, err := faults.New(p)
			if err != nil {
				return err
			}
			inj.SetArmed(false)
			injectors[i] = inj
		}
		fcfg.WrapDriver = func(sw int, d controlplane.Driver) controlplane.Driver {
			return injectors[sw].Wrap(d)
		}
	}
	f, err := fabric.New(fcfg)
	if err != nil {
		return err
	}

	// Two-pass placement: precount the ring so each switch's capacity is
	// split equally among the tenants landing there.
	ring, err := fabric.NewRing(switches, 0)
	if err != nil {
		return err
	}
	names := make([]string, tenants)
	counts := make([]int, switches)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
		counts[ring.Place(names[i])]++
	}
	for _, name := range names {
		c := core.DefaultConfig(width)
		c.MonitorEntries = monitorN
		c.ThBalance = thBalance
		c.CalcEntries = calcN / counts[ring.Place(name)]
		if c.CalcEntries < 1 {
			c.CalcEntries = 1
		}
		if _, err := f.AddUnary(name, c, op); err != nil {
			return err
		}
	}
	for _, inj := range injectors {
		inj.SetArmed(true)
	}

	faultNote := ""
	if spec != "" {
		faultNote = ", per-switch faults"
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Fabric replay for %v (%d switches x %d tenants, %d samples, %d rounds%s)",
			op, switches, tenants, len(trace), rounds, faultNote),
		"round", "samples", "round delay", "occupied", "degraded", "migrations")

	sr := netsim.NewShardedReplay(switches, 256)
	scratch := make([]fabric.IngestScratch, workers)
	var snap []int
	route := func(p uint64) int { return snap[p>>32] }
	stream := make([]uint64, 0, (len(trace)+rounds-1)/rounds)
	ctx := context.Background()
	chunk := (len(trace) + rounds - 1) / rounds
	for start, round := 0, 1; start < len(trace); start, round = start+chunk, round+1 {
		end := min(start+chunk, len(trace))
		stream = stream[:0]
		for i, v := range trace[start:end] {
			stream = append(stream, fabric.Pack((start+i)%tenants, v))
		}
		snap = f.RouteSnapshot(snap)
		sr.Replay(workers, stream, route, func(w, shard int, batch []uint64) {
			f.ObserveEvalPacked(batch, &scratch[w], nil)
		})
		rep, err := f.SyncAll(ctx)
		if err != nil {
			return err
		}
		occupied, degraded := 0, 0
		for _, sw := range rep.Switches {
			if sw.Tenants > 0 {
				occupied++
			}
			degraded += sw.Degraded
		}
		mig := "-"
		if len(rep.Migrations) > 0 {
			parts := make([]string, len(rep.Migrations))
			for i, m := range rep.Migrations {
				parts[i] = fmt.Sprintf("%s sw%d->sw%d (%d->%d entries)",
					m.Tenant, m.From, m.To, m.OldBudget, m.NewBudget)
			}
			mig = strings.Join(parts, "; ")
		}
		tbl.AddF(round, end-start, rep.MaxDelay, occupied, degraded, mig)
	}
	fmt.Fprintln(stdout, tbl.String())

	place, budgets := f.Placement(), f.Budgets()
	occupied := make(map[int]bool, switches)
	for _, sw := range place {
		occupied[sw] = true
	}
	pt := stats.NewTable(
		fmt.Sprintf("Final placement (%d of %d switches occupied)", len(occupied), switches),
		"tenant", "switch", "entries")
	for _, name := range names {
		pt.AddF(name, fmt.Sprintf("sw%02d", place[name]), budgets[name])
	}
	fmt.Fprintln(stdout, pt.String())

	if injectors != nil {
		var writeFails, outageOps, ackDrops uint64
		var injected time.Duration
		for _, inj := range injectors {
			st := inj.Stats()
			writeFails += st.WriteFailures
			outageOps += st.OutageOps
			ackDrops += st.AckDrops
			injected += st.Injected
		}
		fmt.Fprintf(stdout,
			"injected across %d switch drivers: %d write failures, %d outage ops, %d ack drops, %v latency\n",
			switches, writeFails, outageOps, ackDrops, injected)
	}
	return nil
}

func readTrace(stdin io.Reader, inline string) ([]uint64, error) {
	var fields []string
	if inline != "" {
		fields = strings.Split(inline, ",")
	} else {
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			fields = append(fields, strings.Fields(sc.Text())...)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	out := make([]uint64, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad trace value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
