package main

import (
	"strings"
	"testing"
)

func TestRunInlineValues(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-op", "double", "-width", "8", "-monitor", "8", "-calc", "16",
		"-values", "94,94,94,94,94,94,47,47,47",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Monitoring TCAM") || !strings.Contains(s, "Calculation TCAM") {
		t.Fatalf("missing sections:\n%s", s)
	}
	if !strings.Contains(s, "2x") {
		t.Errorf("operation name missing:\n%s", s)
	}
}

func TestRunStdinTrace(t *testing.T) {
	var out strings.Builder
	trace := "10\n10 10\n12\n"
	if err := run([]string{"-op", "square", "-width", "8", "-monitor", "4", "-calc", "8"},
		strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 samples") {
		t.Errorf("sample count missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-op", "nope", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown op: want error")
	}
	if err := run([]string{"-values", ""}, strings.NewReader(""), &out); err == nil {
		t.Error("empty trace: want error")
	}
	if err := run([]string{"-values", "abc"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad value: want error")
	}
	if err := run([]string{"-width", "99", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad width: want error")
	}
}

func TestReadTraceWhitespace(t *testing.T) {
	vals, err := readTrace(strings.NewReader(" 1  2\n\n3 "), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
	vals, err = readTrace(nil, "5, 6 ,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[1] != 6 {
		t.Fatalf("inline vals = %v", vals)
	}
}
