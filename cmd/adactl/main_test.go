package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestBadFlagsAreUsageErrors pins the validation sweep: flag values that
// parse but make no sense must come back as usageError (exit 2 in main),
// before any work runs.
func TestBadFlagsAreUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"zero width", []string{"-width", "0", "-values", "1"}},
		{"negative width", []string{"-width", "-4", "-values", "1"}},
		{"width above 64", []string{"-width", "65", "-values", "1"}},
		{"zero monitor budget", []string{"-monitor", "0", "-values", "1"}},
		{"negative monitor budget", []string{"-monitor", "-12", "-values", "1"}},
		{"zero calc budget", []string{"-calc", "0", "-values", "1"}},
		{"negative calc budget", []string{"-calc", "-64", "-values", "1"}},
		{"zero rounds", []string{"-rounds", "0", "-values", "1"}},
		{"negative rounds", []string{"-rounds", "-3", "-values", "1"}},
		{"negative threshold", []string{"-th-balance", "-0.1", "-values", "1"}},
		{"threshold above one", []string{"-th-balance", "1.5", "-values", "1"}},
		{"negative audit cadence", []string{"-audit", "-2", "-faults", "default", "-values", "1"}},
		{"audit without faults", []string{"-audit", "2", "-values", "1"}},
		{"unknown op", []string{"-op", "cube", "-values", "1"}},
		{"negative fault rate", []string{"-faults", "seed=7,write=-0.5", "-values", "1"}},
		{"malformed fault spec", []string{"-faults", "bogus=1", "-values", "1"}},
		{"unknown flag", []string{"-no-such-flag", "-values", "1"}},
		{"negative fabric", []string{"-fabric", "-2", "-values", "1"}},
		{"zero fabric tenants", []string{"-fabric", "4", "-fabric-tenants", "0", "-values", "1"}},
		{"zero fabric workers", []string{"-fabric", "4", "-fabric-workers", "0", "-values", "1"}},
		{"negative migrate cadence", []string{"-fabric", "4", "-fabric-migrate", "-1", "-values", "1"}},
		{"fabric tenants without fabric", []string{"-fabric-tenants", "6", "-values", "1"}},
		{"fabric workers without fabric", []string{"-fabric-workers", "2", "-values", "1"}},
		{"fabric migrate without fabric", []string{"-fabric-migrate", "2", "-values", "1"}},
		{"audit with fabric", []string{"-fabric", "4", "-faults", "default", "-audit", "2", "-values", "1"}},
		{"fabric width above 32", []string{"-fabric", "4", "-width", "40", "-values", "1"}},
		{"bad fabric fault spec", []string{"-fabric", "4", "-faults", "bogus=1", "-values", "1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tt.args, strings.NewReader(""), &out)
			if err == nil {
				t.Fatalf("run(%v): want usage error, got nil", tt.args)
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("run(%v): got %v (%T), want usageError", tt.args, err, err)
			}
		})
	}
	// Runtime failures must NOT be usage errors: an empty trace is bad input
	// data, not bad flags.
	var out strings.Builder
	err := run([]string{"-values", ""}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatal("empty trace: want error")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("empty trace classified as usage error: %v", err)
	}
}

func TestRunInlineValues(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-op", "double", "-width", "8", "-monitor", "8", "-calc", "16",
		"-values", "94,94,94,94,94,94,47,47,47",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Monitoring TCAM") || !strings.Contains(s, "Calculation TCAM") {
		t.Fatalf("missing sections:\n%s", s)
	}
	if !strings.Contains(s, "2x") {
		t.Errorf("operation name missing:\n%s", s)
	}
}

func TestRunStdinTrace(t *testing.T) {
	var out strings.Builder
	trace := "10\n10 10\n12\n"
	if err := run([]string{"-op", "square", "-width", "8", "-monitor", "4", "-calc", "8"},
		strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 samples") {
		t.Errorf("sample count missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-op", "nope", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown op: want error")
	}
	if err := run([]string{"-values", ""}, strings.NewReader(""), &out); err == nil {
		t.Error("empty trace: want error")
	}
	if err := run([]string{"-values", "abc"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad value: want error")
	}
	if err := run([]string{"-width", "99", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad width: want error")
	}
}

func TestReadTraceWhitespace(t *testing.T) {
	vals, err := readTrace(strings.NewReader(" 1  2\n\n3 "), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
	vals, err = readTrace(nil, "5, 6 ,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[1] != 6 {
		t.Fatalf("inline vals = %v", vals)
	}
}

func TestRunWithFaultProfile(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-op", "square", "-width", "12", "-monitor", "8", "-calc", "32", "-rounds", "6",
		"-faults", "seed=7,write=0.5,stale=0.2",
		"-values", "900,900,900,900,900,900,900,12,12,3000,3000,3000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fault-injected replay", "injected:", "degraded rounds:", "Final monitoring TCAM", "calculation TCAM:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	// Equal seeds replay identically.
	var out2 strings.Builder
	if err := run([]string{
		"-op", "square", "-width", "12", "-monitor", "8", "-calc", "32", "-rounds", "6",
		"-faults", "seed=7,write=0.5,stale=0.2",
		"-values", "900,900,900,900,900,900,900,12,12,3000,3000,3000",
	}, strings.NewReader(""), &out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != s {
		t.Error("seeded fault replay not deterministic")
	}

	if err := run([]string{"-faults", "bogus=1", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad fault spec: want error")
	}
}

// fabricTrace is a deterministic mixed-range trace long enough for several
// fabric rounds.
func fabricTrace() string {
	var sb strings.Builder
	for i := 0; i < 240; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", 200+(i*137)%3300)
	}
	return sb.String()
}

func TestRunFabric(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-op", "square", "-width", "12", "-monitor", "8", "-calc", "64", "-rounds", "5",
		"-fabric", "4", "-fabric-tenants", "3", "-values", fabricTrace(),
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fabric replay", "4 switches x 3 tenants", "Final placement", "t00", "t02"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "injected across") {
		t.Errorf("fault summary printed without -faults:\n%s", s)
	}
}

func TestRunFabricWithFaults(t *testing.T) {
	args := []string{
		"-op", "sqrt", "-width", "12", "-monitor", "8", "-calc", "96", "-rounds", "4",
		"-fabric", "2", "-fabric-tenants", "4",
		"-faults", "seed=7,write=0.3,latency=300us", "-values", fabricTrace(),
	}
	var out strings.Builder
	if err := run(args, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"per-switch faults", "injected across 2 switch drivers", "write failures"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	// The injectors must actually have fired once armed: at write=0.3 over
	// four control rounds a zero count means the fault seam was bypassed.
	if strings.Contains(s, " 0 write failures") {
		t.Errorf("no write failures injected at write=0.3:\n%s", s)
	}
}

func TestRunWithAudit(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-op", "square", "-width", "12", "-monitor", "8", "-calc", "32", "-rounds", "8",
		"-faults", "seed=11,corrupt=1,ghost=0.5", "-audit", "2",
		"-values", "900,900,900,900,900,900,900,900,12,12,12,12,3000,3000,3000,3000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"audit", "tampered:", "audits:", "repair writes"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "audits: 0 ran") {
		t.Errorf("no audits ran with -audit 2 over 8 rounds:\n%s", s)
	}
	if strings.Contains(s, "audits: 0 ran") || strings.Contains(s, " 0 divergent rows") {
		t.Errorf("audits saw no divergence despite corrupt=1 tampering:\n%s", s)
	}

	// -audit without -faults is a usage error: there is no hardware to
	// diverge from the shadow in the offline path.
	if err := run([]string{"-audit", "2", "-values", "1"}, strings.NewReader(""), &out); err == nil {
		t.Error("-audit without -faults: want error")
	}
}
