package main

import "testing"

func TestRunnersRegistered(t *testing.T) {
	want := []string{"cache", "dataplane", "fabric", "fig1a", "fig1b", "fig1c", "fig5",
		"fig6", "fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10", "lookup",
		"recovery", "roundbench", "serve", "table2", "tenant", "tiered", "xcp"}
	for _, name := range want {
		if _, ok := runners[name]; !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(runners) != len(want) {
		t.Errorf("runner count = %d, want %d", len(runners), len(want))
	}
}

func TestRunFastExperiments(t *testing.T) {
	// The fast experiments must produce non-empty tables through the same
	// path main uses.
	for _, name := range []string{"fig1c", "fig6", "fig7b", "table2"} {
		out, err := runners[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name     string
		parallel int
		wantErr  bool
	}{
		{"all cores", 0, false},
		{"sequential", 1, false},
		{"many workers", 64, false},
		{"negative workers", -1, true},
		{"very negative workers", -128, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.parallel)
			if (err != nil) != tt.wantErr {
				t.Errorf("validateFlags(%d) = %v, wantErr %v", tt.parallel, err, tt.wantErr)
			}
		})
	}
}
