// Command adabench regenerates the paper's tables and figures.
//
// Usage:
//
//	adabench [-parallel N] [-zipf S] [-lookup-out FILE] [-round-out FILE] [-tenant-out FILE] [-dataplane-out FILE] [-recovery-out FILE] [-tiered-out FILE] [-fabric-out FILE] [-serve-out FILE] [-cache-out FILE] [experiment...]
//
// Experiments: cache dataplane fabric fig1a fig1b fig1c fig5 fig6 fig7a
// fig7b fig7c fig8 fig9 fig10 lookup recovery roundbench serve table2 tenant
// tiered xcp all (default: all). cache is the lookup-cache experiment: a
// Zipf-skew × cache-size sweep comparing cached vs uncached single-thread
// eval throughput (plus standalone intra-batch dedup rows), with a built-in
// differential that drives a cached and an uncached control plane through
// identical churn, faults, audits, and a crash/restart and fails on any
// bitwise divergence. serve is the service-mode soak: identical
// phase-shifting workloads run once under the drift-paced pacer (with error
// SLO and rolling TCAM write budget) and once under the paper's fixed
// repopulation cadence, comparing round counts, TCAM writes, and error
// percentiles under tenant churn, injected faults, and a mid-soak
// crash/restart. Each prints the same rows/series the paper reports;
// see EXPERIMENTS.md for the paper-vs-measured record. recovery is the
// failure model v2 experiment: silent TCAM corruption against the read-back
// audit, measuring detection latency, anti-entropy repair writes vs full
// repopulation, and the arithmetic error of the corruption window. tiered
// sweeps error vs calculation budget for the tiered TCAM+SRAM store against
// a pure TCAM table: the tiered budgets extend 10× past the TCAM slice at
// unchanged ternary capacity, and a fingerprint differential proves the
// tiering is bit-identical to the pure reference. fabric shards dozens of
// drifting tenants across a 64-switch fabric and compares elastic
// rebalancing (switch-local arbiters plus cross-switch migration) against
// static equal placement, reporting aggregate error, per-switch round
// latency under injected faults, and the replay-scaling grid.
//
// -parallel sets the replay worker count for the experiments that feed
// operand streams through the monitoring path (fig7c, fig9, dataplane,
// fabric); 0 uses all cores, 1 restores the sequential replay. Results are
// worker-count independent — register increments are commutative.
// -lookup-out writes the lookup microbenchmark rows as JSON (the committed
// BENCH_lookup.json baseline) in addition to printing the table; -round-out
// does the same for the control-round benchmark (BENCH_round.json),
// -tenant-out for the multi-tenant sharing benchmark (BENCH_tenant.json),
// -dataplane-out for the data-plane throughput benchmark
// (BENCH_dataplane.json), -recovery-out for the corruption-recovery
// benchmark (BENCH_recovery.json), -tiered-out for the tiered-store budget
// sweep (BENCH_tiered.json), -fabric-out for the sharded-fabric benchmark
// (BENCH_fabric.json), -serve-out for the service-mode soak
// (BENCH_serve.json), and -cache-out for the lookup-cache sweep
// (BENCH_cache.json).
//
// -zipf overrides the operand-stream Zipf exponent for the dataplane and
// serve experiments (0 = uniform draws; negative keeps each experiment's
// default workload); the chosen skew is recorded in the JSON rows so
// committed baselines are self-describing.
//
// Invalid flag values (e.g. a negative -parallel) are usage errors: adabench
// prints the usage text and exits with status 2; experiment failures exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/ada-repro/ada/internal/experiments"
)

var (
	parallel  = flag.Int("parallel", 0, "replay workers for fig7c/fig9/lookup (0 = all cores)")
	lookupOut = flag.String("lookup-out", "", "write lookup benchmark rows as JSON to this file")
	roundOut  = flag.String("round-out", "", "write control-round benchmark rows as JSON to this file")
	tenantOut = flag.String("tenant-out", "", "write multi-tenant sharing benchmark result as JSON to this file")
	dataOut   = flag.String("dataplane-out", "", "write data-plane throughput benchmark rows as JSON to this file")
	recovOut  = flag.String("recovery-out", "", "write corruption-recovery benchmark rows as JSON to this file")
	tieredOut = flag.String("tiered-out", "", "write tiered-store budget sweep rows as JSON to this file")
	fabricOut = flag.String("fabric-out", "", "write sharded-fabric benchmark result as JSON to this file")
	serveOut  = flag.String("serve-out", "", "write service-mode soak benchmark result as JSON to this file")
	cacheOut  = flag.String("cache-out", "", "write lookup-cache benchmark result as JSON to this file")
	zipfS     = flag.Float64("zipf", -1, "override the operand-stream Zipf exponent for dataplane and serve (0 = uniform; <0 = experiment default)")
)

// validateFlags rejects flag values that parse but make no sense; main
// treats a non-nil return as a usage error (exit 2).
func validateFlags(parallel int) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", parallel)
	}
	return nil
}

var runners = map[string]func() (string, error){
	"fig1a": func() (string, error) {
		rows, err := experiments.RunFig1a(experiments.DefaultFig1aConfig())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig1a(rows), nil
	},
	"fig1b": func() (string, error) {
		res, err := experiments.RunFig1b(experiments.DefaultFig1bConfig())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig1b(res), nil
	},
	"fig1c": func() (string, error) {
		return experiments.RenderFig1c(experiments.RunFig1c(experiments.DefaultFig1cConfig())), nil
	},
	"fig5": func() (string, error) {
		rows, err := experiments.RunFig5(experiments.DefaultFig5Config())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig5(rows), nil
	},
	"fig6": func() (string, error) {
		rows, err := experiments.RunFig6(experiments.DefaultFig6Config())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig6(rows), nil
	},
	"fig7a": func() (string, error) {
		rows, err := experiments.RunFig7a(experiments.DefaultFig7aConfig())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7a(rows), nil
	},
	"fig7b": func() (string, error) {
		return experiments.RenderFig7b(experiments.RunFig7b([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})), nil
	},
	"fig7c": func() (string, error) {
		cfg := experiments.DefaultFig7cConfig()
		cfg.Workers = *parallel
		rows, err := experiments.RunFig7c(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7c(rows), nil
	},
	"fig8": func() (string, error) {
		rows, err := experiments.RunFig8(experiments.DefaultFig8Config())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig8(rows), nil
	},
	"fig9": func() (string, error) {
		cfg := experiments.DefaultFig9Config()
		cfg.Workers = *parallel
		rows, err := experiments.RunFig9(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig9(rows), nil
	},
	"fig10": func() (string, error) {
		rows, err := experiments.RunFig10(experiments.DefaultFig10Config())
		if err != nil {
			return "", err
		}
		return experiments.RenderFig10(rows), nil
	},
	"xcp": func() (string, error) {
		rows, err := experiments.RunExtXCP(experiments.DefaultExtXCPConfig())
		if err != nil {
			return "", err
		}
		return experiments.RenderExtXCP(rows), nil
	},
	"lookup": func() (string, error) {
		cfg := experiments.DefaultLookupBenchConfig()
		if *parallel > 0 {
			cfg.Workers = []int{1, *parallel}
		}
		rows, err := experiments.RunLookupBench(cfg)
		if err != nil {
			return "", err
		}
		if *lookupOut != "" {
			if err := experiments.WriteLookupBenchJSON(*lookupOut, rows); err != nil {
				return "", err
			}
		}
		return experiments.RenderLookupBench(rows), nil
	},
	"recovery": func() (string, error) {
		rows, err := experiments.RunRecoveryBench(experiments.DefaultRecoveryBenchConfig())
		if err != nil {
			return "", err
		}
		if *recovOut != "" {
			if err := experiments.WriteRecoveryBenchJSON(*recovOut, rows); err != nil {
				return "", err
			}
		}
		return experiments.RenderRecoveryBench(rows), nil
	},
	"roundbench": func() (string, error) {
		rows, err := experiments.RunRoundBench(experiments.DefaultRoundBenchConfig())
		if err != nil {
			return "", err
		}
		if *roundOut != "" {
			if err := experiments.WriteRoundBenchJSON(*roundOut, rows); err != nil {
				return "", err
			}
		}
		return experiments.RenderRoundBench(rows), nil
	},
	"tiered": func() (string, error) {
		rows, err := experiments.RunTieredBench(experiments.DefaultTieredBenchConfig())
		if err != nil {
			return "", err
		}
		if *tieredOut != "" {
			if err := experiments.WriteTieredBenchJSON(*tieredOut, rows); err != nil {
				return "", err
			}
		}
		return experiments.RenderTieredBench(rows), nil
	},
	"fabric": func() (string, error) {
		cfg := experiments.DefaultFabricBenchConfig()
		if *parallel > 0 {
			cfg.Workers = *parallel
		}
		res, err := experiments.RunFabricBench(cfg)
		if err != nil {
			return "", err
		}
		if *fabricOut != "" {
			if err := experiments.WriteFabricBenchJSON(*fabricOut, res); err != nil {
				return "", err
			}
		}
		return experiments.RenderFabricBench(res), nil
	},
	"serve": func() (string, error) {
		cfg := experiments.DefaultServeBenchConfig()
		if *zipfS >= 0 {
			cfg.ZipfS = *zipfS
		}
		res, err := experiments.RunServeBench(cfg)
		if err != nil {
			return "", err
		}
		if *serveOut != "" {
			if err := experiments.WriteServeBenchJSON(*serveOut, res); err != nil {
				return "", err
			}
		}
		return experiments.RenderServeBench(res), nil
	},
	"tenant": func() (string, error) {
		res, err := experiments.RunTenantBench(experiments.DefaultTenantBenchConfig())
		if err != nil {
			return "", err
		}
		if *tenantOut != "" {
			if err := experiments.WriteTenantBenchJSON(*tenantOut, res); err != nil {
				return "", err
			}
		}
		return experiments.RenderTenantBench(res), nil
	},
	"dataplane": func() (string, error) {
		cfg := experiments.DefaultDataplaneBenchConfig()
		if *parallel > 0 {
			cfg.Workers = []int{1, *parallel}
		}
		if *zipfS >= 0 {
			cfg.ZipfS = *zipfS
		}
		rows, err := experiments.RunDataplaneBench(cfg)
		if err != nil {
			return "", err
		}
		if *dataOut != "" {
			if err := experiments.WriteDataplaneBenchJSON(*dataOut, rows); err != nil {
				return "", err
			}
		}
		return experiments.RenderDataplaneBench(rows), nil
	},
	"cache": func() (string, error) {
		res, err := experiments.RunCacheBench(experiments.DefaultCacheBenchConfig())
		if err != nil {
			return "", err
		}
		if *cacheOut != "" {
			if err := experiments.WriteCacheBenchJSON(*cacheOut, res); err != nil {
				return "", err
			}
		}
		return experiments.RenderCacheBench(res), nil
	},
	"table2": func() (string, error) {
		rows, err := experiments.RunTable2(experiments.DefaultTable2Config())
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(rows), nil
	},
}

func order() []string {
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adabench [experiment...]\nexperiments: %v all\n", order())
	}
	flag.Parse()
	if err := validateFlags(*parallel); err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		flag.Usage()
		os.Exit(2)
	}
	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = order()
	}
	if err := run(names); err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		os.Exit(1)
	}
}

func run(names []string) error {
	for _, name := range names {
		r, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want one of %v)", name, order())
		}
		start := time.Now()
		out, err := r()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
