module github.com/ada-repro/ada

go 1.22
