// Multitenant: a QCN-style square and a rate-limiter reciprocal share ONE
// physical calculation TCAM through core.Registry. The elastic arbiter
// watches each tenant's residual error pressure and moves entries toward
// whoever's marginal error reduction is highest — here the wide, drifting
// QCN distribution wins entries away from the near-point-mass rate limiter.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/tenant"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		width = 16  // operand width in bits
		total = 128 // physical calculation TCAM entries, shared
	)

	// One shared table; the arbiter revisits the split every 3 rounds.
	reg, err := core.NewRegistry(core.SharedConfig{
		Name:         "shared.calc",
		TotalEntries: total,
		Arbiter:      tenant.ArbiterConfig{Every: 3, Floor: 8},
	})
	if err != nil {
		return err
	}

	// Both tenants mount with an equal split (64 entries each).
	cfg := core.DefaultConfig(width)
	cfg.CalcEntries = total / 2
	cfg.MonitorEntries = 12
	qcn, err := reg.MountUnary("qcn", cfg, arith.OpSquare)
	if err != nil {
		return err
	}
	rate, err := reg.MountUnary("rate", cfg, arith.OpRecip)
	if err != nil {
		return err
	}

	// QCN sees a wide queue-occupancy distribution whose centre drifts as
	// load shifts; the rate limiter's reciprocal operand barely moves.
	rateOps := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 24, Sigma: 2}, Lo: 1, Hi: 256}, 255, 7)

	fmt.Println("round |  qcn budget  qcn err% |  rate budget  rate err% | table")
	for round := 0; round < 15; round++ {
		mu := 4000.0 + 2500.0*float64(round) // mid-run drift
		qcnOps := dist.NewIntSampler(
			dist.Truncated{D: dist.Gaussian{Mu: mu, Sigma: mu / 8}, Lo: 1, Hi: 1 << width},
			1<<width-1, int64(100+round))
		qcn.Unary().ObserveAll(qcnOps.Draw(2000))
		rate.Unary().ObserveAll(rateOps.Draw(2000))

		if _, err := reg.Sync(); err != nil {
			return err
		}

		qcnErr := arith.MeasureUnary(qcn.Unary().Engine().Eval, arith.OpSquare, qcnOps.Draw(2000))
		rateErr := arith.MeasureUnary(rate.Unary().Engine().Eval, arith.OpRecip, rateOps.Draw(2000))
		fmt.Printf("%5d | %10d %9.3f%% | %11d %9.3f%% | %d/%d entries\n",
			round, qcn.Budget(), qcnErr.AvgPercent(),
			rate.Budget(), rateErr.AvgPercent(),
			reg.Table().Len(), total)
	}

	fmt.Println("\nBoth tenants answer out of the same physical table:")
	for _, x := range []uint64{30000, 35000} {
		got, err := qcn.Unary().Lookup(x)
		if err != nil {
			return err
		}
		fmt.Printf("  qcn(%d²) = %d (exact %d, error %.3f%%)\n",
			x, got, x*x, arith.RelError(got, x*x)*100)
	}
	if got, err := rate.Unary().Lookup(24); err == nil {
		fmt.Printf("  rate(1/24 · 2^%d) = %d\n", width, got)
	}
	if err := reg.Partition().Validate(); err != nil {
		return fmt.Errorf("partition invariants violated: %w", err)
	}
	fmt.Println("partition invariants hold: disjoint bands, no overflow")
	return nil
}
