// Heavyhitter: a PRECISION-style heavy-hitter detector whose mean-square-
// error computation needs x² — an operation the switch ALU lacks. The
// squares run through a calculation TCAM; this example compares the MSE
// estimate under exact arithmetic, a naive TCAM population, and an
// ADA-adapted population trained on the observed deviations.
//
//	go run ./examples/heavyhitter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/population"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		width  = 16
		budget = 48
		slots  = 64
	)
	rng := rand.New(rand.NewSource(3))

	// Traffic: a few elephants among many mice.
	observe := func(h *apps.HeavyHitter) {
		for i := 0; i < 60000; i++ {
			switch {
			case i%3 == 0:
				h.Observe(7) // elephant
			case i%7 == 0:
				h.Observe(13) // second elephant
			default:
				h.Observe(100 + rng.Intn(400))
			}
		}
	}

	// Exact reference.
	exactH, err := apps.NewHeavyHitter(slots, nil)
	if err != nil {
		return err
	}
	observe(exactH)
	exactMSE := exactH.MSE()

	// Naive TCAM squares.
	naiveEntries, err := population.NaiveUnary(arith.OpSquare.Func(), width, budget, population.Midpoint)
	if err != nil {
		return err
	}
	naiveSq, err := arith.NewUnaryEngine("hh.naive", width, budget, naiveEntries)
	if err != nil {
		return err
	}
	rng = rand.New(rand.NewSource(3))
	naiveH, err := apps.NewHeavyHitter(slots, naiveSq)
	if err != nil {
		return err
	}
	observe(naiveH)

	// ADA squares: train the monitor on the deviations the sketch actually
	// produces, then adapt.
	cfg := core.DefaultConfig(width)
	cfg.CalcEntries = budget
	cfg.MonitorEntries = 12
	sys, err := core.NewUnary(cfg, arith.OpSquare)
	if err != nil {
		return err
	}
	rng = rand.New(rand.NewSource(3))
	adaH, err := apps.NewHeavyHitter(slots, sys.Engine())
	if err != nil {
		return err
	}
	observe(adaH)
	for round := 0; round < 8; round++ {
		// Feed the deviations (|count − mean|) to the monitor with
		// per-packet frequency, as the data-plane pipeline would: a slot's
		// deviation is observed every time a packet touches it, so the
		// elephants that dominate the MSE also dominate the monitor.
		var sum uint64
		for f := 0; f < slots; f++ {
			sum += adaH.Count(f)
		}
		mean := sum / slots
		for f := 0; f < 2048; f++ {
			c := adaH.Count(f)
			if c == 0 {
				continue
			}
			d := c - mean
			if mean > c {
				d = mean - c
			}
			for reps := c / 500; reps > 0; reps-- {
				sys.Observe(d)
			}
		}
		if _, err := sys.Sync(); err != nil {
			return err
		}
	}

	fmt.Printf("exact MSE:  %12.1f\n", exactMSE)
	fmt.Printf("naive TCAM: %12.1f  (error %+.1f%%)\n", naiveH.MSE(), pct(naiveH.MSE(), exactMSE))
	fmt.Printf("ADA TCAM:   %12.1f  (error %+.1f%%)\n", adaH.MSE(), pct(adaH.MSE(), exactMSE))

	top, count := exactH.Top()
	fmt.Printf("\ntop flow: %d with %d packets (recirculations: %d)\n",
		top, count, exactH.Recirculations)
	return nil
}

func pct(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want * 100
}
