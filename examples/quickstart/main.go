// Quickstart: emulate x² on a PISA switch with a 32-entry TCAM whose
// operands are heavily skewed, and watch ADA's adaptive population beat the
// distribution-agnostic baseline at the same budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/population"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		width  = 16 // operand width in bits
		budget = 32 // calculation TCAM entries
	)

	// A queue-occupancy-like operand: 16-bit domain, but values cluster
	// tightly around 4000 (the paper's §II-B observation).
	operands := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << width},
		1<<width-1, 42)

	// ADA system: monitoring TCAM + control loop + calculation TCAM.
	cfg := core.DefaultConfig(width)
	cfg.CalcEntries = budget
	cfg.MonitorEntries = 12
	sys, err := core.NewUnary(cfg, arith.OpSquare)
	if err != nil {
		return err
	}

	// Baseline: the distribution-agnostic equal-range population of [12].
	naiveEntries, err := population.NaiveUnary(arith.OpSquare.Func(), width, budget, population.Midpoint)
	if err != nil {
		return err
	}
	naive, err := arith.NewUnaryEngine("naive", width, budget, naiveEntries)
	if err != nil {
		return err
	}

	// Data plane: every lookup monitors the operand. Control plane: Sync()
	// runs one adaptation round (the paper's gRPC controller round).
	fmt.Println("round | ADA avg err | naive avg err | monitoring bins")
	test := operands.Draw(5000)
	for round := 0; round < 10; round++ {
		for _, v := range operands.Draw(2000) {
			if _, err := sys.Lookup(v); err != nil {
				return err
			}
		}
		rep, err := sys.Sync()
		if err != nil {
			return err
		}
		adaErr := arith.MeasureUnary(sys.Engine().Eval, arith.OpSquare, test)
		naiveErr := arith.MeasureUnary(naive.Eval, arith.OpSquare, test)
		fmt.Printf("%5d | %10.4f%% | %12.4f%% | %d bins, sync took %v\n",
			round, adaErr.AvgPercent(), naiveErr.AvgPercent(),
			sys.Controller().Monitor().NumBins(), rep.Delay)
	}

	fmt.Println("\nSample lookups after adaptation:")
	for _, x := range []uint64{3800, 4000, 4200} {
		got, err := sys.Lookup(x)
		if err != nil {
			return err
		}
		exact := x * x
		fmt.Printf("  ada(%d²) = %d (exact %d, error %.3f%%)\n",
			x, got, exact, arith.RelError(got, exact)*100)
	}
	return nil
}
