// Ratelimiter: the paper's Fig 8 scenario as a runnable example. Sixteen
// DCTCP connections push through a Nimble in-network rate limiter whose
// bytes_enqueued = rate × ΔT multiplication runs on a TCAM. Mid-run the
// operator cuts the limit from 24 to 12 Gbps:
//
//   - with a frozen ("static") population, the stale table answers the new
//     rate with garbage and the limiter stops limiting;
//
//   - with ADA, the monitoring TCAM sees the new operating point and the
//     control plane repopulates within a few rounds.
//
//     go run ./examples/ratelimiter
package main

import (
	"fmt"
	"log"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type variant struct {
	name     string
	adaptive bool // keep syncing after the rate change
	useADA   bool // TCAM-backed at all (false = exact arithmetic)
}

func run() error {
	const (
		linkRate    = 40e9
		initialRate = 24 // Gbps
		changedRate = 12
		changeAt    = 3 * netsim.Millisecond
		duration    = 9 * netsim.Millisecond
	)
	variants := []variant{
		{name: "ideal (exact multiply)", useADA: false},
		{name: "static TCAM (no update)", useADA: true, adaptive: false},
		{name: "ADA (adaptive update)", useADA: true, adaptive: true},
	}
	for _, v := range variants {
		topo := netsim.BuildStar(netsim.StarConfig{
			Hosts: 2, LinkRateBps: linkRate, LinkDelay: netsim.Microsecond,
		})
		topo.SetECNThreshold(60 * 1024)
		net := topo.Net
		sim := net.Sim

		var mul netsim.Arithmetic = netsim.IdealArith{}
		var ada *apps.ADARateMultiplier
		if v.useADA {
			a, err := apps.NewADARateMultiplier(8, 20, 2, 12, 2)
			if err != nil {
				return err
			}
			ada = a
			mul = a
		}
		nim, err := apps.NewNimble(mul, initialRate, 400*1024)
		if err != nil {
			return err
		}
		nim.ECNThresholdBytes = 30 * 1024
		topo.DownPorts[1][1].Filter = nim

		meter := &netsim.ThroughputMeter{Window: 500 * netsim.Microsecond}
		meter.Attach(sim, topo.DownPorts[1][1])

		size := int(linkRate * duration.Seconds() / 8 / 16)
		for i := 0; i < 16; i++ {
			f := net.AddFlow(&netsim.Flow{Src: 0, Dst: 1, Size: size, Start: 0})
			if err := net.StartFlow(f, netsim.NewWindowTransport(netsim.DCTCP)); err != nil {
				return err
			}
		}
		if ada != nil {
			var tick func()
			tick = func() {
				if !v.adaptive && sim.Now() >= changeAt {
					return // the "without ADA" case: controller goes silent
				}
				if _, err := ada.Sync(); err != nil {
					return
				}
				sim.After(250*netsim.Microsecond, tick)
			}
			sim.After(250*netsim.Microsecond, tick)
		}
		sim.Schedule(changeAt, func() { nim.SetRateGbps(changedRate) })
		sim.Run(duration)

		fmt.Printf("%s\n  throughput (Gbps per 0.5ms):", v.name)
		for i, bps := range meter.BpsSeries {
			if i%2 == 0 {
				fmt.Printf(" %.0f", bps/1e9)
			}
		}
		fmt.Printf("\n  limiter drops: %d\n\n", nim.Drops)
	}
	fmt.Println("The limit drops 24 → 12 Gbps at t=3ms. Ideal and ADA follow it;")
	fmt.Println("the static population does not (the paper's Fig 8).")
	return nil
}
