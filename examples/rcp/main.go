// RCP: run the Rate Control Protocol on a small leaf-spine datacenter, with
// the router's rate computation (multiplications and divisions the PISA ALU
// cannot do) executed either exactly or through ADA's adaptive TCAM tables.
// Short-flow completion times should be close in both cases (the paper's
// Fig 10 claim).
//
//	go run ./examples/rcp
package main

import (
	"fmt"
	"log"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric := netsim.LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 4,
		LinkRateBps: 10e9, LinkDelay: netsim.Microsecond,
	}
	const (
		load     = 0.5
		duration = 15 * netsim.Millisecond
	)

	table := stats.NewTable("RCP on a 16-host leaf-spine fabric, load 50%",
		"arithmetic", "short flows", "unfinished", "mean FCT", "p99 FCT")

	for _, useADA := range []bool{false, true} {
		topo := netsim.BuildLeafSpine(fabric)
		net := topo.Net
		sim := net.Sim

		sites := netsim.UniformRCPSites(netsim.IdealArith{})
		name := "ideal (exact)"
		if useADA {
			// One adaptive table per arithmetic statement in the RCP update,
			// as a P4 program would lay it out.
			ada, err := apps.NewADARCPSites(uint64(fabric.LinkRateBps/1e6), 128, 12)
			if err != nil {
				return err
			}
			ada.ScheduleSync(sim, 500*netsim.Microsecond)
			sites = ada.Sites()
			name = "ADA (adaptive TCAM)"
		}
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachRCPSites(sim, p, sites, 28*netsim.Microsecond)
		}

		wl := netsim.DefaultWorkload(load, duration, 7)
		flows := netsim.GenerateFlows(net, fabric.Hosts(), fabric.LinkRateBps, wl)
		if err := netsim.StartAll(net, flows, netsim.NewRCPTransport(fabric.LinkRateBps)); err != nil {
			return err
		}
		sim.Run(duration * 5)

		short := netsim.CollectFCT(net.Flows(), netsim.ShortFlows(wl.ShortMax))
		table.AddF(name, short.N, short.Unfinished, short.Mean.String(), short.P99.String())
	}
	fmt.Println(table.String())
	return nil
}
