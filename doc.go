// Package ada is a Go reproduction of "ADA: Arithmetic Operations with
// Adaptive TCAM Population in Programmable Switches" (Malekpourshahraki,
// Stephens, Vamanan — ICDCS 2022).
//
// PISA switches cannot multiply or divide at line rate; prior work emulates
// those operations with TCAM lookup tables populated over fixed,
// distribution-agnostic operand ranges. ADA instead learns the operand
// distribution in the data plane (a monitoring TCAM whose wildcard entries
// are the leaves of a binning trie, one hit register per bin), adapts the
// trie in the control plane (splitting hot bins, merging cold ones), and
// repopulates the calculation TCAM so that frequently accessed operand
// intervals get proportionally finer entries.
//
// The implementation is organised bottom-up:
//
//   - internal/bitstr: wildcard prefix algebra (the 0^p 1 (0|1)^s x^r form)
//   - internal/tcam: ternary match tables with LPM resolution and capacity
//   - internal/dist: operand distribution generators and histograms
//   - internal/trie: the binning trie (Algorithms 1 and 2)
//   - internal/population: calculation-table population schemes (naive,
//     sig-bits, logarithmic, and ADA's Algorithm 3)
//   - internal/arith: TCAM-backed arithmetic engines and error metrics
//   - internal/monitor: the data-plane monitoring pipeline
//   - internal/controlplane: the adaptation controller and delay model
//   - internal/core: the ADA system façade (paper §III)
//   - internal/pisa: PISA pipeline constraints and resource accounting
//   - internal/netsim: a packet-level discrete-event network simulator
//   - internal/apps: Nimble, RCP arithmetic, heavy-hitter applications
//   - internal/experiments: one generator per paper table/figure
//
// bench_test.go in this directory exposes one benchmark per experiment;
// cmd/adabench prints the same series as text tables. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package ada
