package core

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/dist"
)

// BenchmarkLookup measures the per-packet data-plane path: one monitoring
// TCAM match + register increment + one calculation TCAM lookup.
func BenchmarkLookup(b *testing.B) {
	cfg := DefaultConfig(16)
	sys, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		b.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 1)
	keys := sampler.Draw(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Lookup(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSync measures one full control round: register read, Algorithm 2
// reshaping, Algorithm 3 repopulation, delta TCAM writes, register reset.
func BenchmarkSync(b *testing.B) {
	cfg := DefaultConfig(16)
	sys, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		b.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, v := range sampler.Draw(500) {
			sys.Observe(v)
		}
		b.StartTimer()
		if _, err := sys.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveEvalUnary measures the batched data-plane hot path for a
// single-operand system: one ObserveEvalAll call per iteration over a
// 1024-sample batch through caller-owned buffers. The interesting numbers
// are ns/sample (ns/op ÷ 1024) and the 0 allocs/op steady-state contract.
func BenchmarkObserveEvalUnary(b *testing.B) {
	sys, xs := warmedUnary(b, 21)
	xs = xs[:1024]
	var sc arith.Scratch
	var dst []uint64
	dst, _ = sys.ObserveEvalAll(dst, xs, &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = sys.ObserveEvalAll(dst, xs, &sc)
	}
	_ = dst
}

// BenchmarkObserveEvalBinary is the two-operand variant: both monitors
// observe and the pair stream packs into the flat two-field key buffer.
func BenchmarkObserveEvalBinary(b *testing.B) {
	sys, xs, ys := warmedBinary(b, 22)
	xs, ys = xs[:1024], ys[:1024]
	var sc arith.Scratch
	var dst []uint64
	dst, _ = sys.ObserveEvalAll(dst, xs, ys, &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = sys.ObserveEvalAll(dst, xs, ys, &sc)
	}
	_ = dst
}
