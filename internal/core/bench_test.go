package core

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/dist"
)

// BenchmarkLookup measures the per-packet data-plane path: one monitoring
// TCAM match + register increment + one calculation TCAM lookup.
func BenchmarkLookup(b *testing.B) {
	cfg := DefaultConfig(16)
	sys, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		b.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 1)
	keys := sampler.Draw(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Lookup(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSync measures one full control round: register read, Algorithm 2
// reshaping, Algorithm 3 repopulation, delta TCAM writes, register reset.
func BenchmarkSync(b *testing.B) {
	cfg := DefaultConfig(16)
	sys, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		b.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, v := range sampler.Draw(500) {
			sys.Observe(v)
		}
		b.StartTimer()
		if _, err := sys.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}
