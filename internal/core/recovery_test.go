package core

import (
	"context"
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/tcam"
)

// tamperFirstRow silently corrupts the payload of the first installed row,
// bypassing the controller shadow — the fault only a read-back audit sees.
func tamperFirstRow(t *testing.T, tb *tcam.Table) {
	t.Helper()
	digests, err := tb.ReadRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) == 0 {
		t.Fatal("empty table")
	}
	d := digests[0]
	if err := tb.TamperData(d.Fields, d.Priority, d.Data.(uint64)^0xdead); err != nil {
		t.Fatal(err)
	}
}

func TestUnarySyncAuditDetectsSilentCorruption(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = 32
	cfg.AuditEvery = 2
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 11)

	// The audit counter is checked at round start, so the first audit-due
	// round is AuditEvery+1 — and it must come back clean.
	var sawCleanAudit bool
	for i := 0; i < cfg.AuditEvery+1; i++ {
		s.ObserveAll(sampler.Draw(300))
		rep, err := s.Sync()
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if rep.AuditRan {
			sawCleanAudit = true
			if !rep.Audit.Clean() {
				t.Fatalf("clean system audit reported mismatches: %+v", rep.Audit)
			}
		}
	}
	if !sawCleanAudit {
		t.Fatal("no audit ran in the first AuditEvery rounds")
	}

	tamperFirstRow(t, s.Engine().Table())

	// The next audit-due round must detect and repair the corruption.
	var rep SyncReport
	for i := 0; i < cfg.AuditEvery+1; i++ {
		s.ObserveAll(sampler.Draw(300))
		r, err := s.Sync()
		if err != nil {
			t.Fatalf("post-tamper sync %d: %v", i, err)
		}
		if r.AuditRan && r.Audit.Mismatched() > 0 {
			rep = r
			break
		}
	}
	if !rep.AuditRan {
		t.Fatal("audit never flagged the tampered row")
	}
	if rep.Audit.Corrupted != 1 || !rep.Audit.Repaired || rep.Audit.RepairWrites != 1 {
		t.Errorf("audit = %+v, want 1 corrupted row repaired with 1 write", rep.Audit)
	}
	afp, err := s.Engine().Table().AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp != s.Engine().Table().Fingerprint() {
		t.Error("hardware still diverges from shadow after repair")
	}
}

func TestUnaryRestartRequiresJournal(t *testing.T) {
	s, err := NewUnary(DefaultConfig(16), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restart(); !errors.Is(err, ErrConfig) {
		t.Errorf("Restart without journal: %v, want ErrConfig", err)
	}
	if s.Journal() != nil {
		t.Error("journal allocated without EnableJournal")
	}
}

// TestUnaryRestartPreservesState restarts a healthy system and checks the
// recovered controller reproduces the exact data-plane state — and keeps
// adapting afterwards.
func TestUnaryRestartPreservesState(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = 48
	cfg.EnableJournal = true
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 9000, Sigma: 400}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 13)
	for i := 0; i < 6; i++ {
		s.ObserveAll(sampler.Draw(400))
		if _, err := s.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	calcFP := s.Engine().Table().Fingerprint()
	monFP := s.Controller().Monitor().Table().Fingerprint()
	oldCtl := s.Controller()

	rep, err := s.Restart()
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if rep.FullResync {
		t.Error("journaled restart fell back to full resync")
	}
	if rep.ReplayedRound != 6 {
		t.Errorf("replayed round %d, want 6", rep.ReplayedRound)
	}
	if !rep.Audit.Clean() {
		t.Errorf("recovery audit on a healthy table: %+v", rep.Audit)
	}
	if s.Controller() == oldCtl {
		t.Error("Restart did not build a fresh controller")
	}
	if got := s.Engine().Table().Fingerprint(); got != calcFP {
		t.Error("restart changed the calculation table")
	}
	if got := s.Controller().Monitor().Table().Fingerprint(); got != monFP {
		t.Error("restart changed the monitoring layout")
	}
	// The recovered controller keeps journaling and syncing.
	for i := 0; i < 3; i++ {
		s.ObserveAll(sampler.Draw(400))
		if _, err := s.Sync(); err != nil {
			t.Fatalf("post-restart sync %d: %v", i, err)
		}
	}
	if rec, ok := s.Journal().LastCommit(); !ok || rec.Round != 9 {
		t.Errorf("journal last commit = %+v %v, want round 9", rec, ok)
	}
}

func TestUnarySyncCtxCancellation(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MonitorEntries = 6
	cfg.CalcEntries = 24
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := s.SyncCtx(ctx)
	if err != nil {
		t.Fatalf("SyncCtx: %v", err)
	}
	if !rep.Degraded || rep.DegradedReason != controlplane.ReasonCancelled {
		t.Errorf("cancelled round: degraded=%v reason=%s, want cancelled", rep.Degraded, rep.DegradedReason)
	}
	// The system still works on the next (uncancelled) round.
	if rep, err := s.Sync(); err != nil || rep.Degraded {
		t.Errorf("round after cancellation: %+v, %v", rep, err)
	}
}

func TestBinaryJointAuditHealsTampering(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MonitorEntries = 6
	cfg.CalcEntries = 48
	cfg.AuditEvery = 1
	s, err := NewBinary(cfg, arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 3000, Sigma: 250}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 17)
	for i := 0; i < 2; i++ {
		s.ObserveAll(sampler.Draw(300), sampler.Draw(300))
		if _, err := s.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	tamperFirstRow(t, s.Engine().Table())

	s.ObserveAll(sampler.Draw(300), sampler.Draw(300))
	rep, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AuditRan {
		t.Fatal("joint audit did not run with AuditEvery=1")
	}
	if rep.Audit.Corrupted != 1 || !rep.Audit.Repaired {
		t.Errorf("joint audit = %+v, want 1 corrupted row repaired", rep.Audit)
	}
	afp, err := s.Engine().Table().AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp != s.Engine().Table().Fingerprint() {
		t.Error("joint table still diverges after repair")
	}
}

// TestCrashRecoveryDifferential is the PR's acceptance proof: a long chaos
// run with silent row corruption, ghost rows, dropped acks, visible driver
// faults, and injected controller crashes (journal restart mid-round) must
// converge to calculation and monitoring fingerprints identical to a
// fault-free twin fed the same traffic and budget schedule.
//
// The feed is held constant across rounds so every register snapshot — live,
// stale, or doubled across a degraded round — is an exact integer multiple
// of one round's histogram. Adaptation decisions depend only on hit
// proportions, so the faulted run walks the same trie trajectory as the
// clean twin no matter how many rounds its crashes and outages eat.
func TestCrashRecoveryDifferential(t *testing.T) {
	rounds, tail := 520, 40
	if testing.Short() {
		rounds, tail = 140, 30
	}
	build := func(mutate func(*Config)) *UnarySystem {
		cfg := DefaultConfig(16)
		cfg.MonitorEntries = 8
		cfg.MaxMonitorEntries = 8 // pin layout growth: audits, not expansion, under test
		cfg.CalcEntries = 64
		cfg.CalcCapacity = 96 // headroom so ghost rows never exhaust the hardware
		cfg.AuditEvery = 5
		cfg.EnableJournal = true
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := NewUnary(cfg, arith.OpSquare)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	in := faults.MustNew(faults.Profile{
		Seed:         4242,
		WriteFailure: 0.04,
		SnapshotDrop: 0.02,
		AckDrop:      0.05,
		CrashProb:    0.01,
		Corrupt:      0.20,
		Ghost:        0.10,
		DropRow:      0.10,
	})
	faulty := build(func(c *Config) {
		c.WrapDriver = in.Wrap
		c.CrashHook = in.CrashHook()
	})
	clean := build(nil)

	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 21000, Sigma: 900}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 77)
	feed := sampler.Draw(500) // constant per-round histogram (see doc comment)
	budgets := []int{64, 48, 56, 40}

	var restarts, degraded int
	for round := 0; round < rounds; round++ {
		if round == rounds-tail {
			// Quiesce: no new faults; pending corruption must drain through
			// the periodic audits alone.
			in.SetArmed(false)
		}
		budget := budgets[(round/20)%len(budgets)]
		if round >= rounds-tail {
			budget = budgets[0]
		}
		for _, s := range []*UnarySystem{faulty, clean} {
			if err := s.SetCalcBudget(budget); err != nil {
				t.Fatalf("round %d: SetCalcBudget: %v", round, err)
			}
		}
		if _, err := in.TamperStore(faulty.Engine().Table()); err != nil {
			t.Fatalf("round %d: tamper: %v", round, err)
		}

		faulty.ObserveAll(feed)
		clean.ObserveAll(feed)
		rep, err := faulty.Sync()
		switch {
		case errors.Is(err, controlplane.ErrCrashed):
			restarts++
			recovered := false
			for attempt := 0; attempt < 50; attempt++ {
				if _, rerr := faulty.Restart(); rerr == nil {
					recovered = true
					break
				}
			}
			if !recovered {
				t.Fatalf("round %d: recovery never succeeded in 50 attempts", round)
			}
		case err != nil:
			t.Fatalf("round %d: faulty Sync: %v", round, err)
		case rep.Degraded:
			degraded++
		}
		if _, err := clean.Sync(); err != nil {
			t.Fatalf("round %d: clean Sync: %v", round, err)
		}
	}

	st := in.Stats()
	if !testing.Short() {
		if restarts < 3 {
			t.Errorf("only %d controller restarts; acceptance needs ≥3", restarts)
		}
	} else if restarts < 1 {
		t.Error("short chaos run never crashed the controller")
	}
	if st.TamperedRows == 0 || st.GhostRows == 0 || st.DroppedRows == 0 {
		t.Errorf("silent fault schedule inert: %+v", st)
	}
	if st.AckDrops == 0 {
		t.Error("no acks dropped; schedule inert")
	}

	// Convergence: shadow, hardware, and monitoring all bit-identical to the
	// never-faulted twin.
	if got, want := faulty.Engine().Table().Fingerprint(), clean.Engine().Table().Fingerprint(); got != want {
		t.Error("calculation shadow fingerprints diverge after quiesce")
	}
	fa, err := faulty.Engine().Table().AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ca, err := clean.Engine().Table().AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != ca {
		t.Error("calculation hardware fingerprints diverge after quiesce")
	}
	if got, want := faulty.Controller().Monitor().Table().Fingerprint(), clean.Controller().Monitor().Table().Fingerprint(); got != want {
		t.Error("monitoring fingerprints diverge after quiesce")
	}
	fl, cl := faulty.Controller().Trie().Leaves(), clean.Controller().Trie().Leaves()
	if len(fl) != len(cl) {
		t.Fatalf("trie leaf counts diverge: %d vs %d", len(fl), len(cl))
	}
	for i := range fl {
		if fl[i].Prefix.Compare(cl[i].Prefix) != 0 {
			t.Fatalf("trie leaf %d diverges: %v vs %v", i, fl[i].Prefix, cl[i].Prefix)
		}
	}
	t.Logf("rounds=%d restarts=%d degraded=%d crashes=%d tampered=%d ghosts=%d dropped=%d ackdrops=%d",
		rounds, restarts, degraded, st.Crashes, st.TamperedRows, st.GhostRows, st.DroppedRows, st.AckDrops)
}
