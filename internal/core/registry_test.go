package core

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/tenant"
)

func testSharedConfig(total int, every int) SharedConfig {
	return SharedConfig{
		Name:         "shared.calc",
		TotalEntries: total,
		Arbiter:      tenant.ArbiterConfig{Every: every, Floor: 8},
	}
}

func testTenantConfig(budget int) Config {
	cfg := DefaultConfig(16)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = budget
	return cfg
}

func TestRegistryMountAndSync(t *testing.T) {
	reg, err := NewRegistry(testSharedConfig(192, 4))
	if err != nil {
		t.Fatal(err)
	}
	sq, err := reg.MountUnary("qcn", testTenantConfig(48), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := reg.MountUnary("rate", testTenantConfig(48), arith.OpRecip)
	if err != nil {
		t.Fatal(err)
	}
	mul, err := reg.MountBinary("xcp", testTenantConfig(48), arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.MountUnary("greedy", testTenantConfig(100), arith.OpDouble); err == nil {
		t.Fatal("oversubscribed mount succeeded")
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 12; round++ {
		for i := 0; i < 100; i++ {
			sq.Unary().Observe(uint64(rng.Intn(4000) + 100))
			rc.Unary().Observe(uint64(rng.Intn(200) + 1))
			mul.Binary().Observe(uint64(rng.Intn(1000)+1), uint64(rng.Intn(1000)+1))
		}
		rep, err := reg.Sync()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(rep.Tenants) != 3 {
			t.Fatalf("round %d: %d tenant reports", round, len(rep.Tenants))
		}
		if got := reg.Table().Len(); got > 192 {
			t.Fatalf("round %d: physical table %d > capacity", round, got)
		}
		if err := reg.Partition().Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sum := 0
		for _, b := range reg.Budgets() {
			sum += b
		}
		if sum > 192 {
			t.Fatalf("round %d: budgets sum %d > capacity", round, sum)
		}
	}
	// Sanity: lookups on every tenant resolve through the shared table.
	if _, err := sq.Unary().Lookup(1234); err != nil {
		t.Fatalf("square lookup: %v", err)
	}
	if _, err := mul.Binary().Lookup(30, 40); err != nil {
		t.Fatalf("mul lookup: %v", err)
	}
}

// TestRegistryArbiterShiftsBudget drives one tenant with a wide heavy
// distribution and another with a near-point mass; the elastic arbiter must
// move entries toward the hard tenant.
func TestRegistryArbiterShiftsBudget(t *testing.T) {
	reg, err := NewRegistry(testSharedConfig(128, 3))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := reg.MountUnary("hot", testTenantConfig(64), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := reg.MountUnary("cold", testTenantConfig(64), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 18; round++ {
		for i := 0; i < 300; i++ {
			hot.Unary().Observe(uint64(rng.Intn(60000) + 1)) // wide and heavy
			cold.Unary().Observe(uint64(777))                // a single point
		}
		if _, err := reg.Sync(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	b := reg.Budgets()
	if b["hot"] <= 64 {
		t.Errorf("hot tenant budget = %d, want > 64", b["hot"])
	}
	if b["cold"] >= 64 {
		t.Errorf("cold tenant budget = %d, want < 64", b["cold"])
	}
	if b["cold"] < 8 {
		t.Errorf("cold tenant budget = %d fell below floor", b["cold"])
	}
	if err := reg.Partition().Validate(); err != nil {
		t.Fatal(err)
	}
}

// diffTenant pairs a mounted tenant with a standalone mirror system that
// owns a private calculation TCAM, plus the operand stream both replay.
type diffTenant struct {
	name   string
	shared *Tenant
	mirU   *UnarySystem
	mirB   *BinarySystem
	rng    *rand.Rand
	drift  float64
}

func (d *diffTenant) observe(n int) {
	if d.mirB != nil {
		xs := make([]uint64, n)
		ys := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(d.rng.Intn(int(1000+900*d.drift)) + 1)
			ys[i] = uint64(d.rng.Intn(500) + 1)
		}
		d.shared.Binary().ObserveAll(xs, ys)
		d.mirB.ObserveAll(xs, ys)
		return
	}
	vs := make([]uint64, n)
	center := 2000 + int(30000*d.drift)
	for i := range vs {
		vs[i] = uint64(d.rng.Intn(center) + 1)
	}
	d.shared.Unary().ObserveAll(vs)
	d.mirU.ObserveAll(vs)
}

func (d *diffTenant) mirrorBudget() int {
	if d.mirB != nil {
		return d.mirB.CalcBudget()
	}
	return d.mirU.CalcBudget()
}

func (d *diffTenant) setMirrorBudget(n int) error {
	if d.mirB != nil {
		return d.mirB.SetCalcBudget(n)
	}
	return d.mirU.SetCalcBudget(n)
}

func (d *diffTenant) mirrorSync() (SyncReport, error) {
	if d.mirB != nil {
		return d.mirB.Sync()
	}
	return d.mirU.Sync()
}

func (d *diffTenant) fingerprints() (string, string) {
	if d.mirB != nil {
		return d.shared.Slice().Fingerprint(), d.mirB.Engine().Store().Fingerprint()
	}
	return d.shared.Slice().Fingerprint(), d.mirU.Engine().Store().Fingerprint()
}

// TestRegistryDifferential is the partition-safety differential: three
// tenants (two unary, one binary) share one table under the elastic arbiter
// with per-tenant fault injection, while standalone mirrors with private
// TCAMs replay the same operand streams, the same fault seeds, and the same
// budget schedule. Every round the physical table must respect capacity, the
// partition invariants must hold, and each slice's fingerprint must equal
// its mirror's — the shared table is indistinguishable from three private
// ones.
func TestRegistryDifferential(t *testing.T) {
	rounds := 500
	if testing.Short() {
		rounds = 80
	}
	const total = 256

	profile := faults.Profile{
		Seed:          11,
		WriteFailure:  0.04,
		RowFailure:    0.02,
		SnapshotDrop:  0.01,
		SnapshotStale: 0.02,
		OutageProb:    0.005,
		OutageOps:     4,
	}

	reg, err := NewRegistry(testSharedConfig(total, 5))
	if err != nil {
		t.Fatal(err)
	}

	mount := func(name string, seed int64, uop arith.UnaryOp, bop arith.BinaryOp, drift float64) *diffTenant {
		prof := profile
		prof.Seed = seed
		sharedInj := faults.MustNew(prof)
		mirrorInj := faults.MustNew(prof)

		cfg := testTenantConfig(64)
		cfg.WrapDriver = sharedInj.Wrap
		mcfg := testTenantConfig(64)
		mcfg.WrapDriver = mirrorInj.Wrap
		// The mirror's budget follows the arbiter up to the whole table, so
		// its private capacity must cover the whole table.
		mcfg.CalcCapacity = total

		d := &diffTenant{name: name, rng: rand.New(rand.NewSource(seed * 101)), drift: drift}
		if bop != 0 {
			tn, err := reg.MountBinary(name, cfg, bop)
			if err != nil {
				t.Fatal(err)
			}
			mir, err := NewBinary(mcfg, bop)
			if err != nil {
				t.Fatal(err)
			}
			d.shared, d.mirB = tn, mir
			sharedInj.AttachRows(tn.Slice())
			mirrorInj.AttachTable(mir.Engine().Table())
			return d
		}
		tn, err := reg.MountUnary(name, cfg, uop)
		if err != nil {
			t.Fatal(err)
		}
		mir, err := NewUnary(mcfg, uop)
		if err != nil {
			t.Fatal(err)
		}
		d.shared, d.mirU = tn, mir
		sharedInj.AttachRows(tn.Slice())
		mirrorInj.AttachTable(mir.Engine().Table())
		return d
	}

	tenants := []*diffTenant{
		mount("square", 5, arith.OpSquare, 0, 1.0),
		mount("recip", 6, arith.OpRecip, 0, 0.1),
		mount("mul", 7, 0, arith.OpMul, 0.6),
	}

	// Initial populations must already agree.
	for _, d := range tenants {
		if s, m := d.fingerprints(); s != m {
			t.Fatalf("tenant %s: initial fingerprint mismatch", d.name)
		}
	}

	moves := 0
	for round := 0; round < rounds; round++ {
		// The budgets in force for this round were fixed at the end of the
		// previous one; replay them onto the mirrors before their rounds.
		budgets := reg.Budgets()
		for _, d := range tenants {
			if want := budgets[d.name]; want != d.mirrorBudget() {
				if err := d.setMirrorBudget(want); err != nil {
					t.Fatalf("round %d: mirror budget %s: %v", round, d.name, err)
				}
			}
			d.observe(120)
		}
		rep, err := reg.Sync()
		if err != nil {
			t.Fatalf("round %d: shared sync: %v", round, err)
		}
		moves += len(rep.Arbiter.Moves)
		for _, d := range tenants {
			srep := rep.Tenants[d.name]
			mrep, err := d.mirrorSync()
			if err != nil {
				t.Fatalf("round %d: mirror sync %s: %v", round, d.name, err)
			}
			if srep.Degraded != mrep.Degraded {
				t.Fatalf("round %d: tenant %s degraded=%v but mirror degraded=%v",
					round, d.name, srep.Degraded, mrep.Degraded)
			}
			if s, m := d.fingerprints(); s != m {
				t.Fatalf("round %d: tenant %s fingerprint diverged from private mirror\nshared:\n%s\nmirror:\n%s",
					round, d.name, s, m)
			}
		}
		if got := reg.Table().Len(); got > total {
			t.Fatalf("round %d: physical table holds %d > capacity %d", round, got, total)
		}
		if err := reg.Partition().Validate(); err != nil {
			t.Fatalf("round %d: partition invariants: %v", round, err)
		}
		sum := 0
		for _, b := range reg.Budgets() {
			sum += b
		}
		if sum > total {
			t.Fatalf("round %d: budgets oversubscribed: %d > %d", round, sum, total)
		}
	}
	if moves == 0 {
		t.Error("arbiter applied no budget moves across the whole run")
	}
}
