package core

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/faults"
)

// drawRound generates one round of operand traffic. The distribution centre
// drifts over a repeating schedule with runs of stable rounds, so the
// differential covers heavy churn, light churn, and near-converged rounds.
func drawRound(rng *rand.Rand, round, n int) []uint64 {
	mu := float64(2000 + (round/4%13)*4800)
	sigma := 300.0
	out := make([]uint64, n)
	for i := range out {
		v := int64(mu + sigma*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		if v > 1<<16-1 {
			v = 1<<16 - 1
		}
		out[i] = uint64(v)
	}
	return out
}

// runUnaryDifferential drives an incremental and a full-repopulation unary
// system through identical traffic (and, when prof is non-nil, identical
// injected fault schedules) and requires bit-identical calculation tables
// after every round.
func runUnaryDifferential(t *testing.T, rounds int, mutate func(*Config), prof *faults.Profile) {
	t.Helper()
	build := func(disable bool) *UnarySystem {
		cfg := DefaultConfig(16)
		cfg.MonitorEntries = 8
		cfg.MaxMonitorEntries = 32
		cfg.CalcEntries = 64
		cfg.DisableIncremental = disable
		if mutate != nil {
			mutate(&cfg)
		}
		if prof != nil {
			inj := faults.MustNew(*prof)
			cfg.WrapDriver = inj.Wrap
		}
		sys, err := NewUnary(cfg, arith.OpSquare)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	inc, full := build(false), build(true)
	if inc.Engine().Table().Fingerprint() != full.Engine().Table().Fingerprint() {
		t.Fatal("initial populations differ")
	}
	rng := rand.New(rand.NewSource(1234))
	var degraded, recovered int
	var incComputed, fullComputed int
	prevDegraded := false
	for round := 0; round < rounds; round++ {
		vals := drawRound(rng, round, 400)
		inc.ObserveAll(vals)
		full.ObserveAll(vals)
		ri, err := inc.Sync()
		if err != nil {
			t.Fatalf("round %d: incremental Sync: %v", round, err)
		}
		rf, err := full.Sync()
		if err != nil {
			t.Fatalf("round %d: full Sync: %v", round, err)
		}
		if ri.Degraded != rf.Degraded {
			t.Fatalf("round %d: degraded flags diverge: incremental=%v full=%v (%s vs %s)",
				round, ri.Degraded, rf.Degraded, ri.DegradedReason, rf.DegradedReason)
		}
		if ri.Degraded {
			degraded++
		} else if prevDegraded {
			recovered++
		}
		prevDegraded = ri.Degraded
		incComputed += ri.Computed
		fullComputed += rf.Computed
		gi := inc.Engine().Table().Fingerprint()
		gf := full.Engine().Table().Fingerprint()
		if gi != gf {
			t.Fatalf("round %d: calculation tables diverge (degraded=%v)", round, ri.Degraded)
		}
	}
	if incComputed > fullComputed {
		t.Errorf("incremental computed %d entries, full %d: memo never reused",
			incComputed, fullComputed)
	}
	if prof != nil {
		if degraded == 0 {
			t.Error("chaos run produced no degraded rounds; fault schedule inert")
		}
		if recovered == 0 {
			t.Error("chaos run never recovered from a degraded round")
		}
	}
	t.Logf("rounds=%d degraded=%d recovered=%d computed incremental=%d full=%d",
		rounds, degraded, recovered, incComputed, fullComputed)
}

// TestIncrementalRoundDifferential is the ISSUE 3 acceptance differential:
// the incremental control round must be observationally identical to full
// repopulation at every churn level, across ≥1k randomized rounds.
func TestIncrementalRoundDifferential(t *testing.T) {
	rounds := 1000
	if testing.Short() {
		rounds = 150
	}
	runUnaryDifferential(t, rounds, nil, nil)
}

// TestIncrementalRoundDifferentialChaos layers an injected fault schedule on
// both systems (same seed, same call sequence → identical schedules) so the
// differential crosses degraded rounds, recovery resyncs, and rolled-back
// populates.
func TestIncrementalRoundDifferentialChaos(t *testing.T) {
	rounds := 1000
	if testing.Short() {
		rounds = 150
	}
	prof := faults.Profile{
		Seed:             5,
		WriteFailure:     0.10,
		SnapshotDrop:     0.02,
		SnapshotStale:    0.05,
		OutageProb:       0.02,
		OutageOps:        4,
		CapacityPressure: 0.03,
	}
	runUnaryDifferential(t, rounds, nil, &prof)
}

// TestIncrementalRoundDifferentialEWMA repeats the differential under the
// exponential hit-decay ablation, whose DecayHits call dirties every non-zero
// leaf each round.
func TestIncrementalRoundDifferentialEWMA(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 100
	}
	runUnaryDifferential(t, rounds, func(c *Config) { c.EWMADecay = true }, nil)
}

// TestIncrementalBinaryDifferential runs the same equivalence proof for the
// joint two-operand population, whose memo must survive the post-commit
// populate ordering (the tries commit before the joint build runs).
func TestIncrementalBinaryDifferential(t *testing.T) {
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	build := func(disable bool) *BinarySystem {
		cfg := DefaultConfig(16)
		cfg.MonitorEntries = 6
		cfg.MaxMonitorEntries = 24
		cfg.CalcEntries = 80
		cfg.DisableIncremental = disable
		sys, err := NewBinary(cfg, arith.OpMul)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	inc, full := build(false), build(true)
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		xs := drawRound(rng, round, 250)
		ys := drawRound(rng, round+7, 250)
		inc.ObserveAll(xs, ys)
		full.ObserveAll(xs, ys)
		if _, err := inc.Sync(); err != nil {
			t.Fatalf("round %d: incremental Sync: %v", round, err)
		}
		if _, err := full.Sync(); err != nil {
			t.Fatalf("round %d: full Sync: %v", round, err)
		}
		if inc.Engine().Table().Fingerprint() != full.Engine().Table().Fingerprint() {
			t.Fatalf("round %d: joint calculation tables diverge", round)
		}
	}
}
