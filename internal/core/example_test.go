package core_test

import (
	"fmt"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
)

// ExampleNewUnary shows the full ADA loop for a single-operand operation:
// per-packet lookups feed the monitor, control rounds adapt the tables.
func ExampleNewUnary() {
	cfg := core.DefaultConfig(16) // 16-bit operands, paper's §IV constants
	cfg.CalcEntries = 32
	sys, err := core.NewUnary(cfg, arith.OpSquare)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Data plane: operands cluster around 4000.
	for round := 0; round < 10; round++ {
		for v := uint64(3900); v < 4100; v++ {
			if _, err := sys.Lookup(v); err != nil {
				fmt.Println(err)
				return
			}
		}
		// Control plane: one adaptation round.
		if _, err := sys.Sync(); err != nil {
			fmt.Println(err)
			return
		}
	}
	got, err := sys.Lookup(4000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ada(4000^2) within 1%%: %v\n", arith.RelError(got, 4000*4000) < 0.01)
	// Output:
	// ada(4000^2) within 1%: true
}

// ExampleNewBinary shows a two-operand deployment (rate × ΔT).
func ExampleNewBinary() {
	cfg := core.DefaultConfig(12)
	cfg.CalcEntries = 128
	cfg.MonitorEntries = 8
	sys, err := core.NewBinary(cfg, arith.OpMul)
	if err != nil {
		fmt.Println(err)
		return
	}
	for round := 0; round < 15; round++ {
		for i := uint64(0); i < 300; i++ {
			if _, err := sys.Lookup(24, 470+i%20); err != nil {
				fmt.Println(err)
				return
			}
		}
		if _, err := sys.Sync(); err != nil {
			fmt.Println(err)
			return
		}
	}
	got, err := sys.Lookup(24, 480)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ada(24*480) within 10%%: %v\n", arith.RelError(got, 24*480) < 0.10)
	// Output:
	// ada(24*480) within 10%: true
}
