// Package core is ADA's public façade: a per-operation system that couples
// the data-plane monitoring pipeline, the control-plane adaptation loop, and
// the TCAM-backed calculation engine into the deployment unit the paper
// evaluates.
//
// A UnarySystem emulates a single-operand operation (x², 2x, √x, ...) for
// one monitored variable — the paper's ADA(R) / ADA(ΔT) configurations. A
// BinarySystem emulates a two-operand operation (x·y, x/y) with one monitor
// per operand — ADA(ΔT, R). In both, the data plane calls Lookup on every
// packet (monitor + calculation lookup at line rate) and the control plane
// calls Sync periodically (register read → Algorithm 2 → Algorithm 3 →
// table pushes).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/pisa"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// ErrConfig reports an invalid system configuration.
var ErrConfig = errors.New("core: invalid configuration")

// Config parameterises an ADA system. DefaultConfig supplies the paper's
// §IV constants.
type Config struct {
	// Width is the operand width in bits.
	Width int
	// MonitorEntries is the initial monitoring TCAM budget per variable
	// (the paper's testbed uses 12 for Nimble, 8 for Table II).
	MonitorEntries int
	// MaxMonitorEntries caps adaptive expansion (0 = 4× the initial
	// budget).
	MaxMonitorEntries int
	// CalcEntries is the calculation TCAM budget (the paper uses 128).
	CalcEntries int
	// CalcCapacity is the physical calculation-table capacity for private
	// (non-shared) systems; 0 means CalcEntries. A capacity above the
	// budget leaves headroom for later SetCalcBudget growth — the tenant
	// differential tests use it to mirror a slice whose quota moves.
	CalcCapacity int
	// TieredTCAMEntries, when positive, backs the private calculation engine
	// with a tiered TCAM+SRAM store (tcam.NewTiered) instead of a pure TCAM
	// table: the TCAM tier is bounded at this many rows and the rest of the
	// CalcEntries/CalcCapacity budget spills into a dense SRAM predecessor
	// structure with identical resolution semantics. After each committed
	// round the control plane re-ranks tier placement from the same per-bin
	// hit registers Algorithm 2 reads, keeping the hottest rows in TCAM.
	// This is how a 128-row TCAM slice serves a 1280-entry population at
	// unchanged TCAM cost. 0 keeps the pure TCAM table.
	TieredTCAMEntries int
	// ThBalance is Algorithm 2's rebalance threshold (paper: 0.20).
	ThBalance float64
	// ThExpansion is the monitoring-growth threshold (paper: 2).
	ThExpansion int
	// Representative selects the per-entry stand-in value.
	Representative population.Representative
	// Cost is the control-plane delay model.
	Cost controlplane.CostModel
	// Retry bounds the controller's retries against a flaky driver; the
	// zero value selects controlplane.DefaultRetryPolicy.
	Retry controlplane.RetryPolicy
	// UnhealthyAfter is the consecutive failed rounds before the controller
	// enters degraded mode (0 = default 3, negative = never).
	UnhealthyAfter int
	// WrapDriver, when set, wraps each controller's switch driver — the
	// hook internal/faults uses to inject failures at the wire boundary.
	WrapDriver func(controlplane.Driver) controlplane.Driver
	// DisableIncremental forces full repopulation every round: the
	// calculation target hides its incremental path, so the controller falls
	// back to PopulateCalc and Algorithm 3 runs from scratch. The end state
	// is identical either way (the differential tests prove it); this exists
	// for A/B benchmarking and as an escape hatch.
	DisableIncremental bool
	// EWMADecay selects the exponential hit-decay ablation in the
	// controller (see controlplane.Config.EWMADecay).
	EWMADecay bool
	// AuditEvery enables the periodic calculation read-back audit (see
	// controlplane.Config.AuditEvery): every Nth committed round, and after
	// any retry-exhausted round, the installed rows are read back, diffed
	// against the expected population, and repaired with a minimal
	// anti-entropy delta. 0 disables auditing.
	AuditEvery int
	// EnableJournal write-ahead logs every controller round so the system
	// can Restart after a crash and recover its commit state.
	EnableJournal bool
	// CrashHook, when set, is consulted at each controller crash point —
	// the seam internal/faults uses to inject controller crashes.
	CrashHook func(controlplane.CrashPoint) bool
	// LookupCacheEntries, when positive, arms each data-plane worker's
	// Scratch passed to ObserveEvalAll with a hot-key result cache of this
	// many slots in front of the calculation store, plus the intra-batch
	// operand dedup pass (see arith.Scratch and tcam.LookupCache). The
	// monitoring path stays fully uncached — every sample still lands in
	// its per-bin register — so drift detection and tier placement see
	// histograms bit-identical to an uncached run. 0 disables both.
	LookupCacheEntries int
}

// DefaultConfig returns the paper's parameters for width-bit operands.
func DefaultConfig(width int) Config {
	return Config{
		Width:          width,
		MonitorEntries: 12,
		CalcEntries:    128,
		ThBalance:      0.20,
		ThExpansion:    2,
		Representative: population.Midpoint,
		Cost:           controlplane.DefaultCostModel(),
	}
}

func (c *Config) normalise() error {
	if c.Width < 1 || c.Width > 64 {
		return fmt.Errorf("%w: width %d", ErrConfig, c.Width)
	}
	if c.MonitorEntries < 1 {
		return fmt.Errorf("%w: monitor entries %d", ErrConfig, c.MonitorEntries)
	}
	if c.CalcEntries < 1 {
		return fmt.Errorf("%w: calc entries %d", ErrConfig, c.CalcEntries)
	}
	if c.CalcCapacity != 0 && c.CalcCapacity < c.CalcEntries {
		return fmt.Errorf("%w: calc capacity %d below budget %d", ErrConfig, c.CalcCapacity, c.CalcEntries)
	}
	if c.TieredTCAMEntries < 0 {
		return fmt.Errorf("%w: tiered TCAM entries %d", ErrConfig, c.TieredTCAMEntries)
	}
	if c.TieredTCAMEntries > 0 {
		capacity := c.CalcEntries
		if c.CalcCapacity > 0 {
			capacity = c.CalcCapacity
		}
		if c.TieredTCAMEntries > capacity {
			return fmt.Errorf("%w: tiered TCAM slice %d above calc capacity %d",
				ErrConfig, c.TieredTCAMEntries, capacity)
		}
	}
	if c.LookupCacheEntries < 0 {
		return fmt.Errorf("%w: lookup cache entries %d", ErrConfig, c.LookupCacheEntries)
	}
	if c.MaxMonitorEntries == 0 {
		c.MaxMonitorEntries = 4 * c.MonitorEntries
	}
	if c.Representative == 0 {
		c.Representative = population.Midpoint
	}
	if c.Cost == (controlplane.CostModel{}) {
		c.Cost = controlplane.DefaultCostModel()
	}
	return nil
}

func (c Config) controllerConfig() controlplane.Config {
	return controlplane.Config{
		ThBalance:         c.ThBalance,
		ThExpansion:       c.ThExpansion,
		MonitorBudget:     c.MonitorEntries,
		MaxMonitorEntries: c.MaxMonitorEntries,
		CalcBudget:        c.CalcEntries,
		MaxRebalances:     4,
		Cost:              c.Cost,
		Retry:             c.Retry,
		UnhealthyAfter:    c.UnhealthyAfter,
		WrapDriver:        c.WrapDriver,
		EWMADecay:         c.EWMADecay,
		AuditEvery:        c.AuditEvery,
		CrashHook:         c.CrashHook,
	}
}

// journalFor allocates a controller's write-ahead journal when journaling
// is enabled (one journal per controller; a binary system has two).
func (c Config) journalFor() *controlplane.Journal {
	if !c.EnableJournal {
		return nil
	}
	return controlplane.NewJournal()
}

// SyncReport summarises one control round of a system.
type SyncReport struct {
	// Delay is the modelled control-plane convergence delay.
	Delay time.Duration
	// Reads is the register reads performed.
	Reads int
	// Writes is registers reset plus TCAM entries written.
	Writes int
	// TCAMWrites is the TCAM-row share of Writes — the scarce-resource count
	// the service layer's rolling write budget meters (register resets are
	// cheap and excluded).
	TCAMWrites int
	// Rebalances counts Algorithm 2 steps across all monitored variables.
	Rebalances int
	// Computed and Reused split the calculation entries of this round into
	// freshly evaluated versus served from the Algorithm 3 memo; a converged
	// incremental round reports Computed == 0.
	Computed int
	Reused   int
	// Expanded reports whether any monitoring TCAM grew.
	Expanded bool
	// Degraded reports that the round aborted on driver failure and the
	// last good population is still serving; DegradedReason says why.
	Degraded       bool
	DegradedReason controlplane.DegradeReason
	// Retries and DriverErrors count this round's retry activity.
	Retries      int
	DriverErrors int
	// AuditRan reports that a read-back audit ran this round; Audit carries
	// its classification and repair accounting (summed across variables).
	AuditRan bool
	Audit    controlplane.AuditReport
	// TierPlaced reports that a tiered calculation store re-ranked its row
	// placement this round; TierPromotions/TierDemotions count the rows moved
	// between the TCAM and SRAM tiers, and SRAMWrites the SRAM row writes of
	// the round (tier moves plus populate-time spills), charged at
	// CostModel.PerSRAMWrite and counted separately from Writes.
	// TierPlaceFailed flags a placement pass that errored; the moves that
	// landed before the failure are still accounted.
	TierPlaced      bool
	TierPlaceFailed bool
	TierPromotions  int
	TierDemotions   int
	SRAMWrites      int
	// Health is the controller's driver-health verdict after the round (for
	// a binary system, the worse of the two variables).
	Health controlplane.Health
}

// unaryTarget adapts the calculation engine to the controller. It carries
// the Algorithm 3 memo and a shadow record of the installed population
// (prefix → result at a trie change-sequence), which together make
// PopulateDelta's work proportional to churn instead of budget.
type unaryTarget struct {
	engine *arith.UnaryEngine
	op     arith.UnaryOp
	rep    population.Representative

	memo population.UnaryMemo
	// installed mirrors what the calculation table holds: the Results map of
	// the population build that was last committed, and the trie ChangeSeq it
	// was built at. lastVersion pins the table version that build produced —
	// any other writer (or a rollback) bumps it and forces a full reload.
	installed     map[bitstr.Prefix]uint64
	installedSeq  uint64
	haveInstalled bool
	lastVersion   uint64
}

func (t *unaryTarget) Populate(tr *trie.Trie, budget int) (int, int, error) {
	entries, err := population.ADAUnary(tr, t.op.Func(), budget, t.rep)
	if err != nil {
		return 0, 0, err
	}
	writes, err := t.engine.Reload(entries)
	if err != nil {
		return writes, len(entries), err
	}
	// Record the committed population even on the full path, so read-back
	// audits know the expected rows from the very first install.
	m := make(map[bitstr.Prefix]uint64, len(entries))
	for _, e := range entries {
		m[e.P] = e.Result
	}
	t.installed = m
	t.installedSeq = tr.ChangeSeq()
	t.haveInstalled = true
	t.lastVersion = t.engine.Store().Version()
	return writes, len(entries), nil
}

// PopulateDelta implements controlplane.DeltaTarget: memoized Algorithm 3
// followed by a delta commit against the installed population. Falls back to
// a full transactional reload whenever the shadow record cannot be trusted
// (first build, external table writes, a prior rollback).
func (t *unaryTarget) PopulateDelta(tr *trie.Trie, budget int) (int, int, int, error) {
	res, err := population.ADAUnaryMemo(tr, t.op.Func(), budget, t.rep, &t.memo)
	if err != nil {
		return 0, 0, 0, err
	}
	if !t.haveInstalled || t.engine.Store().Version() != t.lastVersion {
		writes, err := t.engine.Reload(res.Entries)
		if err != nil {
			return 0, res.Computed, res.Reused, err
		}
		t.record(res)
		return writes, res.Computed, res.Reused, nil
	}
	if t.installedSeq == res.Seq {
		// Converged round: the installed population was built at this exact
		// trie state, so there is nothing to write.
		return 0, res.Computed, res.Reused, nil
	}
	var add []population.UnaryEntry
	for _, e := range res.Entries {
		if old, ok := t.installed[e.P]; !ok || old != e.Result {
			add = append(add, e)
		}
	}
	var stale []bitstr.Prefix
	for p := range t.installed {
		if _, ok := res.Results[p]; !ok {
			stale = append(stale, p)
		}
	}
	bitstr.SortPrefixes(stale) // deterministic row order across runs
	remove := make([]population.UnaryEntry, len(stale))
	for i, p := range stale {
		remove[i] = population.UnaryEntry{P: p}
	}
	writes, err := t.engine.ReloadDelta(add, remove)
	if errors.Is(err, tcam.ErrDeltaConflict) {
		// Shadow record diverged from the table (should not happen under the
		// version guard; defensive). Resync with a full reload.
		writes, err = t.engine.Reload(res.Entries)
	}
	if err != nil {
		// The table rolled back (and bumped its version), so the next call
		// takes the full-reload path; the record still describes the table.
		return writes, res.Computed, res.Reused, err
	}
	t.record(res)
	return writes, res.Computed, res.Reused, nil
}

// record pins the shadow record to the population build just committed.
// Aliasing res.Results is safe: the memo rebuilds the map on every
// recompute instead of mutating it in place.
func (t *unaryTarget) record(res population.UnaryMemoResult) {
	t.installed = res.Results
	t.installedSeq = res.Seq
	t.haveInstalled = true
	t.lastVersion = t.engine.Store().Version()
}

// AuditCalc implements controlplane.AuditableTarget: read the calculation
// table back, classify divergence from the installed shadow record
// (corrupted / ghost / missing rows), and — when repair is set — heal it
// with the store's minimal anti-entropy delta instead of a repopulation.
func (t *unaryTarget) AuditCalc(repair bool) (controlplane.AuditReport, error) {
	if !t.haveInstalled {
		return controlplane.AuditReport{}, nil
	}
	rep, err := controlplane.AuditStore(t.engine.Store(), t.expectedRows(), repair)
	if err != nil {
		return rep, err
	}
	if rep.Repaired {
		// The repair commit bumped the store version; re-pin so the next
		// delta round trusts the (now restored) shadow record instead of
		// falling back to a full reload.
		t.lastVersion = t.engine.Store().Version()
	}
	return rep, nil
}

// expectedRows renders the installed shadow record as the physical rows the
// calculation table must hold, in deterministic prefix order.
func (t *unaryTarget) expectedRows() []tcam.Row {
	ps := make([]bitstr.Prefix, 0, len(t.installed))
	for p := range t.installed {
		ps = append(ps, p)
	}
	bitstr.SortPrefixes(ps)
	rows := make([]tcam.Row, len(ps))
	for i, p := range ps {
		rows[i] = tcam.RowFromPrefix(p, t.installed[p])
	}
	return rows
}

// plainTarget hides a target's incremental path (Config.DisableIncremental):
// the driver's type assertion fails and every round repopulates in full.
type plainTarget struct{ controlplane.Target }

// AuditCalc forwards the audit seam through the veil: DisableIncremental
// hides delta population, not crash-safety.
func (p plainTarget) AuditCalc(repair bool) (controlplane.AuditReport, error) {
	if at, ok := p.Target.(controlplane.AuditableTarget); ok {
		return at.AuditCalc(repair)
	}
	return controlplane.AuditReport{}, nil
}

// PlaceTiers forwards the tier-placement seam through the veil:
// DisableIncremental hides delta population, not the tiered store.
func (p plainTarget) PlaceTiers(tr *trie.Trie) (controlplane.TierMoves, bool, error) {
	if tp, ok := p.Target.(controlplane.TierPlacer); ok {
		return tp.PlaceTiers(tr)
	}
	return controlplane.TierMoves{}, false, nil
}

var (
	_ controlplane.DeltaTarget     = (*unaryTarget)(nil)
	_ controlplane.AuditableTarget = (*unaryTarget)(nil)
	_ controlplane.TierPlacer      = (*unaryTarget)(nil)
	_ controlplane.AuditableTarget = plainTarget{}
	_ controlplane.TierPlacer      = plainTarget{}
)

// UnarySystem is ADA deployed for a single-operand operation.
type UnarySystem struct {
	cfg    Config
	op     arith.UnaryOp
	engine *arith.UnaryEngine
	ctl    *controlplane.Controller
}

// NewUnary builds the system and installs the initial (uniform) population,
// so lookups work before the first Sync.
func NewUnary(cfg Config, op arith.UnaryOp) (*UnarySystem, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	capacity := cfg.CalcEntries
	if cfg.CalcCapacity > 0 {
		capacity = cfg.CalcCapacity
	}
	var (
		engine *arith.UnaryEngine
		err    error
	)
	if cfg.TieredTCAMEntries > 0 {
		store, terr := tcam.NewTiered(fmt.Sprintf("ada.%v.calc", op), cfg.TieredTCAMEntries, capacity, cfg.Width)
		if terr != nil {
			return nil, terr
		}
		engine, err = arith.NewUnaryEngineOn(store, nil)
	} else {
		engine, err = arith.NewUnaryEngine(fmt.Sprintf("ada.%v.calc", op), cfg.Width, capacity, nil)
	}
	if err != nil {
		return nil, err
	}
	return newUnaryOn(fmt.Sprintf("ada.%v", op), cfg, op, engine)
}

// newUnaryOn assembles a system around an existing calculation engine —
// private (NewUnary) or mounted on a tenant slice (Registry.MountUnary).
// cfg must already be normalised.
func newUnaryOn(name string, cfg Config, op arith.UnaryOp, engine *arith.UnaryEngine) (*UnarySystem, error) {
	mon, err := monitor.New(name+".mon", cfg.Width, cfg.MaxMonitorEntries)
	if err != nil {
		return nil, err
	}
	target := &unaryTarget{engine: engine, op: op, rep: cfg.Representative}
	var ctlTarget controlplane.Target = target
	if cfg.DisableIncremental {
		ctlTarget = plainTarget{target}
	}
	ccfg := cfg.controllerConfig()
	ccfg.Journal = cfg.journalFor()
	ctl, err := controlplane.New(ccfg, mon, ctlTarget)
	if err != nil {
		return nil, err
	}
	// Initial population from the uniform trie: equal entries everywhere.
	if _, _, err := target.Populate(ctl.Trie(), cfg.CalcEntries); err != nil {
		return nil, err
	}
	// The construction-time populate is not part of any round; drop its spill
	// accounting the same way its TCAM write count is dropped above.
	if ts, ok := engine.Store().(*tcam.TieredStore); ok {
		ts.TakeSRAMWrites()
	}
	return &UnarySystem{cfg: cfg, op: op, engine: engine, ctl: ctl}, nil
}

// Observe feeds one operand value to the monitoring pipeline without a
// calculation lookup.
func (s *UnarySystem) Observe(x uint64) { s.ctl.Monitor().Observe(x) }

// ObserveAll feeds a batch of operand values to the monitoring pipeline,
// resolving all of them against one compiled TCAM snapshot. It is the
// entry point the parallel replay path (internal/netsim.ReplayOperands)
// drives; safe for concurrent use.
func (s *UnarySystem) ObserveAll(xs []uint64) { s.ctl.Monitor().ObserveAll(xs) }

// ObserveEvalAll is the batched data-plane hot path: monitor the whole
// operand batch, then evaluate it, both through the typed ordinal lookup.
// Results land in dst (reused when it has the capacity) and sc's buffers
// are threaded through the calculation lookup, so a replay worker that
// recycles dst and one sc per goroutine runs allocation-free in steady
// state. dst and sc must not be shared by concurrent callers; the batches
// themselves may be observed concurrently.
func (s *UnarySystem) ObserveEvalAll(dst []uint64, xs []uint64, sc *arith.Scratch) ([]uint64, int) {
	s.ctl.Monitor().ObserveAll(xs)
	if sc != nil && s.cfg.LookupCacheEntries > 0 {
		sc.EnableCache(s.engine.Store(), s.cfg.LookupCacheEntries)
		sc.EnableDedup()
	}
	return s.engine.EvalBatchInto(dst, xs, sc)
}

// Lookup is the per-packet data-plane path: monitor the operand, then fetch
// the approximate result from the calculation TCAM.
func (s *UnarySystem) Lookup(x uint64) (uint64, error) {
	s.ctl.Monitor().Observe(x)
	return s.engine.Eval(x)
}

// Sync runs one control-plane round. Driver failures do not surface as
// errors: the report comes back Degraded with the last good population
// still serving (see the controlplane package's failure model).
func (s *UnarySystem) Sync() (SyncReport, error) {
	return s.SyncCtx(context.Background())
}

// SyncCtx is Sync with cancellation: a cancelled context aborts the round
// between driver operations (including retry backoff), and the report comes
// back Degraded with reason "cancelled".
func (s *UnarySystem) SyncCtx(ctx context.Context) (SyncReport, error) {
	rep, err := s.ctl.RoundCtx(ctx)
	if err != nil {
		return SyncReport{}, err
	}
	return SyncReport{
		Delay:           rep.Delay,
		Reads:           rep.Reads,
		Writes:          rep.RegisterWrites + rep.TCAMWrites,
		TCAMWrites:      rep.TCAMWrites,
		Rebalances:      rep.Rebalances,
		Computed:        rep.Computed,
		Reused:          rep.Reused,
		Expanded:        rep.Expanded,
		Degraded:        rep.Degraded,
		DegradedReason:  rep.DegradedReason,
		Retries:         rep.Retries,
		DriverErrors:    rep.DriverErrors,
		AuditRan:        rep.AuditRan,
		Audit:           rep.Audit,
		Health:          rep.Health,
		TierPlaced:      rep.TierPlaced,
		TierPlaceFailed: rep.TierPlaceFailed,
		TierPromotions:  rep.TierPromotions,
		TierDemotions:   rep.TierDemotions,
		SRAMWrites:      rep.SRAMWrites,
	}, nil
}

// Restart models a controller crash and restart: the data plane (monitor
// registers, calculation table) keeps serving untouched, while the
// controller's in-memory state — trie, Algorithm 3 memo, shadow record — is
// lost and rebuilt from the write-ahead journal via controlplane.Recover.
// Recovery reinstalls the journaled bin layout (zeroing the hit registers,
// as a switch table reprogram would), reconciles the calculation table with
// a minimal anti-entropy delta, and finishes with a detect-only verification
// audit folded into the report. Requires Config.EnableJournal; works whether
// or not the previous controller actually crashed.
func (s *UnarySystem) Restart() (controlplane.RecoveryReport, error) {
	j := s.ctl.Journal()
	if j == nil {
		return controlplane.RecoveryReport{}, fmt.Errorf("%w: Restart requires EnableJournal", ErrConfig)
	}
	mon := s.ctl.Monitor()
	if mon == nil {
		return controlplane.RecoveryReport{}, fmt.Errorf("%w: Restart requires an in-process monitor", ErrConfig)
	}
	target := &unaryTarget{engine: s.engine, op: s.op, rep: s.cfg.Representative}
	var ctlTarget controlplane.Target = target
	if s.cfg.DisableIncremental {
		ctlTarget = plainTarget{target}
	}
	ccfg := s.cfg.controllerConfig()
	ctl, rrep, err := controlplane.Recover(ccfg, controlplane.NewDirectDriver(mon, ctlTarget), j)
	if err != nil {
		return rrep, err
	}
	// Post-recovery verification: read the hardware back against the
	// recovered population (should be clean — the populate just reconciled).
	verify, verr := target.AuditCalc(false)
	if verr != nil {
		return rrep, fmt.Errorf("core: post-recovery audit: %w", verr)
	}
	rrep.Audit.Add(verify)
	rrep.Delay += time.Duration(verify.Audited) * s.cfg.Cost.PerRowRead
	s.ctl = ctl
	return rrep, nil
}

// Journal exposes the controller's write-ahead journal (nil when
// EnableJournal is off).
func (s *UnarySystem) Journal() *controlplane.Journal { return s.ctl.Journal() }

// Engine exposes the calculation engine (benchmarks, error measurement).
func (s *UnarySystem) Engine() *arith.UnaryEngine { return s.engine }

// CalcBudget returns the live calculation entry budget.
func (s *UnarySystem) CalcBudget() int { return s.ctl.CalcBudget() }

// SetCalcBudget retargets subsequent rounds at a new entry budget (the
// tenant arbiter's knob). Call between Syncs; takes effect at the next
// populate.
func (s *UnarySystem) SetCalcBudget(n int) error { return s.ctl.SetCalcBudget(n) }

// Controller exposes the control-plane state.
func (s *UnarySystem) Controller() *controlplane.Controller { return s.ctl }

// Op returns the emulated operation.
func (s *UnarySystem) Op() arith.UnaryOp { return s.op }

// Pipeline lays the system out on a PISA pipeline for resource accounting
// (Table II): one monitoring stage plus the calculation stage.
func (s *UnarySystem) Pipeline(name string) (*pisa.Pipeline, error) {
	if s.engine.Table() == nil {
		return nil, fmt.Errorf("%w: shared-table system has no private calculation stage; lay out the Registry's physical table instead", ErrConfig)
	}
	return pisa.BuildADAProgram(name, []pisa.VarSpec{{
		Name:       "x",
		Monitoring: s.ctl.Monitor().Table(),
		Bins:       s.ctl.Monitor().NumBins(),
	}}, s.engine.Table())
}

// BinarySystem is ADA deployed for a two-operand operation with one monitor
// per operand (the paper's ADA(ΔT, R)).
type BinarySystem struct {
	cfg    Config
	op     arith.BinaryOp
	engine *arith.BinaryEngine
	ctlX   *controlplane.Controller
	ctlY   *controlplane.Controller
	rep    population.Representative

	// Incremental-population state, mirroring unaryTarget's: the Algorithm 3
	// memo plus a shadow record of the installed joint population and the
	// (SeqX, SeqY) trie states it was built at. The joint populate runs after
	// both variables' rounds commit, so the memo's wholesale-reuse path is
	// what makes a converged Sync write nothing.
	memo          population.BinaryMemo
	installed     map[population.BinaryPair]uint64
	installedSeqX uint64
	installedSeqY uint64
	haveInstalled bool
	lastVersion   uint64

	// budget is the live calculation entry budget; starts at
	// cfg.CalcEntries and moves under SetCalcBudget (tenant arbitration).
	budget int

	// Joint-table audit scheduling, mirroring the controller's: the joint
	// calculation table is not owned by either variable's controller, so
	// Sync audits it here on the same AuditEvery cadence. auditPending
	// forces an audit after a Sync that saw driver errors.
	roundsSinceAudit int
	auditPending     bool
}

// NewBinary builds the system and installs the initial uniform population.
func NewBinary(cfg Config, op arith.BinaryOp) (*BinarySystem, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	capacity := cfg.CalcEntries
	if cfg.CalcCapacity > 0 {
		capacity = cfg.CalcCapacity
	}
	var (
		engine *arith.BinaryEngine
		err    error
	)
	if cfg.TieredTCAMEntries > 0 {
		store, terr := tcam.NewTiered(fmt.Sprintf("ada.%v.calc", op), cfg.TieredTCAMEntries, capacity, cfg.Width, cfg.Width)
		if terr != nil {
			return nil, terr
		}
		engine, err = arith.NewBinaryEngineOn(store, nil)
	} else {
		engine, err = arith.NewBinaryEngine(fmt.Sprintf("ada.%v.calc", op), cfg.Width, capacity, nil)
	}
	if err != nil {
		return nil, err
	}
	return newBinaryOn(fmt.Sprintf("ada.%v", op), cfg, op, engine)
}

// newBinaryOn assembles a system around an existing calculation engine —
// private (NewBinary) or mounted on a tenant slice (Registry.MountBinary).
// cfg must already be normalised.
func newBinaryOn(name string, cfg Config, op arith.BinaryOp, engine *arith.BinaryEngine) (*BinarySystem, error) {
	monX, err := monitor.New(name+".monX", cfg.Width, cfg.MaxMonitorEntries)
	if err != nil {
		return nil, err
	}
	monY, err := monitor.New(name+".monY", cfg.Width, cfg.MaxMonitorEntries)
	if err != nil {
		return nil, err
	}
	ccfgX := cfg.controllerConfig()
	ccfgX.Journal = cfg.journalFor()
	ctlX, err := controlplane.New(ccfgX, monX, nil)
	if err != nil {
		return nil, err
	}
	ccfgY := cfg.controllerConfig()
	ccfgY.Journal = cfg.journalFor()
	ctlY, err := controlplane.New(ccfgY, monY, nil)
	if err != nil {
		return nil, err
	}
	s := &BinarySystem{cfg: cfg, op: op, engine: engine, ctlX: ctlX, ctlY: ctlY,
		rep: cfg.Representative, budget: cfg.CalcEntries}
	if _, _, _, err := s.populate(); err != nil {
		return nil, err
	}
	// Construction-time spills are not round work (see newUnaryOn).
	if ts, ok := engine.Store().(*tcam.TieredStore); ok {
		ts.TakeSRAMWrites()
	}
	return s, nil
}

// populate reconciles the joint calculation table against both tries,
// returning TCAM writes plus the computed/reused entry split. With
// DisableIncremental set it regenerates and reloads in full every time;
// otherwise it runs memoized Algorithm 3 and commits only the delta.
func (s *BinarySystem) populate() (int, int, int, error) {
	tx, ty := s.ctlX.Trie(), s.ctlY.Trie()
	if s.cfg.DisableIncremental {
		entries, err := population.ADABinary(tx, ty, s.op.Func(), s.budget, s.rep)
		if err != nil {
			return 0, 0, 0, err
		}
		writes, err := s.engine.Reload(entries)
		return writes, len(entries), 0, err
	}
	res, err := population.ADABinaryMemo(tx, ty, s.op.Func(), s.budget, s.rep, &s.memo)
	if err != nil {
		return 0, 0, 0, err
	}
	if !s.haveInstalled || s.engine.Store().Version() != s.lastVersion {
		writes, err := s.engine.Reload(res.Entries)
		if err != nil {
			return 0, res.Computed, res.Reused, err
		}
		s.record(res)
		return writes, res.Computed, res.Reused, nil
	}
	if s.installedSeqX == res.SeqX && s.installedSeqY == res.SeqY {
		return 0, res.Computed, res.Reused, nil
	}
	var add []population.BinaryEntry
	for _, e := range res.Entries {
		if old, ok := s.installed[population.BinaryPair{X: e.X, Y: e.Y}]; !ok || old != e.Result {
			add = append(add, e)
		}
	}
	var stale []population.BinaryPair
	for pr := range s.installed {
		if _, ok := res.Results[pr]; !ok {
			stale = append(stale, pr)
		}
	}
	sort.Slice(stale, func(i, j int) bool { // deterministic row order
		if c := stale[i].X.Compare(stale[j].X); c != 0 {
			return c < 0
		}
		return stale[i].Y.Compare(stale[j].Y) < 0
	})
	remove := make([]population.BinaryEntry, len(stale))
	for i, pr := range stale {
		remove[i] = population.BinaryEntry{X: pr.X, Y: pr.Y}
	}
	writes, err := s.engine.ReloadDelta(add, remove)
	if errors.Is(err, tcam.ErrDeltaConflict) {
		writes, err = s.engine.Reload(res.Entries)
	}
	if err != nil {
		return writes, res.Computed, res.Reused, err
	}
	s.record(res)
	return writes, res.Computed, res.Reused, nil
}

// expectedRows renders the installed joint shadow as the physical rows the
// calculation table must hold, in deterministic (X, Y) order.
func (s *BinarySystem) expectedRows() []tcam.Row {
	pairs := make([]population.BinaryPair, 0, len(s.installed))
	for pr := range s.installed {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if c := pairs[i].X.Compare(pairs[j].X); c != 0 {
			return c < 0
		}
		return pairs[i].Y.Compare(pairs[j].Y) < 0
	})
	rows := make([]tcam.Row, len(pairs))
	for i, pr := range pairs {
		rows[i] = tcam.Row{
			Fields: []tcam.Field{tcam.FieldFromPrefix(pr.X), tcam.FieldFromPrefix(pr.Y)},
			Data:   s.installed[pr],
		}
	}
	return rows
}

// AuditJoint reads the joint calculation table back, classifies divergence
// from the installed shadow (corrupted / ghost / missing rows), and — when
// repair is set — heals it with the store's minimal anti-entropy delta.
// Sync runs it on the Config.AuditEvery cadence; exposed for recovery
// tooling and tests. Before the first populate it audits trivially clean.
func (s *BinarySystem) AuditJoint(repair bool) (controlplane.AuditReport, error) {
	if !s.haveInstalled {
		return controlplane.AuditReport{}, nil
	}
	rep, err := controlplane.AuditStore(s.engine.Store(), s.expectedRows(), repair)
	if err != nil {
		return rep, err
	}
	if rep.Repaired {
		// Re-pin the store version the repair commit produced so the next
		// populate keeps its delta path (see unaryTarget.AuditCalc).
		s.lastVersion = s.engine.Store().Version()
	}
	return rep, nil
}

// record pins the shadow record to the joint build just committed; aliasing
// res.Results is safe because the memo rebuilds the map on every recompute.
func (s *BinarySystem) record(res population.BinaryMemoResult) {
	s.installed = res.Results
	s.installedSeqX = res.SeqX
	s.installedSeqY = res.SeqY
	s.haveInstalled = true
	s.lastVersion = s.engine.Store().Version()
}

// Observe feeds one (x, y) operand pair to the monitors.
func (s *BinarySystem) Observe(x, y uint64) {
	s.ctlX.Monitor().Observe(x)
	s.ctlY.Monitor().Observe(y)
}

// ObserveAll feeds batches of operand pairs to both monitors, one compiled
// snapshot per variable. Slices of unequal length observe independently —
// each monitor counts its own variable's samples.
func (s *BinarySystem) ObserveAll(xs, ys []uint64) {
	s.ctlX.Monitor().ObserveAll(xs)
	s.ctlY.Monitor().ObserveAll(ys)
}

// ObserveEvalAll is the batched two-operand hot path: both monitors observe
// their variable's batch, then the pairs evaluate against the joint
// calculation table through the typed ordinal lookup, packed into sc's flat
// key buffer. dst and sc are reused across batches by a worker that owns
// them; see UnarySystem.ObserveEvalAll for the ownership contract.
func (s *BinarySystem) ObserveEvalAll(dst []uint64, xs, ys []uint64, sc *arith.Scratch) ([]uint64, int) {
	s.ctlX.Monitor().ObserveAll(xs)
	s.ctlY.Monitor().ObserveAll(ys)
	if sc != nil && s.cfg.LookupCacheEntries > 0 {
		sc.EnableCache(s.engine.Store(), s.cfg.LookupCacheEntries)
		sc.EnableDedup()
	}
	return s.engine.EvalBatchInto(dst, xs, ys, sc)
}

// Lookup is the per-packet path: monitor both operands and fetch the result.
func (s *BinarySystem) Lookup(x, y uint64) (uint64, error) {
	s.Observe(x, y)
	return s.engine.Eval(x, y)
}

// Sync runs one control round across both variables and repopulates the
// joint calculation table. When either variable's round degrades, its trie
// did not move, so the joint population is skipped — the last good table
// keeps serving and the report says why. A failed joint reload likewise
// degrades the round (the engine's reload is transactional) rather than
// returning an error; errors are reserved for programming faults.
func (s *BinarySystem) Sync() (SyncReport, error) {
	return s.SyncCtx(context.Background())
}

// SyncCtx is Sync with cancellation: a cancelled context aborts either
// variable's round between driver operations, and the report comes back
// Degraded with reason "cancelled".
func (s *BinarySystem) SyncCtx(ctx context.Context) (SyncReport, error) {
	repX, err := s.ctlX.RoundCtx(ctx)
	if err != nil {
		return SyncReport{}, fmt.Errorf("variable x: %w", err)
	}
	repY, err := s.ctlY.RoundCtx(ctx)
	if err != nil {
		return SyncReport{}, fmt.Errorf("variable y: %w", err)
	}
	out := SyncReport{
		Reads:          repX.Reads + repY.Reads,
		Writes:         repX.RegisterWrites + repX.TCAMWrites + repY.RegisterWrites + repY.TCAMWrites,
		TCAMWrites:     repX.TCAMWrites + repY.TCAMWrites,
		Rebalances:     repX.Rebalances + repY.Rebalances,
		Computed:       repX.Computed + repY.Computed,
		Reused:         repX.Reused + repY.Reused,
		Expanded:       repX.Expanded || repY.Expanded,
		Degraded:       repX.Degraded || repY.Degraded,
		Retries:        repX.Retries + repY.Retries,
		DriverErrors:   repX.DriverErrors + repY.DriverErrors,
		DegradedReason: repX.DegradedReason,
		Health:         repX.Health,
	}
	if out.DegradedReason == controlplane.ReasonNone {
		out.DegradedReason = repY.DegradedReason
	}
	if repY.Health == controlplane.Unhealthy {
		out.Health = controlplane.Unhealthy
	}
	out.Delay = repX.Delay + repY.Delay
	out.AuditRan = repX.AuditRan || repY.AuditRan
	out.Audit.Add(repX.Audit)
	out.Audit.Add(repY.Audit)
	// Joint-table audit: the per-variable controllers own no calculation
	// target, so the joint table is audited here, against the last committed
	// shadow, on the same cadence the controllers use. A Sync that saw
	// driver errors forces one next round.
	if s.cfg.AuditEvery > 0 && out.DriverErrors > 0 {
		s.auditPending = true
	}
	if s.cfg.AuditEvery > 0 && (s.auditPending || s.roundsSinceAudit >= s.cfg.AuditEvery) {
		arep, aerr := s.AuditJoint(true)
		out.AuditRan = true
		out.Audit.Add(arep)
		out.Writes += arep.RepairWrites
		out.TCAMWrites += arep.RepairWrites
		out.Delay += time.Duration(arep.Audited)*s.cfg.Cost.PerRowRead +
			time.Duration(arep.RepairWrites)*s.cfg.Cost.PerTCAMWrite
		if aerr != nil {
			out.Degraded = true
			if out.DegradedReason == controlplane.ReasonNone {
				out.DegradedReason = controlplane.ReasonAudit
			}
			return out, nil
		}
		s.auditPending = false
		s.roundsSinceAudit = 0
	}
	if out.Degraded {
		return out, nil
	}
	calcWrites, computed, reused, err := s.populate()
	if err != nil {
		if errors.Is(err, population.ErrBudget) || errors.Is(err, population.ErrWidth) ||
			errors.Is(err, population.ErrRange) {
			return SyncReport{}, fmt.Errorf("joint population: %w", err)
		}
		out.Degraded = true
		out.DegradedReason = controlplane.ReasonPopulate
		return out, nil
	}
	out.Writes += calcWrites
	out.TCAMWrites += calcWrites
	out.Computed += computed
	out.Reused += reused
	out.Delay += time.Duration(calcWrites)*s.cfg.Cost.PerTCAMWrite +
		time.Duration(computed)*s.cfg.Cost.PerEntryCompute +
		time.Duration(reused)*s.cfg.Cost.PerEntryReused
	// Tier placement: the joint calculation table is not owned by either
	// variable's controller, so — like the joint audit above — the placement
	// pass runs here, after a committed populate, scoring each row by the
	// product of its operands' marginal hit mass. Failure is non-fatal; the
	// moves that landed are still charged.
	if moves, placed, perr := s.placeTiers(); placed {
		out.TierPlaced = true
		out.TierPlaceFailed = perr != nil
		out.TierPromotions = moves.Promotions
		out.TierDemotions = moves.Demotions
		out.SRAMWrites = moves.SRAMWrites
		out.Writes += moves.TCAMWrites
		out.TCAMWrites += moves.TCAMWrites
		out.Delay += time.Duration(moves.TCAMWrites)*s.cfg.Cost.PerTCAMWrite +
			time.Duration(moves.SRAMWrites)*s.cfg.Cost.PerSRAMWrite
	}
	s.roundsSinceAudit++
	return out, nil
}

// Engine exposes the calculation engine.
func (s *BinarySystem) Engine() *arith.BinaryEngine { return s.engine }

// CalcBudget returns the live calculation entry budget.
func (s *BinarySystem) CalcBudget() int { return s.budget }

// SetCalcBudget retargets subsequent rounds at a new joint entry budget.
// Call between Syncs; takes effect at the next populate.
func (s *BinarySystem) SetCalcBudget(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: calc budget %d", ErrConfig, n)
	}
	s.budget = n
	return nil
}

// ControllerX exposes the first operand's control-plane state.
func (s *BinarySystem) ControllerX() *controlplane.Controller { return s.ctlX }

// ControllerY exposes the second operand's control-plane state.
func (s *BinarySystem) ControllerY() *controlplane.Controller { return s.ctlY }

// Op returns the emulated operation.
func (s *BinarySystem) Op() arith.BinaryOp { return s.op }

// Pipeline lays the system out on a PISA pipeline: two monitoring stages
// plus the calculation stage (3 stages, matching Table II's ADA(ΔT, R)).
func (s *BinarySystem) Pipeline(name string) (*pisa.Pipeline, error) {
	if s.engine.Table() == nil {
		return nil, fmt.Errorf("%w: shared-table system has no private calculation stage; lay out the Registry's physical table instead", ErrConfig)
	}
	return pisa.BuildADAProgram(name, []pisa.VarSpec{
		{Name: "x", Monitoring: s.ctlX.Monitor().Table(), Bins: s.ctlX.Monitor().NumBins()},
		{Name: "y", Monitoring: s.ctlY.Monitor().Table(), Bins: s.ctlY.Monitor().NumBins()},
	}, s.engine.Table())
}
