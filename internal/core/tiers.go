// Tier placement for systems whose calculation engine is mounted on a
// tcam.TieredStore (Config.TieredTCAMEntries).
//
// The placement signal is the one the paper's control loop already owns: the
// monitoring trie's per-bin hit registers, read every round for Algorithm 2.
// Each calculation row covers a prefix interval of the operand domain; its
// heat is the hit mass of that interval, assuming traffic is uniform within
// each monitoring bin — the same within-bin-uniformity assumption Algorithm 2
// makes when it splits a bin in half. Rows are then ranked hottest-first and
// the TCAM tier keeps the top TieredTCAMEntries of them; everything colder
// serves from SRAM at identical results.
//
// For a binary system the row covers a rectangle (x-interval × y-interval)
// and the monitors are per-operand, so the joint mass is approximated by the
// product of the marginal masses — exact when the operands are independent,
// and a useful ranking either way.
package core

import (
	"math/bits"

	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// fieldInterval returns the [lo, hi] operand interval a prefix-shaped ternary
// field matches. ADA populations only install prefix fields; width bounds the
// wildcard expansion.
func fieldInterval(f tcam.Field, width int) (lo, hi uint64) {
	var wmask uint64
	if width >= 64 {
		wmask = ^uint64(0)
	} else {
		wmask = (uint64(1) << uint(width)) - 1
	}
	return f.Value, f.Value | (wmask &^ f.Mask)
}

// scaledMass returns hits·ov/span without overflow, via the 128-bit
// intermediate. span == 0 encodes a full 2^64-value interval (the only case
// where the true span does not fit in a uint64); ov == 0 likewise.
func scaledMass(hits, ov, span uint64) uint64 {
	if hits == 0 {
		return 0
	}
	if span == 0 {
		if ov == 0 { // the row covers the whole full-domain bin
			return hits
		}
		hi, _ := bits.Mul64(hits, ov) // hits·ov / 2^64
		return hi
	}
	if ov >= span {
		return hits
	}
	hi, lo := bits.Mul64(hits, ov)
	// ov < span guarantees hi < span, so Div64 cannot panic.
	q, _ := bits.Div64(hi, lo, span)
	return q
}

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return ^uint64(0)
	}
	return lo
}

// intervalHeat sums the hit mass the bins attribute to [lo, hi]: each
// overlapping bin contributes its hits scaled by the overlap fraction. bins
// are the trie's leaves — disjoint prefix tiles in ascending value order.
func intervalHeat(bins []trie.Bin, lo, hi uint64) uint64 {
	var total uint64
	for _, b := range bins {
		blo, bhi := b.Prefix.Lo(), b.Prefix.Hi()
		if bhi < lo || blo > hi {
			continue
		}
		ovlo, ovhi := max(blo, lo), min(bhi, hi)
		// A +1 that wraps to 0 encodes a full 2^64-value interval, the
		// convention scaledMass expects.
		ov := ovhi - ovlo + 1
		span := bhi - blo + 1
		total = satAdd(total, scaledMass(b.Hits, ov, span))
	}
	return total
}

// PlaceTiers implements controlplane.TierPlacer: when the engine is mounted
// on a tiered store, re-rank tier placement from the trie's hit registers.
// The SRAM write counter is drained in every path — including a failed
// rebalance — so work that landed (populate-time spills, partial moves) is
// charged to the round that caused it.
func (t *unaryTarget) PlaceTiers(tr *trie.Trie) (controlplane.TierMoves, bool, error) {
	ts, ok := t.engine.Store().(*tcam.TieredStore)
	if !ok {
		return controlplane.TierMoves{}, false, nil
	}
	bins := tr.Leaves()
	width := t.engine.Width()
	moves, err := ts.Rebalance(func(fields []tcam.Field, _ int) uint64 {
		lo, hi := fieldInterval(fields[0], width)
		return intervalHeat(bins, lo, hi)
	})
	return controlplane.TierMoves{
		Promotions: moves.Promotions,
		Demotions:  moves.Demotions,
		TCAMWrites: moves.TCAMWrites,
		SRAMWrites: ts.TakeSRAMWrites(),
	}, true, err
}

// placeTiers is the BinarySystem's placement pass, run by Sync after a
// committed joint populate (neither per-variable controller owns the joint
// table). placed is false when the engine is not tiered.
func (s *BinarySystem) placeTiers() (controlplane.TierMoves, bool, error) {
	ts, ok := s.engine.Store().(*tcam.TieredStore)
	if !ok {
		return controlplane.TierMoves{}, false, nil
	}
	binsX, binsY := s.ctlX.Trie().Leaves(), s.ctlY.Trie().Leaves()
	widths := ts.FieldWidths()
	moves, err := ts.Rebalance(func(fields []tcam.Field, _ int) uint64 {
		lox, hix := fieldInterval(fields[0], widths[0])
		loy, hiy := fieldInterval(fields[1], widths[1])
		return satMul(intervalHeat(binsX, lox, hix), intervalHeat(binsY, loy, hiy))
	})
	return controlplane.TierMoves{
		Promotions: moves.Promotions,
		Demotions:  moves.Demotions,
		TCAMWrites: moves.TCAMWrites,
		SRAMWrites: ts.TakeSRAMWrites(),
	}, true, err
}
