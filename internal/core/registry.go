package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/tenant"
)

// SharedConfig parameterises a Registry: one physical calculation TCAM
// carved into per-tenant slices, with an elastic budget arbiter on top.
type SharedConfig struct {
	// Name is the physical table name.
	Name string
	// TotalEntries is the physical calculation-table capacity shared by
	// every tenant.
	TotalEntries int
	// OperandWidths are the physical operand field widths (after the tenant
	// discriminator); every mounted system's fields must fit inside them.
	// Default [16, 16].
	OperandWidths []int
	// TenantIDBits sizes the tenant discriminator field (default 8).
	TenantIDBits int
	// BandSize is the per-tenant priority band width (default 1<<20).
	BandSize int
	// Arbiter tunes the elastic reallocation policy. Arbiter.Every <= 0
	// keeps the mounted quotas static (the equal-split baseline).
	Arbiter tenant.ArbiterConfig
}

// RegistrySyncReport is one shared control round: every tenant's own round
// plus the arbiter's verdict for the round.
type RegistrySyncReport struct {
	// Tenants maps tenant name to its control-round report.
	Tenants map[string]SyncReport
	// Arbiter records budget moves settled or decided this round.
	Arbiter tenant.Report
}

// Registry mounts multiple ADA systems onto one physical calculation TCAM.
// Each mount opens a tenant slice (its own priority band and quota) and
// builds a full system — monitors, controller, engine — whose calculation
// stage is the slice. Sync runs every tenant's control round concurrently
// and then lets the arbiter move budget between slices.
type Registry struct {
	cfg     SharedConfig
	part    *tenant.Partition
	arb     *tenant.Arbiter
	tenants []*Tenant // mount order; the arbiter settles grants in it
	byName  map[string]*Tenant
}

// NewRegistry builds the shared table and its arbiter.
func NewRegistry(cfg SharedConfig) (*Registry, error) {
	part, err := tenant.NewPartition(tenant.Config{
		Name:          cfg.Name,
		TotalEntries:  cfg.TotalEntries,
		OperandWidths: cfg.OperandWidths,
		TenantIDBits:  cfg.TenantIDBits,
		BandSize:      cfg.BandSize,
	})
	if err != nil {
		return nil, err
	}
	return &Registry{
		cfg:    cfg,
		part:   part,
		arb:    tenant.NewArbiter(part, cfg.Arbiter),
		byName: make(map[string]*Tenant),
	}, nil
}

// Tenant is one mounted system plus its slice — the handle the arbiter
// negotiates with (it implements tenant.Member).
type Tenant struct {
	name   string
	slice  *tenant.Slice
	part   *tenant.Partition
	unary  *UnarySystem
	binary *BinarySystem
}

// MountUnary opens a slice with cfg.CalcEntries quota and builds a unary
// system whose calculation stage is that slice. cfg.CalcCapacity is ignored
// (the slice's quota is its capacity, and it moves under arbitration).
func (r *Registry) MountUnary(name string, cfg Config, op arith.UnaryOp) (*Tenant, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	slice, err := r.part.Open(name, []int{cfg.Width}, cfg.CalcEntries)
	if err != nil {
		return nil, err
	}
	engine, err := arith.NewUnaryEngineOn(slice, nil)
	if err != nil {
		return nil, err
	}
	sys, err := newUnaryOn("ada."+name, cfg, op, engine)
	if err != nil {
		return nil, err
	}
	t := &Tenant{name: name, slice: slice, part: r.part, unary: sys}
	r.tenants = append(r.tenants, t)
	r.byName[name] = t
	return t, nil
}

// MountBinary opens a slice with cfg.CalcEntries quota and builds a binary
// system (both operands at cfg.Width) whose calculation stage is that slice.
func (r *Registry) MountBinary(name string, cfg Config, op arith.BinaryOp) (*Tenant, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	slice, err := r.part.Open(name, []int{cfg.Width, cfg.Width}, cfg.CalcEntries)
	if err != nil {
		return nil, err
	}
	engine, err := arith.NewBinaryEngineOn(slice, nil)
	if err != nil {
		return nil, err
	}
	sys, err := newBinaryOn("ada."+name, cfg, op, engine)
	if err != nil {
		return nil, err
	}
	t := &Tenant{name: name, slice: slice, part: r.part, binary: sys}
	r.tenants = append(r.tenants, t)
	r.byName[name] = t
	return t, nil
}

// Sync runs one control round for every tenant concurrently (each tenant's
// round is independent; slice commits serialise inside the partition), then
// hands the round to the arbiter, which settles pending grants from freed
// headroom and — on its cadence — recomputes the split from fresh pressure
// signals. Driver failures stay per-tenant Degraded reports, not errors.
func (r *Registry) Sync() (RegistrySyncReport, error) {
	return r.SyncCtx(context.Background())
}

// SyncCtx is Sync with cancellation: a cancelled context aborts each tenant's
// round between driver operations, and the per-tenant reports come back
// Degraded with reason "cancelled" (the fabric scheduler's per-round
// deadline seam).
func (r *Registry) SyncCtx(ctx context.Context) (RegistrySyncReport, error) {
	out := RegistrySyncReport{Tenants: make(map[string]SyncReport, len(r.tenants))}
	reps := make([]SyncReport, len(r.tenants))
	errs := make([]error, len(r.tenants))
	var wg sync.WaitGroup
	for i, t := range r.tenants {
		wg.Add(1)
		go func(i int, t *Tenant) {
			defer wg.Done()
			reps[i], errs[i] = t.SyncCtx(ctx)
		}(i, t)
	}
	wg.Wait()
	for i, t := range r.tenants {
		if errs[i] != nil {
			return out, fmt.Errorf("core: tenant %q: %w", t.name, errs[i])
		}
		out.Tenants[t.name] = reps[i]
	}
	members := make([]tenant.Member, len(r.tenants))
	for i, t := range r.tenants {
		members[i] = t
	}
	arbRep, err := r.arb.RoundDone(members)
	out.Arbiter = arbRep
	if err != nil {
		return out, err
	}
	return out, nil
}

// SyncTenants runs one control round for only the named tenants — the
// externally-paced seam the service layer's drift pacer drives: a round is
// spent where traffic moved instead of on every tenant every cadence. The
// subset's rounds run concurrently exactly as in SyncCtx, and the arbiter
// still sees every mounted member afterwards, so budget keeps flowing toward
// pressure even when most tenants sat the round out. Unknown names are
// errors; an empty subset just runs the arbiter settle step. Fabric
// implements the same method switch-by-switch, so the serve layer paces
// either through one seam.
func (r *Registry) SyncTenants(ctx context.Context, names []string) (map[string]SyncReport, error) {
	out := make(map[string]SyncReport, len(names))
	subset := make([]*Tenant, len(names))
	for i, name := range names {
		t, ok := r.byName[name]
		if !ok {
			return out, fmt.Errorf("core: sync subset: %w: %q", tenant.ErrTenant, name)
		}
		subset[i] = t
	}
	reps := make([]SyncReport, len(subset))
	errs := make([]error, len(subset))
	var wg sync.WaitGroup
	for i, t := range subset {
		wg.Add(1)
		go func(i int, t *Tenant) {
			defer wg.Done()
			reps[i], errs[i] = t.SyncCtx(ctx)
		}(i, t)
	}
	wg.Wait()
	for i, t := range subset {
		if errs[i] != nil {
			return out, fmt.Errorf("core: tenant %q: %w", t.name, errs[i])
		}
		out[t.name] = reps[i]
	}
	members := make([]tenant.Member, len(r.tenants))
	for i, t := range r.tenants {
		members[i] = t
	}
	if _, err := r.arb.RoundDone(members); err != nil {
		return out, err
	}
	return out, nil
}

// FindTenant returns a mounted tenant by name — the lookup shape the serve
// package's Cluster seam expects (Fabric implements the same method).
func (r *Registry) FindTenant(name string) (*Tenant, bool) {
	return r.Tenant(name)
}

// Unmount evicts a tenant: its slice's physical rows are deleted in one
// transactional commit and its reservation leaves the ledger, freeing
// headroom for the remaining tenants. The evicted system keeps functioning
// as a detached shell — observations still land in its monitors and lookups
// simply miss — so concurrent data-plane callers holding the old handle stay
// safe while the fabric reroutes them. A failed physical delete (injected
// row faults) leaves the tenant fully mounted.
func (r *Registry) Unmount(name string) (int, error) {
	t, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unmount: %w: %q", tenant.ErrTenant, name)
	}
	writes, err := r.part.Close(name)
	if err != nil {
		return 0, err
	}
	delete(r.byName, name)
	for i, tt := range r.tenants {
		if tt == t {
			r.tenants = append(r.tenants[:i], r.tenants[i+1:]...)
			break
		}
	}
	return writes, nil
}

// Partition exposes the underlying slice manager (validation, headroom).
func (r *Registry) Partition() *tenant.Partition { return r.part }

// Table exposes the physical calculation TCAM (layout, fault injection).
func (r *Registry) Table() *tcam.Table { return r.part.Table() }

// Tenant returns a mounted tenant by name.
func (r *Registry) Tenant(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Tenants returns the mounted tenants in mount order.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, len(r.tenants))
	copy(out, r.tenants)
	return out
}

// Budgets snapshots every tenant's current entry budget.
func (r *Registry) Budgets() map[string]int {
	out := make(map[string]int, len(r.tenants))
	for _, t := range r.tenants {
		out[t.name] = t.Budget()
	}
	return out
}

// Name returns the tenant's mount name.
func (t *Tenant) Name() string { return t.name }

// Slice exposes the tenant's TCAM slice.
func (t *Tenant) Slice() *tenant.Slice { return t.slice }

// Unary returns the mounted unary system (nil for a binary tenant).
func (t *Tenant) Unary() *UnarySystem { return t.unary }

// Binary returns the mounted binary system (nil for a unary tenant).
func (t *Tenant) Binary() *BinarySystem { return t.binary }

// Sync runs the tenant's own control round.
func (t *Tenant) Sync() (SyncReport, error) {
	return t.SyncCtx(context.Background())
}

// SyncCtx runs the tenant's own control round with cancellation.
func (t *Tenant) SyncCtx(ctx context.Context) (SyncReport, error) {
	if t.unary != nil {
		return t.unary.SyncCtx(ctx)
	}
	return t.binary.SyncCtx(ctx)
}

// TenantName implements tenant.Member.
func (t *Tenant) TenantName() string { return t.name }

// Budget implements tenant.Member: the system's live calculation budget
// (kept equal to the slice quota by SetBudget).
func (t *Tenant) Budget() int {
	if t.unary != nil {
		return t.unary.CalcBudget()
	}
	return t.binary.CalcBudget()
}

// SetBudget implements tenant.Member: move the slice quota first (the
// partition enforces headroom on growth), then retarget the control loop so
// the next populate fits the new quota.
func (t *Tenant) SetBudget(n int) error {
	if err := t.part.SetQuota(t.name, n); err != nil {
		return err
	}
	if t.unary != nil {
		return t.unary.SetCalcBudget(n)
	}
	return t.binary.SetCalcBudget(n)
}

// Pressure implements tenant.Member: Algorithm 3's residual error terms
// over the tenant's own monitoring tries, evaluated at a hypothetical budget
// (the arbiter's marginal-gain probe). Read-only against the tries.
func (t *Tenant) Pressure(budget int) (tenant.Signal, error) {
	var pr population.Pressure
	var err error
	if t.unary != nil {
		pr, err = population.UnaryErrorPressure(t.unary.ctl.Trie(), budget)
	} else {
		pr, err = population.BinaryErrorPressure(t.binary.ctlX.Trie(), t.binary.ctlY.Trie(), budget)
	}
	if err != nil {
		return tenant.Signal{}, err
	}
	return tenant.Signal{Pressure: pr.Total, Marginal: pr.Marginal, Hits: pr.Hits}, nil
}

var _ tenant.Member = (*Tenant)(nil)
