//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this test
// binary; its runtime charges bookkeeping allocations that would fail the
// zero-allocation assertions.
const raceEnabled = true
