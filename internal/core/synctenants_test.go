package core

import (
	"context"
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/tenant"
)

func newSubsetRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry(SharedConfig{Name: "subset", TotalEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.CalcEntries = 48
	for _, name := range []string{"a", "b", "c"} {
		if _, err := reg.MountUnary(name, cfg, arith.OpSquare); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestSyncTenantsSubset proves a subset round touches only the named
// tenants' monitors: the others keep their accumulated hits.
func TestSyncTenantsSubset(t *testing.T) {
	reg := newSubsetRegistry(t)
	for _, name := range []string{"a", "b", "c"} {
		tn, _ := reg.Tenant(name)
		for v := uint64(0); v < 100; v++ {
			tn.Unary().Observe(v)
		}
	}
	reps, err := reg.SyncTenants(context.Background(), []string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("reports for %d tenants, want 2", len(reps))
	}
	for _, name := range []string{"a", "c"} {
		if reps[name].Reads == 0 {
			t.Errorf("tenant %s: no register reads in its round", name)
		}
	}
	// b sat the round out: its registers were not consumed.
	b, _ := reg.Tenant("b")
	var total uint64
	for _, v := range b.Unary().Controller().Monitor().Snapshot() {
		total += v
	}
	if total != 100 {
		t.Errorf("bystander tenant b lost hits: %d remain, want 100", total)
	}
}

func TestSyncTenantsUnknownName(t *testing.T) {
	reg := newSubsetRegistry(t)
	_, err := reg.SyncTenants(context.Background(), []string{"a", "ghost"})
	if !errors.Is(err, tenant.ErrTenant) {
		t.Fatalf("unknown name error = %v, want tenant.ErrTenant", err)
	}
}

// TestSyncTenantsEmptySubset still runs the arbiter settle step and
// reports no tenants.
func TestSyncTenantsEmptySubset(t *testing.T) {
	reg := newSubsetRegistry(t)
	reps, err := reg.SyncTenants(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Fatalf("reports = %v, want none", reps)
	}
}

// TestSyncReportTCAMWriteSplit pins the new TCAMWrites field: it never
// exceeds the merged Writes count, and a round that rewrites calculation
// rows reports a positive TCAM share.
func TestSyncReportTCAMWriteSplit(t *testing.T) {
	reg := newSubsetRegistry(t)
	tn, _ := reg.Tenant("a")
	// Skew traffic so the first round moves bins and rewrites rows.
	for v := uint64(0); v < 2000; v++ {
		tn.Unary().Observe(v % 16)
	}
	rep, err := tn.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TCAMWrites > rep.Writes {
		t.Errorf("TCAMWrites %d exceeds Writes %d", rep.TCAMWrites, rep.Writes)
	}
	if rep.TCAMWrites == 0 {
		t.Errorf("adapting round reported zero TCAM writes (Writes=%d, Rebalances=%d)",
			rep.Writes, rep.Rebalances)
	}
	if rep.Writes-rep.TCAMWrites < 0 {
		t.Errorf("negative register share: Writes=%d TCAMWrites=%d", rep.Writes, rep.TCAMWrites)
	}
}
