package core

import (
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/dist"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, MonitorEntries: 4, CalcEntries: 8},
		{Width: 65, MonitorEntries: 4, CalcEntries: 8},
		{Width: 16, MonitorEntries: 0, CalcEntries: 8},
		{Width: 16, MonitorEntries: 4, CalcEntries: 0},
	}
	for i, cfg := range bad {
		if _, err := NewUnary(cfg, arith.OpSquare); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d: error = %v, want ErrConfig", i, err)
		}
		if _, err := NewBinary(cfg, arith.OpMul); !errors.Is(err, ErrConfig) {
			t.Errorf("binary config %d: error = %v, want ErrConfig", i, err)
		}
	}
}

func TestDefaultConfigPaperConstants(t *testing.T) {
	cfg := DefaultConfig(32)
	if cfg.ThBalance != 0.20 {
		t.Errorf("ThBalance = %g, want 0.20", cfg.ThBalance)
	}
	if cfg.ThExpansion != 2 {
		t.Errorf("ThExpansion = %d, want 2", cfg.ThExpansion)
	}
	if cfg.MonitorEntries != 12 || cfg.CalcEntries != 128 {
		t.Errorf("budgets = %d/%d, want 12/128", cfg.MonitorEntries, cfg.CalcEntries)
	}
}

func TestUnaryLookupBeforeSync(t *testing.T) {
	cfg := DefaultConfig(16)
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	// Initial uniform population must answer everything.
	for _, x := range []uint64{0, 1, 1000, 65535} {
		if _, err := s.Lookup(x); err != nil {
			t.Errorf("Lookup(%d) before sync: %v", x, err)
		}
	}
	if s.Op() != arith.OpSquare {
		t.Error("Op mismatch")
	}
}

func TestUnaryAdaptationImprovesError(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.CalcEntries = 64
	cfg.MonitorEntries = 12
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 180}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 31)
	test := sampler.Draw(5000)

	before := arith.MeasureUnary(s.Engine().Eval, arith.OpSquare, test)
	for round := 0; round < 25; round++ {
		for _, v := range sampler.Draw(2000) {
			if _, err := s.Lookup(v); err != nil {
				t.Fatalf("Lookup: %v", err)
			}
		}
		if _, err := s.Sync(); err != nil {
			t.Fatalf("Sync round %d: %v", round, err)
		}
	}
	after := arith.MeasureUnary(s.Engine().Eval, arith.OpSquare, test)
	if after.Misses != 0 {
		t.Errorf("misses after adaptation: %d", after.Misses)
	}
	if after.Avg >= before.Avg/4 {
		t.Errorf("adaptation: error %.5f → %.5f, want ≥4× reduction", before.Avg, after.Avg)
	}
}

func TestUnarySyncReport(t *testing.T) {
	cfg := DefaultConfig(16)
	s, err := NewUnary(cfg, arith.OpDouble)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(42)
	bins := s.Controller().Monitor().NumBins()
	rep, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads != bins {
		t.Errorf("Reads = %d, want %d (one per bin)", rep.Reads, bins)
	}
	if rep.Writes == 0 || rep.Delay <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestUnaryPipelineStages(t *testing.T) {
	s, err := NewUnary(DefaultConfig(16), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Pipeline("ada(R)")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 2 {
		t.Errorf("unary stages = %d, want 2 (Table II)", p.NumStages())
	}
}

func TestBinaryLookupAndAdaptation(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.CalcEntries = 144
	cfg.MonitorEntries = 8
	s, err := NewBinary(cfg, arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	// Rate × ΔT style operands: x tightly clustered (rate), y narrow-band
	// (inter-arrival).
	xs := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 3000, Sigma: 60}, Lo: 0, Hi: 1 << 12},
		1<<12-1, 41)
	ys := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 240, Sigma: 40}, Lo: 0, Hi: 1 << 12},
		1<<12-1, 42)
	testX, testY := xs.Draw(3000), ys.Draw(3000)
	before := arith.MeasureBinary(s.Engine().Eval, arith.OpMul, testX, testY)
	for round := 0; round < 30; round++ {
		bx, by := xs.Draw(1500), ys.Draw(1500)
		for i := range bx {
			if _, err := s.Lookup(bx[i], by[i]); err != nil {
				t.Fatalf("Lookup: %v", err)
			}
		}
		if _, err := s.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	after := arith.MeasureBinary(s.Engine().Eval, arith.OpMul, testX, testY)
	if after.Misses != 0 {
		t.Errorf("misses = %d", after.Misses)
	}
	if after.Avg >= before.Avg/2 {
		t.Errorf("binary adaptation: error %.5f → %.5f, want ≥2× reduction",
			before.Avg, after.Avg)
	}
	if s.Op() != arith.OpMul {
		t.Error("Op mismatch")
	}
}

func TestBinarySyncAggregates(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = 64
	s, err := NewBinary(cfg, arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(10, 20)
	rep, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads < 2*cfg.MonitorEntries {
		t.Errorf("Reads = %d, want >= %d (both variables)", rep.Reads, 2*cfg.MonitorEntries)
	}
	if rep.Delay <= 0 || rep.Writes == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestBinaryPipelineStages(t *testing.T) {
	s, err := NewBinary(DefaultConfig(10), arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Pipeline("ada(dT,R)")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 3 {
		t.Errorf("binary stages = %d, want 3 (Table II)", p.NumStages())
	}
}

func TestBinaryReadsSkewAsymmetry(t *testing.T) {
	// Table II: the more skewed variable triggers more adaptation work. We
	// check the mechanism: a skewed X and uniform Y lead to more rebalances
	// on X's controller.
	cfg := DefaultConfig(12)
	cfg.MonitorEntries = 8
	cfg.CalcEntries = 64
	s, err := NewBinary(cfg, arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	xs := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 500, Sigma: 30}, Lo: 0, Hi: 1 << 12},
		1<<12-1, 51)
	ys := dist.NewIntSampler(dist.Uniform{Lo: 0, Hi: 1 << 12}, 1<<12-1, 52)
	for round := 0; round < 15; round++ {
		bx, by := xs.Draw(1000), ys.Draw(1000)
		for i := range bx {
			s.Observe(bx[i], by[i])
		}
		if _, err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	rx := s.ControllerX().Totals().Rebalances + s.ControllerX().Totals().Expansions
	ry := s.ControllerY().Totals().Rebalances + s.ControllerY().Totals().Expansions
	if rx <= ry {
		t.Errorf("skewed X adaptation %d not above uniform Y %d", rx, ry)
	}
}

func TestNormaliseDefaults(t *testing.T) {
	cfg := Config{Width: 8, MonitorEntries: 4, CalcEntries: 8}
	if err := cfg.normalise(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxMonitorEntries != 16 {
		t.Errorf("MaxMonitorEntries default = %d, want 16", cfg.MaxMonitorEntries)
	}
	if cfg.Representative == 0 {
		t.Error("Representative not defaulted")
	}
	if cfg.Cost.PerTCAMWrite == 0 {
		t.Error("Cost not defaulted")
	}
}

func TestUnaryAllOpsEndToEnd(t *testing.T) {
	// Every supported unary operation must adapt end to end, including the
	// fixed-point InREC-style ones (log2, reciprocal) and sqrt.
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 1, Hi: 1 << 16},
		1<<16-1, 61)
	test := sampler.Draw(2000)
	for _, op := range []arith.UnaryOp{arith.OpSqrt, arith.OpLog2, arith.OpRecip, arith.OpDouble} {
		t.Run(op.String(), func(t *testing.T) {
			cfg := DefaultConfig(16)
			cfg.CalcEntries = 48
			sys, err := NewUnary(cfg, op)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 20; round++ {
				for _, v := range sampler.Draw(1500) {
					if _, err := sys.Lookup(v); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := sys.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			s := arith.MeasureUnary(sys.Engine().Eval, op, test)
			if s.Misses != 0 {
				t.Errorf("misses = %d", s.Misses)
			}
			// Hot-region accuracy after adaptation. log2 and sqrt compress
			// the operand range, so even coarse bins answer well; 5% is a
			// conservative bound across all ops.
			if s.Avg > 0.05 {
				t.Errorf("avg error %.4f > 5%%", s.Avg)
			}
		})
	}
}

// readFailDriver wraps a driver failing the next N register reads; the
// minimal scripted fault for exercising core's degraded-round surface.
type readFailDriver struct {
	controlplane.Driver
	fails *int
}

func (d *readFailDriver) ReadRegisters() ([]uint64, error) {
	if *d.fails > 0 {
		*d.fails--
		return nil, errors.New("injected read failure")
	}
	return d.Driver.ReadRegisters()
}

func TestUnarySyncSurfacesDegradedRounds(t *testing.T) {
	fails := 0
	cfg := DefaultConfig(16)
	cfg.CalcEntries = 32
	cfg.WrapDriver = func(d controlplane.Driver) controlplane.Driver {
		return &readFailDriver{Driver: d, fails: &fails}
	}
	s, err := NewUnary(cfg, arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(1234)
	fails = 2 * controlplane.DefaultRetryPolicy().MaxAttempts // exceed the retry budget
	rep, err := s.Sync()
	if err != nil {
		t.Fatalf("driver failure must degrade, not error: %v", err)
	}
	if !rep.Degraded || rep.DegradedReason != controlplane.ReasonSnapshot {
		t.Fatalf("report = %+v, want degraded snapshot-read", rep)
	}
	if rep.DriverErrors == 0 {
		t.Error("DriverErrors not surfaced")
	}
	// Lookups keep serving the last good population.
	if _, err := s.Lookup(1234); err != nil {
		t.Errorf("lookup during degraded round: %v", err)
	}
	// Healthy again: a clean round commits.
	fails = 0
	rep, err = s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("recovered round still degraded: %+v", rep)
	}
	if rep.Health != controlplane.Healthy {
		t.Errorf("Health = %v", rep.Health)
	}
}

func TestBinarySyncSkipsJointPopulateWhenDegraded(t *testing.T) {
	fails := 0
	cfg := DefaultConfig(10)
	cfg.CalcEntries = 64
	cfg.MonitorEntries = 4
	cfg.WrapDriver = func(d controlplane.Driver) controlplane.Driver {
		return &readFailDriver{Driver: d, fails: &fails}
	}
	s, err := NewBinary(cfg, arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(dist.Truncated{D: dist.Gaussian{Mu: 300, Sigma: 40}, Lo: 0, Hi: 1 << 10}, 1<<10-1, 7)
	for _, v := range sampler.Draw(2000) {
		s.Observe(v, v/2)
	}
	fp := s.Engine().Table().Fingerprint()
	fails = 4 * controlplane.DefaultRetryPolicy().MaxAttempts // exceed both controllers' budgets
	rep, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatalf("report = %+v, want degraded", rep)
	}
	if got := s.Engine().Table().Fingerprint(); got != fp {
		t.Error("joint table repopulated during a degraded round")
	}
	// Recovery repopulates.
	fails = 0
	for _, v := range sampler.Draw(2000) {
		s.Observe(v, v/2)
	}
	rep, err = s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("recovered round degraded: %+v", rep)
	}
	if _, err := s.Lookup(300, 150); err != nil {
		t.Errorf("lookup after recovery: %v", err)
	}
}
