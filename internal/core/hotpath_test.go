package core

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/netsim"
)

func warmedUnary(t testing.TB, seed int64) (*UnarySystem, []uint64) {
	t.Helper()
	sys, err := NewUnary(DefaultConfig(16), arith.OpSquare)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, seed)
	warm := sampler.Draw(4096)
	for round := 0; round < 2; round++ {
		sys.ObserveAll(warm)
		if _, err := sys.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return sys, sampler.Draw(32768)
}

func warmedBinary(t testing.TB, seed int64) (*BinarySystem, []uint64, []uint64) {
	t.Helper()
	sys, err := NewBinary(DefaultConfig(16), arith.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 200}, Lo: 0, Hi: 1 << 16},
		1<<16-1, seed)
	warmX, warmY := sampler.Draw(4096), sampler.Draw(4096)
	for round := 0; round < 2; round++ {
		sys.ObserveAll(warmX, warmY)
		if _, err := sys.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return sys, sampler.Draw(16384), sampler.Draw(16384)
}

// TestConcurrentObserveEvalMatchesSequential replays one sample stream
// through ObserveEvalAll twice — single-threaded in order, then sharded
// across ReplayBatched workers with per-worker scratch — and requires the
// two runs to agree sample-for-sample on results and misses and end with
// identical register snapshots and monitor stats. This is the differential
// proof that the striped, typed hot path is bit-identical under contention.
func TestConcurrentObserveEvalMatchesSequential(t *testing.T) {
	const batch = 512

	seqSys, xs := warmedUnary(t, 11)
	seqRes := make([]uint64, len(xs))
	var seqMiss int
	var sc arith.Scratch
	var dst []uint64
	for lo := 0; lo < len(xs); lo += batch {
		hi := lo + batch
		if hi > len(xs) {
			hi = len(xs)
		}
		var m int
		dst, m = seqSys.ObserveEvalAll(dst, xs[lo:hi], &sc)
		copy(seqRes[lo:hi], dst)
		seqMiss += m
	}
	seqSnap := seqSys.Controller().Monitor().SnapshotAndReset()
	seqStats := seqSys.Controller().Monitor().Stats()

	const workers = 4
	concSys, xs2 := warmedUnary(t, 11)
	concRes := make([]uint64, len(xs2))
	var concMiss atomic.Int64
	scs := make([]arith.Scratch, workers)
	dsts := make([][]uint64, workers)
	netsim.ReplayBatched(workers, batch, xs2, func(w int, bvs []uint64) {
		// bvs is a contiguous subslice of xs2; its cap runs to the end of
		// the backing array, so the slice offset is cap(xs2)-cap(bvs).
		off := cap(xs2) - cap(bvs)
		out, m := concSys.ObserveEvalAll(dsts[w], bvs, &scs[w])
		dsts[w] = out
		copy(concRes[off:off+len(bvs)], out)
		concMiss.Add(int64(m))
	})
	concSnap := concSys.Controller().Monitor().SnapshotAndReset()
	concStats := concSys.Controller().Monitor().Stats()

	if int(concMiss.Load()) != seqMiss {
		t.Errorf("concurrent misses = %d, sequential %d", concMiss.Load(), seqMiss)
	}
	for i := range seqRes {
		if concRes[i] != seqRes[i] {
			t.Fatalf("sample %d (x=%d): concurrent result %d, sequential %d",
				i, xs[i], concRes[i], seqRes[i])
		}
	}
	if len(concSnap) != len(seqSnap) {
		t.Fatalf("snapshot length %d vs %d", len(concSnap), len(seqSnap))
	}
	for i := range seqSnap {
		if concSnap[i] != seqSnap[i] {
			t.Fatalf("register %d: concurrent %d, sequential %d", i, concSnap[i], seqSnap[i])
		}
	}
	if concStats.Observations != seqStats.Observations || concStats.Matched != seqStats.Matched {
		t.Errorf("stats diverge: concurrent %+v, sequential %+v", concStats, seqStats)
	}
}

// TestConcurrentObserveEvalBinary: same identity for the two-operand path,
// shards paired manually so each worker owns an aligned (xs, ys) range.
func TestConcurrentObserveEvalBinary(t *testing.T) {
	const batch = 512

	seqSys, xs, ys := warmedBinary(t, 12)
	seqRes := make([]uint64, len(xs))
	var seqMiss int
	var sc arith.Scratch
	var dst []uint64
	for lo := 0; lo < len(xs); lo += batch {
		hi := lo + batch
		if hi > len(xs) {
			hi = len(xs)
		}
		var m int
		dst, m = seqSys.ObserveEvalAll(dst, xs[lo:hi], ys[lo:hi], &sc)
		copy(seqRes[lo:hi], dst)
		seqMiss += m
	}
	seqX := seqSys.ControllerX().Monitor().SnapshotAndReset()
	seqY := seqSys.ControllerY().Monitor().SnapshotAndReset()

	concSys, xs2, ys2 := warmedBinary(t, 12)
	concRes := make([]uint64, len(xs2))
	var concMiss atomic.Int64
	var wg sync.WaitGroup
	const workers = 4
	chunk := (len(xs2) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(xs2) {
			hi = len(xs2)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sc arith.Scratch
			var dst []uint64
			for b := lo; b < hi; b += batch {
				e := b + batch
				if e > hi {
					e = hi
				}
				var m int
				dst, m = concSys.ObserveEvalAll(dst, xs2[b:e], ys2[b:e], &sc)
				copy(concRes[b:e], dst)
				concMiss.Add(int64(m))
			}
		}(lo, hi)
	}
	wg.Wait()
	concX := concSys.ControllerX().Monitor().SnapshotAndReset()
	concY := concSys.ControllerY().Monitor().SnapshotAndReset()

	if int(concMiss.Load()) != seqMiss {
		t.Errorf("concurrent misses = %d, sequential %d", concMiss.Load(), seqMiss)
	}
	for i := range seqRes {
		if concRes[i] != seqRes[i] {
			t.Fatalf("sample %d: concurrent result %d, sequential %d", i, concRes[i], seqRes[i])
		}
	}
	for i := range seqX {
		if concX[i] != seqX[i] {
			t.Fatalf("X register %d: concurrent %d, sequential %d", i, concX[i], seqX[i])
		}
	}
	for i := range seqY {
		if concY[i] != seqY[i] {
			t.Fatalf("Y register %d: concurrent %d, sequential %d", i, concY[i], seqY[i])
		}
	}
}

// TestObserveEvalAllocFree pins the zero-allocation contract: once the
// caller's dst/Scratch and the monitor's pooled buffers are warm, a full
// observe+eval batch allocates nothing on either path. GC is paused for the
// measurement so a pool clear cannot masquerade as a steady-state alloc.
func TestObserveEvalAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector runtime allocates per batch")
	}
	uni, xs := warmedUnary(t, 13)
	bin, bx, by := warmedBinary(t, 14)
	xs, bx, by = xs[:1024], bx[:1024], by[:1024]

	var sc arith.Scratch
	var dst []uint64
	dst, _ = uni.ObserveEvalAll(dst, xs, &sc)
	var bsc arith.Scratch
	var bdst []uint64
	bdst, _ = bin.ObserveEvalAll(bdst, bx, by, &bsc)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(50, func() {
		dst, _ = uni.ObserveEvalAll(dst, xs, &sc)
	}); allocs != 0 {
		t.Errorf("unary ObserveEvalAll allocates %.1f objects/batch, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		bdst, _ = bin.ObserveEvalAll(bdst, bx, by, &bsc)
	}); allocs != 0 {
		t.Errorf("binary ObserveEvalAll allocates %.1f objects/batch, want 0", allocs)
	}
}
