package dist

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates samples into fixed-width bins over [Lo, Hi). Samples
// outside the range land in the first or last bin. It provides the empirical
// PDF/CDF the experiments compare ADA's learned bins against.
type Histogram struct {
	lo, hi  float64
	binW    float64
	counts  []uint64
	total   uint64
	samples []float64 // retained only when quantile support is requested
	keep    bool
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("dist: histogram needs at least one bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("dist: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		binW:   (hi - lo) / float64(bins),
		counts: make([]uint64, bins),
	}, nil
}

// NewQuantileHistogram is NewHistogram but also retains raw samples so
// Quantile returns exact order statistics.
func NewQuantileHistogram(lo, hi float64, bins int) (*Histogram, error) {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.keep = true
	return h, nil
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.lo) / h.binW)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
	if h.keep {
		h.samples = append(h.samples, v)
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.binW
}

// PDF returns the normalised per-bin probabilities.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns the cumulative distribution evaluated at each bin's upper edge.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// CDFAt returns the fraction of samples <= v, interpolated within bins.
func (h *Histogram) CDFAt(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	if v < h.lo {
		return 0
	}
	if v >= h.hi {
		return 1
	}
	pos := (v - h.lo) / h.binW
	i := int(pos)
	frac := pos - float64(i)
	cum := uint64(0)
	for j := 0; j < i; j++ {
		cum += h.counts[j]
	}
	part := float64(h.counts[i]) * frac
	return (float64(cum) + part) / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1). With retained samples it is
// the exact order statistic; otherwise it interpolates within bins.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	if h.keep {
		s := make([]float64, len(h.samples))
		copy(s, h.samples)
		sort.Float64s(s)
		idx := int(q * float64(len(s)-1))
		return s[idx]
	}
	target := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.lo + (float64(i)+frac)*h.binW
		}
		cum = next
	}
	return h.hi
}

// Mean returns the bin-center-weighted mean of the recorded samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i, c := range h.counts {
		sum += h.BinCenter(i) * float64(c)
	}
	return sum / float64(h.total)
}

// TotalVariation returns the total-variation distance between the normalised
// histograms, 0.5 * Σ|p_i − q_i|. Both histograms must have the same bin
// count. It quantifies how well ADA's learned bins match the true PDF
// (Fig 5).
func TotalVariation(a, b *Histogram) (float64, error) {
	if a.Bins() != b.Bins() {
		return 0, fmt.Errorf("dist: bin count mismatch %d vs %d", a.Bins(), b.Bins())
	}
	pa, pb := a.PDF(), b.PDF()
	sum := 0.0
	for i := range pa {
		sum += math.Abs(pa[i] - pb[i])
	}
	return sum / 2, nil
}
