package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical("x", []CDFPoint{{Value: 1, Frac: 1}}); err == nil {
		t.Error("single point: want error")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{Value: 2, Frac: 0}, {Value: 1, Frac: 1}}); err == nil {
		t.Error("unsorted values: want error")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{Value: 1, Frac: 0.5}, {Value: 2, Frac: 0.2}}); err == nil {
		t.Error("non-monotone CDF: want error")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{Value: 1, Frac: 0}, {Value: 2, Frac: 0.9}}); err == nil {
		t.Error("CDF not ending at 1: want error")
	}
	if _, err := NewEmpirical("ok", []CDFPoint{{Value: 1, Frac: 0}, {Value: 2, Frac: 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestEmpiricalSamplingMatchesCDF(t *testing.T) {
	e, err := NewEmpirical("tri", []CDFPoint{
		{Value: 0, Frac: 0},
		{Value: 10, Frac: 0.5},
		{Value: 100, Frac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	below10 := 0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 0 || v > 100 {
			t.Fatalf("sample %g out of range", v)
		}
		if v <= 10 {
			below10++
		}
		sum += v
	}
	if frac := float64(below10) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(X<=10) = %.3f, want 0.5", frac)
	}
	// Analytic mean: 0.5·(0+10)/2 + 0.5·(10+100)/2 = 30.
	if got := e.Mean(); math.Abs(got-30) > 1e-9 {
		t.Errorf("Mean = %g, want 30", got)
	}
	if mean := sum / n; math.Abs(mean-30) > 0.5 {
		t.Errorf("sample mean = %g, want ≈30", mean)
	}
	if e.Name() != "tri" {
		t.Error("name")
	}
}

func TestBuiltinFlowSizeDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, e := range []*Empirical{WebSearchFlowSizes(), DataMiningFlowSizes()} {
		if e.Mean() <= 0 {
			t.Errorf("%s: non-positive mean", e.Name())
		}
		small, large := 0, 0
		for i := 0; i < 20000; i++ {
			v := e.Sample(rng)
			if v < 64*1024 {
				small++
			}
			if v > 1024*1024 {
				large++
			}
		}
		// Both distributions are mostly small flows with a heavy tail.
		if small < 8000 {
			t.Errorf("%s: only %d small flows of 20000", e.Name(), small)
		}
		if large == 0 {
			t.Errorf("%s: no heavy tail", e.Name())
		}
	}
	// Data-mining is much more bottom-heavy than web-search.
	rng = rand.New(rand.NewSource(3))
	ws, dm := WebSearchFlowSizes(), DataMiningFlowSizes()
	wsTiny, dmTiny := 0, 0
	for i := 0; i < 20000; i++ {
		if ws.Sample(rng) < 2048 {
			wsTiny++
		}
		if dm.Sample(rng) < 2048 {
			dmTiny++
		}
	}
	if dmTiny <= wsTiny {
		t.Errorf("datamining tiny flows %d not above websearch %d", dmTiny, wsTiny)
	}
}
