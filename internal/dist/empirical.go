package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// CDFPoint is one knot of an empirical distribution: P(X <= Value) = Frac.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// Empirical samples from a piecewise-linear inverse CDF, the standard way
// datacenter studies encode measured flow-size distributions (web-search,
// data-mining, ...).
type Empirical struct {
	name   string
	points []CDFPoint
}

// NewEmpirical builds an empirical distribution from CDF knots. Knots must
// be sorted by Value with non-decreasing Frac; the last knot must have
// Frac = 1.
func NewEmpirical(name string, points []CDFPoint) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("dist: empirical %q needs at least two CDF points", name)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value < points[i-1].Value {
			return nil, fmt.Errorf("dist: empirical %q: values not sorted at %d", name, i)
		}
		if points[i].Frac < points[i-1].Frac {
			return nil, fmt.Errorf("dist: empirical %q: CDF not monotone at %d", name, i)
		}
	}
	if points[0].Frac < 0 || points[len(points)-1].Frac != 1 {
		return nil, fmt.Errorf("dist: empirical %q: CDF must end at 1", name)
	}
	ps := make([]CDFPoint, len(points))
	copy(ps, points)
	return &Empirical{name: name, points: ps}, nil
}

// Sample implements Distribution via inverse-transform sampling with linear
// interpolation between knots.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.Search(len(e.points), func(i int) bool { return e.points[i].Frac >= u })
	if i == 0 {
		return e.points[0].Value
	}
	if i >= len(e.points) {
		return e.points[len(e.points)-1].Value
	}
	lo, hi := e.points[i-1], e.points[i]
	if hi.Frac == lo.Frac {
		return hi.Value
	}
	t := (u - lo.Frac) / (hi.Frac - lo.Frac)
	return lo.Value + t*(hi.Value-lo.Value)
}

// Name implements Distribution.
func (e *Empirical) Name() string { return e.name }

// Mean returns the analytic mean of the piecewise-linear distribution.
func (e *Empirical) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(e.points); i++ {
		lo, hi := e.points[i-1], e.points[i]
		mean += (hi.Frac - lo.Frac) * (lo.Value + hi.Value) / 2
	}
	return mean
}

// WebSearchFlowSizes is the DCTCP paper's web-search flow-size distribution
// (bytes), widely used in datacenter transport studies: mostly sub-100 KB
// queries with a heavy multi-megabyte tail.
func WebSearchFlowSizes() *Empirical {
	e, err := NewEmpirical("websearch", []CDFPoint{
		{Value: 6 * 1024, Frac: 0},
		{Value: 10 * 1024, Frac: 0.15},
		{Value: 19 * 1024, Frac: 0.20},
		{Value: 29 * 1024, Frac: 0.30},
		{Value: 100 * 1024, Frac: 0.53},
		{Value: 250 * 1024, Frac: 0.60},
		{Value: 1024 * 1024, Frac: 0.70},
		{Value: 3 * 1024 * 1024, Frac: 0.80},
		{Value: 10 * 1024 * 1024, Frac: 0.90},
		{Value: 30 * 1024 * 1024, Frac: 1.0},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return e
}

// DataMiningFlowSizes is the VL2/data-mining flow-size distribution (bytes):
// overwhelmingly tiny flows with a very long tail.
func DataMiningFlowSizes() *Empirical {
	e, err := NewEmpirical("datamining", []CDFPoint{
		{Value: 100, Frac: 0},
		{Value: 300, Frac: 0.3},
		{Value: 1024, Frac: 0.5},
		{Value: 2 * 1024, Frac: 0.6},
		{Value: 10 * 1024, Frac: 0.70},
		{Value: 100 * 1024, Frac: 0.80},
		{Value: 1024 * 1024, Frac: 0.90},
		{Value: 10 * 1024 * 1024, Frac: 0.96},
		{Value: 100 * 1024 * 1024, Frac: 1.0},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return e
}
