package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func sampleMeanVar(d Distribution, n int) (mean, variance float64) {
	rng := newRNG()
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestUniformMoments(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 20}
	mean, variance := sampleMeanVar(d, 200000)
	if math.Abs(mean-15) > 0.05 {
		t.Errorf("mean = %g, want ≈15", mean)
	}
	wantVar := 100.0 / 12
	if math.Abs(variance-wantVar) > 0.2 {
		t.Errorf("variance = %g, want ≈%g", variance, wantVar)
	}
}

func TestExponentialMoments(t *testing.T) {
	d := Exponential{Rate: 10, Scale: 650000}
	mean, _ := sampleMeanVar(d, 200000)
	want := 65000.0
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean = %g, want ≈%g", mean, want)
	}
	// Zero scale defaults to 1.
	d0 := Exponential{Rate: 2}
	mean0, _ := sampleMeanVar(d0, 200000)
	if math.Abs(mean0-0.5) > 0.01 {
		t.Errorf("zero-scale mean = %g, want ≈0.5", mean0)
	}
}

func TestGaussianMoments(t *testing.T) {
	d := Gaussian{Mu: 4000, Sigma: 180}
	mean, variance := sampleMeanVar(d, 200000)
	if math.Abs(mean-4000) > 3 {
		t.Errorf("mean = %g, want ≈4000", mean)
	}
	if math.Abs(math.Sqrt(variance)-180) > 3 {
		t.Errorf("sigma = %g, want ≈180", math.Sqrt(variance))
	}
}

func TestFisherFMoments(t *testing.T) {
	// F(d1, d2) has mean d2/(d2-2) for d2 > 2.
	d := FisherF{D1: 100, D2: 20}
	mean, _ := sampleMeanVar(d, 400000)
	want := 20.0 / 18.0
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean = %g, want ≈%g", mean, want)
	}
	if s := (FisherF{D1: 100, D2: 20, Scale: 1000}); true {
		m, _ := sampleMeanVar(s, 200000)
		if math.Abs(m-1000*want)/(1000*want) > 0.05 {
			t.Errorf("scaled mean = %g, want ≈%g", m, 1000*want)
		}
	}
}

func TestGammaShapeBelowOne(t *testing.T) {
	rng := newRNG()
	// Gamma(0.5) has mean 0.5.
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := sampleGamma(rng, 0.5)
		if v < 0 {
			t.Fatalf("negative gamma sample %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Gamma(0.5) mean = %g, want ≈0.5", mean)
	}
}

func TestMixture(t *testing.T) {
	g1 := Gaussian{Mu: 16000, Sigma: 100}
	g2 := Gaussian{Mu: 48000, Sigma: 100}
	m, err := NewMixture(Component{D: g1, Weight: 1}, Component{D: g2, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := sampleMeanVar(m, 200000)
	if math.Abs(mean-32000) > 300 {
		t.Errorf("two-peak mixture mean = %g, want ≈32000", mean)
	}
	// Weighted mixture shifts the mean.
	m2, err := NewMixture(Component{D: g1, Weight: 3}, Component{D: g2, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean2, _ := sampleMeanVar(m2, 200000)
	want := 0.75*16000 + 0.25*48000
	if math.Abs(mean2-want) > 300 {
		t.Errorf("weighted mixture mean = %g, want ≈%g", mean2, want)
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, err := NewMixture(); err == nil {
		t.Error("empty mixture: want error")
	}
	if _, err := NewMixture(Component{D: PointMass{V: 1}, Weight: -1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := NewMixture(Component{D: PointMass{V: 1}, Weight: 0}); err == nil {
		t.Error("zero total weight: want error")
	}
}

func TestTruncated(t *testing.T) {
	d := Truncated{D: Gaussian{Mu: 0, Sigma: 1000}, Lo: 0, Hi: 100}
	rng := newRNG()
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 0 || v > 100 {
			t.Fatalf("truncated sample %g outside [0, 100]", v)
		}
	}
}

func TestPointMass(t *testing.T) {
	d := PointMass{V: 94e9}
	if d.Sample(nil) != 94e9 {
		t.Error("point mass must return its value")
	}
}

func TestIntSampler(t *testing.T) {
	s := NewIntSampler(Gaussian{Mu: 50, Sigma: 100}, 100, 3)
	vals := s.Draw(5000)
	if len(vals) != 5000 {
		t.Fatal("wrong draw count")
	}
	for _, v := range vals {
		if v > 100 {
			t.Fatalf("sample %d exceeds max", v)
		}
	}
	// Negative Gaussian draws must clamp to zero, so zero should occur.
	zeros := 0
	for _, v := range vals {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("expected some clamped-to-zero samples")
	}
}

func TestIntSamplerDeterminism(t *testing.T) {
	a := NewIntSampler(Uniform{Lo: 0, Hi: 1000}, 1000, 42).Draw(100)
	b := NewIntSampler(Uniform{Lo: 0, Hi: 1000}, 1000, 42).Draw(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 2.5, 2.6, 9.9, -5, 50} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -5 clamps to bin 0, 50 clamps to last bin.
	if h.Count(0) != 3 { // 0.5, 1.5, -5
		t.Errorf("bin 0 = %d, want 3", h.Count(0))
	}
	if h.Count(4) != 2 { // 9.9, 50
		t.Errorf("bin 4 = %d, want 2", h.Count(4))
	}
	pdf := h.PDF()
	sum := 0.0
	for _, p := range pdf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PDF sums to %g", sum)
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("CDF tail = %g, want 1", cdf[len(cdf)-1])
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("empty range: want error")
	}
}

func TestHistogramCDFAt(t *testing.T) {
	h, _ := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.CDFAt(-1); got != 0 {
		t.Errorf("CDFAt(-1) = %g", got)
	}
	if got := h.CDFAt(1000); got != 1 {
		t.Errorf("CDFAt(1000) = %g", got)
	}
	if got := h.CDFAt(50); math.Abs(got-0.5) > 0.02 {
		t.Errorf("CDFAt(50) = %g, want ≈0.5", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewQuantileHistogram(0, 100, 10)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 2 {
		t.Errorf("median = %g, want ≈50", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-99) > 2 {
		t.Errorf("p99 = %g, want ≈99", got)
	}
	// Interpolated variant.
	h2, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h2.Add(float64(i) + 0.5)
	}
	if got := h2.Quantile(0.5); math.Abs(got-50) > 2 {
		t.Errorf("interpolated median = %g, want ≈50", got)
	}
	var empty Histogram
	if !math.IsNaN((&empty).Mean()) {
		t.Error("empty Mean must be NaN")
	}
}

func TestTotalVariation(t *testing.T) {
	a, _ := NewHistogram(0, 10, 5)
	b, _ := NewHistogram(0, 10, 5)
	for i := 0; i < 100; i++ {
		a.Add(1)
		b.Add(9)
	}
	tv, err := TotalVariation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 1 {
		t.Errorf("disjoint TV = %g, want 1", tv)
	}
	tvSame, _ := TotalVariation(a, a)
	if tvSame != 0 {
		t.Errorf("self TV = %g, want 0", tvSame)
	}
	c, _ := NewHistogram(0, 10, 7)
	if _, err := TotalVariation(a, c); err == nil {
		t.Error("bin mismatch: want error")
	}
}

// Property: CDF is monotone non-decreasing for any sample set.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		h, err := NewHistogram(0, 1, 16)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(math.Mod(math.Abs(v), 1))
		}
		cdf := h.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
