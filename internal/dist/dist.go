// Package dist provides the random-variate generators the paper's C++
// simulator uses to drive ADA's binning algorithms (§V-A): uniform,
// exponential, Gaussian, Fisher-F, and arbitrary mixtures, plus truncation
// and scaling combinators and integer operand sampling.
//
// All generators draw from an explicit *rand.Rand so experiments are
// deterministic and reproducible under a fixed seed.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution generates real-valued samples.
type Distribution interface {
	// Sample draws one variate using the given source.
	Sample(rng *rand.Rand) float64
	// Name identifies the distribution for experiment output.
	Name() string
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("Uniform[%g,%g)", u.Lo, u.Hi) }

// Exponential has rate Rate (λ) applied to a domain scaled by Scale: samples
// are Scale * Exp(λ). With Scale = domainMax and λ = 10 this reproduces the
// paper's Fig 5b setup, where nearly all mass sits in the low tenth of the
// domain.
type Exponential struct {
	Rate  float64
	Scale float64
}

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	scale := e.Scale
	if scale == 0 {
		scale = 1
	}
	return scale * rng.ExpFloat64() / e.Rate
}

// Name implements Distribution.
func (e Exponential) Name() string { return fmt.Sprintf("Exp(λ=%g,scale=%g)", e.Rate, e.Scale) }

// Gaussian is the normal distribution N(Mu, Sigma²).
type Gaussian struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mu + g.Sigma*rng.NormFloat64()
}

// Name implements Distribution.
func (g Gaussian) Name() string { return fmt.Sprintf("N(%g,%g)", g.Mu, g.Sigma) }

// FisherF is the F-distribution with D1 and D2 degrees of freedom, scaled by
// Scale. The paper uses F(100, 20) to model heavy-tailed hit patterns
// (Fig 5c).
type FisherF struct {
	D1, D2 float64
	Scale  float64
}

// Sample implements Distribution.
func (f FisherF) Sample(rng *rand.Rand) float64 {
	scale := f.Scale
	if scale == 0 {
		scale = 1
	}
	x1 := sampleChiSquared(rng, f.D1) / f.D1
	x2 := sampleChiSquared(rng, f.D2) / f.D2
	if x2 == 0 {
		x2 = math.SmallestNonzeroFloat64
	}
	return scale * x1 / x2
}

// Name implements Distribution.
func (f FisherF) Name() string { return fmt.Sprintf("F(%g,%g,scale=%g)", f.D1, f.D2, f.Scale) }

// sampleChiSquared draws from χ²(k) = Gamma(k/2, 2).
func sampleChiSquared(rng *rand.Rand, k float64) float64 {
	return 2 * sampleGamma(rng, k/2)
}

// sampleGamma draws from Gamma(shape, 1) using Marsaglia & Tsang's squeeze
// method, with the standard boost for shape < 1.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Component is one weighted member of a Mixture.
type Component struct {
	D      Distribution
	Weight float64
}

// Mixture samples from one of its components with probability proportional
// to the component weight. The paper's Fig 5d (G1+G2) and Fig 5e (Exp+G) are
// two-component mixtures.
type Mixture struct {
	Components []Component
	name       string
}

// NewMixture builds a mixture; weights need not sum to one.
func NewMixture(components ...Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	total := 0.0
	name := "Mix("
	for i, c := range components {
		if c.Weight < 0 {
			return nil, fmt.Errorf("dist: negative mixture weight %g", c.Weight)
		}
		total += c.Weight
		if i > 0 {
			name += "+"
		}
		name += c.D.Name()
	}
	if total == 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to zero")
	}
	name += ")"
	cs := make([]Component, len(components))
	copy(cs, components)
	return &Mixture{Components: cs, name: name}, nil
}

// Sample implements Distribution.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	u := rng.Float64() * total
	for _, c := range m.Components {
		if u < c.Weight {
			return c.D.Sample(rng)
		}
		u -= c.Weight
	}
	return m.Components[len(m.Components)-1].D.Sample(rng)
}

// Name implements Distribution.
func (m *Mixture) Name() string { return m.name }

// Truncated rejects samples outside [Lo, Hi], resampling up to maxTries and
// clamping afterwards. Network operands are range-bound (§II-B), so every
// experiment truncates to the operand domain.
type Truncated struct {
	D      Distribution
	Lo, Hi float64
}

const truncatedMaxTries = 64

// Sample implements Distribution.
func (t Truncated) Sample(rng *rand.Rand) float64 {
	for i := 0; i < truncatedMaxTries; i++ {
		v := t.D.Sample(rng)
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	v := t.D.Sample(rng)
	return math.Min(math.Max(v, t.Lo), t.Hi)
}

// Name implements Distribution.
func (t Truncated) Name() string {
	return fmt.Sprintf("%s|[%g,%g]", t.D.Name(), t.Lo, t.Hi)
}

// PointMass always returns V; used to model constant operands such as a
// fixed rate limit (Fig 1c).
type PointMass struct {
	V float64
}

// Sample implements Distribution.
func (p PointMass) Sample(*rand.Rand) float64 { return p.V }

// Name implements Distribution.
func (p PointMass) Name() string { return fmt.Sprintf("δ(%g)", p.V) }

// IntSampler converts a real-valued distribution into uint64 operand draws,
// clamped to [0, Max].
type IntSampler struct {
	D   Distribution
	Max uint64
	rng *rand.Rand
}

// NewIntSampler builds a sampler with its own deterministic source.
func NewIntSampler(d Distribution, maxValue uint64, seed int64) *IntSampler {
	return &IntSampler{D: d, Max: maxValue, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one integer operand.
func (s *IntSampler) Next() uint64 {
	v := s.D.Sample(s.rng)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v >= float64(s.Max) {
		return s.Max
	}
	return uint64(v)
}

// Draw fills out with operands and returns it.
func (s *IntSampler) Draw(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
