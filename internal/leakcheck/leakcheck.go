// Package leakcheck is a stdlib-only goroutine-leak verifier for the
// concurrency-heavy test packages (fabric worker pools, netsim replay
// fan-outs, the serve ingest shards). It asserts that the goroutines a test
// — or a whole package run — started have exited by the time it finishes:
// worker pools that are merely abandoned instead of shut down keep their
// goroutines parked on channel receives forever, which NumGoroutine exposes
// and a stack dump pins to the leaking function.
//
// The verifier is deliberately simple: snapshot the goroutine count up
// front, and at cleanup time poll until the count returns to the baseline
// or a deadline passes. Polling absorbs benign stragglers (goroutines in
// the last instructions before exiting, runtime bookkeeping); a real leak
// is stable and survives the full deadline, at which point the check fails
// with the goroutine dump so the parked frame is visible.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// deadline bounds how long a check waits for stragglers to exit before
// declaring a leak.
const deadline = 5 * time.Second

// settle polls until the goroutine count is back at (or below) baseline,
// returning the final count and whether it settled.
func settle(baseline int) (int, bool) {
	dl := time.Now().Add(deadline)
	for {
		runtime.GC() // let finalizer-driven and pool goroutines wind down
		n := runtime.NumGoroutine()
		if n <= baseline {
			return n, true
		}
		if time.Now().After(dl) {
			return n, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// dump returns the full goroutine stack dump (the evidence attached to a
// failed check).
func dump() string {
	buf := make([]byte, 1<<20)
	return string(buf[:runtime.Stack(buf, true)])
}

// Check snapshots the current goroutine count and registers a cleanup that
// fails tb if the count has not returned to that baseline by the end of the
// test. Call it first thing in a test that starts workers:
//
//	func TestSoak(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// Subtests sharing goroutines with their parent should call Check in the
// parent only — the cleanup runs after the subtests complete.
func Check(tb testing.TB) {
	tb.Helper()
	baseline := runtime.NumGoroutine()
	tb.Cleanup(func() {
		if n, ok := settle(baseline); !ok {
			tb.Errorf("leakcheck: %d goroutines leaked (%d -> %d):\n%s",
				n-baseline, baseline, n, dump())
		}
	})
}

// VerifyTestMain wraps a package's TestMain: it runs the tests, then
// verifies the package exits with no more goroutines than it started with,
// and exits non-zero (with a stack dump) if any leaked. Use it as the whole
// package's backstop — per-test Check calls localise a leak faster:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
func VerifyTestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if n, ok := settle(baseline); !ok {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutines leaked across the package run (%d -> %d):\n%s\n",
				n-baseline, baseline, n, dump())
			code = 1
		}
	}
	os.Exit(code)
}
