package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

func TestMain(m *testing.M) { VerifyTestMain(m) }

// TestSettleDetectsExit pins the polling core: a goroutine parked past the
// snapshot makes settle fail fast-forward, and settles once released.
func TestSettleDetectsExit(t *testing.T) {
	baseline := runtime.NumGoroutine()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-release
		close(done)
	}()
	if n := runtime.NumGoroutine(); n <= baseline {
		t.Fatalf("goroutine not started: %d <= %d", n, baseline)
	}
	close(release)
	<-done
	if n, ok := settle(baseline); !ok {
		t.Fatalf("settle failed after release: %d goroutines vs baseline %d", n, baseline)
	}
}

// TestCheckCleanTest proves Check passes a test whose goroutines exit.
func TestCheckCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	<-done
}
