package pisa

import (
	"fmt"

	"github.com/ada-repro/ada/internal/tcam"
)

// VarSpec describes one monitored variable for BuildADAProgram.
type VarSpec struct {
	// Name labels the variable (e.g. "R" or "dT").
	Name string
	// Monitoring is the variable's monitoring TCAM.
	Monitoring *tcam.Table
	// Bins is the register cell count (one per bin).
	Bins int
}

// BuildADAProgram lays ADA out on the pipeline the way the P4 implementation
// does (Table II): one stage per monitored variable holding its monitoring
// TCAM and hit registers, then one stage with the shared calculation TCAM.
// ADA(R) and ADA(ΔT) therefore occupy 2 stages, ADA(ΔT, R) occupies 3.
func BuildADAProgram(name string, vars []VarSpec, calc *tcam.Table) (*Pipeline, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("pisa: ADA program needs at least one monitored variable")
	}
	if calc == nil {
		return nil, fmt.Errorf("pisa: ADA program needs a calculation table")
	}
	p := NewPipeline(name, 0)
	for _, v := range vars {
		regs := &RegisterArray{Name: v.Name + ".hits", Cells: v.Bins, Bits: 32}
		stage := &Stage{
			Name:      "monitor." + v.Name,
			Registers: []*RegisterArray{regs},
			Tables: []TableBinding{{
				Table: v.Monitoring,
				Actions: []Action{{
					Name:      "count_hit",
					Ops:       []ALUOp{OpRegisterRead, OpAdd, OpRegisterWrite},
					Registers: []*RegisterArray{regs},
				}},
			}},
		}
		if err := p.AddStage(stage); err != nil {
			return nil, err
		}
	}
	calcStage := &Stage{
		Name: "calculate",
		Tables: []TableBinding{{
			Table: calc,
			Actions: []Action{{
				Name: "load_result",
				Ops:  []ALUOp{OpAdd}, // copy result into the header vector
			}},
		}},
	}
	if err := p.AddStage(calcStage); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
