package pisa

import (
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/tcam"
)

func TestALUOpSupport(t *testing.T) {
	supported := []ALUOp{OpAdd, OpSub, OpShiftLeft, OpShiftRight, OpBitAnd,
		OpBitOr, OpBitXor, OpHash, OpRegisterRead, OpRegisterWrite}
	for _, op := range supported {
		if !op.Supported() {
			t.Errorf("%v must be supported", op)
		}
	}
	for _, op := range []ALUOp{OpMultiply, OpDivide, ALUOp(0), ALUOp(99)} {
		if op.Supported() {
			t.Errorf("%v must not be supported", op)
		}
	}
	for _, op := range []ALUOp{OpAdd, OpMultiply, ALUOp(42)} {
		if op.String() == "" {
			t.Errorf("empty String for op %d", int(op))
		}
	}
}

func TestValidateRejectsMultiplication(t *testing.T) {
	// The core §II constraint: a program that multiplies in an action must
	// not validate — this is why ADA exists.
	p := NewPipeline("bad", 0)
	tb := tcam.MustNew("t", 0, 8)
	stage := &Stage{
		Name: "s0",
		Tables: []TableBinding{{
			Table:   tb,
			Actions: []Action{{Name: "rate_calc", Ops: []ALUOp{OpMultiply}}},
		}},
	}
	if err := p.AddStage(stage); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("Validate error = %v, want ErrUnsupportedOp", err)
	}
}

func TestValidateRejectsCrossStageRegister(t *testing.T) {
	p := NewPipeline("bad", 0)
	reg := &RegisterArray{Name: "counter", Cells: 4, Bits: 32}
	s0 := &Stage{Name: "s0", Registers: []*RegisterArray{reg}}
	s1 := &Stage{
		Name: "s1",
		Tables: []TableBinding{{
			Table: tcam.MustNew("t", 0, 8),
			Actions: []Action{{
				Name:      "touch_foreign",
				Ops:       []ALUOp{OpRegisterRead},
				Registers: []*RegisterArray{reg},
			}},
		}},
	}
	if err := p.AddStage(s0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(s1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); !errors.Is(err, ErrCrossStageRegister) {
		t.Errorf("Validate error = %v, want ErrCrossStageRegister", err)
	}
}

func TestStageBudget(t *testing.T) {
	p := NewPipeline("tiny", 2)
	if err := p.AddStage(&Stage{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(&Stage{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(&Stage{Name: "c"}); !errors.Is(err, ErrStageBudget) {
		t.Errorf("AddStage error = %v, want ErrStageBudget", err)
	}
}

func TestLoopRejected(t *testing.T) {
	p := NewPipeline("loopy", 0)
	s := &Stage{Name: "s"}
	if err := p.AddStage(s); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(s); !errors.Is(err, ErrLoop) {
		t.Errorf("re-adding stage error = %v, want ErrLoop", err)
	}
}

func TestResources(t *testing.T) {
	p := NewPipeline("r", 0)
	tb := tcam.MustNew("calc", 128, 16)
	root, _ := bitstr.Root(16)
	if _, err := tb.InsertPrefix(root, 0, uint64(0)); err != nil {
		t.Fatal(err)
	}
	reg := &RegisterArray{Name: "hits", Cells: 12, Bits: 32}
	if err := p.AddStage(&Stage{
		Name:      "s0",
		Tables:    []TableBinding{{Table: tb}},
		Registers: []*RegisterArray{reg},
	}); err != nil {
		t.Fatal(err)
	}
	r := p.Resources()
	if r.Stages != 1 || r.Tables != 1 || r.TCAMEntries != 1 ||
		r.TCAMCapacity != 128 || r.RegisterCells != 12 {
		t.Errorf("Resources = %+v", r)
	}
	if p.String() == "" {
		t.Error("String must render")
	}
}

func TestBuildADAProgramStageCounts(t *testing.T) {
	// Table II: ADA(R) → 2 stages, ADA(ΔT) → 2 stages, ADA(ΔT, R) → 3.
	calc := tcam.MustNew("calc", 128, 32, 32)
	monR := tcam.MustNew("mon.R", 12, 32)
	monDT := tcam.MustNew("mon.dT", 12, 32)

	tests := []struct {
		name  string
		vars  []VarSpec
		wantS int
	}{
		{"ADA(R)", []VarSpec{{Name: "R", Monitoring: monR, Bins: 8}}, 2},
		{"ADA(dT)", []VarSpec{{Name: "dT", Monitoring: monDT, Bins: 8}}, 2},
		{"ADA(dT,R)", []VarSpec{
			{Name: "dT", Monitoring: monDT, Bins: 8},
			{Name: "R", Monitoring: monR, Bins: 8},
		}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := BuildADAProgram(tt.name, tt.vars, calc)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumStages() != tt.wantS {
				t.Errorf("stages = %d, want %d", p.NumStages(), tt.wantS)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			r := p.Resources()
			wantRegs := 0
			for _, v := range tt.vars {
				wantRegs += v.Bins
			}
			if r.RegisterCells != wantRegs {
				t.Errorf("register cells = %d, want %d", r.RegisterCells, wantRegs)
			}
		})
	}
}

func TestBuildADAProgramErrors(t *testing.T) {
	calc := tcam.MustNew("calc", 0, 8)
	if _, err := BuildADAProgram("x", nil, calc); err == nil {
		t.Error("no variables: want error")
	}
	mon := tcam.MustNew("m", 0, 8)
	if _, err := BuildADAProgram("x", []VarSpec{{Name: "v", Monitoring: mon, Bins: 4}}, nil); err == nil {
		t.Error("nil calc: want error")
	}
}

func TestStagesCopy(t *testing.T) {
	p := NewPipeline("c", 0)
	if err := p.AddStage(&Stage{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	ss := p.Stages()
	ss[0] = nil
	if p.Stages()[0] == nil {
		t.Error("Stages leaked internal slice")
	}
}

// TestForwardingContention captures the paper's motivation that TCAM is
// shared with core functions: an ADA deployment must fit alongside a
// forwarding table within the same stage/entry budget, and the resource
// report must expose the combined footprint the operator trades off.
func TestForwardingContention(t *testing.T) {
	p := NewPipeline("switch", 4)
	// Stage 0: IP forwarding, the TCAM's primary tenant.
	fwd := tcam.MustNew("ipv4.lpm", 1024, 32)
	for i := 0; i < 512; i++ {
		pre, err := bitstr.New(uint64(i)<<23, 9, 32)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fwd.InsertPrefix(pre, 0, i%16); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddStage(&Stage{
		Name:   "forward",
		Tables: []TableBinding{{Table: fwd, Actions: []Action{{Name: "set_egress", Ops: []ALUOp{OpAdd}}}}},
	}); err != nil {
		t.Fatal(err)
	}
	// ADA occupies the remaining stages.
	mon := tcam.MustNew("ada.mon", 12, 32)
	calc := tcam.MustNew("ada.calc", 128, 32)
	adaP, err := BuildADAProgram("ada", []VarSpec{{Name: "R", Monitoring: mon, Bins: 12}}, calc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range adaP.Stages() {
		if err := p.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := p.Resources()
	if r.Stages != 3 {
		t.Errorf("stages = %d, want 3 (forward + monitor + calc)", r.Stages)
	}
	if r.TCAMCapacity != 1024+12+128 {
		t.Errorf("TCAM capacity = %d, want 1164", r.TCAMCapacity)
	}
	if r.TCAMEntries != 512 {
		t.Errorf("entries = %d, want 512 (ADA tables empty before install)", r.TCAMEntries)
	}
	// A fourth tenant must be rejected by the stage budget.
	if err := p.AddStage(&Stage{Name: "extra1"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(&Stage{Name: "extra2"}); !errors.Is(err, ErrStageBudget) {
		t.Errorf("over-budget stage error = %v, want ErrStageBudget", err)
	}
}
