// Package pisa models the PISA/RMT switch architecture constraints that make
// ADA necessary (§II): a bounded pipeline of match-action stages, an ALU that
// supports only additions, subtractions, shifts, and bitwise logic (no
// multiplication, division, loops, or floating point), stage-local register
// memory, and scarce TCAM.
//
// Programs declare their stage layout; the validator rejects anything a real
// RMT compiler would reject, and the resource report yields the stage/entry
// accounting of the paper's Table II.
package pisa

import (
	"errors"
	"fmt"
	"strings"

	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrUnsupportedOp reports an ALU operation PISA cannot execute at line
	// rate (multiplication, division, ...).
	ErrUnsupportedOp = errors.New("pisa: ALU operation not supported at line rate")
	// ErrStageBudget reports a program exceeding the pipeline's stage count.
	ErrStageBudget = errors.New("pisa: stage budget exceeded")
	// ErrCrossStageRegister reports an action accessing a register array
	// that lives in a different stage; RMT stages cannot share memory.
	ErrCrossStageRegister = errors.New("pisa: register accessed outside its home stage")
	// ErrLoop reports control flow that revisits a stage; PISA pipelines are
	// feed-forward only.
	ErrLoop = errors.New("pisa: loops are not supported")
)

// ALUOp enumerates action primitives.
type ALUOp int

const (
	// OpAdd is integer addition.
	OpAdd ALUOp = iota + 1
	// OpSub is integer subtraction.
	OpSub
	// OpShiftLeft is a logical left shift.
	OpShiftLeft
	// OpShiftRight is a logical right shift.
	OpShiftRight
	// OpBitAnd is bitwise AND.
	OpBitAnd
	// OpBitOr is bitwise OR.
	OpBitOr
	// OpBitXor is bitwise XOR.
	OpBitXor
	// OpHash is a hardware hash function.
	OpHash
	// OpRegisterRead reads a register in the same stage.
	OpRegisterRead
	// OpRegisterWrite writes a register in the same stage.
	OpRegisterWrite
	// OpMultiply is NOT supported; programs using it fail validation. It
	// exists so emulation layers can express what they are replacing.
	OpMultiply
	// OpDivide is NOT supported.
	OpDivide
)

// Supported reports whether the modelled switch executes op at line rate.
func (op ALUOp) Supported() bool {
	switch op {
	case OpMultiply, OpDivide:
		return false
	default:
		return op >= OpAdd && op <= OpRegisterWrite
	}
}

// String implements fmt.Stringer.
func (op ALUOp) String() string {
	names := map[ALUOp]string{
		OpAdd: "add", OpSub: "sub", OpShiftLeft: "shl", OpShiftRight: "shr",
		OpBitAnd: "and", OpBitOr: "or", OpBitXor: "xor", OpHash: "hash",
		OpRegisterRead: "reg_read", OpRegisterWrite: "reg_write",
		OpMultiply: "mul(UNSUPPORTED)", OpDivide: "div(UNSUPPORTED)",
	}
	if s, ok := names[op]; ok {
		return s
	}
	return fmt.Sprintf("ALUOp(%d)", int(op))
}

// RegisterArray is a stage-local array of counters/accumulators.
type RegisterArray struct {
	// Name identifies the array.
	Name string
	// Cells is the number of register cells.
	Cells int
	// Bits is the cell width.
	Bits int
	home *Stage
}

// Action is one match-action table's action: a sequence of ALU primitives
// plus the register arrays it touches.
type Action struct {
	// Name identifies the action for diagnostics.
	Name string
	// Ops is the primitive sequence.
	Ops []ALUOp
	// Registers are the arrays read or written.
	Registers []*RegisterArray
}

// TableBinding attaches a ternary table and its actions to a stage.
type TableBinding struct {
	// Table is the match table.
	Table *tcam.Table
	// Actions are the actions reachable from this table's entries.
	Actions []Action
}

// Stage is one pipeline stage.
type Stage struct {
	// Name identifies the stage.
	Name string
	// Tables are the match tables placed in this stage.
	Tables []TableBinding
	// Registers are the arrays homed in this stage.
	Registers []*RegisterArray
}

// Pipeline is a feed-forward sequence of stages.
type Pipeline struct {
	name      string
	maxStages int
	stages    []*Stage
}

// DefaultMaxStages matches the Tofino ingress pipeline depth.
const DefaultMaxStages = 12

// NewPipeline creates an empty pipeline. maxStages <= 0 selects
// DefaultMaxStages.
func NewPipeline(name string, maxStages int) *Pipeline {
	if maxStages <= 0 {
		maxStages = DefaultMaxStages
	}
	return &Pipeline{name: name, maxStages: maxStages}
}

// AddStage appends a stage, homing its register arrays.
func (p *Pipeline) AddStage(s *Stage) error {
	if len(p.stages) >= p.maxStages {
		return fmt.Errorf("%w: pipeline %q holds %d stages", ErrStageBudget, p.name, p.maxStages)
	}
	for _, st := range p.stages {
		if st == s {
			return fmt.Errorf("%w: stage %q appended twice", ErrLoop, s.Name)
		}
	}
	for _, r := range s.Registers {
		r.home = s
	}
	p.stages = append(p.stages, s)
	return nil
}

// Stages returns the stage list.
func (p *Pipeline) Stages() []*Stage {
	out := make([]*Stage, len(p.stages))
	copy(out, p.stages)
	return out
}

// NumStages returns the occupied stage count.
func (p *Pipeline) NumStages() int { return len(p.stages) }

// Validate enforces the §II constraints: every ALU op must be supported, and
// every register access must target an array homed in the accessing stage.
func (p *Pipeline) Validate() error {
	for _, s := range p.stages {
		for _, tb := range s.Tables {
			for _, a := range tb.Actions {
				for _, op := range a.Ops {
					if !op.Supported() {
						return fmt.Errorf("%w: stage %q action %q uses %v",
							ErrUnsupportedOp, s.Name, a.Name, op)
					}
				}
				for _, r := range a.Registers {
					if r.home != s {
						home := "unhomed"
						if r.home != nil {
							home = r.home.Name
						}
						return fmt.Errorf("%w: stage %q action %q touches %q (home %q)",
							ErrCrossStageRegister, s.Name, a.Name, r.Name, home)
					}
				}
			}
		}
	}
	return nil
}

// Report summarises pipeline resource usage, the quantities Table II counts.
type Report struct {
	// Stages is the number of occupied pipeline stages.
	Stages int
	// TCAMEntries is the total installed ternary entries.
	TCAMEntries int
	// TCAMCapacity is the total declared entry capacity (0 components are
	// unbounded and excluded).
	TCAMCapacity int
	// RegisterCells is the total register cell count.
	RegisterCells int
	// Tables is the number of match tables.
	Tables int
}

// Resources computes the usage report.
func (p *Pipeline) Resources() Report {
	var r Report
	r.Stages = len(p.stages)
	for _, s := range p.stages {
		for _, tb := range s.Tables {
			r.Tables++
			r.TCAMEntries += tb.Table.Len()
			if c := tb.Table.Capacity(); c > 0 {
				r.TCAMCapacity += c
			}
		}
		for _, reg := range s.Registers {
			r.RegisterCells += reg.Cells
		}
	}
	return r
}

// String renders a short multi-line summary.
func (p *Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %q (%d/%d stages)\n", p.name, len(p.stages), p.maxStages)
	for i, s := range p.stages {
		fmt.Fprintf(&b, "  stage %d %q: %d tables, %d register arrays\n",
			i, s.Name, len(s.Tables), len(s.Registers))
	}
	return b.String()
}
