package controlplane

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/trie"
)

// ErrCrashed reports a controller whose CrashHook fired: the process is
// modelled as dead mid-round and the controller instance must be discarded.
// Recovery goes through Recover with the journal.
var ErrCrashed = errors.New("controlplane: controller crashed")

// CrashPoint names where in a round an injected controller crash lands,
// straddling the journal write-ahead boundary: after the intent record is
// durable but before any driver write, between the driver writes, and after
// the commit record. Recovery must converge from every one of them.
type CrashPoint string

// Crash points the round pipeline exposes to Config.CrashHook.
const (
	// CrashAfterIntent: the intent record is journaled; no driver write
	// has happened yet.
	CrashAfterIntent CrashPoint = "after-intent"
	// CrashAfterInstall: the monitoring bins are pushed; the calculation
	// population is not.
	CrashAfterInstall CrashPoint = "after-install"
	// CrashAfterPopulate: the calculation population is committed in the
	// driver; the controller's trie and journal commit are not.
	CrashAfterPopulate CrashPoint = "after-populate"
	// CrashAfterCommit: the commit record is journaled; the data-plane
	// registers may not have been reset.
	CrashAfterCommit CrashPoint = "after-commit"
)

// Journal record kinds.
const (
	// KindIntent is written before a round's driver writes begin.
	KindIntent = "intent"
	// KindCommit is written after a round's shadow trie is committed.
	KindCommit = "commit"
)

// JournalLeaf is one monitoring bin in a journal snapshot.
type JournalLeaf struct {
	Prefix string `json:"prefix"`
	Hits   uint64 `json:"hits"`
}

// JournalRecord is one write-ahead entry: a full snapshot of the controller
// commit state rather than a diff, so recovery needs only the last commit
// record regardless of how much of the log is missing or dangling.
type JournalRecord struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`
	// Budget is the calculation entry budget in force for the round.
	Budget int `json:"budget"`
	// DepthAtLastExpansion reproduces the expansion hysteresis state.
	DepthAtLastExpansion int `json:"depth_at_last_expansion"`
	// Leaves is the full committed bin layout with hit mass.
	Leaves []JournalLeaf `json:"leaves"`
}

// Journal is the controller's write-ahead log: an intent record before any
// driver write of a round and a commit record after the shadow trie swap.
// Records are held in memory and optionally streamed to a sink as JSONL, so
// a restarted process can replay the log from disk with ReadJournal.
type Journal struct {
	mu   sync.Mutex
	recs []JournalRecord
	sink io.Writer
	enc  *json.Encoder
}

// NewJournal returns an empty in-memory journal.
func NewJournal() *Journal { return &Journal{} }

// NewJournalWithSink returns a journal that additionally appends every
// record to w as one JSON object per line.
func NewJournalWithSink(w io.Writer) *Journal {
	return &Journal{sink: w, enc: json.NewEncoder(w)}
}

// Append adds one record.
func (j *Journal) Append(rec JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, rec)
	if j.enc != nil {
		if err := j.enc.Encode(rec); err != nil {
			return fmt.Errorf("controlplane: journal sink: %w", err)
		}
	}
	return nil
}

// Len returns the number of records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Records returns a copy of the log.
func (j *Journal) Records() []JournalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalRecord(nil), j.recs...)
}

// LastCommit returns the most recent commit record, if any. Recovery
// restores from it; everything after it is at most one dangling intent.
func (j *Journal) LastCommit() (JournalRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := len(j.recs) - 1; i >= 0; i-- {
		if j.recs[i].Kind == KindCommit {
			return j.recs[i], true
		}
	}
	return JournalRecord{}, false
}

// DanglingIntent returns the trailing intent record of a round that never
// committed — the signature of a crash between the journal append and the
// driver commit (or anywhere in between).
func (j *Journal) DanglingIntent() (JournalRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := len(j.recs); n > 0 && j.recs[n-1].Kind == KindIntent {
		return j.recs[n-1], true
	}
	return JournalRecord{}, false
}

// ReadJournal replays a JSONL stream written by a sink-backed journal into
// a fresh in-memory journal.
//
// A malformed FINAL record is tolerated: a crash mid-append leaves a torn
// tail (a partially flushed JSON line), and recovery must still replay the
// durable prefix — that is the whole point of the write-ahead log. The torn
// record is discarded; at worst the log loses one dangling intent. A
// malformed record FOLLOWED by further records is not a torn tail but
// mid-stream corruption, and stays fatal.
func ReadJournal(r io.Reader) (*Journal, error) {
	j := NewJournal()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pending error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			// The bad line was not the last one: real corruption.
			return nil, pending
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pending = fmt.Errorf("controlplane: journal replay: %w", err)
			continue
		}
		j.recs = append(j.recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: journal replay: %w", err)
	}
	return j, nil
}

// journalRecord snapshots the controller commit state for the given trie.
func journalRecord(kind string, round, budget, depth int, tr *trie.Trie) JournalRecord {
	bins := tr.Leaves()
	leaves := make([]JournalLeaf, len(bins))
	for i, b := range bins {
		leaves[i] = JournalLeaf{Prefix: b.Prefix.String(), Hits: b.Hits}
	}
	return JournalRecord{Kind: kind, Round: round, Budget: budget,
		DepthAtLastExpansion: depth, Leaves: leaves}
}

// trieFromRecord rebuilds the committed trie from a journal snapshot.
func trieFromRecord(rec JournalRecord, width int) (*trie.Trie, error) {
	bins := make([]trie.Bin, len(rec.Leaves))
	for i, l := range rec.Leaves {
		p, err := bitstr.Parse(l.Prefix)
		if err != nil {
			return nil, fmt.Errorf("controlplane: journal leaf %d: %w", i, err)
		}
		bins[i] = trie.Bin{Prefix: p, Hits: l.Hits}
	}
	return trie.FromBins(width, bins)
}

// RecoveryReport describes one controller restart recovery.
type RecoveryReport struct {
	// FullResync reports that no commit record existed and the controller
	// restarted from Algorithm 1's uniform layout instead of the journal.
	FullResync bool
	// DanglingIntent reports that the journal ended in an intent record —
	// the crash landed mid-round, between the write-ahead append and the
	// commit.
	DanglingIntent bool
	// ReplayedRound is the round number of the commit record restored.
	ReplayedRound int
	// Audit is the pre-repair hardware audit (zero when the driver cannot
	// read back).
	Audit AuditReport
	// BinWrites is the monitoring TCAM writes the recovery reinstall issued.
	BinWrites int
	// CalcWrites / Computed are the calculation repopulation costs. The
	// repopulation diffs against the physical table, so at small divergence
	// it is far cheaper than a from-scratch flash even though the restarted
	// process lost its memo.
	CalcWrites int
	Computed   int
	// Delay is the modelled recovery delay under the Fig 9 cost model.
	Delay time.Duration
}

// Recover rebuilds a controller after a process restart: it restores the
// committed trie, budget, and expansion state from the journal's last
// commit record, audits the hardware read-back against that state,
// reinstalls the monitoring bins (the data-plane hit registers restart at
// zero, like any switch reprogram), and repopulates the calculation table —
// an anti-entropy diff against whatever the crashed run left installed, so
// partially committed rounds and silent corruption both converge to the
// journaled state. With no commit record it falls back to a full resync
// from the initial uniform layout.
//
// The journal is adopted by the recovered controller (cfg.Journal is
// overridden), and a fresh commit record is appended for the recovered
// state.
func Recover(cfg Config, drv Driver, j *Journal) (*Controller, RecoveryReport, error) {
	var rep RecoveryReport
	if j == nil {
		return nil, rep, fmt.Errorf("%w: Recover needs a journal", ErrConfig)
	}
	cfg.Journal = j
	rec, ok := j.LastCommit()
	if !ok {
		// Nothing committed: the crash predates the first successful round.
		// Restart from scratch; the construction-time install plus the first
		// round's populate resynchronise the hardware.
		rep.FullResync = true
		_, rep.DanglingIntent = j.DanglingIntent()
		c, err := NewWithDriver(cfg, drv)
		if err != nil {
			return nil, rep, err
		}
		return c, rep, nil
	}
	_, rep.DanglingIntent = j.DanglingIntent()
	rep.ReplayedRound = rec.Round

	cfg, drv, err := prepare(cfg, drv)
	if err != nil {
		return nil, rep, err
	}
	if rec.Budget > 0 {
		cfg.CalcBudget = rec.Budget
	}
	tr, err := trieFromRecord(rec, drv.Width())
	if err != nil {
		return nil, rep, err
	}
	c := &Controller{cfg: cfg, tr: tr, drv: drv, mon: monitorOf(drv),
		depthAtLastExpansion: rec.DepthAtLastExpansion}
	// Resume the round counter where the journal left off so post-recovery
	// records keep monotonically increasing round numbers.
	c.totals.Rounds = rec.Round
	if c.depthAtLastExpansion == 0 {
		c.depthAtLastExpansion = tr.Depth()
	}

	// Detect divergence before repairing it, so the report separates "what
	// the crash left behind" from "what recovery wrote".
	if aud, ok := drv.(Auditor); ok {
		a, err := aud.AuditCalc(false)
		if err != nil {
			return nil, rep, fmt.Errorf("controlplane: recovery audit: %w", err)
		}
		rep.Audit = a
	}

	// Reinstall the journaled bin layout unconditionally: the crashed run
	// may have pushed a newer layout whose round never committed. This
	// resets the hit registers — the in-flight counts of the crashed round
	// are lost, exactly as on a real switch reprogram.
	binWrites, err := c.installMonitoringImpl(tr.Leaves())
	if err != nil {
		return nil, rep, fmt.Errorf("controlplane: recovery bin install: %w", err)
	}
	rep.BinWrites = binWrites

	// Repopulate toward the journaled trie. The populate path diffs against
	// the physical table, so rows the crashed run already installed — and
	// rows it corrupted — reconcile with minimal writes.
	writes, computed, err := c.populate(tr)
	if err != nil {
		return nil, rep, fmt.Errorf("controlplane: recovery populate: %w", err)
	}
	rep.CalcWrites = writes
	rep.Computed = computed
	tr.CommitGeneration()

	rowReads := rep.Audit.Audited
	rep.Delay = cfg.Cost.RoundCost(0, 0, binWrites+writes, computed, 0) +
		time.Duration(rowReads)*cfg.Cost.PerRowRead

	if err := j.Append(journalRecord(KindCommit, rec.Round, cfg.CalcBudget,
		c.depthAtLastExpansion, tr)); err != nil {
		return nil, rep, err
	}
	return c, rep, nil
}

// populate commits the calculation population for tr through the driver,
// preferring the delta path.
func (c *Controller) populate(tr *trie.Trie) (writes, computed int, err error) {
	if dp, ok := c.drv.(DeltaPopulator); ok {
		w, comp, _, err := dp.PopulateCalcDelta(tr, c.cfg.CalcBudget)
		return w, comp, err
	}
	return c.drv.PopulateCalc(tr, c.cfg.CalcBudget)
}
