package controlplane

import (
	"errors"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/trie"
)

var errFlaky = errors.New("flaky driver")

// flakyDriver wraps the direct driver with scripted failures, the minimal
// in-package stand-in for internal/faults.
type flakyDriver struct {
	inner *DirectDriver

	failReads     int      // fail the next N ReadRegisters
	failInstalls  int      // fail the next N InstallMonitoring
	failPopulates int      // fail the next N PopulateCalc
	failResets    int      // fail the next N ResetRegisters
	staleSnap     []uint64 // returned (once) instead of a real snapshot

	injected time.Duration // reported via TakeInjectedLatency
}

func (d *flakyDriver) Width() int           { return d.inner.Width() }
func (d *flakyDriver) MonitorCapacity() int { return d.inner.MonitorCapacity() }
func (d *flakyDriver) NumBins() int         { return d.inner.NumBins() }
func (d *flakyDriver) Unwrap() Driver       { return d.inner }

func (d *flakyDriver) ReadRegisters() ([]uint64, error) {
	if d.failReads > 0 {
		d.failReads--
		return nil, errFlaky
	}
	if d.staleSnap != nil {
		s := d.staleSnap
		d.staleSnap = nil
		return s, nil
	}
	return d.inner.ReadRegisters()
}

func (d *flakyDriver) ResetRegisters() (int, error) {
	if d.failResets > 0 {
		d.failResets--
		return 0, errFlaky
	}
	return d.inner.ResetRegisters()
}

func (d *flakyDriver) InstallMonitoring(prefixes []bitstr.Prefix) (int, error) {
	if d.failInstalls > 0 {
		d.failInstalls--
		return 0, errFlaky
	}
	return d.inner.InstallMonitoring(prefixes)
}

func (d *flakyDriver) PopulateCalc(tr *trie.Trie, budget int) (int, int, error) {
	if d.failPopulates > 0 {
		d.failPopulates--
		return 0, 0, errFlaky
	}
	return d.inner.PopulateCalc(tr, budget)
}

func (d *flakyDriver) TakeInjectedLatency() time.Duration {
	l := d.injected
	d.injected = 0
	return l
}

// newFlakySystem builds a controller over a flaky driver with a real engine
// target, plus a skewed sampler that forces reshaping every round.
func newFlakySystem(t *testing.T, cfg Config) (*Controller, *flakyDriver, *dist.IntSampler) {
	t.Helper()
	mon, err := monitor.New("mon", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := arith.NewUnaryEngine("calc", 16, cfg.CalcBudget, nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := &flakyDriver{inner: NewDirectDriver(mon, &engineTarget{engine: engine, op: arith.OpSquare})}
	ctl, err := NewWithDriver(cfg, fd)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)
	return ctl, fd, sampler
}

// checkConsistent asserts the invariant a failed round must preserve: the
// driver's installed bins always tile what the trie believes is installed.
func checkConsistent(t *testing.T, ctl *Controller) {
	t.Helper()
	if got, want := ctl.Driver().NumBins(), ctl.Trie().NumLeaves(); got != want {
		t.Fatalf("driver has %d bins, trie has %d leaves", got, want)
	}
	if err := ctl.Trie().Validate(); err != nil {
		t.Fatalf("trie invalid: %v", err)
	}
}

func TestRetryAbsorbsTransientFailure(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	ctl.Monitor().ObserveAll(sampler.Draw(2000))

	fd.failPopulates = 1 // one transient failure, retry must absorb it
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("round degraded despite retry budget: %+v", rep)
	}
	if rep.Retries != 1 || rep.DriverErrors != 1 {
		t.Errorf("Retries = %d, DriverErrors = %d, want 1, 1", rep.Retries, rep.DriverErrors)
	}
	// Backoff is charged into the delay.
	clean := ctl.cfg.Cost.RoundCost(rep.Reads, rep.RegisterWrites, rep.TCAMWrites, rep.Computed, rep.Reused)
	if rep.Delay != clean+ctl.cfg.Retry.BaseBackoff {
		t.Errorf("Delay = %v, want op cost %v + backoff %v", rep.Delay, clean, ctl.cfg.Retry.BaseBackoff)
	}
	checkConsistent(t, ctl)
}

func TestPopulateFailureRollsBackAndRetriesCleanly(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	// Converge once so the engine holds a good population.
	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	if _, err := ctl.Round(); err != nil {
		t.Fatal(err)
	}
	goodGen := ctl.Monitor().Table().Generation()
	leaves := ctl.Trie().NumLeaves()

	// Skewed traffic forces a reshape; populate fails beyond the retry
	// budget, so the whole round must roll back.
	ctl.Monitor().ObserveAll(sampler.Draw(3000))
	fd.failPopulates = ctl.cfg.Retry.MaxAttempts
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonPopulate {
		t.Fatalf("report = %+v, want degraded populate", rep)
	}
	if got := ctl.Trie().NumLeaves(); got != leaves {
		t.Errorf("trie leaves moved on failed round: %d -> %d", leaves, got)
	}
	_ = goodGen
	checkConsistent(t, ctl)
	tot := ctl.Totals()
	if tot.DegradedRounds != 1 {
		t.Errorf("DegradedRounds = %d", tot.DegradedRounds)
	}

	// The same round retried against a healthy driver must succeed from the
	// rolled-back state.
	ctl.Monitor().ObserveAll(sampler.Draw(3000))
	rep, err = ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("retried round degraded: %+v", rep)
	}
	checkConsistent(t, ctl)
}

func TestSnapshotFailureDegrades(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	fd.failReads = ctl.cfg.Retry.MaxAttempts
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonSnapshot {
		t.Fatalf("report = %+v, want degraded snapshot-read", rep)
	}
	checkConsistent(t, ctl)
	// Next round: driver healthy again, full recovery.
	rep, err = ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("recovery round degraded: %+v", rep)
	}
}

func TestStaleSnapshotShapeMismatchDegrades(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	fd.staleSnap = make([]uint64, 3) // wrong bin count: stale driver state
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonStaleSnapshot {
		t.Fatalf("report = %+v, want degraded stale-snapshot", rep)
	}
	checkConsistent(t, ctl)
}

func TestUnhealthyDegradedModeAndRecovery(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	cfg.UnhealthyAfter = 2
	ctl, fd, sampler := newFlakySystem(t, cfg)
	ctl.Monitor().ObserveAll(sampler.Draw(1000))

	// Two consecutive failed rounds flip the controller to unhealthy.
	fd.failReads = 100
	for i := 0; i < 2; i++ {
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Degraded {
			t.Fatalf("round %d not degraded", i)
		}
	}
	if ctl.Health() != Unhealthy {
		t.Fatalf("health = %v, want unhealthy", ctl.Health())
	}

	// Unhealthy rounds only probe (one read attempt, no retries).
	errsBefore := ctl.Totals().DriverErrors
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradedReason != ReasonUnhealthy {
		t.Fatalf("reason = %q, want driver-unhealthy", rep.DegradedReason)
	}
	if got := ctl.Totals().DriverErrors - errsBefore; got != 1 {
		t.Errorf("probe performed %d driver calls, want exactly 1", got)
	}

	// Driver recovers: the probe succeeds and the same call resumes a full
	// round.
	fd.failReads = 0
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	rep, err = ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || rep.Health != Healthy {
		t.Fatalf("recovery round: %+v", rep)
	}
	checkConsistent(t, ctl)
}

func TestRoundDeadlineAborts(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	cfg.Retry.RoundDeadline = cfg.Cost.Base + time.Microsecond // nothing fits
	ctl, fd, sampler := newFlakySystem(t, cfg)
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	_ = fd
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonDeadline {
		t.Fatalf("report = %+v, want degraded round-deadline", rep)
	}
	checkConsistent(t, ctl)
}

func TestResetFailureIsNonFatal(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	fd.failResets = ctl.cfg.Retry.MaxAttempts
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("reset failure must not degrade the round: %+v", rep)
	}
	if !rep.ResetFailed {
		t.Error("ResetFailed not reported")
	}
	if rep.RegisterWrites != 0 {
		t.Errorf("RegisterWrites = %d after failed reset", rep.RegisterWrites)
	}
	checkConsistent(t, ctl)
}

func TestInjectedLatencyChargedIntoDelay(t *testing.T) {
	ctl, fd, sampler := newFlakySystem(t, DefaultConfig(8, 32))
	ctl.Monitor().ObserveAll(sampler.Draw(1000))
	fd.injected = 500 * time.Microsecond
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.InjectedLatency != 500*time.Microsecond {
		t.Errorf("InjectedLatency = %v", rep.InjectedLatency)
	}
	clean := ctl.cfg.Cost.RoundCost(rep.Reads, rep.RegisterWrites, rep.TCAMWrites, rep.Computed, rep.Reused)
	if rep.Delay != clean+500*time.Microsecond {
		t.Errorf("Delay = %v, want %v", rep.Delay, clean+500*time.Microsecond)
	}
}
