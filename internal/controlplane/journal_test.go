package controlplane

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// AuditCalc forwards the audit seam through the scripted flaky driver, so
// the audit tests can exercise failures via the target.
func (d *flakyDriver) AuditCalc(repair bool) (AuditReport, error) {
	return d.inner.AuditCalc(repair)
}

// auditTarget is engineTarget plus the read-back seam: it records the rows
// it committed and audits the engine's store against them — the in-package
// stand-in for core's auditable calculation target.
type auditTarget struct {
	engine     *arith.UnaryEngine
	op         arith.UnaryOp
	expect     []tcam.Row
	failAudits int // fail the next N AuditCalc calls
}

func (t *auditTarget) Populate(tr *trie.Trie, budget int) (int, int, error) {
	entries, err := population.ADAUnary(tr, t.op.Func(), budget, population.Midpoint)
	if err != nil {
		return 0, 0, err
	}
	writes, err := t.engine.Reload(entries)
	if err != nil {
		return writes, len(entries), err
	}
	rows := make([]tcam.Row, len(entries))
	for i, e := range entries {
		rows[i] = tcam.RowFromPrefix(e.P, e.Result)
	}
	t.expect = rows
	return writes, len(entries), nil
}

func (t *auditTarget) AuditCalc(repair bool) (AuditReport, error) {
	if t.failAudits > 0 {
		t.failAudits--
		return AuditReport{}, errFlaky
	}
	return AuditStore(t.engine.Store(), t.expect, repair)
}

// newAuditSystem builds a controller whose driver can read back and whose
// target records the expected population.
func newAuditSystem(t *testing.T, cfg Config) (*Controller, *auditTarget, *flakyDriver, *dist.IntSampler) {
	t.Helper()
	mon, err := monitor.New("mon", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Physical capacity above the budget leaves room for injected ghost rows.
	engine, err := arith.NewUnaryEngine("calc", 16, cfg.CalcBudget+8, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := &auditTarget{engine: engine, op: arith.OpSquare}
	fd := &flakyDriver{inner: NewDirectDriver(mon, target)}
	ctl, err := NewWithDriver(cfg, fd)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)
	return ctl, target, fd, sampler
}

// populationFP renders the population a trie and budget imply, in the
// store's fingerprint format, as the convergence oracle.
func populationFP(t *testing.T, tr *trie.Trie, op arith.UnaryOp, budget int) string {
	t.Helper()
	entries, err := population.ADAUnary(tr, op.Func(), budget, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := arith.NewUnaryEngine("ref", tr.Width(), budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Reload(entries); err != nil {
		t.Fatal(err)
	}
	return ref.Store().Fingerprint()
}

func TestJournalRecordsRounds(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig(8, 32)
	cfg.Journal = NewJournalWithSink(&buf)
	ctl, _, _, sampler := newAuditSystem(t, cfg)

	j := ctl.Journal()
	if j == nil {
		t.Fatal("Journal() = nil with journaling on")
	}
	if j.Len() != 1 || j.Records()[0].Kind != KindCommit || j.Records()[0].Round != 0 {
		t.Fatalf("construction should journal a round-0 commit, got %+v", j.Records())
	}

	const rounds = 5
	for i := 0; i < rounds; i++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		if _, err := ctl.Round(); err != nil {
			t.Fatal(err)
		}
	}
	recs := j.Records()
	if len(recs) != 1+2*rounds {
		t.Fatalf("journal has %d records, want %d (1 + intent/commit per round)", len(recs), 1+2*rounds)
	}
	for i := 0; i < rounds; i++ {
		in, cm := recs[1+2*i], recs[2+2*i]
		if in.Kind != KindIntent || cm.Kind != KindCommit || in.Round != i+1 || cm.Round != i+1 {
			t.Fatalf("round %d records: %+v / %+v", i+1, in, cm)
		}
		if len(cm.Leaves) == 0 || cm.Budget != 32 {
			t.Fatalf("commit record not a full snapshot: %+v", cm)
		}
	}
	if _, ok := j.DanglingIntent(); ok {
		t.Error("clean run reports a dangling intent")
	}
	last, ok := j.LastCommit()
	if !ok || last.Round != rounds {
		t.Fatalf("LastCommit = %+v, %v", last, ok)
	}

	// The JSONL sink replays to an identical journal.
	replayed, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Records(), recs) {
		t.Error("sink replay diverges from in-memory journal")
	}
}

// TestRecoverFromEveryCrashPoint crashes the controller at each point that
// straddles the write-ahead boundary and checks recovery converges the
// monitoring layout and the calculation table to the journaled commit state.
func TestRecoverFromEveryCrashPoint(t *testing.T) {
	points := []CrashPoint{CrashAfterIntent, CrashAfterInstall, CrashAfterPopulate, CrashAfterCommit}
	for _, pt := range points {
		pt := pt
		t.Run(string(pt), func(t *testing.T) {
			cfg := DefaultConfig(8, 64)
			cfg.Journal = NewJournal()
			arm := false
			cfg.CrashHook = func(p CrashPoint) bool { return arm && p == pt }
			ctl, target, _, sampler := newAuditSystem(t, cfg)

			for i := 0; i < 3; i++ {
				ctl.Monitor().ObserveAll(sampler.Draw(2000))
				if _, err := ctl.Round(); err != nil {
					t.Fatal(err)
				}
			}
			// Shift the hot region so the structure keeps moving (the
			// after-install point only exists on rounds that reinstall bins).
			arm = true
			crashed := false
			for i := 0; i < 20 && !crashed; i++ {
				for k := 0; k < 2000; k++ {
					ctl.Monitor().Observe(uint64(60000 + k%50))
				}
				_, err := ctl.Round()
				switch {
				case errors.Is(err, ErrCrashed):
					crashed = true
				case err != nil:
					t.Fatal(err)
				}
			}
			if !crashed {
				t.Fatalf("crash point %s never fired", pt)
			}
			if !ctl.Crashed() {
				t.Error("Crashed() = false after ErrCrashed")
			}
			if _, err := ctl.Round(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("round on crashed controller: %v, want ErrCrashed", err)
			}

			arm = false
			j := ctl.Journal()
			wantCommit, ok := j.LastCommit()
			if !ok {
				t.Fatal("no commit record to recover from")
			}
			wantDangling := pt != CrashAfterCommit
			ctl2, rec, err := Recover(cfg, NewDirectDriver(ctl.Monitor(), target), j)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if rec.FullResync {
				t.Error("FullResync with a commit record present")
			}
			if rec.DanglingIntent != wantDangling {
				t.Errorf("DanglingIntent = %v, want %v", rec.DanglingIntent, wantDangling)
			}
			if rec.ReplayedRound != wantCommit.Round {
				t.Errorf("ReplayedRound = %d, want %d", rec.ReplayedRound, wantCommit.Round)
			}
			checkConsistent(t, ctl2)
			leaves := ctl2.Trie().Leaves()
			if len(leaves) != len(wantCommit.Leaves) {
				t.Fatalf("recovered %d leaves, want %d", len(leaves), len(wantCommit.Leaves))
			}
			for i, b := range leaves {
				if b.Prefix.String() != wantCommit.Leaves[i].Prefix || b.Hits != wantCommit.Leaves[i].Hits {
					t.Fatalf("leaf %d: %v/%d, want %s/%d", i,
						b.Prefix, b.Hits, wantCommit.Leaves[i].Prefix, wantCommit.Leaves[i].Hits)
				}
			}
			// The calculation table must equal a from-scratch population of
			// the journaled trie — the never-crashed oracle.
			want := populationFP(t, ctl2.Trie(), arith.OpSquare, ctl2.CalcBudget())
			if got := target.engine.Store().Fingerprint(); got != want {
				t.Error("recovered calculation table diverges from journaled population")
			}
			if afp, err := target.engine.Store().AuditFingerprint(); err != nil || afp != want {
				t.Errorf("hardware read-back diverges after recovery (err %v)", err)
			}
			// The journal now ends with the recovery's own commit record.
			if _, dangling := j.DanglingIntent(); dangling {
				t.Error("dangling intent survives recovery")
			}
			// And the recovered controller keeps running rounds.
			for i := 0; i < 3; i++ {
				ctl2.Monitor().ObserveAll(sampler.Draw(2000))
				if rep, err := ctl2.Round(); err != nil || rep.Degraded {
					t.Fatalf("post-recovery round: %+v, %v", rep, err)
				}
			}
		})
	}
}

func TestRecoverWithoutCommitFallsBackToFullResync(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	mon, _ := monitor.New("mon", 16, 0)
	engine, _ := arith.NewUnaryEngine("calc", 16, 32, nil)
	target := &auditTarget{engine: engine, op: arith.OpSquare}

	j := NewJournal()
	// Simulate a crash in the WAL window of the very first round: one
	// dangling intent, no commit ever written.
	tr, err := trie.NewInitial(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord(KindIntent, 1, 32, tr.Depth(), tr)); err != nil {
		t.Fatal(err)
	}
	ctl, rec, err := Recover(cfg, NewDirectDriver(mon, target), j)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FullResync || !rec.DanglingIntent {
		t.Errorf("report = %+v, want FullResync with DanglingIntent", rec)
	}
	checkConsistent(t, ctl)
	if ctl.Journal() != j {
		t.Error("recovered controller did not adopt the journal")
	}
	if _, _, err := Recover(cfg, NewDirectDriver(mon, target), nil); err == nil {
		t.Error("Recover with nil journal: want error")
	}
}

// TestRecoverRepairsSilentCorruption tampers the calculation table behind
// the controller's back and checks a restart detects the divergence in its
// audit and converges the hardware with an anti-entropy diff, not a flash.
func TestRecoverRepairsSilentCorruption(t *testing.T) {
	cfg := DefaultConfig(8, 64)
	cfg.Journal = NewJournal()
	ctl, target, _, sampler := newAuditSystem(t, cfg)
	for i := 0; i < 4; i++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		if _, err := ctl.Round(); err != nil {
			t.Fatal(err)
		}
	}

	tb := target.engine.Table()
	victim := target.expect[0]
	if err := tb.TamperData(victim.Fields, victim.Priority, victim.Data.(uint64)+1); err != nil {
		t.Fatal(err)
	}
	if err := tb.TamperInsert([]tcam.Field{{Value: 1<<16 - 1, Mask: 1<<16 - 1}}, 0, uint64(7)); err != nil {
		t.Fatal(err)
	}
	if err := tb.TamperDelete(target.expect[1].Fields, target.expect[1].Priority); err != nil {
		t.Fatal(err)
	}

	ctl2, rec, err := Recover(cfg, NewDirectDriver(ctl.Monitor(), target), ctl.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Audit.Corrupted != 1 || rec.Audit.Ghost != 1 || rec.Audit.Missing != 1 {
		t.Errorf("recovery audit = %+v, want 1 corrupted / 1 ghost / 1 missing", rec.Audit)
	}
	// Anti-entropy: the repopulation writes scale with the divergence, far
	// below the full budget flash a naive recovery would issue.
	if rec.CalcWrites < 3 || rec.CalcWrites > 10 {
		t.Errorf("recovery calc writes = %d, want small diff (3..10), not a %d-entry flash",
			rec.CalcWrites, ctl2.CalcBudget())
	}
	want := populationFP(t, ctl2.Trie(), arith.OpSquare, ctl2.CalcBudget())
	if afp, err := target.engine.Store().AuditFingerprint(); err != nil || afp != want {
		t.Errorf("hardware not healed by recovery (err %v)", err)
	}
}

// TestAuditCadenceDetectsAndRepairs runs the periodic read-back audit
// against seeded silent corruption: rounds before the cadence stay blind,
// the audit round classifies and repairs, and totals account for it.
func TestAuditCadenceDetectsAndRepairs(t *testing.T) {
	cfg := DefaultConfig(8, 64)
	cfg.AuditEvery = 3
	ctl, target, _, sampler := newAuditSystem(t, cfg)

	for i := 0; i < 3; i++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		if rep.AuditRan {
			t.Fatalf("round %d audited before the cadence", i+1)
		}
	}

	tb := target.engine.Table()
	victim := target.expect[0]
	if err := tb.TamperData(victim.Fields, victim.Priority, victim.Data.(uint64)^1); err != nil {
		t.Fatal(err)
	}
	if err := tb.TamperInsert([]tcam.Field{{Value: 1<<16 - 1, Mask: 1<<16 - 1}}, 0, uint64(7)); err != nil {
		t.Fatal(err)
	}

	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AuditRan {
		t.Fatal("4th round did not audit (AuditEvery=3)")
	}
	if rep.Audit.Corrupted != 1 || rep.Audit.Ghost != 1 {
		t.Errorf("audit = %+v, want 1 corrupted / 1 ghost", rep.Audit)
	}
	if !rep.Audit.Repaired || rep.Audit.RepairWrites != 2 {
		t.Errorf("repair = %v/%d writes, want true/2", rep.Audit.Repaired, rep.Audit.RepairWrites)
	}
	tot := ctl.Totals()
	if tot.Audits != 1 || tot.AuditMismatches != 2 || tot.RepairWrites != 2 {
		t.Errorf("totals audits=%d mismatches=%d repairs=%d, want 1/2/2",
			tot.Audits, tot.AuditMismatches, tot.RepairWrites)
	}
	// The audit costs reads: the round's delay includes PerRowRead × rows.
	if rep.Delay < time.Duration(rep.Audit.Audited)*cfg.Cost.PerRowRead {
		t.Errorf("delay %v does not cover %d row reads", rep.Delay, rep.Audit.Audited)
	}

	// Next cadence window: clean table audits clean.
	var last RoundReport
	for i := 0; i < 3; i++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		if last, err = ctl.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if !last.AuditRan || !last.Audit.Clean() {
		t.Errorf("cadence audit = ran %v, %+v; want clean audit", last.AuditRan, last.Audit)
	}
}

// TestAuditForcedAfterRetryExhaustedRound asserts the anti-entropy guard:
// a round that exhausted retries (possibly leaving half-landed writes)
// forces a read-back audit on the next round regardless of cadence.
func TestAuditForcedAfterRetryExhaustedRound(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	cfg.AuditEvery = 1000 // cadence effectively never
	ctl, _, fd, sampler := newAuditSystem(t, cfg)

	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	if rep, err := ctl.Round(); err != nil || rep.AuditRan {
		t.Fatalf("clean round: %+v, %v", rep, err)
	}

	fd.failPopulates = 3 // == MaxAttempts: retry-exhausted round
	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	rep, err := ctl.Round()
	if err != nil || !rep.Degraded {
		t.Fatalf("expected degraded round, got %+v, %v", rep, err)
	}

	ctl.Monitor().ObserveAll(sampler.Draw(2000))
	rep, err = ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AuditRan {
		t.Error("no forced audit after a retry-exhausted round")
	}
}

// TestDegradedReentryThroughAuditFailure is the double-dip scenario: the
// audit seam fails until the controller degrades to Unhealthy, a probe
// recovers it, and then the audit fails again — health probing and the
// round reports must transition correctly both times.
func TestDegradedReentryThroughAuditFailure(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	cfg.AuditEvery = 1
	cfg.UnhealthyAfter = 2
	ctl, target, _, sampler := newAuditSystem(t, cfg)

	round := func() RoundReport {
		t.Helper()
		ctl.Monitor().ObserveAll(sampler.Draw(1000))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	if rep := round(); rep.Degraded {
		t.Fatalf("round 1 degraded: %+v", rep)
	}

	for dip := 1; dip <= 2; dip++ {
		// Two audit-failing rounds (3 retried errors each) flip health.
		target.failAudits = 6
		rep := round()
		if !rep.Degraded || rep.DegradedReason != ReasonAudit || rep.Health != Healthy {
			t.Fatalf("dip %d first failure: %+v, want degraded calc-audit while still healthy", dip, rep)
		}
		rep = round()
		if !rep.Degraded || rep.DegradedReason != ReasonAudit || rep.Health != Unhealthy {
			t.Fatalf("dip %d second failure: %+v, want degraded calc-audit and unhealthy", dip, rep)
		}
		if ctl.Health() != Unhealthy {
			t.Fatalf("dip %d: controller health %v, want unhealthy", dip, ctl.Health())
		}
		// Probe round: re-enters, commits, and reports healthy again. The
		// probe path skips the audit, so the forced audit stays pending.
		rep = round()
		if rep.Degraded || rep.Health != Healthy || rep.AuditRan {
			t.Fatalf("dip %d probe: %+v, want healthy committed round without audit", dip, rep)
		}
		// The pending audit lands on the next normal round and succeeds.
		rep = round()
		if rep.Degraded || !rep.AuditRan || !rep.Audit.Clean() {
			t.Fatalf("dip %d post-recovery audit: %+v, want clean audit", dip, rep)
		}
	}
	if tot := ctl.Totals(); tot.DegradedRounds != 4 {
		t.Errorf("degraded rounds = %d, want 4 (two per dip)", tot.DegradedRounds)
	}
}

// cancelOnReadDriver cancels the round's context from inside the first
// register read, modelling a caller deadline landing mid-retry.
type cancelOnReadDriver struct {
	Driver
	cancel context.CancelFunc
}

func (d *cancelOnReadDriver) ReadRegisters() ([]uint64, error) {
	d.cancel()
	return nil, errFlaky
}

func TestRoundCtxCancellation(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	ctl, _, _, sampler := newAuditSystem(t, cfg)
	ctl.Monitor().ObserveAll(sampler.Draw(1000))

	// Pre-cancelled context: the round degrades immediately, no driver call.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := ctl.RoundCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonCancelled || rep.DriverErrors != 0 {
		t.Fatalf("pre-cancelled round: %+v, want degraded %q", rep, ReasonCancelled)
	}

	// The controller stays usable afterwards.
	if rep, err := ctl.Round(); err != nil || rep.Degraded {
		t.Fatalf("round after cancellation: %+v, %v", rep, err)
	}
}

func TestCancellationStopsRetryLoop(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	cfg.Retry = RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	mon, _ := monitor.New("mon", 16, 0)
	engine, _ := arith.NewUnaryEngine("calc", 16, 32, nil)
	target := &auditTarget{engine: engine, op: arith.OpSquare}
	ctx, cancel := context.WithCancel(context.Background())
	cfg.WrapDriver = func(d Driver) Driver { return &cancelOnReadDriver{Driver: d, cancel: cancel} }
	ctl, err := New(cfg, mon, target)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := ctl.RoundCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedReason != ReasonCancelled {
		t.Fatalf("round = %+v, want degraded %q", rep, ReasonCancelled)
	}
	// One failed attempt, then the cancellation check stopped the loop cold
	// instead of burning the other 49 attempts.
	if rep.DriverErrors != 1 || rep.Retries > 1 {
		t.Errorf("driverErrors=%d retries=%d; cancellation did not stop the retry loop",
			rep.DriverErrors, rep.Retries)
	}
	if !strings.Contains(rep.LastError, context.Canceled.Error()) {
		t.Errorf("LastError %q does not surface the cancellation", rep.LastError)
	}
}

// TestReadJournalTornTail pins the crash-consistency contract of the JSONL
// sink: a process that dies mid-append leaves a partially flushed final line,
// and ReadJournal must replay the durable prefix rather than refuse the whole
// log. Corruption anywhere BEFORE the final record stays fatal — that is not
// a torn tail, it is a damaged log.
func TestReadJournalTornTail(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig(8, 32)
	cfg.Journal = NewJournalWithSink(&buf)
	ctl, target, _, sampler := newAuditSystem(t, cfg)
	const rounds = 4
	for i := 0; i < rounds; i++ {
		ctl.Monitor().ObserveAll(sampler.Draw(2000))
		if _, err := ctl.Round(); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	recs := ctl.Journal().Records()

	// Tear the final record mid-line, as a crash between write and flush
	// would: drop the trailing newline plus half the last JSON object.
	lastStart := bytes.LastIndexByte(bytes.TrimRight(full, "\n"), '\n') + 1
	tornAt := lastStart + (len(full)-lastStart)/2
	torn := full[:tornAt]
	if bytes.HasSuffix(torn, []byte("\n")) {
		t.Fatal("tear landed on a record boundary; test setup broken")
	}

	j, err := ReadJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("ReadJournal on torn tail: %v", err)
	}
	if got, want := j.Len(), len(recs)-1; got != want {
		t.Fatalf("replayed %d records, want %d (torn tail discarded)", got, want)
	}
	if !reflect.DeepEqual(j.Records(), recs[:len(recs)-1]) {
		t.Error("replayed prefix diverges from the in-memory journal")
	}

	// The torn log must still drive a full recovery.
	ctl2, rec, err := Recover(cfg, NewDirectDriver(ctl.Monitor(), target), j)
	if err != nil {
		t.Fatalf("Recover from torn journal: %v", err)
	}
	if rec.FullResync {
		t.Error("FullResync despite committed records surviving the tear")
	}
	if rep, err := ctl2.Round(); err != nil || rep.Degraded {
		t.Fatalf("post-recovery round: %+v, %v", rep, err)
	}

	// An empty final fragment (crash right after the newline) is simply a
	// complete log.
	j2, err := ReadJournal(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != len(recs) {
		t.Fatalf("clean replay lost records: %d != %d", j2.Len(), len(recs))
	}

	// Mid-stream corruption is NOT a torn tail: damage a record that has
	// complete records after it and the replay must refuse.
	lines := bytes.SplitAfter(full, []byte("\n"))
	corrupt := bytes.Join([][]byte{
		lines[0],
		[]byte("{\"kind\":\"intent\",\"round\"\n"), // truncated JSON mid-log
		bytes.Join(lines[1:], nil),
	}, nil)
	if _, err := ReadJournal(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("mid-stream corruption replayed without error")
	}
}
