package controlplane

import (
	"github.com/ada-repro/ada/internal/tcam"
)

// AuditReport describes one read-back audit of the calculation table: how
// many physical rows were read, how the hardware diverged from the
// controller's expected population, and what the repair cost.
type AuditReport struct {
	// Audited is the number of physical rows read back.
	Audited int
	// Corrupted counts rows whose match key the controller installed but
	// whose action data diverged (silent payload corruption).
	Corrupted int
	// Ghost counts physical rows the controller never installed.
	Ghost int
	// Missing counts expected rows absent from the hardware.
	Missing int
	// Repaired reports that an anti-entropy repair delta was committed.
	Repaired bool
	// RepairWrites is the TCAM writes the repair issued (0 when clean or
	// when the audit ran in detect-only mode).
	RepairWrites int
}

// Mismatched is the total divergent rows the audit found.
func (r AuditReport) Mismatched() int { return r.Corrupted + r.Ghost + r.Missing }

// Clean reports whether the hardware matched the expected population.
func (r AuditReport) Clean() bool { return r.Mismatched() == 0 }

// Add folds another audit into this one (multi-table systems sum their
// per-table audits into one report).
func (r *AuditReport) Add(o AuditReport) {
	r.Audited += o.Audited
	r.Corrupted += o.Corrupted
	r.Ghost += o.Ghost
	r.Missing += o.Missing
	r.Repaired = r.Repaired || o.Repaired
	r.RepairWrites += o.RepairWrites
}

// Auditor is the optional read-back extension of Driver (like
// DeltaPopulator): a driver that can read the physically installed
// calculation rows back and compare them against the controller's expected
// population, repairing divergence with a minimal anti-entropy delta when
// repair is true. Drivers that cannot read back simply don't implement it
// and the controller never audits.
type Auditor interface {
	AuditCalc(repair bool) (AuditReport, error)
}

// AuditableTarget is the target-side audit seam DirectDriver forwards to —
// the core package's calculation targets implement it by diffing their
// installed shadow against the store's read-back.
type AuditableTarget interface {
	AuditCalc(repair bool) (AuditReport, error)
}

// AuditCalc implements Auditor by forwarding to the target when it supports
// auditing; targets that don't (and monitoring-only drivers) audit
// trivially clean.
func (d *DirectDriver) AuditCalc(repair bool) (AuditReport, error) {
	if d.target == nil {
		return AuditReport{}, nil
	}
	if at, ok := d.target.(AuditableTarget); ok {
		return at.AuditCalc(repair)
	}
	return AuditReport{}, nil
}

// AuditStore diffs a store's physical read-back against the expected
// population and classifies every divergent row: same key but different
// data = corrupted, physically present but not expected = ghost, expected
// but physically absent = missing. With repair set and any divergence
// found, it commits the store's minimal anti-entropy repair delta. This is
// the shared classifier behind every AuditableTarget.
func AuditStore(st tcam.Store, expect []tcam.Row, repair bool) (AuditReport, error) {
	digests, err := st.ReadRows()
	if err != nil {
		return AuditReport{}, err
	}
	want := make(map[string]tcam.Row, len(expect))
	for _, r := range expect {
		want[tcam.RowKey(r.Fields, r.Priority)] = r
	}
	var rep AuditReport
	rep.Audited = len(digests)
	seen := make(map[string]bool, len(digests))
	for _, d := range digests {
		w, ok := want[d.Key]
		if !ok {
			rep.Ghost++
			continue
		}
		seen[d.Key] = true
		if !tcam.DataEqual(w.Data, d.Data) {
			rep.Corrupted++
		}
	}
	for k := range want {
		if !seen[k] {
			rep.Missing++
		}
	}
	if repair && rep.Mismatched() > 0 {
		writes, err := st.AuditRepair(expect)
		if err != nil {
			return rep, err
		}
		rep.Repaired = true
		rep.RepairWrites = writes
	}
	return rep, nil
}
