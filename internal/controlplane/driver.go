package controlplane

import (
	"time"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/trie"
)

// Driver is the switch-driver boundary: the seam where the paper's gRPC wire
// sits between the controller and the Tofino driver. Every data-plane
// touch the controller makes — register reads/resets, monitoring-table
// installs, calculation-table population — goes through this interface, so a
// fault-injecting wrapper (internal/faults) can make any of them fail, stall,
// or return stale state exactly where a real driver would.
//
// All operations may fail transiently; the controller retries them under its
// RetryPolicy and degrades to serving the last good population when they
// keep failing.
type Driver interface {
	// Width returns the operand width of the monitored variable in bits.
	Width() int
	// MonitorCapacity returns the monitoring TCAM capacity (0 = unbounded).
	MonitorCapacity() int
	// NumBins returns the currently installed monitoring bin count.
	NumBins() int
	// ReadRegisters snapshots the per-bin hit counters (one register read
	// per bin).
	ReadRegisters() ([]uint64, error)
	// ResetRegisters zeroes the hit counters and returns the register
	// writes performed.
	ResetRegisters() (int, error)
	// InstallMonitoring replaces the monitoring bins atomically, returning
	// the TCAM writes performed. On error the previous bins remain
	// installed.
	InstallMonitoring(prefixes []bitstr.Prefix) (int, error)
	// PopulateCalc rebuilds the calculation population from the trie into a
	// shadow generation and commits it atomically, returning TCAM writes
	// and entries computed. On error the previous population remains
	// installed in full.
	PopulateCalc(tr *trie.Trie, budget int) (writes, computed int, err error)
}

// DeltaPopulator is the optional incremental extension of Driver: a driver
// that can reconcile the calculation population against its shadow copy,
// emitting only the changed rows. The controller prefers this path when the
// driver implements it; drivers that do not fall back to the full
// PopulateCalc. reused counts entries served from the driver's memo instead
// of recomputed — the quantity CostModel.PerEntryReused prices. The end
// state must be identical to PopulateCalc's, and on error the previous
// population must remain fully installed.
type DeltaPopulator interface {
	PopulateCalcDelta(tr *trie.Trie, budget int) (writes, computed, reused int, err error)
}

// TierMoves is one tier-placement pass's accounting: rows moved between the
// TCAM and SRAM tiers of a tiered calculation store and the physical writes
// the moves cost in each memory.
type TierMoves struct {
	// Promotions counts rows moved SRAM → TCAM.
	Promotions int
	// Demotions counts rows moved TCAM → SRAM.
	Demotions int
	// TCAMWrites counts the TCAM row writes the moves cost, charged at
	// CostModel.PerTCAMWrite.
	TCAMWrites int
	// SRAMWrites counts the SRAM row writes of the round — tier-move
	// invalidates/installs plus any populate-time spills — charged at
	// CostModel.PerSRAMWrite.
	SRAMWrites int
}

// TierPlacer is the optional tier-placement extension of Driver (and of the
// targets DirectDriver fronts): after each committed round, a driver whose
// calculation store tiers rows across TCAM and SRAM re-ranks placement from
// the trie's per-bin hit registers — the same counters Algorithm 2 reads.
// placed reports whether a tiered store was actually present (false means
// the step was a no-op); moves must carry the write accounting either way,
// including on error, so the controller charges work that landed before a
// failure.
type TierPlacer interface {
	PlaceTiers(tr *trie.Trie) (moves TierMoves, placed bool, err error)
}

// LatencyReporter is implemented by drivers that model per-op latency beyond
// the CostModel's calibrated operation costs (e.g. injected latency spikes).
// The controller drains it after each driver call and charges the result
// into the round's Delay and deadline budget.
type LatencyReporter interface {
	// TakeInjectedLatency returns the extra latency accumulated since the
	// last call and resets the accumulator.
	TakeInjectedLatency() time.Duration
}

// DirectDriver is the in-process implementation of Driver: it talks straight
// to the tcam/monitor model with no wire in between, and never fails unless
// the underlying tables do (capacity, validation). This is the seed
// behaviour every pre-Driver caller had.
type DirectDriver struct {
	mon    *monitor.Monitor
	target Target
	// snap is the register-snapshot scratch buffer, reused across rounds so
	// a converged control loop stops allocating one slice per snapshot.
	snap []uint64
}

// NewDirectDriver wraps the in-process monitor and calculation target.
// target may be nil for monitoring-only variables.
func NewDirectDriver(mon *monitor.Monitor, target Target) *DirectDriver {
	return &DirectDriver{mon: mon, target: target}
}

// Width implements Driver.
func (d *DirectDriver) Width() int { return d.mon.Width() }

// MonitorCapacity implements Driver.
func (d *DirectDriver) MonitorCapacity() int { return d.mon.Table().Capacity() }

// NumBins implements Driver.
func (d *DirectDriver) NumBins() int { return d.mon.NumBins() }

// ReadRegisters implements Driver. The returned slice is valid until the
// next ReadRegisters call on this driver: it is a reused scratch buffer, and
// the controller consumes each snapshot within its round.
func (d *DirectDriver) ReadRegisters() ([]uint64, error) {
	d.snap = d.mon.SnapshotInto(d.snap)
	return d.snap, nil
}

// ResetRegisters implements Driver.
func (d *DirectDriver) ResetRegisters() (int, error) {
	d.mon.Reset()
	return d.mon.NumBins(), nil
}

// InstallMonitoring implements Driver.
func (d *DirectDriver) InstallMonitoring(prefixes []bitstr.Prefix) (int, error) {
	return d.mon.Install(prefixes)
}

// PopulateCalc implements Driver.
func (d *DirectDriver) PopulateCalc(tr *trie.Trie, budget int) (int, int, error) {
	if d.target == nil {
		return 0, 0, nil
	}
	return d.target.Populate(tr, budget)
}

// PopulateCalcDelta implements DeltaPopulator: it forwards to the target's
// incremental path when the target supports one and falls back to the full
// repopulation (with zero reuse) otherwise.
func (d *DirectDriver) PopulateCalcDelta(tr *trie.Trie, budget int) (int, int, int, error) {
	if d.target == nil {
		return 0, 0, 0, nil
	}
	if dt, ok := d.target.(DeltaTarget); ok {
		return dt.PopulateDelta(tr, budget)
	}
	writes, computed, err := d.target.Populate(tr, budget)
	return writes, computed, 0, err
}

// PlaceTiers implements TierPlacer by forwarding to the target when it can
// place tiers (the core targets mounted on a tiered store); other targets
// report placed=false and the controller skips the step.
func (d *DirectDriver) PlaceTiers(tr *trie.Trie) (TierMoves, bool, error) {
	if tp, ok := d.target.(TierPlacer); ok {
		return tp.PlaceTiers(tr)
	}
	return TierMoves{}, false, nil
}

// Monitor exposes the wrapped monitor.
func (d *DirectDriver) Monitor() *monitor.Monitor { return d.mon }

// RetryPolicy bounds the controller's retries against a flaky driver. Retry
// backoff is charged through the CostModel into the round's Delay, so the
// Fig 9 convergence accounting stays honest under faults.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per driver operation (minimum 1).
	MaxAttempts int
	// BaseBackoff is the delay charged before the first retry; it doubles
	// per retry up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// RoundDeadline bounds the modelled delay of one round (op costs +
	// backoff + injected latency); once exceeded the round aborts as
	// degraded rather than blowing the convergence budget. 0 = none.
	RoundDeadline time.Duration
}

// DefaultRetryPolicy returns the defaults: 3 attempts, 50µs base backoff
// capped at 800µs, no round deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  800 * time.Microsecond,
	}
}

func (p RetryPolicy) normalise() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = def.MaxBackoff
		if p.MaxBackoff < p.BaseBackoff {
			p.MaxBackoff = p.BaseBackoff
		}
	}
	return p
}

// Health is the controller's view of the driver.
type Health int

// Health states.
const (
	// Healthy: rounds run normally.
	Healthy Health = iota
	// Unhealthy: too many consecutive rounds failed; the controller serves
	// the last good population and only probes the driver each round.
	Unhealthy
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Unhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// DegradeReason names why a round aborted without committing.
type DegradeReason string

// Degrade reasons surfaced in RoundReport.
const (
	// ReasonNone: the round committed.
	ReasonNone DegradeReason = ""
	// ReasonSnapshot: the register snapshot could not be read.
	ReasonSnapshot DegradeReason = "snapshot-read"
	// ReasonStaleSnapshot: the snapshot did not match the installed bins
	// (stale or corrupt driver state).
	ReasonStaleSnapshot DegradeReason = "stale-snapshot"
	// ReasonResync: reinstalling the bins after a detected driver/controller
	// divergence failed.
	ReasonResync DegradeReason = "bin-resync"
	// ReasonInstall: pushing the reshaped monitoring bins failed.
	ReasonInstall DegradeReason = "monitoring-install"
	// ReasonPopulate: committing the calculation population failed.
	ReasonPopulate DegradeReason = "calc-populate"
	// ReasonDeadline: the round exceeded its modelled delay budget.
	ReasonDeadline DegradeReason = "round-deadline"
	// ReasonUnhealthy: the controller is in degraded mode and only probed
	// the driver.
	ReasonUnhealthy DegradeReason = "driver-unhealthy"
	// ReasonAudit: the read-back audit or its anti-entropy repair failed.
	ReasonAudit DegradeReason = "calc-audit"
	// ReasonCancelled: the round's context was cancelled mid-round.
	ReasonCancelled DegradeReason = "cancelled"
)
