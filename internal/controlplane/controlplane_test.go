package controlplane

import (
	"errors"
	"testing"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/trie"
)

// engineTarget adapts a unary arith engine to the Target interface, the same
// way the core package does.
type engineTarget struct {
	engine *arith.UnaryEngine
	op     arith.UnaryOp
}

func (t *engineTarget) Populate(tr *trie.Trie, budget int) (int, int, error) {
	entries, err := population.ADAUnary(tr, t.op.Func(), budget, population.Midpoint)
	if err != nil {
		return 0, 0, err
	}
	writes, err := t.engine.Reload(entries)
	return writes, len(entries), err
}

func newSystem(t *testing.T, width, monBudget, calcBudget int) (*Controller, *arith.UnaryEngine) {
	t.Helper()
	mon, err := monitor.New("mon", width, 0)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := arith.NewUnaryEngine("calc", width, calcBudget, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(DefaultConfig(monBudget, calcBudget), mon, &engineTarget{engine: engine, op: arith.OpSquare})
	if err != nil {
		t.Fatal(err)
	}
	return ctl, engine
}

func TestNewInstallsInitialBins(t *testing.T) {
	ctl, _ := newSystem(t, 8, 8, 32)
	if got := ctl.Monitor().NumBins(); got != 8 {
		t.Errorf("initial bins = %d, want 8", got)
	}
	if ctl.Trie().NumLeaves() != 8 {
		t.Errorf("trie leaves = %d, want 8", ctl.Trie().NumLeaves())
	}
}

func TestConfigValidation(t *testing.T) {
	mon, _ := monitor.New("m", 8, 0)
	bad := []Config{
		{ThBalance: -0.1, MonitorBudget: 4, CalcBudget: 4},
		{ThBalance: 1.5, MonitorBudget: 4, CalcBudget: 4},
		{ThBalance: 0.2, MonitorBudget: 0, CalcBudget: 4},
		{ThBalance: 0.2, MonitorBudget: 4, CalcBudget: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, mon, nil); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d: error = %v, want ErrConfig", i, err)
		}
	}
	if _, err := New(DefaultConfig(4, 4), nil, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil monitor: %v", err)
	}
}

func TestRoundAccounting(t *testing.T) {
	ctl, engine := newSystem(t, 8, 8, 32)
	// Uniform traffic: no rebalance expected; calc table still repopulated.
	for v := uint64(0); v < 200; v++ {
		ctl.Monitor().Observe(v % 256)
	}
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads != 8 {
		t.Errorf("Reads = %d, want 8", rep.Reads)
	}
	if rep.RegisterWrites != 8 {
		t.Errorf("RegisterWrites = %d, want 8", rep.RegisterWrites)
	}
	if rep.Computed == 0 || rep.Computed > 32 {
		t.Errorf("Computed = %d, want (0, 32]", rep.Computed)
	}
	if engine.Table().Len() != rep.Computed {
		t.Errorf("engine holds %d entries, round computed %d", engine.Table().Len(), rep.Computed)
	}
	if rep.Delay <= 0 {
		t.Error("Delay must be positive")
	}
	if rep.TotalHits != 200 {
		t.Errorf("TotalHits = %d, want 200", rep.TotalHits)
	}
	// Registers were reset.
	for _, c := range ctl.Monitor().Snapshot() {
		if c != 0 {
			t.Error("registers not reset after round")
		}
	}
}

func TestRoundAdaptsToSkew(t *testing.T) {
	ctl, engine := newSystem(t, 16, 16, 64)
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 150}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 5)
	for round := 0; round < 30; round++ {
		ctl.Monitor().ObserveAll(sampler.Draw(3000))
		if _, err := ctl.Round(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// After adaptation, the calc table must answer hot-region lookups with
	// low error.
	s := arith.MeasureUnary(engine.Eval, arith.OpSquare, sampler.Draw(5000))
	if s.Misses != 0 {
		t.Errorf("misses = %d", s.Misses)
	}
	if s.Avg > 0.02 {
		t.Errorf("post-adaptation avg error %.4f > 2%%", s.Avg)
	}
	tot := ctl.Totals()
	if tot.Rounds != 30 {
		t.Errorf("Rounds = %d", tot.Rounds)
	}
	if tot.Rebalances == 0 {
		t.Error("expected at least one rebalance under skew")
	}
	if tot.AvgReads() < float64(16) {
		t.Errorf("AvgReads = %.1f, want >= 16 (expansion grows reads)", tot.AvgReads())
	}
	if tot.AvgWrites() <= 0 {
		t.Error("AvgWrites must be positive")
	}
}

func TestExpansionUnderSkew(t *testing.T) {
	// Small initial monitor budget and a very skewed distribution: depth
	// grows fast, so the controller must expand the monitoring TCAM.
	mon, err := monitor.New("mon", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, 32)
	ctl, err := New(cfg, mon, nil)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 100}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 6)
	expanded := false
	for round := 0; round < 25; round++ {
		mon.ObserveAll(sampler.Draw(2000))
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		expanded = expanded || rep.Expanded
	}
	if !expanded {
		t.Error("controller never expanded the monitoring TCAM under heavy skew")
	}
	if ctl.Monitor().NumBins() <= 4 {
		t.Errorf("bins = %d, want > 4 after expansion", ctl.Monitor().NumBins())
	}
	if ctl.Totals().Expansions == 0 {
		t.Error("Totals.Expansions = 0")
	}
}

func TestExpansionRespectsCap(t *testing.T) {
	mon, err := monitor.New("mon", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, 16)
	cfg.MaxMonitorEntries = 5 // allow exactly one expansion
	ctl, err := New(cfg, mon, nil)
	if err != nil {
		t.Fatal(err)
	}
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: 50}, Lo: 0, Hi: 1 << 16},
		1<<16-1, 8)
	for round := 0; round < 30; round++ {
		mon.ObserveAll(sampler.Draw(2000))
		if _, err := ctl.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctl.Monitor().NumBins(); got > 5 {
		t.Errorf("bins = %d, exceeds cap 5", got)
	}
}

func TestNoTargetRoundStillMonitors(t *testing.T) {
	mon, _ := monitor.New("mon", 8, 0)
	ctl, err := New(DefaultConfig(4, 8), mon, nil)
	if err != nil {
		t.Fatal(err)
	}
	mon.Observe(3)
	rep, err := ctl.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 0 {
		t.Errorf("Computed = %d with nil target", rep.Computed)
	}
}

func TestCostModelCalibration(t *testing.T) {
	// Fig 9: a 128-entry round must land near 3.15 ms. A replace-all of 128
	// entries costs ~256 TCAM writes plus monitoring writes, reads, and
	// compute.
	cm := DefaultCostModel()
	// A 128-budget round in practice writes ~216 TCAM rows (ReplaceAll of
	// ~108 installed entries) and computes ~108 entries.
	delay := cm.RoundCost(12, 12, 216, 108, 0)
	lo, hi := 2900*time.Microsecond, 3500*time.Microsecond
	if delay < lo || delay > hi {
		t.Errorf("128-entry round delay = %v, want ≈3.15ms (within [%v, %v])", delay, lo, hi)
	}
	// And delay must grow monotonically with entries (Fig 9 shape).
	prev := time.Duration(0)
	for entries := 16; entries <= 128; entries += 16 {
		d := cm.RoundCost(12, 12, 2*entries+24, entries, 0)
		if d <= prev {
			t.Errorf("delay not monotone at %d entries: %v <= %v", entries, d, prev)
		}
		prev = d
	}
}

func TestDelayScalesWithCalcBudget(t *testing.T) {
	delays := make([]time.Duration, 0, 2)
	for _, budget := range []int{16, 128} {
		ctl, _ := newSystem(t, 16, 8, budget)
		ctl.Monitor().ObserveAll([]uint64{1, 2, 3, 4000, 4001, 4002})
		rep, err := ctl.Round()
		if err != nil {
			t.Fatal(err)
		}
		delays = append(delays, rep.Delay)
	}
	if delays[1] <= delays[0] {
		t.Errorf("delay(128)=%v not above delay(16)=%v", delays[1], delays[0])
	}
}

func TestTotalsZeroRounds(t *testing.T) {
	var tot Totals
	if tot.AvgReads() != 0 || tot.AvgWrites() != 0 {
		t.Error("zero-round totals must average 0")
	}
}
