package monitor

import (
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func oneBinMonitor(t *testing.T, bits, stripes int) *Monitor {
	t.Helper()
	opts := []Option{WithRegisterBits(bits)}
	if stripes > 0 {
		opts = append(opts, WithStripes(stripes))
	}
	m, err := New("bound", 8, 0, opts...)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := bitstr.Root(8)
	if _, err := m.Install([]bitstr.Prefix{root}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSaturationExactBoundary pins the off-by-one: a register holding exactly
// 2^bits−1 increments is full but NOT saturated — no increment was lost — and
// the very next increment is the first one dropped.
func TestSaturationExactBoundary(t *testing.T) {
	for _, bits := range []int{1, 3, 4} {
		max := uint64(1)<<uint(bits) - 1
		m := oneBinMonitor(t, bits, 0)

		for i := uint64(0); i < max; i++ {
			m.Observe(uint64(i % 256))
		}
		if snap := m.Snapshot(); snap[0] != max {
			t.Fatalf("bits=%d: snapshot at exactly max = %v, want [%d]", bits, snap, max)
		}
		if s := m.Stats().Saturations; s != 0 {
			t.Fatalf("bits=%d: saturations at exactly max = %d, want 0", bits, s)
		}

		m.Observe(0) // one past the boundary
		if snap := m.Snapshot(); snap[0] != max {
			t.Fatalf("bits=%d: snapshot one past max = %v, want clamp at [%d]", bits, snap, max)
		}
		if s := m.Stats().Saturations; s != 1 {
			t.Fatalf("bits=%d: saturations one past max = %d, want exactly 1", bits, s)
		}

		// Draining folds exactly that one lost increment, once.
		if snap := m.SnapshotAndReset(); snap[0] != max {
			t.Fatalf("bits=%d: drain = %v, want [%d]", bits, snap, max)
		}
		if s := m.Stats().Saturations; s != 1 {
			t.Fatalf("bits=%d: saturations after drain = %d, want 1", bits, s)
		}
		if snap := m.Snapshot(); snap[0] != 0 {
			t.Fatalf("bits=%d: register not zeroed: %v", bits, snap)
		}
	}
}

// TestSaturationBoundaryAcrossStripes drives the same boundary through the
// batch path with every increment on a different stripe: each stripe is far
// below the register limit, so only the merge-time clamp can see the
// overflow. The merged view must behave exactly like a single register.
func TestSaturationBoundaryAcrossStripes(t *testing.T) {
	const bits, stripes = 5, 4 // max 31, spread over 4 stripes
	max := uint64(1)<<bits - 1
	m := oneBinMonitor(t, bits, stripes)

	// 31 increments in 31 one-sample batches: lane() round-robins, so every
	// stripe holds ~8 — nowhere near 31.
	for i := uint64(0); i < max; i++ {
		m.ObserveAll([]uint64{i % 256})
	}
	if snap := m.Snapshot(); snap[0] != max {
		t.Fatalf("merged snapshot at exactly max = %v, want [%d]", snap, max)
	}
	if s := m.Stats().Saturations; s != 0 {
		t.Fatalf("live saturations at exactly max = %d, want 0", s)
	}
	m.ObserveAll([]uint64{0})
	if s := m.Stats().Saturations; s != 1 {
		t.Fatalf("live saturations one past max = %d, want 1", s)
	}
	if snap := m.SnapshotAndReset(); snap[0] != max {
		t.Fatalf("drain = %v, want [%d]", snap, max)
	}
	if s := m.Stats().Saturations; s != 1 {
		t.Fatalf("saturations after drain = %d, want 1", s)
	}
}

// TestStripedDrainConservation: concurrent striped observers racing
// SnapshotAndReset must neither lose nor double-count increments when the
// register is wide enough not to clamp — the drains plus the residual must
// sum to exactly the number of observations.
func TestStripedDrainConservation(t *testing.T) {
	const (
		goroutines = 6
		perG       = 5000
	)
	m := oneBinMonitor(t, 64, goroutines)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drained uint64
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				drained += m.SnapshotAndReset()[0]
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]uint64, 10)
			for i := range batch {
				batch[i] = uint64((g + i) % 256)
			}
			for n := 0; n < perG/len(batch); n++ {
				m.ObserveAll(batch)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	drained += m.SnapshotAndReset()[0]

	if want := uint64(goroutines * perG); drained != want {
		t.Fatalf("drains collected %d increments, want %d", drained, want)
	}
	if s := m.Stats().Saturations; s != 0 {
		t.Fatalf("64-bit registers reported %d saturations", s)
	}
}
