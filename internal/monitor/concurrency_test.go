package monitor

import (
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// TestConcurrentObserveCountsExact: observers on many goroutines against a
// stable bin set must lose no increments — the register total equals the
// observation count (commutative atomic increments, no torn updates).
func TestConcurrentObserveCountsExact(t *testing.T) {
	m, err := New("conc", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := bitstr.Root(8)
	l, _ := root.Left()
	r, _ := root.Right()
	if _, err := m.Install([]bitstr.Prefix{l, r}); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					m.Observe(uint64(g)) // low half
				} else {
					m.ObserveAll([]uint64{200, uint64(128 + g)}) // high half
				}
			}
		}(g)
	}
	wg.Wait()

	snap := m.Snapshot()
	wantLow := uint64(goroutines * perG / 2)
	wantHigh := uint64(goroutines * perG) // two high samples per odd i
	if snap[0] != wantLow || snap[1] != wantHigh {
		t.Errorf("registers = %v, want [%d %d]", snap, wantLow, wantHigh)
	}
	s := m.Stats()
	if s.Observations != uint64(goroutines*perG/2)*3 || s.Matched != s.Observations {
		t.Errorf("stats = %+v, want %d observations all matched", s, goroutines*perG/2*3)
	}
}

// TestConcurrentObserveVsInstall hammers observers against bin reshapes and
// read-and-clear snapshots. The invariant: across all snapshots plus the
// final state, every observed sample is counted exactly once (no sample
// lands in a dead register slice, none is double-counted).
func TestConcurrentObserveVsInstall(t *testing.T) {
	m, err := New("reshape", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := bitstr.Root(8)
	l, _ := root.Left()
	r, _ := root.Right()
	ll, _ := l.Left()
	lr, _ := l.Right()
	shapes := [][]bitstr.Prefix{
		{l, r},
		{ll, lr, r},
		{root},
	}
	if _, err := m.Install(shapes[0]); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 4
		perG       = 4000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Observe(uint64((g*31 + i) & 0xFF))
			}
		}(g)
	}

	var drained uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Install(shapes[i%len(shapes)]); err != nil {
				t.Error(err)
				return
			}
			for _, c := range m.SnapshotAndReset() {
				drained += c
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	for _, c := range m.SnapshotAndReset() {
		drained += c
	}
	s := m.Stats()
	if s.Observations != uint64(goroutines*perG) {
		t.Fatalf("observations = %d, want %d", s.Observations, goroutines*perG)
	}
	// Install zeroes the registers, so samples landing between two installs
	// are legitimately dropped from the drained total — but every drained
	// count must come from a real observation and never exceed the matched
	// total.
	if drained > s.Matched {
		t.Errorf("drained %d counts but only %d samples matched", drained, s.Matched)
	}
	if s.Matched > s.Observations {
		t.Errorf("matched %d exceeds observations %d", s.Matched, s.Observations)
	}
}
