// Package monitor implements ADA's data-plane monitoring pipeline (§III-A,
// Fig 3): a small monitoring TCAM whose wildcard entries are the binning
// trie's leaves, and a register file with one hit counter per bin. Every
// observed operand value matches one entry and increments the corresponding
// register — no sampling, no packet resubmission, exactly the P4-friendly
// path the paper describes.
//
// The control plane periodically snapshots and resets the registers; both
// operations are counted so the paper's overhead accounting (Table II) can
// be derived from real operation counts.
package monitor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrNoBins reports installation of an empty bin set.
	ErrNoBins = errors.New("monitor: at least one bin is required")
	// ErrNotPartition reports bins that do not tile the operand domain; a
	// monitoring table with holes silently loses distribution mass.
	ErrNotPartition = errors.New("monitor: bins do not partition the operand domain")
)

// DefaultRegisterBits is the register width of the modelled switch; Tofino
// register cells are 32 bits.
const DefaultRegisterBits = 32

// Stats counts data-plane and control-plane operations on the monitor.
type Stats struct {
	// Observations counts data-plane samples offered.
	Observations uint64
	// Matched counts samples that hit a bin (always equal to Observations
	// while the bins partition the domain).
	Matched uint64
	// RegisterReads counts control-plane register reads (snapshots).
	RegisterReads uint64
	// RegisterWrites counts control-plane register writes (resets).
	RegisterWrites uint64
	// TCAMWrites counts monitoring-TCAM entry writes (installs + removals).
	TCAMWrites uint64
	// Saturations counts register increments lost to the register width
	// limit.
	Saturations uint64
}

// monStats is the live, atomically-updated form of Stats, so the observe
// path never takes an exclusive lock just to count.
type monStats struct {
	observations   atomic.Uint64
	matched        atomic.Uint64
	registerReads  atomic.Uint64
	registerWrites atomic.Uint64
	tcamWrites     atomic.Uint64
	saturations    atomic.Uint64
}

// Monitor is the data-plane monitoring unit for one variable. It is safe
// for concurrent use, and observation scales across goroutines: observers
// hold the lock in shared mode (the bin lookup itself is lock-free inside
// the tcam package) and bump registers with atomic compare-and-swap, so
// many packets observe in parallel while only control-plane operations —
// Install, Snapshot, Reset — exclude them.
type Monitor struct {
	mu sync.RWMutex // RLock: observers; Lock: install/snapshot/reset

	table       *tcam.Table
	regs        []uint64 // elements accessed atomically
	prefixes    []bitstr.Prefix
	width       int
	registerMax uint64
	capacity    int
	stats       monStats
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithRegisterBits sets the register width (default 32). Increments
// saturate at 2^bits − 1.
func WithRegisterBits(bits int) Option {
	return func(m *Monitor) {
		if bits >= 64 {
			m.registerMax = ^uint64(0)
			return
		}
		if bits < 1 {
			bits = 1
		}
		m.registerMax = uint64(1)<<uint(bits) - 1
	}
}

// New creates a monitor for width-bit operands with the given monitoring
// TCAM capacity (0 = unbounded). Install must be called before observing.
func New(name string, width, capacity int, opts ...Option) (*Monitor, error) {
	t, err := tcam.New(name, capacity, width)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		table:       t,
		width:       width,
		capacity:    capacity,
		registerMax: uint64(1)<<DefaultRegisterBits - 1,
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Install replaces the monitoring bins. The prefixes must tile the operand
// domain (the trie's leaves always do). It returns the number of TCAM
// writes performed — diff-reconciled against the installed bins, so a
// reshape that keeps most bins only pays for the rows that moved.
// Registers are re-allocated and zeroed.
//
// Install is transactional: on any error (validation, capacity, or a
// row-write failure injected at the driver boundary) the previously
// installed bins and their registers remain fully intact.
func (m *Monitor) Install(prefixes []bitstr.Prefix) (int, error) {
	if len(prefixes) == 0 {
		return 0, ErrNoBins
	}
	if !bitstr.Partition(prefixes) {
		return 0, fmt.Errorf("%w: %v", ErrNotPartition, prefixes)
	}
	rows := make([]tcam.Row, len(prefixes))
	for i, p := range prefixes {
		rows[i] = tcam.RowFromPrefix(p, i)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	writes, err := m.table.ApplyRowsAtomic(rows)
	if err != nil {
		return 0, err
	}
	m.prefixes = make([]bitstr.Prefix, len(prefixes))
	copy(m.prefixes, prefixes)
	m.regs = make([]uint64, len(prefixes))
	m.stats.tcamWrites.Add(uint64(writes))
	return writes, nil
}

// bump increments register idx, saturating at the register width; called
// with at least the read lock held so Install cannot swap the slice away
// mid-increment.
func (m *Monitor) bump(idx int) {
	for {
		cur := atomic.LoadUint64(&m.regs[idx])
		if cur >= m.registerMax {
			m.stats.saturations.Add(1)
			return
		}
		if atomic.CompareAndSwapUint64(&m.regs[idx], cur, cur+1) {
			return
		}
	}
}

// Observe records one data-plane sample: match the monitoring TCAM,
// increment the winning bin's register. It reports whether the sample
// matched a bin. The critical section is shared (read-locked) and the bin
// lookup is lock-free, so concurrent observers do not serialize; only the
// register/stat update is synchronized, via per-register atomics.
func (m *Monitor) Observe(v uint64) bool {
	if m.width < 64 {
		v &= uint64(1)<<uint(m.width) - 1
	}
	m.stats.observations.Add(1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.table.Lookup(v)
	if !ok {
		return false
	}
	idx, ok := e.Data.(int)
	if !ok || idx < 0 || idx >= len(m.regs) {
		return false
	}
	m.bump(idx)
	m.stats.matched.Add(1)
	return true
}

// ObserveAll records a batch of samples, resolving all of them against one
// compiled TCAM snapshot (tcam.LookupSingleBatch) instead of paying the
// per-sample lookup dispatch.
func (m *Monitor) ObserveAll(vs []uint64) {
	if len(vs) == 0 {
		return
	}
	mask := ^uint64(0)
	if m.width < 64 {
		mask = uint64(1)<<uint(m.width) - 1
	}
	m.stats.observations.Add(uint64(len(vs)))
	keys := make([]uint64, len(vs))
	for i, v := range vs {
		keys[i] = v & mask
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	entries := m.table.LookupSingleBatch(keys, nil)
	var matched uint64
	for _, e := range entries {
		if e == nil {
			continue
		}
		idx, ok := e.Data.(int)
		if !ok || idx < 0 || idx >= len(m.regs) {
			continue
		}
		m.bump(idx)
		matched++
	}
	m.stats.matched.Add(matched)
}

// Snapshot returns the per-bin hit counts in bin (value) order and charges
// one register read per bin.
func (m *Monitor) Snapshot() []uint64 {
	return m.SnapshotInto(nil)
}

// SnapshotInto is Snapshot writing into dst when it has the capacity,
// allocating only when it does not. The control plane reuses one scratch
// buffer across rounds instead of allocating a fresh slice per snapshot.
func (m *Monitor) SnapshotInto(dst []uint64) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = sizeFor(dst, len(m.regs))
	for i := range m.regs {
		dst[i] = atomic.LoadUint64(&m.regs[i])
	}
	m.stats.registerReads.Add(uint64(len(m.regs)))
	return dst
}

// SnapshotAndReset reads and zeroes the registers in one critical section —
// the read-and-clear register access real switch drivers use so that no
// sample landing between a separate read and reset is lost. It charges one
// register read and one register write per bin.
func (m *Monitor) SnapshotAndReset() []uint64 {
	return m.SnapshotAndResetInto(nil)
}

// SnapshotAndResetInto is SnapshotAndReset writing into dst when it has the
// capacity, allocating only when it does not.
func (m *Monitor) SnapshotAndResetInto(dst []uint64) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = sizeFor(dst, len(m.regs))
	for i := range m.regs {
		dst[i] = atomic.SwapUint64(&m.regs[i], 0)
	}
	m.stats.registerReads.Add(uint64(len(m.regs)))
	m.stats.registerWrites.Add(uint64(len(m.regs)))
	return dst
}

// sizeFor returns dst resized to n elements, reusing its backing array when
// the capacity allows.
func sizeFor(dst []uint64, n int) []uint64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint64, n)
}

// Reset zeroes the registers and charges one register write per bin.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.regs {
		atomic.StoreUint64(&m.regs[i], 0)
	}
	m.stats.registerWrites.Add(uint64(len(m.regs)))
}

// NumBins returns the installed bin count.
func (m *Monitor) NumBins() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.prefixes)
}

// Prefixes returns a copy of the installed bins in value order.
func (m *Monitor) Prefixes() []bitstr.Prefix {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]bitstr.Prefix, len(m.prefixes))
	copy(out, m.prefixes)
	return out
}

// Width returns the operand width in bits.
func (m *Monitor) Width() int { return m.width }

// Table exposes the monitoring TCAM for resource accounting.
func (m *Monitor) Table() *tcam.Table { return m.table }

// Stats returns a snapshot of the operation counters.
func (m *Monitor) Stats() Stats {
	return Stats{
		Observations:   m.stats.observations.Load(),
		Matched:        m.stats.matched.Load(),
		RegisterReads:  m.stats.registerReads.Load(),
		RegisterWrites: m.stats.registerWrites.Load(),
		TCAMWrites:     m.stats.tcamWrites.Load(),
		Saturations:    m.stats.saturations.Load(),
	}
}
