// Package monitor implements ADA's data-plane monitoring pipeline (§III-A,
// Fig 3): a small monitoring TCAM whose wildcard entries are the binning
// trie's leaves, and a register file with one hit counter per bin. Every
// observed operand value matches one entry and increments the corresponding
// register — no sampling, no packet resubmission, exactly the P4-friendly
// path the paper describes.
//
// The control plane periodically snapshots and resets the registers; both
// operations are counted so the paper's overhead accounting (Table II) can
// be derived from real operation counts.
//
// The observe path is built for multi-core replay at zero steady-state
// allocation: batch lookups resolve through the TCAM's typed ordinal path
// (no per-sample interface assertions), scratch buffers recycle through a
// pool, and the register file is striped — each worker increments its own
// cache-line-padded stripe with a plain atomic add instead of contending a
// CAS loop on one shared slice. Stripes are merged, and register-width
// saturation enforced, when the control plane reads the registers, which
// keeps snapshots and the saturation statistic bit-identical to a sequential
// replay (increments are commutative, and min(total, max) equals the
// per-increment clamp regardless of interleaving).
package monitor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/tcam"
)

var (
	// ErrNoBins reports installation of an empty bin set.
	ErrNoBins = errors.New("monitor: at least one bin is required")
	// ErrNotPartition reports bins that do not tile the operand domain; a
	// monitoring table with holes silently loses distribution mass.
	ErrNotPartition = errors.New("monitor: bins do not partition the operand domain")
)

// DefaultRegisterBits is the register width of the modelled switch; Tofino
// register cells are 32 bits.
const DefaultRegisterBits = 32

// stripePad rounds each stripe up to whole cache lines and adds one guard
// line, so no cache line ever holds live counters of two stripes regardless
// of the backing array's alignment.
const stripePad = 8 // uint64s per 64-byte cache line

// Stats counts data-plane and control-plane operations on the monitor.
type Stats struct {
	// Observations counts data-plane samples offered.
	Observations uint64
	// Matched counts samples that hit a bin (always equal to Observations
	// while the bins partition the domain).
	Matched uint64
	// RegisterReads counts control-plane register reads (snapshots).
	RegisterReads uint64
	// RegisterWrites counts control-plane register writes (resets).
	RegisterWrites uint64
	// TCAMWrites counts monitoring-TCAM entry writes (installs + removals).
	TCAMWrites uint64
	// Saturations counts register increments lost to the register width
	// limit.
	Saturations uint64
}

// monStats is the live, atomically-updated form of Stats, so the observe
// path never takes an exclusive lock just to count.
type monStats struct {
	observations   atomic.Uint64
	matched        atomic.Uint64
	registerReads  atomic.Uint64
	registerWrites atomic.Uint64
	tcamWrites     atomic.Uint64
	saturations    atomic.Uint64 // increments lost in registers already drained
}

// obsScratch is the per-batch buffer set ObserveAll recycles: masked keys
// and resolved ordinals. Losing one to the pool's GC costs a re-allocation,
// never counts.
type obsScratch struct {
	keys []uint64
	ords []int32
}

// Monitor is the data-plane monitoring unit for one variable. It is safe
// for concurrent use, and observation scales across goroutines: observers
// hold the lock in shared mode (the bin lookup itself is lock-free inside
// the tcam package) and bump per-stripe registers with uncontended atomic
// adds, so many packets observe in parallel while only control-plane
// operations — Install, Snapshot, Reset — exclude them.
type Monitor struct {
	mu sync.RWMutex // RLock: observers; Lock: install/snapshot/reset

	table       *tcam.Table
	prefixes    []bitstr.Prefix
	width       int
	registerMax uint64
	capacity    int
	nstripes    int
	stats       monStats

	// bins and stripes are guarded by mu (observers RLock them and mutate
	// stripe elements atomically); each stripe is a bins-long window into
	// one padded backing array, at least a guard cache line apart from its
	// neighbours.
	bins     int
	stripes  [][]uint64
	nextLane atomic.Uint32
	scratch  sync.Pool // of *obsScratch
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithRegisterBits sets the register width (default 32). Increments
// saturate at 2^bits − 1.
func WithRegisterBits(bits int) Option {
	return func(m *Monitor) {
		if bits >= 64 {
			m.registerMax = ^uint64(0)
			return
		}
		if bits < 1 {
			bits = 1
		}
		m.registerMax = uint64(1)<<uint(bits) - 1
	}
}

// WithStripes sets the register stripe count (default GOMAXPROCS). More
// stripes than concurrent observers only costs merge time; fewer reintroduces
// contention on the shared cache lines. 1 restores a single register file.
func WithStripes(n int) Option {
	return func(m *Monitor) {
		if n < 1 {
			n = 1
		}
		m.nstripes = n
	}
}

// New creates a monitor for width-bit operands with the given monitoring
// TCAM capacity (0 = unbounded). Install must be called before observing.
func New(name string, width, capacity int, opts ...Option) (*Monitor, error) {
	t, err := tcam.New(name, capacity, width)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		table:       t,
		width:       width,
		capacity:    capacity,
		registerMax: uint64(1)<<DefaultRegisterBits - 1,
		nstripes:    runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(m)
	}
	if m.nstripes < 1 {
		m.nstripes = 1
	}
	m.scratch.New = func() any { return new(obsScratch) }
	m.allocStripesLocked(0)
	return m, nil
}

// allocStripesLocked replaces the register stripes with zeroed ones for the
// given bin count; m.mu must be held exclusively (or the monitor not yet
// shared).
func (m *Monitor) allocStripesLocked(bins int) {
	stride := (bins+stripePad-1)&^(stripePad-1) + stripePad
	backing := make([]uint64, m.nstripes*stride)
	m.stripes = make([][]uint64, m.nstripes)
	for i := range m.stripes {
		m.stripes[i] = backing[i*stride : i*stride+bins : i*stride+bins]
	}
	m.bins = bins
}

// Install replaces the monitoring bins. The prefixes must tile the operand
// domain (the trie's leaves always do). It returns the number of TCAM
// writes performed — diff-reconciled against the installed bins, so a
// reshape that keeps most bins only pays for the rows that moved.
// Registers are re-allocated and zeroed.
//
// Install is transactional: on any error (validation, capacity, or a
// row-write failure injected at the driver boundary) the previously
// installed bins and their registers remain fully intact.
func (m *Monitor) Install(prefixes []bitstr.Prefix) (int, error) {
	if len(prefixes) == 0 {
		return 0, ErrNoBins
	}
	if !bitstr.Partition(prefixes) {
		return 0, fmt.Errorf("%w: %v", ErrNotPartition, prefixes)
	}
	rows := make([]tcam.Row, len(prefixes))
	for i, p := range prefixes {
		rows[i] = tcam.RowFromPrefix(p, i)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	writes, err := m.table.ApplyRowsAtomic(rows)
	if err != nil {
		return 0, err
	}
	// Fold the discarded registers' lost increments into the lifetime
	// saturation statistic before the stripes are replaced, exactly as the
	// per-increment accounting would have counted them.
	m.drainLocked(nil, true)
	m.prefixes = make([]bitstr.Prefix, len(prefixes))
	copy(m.prefixes, prefixes)
	m.allocStripesLocked(len(prefixes))
	m.stats.tcamWrites.Add(uint64(writes))
	return writes, nil
}

// lane picks the stripe this caller increments. Round-robin assignment is
// enough: correctness never depends on exclusivity (stripe increments are
// atomic), only contention does, and concurrent replay workers calling once
// per batch land on distinct stripes.
func (m *Monitor) lane() []uint64 {
	return m.stripes[int(m.nextLane.Add(1))%len(m.stripes)]
}

// Observe records one data-plane sample: match the monitoring TCAM,
// increment the winning bin's register. It reports whether the sample
// matched a bin. The critical section is shared (read-locked) and the bin
// lookup is lock-free, so concurrent observers do not serialize; only the
// register/stat update is synchronized, via per-stripe atomics.
func (m *Monitor) Observe(v uint64) bool {
	if m.width < 64 {
		v &= uint64(1)<<uint(m.width) - 1
	}
	m.stats.observations.Add(1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.table.Lookup(v)
	if !ok {
		return false
	}
	idx, ok := e.Data.(int)
	if !ok || idx < 0 || idx >= m.bins {
		return false
	}
	atomic.AddUint64(&m.lane()[idx], 1)
	m.stats.matched.Add(1)
	return true
}

// ObserveAll records a batch of samples, resolving all of them against one
// compiled TCAM snapshot through the typed ordinal path — no per-sample
// lookup dispatch, interface assertion, or allocation: the masked-key and
// ordinal buffers recycle through an internal pool, and the whole batch
// increments one register stripe.
func (m *Monitor) ObserveAll(vs []uint64) {
	if len(vs) == 0 {
		return
	}
	mask := ^uint64(0)
	if m.width < 64 {
		mask = uint64(1)<<uint(m.width) - 1
	}
	m.stats.observations.Add(uint64(len(vs)))
	sc := m.scratch.Get().(*obsScratch)
	keys := sc.keys
	if cap(keys) >= len(vs) {
		keys = keys[:len(vs)]
	} else {
		keys = make([]uint64, len(vs))
	}
	for i, v := range vs {
		keys[i] = v & mask
	}
	m.mu.RLock()
	ords, pay := m.table.LookupIndexBatch(keys, sc.ords)
	lane := m.lane()
	bins := uint64(m.bins)
	var matched uint64
	for _, ord := range ords {
		if ord < 0 {
			continue
		}
		idx, ok := pay.Value(ord)
		if !ok || idx >= bins {
			continue
		}
		atomic.AddUint64(&lane[idx], 1)
		matched++
	}
	m.mu.RUnlock()
	m.stats.matched.Add(matched)
	sc.keys, sc.ords = keys, ords
	m.scratch.Put(sc)
}

// drainLocked merges the stripes into dst (when non-nil) with register-width
// saturation applied, and, when reset is set, zeroes the stripes and folds
// the lost increments into the lifetime saturation counter; m.mu must be
// held exclusively. Merging under the exclusive lock is what makes the
// result bit-identical to a sequential replay: no increment is in flight,
// and min(total, max) is exactly what per-increment clamping would have
// left in the register.
func (m *Monitor) drainLocked(dst []uint64, reset bool) {
	for i := 0; i < m.bins; i++ {
		var total uint64
		for _, s := range m.stripes {
			if reset {
				total += atomic.SwapUint64(&s[i], 0)
			} else {
				total += atomic.LoadUint64(&s[i])
			}
		}
		v := total
		if v > m.registerMax {
			v = m.registerMax
		}
		if reset {
			m.stats.saturations.Add(total - v)
		}
		if dst != nil {
			dst[i] = v
		}
	}
}

// Snapshot returns the per-bin hit counts in bin (value) order and charges
// one register read per bin.
func (m *Monitor) Snapshot() []uint64 {
	return m.SnapshotInto(nil)
}

// SnapshotInto is Snapshot writing into dst when it has the capacity,
// allocating only when it does not. The control plane reuses one scratch
// buffer across rounds instead of allocating a fresh slice per snapshot.
func (m *Monitor) SnapshotInto(dst []uint64) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = sizeFor(dst, m.bins)
	m.drainLocked(dst, false)
	m.stats.registerReads.Add(uint64(m.bins))
	return dst
}

// SnapshotAndReset reads and zeroes the registers in one critical section —
// the read-and-clear register access real switch drivers use so that no
// sample landing between a separate read and reset is lost. It charges one
// register read and one register write per bin.
func (m *Monitor) SnapshotAndReset() []uint64 {
	return m.SnapshotAndResetInto(nil)
}

// SnapshotAndResetInto is SnapshotAndReset writing into dst when it has the
// capacity, allocating only when it does not.
func (m *Monitor) SnapshotAndResetInto(dst []uint64) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = sizeFor(dst, m.bins)
	m.drainLocked(dst, true)
	m.stats.registerReads.Add(uint64(m.bins))
	m.stats.registerWrites.Add(uint64(m.bins))
	return dst
}

// HitDistance is the total-variation distance between two register
// snapshots viewed as distributions: the histograms are normalised by their
// totals and the distance is half the L1 norm of their difference, in
// [0, 1]. It is the drift signal the service pacer compares against its
// trigger threshold — scale-invariant (proportional traffic growth scores
// 0) and monotone under progressive skew. Histograms of different lengths
// cannot be compared bin-for-bin (the monitoring layout moved), so they
// score the maximum distance 1; two empty histograms score 0, and an empty
// histogram against a non-empty one scores 1.
func HitDistance(a, b []uint64) float64 {
	if len(a) != len(b) {
		return 1
	}
	var ta, tb uint64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	if ta == 0 && tb == 0 {
		return 0
	}
	if ta == 0 || tb == 0 {
		return 1
	}
	var l1 float64
	for i := range a {
		d := float64(a[i])/float64(ta) - float64(b[i])/float64(tb)
		if d < 0 {
			d = -d
		}
		l1 += d
	}
	return l1 / 2
}

// sizeFor returns dst resized to n elements, reusing its backing array when
// the capacity allows.
func sizeFor(dst []uint64, n int) []uint64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint64, n)
}

// Reset zeroes the registers and charges one register write per bin.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drainLocked(nil, true)
	m.stats.registerWrites.Add(uint64(m.bins))
}

// NumBins returns the installed bin count.
func (m *Monitor) NumBins() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.prefixes)
}

// Prefixes returns a copy of the installed bins in value order.
func (m *Monitor) Prefixes() []bitstr.Prefix {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]bitstr.Prefix, len(m.prefixes))
	copy(out, m.prefixes)
	return out
}

// Width returns the operand width in bits.
func (m *Monitor) Width() int { return m.width }

// Table exposes the monitoring TCAM for resource accounting.
func (m *Monitor) Table() *tcam.Table { return m.table }

// Stats returns a snapshot of the operation counters. Saturations is
// computed live: lost increments still sitting in undrained registers are
// included, exactly as the per-increment accounting would report.
func (m *Monitor) Stats() Stats {
	m.mu.RLock()
	sat := m.stats.saturations.Load()
	for i := 0; i < m.bins; i++ {
		var total uint64
		for _, s := range m.stripes {
			total += atomic.LoadUint64(&s[i])
		}
		if total > m.registerMax {
			sat += total - m.registerMax
		}
	}
	m.mu.RUnlock()
	return Stats{
		Observations:   m.stats.observations.Load(),
		Matched:        m.stats.matched.Load(),
		RegisterReads:  m.stats.registerReads.Load(),
		RegisterWrites: m.stats.registerWrites.Load(),
		TCAMWrites:     m.stats.tcamWrites.Load(),
		Saturations:    sat,
	}
}
