package monitor

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/trie"
)

func parseAll(t *testing.T, ss ...string) []bitstr.Prefix {
	t.Helper()
	ps := make([]bitstr.Prefix, len(ss))
	for i, s := range ss {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	return ps
}

func TestInstallAndObserve(t *testing.T) {
	m, err := New("mon", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	writes, err := m.Install(parseAll(t, "00x", "01x", "10x", "11x"))
	if err != nil {
		t.Fatal(err)
	}
	if writes != 4 {
		t.Errorf("writes = %d, want 4", writes)
	}
	for v := uint64(0); v < 8; v++ {
		if !m.Observe(v) {
			t.Errorf("Observe(%d) missed", v)
		}
	}
	m.Observe(3)
	snap := m.Snapshot()
	want := []uint64{2, 3, 2, 2}
	for i, c := range snap {
		if c != want[i] {
			t.Errorf("reg %d = %d, want %d", i, c, want[i])
		}
	}
	if m.NumBins() != 4 {
		t.Errorf("NumBins = %d", m.NumBins())
	}
	if m.Width() != 3 {
		t.Errorf("Width = %d", m.Width())
	}
}

func TestInstallValidation(t *testing.T) {
	m, err := New("mon", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(nil); !errors.Is(err, ErrNoBins) {
		t.Errorf("empty install: %v", err)
	}
	if _, err := m.Install(parseAll(t, "00x", "01x")); !errors.Is(err, ErrNotPartition) {
		t.Errorf("holey install: %v", err)
	}
}

func TestInstallOverCapacity(t *testing.T) {
	m, err := New("mon", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "00x", "01x", "10x", "11x")); err == nil {
		t.Error("install above capacity: want error")
	}
}

func TestReinstallResetsRegisters(t *testing.T) {
	m, _ := New("mon", 3, 0)
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	m.Observe(1)
	if _, err := m.Install(parseAll(t, "00x", "01x", "1xx")); err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Snapshot() {
		if c != 0 {
			t.Errorf("reg %d = %d after reinstall, want 0", i, c)
		}
	}
}

func TestReset(t *testing.T) {
	m, _ := New("mon", 3, 0)
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	m.Observe(0)
	m.Observe(7)
	m.Reset()
	for _, c := range m.Snapshot() {
		if c != 0 {
			t.Error("Reset left counts")
		}
	}
	s := m.Stats()
	if s.RegisterWrites != 2 {
		t.Errorf("RegisterWrites = %d, want 2", s.RegisterWrites)
	}
	if s.RegisterReads != 2 { // one snapshot x two bins
		t.Errorf("RegisterReads = %d, want 2", s.RegisterReads)
	}
}

func TestRegisterSaturation(t *testing.T) {
	m, err := New("mon", 3, 0, WithRegisterBits(2)) // max 3
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "xxx")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Observe(1)
	}
	snap := m.Snapshot()
	if snap[0] != 3 {
		t.Errorf("saturated reg = %d, want 3", snap[0])
	}
	if got := m.Stats().Saturations; got != 7 {
		t.Errorf("Saturations = %d, want 7", got)
	}
}

func TestWithRegisterBitsExtremes(t *testing.T) {
	m, _ := New("a", 3, 0, WithRegisterBits(64))
	if m.registerMax != ^uint64(0) {
		t.Error("64-bit registers must not saturate early")
	}
	m2, _ := New("b", 3, 0, WithRegisterBits(0))
	if m2.registerMax != 1 {
		t.Errorf("clamped register bits: max = %d, want 1", m2.registerMax)
	}
}

func TestObserveMasksWidth(t *testing.T) {
	m, _ := New("mon", 3, 0)
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	if !m.Observe(0xFF) { // masks to 7 → bin 1xx
		t.Fatal("masked observe missed")
	}
	if snap := m.Snapshot(); snap[1] != 1 {
		t.Errorf("masked observe landed wrong: %v", snap)
	}
}

func TestMonitorAgainstTrieReference(t *testing.T) {
	// The monitor must count exactly like the trie's software Record path.
	tr, err := trie.NewInitial(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		tr.Record(rng.Uint64())
	}
	tr.Rebalance(0.1)
	bins := tr.Leaves()
	ps := make([]bitstr.Prefix, len(bins))
	for i, b := range bins {
		ps[i] = b.Prefix
	}
	m, err := New("mon", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(ps); err != nil {
		t.Fatal(err)
	}
	tr.ResetHits()
	rng = rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		v := rng.Uint64() & 0x3FF
		tr.Record(v)
		m.Observe(v)
	}
	snap := m.Snapshot()
	for i, b := range tr.Leaves() {
		if snap[i] != b.Hits {
			t.Errorf("bin %v: monitor %d, trie %d", b.Prefix, snap[i], b.Hits)
		}
	}
}

func TestConcurrentObserveAndSnapshot(t *testing.T) {
	m, _ := New("mon", 16, 0)
	root, _ := bitstr.Root(16)
	l, _ := root.Left()
	r, _ := root.Right()
	if _, err := m.Install([]bitstr.Prefix{l, r}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				m.Observe(rng.Uint64() & 0xFFFF)
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.Snapshot()
		}
	}()
	wg.Wait()
	total := uint64(0)
	for _, c := range m.Snapshot() {
		total += c
	}
	if total != 8000 {
		t.Errorf("total observations = %d, want 8000", total)
	}
	s := m.Stats()
	if s.Observations != 8000 || s.Matched != 8000 {
		t.Errorf("stats = %+v", s)
	}
}

func TestObserveAll(t *testing.T) {
	m, _ := New("mon", 3, 0)
	if _, err := m.Install(parseAll(t, "xxx")); err != nil {
		t.Fatal(err)
	}
	m.ObserveAll([]uint64{1, 2, 3})
	if m.Snapshot()[0] != 3 {
		t.Error("ObserveAll miscounted")
	}
}

func TestPrefixesCopy(t *testing.T) {
	m, _ := New("mon", 3, 0)
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	ps := m.Prefixes()
	ps[0], _ = bitstr.Parse("111")
	if m.Prefixes()[0].String() != "0xx" {
		t.Error("Prefixes leaked internal state")
	}
}
