package monitor

import (
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// TestConcurrentSaturationMatchesSequential drives concurrent ObserveAll
// batches far past a narrow register's maximum and checks the merge-time
// clamp: every overflowing bin reads exactly registerMax, every bin below
// the limit keeps its exact count, and the lifetime Saturations counter
// equals what a single-threaded replay of the same samples produces.
func TestConcurrentSaturationMatchesSequential(t *testing.T) {
	const (
		bits       = 3 // registerMax = 7
		regMax     = uint64(1)<<bits - 1
		goroutines = 8
		batches    = 25
		batchLen   = 16
	)
	build := func() *Monitor {
		m, err := New("sat", 8, 0, WithRegisterBits(bits))
		if err != nil {
			t.Fatal(err)
		}
		root, _ := bitstr.Root(8)
		l, _ := root.Left()
		r, _ := root.Right()
		if _, err := m.Install([]bitstr.Prefix{l, r}); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Bin 0 (low half) takes goroutines*batches*batchLen samples — far past
	// registerMax. Bin 1 (high half) takes 4 samples total — under the limit,
	// so its count must survive exactly.
	batchFor := func(g, b int) []uint64 {
		vs := make([]uint64, batchLen)
		for i := range vs {
			vs[i] = uint64((g*31 + b*7 + i) % 128)
		}
		if g == 0 && b < 4 {
			vs[0] = 200 // one high-half sample in four of g0's batches
		}
		return vs
	}

	conc := build()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				conc.ObserveAll(batchFor(g, b))
			}
		}(g)
	}
	wg.Wait()
	concSnap := conc.SnapshotAndReset()
	concSat := conc.Stats().Saturations

	seq := build()
	for g := 0; g < goroutines; g++ {
		for b := 0; b < batches; b++ {
			seq.ObserveAll(batchFor(g, b))
		}
	}
	seqSnap := seq.SnapshotAndReset()
	seqSat := seq.Stats().Saturations

	wantLow := regMax // saturated
	wantHigh := uint64(4)
	if concSnap[0] != wantLow || concSnap[1] != wantHigh {
		t.Errorf("concurrent snapshot = %v, want [%d %d]", concSnap, wantLow, wantHigh)
	}
	if seqSnap[0] != concSnap[0] || seqSnap[1] != concSnap[1] {
		t.Errorf("sequential snapshot %v != concurrent snapshot %v", seqSnap, concSnap)
	}
	lowTotal := uint64(goroutines*batches*batchLen) - 4
	if wantSat := lowTotal - regMax; concSat != wantSat {
		t.Errorf("concurrent saturations = %d, want %d", concSat, wantSat)
	}
	if concSat != seqSat {
		t.Errorf("saturations diverge: concurrent %d, sequential %d", concSat, seqSat)
	}
}

// TestSaturationAccountingStable: Saturations is computed live, so the
// overflow of undrained registers already shows before any drain, a
// read-only Snapshot leaves the stripes intact, and draining folds the
// same loss into the lifetime counter exactly once — never double-charged.
func TestSaturationAccountingStable(t *testing.T) {
	m, err := New("satonce", 8, 0, WithRegisterBits(2)) // registerMax = 3
	if err != nil {
		t.Fatal(err)
	}
	root, _ := bitstr.Root(8)
	if _, err := m.Install([]bitstr.Prefix{root}); err != nil {
		t.Fatal(err)
	}
	m.ObserveAll(make([]uint64, 10)) // 10 hits on bin 0, max 3

	if snap := m.Snapshot(); snap[0] != 3 {
		t.Fatalf("snapshot = %v, want [3]", snap)
	}
	if s := m.Stats().Saturations; s != 7 {
		t.Fatalf("live saturations after read-only snapshot = %d, want 7", s)
	}
	if snap := m.SnapshotAndReset(); snap[0] != 3 {
		t.Fatalf("snapshot-and-reset = %v, want [3]", snap)
	}
	if s := m.Stats().Saturations; s != 7 {
		t.Fatalf("saturations after drain = %d, want 7", s)
	}
	if snap := m.SnapshotAndReset(); snap[0] != 0 {
		t.Fatalf("second drain = %v, want [0]", snap)
	}
	if s := m.Stats().Saturations; s != 7 {
		t.Fatalf("saturations double-charged: %d, want 7", s)
	}
}
