package monitor

import (
	"errors"
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/tcam"
)

// TestSaturationAcrossReset: registers clamp at 2^bits − 1 per bin, the
// lost increments are counted, and a reset restores normal counting while
// the saturation count (a lifetime statistic) is preserved.
func TestSaturationAcrossReset(t *testing.T) {
	m, err := New("mon", 3, 8, WithRegisterBits(4)) // max 15
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		m.Observe(1) // bin 0
	}
	m.Observe(5) // bin 1, far from saturation
	snap := m.Snapshot()
	if snap[0] != 15 {
		t.Errorf("saturated register = %d, want 15", snap[0])
	}
	if snap[1] != 1 {
		t.Errorf("register 1 = %d, want 1", snap[1])
	}
	st := m.Stats()
	if st.Saturations != 25 {
		t.Errorf("Saturations = %d, want 25", st.Saturations)
	}
	if st.Matched != 41 || st.Observations != 41 {
		t.Errorf("Matched/Observations = %d/%d, want 41/41", st.Matched, st.Observations)
	}

	// Reset clears the registers; counting resumes from zero.
	m.Reset()
	m.Observe(0)
	if snap := m.Snapshot(); snap[0] != 1 {
		t.Errorf("post-reset register = %d, want 1", snap[0])
	}
	if got := m.Stats().Saturations; got != 25 {
		t.Errorf("Saturations moved across reset: %d", got)
	}
}

// TestResetDuringObservation: the control plane snapshots and resets while
// the data plane keeps observing. Under -race this doubles as a locking
// audit; the accounting invariant is that no observation is lost — every
// matched sample lands either in a harvested snapshot or in the final
// registers.
func TestResetDuringObservation(t *testing.T) {
	m, err := New("mon", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}

	const (
		observers = 4
		perWorker = 5000
		rounds    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < observers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Observe(seed + uint64(i)) // masked to width inside Observe
			}
		}(uint64(w) * 13)
	}

	// Control loop: harvest with the atomic read-and-clear. A separate
	// Snapshot followed by Reset would wipe any sample landing in between;
	// SnapshotAndReset closes that window.
	var harvested uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			for _, c := range m.SnapshotAndReset() {
				harvested += c
			}
		}
	}()
	wg.Wait()
	<-done

	for _, c := range m.Snapshot() {
		harvested += c
	}
	st := m.Stats()
	if st.Matched != uint64(observers*perWorker) {
		t.Fatalf("Matched = %d, want %d", st.Matched, observers*perWorker)
	}
	if harvested != st.Matched {
		t.Errorf("harvested %d observations, matched %d: samples lost or double-counted",
			harvested, st.Matched)
	}
}

// TestInstallFailureLeavesMonitorUnchanged: a row write failing mid-install
// (as the fault injector does at the driver boundary) must leave the old
// bins, registers, and stats fully intact — the transactional contract the
// control plane's rollback depends on.
func TestInstallFailureLeavesMonitorUnchanged(t *testing.T) {
	m, err := New("mon", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "0xx", "1xx")); err != nil {
		t.Fatal(err)
	}
	m.ObserveAll([]uint64{1, 5, 6})
	before := m.Snapshot()
	fp := m.Table().Fingerprint()
	statsBefore := m.Stats()

	errInjected := errors.New("injected row failure")
	calls := 0
	m.Table().SetWriteHook(func(op tcam.WriteOp) error {
		calls++
		if calls >= 3 {
			return errInjected
		}
		return nil
	})
	if _, err := m.Install(parseAll(t, "00x", "01x", "10x", "11x")); !errors.Is(err, errInjected) {
		t.Fatalf("install error = %v, want injected", err)
	}
	m.Table().SetWriteHook(nil)

	if m.NumBins() != 2 {
		t.Errorf("NumBins = %d after failed install, want 2", m.NumBins())
	}
	if m.Table().Fingerprint() != fp {
		t.Error("monitoring TCAM mutated by failed install")
	}
	after := m.Snapshot()
	for i := range before {
		if after[i] != before[i] {
			t.Errorf("register %d changed on failed install: %d -> %d", i, before[i], after[i])
		}
	}
	if got := m.Stats().TCAMWrites; got != statsBefore.TCAMWrites {
		t.Errorf("TCAMWrites charged for failed install: %d -> %d", statsBefore.TCAMWrites, got)
	}

	// The monitor still works and a clean retry succeeds.
	if !m.Observe(2) {
		t.Error("Observe missed after failed install")
	}
	if _, err := m.Install(parseAll(t, "00x", "01x", "10x", "11x")); err != nil {
		t.Fatalf("retry install: %v", err)
	}
	if m.NumBins() != 4 {
		t.Errorf("NumBins = %d after retry", m.NumBins())
	}
}

// TestInstallDiffWrites: reinstalling overlapping bins pays only for the
// rows that moved, not a full table replacement.
func TestInstallDiffWrites(t *testing.T) {
	m, err := New("mon", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Install(parseAll(t, "00x", "01x", "1xx")); err != nil {
		t.Fatal(err)
	}
	// Split "1xx" into "10x"/"11x": "00x" and "01x" keep their rows (their
	// bin indices are unchanged), so the diff is one delete + two inserts.
	writes, err := m.Install(parseAll(t, "00x", "01x", "10x", "11x"))
	if err != nil {
		t.Fatal(err)
	}
	if writes != 3 {
		t.Errorf("diff install writes = %d, want 3 (1 delete + 2 inserts)", writes)
	}
	for v := uint64(0); v < 8; v++ {
		if !m.Observe(v) {
			t.Errorf("Observe(%d) missed after diff install", v)
		}
	}
}
