package experiments

import (
	"fmt"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// Fig8Config parameterises the Nimble rate-change experiment (§V-B1): 16
// DCTCP connections at line rate through a Nimble limiter set to 24 Gbps,
// cut to 12 Gbps mid-run. Without a control-plane TCAM update the stale
// population computes the drain with a huge error; with ADA the monitor
// detects the new operating point and repopulates within a few rounds.
type Fig8Config struct {
	// LinkRateBps is the access link speed.
	LinkRateBps float64
	// Flows is the parallel connection count (paper: 16 iperf3 streams).
	Flows int
	// InitialRateGbps and ChangedRateGbps are the limiter settings.
	InitialRateGbps, ChangedRateGbps uint64
	// ChangeAt is the rate-change instant (paper: 3 ms).
	ChangeAt netsim.Time
	// Duration is the run length.
	Duration netsim.Time
	// CalcEntries is the calculation budget (paper: 128).
	CalcEntries int
	// MonitorEntries is the monitoring budget (paper: 12).
	MonitorEntries int
	// SyncEvery is the ADA control-round period.
	SyncEvery netsim.Time
	// MeterWindow is the throughput sampling window.
	MeterWindow netsim.Time
}

// DefaultFig8Config returns the paper's setup scaled to milliseconds.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		LinkRateBps:     40e9,
		Flows:           16,
		InitialRateGbps: 24,
		ChangedRateGbps: 12,
		ChangeAt:        3 * netsim.Millisecond,
		Duration:        9 * netsim.Millisecond,
		CalcEntries:     128,
		MonitorEntries:  12,
		SyncEvery:       250 * netsim.Microsecond,
		MeterWindow:     250 * netsim.Microsecond,
	}
}

// Fig8Variant names a limiter arithmetic configuration.
type Fig8Variant string

// Fig8 variants.
const (
	// Fig8Ideal uses exact arithmetic (unlimited-TCAM baseline).
	Fig8Ideal Fig8Variant = "ideal"
	// Fig8Static trains the TCAM for the initial rate, then freezes it (the
	// paper's "Nimble without ADA": no control-plane update at the change).
	Fig8Static Fig8Variant = "static"
	// Fig8ADA keeps the ADA control loop running throughout.
	Fig8ADA Fig8Variant = "ada"
)

// Fig8Row is one variant's throughput behaviour.
type Fig8Row struct {
	// Variant identifies the arithmetic configuration.
	Variant Fig8Variant
	// Series is goodput (bits/s) per meter window.
	Series []float64
	// Phase1AvgGbps is mean goodput while the limit is the initial rate
	// (measured after ramp-up).
	Phase1AvgGbps float64
	// Phase2AvgGbps is mean goodput after the change (measured after a
	// settling window).
	Phase2AvgGbps float64
	// LimiterDrops counts packets the limiter rejected.
	LimiterDrops uint64
}

// RunFig8 runs the three variants and reports throughput before and after
// the rate change.
func RunFig8(cfg Fig8Config) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, variant := range []Fig8Variant{Fig8Ideal, Fig8Static, Fig8ADA} {
		row, err := runFig8Variant(cfg, variant)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", variant, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runFig8Variant(cfg Fig8Config, variant Fig8Variant) (Fig8Row, error) {
	topo := netsim.BuildStar(netsim.StarConfig{
		Hosts:       2,
		LinkRateBps: cfg.LinkRateBps,
		LinkDelay:   netsim.Microsecond,
	})
	topo.SetECNThreshold(60 * 1024)
	net := topo.Net
	sim := net.Sim

	var arithImpl netsim.Arithmetic
	var ada *apps.ADARateMultiplier
	switch variant {
	case Fig8Ideal:
		arithImpl = netsim.IdealArith{}
	case Fig8Static, Fig8ADA:
		// The paper's ADA(R) deployment: adaptive rate marginal (monitored),
		// magnitude-logarithmic sig-bits ΔT marginal. 2 rate entries × 76 ΔT
		// entries ≈ the paper's 128-entry multiplication table.
		// ΔT key width 20 bits (≈1 ms): beyond that a gap fully drains the
		// 400 KB bucket at any plausible rate, so clamping is harmless.
		a, err := apps.NewADARateMultiplier(8, 20, 2, cfg.MonitorEntries, 2)
		if err != nil {
			return Fig8Row{}, err
		}
		ada = a
		arithImpl = a
	}

	nim, err := apps.NewNimble(arithImpl, cfg.InitialRateGbps, 400*1024)
	if err != nil {
		return Fig8Row{}, err
	}
	// DCTCP senders settle against ECN marks from the virtual buffer; the
	// hard drop at 400 KB is the backstop.
	nim.ECNThresholdBytes = 30 * 1024
	// The limiter guards the port toward the receiving host.
	downPort := topo.DownPorts[1][1]
	downPort.Filter = nim

	meter := &netsim.ThroughputMeter{Window: cfg.MeterWindow}
	meter.Attach(sim, downPort)

	// 16 parallel long-running DCTCP connections saturating the link.
	size := int(cfg.LinkRateBps * cfg.Duration.Seconds() / 8 / float64(cfg.Flows))
	for i := 0; i < cfg.Flows; i++ {
		f := net.AddFlow(&netsim.Flow{Src: 0, Dst: 1, Size: size, Start: 0})
		if err := net.StartFlow(f, netsim.NewWindowTransport(netsim.DCTCP)); err != nil {
			return Fig8Row{}, err
		}
	}

	// ADA control rounds: Fig8ADA syncs throughout; Fig8Static syncs only
	// before the change (that is exactly "no TCAM update from the control
	// plane" after the rate moves).
	if ada != nil {
		var tick func()
		tick = func() {
			if variant == Fig8Static && sim.Now() >= cfg.ChangeAt {
				return
			}
			if _, err := ada.Sync(); err != nil {
				return
			}
			sim.After(cfg.SyncEvery, tick)
		}
		sim.After(cfg.SyncEvery, tick)
	}

	// The operator cuts the limit mid-run.
	sim.Schedule(cfg.ChangeAt, func() { nim.SetRateGbps(cfg.ChangedRateGbps) })

	sim.Run(cfg.Duration)

	row := Fig8Row{Variant: variant, Series: meter.BpsSeries, LimiterDrops: nim.Drops}
	row.Phase1AvgGbps = meanWindow(meter.BpsSeries, cfg.MeterWindow,
		netsim.Millisecond, cfg.ChangeAt) / 1e9
	row.Phase2AvgGbps = meanWindow(meter.BpsSeries, cfg.MeterWindow,
		cfg.ChangeAt+2*netsim.Millisecond, cfg.Duration) / 1e9
	return row, nil
}

// meanWindow averages series samples whose window falls inside [from, to).
func meanWindow(series []float64, window, from, to netsim.Time) float64 {
	sum, n := 0.0, 0
	for i, v := range series {
		at := netsim.Time(i+1) * window
		if at >= from && at < to {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderFig8 formats the rows.
func RenderFig8(rows []Fig8Row) string {
	t := stats.NewTable("Fig 8: Nimble throughput across a 24→12 Gbps limit change",
		"variant", "phase1 avg", "phase2 avg (want ≈12G)", "limiter drops")
	for _, r := range rows {
		t.AddF(string(r.Variant),
			fmt.Sprintf("%.2fGbps", r.Phase1AvgGbps),
			fmt.Sprintf("%.2fGbps", r.Phase2AvgGbps),
			r.LimiterDrops)
	}
	return t.String()
}
