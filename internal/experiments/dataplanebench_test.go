package experiments

import "testing"

// shortDataplaneBenchConfig trims the sweep so the acceptance run fits CI:
// the built-in equivalence verification (results, misses, registers) still
// runs in full, only the measured stream shrinks.
func shortDataplaneBenchConfig() DataplaneBenchConfig {
	cfg := DefaultDataplaneBenchConfig()
	cfg.Samples = 60_000
	cfg.Batch = 512
	cfg.Workers = []int{1, 2}
	return cfg
}

// TestDataplaneBenchAcceptance runs the data-plane throughput experiment
// end to end. Every run first proves the typed path bit-identical to the
// pre-change baseline replica (RunDataplaneBench errors on any divergence),
// then sweeps both paths. In short/CI mode only sanity bounds are asserted
// — single-core runners make throughput ratios unstable; the committed
// BENCH_dataplane.json records the full-run speedups.
func TestDataplaneBenchAcceptance(t *testing.T) {
	cfg := DefaultDataplaneBenchConfig()
	if testing.Short() {
		cfg = shortDataplaneBenchConfig()
	}
	rows, err := RunDataplaneBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderDataplaneBench(rows))
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want unary + binary", len(rows))
	}
	for _, row := range rows {
		if row.Path != "unary" && row.Path != "binary" {
			t.Errorf("unexpected path %q", row.Path)
		}
		if len(row.Points) != len(cfg.Workers) {
			t.Errorf("%s: %d points, want %d", row.Path, len(row.Points), len(cfg.Workers))
		}
		for _, p := range row.Points {
			if p.TypedSamplesSec <= 0 || p.BaselineSamplesSec <= 0 {
				t.Errorf("%s w=%d: non-positive throughput %+v", row.Path, p.Workers, p)
			}
			if !raceEnabled && p.TypedAllocsBatch >= 2 {
				t.Errorf("%s w=%d: typed path allocates %.1f/batch, want <2",
					row.Path, p.Workers, p.TypedAllocsBatch)
			}
		}
		if row.BestSpeedup <= 1 {
			t.Errorf("%s: best typed/baseline speedup %.2f, want >1", row.Path, row.BestSpeedup)
		}
		if !testing.Short() && !raceEnabled && row.ScalingImprovement < 2 {
			t.Errorf("%s: scaling improvement %.2f, want >=2 in full mode",
				row.Path, row.ScalingImprovement)
		}
	}
}
