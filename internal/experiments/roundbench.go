package experiments

import (
	"fmt"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/stats"
)

// RoundBenchConfig parameterises the control-round microbenchmark: the
// incremental round (dirty-subtree repopulation + memoized Algorithm 3 +
// delta TCAM commit) against full repopulation, swept across churn levels.
type RoundBenchConfig struct {
	// ChurnLevels are the fractions of monitoring bins whose hit counts
	// change every round (0 = fully converged, 1 = every leaf dirty).
	ChurnLevels []float64
	// Rounds is the timed rounds per (churn, mode) measurement.
	Rounds int
	// Warmup is the untimed rounds run first so both systems reach the
	// steady structure the churn schedule assumes.
	Warmup int
	// MonitorEntries is the monitoring bin count (held fixed: the feed keeps
	// bins balanced so the structure never reshapes mid-measurement).
	MonitorEntries int
	// CalcBudget is the calculation TCAM budget (the issue's acceptance
	// point is 1024).
	CalcBudget int
	// Width is the operand width in bits.
	Width int
	// BaseCount is the per-bin hit count fed each round; churned bins
	// alternate BaseCount↔1.2·BaseCount so they dirty every round and shift
	// their allocation share, while the imbalance (0.167) stays below the
	// 0.20 rebalance threshold and the bin structure never reshapes.
	BaseCount int
}

// DefaultRoundBenchConfig returns the issue's acceptance sweep: churn 0%,
// 5%, 50%, and 100% at a 1024-entry calculation budget.
func DefaultRoundBenchConfig() RoundBenchConfig {
	return RoundBenchConfig{
		ChurnLevels:    []float64{0, 0.05, 0.5, 1},
		Rounds:         30,
		Warmup:         5,
		MonitorEntries: 64,
		CalcBudget:     1024,
		Width:          16,
		BaseCount:      100,
	}
}

// RoundBenchRow is one churn level's incremental-vs-full measurements.
// *_ns are wall-clock nanoseconds per control round; writes/computed/reused
// are per-round averages; delay_*_ns is the modelled CostModel delay.
type RoundBenchRow struct {
	Churn        float64 `json:"churn"`
	Budget       int     `json:"budget"`
	IncNs        float64 `json:"incremental_ns"`
	FullNs       float64 `json:"full_ns"`
	Speedup      float64 `json:"speedup"`
	IncWrites    float64 `json:"incremental_tcam_writes"`
	FullWrites   float64 `json:"full_tcam_writes"`
	IncComputed  float64 `json:"incremental_computed"`
	FullComputed float64 `json:"full_computed"`
	IncReused    float64 `json:"incremental_reused"`
	IncDelayNs   float64 `json:"incremental_delay_ns"`
	FullDelayNs  float64 `json:"full_delay_ns"`
}

// roundBenchSystem builds one unary system for the bench; incremental
// selects the delta path, otherwise every round repopulates in full.
func roundBenchSystem(cfg RoundBenchConfig, incremental bool) (*core.UnarySystem, error) {
	c := core.DefaultConfig(cfg.Width)
	c.MonitorEntries = cfg.MonitorEntries
	// Pin the monitoring budget so adaptive expansion cannot reshape the
	// bins mid-measurement; churn must be the only moving part.
	c.MaxMonitorEntries = cfg.MonitorEntries
	c.CalcEntries = cfg.CalcBudget
	c.DisableIncremental = !incremental
	return core.NewUnary(c, arith.OpSquare)
}

// roundBenchFeed builds one round's operand stream: every bin receives
// BaseCount observations of its low representative value, and the first
// nChurn bins receive 20% more on odd rounds — so exactly nChurn leaves
// dirty every round, their allocation share moves, and the distribution
// stays balanced enough that the structure never reshapes.
func roundBenchFeed(sys *core.UnarySystem, base, nChurn, round int, buf []uint64) []uint64 {
	prefixes := sys.Controller().Monitor().Prefixes()
	buf = buf[:0]
	for i, p := range prefixes {
		n := base
		if i < nChurn && round%2 == 1 {
			n += base / 5
		}
		for j := 0; j < n; j++ {
			buf = append(buf, p.Lo())
		}
	}
	return buf
}

// runRoundBenchMode measures one system across warmup+timed rounds and
// returns per-round averages (wall ns, tcam writes, computed, reused,
// modelled delay ns). The feed is built outside the timed region; only
// Controller.Round — snapshot, Algorithm 2/3, table pushes — is timed.
func runRoundBenchMode(sys *core.UnarySystem, cfg RoundBenchConfig, churn float64) (wall, writes, computed, reused, delay float64, err error) {
	nChurn := int(churn*float64(cfg.MonitorEntries) + 0.5)
	var buf []uint64
	for round := 0; round < cfg.Warmup+cfg.Rounds; round++ {
		buf = roundBenchFeed(sys, cfg.BaseCount, nChurn, round, buf)
		sys.ObserveAll(buf)
		start := time.Now()
		rep, rerr := sys.Controller().Round()
		elapsed := time.Since(start)
		if rerr != nil {
			return 0, 0, 0, 0, 0, rerr
		}
		if rep.Degraded {
			return 0, 0, 0, 0, 0, fmt.Errorf("roundbench: degraded round (%s) with no faults injected", rep.DegradedReason)
		}
		if round < cfg.Warmup {
			continue
		}
		wall += float64(elapsed.Nanoseconds())
		writes += float64(rep.TCAMWrites)
		computed += float64(rep.Computed)
		reused += float64(rep.Reused)
		delay += float64(rep.Delay.Nanoseconds())
	}
	n := float64(cfg.Rounds)
	return wall / n, writes / n, computed / n, reused / n, delay / n, nil
}

// RunRoundBench measures incremental vs full control rounds at each churn
// level. Both systems see identical feeds, and their calculation tables are
// asserted bit-identical after each measurement — the benchmark doubles as
// an end-to-end equivalence check.
func RunRoundBench(cfg RoundBenchConfig) ([]RoundBenchRow, error) {
	rows := make([]RoundBenchRow, 0, len(cfg.ChurnLevels))
	for _, churn := range cfg.ChurnLevels {
		inc, err := roundBenchSystem(cfg, true)
		if err != nil {
			return nil, err
		}
		full, err := roundBenchSystem(cfg, false)
		if err != nil {
			return nil, err
		}
		iw, iwr, ic, ir, id, err := runRoundBenchMode(inc, cfg, churn)
		if err != nil {
			return nil, err
		}
		fw, fwr, fc, _, fd, err := runRoundBenchMode(full, cfg, churn)
		if err != nil {
			return nil, err
		}
		if inc.Engine().Table().Fingerprint() != full.Engine().Table().Fingerprint() {
			return nil, fmt.Errorf("roundbench: incremental and full tables diverge at churn %.2f", churn)
		}
		rows = append(rows, RoundBenchRow{
			Churn:        churn,
			Budget:       cfg.CalcBudget,
			IncNs:        iw,
			FullNs:       fw,
			Speedup:      fw / iw,
			IncWrites:    iwr,
			FullWrites:   fwr,
			IncComputed:  ic,
			FullComputed: fc,
			IncReused:    ir,
			IncDelayNs:   id,
			FullDelayNs:  fd,
		})
	}
	return rows, nil
}

// WriteRoundBenchJSON writes the rows as an indented JSON baseline (the
// committed BENCH_round.json artefact).
func WriteRoundBenchJSON(path string, rows []RoundBenchRow) error {
	return WriteBenchJSON(path, rows)
}

// RenderRoundBench formats the rows.
func RenderRoundBench(rows []RoundBenchRow) string {
	t := stats.NewTable("Control-round microbenchmark: incremental vs full repopulation (per round)",
		"churn", "budget", "inc ns", "full ns", "speedup", "inc writes", "full writes",
		"inc computed", "full computed", "inc reused")
	for _, r := range rows {
		t.AddF(fmt.Sprintf("%.0f%%", 100*r.Churn), r.Budget,
			fmt.Sprintf("%.0f", r.IncNs), fmt.Sprintf("%.0f", r.FullNs),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.1f", r.IncWrites), fmt.Sprintf("%.1f", r.FullWrites),
			fmt.Sprintf("%.1f", r.IncComputed), fmt.Sprintf("%.1f", r.FullComputed),
			fmt.Sprintf("%.1f", r.IncReused))
	}
	return t.String()
}
