package experiments

import (
	"testing"

	"github.com/ada-repro/ada/internal/faults"
)

// TestChaosFig8ReconvergesUnderDefaultProfile is the acceptance soak: the
// Fig 8 rate change under the default fault profile (5% transient write
// failure, 1% stale snapshots, seeded). ADA must still land near the new
// limit, every round must leave the calc table fully old- or fully
// new-generation, and faults must actually have been injected.
func TestChaosFig8ReconvergesUnderDefaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunFig8Chaos(DefaultChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.InvariantViolations {
		t.Errorf("invariant: %s", v)
	}
	if rep.FaultStats.WriteFailures+rep.FaultStats.StaleSnapshots == 0 {
		t.Error("fault profile injected nothing; the soak proved nothing")
	}
	// Same reconvergence tolerance as the fault-free Fig 8 test: injected
	// transients must not keep ADA away from the new operating point.
	if d := relDev(rep.Row.Phase2AvgGbps, 12); d > 0.40 {
		t.Errorf("ada-under-faults phase2 = %.2f Gbps, want ≈12 (dev %.2f)",
			rep.Row.Phase2AvgGbps, d)
	}
	if rep.Rounds == 0 {
		t.Fatal("no control rounds ran")
	}
	t.Logf("rounds=%d degraded=%d retries=%d errors=%d stats=%+v",
		rep.Rounds, rep.DegradedRounds, rep.Retries, rep.DriverErrors, rep.FaultStats)
	if RenderChaos(rep) == "" {
		t.Error("render empty")
	}
}

// TestChaosFig8SurvivesOutages layers driver outages, row-write failures,
// and latency spikes on top; degraded rounds must appear, the invariants
// must hold, and the data plane must keep serving throughout (no lookup
// misses recorded by the invariant probes).
func TestChaosFig8SurvivesOutages(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultChaosConfig()
	cfg.Profile = faults.OutageProfile()
	rep, err := RunFig8Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.InvariantViolations {
		t.Errorf("invariant: %s", v)
	}
	if rep.DegradedRounds == 0 {
		t.Error("outage profile produced no degraded rounds; injection not reaching the controller")
	}
	if rep.DegradedRounds >= rep.Rounds {
		t.Errorf("all %d rounds degraded; controller never recovered", rep.Rounds)
	}
	t.Logf("rounds=%d degraded=%d unhealthy=%v stats=%+v",
		rep.Rounds, rep.DegradedRounds, rep.WentUnhealthy, rep.FaultStats)
}

// TestChaosFig8SilentFaultsHealViaAudits is the silent-fault soak: dropped
// acks on the wire plus periodic payload corruption and ghost rows in the
// joint table. The read-back audits must actually fire, catch divergence,
// and — once injection stops — reconcile the physical table with the
// controller shadow within one audit period.
func TestChaosFig8SilentFaultsHealViaAudits(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunFig8Chaos(SilentChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.InvariantViolations {
		t.Errorf("invariant: %s", v)
	}
	if rep.FaultStats.TamperedRows+rep.FaultStats.GhostRows == 0 {
		t.Error("silent tamper schedule inert; the soak proved nothing")
	}
	if rep.FaultStats.AckDrops == 0 {
		t.Error("no acks dropped")
	}
	if rep.Audits == 0 {
		t.Error("audit cadence never fired")
	}
	if rep.AuditMismatches == 0 {
		t.Error("audits saw no mismatches despite tampering")
	}
	if !rep.HealedAfterQuiesce {
		t.Error("joint table still diverges from the shadow after quiesce")
	}
	t.Logf("rounds=%d degraded=%d audits=%d mismatches=%d repairwrites=%d stats=%+v",
		rep.Rounds, rep.DegradedRounds, rep.Audits, rep.AuditMismatches, rep.RepairWrites, rep.FaultStats)
}
