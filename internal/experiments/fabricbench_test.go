package experiments

import (
	"testing"
	"time"
)

// shortFabricBenchConfig is the CI-sized fabric deployment: same shape as
// the committed baseline (crowded ring placement, faulty switches, drifting
// tenants) at a fraction of the round and sample counts.
func shortFabricBenchConfig() FabricBenchConfig {
	return FabricBenchConfig{
		Switches:          16,
		SwitchEntries:     96,
		Tenants:           9,
		Rounds:            12,
		Warmup:            4,
		SamplesPerRound:   250,
		EvalSamples:       250,
		Workers:           4,
		BatchSize:         128,
		RoundDeadline:     25 * time.Millisecond,
		MigrateEvery:      2,
		ArbiterEvery:      2,
		FaultySwitches:    4,
		ThroughputSamples: 30000,
		Seed:              1,
	}
}

// TestFabricBenchElasticBeatsStatic is the fabric acceptance gate: over
// identical streams the elastic fabric (switch-local arbiters + cross-switch
// migration) must beat static equal placement on aggregate error, the
// replay-scaling model must show parallel speedup, and round latency under
// the injected per-switch faults must be reported. Short mode runs the
// reduced CI deployment; the full default is the committed baseline.
func TestFabricBenchElasticBeatsStatic(t *testing.T) {
	cfg := DefaultFabricBenchConfig()
	if testing.Short() {
		cfg = shortFabricBenchConfig()
	}
	res, err := RunFabricBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderFabricBench(res))
	if res.Improvement <= 1.0 {
		t.Errorf("elastic aggregate error %.4f not below static %.4f (improvement %.2fx)",
			res.ElasticAggregate, res.StaticAggregate, res.Improvement)
	}
	if res.Migrations < 1 {
		t.Errorf("elastic fabric performed %d migrations, want >= 1", res.Migrations)
	}
	if res.OccupiedElastic < res.OccupiedStatic {
		t.Errorf("elastic fabric occupies %d switches, fewer than static %d",
			res.OccupiedElastic, res.OccupiedStatic)
	}
	minScaling := 3.0
	if testing.Short() {
		minScaling = 2.0 // 4-worker grid in short mode
	}
	if res.ModelScaling < minScaling {
		t.Errorf("replay scaling 1->%d workers is %.2fx, want >= %.1fx",
			cfg.Workers, res.ModelScaling, minScaling)
	}
	if res.StaticLatency.P99Micros <= 0 || res.ElasticLatency.P99Micros <= 0 {
		t.Errorf("p99 round latency not reported: static %v elastic %v",
			res.StaticLatency, res.ElasticLatency)
	}
	if res.StaticLatency.P99Micros < res.StaticLatency.P50Micros ||
		res.ElasticLatency.P99Micros < res.ElasticLatency.P50Micros {
		t.Errorf("latency quantiles out of order: static %+v elastic %+v",
			res.StaticLatency, res.ElasticLatency)
	}
}
