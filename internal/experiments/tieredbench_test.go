package experiments

import (
	"testing"
)

// shortTieredBenchConfig shrinks the sweep so CI's short mode stays fast
// while keeping the acceptance shape: the tiered budgets still extend ≥10×
// past the largest pure budget on an unchanged TCAM slice.
func shortTieredBenchConfig() TieredBenchConfig {
	cfg := DefaultTieredBenchConfig()
	cfg.Width = 12
	cfg.PureBudgets = []int{8, 32}
	cfg.TieredBudgets = []int{320}
	cfg.TieredTCAM = 32
	cfg.Rounds = 6
	cfg.SamplesPerRound = 1500
	cfg.EvalSamples = 4000
	return cfg
}

// TestTieredBenchAcceptance runs the issue's acceptance sweep: the error
// curve must keep improving at budgets ≥10× past what the TCAM slice alone
// could hold, at unchanged ternary capacity, and the tiered store must hold
// populations a pure TCAM of the same slice could never fit.
func TestTieredBenchAcceptance(t *testing.T) {
	cfg := DefaultTieredBenchConfig()
	if testing.Short() {
		cfg = shortTieredBenchConfig()
	}
	maxPure := 0
	for _, b := range cfg.PureBudgets {
		if b > maxPure {
			maxPure = b
		}
	}
	maxTiered := 0
	for _, b := range cfg.TieredBudgets {
		if b > maxTiered {
			maxTiered = b
		}
	}
	if maxTiered < 10*maxPure {
		t.Fatalf("config regression: tiered sweep tops out at %d, want ≥10× the pure max %d", maxTiered, maxPure)
	}
	rows, err := RunTieredBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderTieredBench(rows))
	var pureBest, tieredBest TieredBenchRow
	for _, r := range rows {
		switch r.Mode {
		case "pure":
			if r.TCAMRows != r.Budget {
				t.Errorf("pure row at budget %d reports %d TCAM rows", r.Budget, r.TCAMRows)
			}
			if r.SRAMWrites != 0 || r.Promotions != 0 || r.ColdRows != 0 {
				t.Errorf("pure row at budget %d carries tier accounting: %+v", r.Budget, r)
			}
			if pureBest.Mode == "" || r.Budget > pureBest.Budget {
				pureBest = r
			}
		case "tiered":
			if r.TCAMRows != cfg.TieredTCAM {
				t.Errorf("tiered row at budget %d consumes %d TCAM rows, want the pinned slice %d",
					r.Budget, r.TCAMRows, cfg.TieredTCAM)
			}
			if r.HotRows > cfg.TieredTCAM {
				t.Errorf("tiered row at budget %d holds %d hot rows, above the %d-row slice",
					r.Budget, r.HotRows, cfg.TieredTCAM)
			}
			if r.HotRows+r.ColdRows != r.Budget {
				t.Errorf("tiered row at budget %d installed %d+%d rows",
					r.Budget, r.HotRows, r.ColdRows)
			}
			if r.Budget > cfg.TieredTCAM && r.ColdRows == 0 {
				t.Errorf("tiered row at budget %d spilled nothing to SRAM", r.Budget)
			}
			if tieredBest.Mode == "" || r.Budget > tieredBest.Budget {
				tieredBest = r
			}
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
	}
	// The point of the tentpole: extending the budget past the TCAM slice
	// must keep buying accuracy at unchanged ternary capacity.
	if tieredBest.MeanRelErr >= pureBest.MeanRelErr {
		t.Errorf("tiered budget %d error %.3f%% not below pure budget %d error %.3f%%",
			tieredBest.Budget, tieredBest.MeanRelErr, pureBest.Budget, pureBest.MeanRelErr)
	}
}

// TestTieredDifferential proves bit-identical arithmetic: tiered vs pure at
// the same effective budget, identical workloads, fingerprint parity and
// identical evaluations after every control round.
func TestTieredDifferential(t *testing.T) {
	cfg := shortTieredBenchConfig()
	if !testing.Short() {
		cfg = DefaultTieredBenchConfig()
		cfg.Rounds = 8
	}
	budget := cfg.TieredBudgets[len(cfg.TieredBudgets)-1]
	rounds, err := TieredDifferential(cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != cfg.Rounds {
		t.Fatalf("compared %d rounds, want %d", rounds, cfg.Rounds)
	}
}
