package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/serve"
	"github.com/ada-repro/ada/internal/stats"
)

// ServeBenchConfig parameterises the service-mode soak: two identical
// seeded workloads — phase-shifting operand distributions over churning
// tenants, with injected driver faults and a mid-soak crash/restart — run
// once under the drift-paced adaptive pacer (plus error SLO and rolling
// TCAM write budget) and once under the paper's fixed repopulation cadence,
// so the round counts, TCAM write totals, and error percentiles are
// directly comparable.
type ServeBenchConfig struct {
	// Width, MonitorEntries, CalcEntries shape each tenant system.
	Width          int
	MonitorEntries int
	CalcEntries    int
	// Tenants share one physical table; Shards is the ingest worker count.
	Tenants int
	Shards  int
	// Ticks is the soak length in pacer ticks; TickPeriod the simulated
	// clock step between them (the soak injects its own clock, so wall
	// time does not gate the run).
	Ticks      int
	TickPeriod time.Duration
	// BatchesPerTick batches of BatchSize operands stream into each
	// attached tenant every tick.
	BatchesPerTick int
	BatchSize      int
	// PhaseLen is the tick count between operand-distribution shifts —
	// the drift events the adaptive pacer must catch.
	PhaseLen int
	// DriftTrigger is the adaptive mode's TV-distance trigger.
	DriftTrigger float64
	// AdaptiveStaleTicks bounds the adaptive mode's staleness backstop;
	// FixedEveryTicks is the baseline's repopulation cadence.
	AdaptiveStaleTicks int
	FixedEveryTicks    int
	// ErrorSLO and WriteBudget/BudgetWindowTicks arm the adaptive mode's
	// SLO bypass and rolling TCAM write budget (the fixed baseline runs
	// without either, as the paper's repopulation loop does).
	ErrorSLO          float64
	WriteBudget       int
	BudgetWindowTicks int
	// ChurnEvery detaches one tenant every ChurnEvery ticks and reattaches
	// it half a churn period later (0 disables churn).
	ChurnEvery int
	// RestartAt crash-restarts tenant 0's journaled controller at that
	// tick (0 disables).
	RestartAt int
	// FaultSpec wraps every tenant driver in a seeded fault injector
	// (empty disables).
	FaultSpec string
	// AllocWindowBatches sizes the steady-state allocation probe: after
	// the soak, this many pure-ingest batches run between two
	// runtime.ReadMemStats readings.
	AllocWindowBatches int
	// LookupCacheEntries arms each tenant's data-plane scratch with a
	// hot-key lookup cache of this many slots (0 = uncached); the serve
	// registry then exports the ada_lookup_cache_* counters.
	LookupCacheEntries int
	// ZipfS, when positive, replaces the peaked operand noise with a
	// bounded Zipf draw of this exponent shifted by the phase peak, so
	// skew and drift compose. 0 keeps the historical peaked streams.
	ZipfS float64
	// Seed drives the workload generator; both modes replay the same
	// stream.
	Seed int64
}

// DefaultServeBenchConfig is the committed BENCH_serve.json configuration.
func DefaultServeBenchConfig() ServeBenchConfig {
	return ServeBenchConfig{
		Width:              12,
		MonitorEntries:     12,
		CalcEntries:        48,
		Tenants:            6,
		Shards:             4,
		Ticks:              240,
		TickPeriod:         100 * time.Millisecond,
		BatchesPerTick:     4,
		BatchSize:          64,
		PhaseLen:           40,
		DriftTrigger:       0.15,
		AdaptiveStaleTicks: 60,
		FixedEveryTicks:    8,
		ErrorSLO:           0.05,
		WriteBudget:        600,
		BudgetWindowTicks:  20,
		ChurnEvery:         37,
		RestartAt:          125,
		FaultSpec:          "seed=11,write=0.02,latency=50us",
		AllocWindowBatches: 4096,
		LookupCacheEntries: 4096,
		Seed:               1,
	}
}

// ServeBenchMode is one soak's outcome.
type ServeBenchMode struct {
	Mode              string         `json:"mode"`
	Ticks             int            `json:"ticks"`
	Batches           uint64         `json:"batches"`
	Lookups           uint64         `json:"lookups"`
	Rounds            int            `json:"rounds"`
	RoundsByCause     map[string]int `json:"rounds_by_cause"`
	SuppressedSpacing int            `json:"suppressed_spacing"`
	SuppressedBudget  int            `json:"suppressed_budget"`
	TCAMWrites        int            `json:"tcam_writes"`
	// MaxWindowWrites is the largest TCAM write total inside any rolling
	// budget window of the soak, all causes included.
	MaxWindowWrites int `json:"max_window_writes"`
	// MeteredWindowWrites is the budget-compliance measurement: the
	// largest rolling-window total over only the writes the budget
	// actually governs — non-SLO rounds after the warm-up window (SLO
	// rounds bypass the budget by design, and first rounds are admitted
	// before any cost estimate exists).
	MeteredWindowWrites int     `json:"metered_window_writes"`
	ErrP50              float64 `json:"err_p50"`
	ErrP99              float64 `json:"err_p99"`
	// MaxRoundGapTicks is the longest any attached tenant went without a
	// round — the bounded-staleness measurement.
	MaxRoundGapTicks int  `json:"max_round_gap_ticks"`
	DegradedRounds   int  `json:"degraded_rounds"`
	Restarted        bool `json:"restarted"`
	ChurnCycles      int  `json:"churn_cycles"`
	// AllocsPerBatch is the steady-state ingest allocation rate measured
	// over the post-soak pure-ingest window.
	AllocsPerBatch float64 `json:"allocs_per_batch"`
	// ZipfS echoes the stream skew; the cache counters sum the
	// ada_lookup_cache_* metrics across tenants at soak end.
	ZipfS              float64 `json:"zipf_s"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	CacheInvalidations uint64  `json:"cache_invalidations"`
	// LeakedGoroutines is the post-Close goroutine delta against the
	// pre-soak baseline (after settling).
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// ServeBenchResult pairs the two soaks.
type ServeBenchResult struct {
	Tenants  int            `json:"tenants"`
	Ticks    int            `json:"ticks"`
	Adaptive ServeBenchMode `json:"adaptive"`
	Fixed    ServeBenchMode `json:"fixed"`
	// WriteRatio is fixed TCAM writes over adaptive TCAM writes: above 1
	// means drift pacing saved switch writes.
	WriteRatio float64 `json:"write_ratio"`
}

// RunServeBench runs the adaptive and fixed-cadence soaks over identical
// streams and pairs the outcomes.
func RunServeBench(cfg ServeBenchConfig) (ServeBenchResult, error) {
	adaptive, err := runServeMode(cfg, true)
	if err != nil {
		return ServeBenchResult{}, fmt.Errorf("adaptive soak: %w", err)
	}
	fixed, err := runServeMode(cfg, false)
	if err != nil {
		return ServeBenchResult{}, fmt.Errorf("fixed soak: %w", err)
	}
	res := ServeBenchResult{
		Tenants:  cfg.Tenants,
		Ticks:    cfg.Ticks,
		Adaptive: adaptive,
		Fixed:    fixed,
	}
	if adaptive.TCAMWrites > 0 {
		res.WriteRatio = float64(fixed.TCAMWrites) / float64(adaptive.TCAMWrites)
	}
	return res, nil
}

// phasePeak returns the operand distribution's centre for a tick: it
// cycles through thirds of the domain, one move per phase.
func phasePeak(cfg ServeBenchConfig, tick int, max uint64) uint64 {
	phase := tick / cfg.PhaseLen
	switch phase % 3 {
	case 0:
		return max / 8
	case 1:
		return max / 2
	default:
		return max - max/8
	}
}

func runServeMode(cfg ServeBenchConfig, adaptive bool) (ServeBenchMode, error) {
	modeName := "fixed"
	if adaptive {
		modeName = "adaptive"
	}
	mode := ServeBenchMode{
		Mode:          modeName,
		Ticks:         cfg.Ticks,
		RoundsByCause: make(map[string]int),
	}
	baseGoroutines := runtime.NumGoroutine()

	reg, err := core.NewRegistry(core.SharedConfig{
		Name:         "servebench-" + modeName,
		TotalEntries: cfg.Tenants * cfg.CalcEntries,
	})
	if err != nil {
		return mode, err
	}
	var prof faults.Profile
	if cfg.FaultSpec != "" {
		if prof, err = faults.ParseProfile(cfg.FaultSpec); err != nil {
			return mode, err
		}
	}
	names := make([]string, cfg.Tenants)
	injectors := make([]*faults.Injector, cfg.Tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
		tcfg := core.DefaultConfig(cfg.Width)
		tcfg.MonitorEntries = cfg.MonitorEntries
		tcfg.CalcEntries = cfg.CalcEntries
		tcfg.LookupCacheEntries = cfg.LookupCacheEntries
		tcfg.EnableJournal = true // the mid-soak Restart needs a journal
		if cfg.FaultSpec != "" {
			p := prof
			p.Seed = prof.Seed + int64(i)*101
			inj, err := faults.New(p)
			if err != nil {
				return mode, err
			}
			injectors[i] = inj
			tcfg.WrapDriver = inj.Wrap
		}
		if _, err := reg.MountUnary(names[i], tcfg, arith.OpSquare); err != nil {
			return mode, err
		}
	}

	// The soak injects its own clock so MinRoundSpacing, staleness, and
	// the budget window all advance one TickPeriod per tick regardless of
	// how fast the host runs the loop.
	now := time.Unix(1_700_000_000, 0)
	scfg := serve.Config{
		Shards:          cfg.Shards,
		QueueDepth:      2 * cfg.Tenants * cfg.BatchesPerTick,
		MinRoundSpacing: cfg.TickPeriod,
		TickEvery:       cfg.TickPeriod,
		Now:             func() time.Time { return now },
	}
	if adaptive {
		scfg.Drift = serve.DriftConfig{Trigger: cfg.DriftTrigger}
		scfg.MaxRoundStaleness = time.Duration(cfg.AdaptiveStaleTicks) * cfg.TickPeriod
		scfg.ErrorSLO = cfg.ErrorSLO
		scfg.WriteBudget = cfg.WriteBudget
		scfg.WriteBudgetWindow = time.Duration(cfg.BudgetWindowTicks) * cfg.TickPeriod
	} else {
		// Trigger above 1 disarms drift entirely; the staleness backstop
		// then fires every FixedEveryTicks — the paper's fixed cadence.
		scfg.Drift = serve.DriftConfig{Trigger: 2}
		scfg.MaxRoundStaleness = time.Duration(cfg.FixedEveryTicks) * cfg.TickPeriod
	}
	srv, err := serve.NewServer(reg, scfg)
	if err != nil {
		return mode, err
	}
	defer srv.Close()
	attached := make(map[string]bool, cfg.Tenants)
	for _, name := range names {
		if err := srv.Attach(name); err != nil {
			return mode, err
		}
		attached[name] = true
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.Seed))
	max := uint64(1)<<uint(cfg.Width) - 1
	spread := max/16 + 1
	xs := make([]uint64, cfg.BatchSize)
	zs := newZipf(rng.Float64, cfg.Width, cfg.ZipfS)
	fill := func(peak uint64) {
		if cfg.ZipfS > 0 {
			// Zipf ranks shifted by the phase peak: the hot set stays
			// heavy-tailed but moves with the drift phases.
			for j := range xs {
				xs[j] = (peak + zs.Next()) & max
			}
			return
		}
		for j := range xs {
			d := int64(rng.Uint64()%spread) - int64(rng.Uint64()%spread)
			v := int64(peak) + d
			if v < 0 {
				v = 0
			}
			if v > int64(max) {
				v = int64(max)
			}
			xs[j] = uint64(v)
		}
	}

	lastRoundTick := make(map[string]int, cfg.Tenants)
	writesPerTick := make([]int, cfg.Ticks)
	meteredPerTick := make([]int, cfg.Ticks)
	var errSamples []float64
	churnTarget := -1
	for t := 0; t < cfg.Ticks; t++ {
		// Churn: detach one tenant, reattach it half a period later. The
		// same deterministic pattern runs in both modes, so the streams
		// stay comparable.
		if cfg.ChurnEvery > 0 && t > 0 {
			if t%cfg.ChurnEvery == 0 {
				churnTarget = (t / cfg.ChurnEvery) % cfg.Tenants
				if err := srv.Detach(names[churnTarget]); err != nil {
					return mode, err
				}
				attached[names[churnTarget]] = false
			}
			if t%cfg.ChurnEvery == cfg.ChurnEvery/2 && churnTarget >= 0 {
				if err := srv.Attach(names[churnTarget]); err != nil {
					return mode, err
				}
				attached[names[churnTarget]] = true
				lastRoundTick[names[churnTarget]] = t
				mode.ChurnCycles++
				churnTarget = -1
			}
		}
		if cfg.RestartAt > 0 && t == cfg.RestartAt {
			// The crash/restart is a maintenance-window recovery: the
			// injector is held off while the journal replays, then rearmed
			// for the rest of the soak.
			if injectors[0] != nil {
				injectors[0].SetArmed(false)
			}
			tn, _ := reg.Tenant(names[0])
			if _, err := tn.Unary().Restart(); err != nil {
				return mode, fmt.Errorf("tick %d restart: %w", t, err)
			}
			if injectors[0] != nil {
				injectors[0].SetArmed(true)
			}
			mode.Restarted = true
		}

		peak := phasePeak(cfg, t, max)
		for _, name := range names {
			if !attached[name] {
				continue
			}
			for b := 0; b < cfg.BatchesPerTick; b++ {
				fill(peak)
				if _, err := srv.Ingest(name, xs); err != nil {
					return mode, fmt.Errorf("tick %d ingest %s: %w", t, name, err)
				}
			}
		}
		if err := srv.Drain(ctx); err != nil {
			return mode, err
		}

		now = now.Add(cfg.TickPeriod)
		rep, err := srv.Tick(ctx)
		if err != nil {
			return mode, fmt.Errorf("tick %d: %w", t, err)
		}
		for name, cause := range rep.Rounds {
			mode.Rounds++
			mode.RoundsByCause[cause]++
			if gap := t - lastRoundTick[name]; gap > mode.MaxRoundGapTicks {
				mode.MaxRoundGapTicks = gap
			}
			lastRoundTick[name] = t
		}
		for _, reason := range rep.Suppressed {
			if reason == serve.SuppressBudget {
				mode.SuppressedBudget++
			} else {
				mode.SuppressedSpacing++
			}
		}
		for name, r := range rep.Reports {
			writesPerTick[t] += r.TCAMWrites
			if rep.Rounds[name] != serve.CauseSLO {
				meteredPerTick[t] += r.TCAMWrites
			}
			if r.Degraded {
				mode.DegradedRounds++
			}
		}
		snap := srv.Metrics().Snapshot()
		for _, name := range names {
			if attached[name] {
				errSamples = append(errSamples,
					snap[fmt.Sprintf(`ada_serve_error_estimate{tenant="%s"}`, name)])
			}
		}
	}
	// Close out the staleness measurement: a tenant still waiting at the
	// end has an open gap the max must include.
	for _, name := range names {
		if attached[name] {
			if gap := cfg.Ticks - 1 - lastRoundTick[name]; gap > mode.MaxRoundGapTicks {
				mode.MaxRoundGapTicks = gap
			}
		}
	}

	// Steady-state allocation probe: pure ingest, no control rounds, no
	// metric snapshots — the zero-allocation hot path claim under test.
	var live []string
	for _, name := range names {
		if attached[name] {
			live = append(live, name)
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for b := 0; b < cfg.AllocWindowBatches; b++ {
		fill(phasePeak(cfg, cfg.Ticks-1, max))
		if _, err := srv.Ingest(live[b%len(live)], xs); err != nil {
			return mode, err
		}
		if b%32 == 31 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := srv.Drain(ctx); err != nil {
		return mode, err
	}
	runtime.ReadMemStats(&m1)
	mode.AllocsPerBatch = float64(m1.Mallocs-m0.Mallocs) / float64(cfg.AllocWindowBatches)

	snap := srv.Metrics().Snapshot()
	for _, name := range names {
		mode.Lookups += uint64(snap[fmt.Sprintf(`ada_serve_lookups_total{tenant="%s"}`, name)])
		mode.TCAMWrites += int(snap[fmt.Sprintf(`ada_serve_tcam_writes_total{tenant="%s"}`, name)])
		mode.CacheHits += uint64(snap[fmt.Sprintf(`ada_lookup_cache_hits_total{tenant="%s"}`, name)])
		mode.CacheMisses += uint64(snap[fmt.Sprintf(`ada_lookup_cache_misses_total{tenant="%s"}`, name)])
		mode.CacheInvalidations += uint64(snap[fmt.Sprintf(`ada_lookup_cache_invalidations_total{tenant="%s"}`, name)])
	}
	mode.ZipfS = cfg.ZipfS
	mode.Batches = uint64(snap["ada_serve_batch_seconds_count"])
	mode.MaxWindowWrites = maxWindowSum(writesPerTick, cfg.BudgetWindowTicks)
	if warm := cfg.BudgetWindowTicks; warm < len(meteredPerTick) {
		mode.MeteredWindowWrites = maxWindowSum(meteredPerTick[warm:], cfg.BudgetWindowTicks)
	}
	mode.ErrP50 = percentile(errSamples, 0.50)
	mode.ErrP99 = percentile(errSamples, 0.99)

	srv.Close()
	mode.LeakedGoroutines = settleGoroutines(baseGoroutines)
	return mode, nil
}

// maxWindowSum is the largest sum over any window-length run of ticks.
func maxWindowSum(perTick []int, window int) int {
	if window <= 0 || window > len(perTick) {
		window = len(perTick)
	}
	sum := 0
	for i := 0; i < window; i++ {
		sum += perTick[i]
	}
	max := sum
	for i := window; i < len(perTick); i++ {
		sum += perTick[i] - perTick[i-window]
		if sum > max {
			max = sum
		}
	}
	return max
}

func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1)+0.5)]
}

// settleGoroutines waits for the post-Close goroutine count to fall back
// to the pre-soak baseline and returns the residue (0 when clean).
func settleGoroutines(base int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine() - base
		if n <= 0 {
			return 0
		}
		if time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RenderServeBench formats the paired soaks.
func RenderServeBench(res ServeBenchResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Service-mode soak: drift-paced pacer vs fixed cadence (%d tenants, %d ticks, identical streams)",
			res.Tenants, res.Ticks),
		"mode", "rounds", "drift/slo/stale", "suppressed", "tcam writes", "max window",
		"err p50", "err p99", "max gap", "degraded", "allocs/batch", "leaked")
	for _, m := range []ServeBenchMode{res.Adaptive, res.Fixed} {
		t.AddF(m.Mode, m.Rounds,
			fmt.Sprintf("%d/%d/%d", m.RoundsByCause[serve.CauseDrift],
				m.RoundsByCause[serve.CauseSLO], m.RoundsByCause[serve.CauseStaleness]),
			m.SuppressedSpacing+m.SuppressedBudget,
			m.TCAMWrites, m.MaxWindowWrites,
			fmt.Sprintf("%.4f", m.ErrP50), fmt.Sprintf("%.4f", m.ErrP99),
			m.MaxRoundGapTicks, m.DegradedRounds,
			fmt.Sprintf("%.3f", m.AllocsPerBatch), m.LeakedGoroutines)
	}
	out := t.String()
	out += fmt.Sprintf("\nfixed cadence spent %.2fx the adaptive pacer's TCAM writes for err p99 %.4f vs %.4f\n",
		res.WriteRatio, res.Fixed.ErrP99, res.Adaptive.ErrP99)
	if tot := res.Adaptive.CacheHits + res.Adaptive.CacheMisses; tot > 0 {
		out += fmt.Sprintf("lookup cache: %.1f%% hit rate, %d invalidations (adaptive soak)\n",
			100*float64(res.Adaptive.CacheHits)/float64(tot), res.Adaptive.CacheInvalidations)
	}
	return out
}

// WriteServeBenchJSON writes the result as the committed BENCH_serve.json
// baseline.
func WriteServeBenchJSON(path string, res ServeBenchResult) error {
	return WriteBenchJSON(path, res)
}
