package experiments

import (
	"testing"
)

// shortServeBenchConfig shrinks the soak for CI's short mode while keeping
// every mechanism in play: three distribution phases, one churn cycle, the
// mid-soak restart, injected faults, and the write budget.
func shortServeBenchConfig() ServeBenchConfig {
	cfg := DefaultServeBenchConfig()
	cfg.Tenants = 3
	cfg.Ticks = 60
	cfg.PhaseLen = 20
	cfg.AdaptiveStaleTicks = 30
	cfg.FixedEveryTicks = 6
	cfg.WriteBudget = 300
	cfg.BudgetWindowTicks = 10
	cfg.ChurnEvery = 23
	cfg.RestartAt = 31
	cfg.AllocWindowBatches = 1024
	return cfg
}

// TestServeBenchAcceptance is the issue's soak gate: both modes complete
// with zero leaked goroutines and ~0 allocs per steady-state batch, the
// adaptive pacer's staleness stays bounded, its TCAM writes stay under the
// fixed baseline's, and its p99 per-tenant error stays same-or-better.
func TestServeBenchAcceptance(t *testing.T) {
	cfg := DefaultServeBenchConfig()
	if testing.Short() {
		cfg = shortServeBenchConfig()
	}
	res, err := RunServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderServeBench(res))

	for _, m := range []ServeBenchMode{res.Adaptive, res.Fixed} {
		if m.LeakedGoroutines != 0 {
			t.Errorf("%s soak leaked %d goroutines", m.Mode, m.LeakedGoroutines)
		}
		// Race instrumentation allocates on its own; skip the alloc
		// gate under -race like the dataplane bench does.
		if !raceEnabled && m.AllocsPerBatch >= 1 {
			t.Errorf("%s steady-state ingest allocates %.2f/batch, want ~0", m.Mode, m.AllocsPerBatch)
		}
		if m.Rounds == 0 || m.Lookups == 0 {
			t.Errorf("%s soak did no work: %+v", m.Mode, m)
		}
		if !m.Restarted {
			t.Errorf("%s soak skipped the mid-soak restart", m.Mode)
		}
		if m.ChurnCycles == 0 {
			t.Errorf("%s soak never churned a tenant", m.Mode)
		}
	}

	// The adaptive pacer must actually be drift-paced, the baseline must
	// not be: drift rounds only exist in adaptive mode, and the fixed mode
	// runs purely on the staleness cadence.
	if res.Adaptive.RoundsByCause["drift"] == 0 {
		t.Error("adaptive soak fired no drift rounds")
	}
	if res.Fixed.RoundsByCause["drift"] != 0 {
		t.Errorf("fixed-cadence soak fired %d drift rounds", res.Fixed.RoundsByCause["drift"])
	}

	// Bounded staleness: no attached tenant may outwait its backstop by
	// more than the spacing slack (one tick for the trigger plus up to one
	// suppressed retry).
	if limit := cfg.AdaptiveStaleTicks + 2; res.Adaptive.MaxRoundGapTicks > limit {
		t.Errorf("adaptive round gap %d ticks, staleness bound is %d",
			res.Adaptive.MaxRoundGapTicks, limit)
	}
	if limit := cfg.FixedEveryTicks + 2; res.Fixed.MaxRoundGapTicks > limit {
		t.Errorf("fixed round gap %d ticks, cadence is %d",
			res.Fixed.MaxRoundGapTicks, limit)
	}

	// The headline: fewer TCAM writes for same-or-better p99 error.
	if res.Adaptive.TCAMWrites >= res.Fixed.TCAMWrites {
		t.Errorf("adaptive spent %d TCAM writes, fixed only %d",
			res.Adaptive.TCAMWrites, res.Fixed.TCAMWrites)
	}
	if res.Adaptive.ErrP99 > res.Fixed.ErrP99*1.05 {
		t.Errorf("adaptive err p99 %.4f worse than fixed %.4f",
			res.Adaptive.ErrP99, res.Fixed.ErrP99)
	}

	// Write-budget compliance on the writes the budget governs (non-SLO
	// rounds after warm-up): admission decides on cost estimates before a
	// round's true cost lands, and every tenant admitted in one tick sees
	// the same remainder, so a window may overshoot by at most one
	// worst-case round per tenant.
	slack := cfg.Tenants * (cfg.CalcEntries + 4*cfg.MonitorEntries)
	if res.Adaptive.MeteredWindowWrites > cfg.WriteBudget+slack {
		t.Errorf("adaptive metered window writes %d blew past budget %d (+%d slack)",
			res.Adaptive.MeteredWindowWrites, cfg.WriteBudget, slack)
	}
	if res.Adaptive.SuppressedBudget == 0 {
		t.Error("the write budget never suppressed a round — the mechanism was not exercised")
	}
}

// TestMaxWindowSum pins the rolling-window accounting the compliance
// measurement rests on.
func TestMaxWindowSum(t *testing.T) {
	if got := maxWindowSum([]int{1, 2, 3, 4}, 2); got != 7 {
		t.Errorf("maxWindowSum = %d, want 7", got)
	}
	if got := maxWindowSum([]int{5, 0, 0, 6}, 1); got != 6 {
		t.Errorf("window 1: %d, want 6", got)
	}
	if got := maxWindowSum([]int{1, 2, 3}, 0); got != 6 {
		t.Errorf("degenerate window: %d, want 6", got)
	}
	if got := maxWindowSum([]int{1, 2, 3}, 9); got != 6 {
		t.Errorf("oversize window: %d, want 6", got)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	if got := percentile(s, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(s, 0.99); got != 4 {
		t.Errorf("p99 = %v, want 4", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if s[0] != 4 {
		t.Error("percentile mutated its input")
	}
}
