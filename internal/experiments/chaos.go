package experiments

import (
	"fmt"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// ChaosConfig parameterises the fault-injected Fig 8 soak: the Nimble
// rate-change scenario driven through a fault-injecting switch driver. The
// question it answers is the robustness claim behind the Driver boundary —
// under transient write failures, stale snapshots, and outages, does ADA
// still reconverge after the rate change, and does every round leave the
// calculation table fully old-generation or fully new-generation?
type ChaosConfig struct {
	// Fig8 is the underlying rate-change scenario.
	Fig8 Fig8Config
	// Profile is the injected fault profile.
	Profile faults.Profile
	// AuditEvery, when >0, enables the controller's periodic read-back
	// audit of the joint calculation table (detect + anti-entropy repair).
	AuditEvery int
	// TamperEvery, when >0, silently tampers the joint calculation table
	// (payload corruption, ghost rows per Profile.Corrupt/Ghost) every Nth
	// control round — divergence only a read-back audit can see.
	TamperEvery int
}

// DefaultChaosConfig pairs the paper's Fig 8 setup with the default chaos
// profile (5% transient write failure, 1% stale snapshots, seeded).
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Fig8: DefaultFig8Config(), Profile: faults.DefaultProfile()}
}

// SilentChaosConfig layers the silent fault modes on the default soak:
// dropped acks on the wire, periodic payload corruption and ghost rows in
// the joint table, and a read-back audit cadence to catch them. DropRow is
// deliberately left at zero — a silently dropped row breaks the full-domain
// cover between audits, which the soak's lookup probe treats as a violation
// (recoverybench measures that window instead).
func SilentChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Profile.AckDrop = 0.05
	cfg.Profile.Corrupt = 0.5
	cfg.Profile.Ghost = 0.25
	cfg.AuditEvery = 4
	cfg.TamperEvery = 1
	return cfg
}

// ChaosReport is the outcome of one fault-injected Fig 8 run.
type ChaosReport struct {
	// Row is the ADA variant's throughput behaviour under faults.
	Row Fig8Row
	// Rounds and DegradedRounds count the control rounds attempted and the
	// rounds that aborted on injected failures (serving the last good
	// population).
	Rounds, DegradedRounds int
	// Retries and DriverErrors aggregate the controller's retry activity.
	Retries, DriverErrors uint64
	// WentUnhealthy reports whether the controller ever entered degraded
	// mode (consecutive failures beyond the threshold).
	WentUnhealthy bool
	// FaultStats are the injector's event counters.
	FaultStats faults.Stats
	// Audits, AuditMismatches and RepairWrites aggregate the controller's
	// read-back audit activity (zero unless ChaosConfig.AuditEvery is set).
	Audits, AuditMismatches, RepairWrites uint64
	// HealedAfterQuiesce reports that, once injection stopped, the audits
	// reconciled the physical joint table with the controller shadow within
	// one audit period (only meaningful with AuditEvery set).
	HealedAfterQuiesce bool
	// InvariantViolations lists transactional-invariant breaches observed
	// after control rounds; a clean run has none.
	InvariantViolations []string
}

// RunFig8Chaos runs the Fig 8 ADA variant with the switch driver wrapped in
// a fault injector, checking the transactional invariants after every
// control round:
//
//   - a degraded round leaves the calculation table untouched (same
//     generation, same fingerprint) — never partially populated;
//   - a committed round leaves the monitoring bins consistent with the
//     controller's trie;
//   - the joint table keeps covering the full operand domain, so the data
//     plane never takes a lookup miss mid-reconciliation.
func RunFig8Chaos(cfg ChaosConfig) (ChaosReport, error) {
	inj, err := faults.New(cfg.Profile)
	if err != nil {
		return ChaosReport{}, err
	}
	fc := cfg.Fig8

	topo := netsim.BuildStar(netsim.StarConfig{
		Hosts:       2,
		LinkRateBps: fc.LinkRateBps,
		LinkDelay:   netsim.Microsecond,
	})
	topo.SetECNThreshold(60 * 1024)
	net := topo.Net
	sim := net.Sim

	opts := []apps.RateMulOption{apps.WithWrapDriver(inj.Wrap)}
	if cfg.AuditEvery > 0 {
		opts = append(opts, apps.WithAuditEvery(cfg.AuditEvery))
	}
	ada, err := apps.NewADARateMultiplier(8, 20, 2, fc.MonitorEntries, 2, opts...)
	if err != nil {
		return ChaosReport{}, err
	}
	// Row-level faults on the joint calculation table: reloads must commit
	// atomically even when individual row writes fail.
	inj.AttachTable(ada.Engine().Table())

	nim, err := apps.NewNimble(ada, fc.InitialRateGbps, 400*1024)
	if err != nil {
		return ChaosReport{}, err
	}
	nim.ECNThresholdBytes = 30 * 1024
	downPort := topo.DownPorts[1][1]
	downPort.Filter = nim

	meter := &netsim.ThroughputMeter{Window: fc.MeterWindow}
	meter.Attach(sim, downPort)

	size := int(fc.LinkRateBps * fc.Duration.Seconds() / 8 / float64(fc.Flows))
	for i := 0; i < fc.Flows; i++ {
		f := net.AddFlow(&netsim.Flow{Src: 0, Dst: 1, Size: size, Start: 0})
		if err := net.StartFlow(f, netsim.NewWindowTransport(netsim.DCTCP)); err != nil {
			return ChaosReport{}, err
		}
	}

	rep := ChaosReport{}
	calc := ada.Engine().Table()
	probe := func(round int, when netsim.Time) {
		// Full-domain cover: the joint table must answer every (rate, ΔT)
		// operand — the monitoring trie's leaves tile the rate domain and
		// the sig-bits marginal tiles ΔT, so a miss means a partially
		// populated table escaped a commit.
		for _, rate := range []uint64{0, 1, 3, 12, 24, 128, 255} {
			for _, dt := range []uint64{0, 1, 500, 1 << 12, 1<<20 - 1} {
				if _, err := ada.Engine().Eval(rate, dt); err != nil {
					rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
						"round %d (t=%v): lookup miss for (%d, %d): %v", round, when, rate, dt, err))
					return
				}
			}
		}
	}

	var tick func()
	tick = func() {
		gen, fp := calc.Generation(), calc.Fingerprint()
		r, err := ada.Sync()
		if err != nil {
			rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
				"round %d: Sync returned error (driver faults must degrade, not error): %v", rep.Rounds, err))
			return
		}
		rep.Rounds++
		repaired := r.AuditRan && r.Audit.RepairWrites > 0
		if r.Degraded {
			rep.DegradedRounds++
			// An audit repair commits its own generation even when the rest
			// of the round degrades; anything else must leave the table
			// untouched.
			if !repaired && (calc.Generation() != gen || calc.Fingerprint() != fp) {
				rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
					"round %d: degraded round mutated the calc table (gen %d→%d)",
					rep.Rounds, gen, calc.Generation()))
			}
		} else {
			if calc.Generation() == gen && calc.Fingerprint() != fp {
				rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
					"round %d: table changed without a generation commit", rep.Rounds))
			}
			if bins, leaves := ada.Controller().Driver().NumBins(), ada.Controller().Trie().NumLeaves(); bins != leaves {
				rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
					"round %d: %d installed bins vs %d trie leaves", rep.Rounds, bins, leaves))
			}
		}
		if r.Health == controlplane.Unhealthy {
			rep.WentUnhealthy = true
		}
		// Tamper after the round commits: the silent divergence then lives
		// through the whole inter-sync window (served to the data plane) and
		// the next round's step-0 audit is what catches it — tampering
		// before the populate would let the full reload heal it unobserved.
		if cfg.TamperEvery > 0 && rep.Rounds%cfg.TamperEvery == 0 {
			if _, terr := inj.TamperStore(calc); terr != nil {
				rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
					"round %d: tamper: %v", rep.Rounds, terr))
			}
		}
		probe(rep.Rounds, sim.Now())
		sim.After(fc.SyncEvery, tick)
	}
	sim.After(fc.SyncEvery, tick)

	sim.Schedule(fc.ChangeAt, func() { nim.SetRateGbps(fc.ChangedRateGbps) })
	sim.Run(fc.Duration)

	rep.Row = Fig8Row{Variant: Fig8ADA, Series: meter.BpsSeries, LimiterDrops: nim.Drops}
	rep.Row.Phase1AvgGbps = meanWindow(meter.BpsSeries, fc.MeterWindow,
		netsim.Millisecond, fc.ChangeAt) / 1e9
	rep.Row.Phase2AvgGbps = meanWindow(meter.BpsSeries, fc.MeterWindow,
		fc.ChangeAt+2*netsim.Millisecond, fc.Duration) / 1e9

	// Quiesce: stop injecting and let the audit cadence reconcile whatever
	// silent divergence the run left behind. Healing within one audit
	// period is the anti-entropy acceptance condition.
	if cfg.AuditEvery > 0 {
		inj.SetArmed(false)
		for i := 0; i < cfg.AuditEvery+1; i++ {
			if r, err := ada.Sync(); err == nil && r.AuditRan {
				break
			} else if err != nil {
				rep.InvariantViolations = append(rep.InvariantViolations, fmt.Sprintf(
					"quiesce round %d: %v", i, err))
				break
			}
		}
		afp, err := calc.AuditFingerprint()
		if err != nil {
			return rep, err
		}
		rep.HealedAfterQuiesce = afp == calc.Fingerprint()
	}

	tot := ada.Controller().Totals()
	rep.Retries = tot.Retries
	rep.DriverErrors = tot.DriverErrors
	rep.Audits = tot.Audits
	rep.AuditMismatches = tot.AuditMismatches
	rep.RepairWrites = tot.RepairWrites
	rep.FaultStats = inj.Stats()
	return rep, nil
}

// RenderChaos formats a chaos report.
func RenderChaos(rep ChaosReport) string {
	t := stats.NewTable(
		fmt.Sprintf("Fig 8 under faults: %d/%d rounds degraded, %d retries, %d driver errors",
			rep.DegradedRounds, rep.Rounds, rep.Retries, rep.DriverErrors),
		"metric", "value")
	t.AddF("phase1 avg", fmt.Sprintf("%.2fGbps", rep.Row.Phase1AvgGbps))
	t.AddF("phase2 avg (want ≈12G)", fmt.Sprintf("%.2fGbps", rep.Row.Phase2AvgGbps))
	t.AddF("limiter drops", rep.Row.LimiterDrops)
	t.AddF("went unhealthy", rep.WentUnhealthy)
	t.AddF("write failures injected", rep.FaultStats.WriteFailures)
	t.AddF("row failures injected", rep.FaultStats.RowFailures)
	t.AddF("stale snapshots injected", rep.FaultStats.StaleSnapshots)
	t.AddF("outage ops injected", rep.FaultStats.OutageOps)
	t.AddF("acks dropped", rep.FaultStats.AckDrops)
	t.AddF("rows tampered/ghosted", fmt.Sprintf("%d/%d", rep.FaultStats.TamperedRows, rep.FaultStats.GhostRows))
	t.AddF("audits (mismatches, repair writes)", fmt.Sprintf("%d (%d, %d)", rep.Audits, rep.AuditMismatches, rep.RepairWrites))
	t.AddF("healed after quiesce", rep.HealedAfterQuiesce)
	t.AddF("invariant violations", len(rep.InvariantViolations))
	return t.String()
}
