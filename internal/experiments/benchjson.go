package experiments

import (
	"encoding/json"
	"os"
)

// WriteBenchJSON writes v as an indented JSON artefact with a trailing
// newline — the one serialisation every committed BENCH_*.json baseline in
// this repo shares, so the CI gates and the plotting scripts can parse any
// of them the same way.
func WriteBenchJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
