// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each figure has a config struct with paper-faithful
// defaults scaled to run in seconds, a typed result, and a Render method
// producing the text table cmd/adabench prints. bench_test.go at the repo
// root exposes one benchmark per experiment.
package experiments

import (
	"fmt"
	"math"

	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/trie"
)

// Paper-wide constants (§IV, §V-A).
const (
	// DomainMax is the Fig 5 operand domain upper bound.
	DomainMax = 650000
	// DomainWidth is the operand width holding DomainMax.
	DomainWidth = 20
	// ThBalance is Algorithm 2's threshold.
	ThBalance = 0.20
	// ThExpansion is the monitoring-growth threshold.
	ThExpansion = 2
)

// Fig5Config parameterises the distribution-convergence study.
type Fig5Config struct {
	// MonitorBins is the trie's bin budget (the paper effectively uses
	// domain/binsize = 325; smaller still shows convergence).
	MonitorBins int
	// Rounds is the number of control rounds (sample → rebalance → reset).
	Rounds int
	// SamplesPerRound is the operand draw per round.
	SamplesPerRound int
	// FineBins is the resolution of the reference histogram TV distance is
	// computed against.
	FineBins int
	// Seed drives sampling.
	Seed int64
}

// DefaultFig5Config returns a seconds-scale configuration.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		MonitorBins:     64,
		Rounds:          60,
		SamplesPerRound: 4000,
		FineBins:        128,
		Seed:            1,
	}
}

// Fig5Row is one distribution's convergence result.
type Fig5Row struct {
	// Name identifies the distribution (Fig 5a–e).
	Name string
	// Bins is the final leaf count.
	Bins int
	// TVInitial is the total-variation distance between the initial
	// uniform binning's implied density and the true sample histogram.
	TVInitial float64
	// TVFinal is the distance after convergence.
	TVFinal float64
	// Depth is the final trie depth.
	Depth int
}

// Fig5Distributions returns the five §V-A1 distributions over the paper's
// domain.
func Fig5Distributions() []dist.Distribution {
	g1 := dist.Gaussian{Mu: 16000, Sigma: 10000}
	g2 := dist.Gaussian{Mu: 48000, Sigma: 10000}
	mix2g, _ := dist.NewMixture(dist.Component{D: g1, Weight: 1}, dist.Component{D: g2, Weight: 1})
	expD := dist.Exponential{Rate: 10, Scale: DomainMax}
	mixEG, _ := dist.NewMixture(dist.Component{D: expD, Weight: 1}, dist.Component{D: g1, Weight: 1})
	return []dist.Distribution{
		dist.Uniform{Lo: 0, Hi: DomainMax},
		expD,
		dist.FisherF{D1: 100, D2: 20, Scale: DomainMax / 8},
		mix2g,
		mixEG,
	}
}

// trieImpliedTV computes the total-variation distance between the empirical
// fine histogram of samples and the density implied by the trie (each
// leaf's hits spread uniformly over its interval). Lower means the bins
// model the PDF more closely.
func trieImpliedTV(tr *trie.Trie, samples []uint64, fineBins int) float64 {
	if tr.TotalHits() == 0 || len(samples) == 0 {
		return 1
	}
	domain := float64(uint64(1) << DomainWidth)
	binW := domain / float64(fineBins)

	ref := make([]float64, fineBins)
	for _, s := range samples {
		i := int(float64(s) / binW)
		if i >= fineBins {
			i = fineBins - 1
		}
		ref[i]++
	}
	normalise(ref)

	implied := make([]float64, fineBins)
	for _, leaf := range tr.Leaves() {
		if leaf.Hits == 0 {
			continue
		}
		lo, hi := float64(leaf.Prefix.Lo()), float64(leaf.Prefix.Hi())+1
		first := int(lo / binW)
		last := int((hi - 1) / binW)
		if last >= fineBins {
			last = fineBins - 1
		}
		for b := first; b <= last; b++ {
			bLo := math.Max(lo, float64(b)*binW)
			bHi := math.Min(hi, float64(b+1)*binW)
			implied[b] += float64(leaf.Hits) * (bHi - bLo) / (hi - lo)
		}
	}
	normalise(implied)

	tv := 0.0
	for i := range ref {
		tv += math.Abs(ref[i] - implied[i])
	}
	return tv / 2
}

func normalise(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// RunFig5 drives Algorithms 1+2 against each §V-A1 distribution until
// steady state and reports how closely the learned bins model the PDF.
func RunFig5(cfg Fig5Config) ([]Fig5Row, error) {
	var rows []Fig5Row
	for i, d := range Fig5Distributions() {
		truncated := dist.Truncated{D: d, Lo: 0, Hi: DomainMax}
		sampler := dist.NewIntSampler(truncated, uint64(1)<<DomainWidth-1, cfg.Seed+int64(i))
		tr, err := trie.NewInitial(cfg.MonitorBins, DomainWidth)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", d.Name(), err)
		}
		reference := sampler.Draw(cfg.SamplesPerRound * 4)

		// Initial TV: uniform bins fed one round of samples.
		tr.RecordAll(reference)
		initialTV := trieImpliedTV(tr, reference, cfg.FineBins)

		for round := 0; round < cfg.Rounds; round++ {
			tr.ResetHits()
			tr.RecordAll(sampler.Draw(cfg.SamplesPerRound))
			for i := 0; i < 4 && tr.Rebalance(ThBalance); i++ {
			}
		}
		tr.ResetHits()
		tr.RecordAll(reference)
		finalTV := trieImpliedTV(tr, reference, cfg.FineBins)
		rows = append(rows, Fig5Row{
			Name:      d.Name(),
			Bins:      tr.NumLeaves(),
			TVInitial: initialTV,
			TVFinal:   finalTV,
			Depth:     tr.Depth(),
		})
	}
	return rows, nil
}

// RenderFig5 formats the rows.
func RenderFig5(rows []Fig5Row) string {
	t := stats.NewTable("Fig 5: bins converge to the operand PDF (TV distance, lower = closer)",
		"distribution", "bins", "TV initial", "TV converged", "depth")
	for _, r := range rows {
		t.AddF(r.Name, r.Bins, r.TVInitial, r.TVFinal, r.Depth)
	}
	return t.String()
}

// Fig6Config parameterises the adaptive-increment study (§V-A2).
type Fig6Config struct {
	// Mu and Sigma describe the Gaussian (paper: median 4000, variance
	// 32500 → σ ≈ 180).
	Mu, Sigma float64
	// InitialBins is the starting budget (paper: b = 1, i.e. two bins).
	InitialBins int
	// Iterations is the number of trie-changing iterations to record.
	Iterations int
	// SamplesPerRound is the draw per control round.
	SamplesPerRound int
	// Seed drives sampling.
	Seed int64
}

// DefaultFig6Config returns the paper's setup.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Mu:              4000,
		Sigma:           math.Sqrt(32500),
		InitialBins:     2,
		Iterations:      5,
		SamplesPerRound: 2000,
		Seed:            6,
	}
}

// Fig6Row is one iteration snapshot.
type Fig6Row struct {
	// Iteration counts trie changes (0 = initial).
	Iteration int
	// Bins is the leaf count.
	Bins int
	// Depth is the maximum leaf depth.
	Depth int
	// TV is the distance to the true distribution.
	TV float64
}

// RunFig6 starts from b = 1 and lets the expansion rule grow the monitoring
// trie, recording each change (paper: 2 bins → 6 bins across five
// iterations).
func RunFig6(cfg Fig6Config) ([]Fig6Row, error) {
	g := dist.Truncated{D: dist.Gaussian{Mu: cfg.Mu, Sigma: cfg.Sigma}, Lo: 0, Hi: DomainMax}
	sampler := dist.NewIntSampler(g, uint64(1)<<DomainWidth-1, cfg.Seed)
	tr, err := trie.NewInitial(cfg.InitialBins, DomainWidth)
	if err != nil {
		return nil, err
	}
	reference := sampler.Draw(cfg.SamplesPerRound * 4)
	record := func(iter int) Fig6Row {
		snapshot := tr.Clone()
		snapshot.ResetHits()
		snapshot.RecordAll(reference)
		return Fig6Row{
			Iteration: iter,
			Bins:      tr.NumLeaves(),
			Depth:     tr.Depth(),
			TV:        trieImpliedTV(snapshot, reference, 128),
		}
	}
	rows := []Fig6Row{record(0)}
	iter := 0
	for guard := 0; iter < cfg.Iterations && guard < cfg.Iterations*20; guard++ {
		tr.ResetHits()
		tr.RecordAll(sampler.Draw(cfg.SamplesPerRound))
		changed := false
		for i := 0; i < 4 && tr.Rebalance(ThBalance); i++ {
			changed = true
		}
		// Expansion rule: persistent imbalance without reshaping room grows
		// the trie (§III-B2).
		if tr.Imbalance() >= ThBalance && tr.Expand() {
			changed = true
		}
		if changed {
			iter++
			rows = append(rows, record(iter))
		}
	}
	return rows, nil
}

// RenderFig6 formats the rows.
func RenderFig6(rows []Fig6Row) string {
	t := stats.NewTable("Fig 6: adaptive increment from b=1 (bins grow to match a tight Gaussian)",
		"iteration", "bins", "depth", "TV distance")
	for _, r := range rows {
		t.AddF(r.Iteration, r.Bins, r.Depth, r.TV)
	}
	return t.String()
}
