package experiments

import (
	"fmt"
	"math"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/stats"
)

// Fig7aConfig parameterises the error-vs-significant-bits study (§V-A3).
type Fig7aConfig struct {
	// SigBits are the s values swept on the x axis.
	SigBits []int
	// Samples is the operand draw per combination.
	Samples int
	// Seed drives sampling.
	Seed int64
}

// DefaultFig7aConfig returns the paper's sweep.
func DefaultFig7aConfig() Fig7aConfig {
	return Fig7aConfig{SigBits: []int{1, 2, 3, 4, 5, 6, 7, 8}, Samples: 20000, Seed: 7}
}

// Fig7aRow is one (s, combination) average error in percent.
type Fig7aRow struct {
	// S is the significant-bit count.
	S int
	// Errors maps combination name (e.g. "G(x)*G(y)") to average relative
	// error in percent.
	Errors map[string]float64
}

// Fig7aCombos lists the operand-distribution/operation combinations. Each
// entry is (name, op, xDist, yDist).
type fig7aCombo struct {
	name string
	op   population.BinaryFunc
	x, y dist.Distribution
}

func fig7aCombos() []fig7aCombo {
	g := dist.Truncated{D: dist.Gaussian{Mu: 4000, Sigma: math.Sqrt(32500)}, Lo: 0, Hi: DomainMax}
	u := dist.Uniform{Lo: 0, Hi: DomainMax}
	add := func(x, y uint64) uint64 { return x + y }
	mul := arith.OpMul.Func()
	return []fig7aCombo{
		{"U(x)+U(y)", add, u, u},
		{"U(x)+G(y)", add, u, g},
		{"G(x)+G(y)", add, g, g},
		{"U(x)*G(y)", mul, u, g},
		{"G(x)*G(y)", mul, g, g},
	}
}

// RunFig7a measures the average relative error of the 0^p 1 (0|1)^s x^r
// population for each operand combination as s grows. Joint lookups are
// evaluated through the two marginals (result = f(rep_x, rep_y)) so the
// quadratic joint table never has to be materialised.
func RunFig7a(cfg Fig7aConfig) ([]Fig7aRow, error) {
	combos := fig7aCombos()
	var rows []Fig7aRow
	for _, s := range cfg.SigBits {
		marginal, err := population.SigBitsUnary(func(x uint64) uint64 { return x },
			DomainWidth, s, population.Midpoint)
		if err != nil {
			return nil, fmt.Errorf("fig7a s=%d: %w", s, err)
		}
		row := Fig7aRow{S: s, Errors: make(map[string]float64, len(combos))}
		for ci, c := range combos {
			xs := dist.NewIntSampler(c.x, uint64(1)<<DomainWidth-1, cfg.Seed+int64(ci))
			ys := dist.NewIntSampler(c.y, uint64(1)<<DomainWidth-1, cfg.Seed+100+int64(ci))
			total, n := 0.0, 0
			for i := 0; i < cfg.Samples; i++ {
				x, y := xs.Next(), ys.Next()
				ex, okx := population.LookupEntry(marginal, x)
				ey, oky := population.LookupEntry(marginal, y)
				if !okx || !oky {
					continue
				}
				approx := c.op(ex.Result, ey.Result)
				exact := c.op(x, y)
				total += arith.RelError(approx, exact)
				n++
			}
			if n > 0 {
				row.Errors[c.name] = total / float64(n) * 100
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7a formats the rows.
func RenderFig7a(rows []Fig7aRow) string {
	combos := fig7aCombos()
	headers := []string{"sig bits"}
	for _, c := range combos {
		headers = append(headers, c.name+" err%")
	}
	t := stats.NewTable("Fig 7a: average error vs significant bits (log-scale in the paper)", headers...)
	for _, r := range rows {
		cells := []any{r.S}
		for _, c := range combos {
			cells = append(cells, r.Errors[c.name])
		}
		t.AddF(cells...)
	}
	return t.String()
}

// Fig7bRow is one table-size data point.
type Fig7bRow struct {
	// S is the significant-bit count.
	S int
	// UnaryEntries is the single-operand table size.
	UnaryEntries int
	// BinaryEntries is the two-operand (cross-product) size.
	BinaryEntries int
}

// RunFig7b computes the TCAM table size as a function of s — exponential
// growth, the reason the naive scheme cannot simply raise s.
func RunFig7b(sigBits []int) []Fig7bRow {
	rows := make([]Fig7bRow, 0, len(sigBits))
	for _, s := range sigBits {
		u := population.SigBitsTableSize(DomainWidth, s)
		rows = append(rows, Fig7bRow{S: s, UnaryEntries: u, BinaryEntries: u * u})
	}
	return rows
}

// RenderFig7b formats the rows.
func RenderFig7b(rows []Fig7bRow) string {
	t := stats.NewTable("Fig 7b: table size vs significant bits (width 20 operands)",
		"sig bits", "unary entries", "two-operand entries")
	for _, r := range rows {
		t.AddF(r.S, r.UnaryEntries, r.BinaryEntries)
	}
	return t.String()
}

// Fig7cConfig parameterises the error-propagation study (§V-A4).
type Fig7cConfig struct {
	// Iterations is the self-application count (paper: 10).
	Iterations int
	// Budget is the calculation entry budget per engine.
	Budget int
	// Width is the operand width (32 in the paper).
	Width int
	// Seeds is the number of Gaussian starting points averaged over.
	Seeds int
	// Mu and Sigma describe the seed distribution (paper: median 10,
	// variance 100).
	Mu, Sigma float64
	// AdaptRounds is the number of ADA control rounds before measuring.
	AdaptRounds int
	// Seed drives sampling.
	Seed int64
	// Workers parallelises the trajectory replay across starting seeds
	// (0 = GOMAXPROCS). Each trajectory stays sequential — iterate i+1
	// depends on iterate i — and register counts are commutative, so the
	// monitor state after each round is worker-count independent.
	Workers int
}

// DefaultFig7cConfig returns the paper's setup.
func DefaultFig7cConfig() Fig7cConfig {
	return Fig7cConfig{
		Iterations:  10,
		Budget:      128,
		Width:       32,
		Seeds:       50,
		Mu:          10,
		Sigma:       10,
		AdaptRounds: 20,
		Seed:        77,
	}
}

// Fig7cRow is one configuration's propagation curve.
type Fig7cRow struct {
	// Function is "2x" or "x^2".
	Function string
	// Scheme is "naive" or "ada".
	Scheme string
	// PerIterPct is the mean relative error (%) after each iteration.
	PerIterPct []float64
	// MaxPct is the mean peak error (%).
	MaxPct float64
}

// RunFig7c iterates f(x)=2x and f(x)=x² through naive and ADA-populated
// engines, feeding the output back as input (§V-A4). ADA trains by
// observing the actual iterate trajectories before measurement.
func RunFig7c(cfg Fig7cConfig) ([]Fig7cRow, error) {
	g := dist.Truncated{D: dist.Gaussian{Mu: cfg.Mu, Sigma: cfg.Sigma}, Lo: 1, Hi: 1e9}
	domainMax := uint64(1)<<uint(cfg.Width) - 1
	sampler := dist.NewIntSampler(g, domainMax, cfg.Seed)
	seeds := sampler.Draw(cfg.Seeds)
	for i, s := range seeds {
		if s == 0 {
			seeds[i] = 1
		}
	}

	// The "without ADA" baseline is the paper's 0^p 1 (0|1)^s x^r
	// population; pick the largest s whose table fits the budget so the
	// comparison is budget-fair.
	sigBits := 1
	for s := 2; s <= cfg.Width; s++ {
		if population.SigBitsTableSize(cfg.Width, s) > cfg.Budget {
			break
		}
		sigBits = s
	}

	var rows []Fig7cRow
	for _, op := range []arith.UnaryOp{arith.OpDouble, arith.OpSquare} {
		naiveEntries, err := population.SigBitsUnary(op.Func(), cfg.Width, sigBits, population.Midpoint)
		if err != nil {
			return nil, err
		}
		naiveEngine, err := arith.NewUnaryEngine("fig7c.naive", cfg.Width, cfg.Budget, naiveEntries)
		if err != nil {
			return nil, err
		}
		per, maxE := arith.MeanPropagation(naiveEngine.Eval, op, seeds, domainMax, cfg.Iterations)
		rows = append(rows, Fig7cRow{
			Function: op.String(), Scheme: "naive",
			PerIterPct: toPct(per), MaxPct: maxE * 100,
		})

		// ADA: observe the exact iterate trajectories, adapt, then measure.
		sysCfg := core.DefaultConfig(cfg.Width)
		sysCfg.CalcEntries = cfg.Budget
		sysCfg.MonitorEntries = 16
		sys, err := core.NewUnary(sysCfg, op)
		if err != nil {
			return nil, err
		}
		for round := 0; round < cfg.AdaptRounds; round++ {
			netsim.Replay(cfg.Workers, len(seeds), func(lo, hi int) {
				traj := make([]uint64, 0, cfg.Iterations)
				for _, x0 := range seeds[lo:hi] {
					x := x0
					traj = traj[:0]
					for i := 0; i < cfg.Iterations; i++ {
						traj = append(traj, x)
						x = op.Exact(x)
						if x > domainMax {
							x = domainMax
						}
					}
					sys.ObserveAll(traj)
				}
			})
			if _, err := sys.Sync(); err != nil {
				return nil, err
			}
		}
		per, maxE = arith.MeanPropagation(sys.Engine().Eval, op, seeds, domainMax, cfg.Iterations)
		rows = append(rows, Fig7cRow{
			Function: op.String(), Scheme: "ada",
			PerIterPct: toPct(per), MaxPct: maxE * 100,
		})
	}
	return rows, nil
}

func toPct(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * 100
	}
	return out
}

// RenderFig7c formats the rows.
func RenderFig7c(rows []Fig7cRow) string {
	t := stats.NewTable("Fig 7c: error propagation over iterations (mean error %, log-scale in the paper)",
		"function", "scheme", "iter 1", "iter 3", "iter 5", "iter 10", "peak")
	for _, r := range rows {
		pick := func(i int) float64 {
			if i < len(r.PerIterPct) {
				return r.PerIterPct[i]
			}
			return math.NaN()
		}
		t.AddF(r.Function, r.Scheme, pick(0), pick(2), pick(4), pick(len(r.PerIterPct)-1), r.MaxPct)
	}
	return t.String()
}
