package experiments

import (
	"testing"
)

// shortRoundBenchConfig shrinks the sweep so CI's short mode stays fast
// while still covering the converged and fully-churned endpoints.
func shortRoundBenchConfig() RoundBenchConfig {
	cfg := DefaultRoundBenchConfig()
	cfg.ChurnLevels = []float64{0, 1}
	cfg.Rounds = 8
	cfg.Warmup = 3
	cfg.CalcBudget = 256
	return cfg
}

// TestRoundBenchAcceptance runs the issue's acceptance sweep: a converged
// (0% churn) incremental round must recompute nothing, and at the 1024-entry
// budget it must beat full repopulation by at least 5× wall-clock.
func TestRoundBenchAcceptance(t *testing.T) {
	cfg := DefaultRoundBenchConfig()
	if testing.Short() {
		cfg = shortRoundBenchConfig()
		// Short mode keeps the equivalence + zero-recompute checks but not
		// the wall-clock ratio, which needs the full budget to be stable.
	}
	rows, err := RunRoundBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderRoundBench(rows))
	for _, r := range rows {
		if r.Churn == 0 {
			if r.IncComputed != 0 {
				t.Errorf("converged round recomputed %.1f entries, want 0", r.IncComputed)
			}
			if r.IncWrites != 0 {
				t.Errorf("converged round wrote %.1f TCAM entries, want 0", r.IncWrites)
			}
			if !testing.Short() && r.Speedup < 5 {
				t.Errorf("converged speedup %.1fx below the 5x acceptance floor", r.Speedup)
			}
		}
		if r.IncComputed > r.FullComputed {
			t.Errorf("churn %.2f: incremental computed %.1f > full %.1f",
				r.Churn, r.IncComputed, r.FullComputed)
		}
	}
}

// BenchmarkRoundIncremental and BenchmarkRoundFull expose the converged
// control round to `go test -bench` (the make bench-round target).
func benchmarkRound(b *testing.B, incremental bool) {
	cfg := DefaultRoundBenchConfig()
	cfg.CalcBudget = 256
	sys, err := roundBenchSystem(cfg, incremental)
	if err != nil {
		b.Fatal(err)
	}
	var buf []uint64
	for i := 0; i < cfg.Warmup; i++ {
		buf = roundBenchFeed(sys, cfg.BaseCount, 0, i, buf)
		sys.ObserveAll(buf)
		if _, err := sys.Controller().Round(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf = roundBenchFeed(sys, cfg.BaseCount, 0, i, buf)
		sys.ObserveAll(buf)
		b.StartTimer()
		if _, err := sys.Controller().Round(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundIncremental(b *testing.B) { benchmarkRound(b, true) }

func BenchmarkRoundFull(b *testing.B) { benchmarkRound(b, false) }
