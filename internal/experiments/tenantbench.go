package experiments

import (
	"fmt"
	"math/rand"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tenant"
)

// TenantBenchConfig parameterises the multi-tenant sharing benchmark: three
// concurrent operations mount one physical calculation TCAM, and the same
// fixed total budget is split either statically (equal shares, the naive
// deployment) or elastically (the tenant arbiter reallocating by observed
// error pressure every Every rounds). The workloads are skewed — one tenant
// needs many entries, one needs almost none — and drift over the run, which
// is exactly the regime where a static split wastes entries.
type TenantBenchConfig struct {
	// Rounds is the control rounds per mode (error is measured after Warmup).
	Rounds int
	// Warmup is the rounds excluded from the error aggregate while the
	// monitors and the arbiter converge.
	Warmup int
	// SamplesPerRound is the operand observations fed to each tenant's
	// monitors per round.
	SamplesPerRound int
	// EvalSamples is the operands drawn per tenant per measured round to
	// estimate average relative error.
	EvalSamples int
	// TotalEntries is the shared physical table capacity (the fixed total
	// budget both modes split).
	TotalEntries int
	// Every is the elastic arbiter's rebalance cadence in rounds.
	Every int
	// Width is the operand width in bits.
	Width int
	// Seed seeds the per-tenant operand streams; both modes replay the
	// identical streams.
	Seed int64
}

// DefaultTenantBenchConfig returns the committed-baseline configuration:
// three tenants on a 192-entry table (64 each under the static split).
func DefaultTenantBenchConfig() TenantBenchConfig {
	return TenantBenchConfig{
		Rounds:          56,
		Warmup:          20,
		SamplesPerRound: 400,
		EvalSamples:     2000,
		TotalEntries:    192,
		Every:           4,
		Width:           16,
		Seed:            1,
	}
}

// TenantBenchRow is one tenant's static-vs-elastic comparison. Errors are
// average relative error |approx-exact|/max(exact,1) over the measured
// rounds; budgets are calculation entries (static is the equal share,
// elastic is the final arbiter allocation).
type TenantBenchRow struct {
	Tenant        string  `json:"tenant"`
	Op            string  `json:"op"`
	StaticBudget  int     `json:"static_budget"`
	ElasticBudget int     `json:"elastic_final_budget"`
	StaticErr     float64 `json:"static_avg_rel_error"`
	ElasticErr    float64 `json:"elastic_avg_rel_error"`
}

// TenantBenchResult is the benchmark artefact (BENCH_tenant.json): the
// per-tenant rows plus the aggregate the acceptance criterion reads — the
// mean of per-tenant average errors at the same total budget.
type TenantBenchResult struct {
	TotalEntries     int              `json:"total_entries"`
	Tenants          int              `json:"tenants"`
	Rounds           int              `json:"rounds"`
	RebalanceEvery   int              `json:"rebalance_every"`
	Rows             []TenantBenchRow `json:"rows"`
	StaticAggregate  float64          `json:"static_aggregate_error"`
	ElasticAggregate float64          `json:"elastic_aggregate_error"`
	// Improvement is StaticAggregate / ElasticAggregate (>1 means the
	// elastic split wins).
	Improvement float64 `json:"improvement"`
}

// tenantWorkload is one concurrent operation: its op and its drifting
// operand distribution. progress runs 0→1 over the benchmark.
type tenantWorkload struct {
	name   string
	uop    arith.UnaryOp
	bop    arith.BinaryOp
	sample func(rng *rand.Rand, progress float64) (x, y uint64)
}

// tri draws from a triangular distribution on [lo, lo+span): smooth
// unimodal tails, so Algorithm 3's 0.5% working-range trim drops negligible
// mass instead of cutting a hard cliff off a uniform block.
func tri(rng *rand.Rand, lo, span int) uint64 {
	return uint64(lo + rng.Intn(span/2) + rng.Intn(span/2))
}

// tenantBenchWorkloads returns the skewed trio: a square tenant over a wide
// drifting range (entry-hungry — squaring doubles relative operand error),
// a reciprocal tenant over a near-point mass (a handful of entries suffice),
// and a square-root tenant in between (error-forgiving: root halves relative
// operand error, so entries are worth less there per unit of residual).
// All three are unary: a binary tenant's measured error is not monotone in
// its joint budget (side-split granularity effects in the allocator), which
// would make the elastic-vs-static comparison measure allocator luck rather
// than arbitration quality — the tenant differential tests cover binary
// correctness instead. Operands are bounded away from zero: physical
// quantities (queue depths, rates) do not sit at 1, and near-zero operands
// make midpoint relative error diverge for every allocator alike.
func tenantBenchWorkloads() []tenantWorkload {
	return []tenantWorkload{
		{
			// Wide and drifting: the hot range slides up by an order of
			// magnitude over the run, so the tenant keeps needing entries
			// where it has none.
			name: "square", uop: arith.OpSquare,
			sample: func(rng *rand.Rand, progress float64) (uint64, uint64) {
				hi := 4000 + int(56000*progress)
				return tri(rng, 512, hi), 0
			},
		},
		{
			// Near-point mass: four distinct values, exactly coverable by a
			// handful of entries — the donor tenant.
			name: "recip", uop: arith.OpRecip,
			sample: func(rng *rand.Rand, progress float64) (uint64, uint64) {
				return uint64(16 + rng.Intn(4)), 0
			},
		},
		{
			// Moderate drifting range on the forgiving operation.
			name: "sqrt", uop: arith.OpSqrt,
			sample: func(rng *rand.Rand, progress float64) (uint64, uint64) {
				hi := 3000 + int(9000*progress)
				return tri(rng, 256, hi), 0
			},
		},
	}
}

func (w tenantWorkload) opName() string {
	if w.bop != 0 {
		return w.bop.String()
	}
	return w.uop.String()
}

// evalError measures the tenant's average relative error over n draws from
// its current distribution, against the exact operation.
func (w tenantWorkload) evalError(tn *core.Tenant, rng *rand.Rand, progress float64, n int) (float64, error) {
	sum := 0.0
	for i := 0; i < n; i++ {
		x, y := w.sample(rng, progress)
		var approx, exact uint64
		var err error
		if w.bop != 0 {
			approx, err = tn.Binary().Engine().Eval(x, y)
			exact = w.bop.Exact(x, y)
		} else {
			approx, err = tn.Unary().Engine().Eval(x)
			exact = w.uop.Exact(x)
		}
		if err != nil {
			return 0, fmt.Errorf("tenantbench: %s eval(%d,%d): %w", w.name, x, y, err)
		}
		diff := float64(approx) - float64(exact)
		if diff < 0 {
			diff = -diff
		}
		denom := float64(exact)
		if denom < 1 {
			denom = 1
		}
		sum += diff / denom
	}
	return sum / float64(n), nil
}

// runTenantBenchMode runs one full multi-tenant deployment — elastic or
// static — and returns each tenant's average measured error and final
// budget. Both modes are built from scratch with identical seeds, so they
// replay the same operand streams against the same initial equal split; the
// arbiter is the only difference.
func runTenantBenchMode(cfg TenantBenchConfig, elastic bool) (errs map[string]float64, budgets map[string]int, err error) {
	every := 0
	if elastic {
		every = cfg.Every
	}
	// MinMove 6: a binary tenant re-converges for a couple of rounds after
	// every budget change reshapes its side split, so small oscillating
	// moves cost more than their allocation gain is worth.
	reg, err := core.NewRegistry(core.SharedConfig{
		Name:         "tenantbench.calc",
		TotalEntries: cfg.TotalEntries,
		Arbiter:      tenant.ArbiterConfig{Every: every, MinMove: 6},
	})
	if err != nil {
		return nil, nil, err
	}
	workloads := tenantBenchWorkloads()
	share := cfg.TotalEntries / len(workloads)
	tenants := make([]*core.Tenant, len(workloads))
	feedRNGs := make([]*rand.Rand, len(workloads))
	evalRNGs := make([]*rand.Rand, len(workloads))
	for i, w := range workloads {
		c := core.DefaultConfig(cfg.Width)
		c.MonitorEntries = 12
		c.CalcEntries = share
		if w.bop != 0 {
			tenants[i], err = reg.MountBinary(w.name, c, w.bop)
		} else {
			tenants[i], err = reg.MountUnary(w.name, c, w.uop)
		}
		if err != nil {
			return nil, nil, err
		}
		feedRNGs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*977))
		evalRNGs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*977 + 500009))
	}
	errSums := make([]float64, len(workloads))
	measured := 0
	for round := 0; round < cfg.Rounds; round++ {
		progress := float64(round) / float64(cfg.Rounds-1)
		for i, w := range workloads {
			if w.bop != 0 {
				xs := make([]uint64, cfg.SamplesPerRound)
				ys := make([]uint64, cfg.SamplesPerRound)
				for j := range xs {
					xs[j], ys[j] = w.sample(feedRNGs[i], progress)
				}
				tenants[i].Binary().ObserveAll(xs, ys)
			} else {
				vs := make([]uint64, cfg.SamplesPerRound)
				for j := range vs {
					vs[j], _ = w.sample(feedRNGs[i], progress)
				}
				tenants[i].Unary().ObserveAll(vs)
			}
		}
		if _, err := reg.Sync(); err != nil {
			return nil, nil, err
		}
		if round < cfg.Warmup {
			continue
		}
		measured++
		for i, w := range workloads {
			e, err := w.evalError(tenants[i], evalRNGs[i], progress, cfg.EvalSamples)
			if err != nil {
				return nil, nil, err
			}
			errSums[i] += e
		}
	}
	errs = make(map[string]float64, len(workloads))
	for i, w := range workloads {
		errs[w.name] = errSums[i] / float64(measured)
	}
	return errs, reg.Budgets(), nil
}

// RunTenantBench runs the static and elastic deployments and assembles the
// comparison.
func RunTenantBench(cfg TenantBenchConfig) (*TenantBenchResult, error) {
	staticErrs, staticBudgets, err := runTenantBenchMode(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("static mode: %w", err)
	}
	elasticErrs, elasticBudgets, err := runTenantBenchMode(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("elastic mode: %w", err)
	}
	res := &TenantBenchResult{
		TotalEntries:   cfg.TotalEntries,
		Tenants:        len(tenantBenchWorkloads()),
		Rounds:         cfg.Rounds,
		RebalanceEvery: cfg.Every,
	}
	for _, w := range tenantBenchWorkloads() {
		res.Rows = append(res.Rows, TenantBenchRow{
			Tenant:        w.name,
			Op:            w.opName(),
			StaticBudget:  staticBudgets[w.name],
			ElasticBudget: elasticBudgets[w.name],
			StaticErr:     staticErrs[w.name],
			ElasticErr:    elasticErrs[w.name],
		})
		res.StaticAggregate += staticErrs[w.name]
		res.ElasticAggregate += elasticErrs[w.name]
	}
	res.StaticAggregate /= float64(len(res.Rows))
	res.ElasticAggregate /= float64(len(res.Rows))
	if res.ElasticAggregate > 0 {
		res.Improvement = res.StaticAggregate / res.ElasticAggregate
	}
	return res, nil
}

// WriteTenantBenchJSON writes the result as an indented JSON baseline (the
// committed BENCH_tenant.json artefact).
func WriteTenantBenchJSON(path string, res *TenantBenchResult) error {
	return WriteBenchJSON(path, res)
}

// RenderTenantBench formats the result.
func RenderTenantBench(res *TenantBenchResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Multi-tenant TCAM sharing: elastic vs static split (%d entries, %d tenants)",
			res.TotalEntries, res.Tenants),
		"tenant", "op", "static budget", "elastic budget", "static err", "elastic err")
	for _, r := range res.Rows {
		t.AddF(r.Tenant, r.Op, r.StaticBudget, r.ElasticBudget,
			fmt.Sprintf("%.4f", r.StaticErr), fmt.Sprintf("%.4f", r.ElasticErr))
	}
	return t.String() + fmt.Sprintf("\naggregate error: static %.4f, elastic %.4f (%.2fx better)\n",
		res.StaticAggregate, res.ElasticAggregate, res.Improvement)
}
