package experiments

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/population"
)

// BenchmarkCachedEval is the cachebench headline cell (Zipf s=1.1, 4096
// cache entries over the width-17 exact population) as a plain Go
// benchmark — the profiling entry point for cache work:
//
//	go test -run '^$' -bench CachedEval -cpuprofile cpu.out ./internal/experiments
func BenchmarkCachedEval(b *testing.B) {
	const width, calc, batch, entries = 17, 131072, 4096, 4096
	const total = 400_000 / batch * batch
	f := arith.OpSqrt.Func()
	rows, err := population.NaiveUnaryRange(f, width, calc, 0, uint64(1)<<width-1, population.Midpoint)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := arith.NewUnaryEngine("prof", width, calc+8, rows)
	if err != nil {
		b.Fatal(err)
	}
	sc := &arith.Scratch{}
	sc.EnableCache(eng.Store(), entries)
	stream := make([]uint64, total)
	rng := rand.New(rand.NewSource(47))
	newZipf(rng.Float64, width, 1.1).Fill(stream)
	dst := make([]uint64, batch)
	for off := 0; off < total; off += batch {
		eng.EvalBatchInto(dst, stream[off:off+batch], sc)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		for off := 0; off < total; off += batch {
			eng.EvalBatchInto(dst, stream[off:off+batch], sc)
			n += batch
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/sample")
}
