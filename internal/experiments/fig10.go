package experiments

import (
	"fmt"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// Fig10Config parameterises the large-scale FCT study (§V-C): a leaf-spine
// datacenter running TCP (baseline), RCP, and Nimble, each with ideal
// (exact) arithmetic and with ADA, across network loads.
type Fig10Config struct {
	// Fabric sizes the topology (paper: 10 spine × 20 leaf × 400 hosts at
	// 100 Gbps; the default is scaled for seconds-level runs).
	Fabric netsim.LeafSpineConfig
	// Loads are the offered load fractions swept (paper: 0.2–0.8).
	Loads []float64
	// Duration is the flow-arrival window.
	Duration netsim.Time
	// Drain is extra time allowed for flows to finish.
	Drain netsim.Time
	// IncastFanIn enables the paper's incast component.
	IncastFanIn int
	// ECNThresholdBytes is the DCTCP marking threshold for Nimble runs.
	ECNThresholdBytes int
	// SyncEvery is the ADA control-round period.
	SyncEvery netsim.Time
	// Seed drives the workload.
	Seed int64
}

// DefaultFig10Config returns a seconds-scale configuration preserving the
// paper's traffic mix.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Fabric: netsim.LeafSpineConfig{
			Spines: 2, Leaves: 4, HostsPerLeaf: 4,
			LinkRateBps: 10e9, LinkDelay: netsim.Microsecond,
		},
		Loads:             []float64{0.2, 0.4, 0.6, 0.8},
		Duration:          15 * netsim.Millisecond,
		Drain:             60 * netsim.Millisecond,
		IncastFanIn:       8,
		ECNThresholdBytes: 30 * 1024,
		SyncEvery:         500 * netsim.Microsecond,
		Seed:              10,
	}
}

// Fig10Scheme names one system under test.
type Fig10Scheme string

// Fig10 schemes.
const (
	// Fig10TCP is the plain TCP (Reno) baseline.
	Fig10TCP Fig10Scheme = "tcp"
	// Fig10RCPIdeal is RCP with exact router arithmetic.
	Fig10RCPIdeal Fig10Scheme = "rcp-ideal"
	// Fig10RCPADA is RCP with ADA TCAM arithmetic.
	Fig10RCPADA Fig10Scheme = "rcp-ada"
	// Fig10NimbleIdeal is DCTCP + per-port Nimble with exact arithmetic.
	Fig10NimbleIdeal Fig10Scheme = "nimble-ideal"
	// Fig10NimbleADA is DCTCP + per-port Nimble with ADA arithmetic.
	Fig10NimbleADA Fig10Scheme = "nimble-ada"
)

// Fig10Schemes returns the evaluation order.
func Fig10Schemes() []Fig10Scheme {
	return []Fig10Scheme{Fig10TCP, Fig10RCPIdeal, Fig10RCPADA, Fig10NimbleIdeal, Fig10NimbleADA}
}

// Fig10Row is one (load, scheme) result.
type Fig10Row struct {
	// Load is the offered load fraction.
	Load float64
	// Scheme identifies the system.
	Scheme Fig10Scheme
	// ShortFCT summarises short-flow completion times.
	ShortFCT netsim.FCTStats
}

// RunFig10 sweeps loads × schemes and reports short-flow FCT.
func RunFig10(cfg Fig10Config) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, load := range cfg.Loads {
		for _, scheme := range Fig10Schemes() {
			st, err := runFig10Cell(cfg, load, scheme)
			if err != nil {
				return nil, fmt.Errorf("fig10 load %.1f %s: %w", load, scheme, err)
			}
			rows = append(rows, Fig10Row{Load: load, Scheme: scheme, ShortFCT: st})
		}
	}
	return rows, nil
}

func runFig10Cell(cfg Fig10Config, load float64, scheme Fig10Scheme) (netsim.FCTStats, error) {
	topo := netsim.BuildLeafSpine(cfg.Fabric)
	net := topo.Net
	sim := net.Sim

	wl := netsim.DefaultWorkload(load, cfg.Duration, cfg.Seed)
	wl.IncastFanIn = cfg.IncastFanIn
	if cfg.IncastFanIn > 1 {
		wl.IncastEvery = cfg.Duration / 4
	}
	flows := netsim.GenerateFlows(net, cfg.Fabric.Hosts(), cfg.Fabric.LinkRateBps, wl)

	var factory netsim.TransportFactory
	switch scheme {
	case Fig10TCP:
		factory = netsim.NewWindowTransport(netsim.Reno)

	case Fig10RCPIdeal, Fig10RCPADA:
		sites := netsim.UniformRCPSites(netsim.IdealArith{})
		if scheme == Fig10RCPADA {
			// One adaptive TCAM table per RCP arithmetic statement, the P4
			// layout; widths derive from each site's operand range.
			ada, err := apps.NewADARCPSites(uint64(cfg.Fabric.LinkRateBps/1e6), 128, 12)
			if err != nil {
				return netsim.FCTStats{}, err
			}
			ada.ScheduleSync(sim, cfg.SyncEvery)
			sites = ada.Sites()
		}
		// The RTT of the longest 4-hop path dominates the control interval.
		d := 8*cfg.Fabric.LinkDelay + 20*netsim.Microsecond
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachRCPSites(sim, p, sites, d)
		}
		factory = netsim.NewRCPTransport(cfg.Fabric.LinkRateBps)

	case Fig10NimbleIdeal, Fig10NimbleADA:
		topo.SetECNThreshold(cfg.ECNThresholdBytes)
		var a netsim.Arithmetic = netsim.IdealArith{}
		if scheme == Fig10NimbleADA {
			// The ADA(R) Nimble deployment: adaptive rate marginal plus a
			// sig-bits ΔT marginal wide enough for millisecond gaps.
			ada, err := apps.NewADARateMultiplier(8, 20, 2, 12, 2)
			if err != nil {
				return netsim.FCTStats{}, err
			}
			ada.ScheduleSync(sim, cfg.SyncEvery)
			a = ada
		}
		// Per-port rate limiters just below line rate (the paper's 94 of
		// 100 Gbps, scaled).
		limit := uint64(cfg.Fabric.LinkRateBps * 0.94 / 1e9)
		for _, ports := range topo.DownPorts {
			for _, p := range ports {
				nim, err := apps.NewNimble(a, limit, 400*1024)
				if err != nil {
					return netsim.FCTStats{}, err
				}
				p.Filter = nim
			}
		}
		factory = netsim.NewWindowTransport(netsim.DCTCP)
	default:
		return netsim.FCTStats{}, fmt.Errorf("unknown scheme %q", scheme)
	}

	if err := netsim.StartAll(net, flows, factory); err != nil {
		return netsim.FCTStats{}, err
	}
	sim.Run(cfg.Duration + cfg.Drain)

	wlShortMax := wl.ShortMax
	return netsim.CollectFCT(net.Flows(), netsim.ShortFlows(wlShortMax)), nil
}

// RenderFig10 formats the rows.
func RenderFig10(rows []Fig10Row) string {
	t := stats.NewTable("Fig 10: short-flow FCT vs load (ADA should track the ideal variants)",
		"load", "scheme", "flows", "unfinished", "mean FCT", "p99 FCT")
	for _, r := range rows {
		t.AddF(fmt.Sprintf("%.0f%%", r.Load*100), string(r.Scheme),
			r.ShortFCT.N, r.ShortFCT.Unfinished,
			r.ShortFCT.Mean.String(), r.ShortFCT.P99.String())
	}
	return t.String()
}
