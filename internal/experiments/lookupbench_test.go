package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunLookupBenchSmall(t *testing.T) {
	cfg := LookupBenchConfig{
		Sizes:   []int{16, 64},
		Probes:  2000,
		Workers: []int{1, 2},
		Width:   10,
		Seed:    3,
	}
	rows, err := RunLookupBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sizes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.Sizes))
	}
	for _, r := range rows {
		if r.ScanNs <= 0 || r.IndexedNs <= 0 || r.BatchNs <= 0 {
			t.Errorf("entries=%d: non-positive timing %+v", r.Entries, r)
		}
		if len(r.Parallel) != len(cfg.Workers) {
			t.Errorf("entries=%d: parallel points = %d, want %d", r.Entries, len(r.Parallel), len(cfg.Workers))
		}
	}
	if RenderLookupBench(rows) == "" {
		t.Error("empty render")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteLookupBenchJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []LookupBenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != len(rows) {
		t.Errorf("round-trip rows = %d, want %d", len(back), len(rows))
	}
}

func TestLookupBenchTableRejectsBadSize(t *testing.T) {
	if _, err := lookupBenchTable(10, 100); err == nil {
		t.Error("non-power-of-two size: want error")
	}
	if _, err := lookupBenchTable(4, 32); err == nil {
		t.Error("size over domain: want error")
	}
}
