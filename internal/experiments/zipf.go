package experiments

import "math"

// zipfSource is the bounded Zipf operand generator the benchmarks share.
// The standard library's rand.Zipf requires s > 1, but the cache sweep needs
// the whole 0.6–1.4 skew range, so ranks are drawn by inverting the
// continuous bounded power-law CDF instead: for u uniform in (0, 1],
//
//	k = ((N^(1-s) − 1)·u + 1)^(1/(1-s))   (s ≠ 1)
//	k = N^u                               (s = 1)
//
// gives k in [1, N] with P(rank) ∝ rank^-s. s <= 0 degenerates to a uniform
// draw, which keeps a zero-valued skew flag exactly equivalent to the
// pre-existing uniform streams.
//
// Rank 0 is the hottest value. Ranks map to operand keys by multiplication
// with an odd constant modulo 2^width — a bijection, so the hot set is
// scattered across the whole domain instead of clustered at small operands
// (small operands would land in the same TCAM bins and flatter the cache
// less than a real skewed workload would).
type zipfSource struct {
	s    float64
	n    float64 // domain size
	mask uint64
	uni  bool    // s <= 0: uniform
	one  bool    // |s-1| tiny: use the s=1 closed form
	pow  float64 // N^(1-s) − 1, precomputed (s ≠ 1)
	inv  float64 // 1/(1-s), precomputed (s ≠ 1)
	logN float64 // ln N, precomputed (s = 1)
	rand func() float64
}

// zipfScatter is the odd rank→key multiplier (any odd constant is a
// bijection mod 2^width; this one is the 64-bit golden-ratio mix constant).
const zipfScatter = 0x9E3779B97F4A7C15

func newZipf(randFloat func() float64, width int, s float64) *zipfSource {
	n := math.Pow(2, float64(width))
	z := &zipfSource{
		s:    s,
		n:    n,
		mask: uint64(1)<<uint(width) - 1,
		rand: randFloat,
	}
	switch {
	case s <= 0:
		z.uni = true
	case math.Abs(s-1) < 1e-9:
		z.one = true
		z.logN = math.Log(n)
	default:
		z.pow = math.Pow(n, 1-s) - 1
		z.inv = 1 / (1 - s)
	}
	return z
}

// Next draws one operand.
func (z *zipfSource) Next() uint64 {
	u := 1 - z.rand() // uniform in (0, 1]
	var k float64
	switch {
	case z.uni:
		k = u * z.n
	case z.one:
		k = math.Exp(u * z.logN)
	default:
		k = math.Pow(z.pow*u+1, z.inv)
	}
	rank := uint64(k)
	if rank >= 1 {
		rank-- // k ∈ [1, N] → rank ∈ [0, N-1]
	}
	if z.uni {
		return rank & z.mask
	}
	return (rank * zipfScatter) & z.mask
}

// Fill fills dst with draws.
func (z *zipfSource) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = z.Next()
	}
}
