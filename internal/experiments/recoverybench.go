package experiments

import (
	"fmt"
	"math/rand"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tcam"
)

// RecoveryBenchConfig parameterises the silent-corruption recovery
// experiment: rows of the calculation TCAM are silently bit-flipped (the
// controller shadow stays blind), and the periodic read-back audit must
// detect and repair them. The experiment measures the three costs of the
// failure model: how long corruption is served (detection latency in
// control rounds), what repair costs versus naive full repopulation (TCAM
// writes), and how much arithmetic error the corruption window adds.
type RecoveryBenchConfig struct {
	// CorruptRates are the fractions of installed rows corrupted per trial.
	CorruptRates []float64
	// Width is the operand width in bits.
	Width int
	// MonitorEntries is the monitoring bin budget (pinned: no expansion).
	MonitorEntries int
	// CalcBudget is the calculation TCAM entry budget.
	CalcBudget int
	// AuditEvery is the read-back audit cadence in control rounds.
	AuditEvery int
	// WarmupRounds drives the system to a steady population first.
	WarmupRounds int
	// FeedPerRound is the operand observations per control round.
	FeedPerRound int
	// Samples sizes the arithmetic-error measurement set.
	Samples int
	// Seed drives the corruption row picks and the operand distribution.
	Seed int64
}

// DefaultRecoveryBenchConfig sweeps 1% and 5% corrupted rows — the
// acceptance band where delta repair must beat full repopulation.
func DefaultRecoveryBenchConfig() RecoveryBenchConfig {
	return RecoveryBenchConfig{
		CorruptRates:   []float64{0.01, 0.05},
		Width:          16,
		MonitorEntries: 8,
		CalcBudget:     128,
		AuditEvery:     4,
		// 10 warmup rounds leave the audit phase mid-cadence (audits land on
		// rounds 5, 9, 13, ...), so the corruption window's detection
		// latency is real, not an artefact of corrupting right before an
		// audit-due round.
		WarmupRounds: 10,
		FeedPerRound: 600,
		Samples:      4000,
		Seed:         21,
	}
}

// RecoveryBenchRow is one corruption rate's measurements.
type RecoveryBenchRow struct {
	CorruptRate   float64 `json:"corrupt_rate"`
	InstalledRows int     `json:"installed_rows"`
	CorruptedRows int     `json:"corrupted_rows"`
	// DetectionSyncs is the control rounds from corruption to the audit
	// that flagged it (bounded by AuditEvery).
	DetectionSyncs int `json:"detection_syncs"`
	AuditEvery     int `json:"audit_every"`
	// RepairWrites is the anti-entropy delta the audit committed;
	// FullRepopulateWrites is the naive baseline (rewrite every installed
	// row). Delta repair must be strictly cheaper at these rates.
	RepairWrites         int `json:"repair_writes"`
	FullRepopulateWrites int `json:"full_repopulate_writes"`
	// AuditDelayNs is the modelled delay of the detecting round's audit
	// (row read-back plus repair writes under the Fig 9 cost model).
	AuditDelayNs float64 `json:"audit_delay_ns"`
	// Arithmetic mean relative error (%): before corruption, during the
	// corruption window, and after the audit repaired it.
	CleanErrPct   float64 `json:"clean_err_pct"`
	CorruptErrPct float64 `json:"corrupt_err_pct"`
	HealedErrPct  float64 `json:"healed_err_pct"`
	// RestartCalcWrites is the write cost of journal crash recovery under
	// the same corruption: Recover's populate reconciles against the
	// physical table, so it too issues only the divergent rows.
	RestartCalcWrites int `json:"restart_calc_writes"`
}

// recoveryBenchSystem builds the audited, journaled system under test.
func recoveryBenchSystem(cfg RecoveryBenchConfig) (*core.UnarySystem, error) {
	c := core.DefaultConfig(cfg.Width)
	c.MonitorEntries = cfg.MonitorEntries
	c.MaxMonitorEntries = cfg.MonitorEntries
	c.CalcEntries = cfg.CalcBudget
	c.AuditEvery = cfg.AuditEvery
	c.EnableJournal = true
	return core.NewUnary(c, arith.OpSquare)
}

// corruptRows flips one payload bit in n distinct installed rows, picked
// with rng, through the silent tamper seam. Returns how many it corrupted.
func corruptRows(tb *tcam.Table, rng *rand.Rand, n int) (int, error) {
	digests, err := tb.ReadRows()
	if err != nil {
		return 0, err
	}
	if n > len(digests) {
		n = len(digests)
	}
	rng.Shuffle(len(digests), func(i, j int) { digests[i], digests[j] = digests[j], digests[i] })
	for i := 0; i < n; i++ {
		d := digests[i]
		v, ok := d.Data.(uint64)
		if !ok {
			return i, fmt.Errorf("recoverybench: row %q payload is %T, want uint64", d.Key, d.Data)
		}
		// Flip a high-order payload bit so the corruption is material to
		// any lookup that hits the row, not a rounding-level nudge.
		flipped := v ^ (1 << uint(40+rng.Intn(24)))
		if err := tb.TamperData(d.Fields, d.Priority, flipped); err != nil {
			return i, err
		}
	}
	return n, nil
}

// RunRecoveryBench measures detection latency, repair cost, and the
// arithmetic-error window for each corruption rate.
func RunRecoveryBench(cfg RecoveryBenchConfig) ([]RecoveryBenchRow, error) {
	rows := make([]RecoveryBenchRow, 0, len(cfg.CorruptRates))
	for ri, rate := range cfg.CorruptRates {
		sys, err := recoveryBenchSystem(cfg)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ri)))
		sampler := dist.NewIntSampler(
			dist.Truncated{D: dist.Gaussian{Mu: 24000, Sigma: 1100}, Lo: 0, Hi: float64(int64(1) << uint(cfg.Width))},
			1<<uint(cfg.Width)-1, cfg.Seed+int64(ri))
		feed := sampler.Draw(cfg.FeedPerRound)
		test := sampler.Draw(cfg.Samples)

		for i := 0; i < cfg.WarmupRounds; i++ {
			sys.ObserveAll(feed)
			if _, err := sys.Sync(); err != nil {
				return nil, fmt.Errorf("recoverybench: warmup round %d: %w", i, err)
			}
		}
		tb := sys.Engine().Table()
		installed := tb.Len()
		row := RecoveryBenchRow{
			CorruptRate:          rate,
			InstalledRows:        installed,
			AuditEvery:           cfg.AuditEvery,
			FullRepopulateWrites: installed,
			CleanErrPct:          100 * arith.MeasureUnary(sys.Engine().Eval, sys.Op(), test).Avg,
		}

		n := int(rate*float64(installed) + 0.5)
		if n < 1 {
			n = 1
		}
		row.CorruptedRows, err = corruptRows(tb, rng, n)
		if err != nil {
			return nil, err
		}
		row.CorruptErrPct = 100 * arith.MeasureUnary(sys.Engine().Eval, sys.Op(), test).Avg

		// Feed the steady distribution until the audit cadence flags the
		// corruption; the constant feed keeps the population converged, so
		// no incremental populate rewrites (and silently heals) the rows
		// before the audit reads them back.
		detected := false
		for i := 1; i <= 2*cfg.AuditEvery+2; i++ {
			sys.ObserveAll(feed)
			rep, err := sys.Sync()
			if err != nil {
				return nil, fmt.Errorf("recoverybench: detection round %d: %w", i, err)
			}
			if rep.AuditRan && rep.Audit.Mismatched() > 0 {
				row.DetectionSyncs = i
				row.RepairWrites = rep.Audit.RepairWrites
				row.AuditDelayNs = float64(rep.Delay.Nanoseconds())
				detected = true
				break
			}
		}
		if !detected {
			return nil, fmt.Errorf("recoverybench: rate %.2f: audit never flagged %d corrupted rows",
				rate, row.CorruptedRows)
		}
		row.HealedErrPct = 100 * arith.MeasureUnary(sys.Engine().Eval, sys.Op(), test).Avg

		// Crash recovery under the same corruption: journal restart must
		// reconcile with a delta, not a flash rewrite.
		if _, err := corruptRows(tb, rng, n); err != nil {
			return nil, err
		}
		rrep, err := sys.Restart()
		if err != nil {
			return nil, fmt.Errorf("recoverybench: restart at rate %.2f: %w", rate, err)
		}
		row.RestartCalcWrites = rrep.CalcWrites
		afp, err := tb.AuditFingerprint()
		if err != nil {
			return nil, err
		}
		if afp != tb.Fingerprint() {
			return nil, fmt.Errorf("recoverybench: rate %.2f: hardware still diverges after restart", rate)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteRecoveryBenchJSON writes the rows as the committed
// BENCH_recovery.json artefact.
func WriteRecoveryBenchJSON(path string, rows []RecoveryBenchRow) error {
	return WriteBenchJSON(path, rows)
}

// RenderRecoveryBench formats the rows.
func RenderRecoveryBench(rows []RecoveryBenchRow) string {
	t := stats.NewTable("Silent corruption recovery: read-back audit + anti-entropy repair",
		"corrupt", "rows", "detect (rounds)", "repair writes", "full repop", "restart writes",
		"err clean", "err corrupt", "err healed")
	for _, r := range rows {
		t.AddF(fmt.Sprintf("%.0f%%", 100*r.CorruptRate),
			fmt.Sprintf("%d/%d", r.CorruptedRows, r.InstalledRows),
			fmt.Sprintf("%d (≤%d)", r.DetectionSyncs, r.AuditEvery),
			r.RepairWrites, r.FullRepopulateWrites, r.RestartCalcWrites,
			fmt.Sprintf("%.3f%%", r.CleanErrPct),
			fmt.Sprintf("%.3f%%", r.CorruptErrPct),
			fmt.Sprintf("%.3f%%", r.HealedErrPct))
	}
	return t.String()
}
