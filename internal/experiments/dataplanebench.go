package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tcam"
)

// DataplaneBenchConfig parameterises the data-plane throughput benchmark:
// the zero-allocation typed hot path (ObserveEvalAll with per-worker scratch
// buffers) against a faithful replica of the pre-change path (per-batch
// allocations, interface assertions per sample, a shared register slice
// updated through a CAS loop), swept over replay worker counts for the
// unary and binary pipelines.
type DataplaneBenchConfig struct {
	// Samples is the operand stream length per measurement.
	Samples int
	// Batch is the replay sub-batch size (the per-worker unit the scratch
	// buffers amortise over).
	Batch int
	// Workers are the replay goroutine counts swept.
	Workers []int
	// Width is the operand width in bits.
	Width int
	// Seed drives stream generation.
	Seed int64
	// WarmRounds is the number of observe+Sync rounds that shape the
	// monitoring and calculation tables before measurement.
	WarmRounds int
	// ZipfS skews the operand streams with a bounded Zipf draw of this
	// exponent (hot ranks scattered across the domain). 0 keeps the
	// historical uniform streams.
	ZipfS float64
}

// DefaultDataplaneBenchConfig measures 400k samples in 1k batches across
// 1, 2, and 4 workers — long enough for stable throughput numbers, short
// enough for the CI acceptance run.
func DefaultDataplaneBenchConfig() DataplaneBenchConfig {
	return DataplaneBenchConfig{
		Samples:    400_000,
		Batch:      1024,
		Workers:    []int{1, 2, 4},
		Width:      16,
		Seed:       43,
		WarmRounds: 2,
	}
}

// DataplanePoint is one worker count's throughput and allocation cost for
// both paths.
type DataplanePoint struct {
	// Workers is the replay goroutine count.
	Workers int `json:"workers"`
	// BaselineSamplesSec is the pre-change replica's throughput.
	BaselineSamplesSec float64 `json:"baseline_samples_per_sec"`
	// TypedSamplesSec is the typed zero-allocation path's throughput.
	TypedSamplesSec float64 `json:"typed_samples_per_sec"`
	// BaselineAllocsBatch and TypedAllocsBatch are heap allocations per
	// observed batch (runtime mallocs delta over batch count).
	BaselineAllocsBatch float64 `json:"baseline_allocs_per_batch"`
	TypedAllocsBatch    float64 `json:"typed_allocs_per_batch"`
	// Speedup is TypedSamplesSec / BaselineSamplesSec at this worker count.
	Speedup float64 `json:"speedup"`
}

// DataplaneBenchRow is one pipeline's (unary or binary) sweep.
type DataplaneBenchRow struct {
	// Path is "unary" or "binary".
	Path string `json:"path"`
	// Samples and Batch echo the measurement shape; ZipfS is the operand
	// skew the streams were drawn with (0 = uniform).
	Samples int     `json:"samples"`
	Batch   int     `json:"batch"`
	ZipfS   float64 `json:"zipf_s"`
	// Points is the per-worker-count sweep.
	Points []DataplanePoint `json:"points"`
	// BestSpeedup is the largest same-worker-count typed/baseline ratio.
	BestSpeedup float64 `json:"best_speedup"`
	// ScalingImprovement is the typed path's best throughput at any worker
	// count over the pre-change baseline at one worker — the end-to-end
	// single-thread→multi-worker gain the refactor delivers.
	ScalingImprovement float64 `json:"scaling_improvement"`
}

// baselineUnary replicates the pre-change unary observe+eval pipeline
// against the live tables: masked keys into a fresh buffer per batch,
// per-sample trie-walk lookups returning entry pointers (the range-compiled
// fast path did not exist), a `Data.(int)` / `Data.(uint64)` assertion per
// sample, registers bumped through a per-increment CAS loop on one shared
// slice, and a fresh result slice per batch.
type baselineUnary struct {
	monTable *tcam.Table
	store    *tcam.Table
	regs     []uint64
	bins     int
	mask     uint64
	regMax   uint64
}

func (b *baselineUnary) observe(xs []uint64) {
	keys := make([]uint64, len(xs))
	for i, v := range xs {
		keys[i] = v & b.mask
	}
	for _, e := range b.monTable.LookupSingleBatchTrie(keys, nil) {
		if e == nil {
			continue
		}
		idx, ok := e.Data.(int)
		if !ok || idx < 0 || idx >= b.bins {
			continue
		}
		for {
			cur := atomic.LoadUint64(&b.regs[idx])
			if cur >= b.regMax {
				break
			}
			if atomic.CompareAndSwapUint64(&b.regs[idx], cur, cur+1) {
				break
			}
		}
	}
}

func (b *baselineUnary) observeEval(xs []uint64) ([]uint64, int) {
	b.observe(xs)
	results := make([]uint64, len(xs))
	misses := 0
	for i, en := range b.store.LookupSingleBatchTrie(xs, nil) {
		if en == nil {
			misses++
			continue
		}
		r, ok := en.Data.(uint64)
		if !ok {
			misses++
			continue
		}
		results[i] = r
	}
	return results, misses
}

// baselineBinary is the two-operand replica: per-pair key sub-slices into
// LookupBatch for the calculation table, one baselineUnary-style monitor
// replica per operand.
type baselineBinary struct {
	monX, monY baselineUnary
	store      tcam.Store
}

func (b *baselineBinary) observeEval(xs, ys []uint64) ([]uint64, int) {
	b.monX.observe(xs)
	b.monY.observe(ys)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	keys := make([][]uint64, n)
	buf := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		k := buf[2*i : 2*i+2 : 2*i+2]
		k[0], k[1] = xs[i], ys[i]
		keys[i] = k
	}
	results := make([]uint64, n)
	misses := 0
	for i, en := range b.store.LookupBatch(keys) {
		if en == nil {
			misses++
			continue
		}
		r, ok := en.Data.(uint64)
		if !ok {
			misses++
			continue
		}
		results[i] = r
	}
	return results, misses
}

func newBaselineUnary(mon *monitor.Monitor, store *tcam.Table) baselineUnary {
	mask := ^uint64(0)
	if w := mon.Width(); w < 64 {
		mask = uint64(1)<<uint(w) - 1
	}
	return baselineUnary{
		monTable: mon.Table(),
		store:    store,
		regs:     make([]uint64, mon.NumBins()),
		bins:     mon.NumBins(),
		mask:     mask,
		regMax:   uint64(1)<<monitor.DefaultRegisterBits - 1,
	}
}

// measure times fn over the stream and reports samples/sec plus heap
// allocations per batch.
func measure(samples, batches int, fn func()) (samplesSec, allocsBatch float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	samplesSec = float64(samples) / elapsed.Seconds()
	allocsBatch = float64(after.Mallocs-before.Mallocs) / float64(batches)
	return samplesSec, allocsBatch
}

func batchCount(n, batch int) int {
	if batch <= 0 {
		return 1
	}
	return (n + batch - 1) / batch
}

// verifyUnary proves the typed path bit-identical to the baseline replica
// on the given stream: same results, same miss count, same per-bin register
// state. The monitor must be freshly reset; it is reset again on return.
func verifyUnary(sys *core.UnarySystem, base *baselineUnary, xs []uint64, batch int) error {
	mon := sys.Controller().Monitor()
	mon.Reset()
	for i := range base.regs {
		base.regs[i] = 0
	}
	var sc arith.Scratch
	var dst []uint64
	for lo := 0; lo < len(xs); lo += batch {
		hi := lo + batch
		if hi > len(xs) {
			hi = len(xs)
		}
		baseRes, baseMiss := base.observeEval(xs[lo:hi])
		var typedMiss int
		dst, typedMiss = sys.ObserveEvalAll(dst, xs[lo:hi], &sc)
		if typedMiss != baseMiss {
			return fmt.Errorf("dataplanebench: unary miss count diverged: typed %d, baseline %d", typedMiss, baseMiss)
		}
		for i := range baseRes {
			if dst[i] != baseRes[i] {
				return fmt.Errorf("dataplanebench: unary result diverged at sample %d: typed %d, baseline %d", lo+i, dst[i], baseRes[i])
			}
		}
	}
	snap := mon.SnapshotAndReset()
	for i, v := range snap {
		if v != base.regs[i] {
			return fmt.Errorf("dataplanebench: unary register %d diverged: typed %d, baseline %d", i, v, base.regs[i])
		}
	}
	return nil
}

// verifyBinary is verifyUnary for the two-operand pipeline.
func verifyBinary(sys *core.BinarySystem, base *baselineBinary, xs, ys []uint64, batch int) error {
	monX, monY := sys.ControllerX().Monitor(), sys.ControllerY().Monitor()
	monX.Reset()
	monY.Reset()
	for i := range base.monX.regs {
		base.monX.regs[i] = 0
	}
	for i := range base.monY.regs {
		base.monY.regs[i] = 0
	}
	var sc arith.Scratch
	var dst []uint64
	for lo := 0; lo < len(xs); lo += batch {
		hi := lo + batch
		if hi > len(xs) {
			hi = len(xs)
		}
		baseRes, baseMiss := base.observeEval(xs[lo:hi], ys[lo:hi])
		var typedMiss int
		dst, typedMiss = sys.ObserveEvalAll(dst, xs[lo:hi], ys[lo:hi], &sc)
		if typedMiss != baseMiss {
			return fmt.Errorf("dataplanebench: binary miss count diverged: typed %d, baseline %d", typedMiss, baseMiss)
		}
		for i := range baseRes {
			if dst[i] != baseRes[i] {
				return fmt.Errorf("dataplanebench: binary result diverged at sample %d: typed %d, baseline %d", lo+i, dst[i], baseRes[i])
			}
		}
	}
	for v, pair := range map[string][2][]uint64{
		"x": {monX.SnapshotAndReset(), base.monX.regs},
		"y": {monY.SnapshotAndReset(), base.monY.regs},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				return fmt.Errorf("dataplanebench: binary %s register %d diverged: typed %d, baseline %d", v, i, pair[0][i], pair[1][i])
			}
		}
	}
	return nil
}

func finishRow(row *DataplaneBenchRow) {
	for _, p := range row.Points {
		if p.Speedup > row.BestSpeedup {
			row.BestSpeedup = p.Speedup
		}
	}
	var base1, bestTyped float64
	for _, p := range row.Points {
		if p.Workers == 1 {
			base1 = p.BaselineSamplesSec
		}
		if p.TypedSamplesSec > bestTyped {
			bestTyped = p.TypedSamplesSec
		}
	}
	if base1 > 0 {
		row.ScalingImprovement = bestTyped / base1
	}
}

// RunDataplaneBench measures both pipelines. Every run doubles as a
// differential test: before timing, the typed path is replayed against the
// baseline replica sample-for-sample and any divergence in results, misses,
// or register state fails the run.
func RunDataplaneBench(cfg DataplaneBenchConfig) ([]DataplaneBenchRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zs := newZipf(rng.Float64, cfg.Width, cfg.ZipfS)
	xs := make([]uint64, cfg.Samples)
	ys := make([]uint64, cfg.Samples)
	zs.Fill(xs)
	zs.Fill(ys)
	batches := batchCount(cfg.Samples, cfg.Batch)

	// Unary pipeline: shape the tables on the measurement stream, then
	// verify and sweep.
	sysCfg := core.DefaultConfig(cfg.Width)
	uni, err := core.NewUnary(sysCfg, arith.OpSquare)
	if err != nil {
		return nil, err
	}
	for r := 0; r < cfg.WarmRounds; r++ {
		uni.ObserveAll(xs)
		if _, err := uni.Sync(); err != nil {
			return nil, err
		}
	}
	uniBase := newBaselineUnary(uni.Controller().Monitor(), uni.Engine().Table())
	if err := verifyUnary(uni, &uniBase, xs, cfg.Batch); err != nil {
		return nil, err
	}
	uniRow := DataplaneBenchRow{Path: "unary", Samples: cfg.Samples, Batch: cfg.Batch, ZipfS: cfg.ZipfS}
	for _, w := range cfg.Workers {
		baseSec, baseAllocs := measure(cfg.Samples, batches, func() {
			netsim.ReplayBatched(w, cfg.Batch, xs, func(_ int, batch []uint64) {
				uniBase.observeEval(batch)
			})
		})
		scs := make([]arith.Scratch, w)
		dsts := make([][]uint64, w)
		typedSec, typedAllocs := measure(cfg.Samples, batches, func() {
			netsim.ReplayBatched(w, cfg.Batch, xs, func(worker int, batch []uint64) {
				dsts[worker], _ = uni.ObserveEvalAll(dsts[worker], batch, &scs[worker])
			})
		})
		uniRow.Points = append(uniRow.Points, DataplanePoint{
			Workers:             w,
			BaselineSamplesSec:  baseSec,
			TypedSamplesSec:     typedSec,
			BaselineAllocsBatch: baseAllocs,
			TypedAllocsBatch:    typedAllocs,
			Speedup:             typedSec / baseSec,
		})
	}
	finishRow(&uniRow)

	// Binary pipeline.
	bin, err := core.NewBinary(core.DefaultConfig(cfg.Width), arith.OpMul)
	if err != nil {
		return nil, err
	}
	for r := 0; r < cfg.WarmRounds; r++ {
		bin.ObserveAll(xs, ys)
		if _, err := bin.Sync(); err != nil {
			return nil, err
		}
	}
	binBase := baselineBinary{
		monX:  newBaselineUnary(bin.ControllerX().Monitor(), nil),
		monY:  newBaselineUnary(bin.ControllerY().Monitor(), nil),
		store: bin.Engine().Store(),
	}
	if err := verifyBinary(bin, &binBase, xs, ys, cfg.Batch); err != nil {
		return nil, err
	}
	binRow := DataplaneBenchRow{Path: "binary", Samples: cfg.Samples, Batch: cfg.Batch, ZipfS: cfg.ZipfS}
	for _, w := range cfg.Workers {
		baseSec, baseAllocs := measure(cfg.Samples, batches, func() {
			netsim.Replay(w, cfg.Samples, func(lo, hi int) {
				for l := lo; l < hi; l += cfg.Batch {
					h := l + cfg.Batch
					if h > hi {
						h = hi
					}
					binBase.observeEval(xs[l:h], ys[l:h])
				}
			})
		})
		typedSec, typedAllocs := measure(cfg.Samples, batches, func() {
			netsim.Replay(w, cfg.Samples, func(lo, hi int) {
				var sc arith.Scratch // one scratch per shard, reused across its batches
				var dst []uint64
				for l := lo; l < hi; l += cfg.Batch {
					h := l + cfg.Batch
					if h > hi {
						h = hi
					}
					dst, _ = bin.ObserveEvalAll(dst, xs[l:h], ys[l:h], &sc)
				}
			})
		})
		binRow.Points = append(binRow.Points, DataplanePoint{
			Workers:             w,
			BaselineSamplesSec:  baseSec,
			TypedSamplesSec:     typedSec,
			BaselineAllocsBatch: baseAllocs,
			TypedAllocsBatch:    typedAllocs,
			Speedup:             typedSec / baseSec,
		})
	}
	finishRow(&binRow)
	return []DataplaneBenchRow{uniRow, binRow}, nil
}

// WriteDataplaneBenchJSON writes the rows as the committed
// BENCH_dataplane.json artefact.
func WriteDataplaneBenchJSON(path string, rows []DataplaneBenchRow) error {
	return WriteBenchJSON(path, rows)
}

// RenderDataplaneBench formats the rows.
func RenderDataplaneBench(rows []DataplaneBenchRow) string {
	t := stats.NewTable("Data-plane hot path: typed zero-allocation vs pre-change baseline (samples/sec)",
		"path", "workers", "baseline", "typed", "speedup", "allocs/batch (base→typed)")
	for _, r := range rows {
		for _, p := range r.Points {
			t.AddF(r.Path, p.Workers,
				fmt.Sprintf("%.2fM", p.BaselineSamplesSec/1e6),
				fmt.Sprintf("%.2fM", p.TypedSamplesSec/1e6),
				fmt.Sprintf("%.1fx", p.Speedup),
				fmt.Sprintf("%.1f→%.1f", p.BaselineAllocsBatch, p.TypedAllocsBatch))
		}
	}
	return t.String()
}
