package experiments

import "testing"

// TestTenantBenchElasticBeatsStatic is the acceptance check: at the same
// fixed total budget, the elastic arbiter must deliver lower aggregate error
// than the static equal split for the skewed drifting trio. Short mode runs
// a reduced configuration (CI); the full default is the committed baseline.
func TestTenantBenchElasticBeatsStatic(t *testing.T) {
	cfg := DefaultTenantBenchConfig()
	if testing.Short() {
		cfg.Rounds = 28
		cfg.Warmup = 14
		cfg.SamplesPerRound = 250
		cfg.EvalSamples = 600
	}
	res, err := RunTenantBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderTenantBench(res))
	if res.ElasticAggregate >= res.StaticAggregate {
		t.Errorf("elastic aggregate error %.4f not below static %.4f",
			res.ElasticAggregate, res.StaticAggregate)
	}
	// The arbiter must actually have moved budget: the near-point-mass
	// recip tenant donates most of its share, and the two entry-hungry
	// tenants absorb it.
	byName := make(map[string]TenantBenchRow, len(res.Rows))
	for _, r := range res.Rows {
		byName[r.Tenant] = r
	}
	if r := byName["recip"]; r.ElasticBudget >= r.StaticBudget {
		t.Errorf("recip elastic budget %d not below static share %d", r.ElasticBudget, r.StaticBudget)
	}
	hungry := byName["square"].ElasticBudget + byName["sqrt"].ElasticBudget
	static := byName["square"].StaticBudget + byName["sqrt"].StaticBudget
	if hungry <= static {
		t.Errorf("entry-hungry tenants hold %d elastic entries, want more than their static %d", hungry, static)
	}
}
