package experiments

import (
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// Fig9Config parameterises the control-plane convergence-delay study
// (§V-B2): Nimble at line rate, rate halved mid-run, delay measured for
// calculation budgets 16..128.
type Fig9Config struct {
	// Entries are the calculation TCAM budgets swept.
	Entries []int
	// Rounds is the number of control rounds averaged per budget.
	Rounds int
	// SamplesPerRound feeds the monitor between rounds.
	SamplesPerRound int
	// Width is the operand width.
	Width int
	// Seed drives sampling.
	Seed int64
	// Workers is the replay parallelism for feeding samples into the
	// monitor (0 = GOMAXPROCS). Register counts are commutative, so the
	// result is worker-count independent.
	Workers int
}

// DefaultFig9Config returns the paper's sweep (16 to 128, step 16).
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Entries:         []int{16, 32, 48, 64, 80, 96, 112, 128},
		Rounds:          10,
		SamplesPerRound: 2000,
		Width:           16,
		Seed:            9,
	}
}

// Fig9Row is one budget's mean convergence delay.
type Fig9Row struct {
	// Entries is the calculation budget.
	Entries int
	// Delay is the mean per-round control-plane delay.
	Delay time.Duration
}

// RunFig9 measures the modelled control-round delay as the calculation
// budget grows. The workload mimics the paper's: a rate variable pinned at
// 95 (Gbps) for half the run, then 47.
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	rows := make([]Fig9Row, 0, len(cfg.Entries))
	for _, entries := range cfg.Entries {
		sysCfg := core.DefaultConfig(cfg.Width)
		sysCfg.CalcEntries = entries
		sysCfg.MonitorEntries = 12
		sys, err := core.NewUnary(sysCfg, arith.OpDouble)
		if err != nil {
			return nil, err
		}
		half := cfg.Rounds / 2
		var total time.Duration
		for round := 0; round < cfg.Rounds; round++ {
			rate := 95.0
			if round >= half {
				rate = 47.0
			}
			s := dist.NewIntSampler(
				dist.Truncated{D: dist.Gaussian{Mu: rate, Sigma: 2}, Lo: 0, Hi: float64(uint64(1) << cfg.Width)},
				uint64(1)<<cfg.Width-1, cfg.Seed+int64(round))
			netsim.ReplayOperands(cfg.Workers, s.Draw(cfg.SamplesPerRound), sys.ObserveAll)
			rep, err := sys.Sync()
			if err != nil {
				return nil, err
			}
			total += rep.Delay
		}
		rows = append(rows, Fig9Row{Entries: entries, Delay: total / time.Duration(cfg.Rounds)})
	}
	return rows, nil
}

// RenderFig9 formats the rows.
func RenderFig9(rows []Fig9Row) string {
	t := stats.NewTable("Fig 9: control-plane convergence delay vs calculation entries (paper: ≈3.15ms at 128)",
		"entries", "delay")
	for _, r := range rows {
		t.AddF(r.Entries, r.Delay.String())
	}
	return t.String()
}

// Table2Config parameterises the resource-usage accounting (§V-B2,
// Table II): ADA(R), ADA(ΔT), ADA(ΔT, R) at 8 monitoring entries, rate cut
// in half mid-run.
type Table2Config struct {
	// Rounds is the control-round count.
	Rounds int
	// SamplesPerRound feeds the monitors between rounds.
	SamplesPerRound int
	// Seed drives sampling.
	Seed int64
}

// DefaultTable2Config returns the paper's setup.
func DefaultTable2Config() Table2Config {
	return Table2Config{Rounds: 20, SamplesPerRound: 2000, Seed: 2}
}

// Table2Row is one deployment variant's resource usage.
type Table2Row struct {
	// Variant is "ADA(R)", "ADA(dT)", or "ADA(dT,R)".
	Variant string
	// Stages is the pipeline stage count.
	Stages int
	// AvgReads is mean register reads per control round.
	AvgReads float64
	// AvgWrites is mean control-plane writes per round.
	AvgWrites float64
}

// rateSampler mimics the Nimble rate variable: tightly pinned at 95, then
// 47 after the change (heavily skewed).
func rateSampler(width int, seed int64, second bool) *dist.IntSampler {
	mu := 95.0
	if second {
		mu = 47.0
	}
	return dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: mu, Sigma: 1.5}, Lo: 0, Hi: float64(uint64(1) << width)},
		uint64(1)<<width-1, seed)
}

// dtSampler mimics packet inter-arrival times: exponential-ish, more spread
// than the rate (§V-B2's observation).
func dtSampler(width int, seed int64) *dist.IntSampler {
	return dist.NewIntSampler(
		dist.Truncated{D: dist.Exponential{Rate: 1, Scale: 400}, Lo: 100, Hi: float64(uint64(1) << width)},
		uint64(1)<<width-1, seed)
}

// RunTable2 measures stage counts and control-plane read/write rates for
// the three deployment variants.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	const width = 12
	mkUnaryCfg := func() core.Config {
		c := core.DefaultConfig(width)
		c.MonitorEntries = 8
		c.CalcEntries = 64
		return c
	}

	var rows []Table2Row

	// ADA(R): monitoring the rate only.
	{
		sys, err := core.NewUnary(mkUnaryCfg(), arith.OpDouble)
		if err != nil {
			return nil, err
		}
		var reads, writes float64
		for round := 0; round < cfg.Rounds; round++ {
			s := rateSampler(width, cfg.Seed+int64(round), round >= cfg.Rounds/2)
			for _, v := range s.Draw(cfg.SamplesPerRound) {
				sys.Observe(v)
			}
			rep, err := sys.Sync()
			if err != nil {
				return nil, err
			}
			reads += float64(rep.Reads)
			writes += float64(rep.Writes)
		}
		p, err := sys.Pipeline("ada(R)")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Variant:   "ADA(R)",
			Stages:    p.NumStages(),
			AvgReads:  reads / float64(cfg.Rounds),
			AvgWrites: writes / float64(cfg.Rounds),
		})
	}

	// ADA(dT): monitoring the inter-arrival only.
	{
		sys, err := core.NewUnary(mkUnaryCfg(), arith.OpDouble)
		if err != nil {
			return nil, err
		}
		var reads, writes float64
		for round := 0; round < cfg.Rounds; round++ {
			s := dtSampler(width, cfg.Seed+1000+int64(round))
			for _, v := range s.Draw(cfg.SamplesPerRound) {
				sys.Observe(v)
			}
			rep, err := sys.Sync()
			if err != nil {
				return nil, err
			}
			reads += float64(rep.Reads)
			writes += float64(rep.Writes)
		}
		p, err := sys.Pipeline("ada(dT)")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Variant:   "ADA(dT)",
			Stages:    p.NumStages(),
			AvgReads:  reads / float64(cfg.Rounds),
			AvgWrites: writes / float64(cfg.Rounds),
		})
	}

	// ADA(dT, R): both variables, one joint calculation table.
	{
		c := core.DefaultConfig(width)
		c.MonitorEntries = 8
		c.CalcEntries = 64
		sys, err := core.NewBinary(c, arith.OpMul)
		if err != nil {
			return nil, err
		}
		var reads, writes float64
		for round := 0; round < cfg.Rounds; round++ {
			rs := rateSampler(width, cfg.Seed+2000+int64(round), round >= cfg.Rounds/2)
			ds := dtSampler(width, cfg.Seed+3000+int64(round))
			for i := 0; i < cfg.SamplesPerRound; i++ {
				sys.Observe(rs.Next(), ds.Next())
			}
			rep, err := sys.Sync()
			if err != nil {
				return nil, err
			}
			reads += float64(rep.Reads)
			writes += float64(rep.Writes)
		}
		p, err := sys.Pipeline("ada(dT,R)")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Variant:   "ADA(dT,R)",
			Stages:    p.NumStages(),
			AvgReads:  reads / float64(cfg.Rounds),
			AvgWrites: writes / float64(cfg.Rounds),
		})
	}
	return rows, nil
}

// RenderTable2 formats the rows.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Table II: resource usage and control-plane overhead (paper: stages 2/2/3)",
		"variant", "stages", "avg reads/round", "avg writes/round")
	for _, r := range rows {
		t.AddF(r.Variant, r.Stages, r.AvgReads, r.AvgWrites)
	}
	return t.String()
}
