package experiments

import (
	"fmt"
	"math"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/dist"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tcam"
)

// TieredBenchConfig parameterises the tiered-store budget study: error vs
// calculation budget for a pure TCAM table against a TieredStore whose TCAM
// slice stays pinned while the SRAM tier extends the budget far past what the
// slice alone could hold ("impossible" budgets at unchanged TCAM cost).
type TieredBenchConfig struct {
	// Width is the operand width in bits.
	Width int
	// MonitorEntries is the monitoring bin budget per system.
	MonitorEntries int
	// PureBudgets are the pure-TCAM calculation budgets swept (the table IS
	// the TCAM, so budget = TCAM rows).
	PureBudgets []int
	// TieredBudgets are the tiered calculation budgets swept; every one runs
	// on the same TieredTCAM-row slice, the rest serving from SRAM.
	TieredBudgets []int
	// TieredTCAM is the tiered systems' TCAM slice, normally equal to the
	// largest pure budget so the comparison holds TCAM cost constant.
	TieredTCAM int
	// Rounds is the observe→Sync control rounds run before measuring, enough
	// for the drifting workload to shape the bins and exercise placement.
	Rounds int
	// SamplesPerRound is the operand draw fed to the monitor each round.
	SamplesPerRound int
	// EvalSamples is the operand draw the final error is averaged over.
	EvalSamples int
	// Seed drives sampling.
	Seed int64
}

// DefaultTieredBenchConfig returns the issue's acceptance sweep: pure budgets
// up to 128 rows against tiered budgets extending 10× past that (1280
// entries) on the same 128-row TCAM slice.
func DefaultTieredBenchConfig() TieredBenchConfig {
	return TieredBenchConfig{
		Width:           DomainWidth,
		MonitorEntries:  16,
		PureBudgets:     []int{16, 32, 64, 128},
		TieredBudgets:   []int{256, 512, 1280},
		TieredTCAM:      128,
		Rounds:          12,
		SamplesPerRound: 4000,
		EvalSamples:     20000,
		Seed:            7,
	}
}

// TieredBenchRow is one (mode, budget) measurement. TCAMRows is the physical
// ternary capacity the configuration consumes — the resource the paper's
// budget axis prices; SRAM accounting is zero for pure rows.
type TieredBenchRow struct {
	Mode        string  `json:"mode"` // "pure" or "tiered"
	Budget      int     `json:"budget"`
	TCAMRows    int     `json:"tcam_rows"`
	MeanRelErr  float64 `json:"mean_rel_err_pct"`
	TCAMWrites  uint64  `json:"tcam_writes"`
	SRAMWrites  uint64  `json:"sram_writes"`
	Promotions  uint64  `json:"tier_promotions"`
	Demotions   uint64  `json:"tier_demotions"`
	HotRows     int     `json:"hot_rows"`
	ColdRows    int     `json:"cold_rows"`
	FinalDelay  int64   `json:"total_delay_ns"`
	SyncedRound int     `json:"rounds"`
}

// tieredBenchSystem builds one unary x² system: tcamSlice == 0 selects the
// pure table, otherwise a TieredStore with that slice under the budget.
func tieredBenchSystem(cfg TieredBenchConfig, budget, tcamSlice int) (*core.UnarySystem, error) {
	c := core.DefaultConfig(cfg.Width)
	c.MonitorEntries = cfg.MonitorEntries
	c.MaxMonitorEntries = cfg.MonitorEntries // pin: budget is the only axis
	c.CalcEntries = budget
	c.TieredTCAMEntries = tcamSlice
	return core.NewUnary(c, arith.OpSquare)
}

// tieredBenchWorkload returns the per-round samplers: a truncated Gaussian
// whose mean drifts across rounds, so the bin layout keeps adapting and the
// tier placer keeps re-ranking (a static workload converges after one round).
func tieredBenchWorkload(cfg TieredBenchConfig, round int, seedOff int64) *dist.IntSampler {
	span := float64(uint64(1) << uint(cfg.Width))
	mu := span * (0.25 + 0.5*float64(round)/float64(maxInt(cfg.Rounds-1, 1)))
	g := dist.Truncated{D: dist.Gaussian{Mu: mu, Sigma: span / 16}, Lo: 0, Hi: span - 1}
	return dist.NewIntSampler(g, uint64(1)<<uint(cfg.Width)-1, cfg.Seed+seedOff+int64(round)*101)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runTieredBenchSystem drives one system through the drifting workload and
// measures its final mean relative error. All systems see identical draws
// (same seeds), so rows differ only in store configuration.
func runTieredBenchSystem(sys *core.UnarySystem, cfg TieredBenchConfig) (TieredBenchRow, error) {
	var row TieredBenchRow
	for round := 0; round < cfg.Rounds; round++ {
		sys.ObserveAll(tieredBenchWorkload(cfg, round, 0).Draw(cfg.SamplesPerRound))
		rep, err := sys.Sync()
		if err != nil {
			return row, err
		}
		if rep.Degraded {
			return row, fmt.Errorf("tieredbench: degraded round (%s) with no faults injected", rep.DegradedReason)
		}
		row.SyncedRound++
	}
	// Error against the final round's distribution, drawn independently.
	eval := tieredBenchWorkload(cfg, cfg.Rounds-1, 7777).Draw(cfg.EvalSamples)
	op := sys.Op()
	total := 0.0
	for _, x := range eval {
		approx, err := sys.Engine().Eval(x)
		if err != nil {
			return row, fmt.Errorf("tieredbench: eval miss at %d: %w", x, err)
		}
		total += arith.RelError(approx, op.Exact(x))
	}
	row.MeanRelErr = 100 * total / float64(len(eval))
	tot := sys.Controller().Totals()
	row.TCAMWrites = tot.TCAMWrites
	row.SRAMWrites = tot.SRAMWrites
	row.Promotions = tot.TierPromotions
	row.Demotions = tot.TierDemotions
	row.FinalDelay = tot.Delay.Nanoseconds()
	if ts, ok := sys.Engine().Store().(*tcam.TieredStore); ok {
		row.HotRows, row.ColdRows = ts.HotLen(), ts.ColdLen()
	} else {
		row.HotRows = sys.Engine().Store().Len()
	}
	return row, nil
}

// RunTieredBench sweeps pure budgets then tiered budgets and returns one row
// per configuration, pure rows first, in sweep order (deterministic output
// for the committed JSON baseline).
func RunTieredBench(cfg TieredBenchConfig) ([]TieredBenchRow, error) {
	rows := make([]TieredBenchRow, 0, len(cfg.PureBudgets)+len(cfg.TieredBudgets))
	for _, b := range cfg.PureBudgets {
		sys, err := tieredBenchSystem(cfg, b, 0)
		if err != nil {
			return nil, err
		}
		row, err := runTieredBenchSystem(sys, cfg)
		if err != nil {
			return nil, err
		}
		row.Mode, row.Budget, row.TCAMRows = "pure", b, b
		rows = append(rows, row)
	}
	for _, b := range cfg.TieredBudgets {
		sys, err := tieredBenchSystem(cfg, b, cfg.TieredTCAM)
		if err != nil {
			return nil, err
		}
		row, err := runTieredBenchSystem(sys, cfg)
		if err != nil {
			return nil, err
		}
		row.Mode, row.Budget, row.TCAMRows = "tiered", b, cfg.TieredTCAM
		rows = append(rows, row)
	}
	return rows, nil
}

// TieredDifferential proves the tiering is semantically free: a tiered system
// and a pure-TCAM system at the same effective budget, fed identical
// workloads, must hold byte-identical calculation populations after every
// round (Store.Fingerprint parity) and evaluate every probe identically. The
// pure reference gets the full budget as real TCAM rows — physically
// implausible at 10× budgets, which is exactly the point: the tiered store
// reproduces that ideal bit-for-bit on a fraction of the ternary capacity.
// Returns the number of rounds compared.
func TieredDifferential(cfg TieredBenchConfig, budget int) (int, error) {
	pure, err := tieredBenchSystem(cfg, budget, 0)
	if err != nil {
		return 0, err
	}
	tiered, err := tieredBenchSystem(cfg, budget, cfg.TieredTCAM)
	if err != nil {
		return 0, err
	}
	for round := 0; round < cfg.Rounds; round++ {
		for _, sys := range []*core.UnarySystem{pure, tiered} {
			sys.ObserveAll(tieredBenchWorkload(cfg, round, 0).Draw(cfg.SamplesPerRound))
			if rep, err := sys.Sync(); err != nil {
				return round, err
			} else if rep.Degraded {
				return round, fmt.Errorf("tieredbench: differential round degraded (%s)", rep.DegradedReason)
			}
		}
		pf, tf := pure.Engine().Store().Fingerprint(), tiered.Engine().Store().Fingerprint()
		if pf != tf {
			return round, fmt.Errorf("tieredbench: round %d: tiered population diverged from pure reference at budget %d", round, budget)
		}
		probe := tieredBenchWorkload(cfg, round, 4242).Draw(2000)
		for _, x := range probe {
			pv, perr := pure.Engine().Eval(x)
			tv, terr := tiered.Engine().Eval(x)
			if (perr == nil) != (terr == nil) || pv != tv {
				return round, fmt.Errorf("tieredbench: round %d: Eval(%d) = %d/%v vs %d/%v", round, x, pv, perr, tv, terr)
			}
		}
	}
	return cfg.Rounds, nil
}

// WriteTieredBenchJSON writes the rows as an indented JSON baseline (the
// committed BENCH_tiered.json artefact). Struct keys in declaration order,
// no wall-clock timestamps: reruns with the same config are byte-identical.
func WriteTieredBenchJSON(path string, rows []TieredBenchRow) error {
	return WriteBenchJSON(path, rows)
}

// RenderTieredBench formats the rows.
func RenderTieredBench(rows []TieredBenchRow) string {
	t := stats.NewTable("Error vs calculation budget: pure TCAM vs tiered TCAM+SRAM (x², drifting Gaussian)",
		"mode", "budget", "tcam rows", "err %", "tcam writes", "sram writes", "promoted", "demoted", "hot/cold")
	for _, r := range rows {
		errStr := fmt.Sprintf("%.3f", r.MeanRelErr)
		if math.IsNaN(r.MeanRelErr) {
			errStr = "nan"
		}
		t.AddF(r.Mode, r.Budget, r.TCAMRows, errStr,
			r.TCAMWrites, r.SRAMWrites, r.Promotions, r.Demotions,
			fmt.Sprintf("%d/%d", r.HotRows, r.ColdRows))
	}
	return t.String()
}
