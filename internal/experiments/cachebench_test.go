package experiments

import "testing"

// shortCacheBenchConfig trims the sweep and the differential so the
// acceptance run fits CI: the built-in bitwise equivalence checks (cached
// results vs uncached, fingerprints, monitor registers) still run in full,
// only the measured stream and round count shrink.
func shortCacheBenchConfig() CacheBenchConfig {
	cfg := DefaultCacheBenchConfig()
	cfg.Width = 17
	cfg.CalcEntries = 8192 // building the full 2^17 population dwarfs CI eval time
	cfg.Samples = 40_000
	cfg.Batch = 512
	cfg.ZipfS = []float64{0.6, 1.1}
	cfg.CacheEntries = []int{4096}
	cfg.DiffRounds = 60
	cfg.DiffRestartAt = 30
	return cfg
}

// TestCacheBenchAcceptance runs the lookup-cache experiment end to end.
// Every run is also a correctness gate: each sweep cell cross-checks cached
// eval output bitwise against the uncached path before timing, and the
// differential soak drives a cached and an uncached system through identical
// churn, faults, audits, and a crash/restart, failing on any divergence in
// results, miss counts, calculation fingerprints, or monitor registers. In
// short/CI mode only sanity bounds are asserted — single-core runners make
// throughput ratios unstable; the committed BENCH_cache.json records the
// full-run speedups, which must show >=2x at the headline cell.
func TestCacheBenchAcceptance(t *testing.T) {
	cfg := DefaultCacheBenchConfig()
	if testing.Short() {
		cfg = shortCacheBenchConfig()
	}
	res, err := RunCacheBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderCacheBench(res))
	if want := len(cfg.ZipfS) * len(cfg.CacheEntries); len(res.Points) != want {
		t.Fatalf("got %d points, want %d", len(res.Points), want)
	}
	for _, p := range res.Points {
		if p.UncachedSamplesSec <= 0 || p.CachedSamplesSec <= 0 {
			t.Errorf("s=%.1f cache=%d: non-positive throughput %+v", p.ZipfS, p.CacheEntries, p)
		}
		if p.HitRate < 0 || p.HitRate > 1 {
			t.Errorf("s=%.1f cache=%d: hit rate %.3f out of range", p.ZipfS, p.CacheEntries, p.HitRate)
		}
		if !raceEnabled && p.CachedAllocsBatch >= 2 {
			t.Errorf("s=%.1f cache=%d: cached path allocates %.1f/batch, want <2",
				p.ZipfS, p.CacheEntries, p.CachedAllocsBatch)
		}
	}
	if res.HeadlineSpeedup <= 0 {
		t.Errorf("headline cell (s=%.1f, %d entries) missing from sweep",
			cfg.HeadlineZipfS, cfg.HeadlineCacheEntries)
	}
	if !testing.Short() && !raceEnabled && res.HeadlineSpeedup < 2 {
		t.Errorf("headline speedup %.2fx, want >=2x in full mode", res.HeadlineSpeedup)
	}

	d := res.Differential
	if d.Rounds != cfg.DiffRounds {
		t.Errorf("differential ran %d rounds, want %d", d.Rounds, cfg.DiffRounds)
	}
	if d.SamplesCompared == 0 {
		t.Error("differential compared no samples")
	}
	if d.Invalidations == 0 {
		t.Error("differential caused no cache invalidations — churn not exercised")
	}
	if d.Audits == 0 {
		t.Error("differential ran no audits")
	}
	if cfg.DiffRestartAt > 0 && !d.Restarted {
		t.Error("differential skipped the crash/restart")
	}
}
