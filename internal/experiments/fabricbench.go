package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/fabric"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tenant"
)

// FabricBenchConfig parameterises the sharded multi-switch benchmark:
// dozens of skewed, drifting tenants consistent-hashed across a fabric of
// switches, ingested through the sharded replay fan-out, with per-switch
// control rounds on the fabric's bounded worker pool. The same streams run
// twice — static placement (ring placement, equal per-switch splits, no
// arbitration) versus the elastic fabric (switch-local budget arbiters plus
// cross-switch tenant migration) — and a subset of switches runs behind an
// injected outage/latency fault profile in both modes.
type FabricBenchConfig struct {
	// Switches is the fabric size.
	Switches int
	// SwitchEntries is each switch's physical calculation capacity.
	SwitchEntries int
	// Tenants is the tenant count, consistent-hashed over the switches.
	Tenants int
	// Rounds is the fabric control rounds per mode.
	Rounds int
	// Warmup is the rounds excluded from the error aggregate.
	Warmup int
	// SamplesPerRound is the operands fed per tenant per round.
	SamplesPerRound int
	// EvalSamples is the operands drawn per tenant per measured round for
	// the error estimate.
	EvalSamples int
	// Workers is the fabric's control worker pool and the top of the replay
	// throughput grid.
	Workers int
	// BatchSize is the sharded-replay flush threshold.
	BatchSize int
	// RoundDeadline bounds each switch round's modelled delay.
	RoundDeadline time.Duration
	// MigrateEvery is the fabric arbiter cadence (elastic mode only).
	MigrateEvery int
	// ArbiterEvery is the switch-local budget arbiter cadence (elastic only).
	ArbiterEvery int
	// FaultySwitches is how many switches (lowest indices) run behind an
	// injected outage+latency driver profile, in both modes.
	FaultySwitches int
	// ThroughputSamples sizes the post-run stream used for the throughput
	// demand measurement.
	ThroughputSamples int
	// Seed seeds every stream; both modes replay identical operands.
	Seed int64
}

// DefaultFabricBenchConfig returns the committed-baseline configuration:
// 64 switches × 24 tenants, 8 control/replay workers, 8 faulty switches.
func DefaultFabricBenchConfig() FabricBenchConfig {
	return FabricBenchConfig{
		Switches:          64,
		SwitchEntries:     128,
		Tenants:           24,
		Rounds:            24,
		Warmup:            8,
		SamplesPerRound:   300,
		EvalSamples:       400,
		Workers:           8,
		BatchSize:         256,
		RoundDeadline:     25 * time.Millisecond,
		MigrateEvery:      2,
		ArbiterEvery:      2,
		FaultySwitches:    8,
		ThroughputSamples: 200000,
		Seed:              1,
	}
}

// FabricThroughputRow is aggregate replay throughput at one worker count,
// from the service-demand model: per-switch ingest demand is measured
// sequentially in isolation, then scheduled LPT onto the worker lanes —
// deterministic on any host, including ones with fewer cores than workers.
type FabricThroughputRow struct {
	Workers       int     `json:"workers"`
	LookupsPerSec float64 `json:"model_lookups_per_sec"`
}

// FabricLatency summarises per-switch modelled round delays across a mode's
// run (occupied switches × rounds).
type FabricLatency struct {
	P50Micros        float64 `json:"p50_micros"`
	P99Micros        float64 `json:"p99_micros"`
	MaxMicros        float64 `json:"max_micros"`
	DeadlineExceeded int     `json:"deadline_exceeded_rounds"`
	DegradedTenants  int     `json:"degraded_tenant_rounds"`
}

// FabricBenchResult is the benchmark artefact (BENCH_fabric.json).
type FabricBenchResult struct {
	Switches       int `json:"switches"`
	SwitchEntries  int `json:"switch_entries"`
	Tenants        int `json:"tenants"`
	Rounds         int `json:"rounds"`
	Workers        int `json:"workers"`
	MigrateEvery   int `json:"migrate_every"`
	FaultySwitches int `json:"faulty_switches"`
	// OccupiedStatic/OccupiedElastic count switches holding >= 1 tenant at
	// the end of each mode — migrations spread the elastic fabric out.
	OccupiedStatic  int `json:"occupied_switches_static"`
	OccupiedElastic int `json:"occupied_switches_elastic"`
	Migrations      int `json:"migrations"`

	// Aggregate mean relative error across tenants and measured rounds.
	StaticAggregate  float64 `json:"static_aggregate_error"`
	ElasticAggregate float64 `json:"elastic_aggregate_error"`
	// Improvement is StaticAggregate / ElasticAggregate (>1 = elastic wins).
	Improvement float64 `json:"improvement"`

	// Round latency under the injected per-switch faults.
	StaticLatency  FabricLatency `json:"static_round_latency"`
	ElasticLatency FabricLatency `json:"elastic_round_latency"`

	// Throughput holds the replay-scaling grid; ModelScaling is the last
	// row's throughput over the first's (1 -> Workers scaling). Measured*
	// reports an honest wall-clock concurrent replay on this host for
	// reference (bounded by its real core count, unlike the model).
	Throughput            []FabricThroughputRow `json:"throughput"`
	ModelScaling          float64               `json:"model_scaling_1_to_max"`
	MeasuredLookupsPerSec float64               `json:"measured_lookups_per_sec"`
}

// fabricWorkload is one tenant's op and drifting operand distribution.
type fabricWorkload struct {
	name   string
	op     arith.UnaryOp
	sample func(rng *rand.Rand, progress float64) uint64
}

// fabricWorkloads builds cfg.Tenants skewed workloads cycling the tenant
// trio (entry-hungry drifting square, near-point-mass recip donor, moderate
// sqrt), with per-tenant ranges spread so different switches see different
// loads. Names are stable, so ring placement — and therefore the crowding
// the elastic fabric must fix — is deterministic.
func fabricWorkloads(n int) []fabricWorkload {
	out := make([]fabricWorkload, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%02d", i)
		switch i % 3 {
		case 0: // wide drifting square: keeps needing entries where it has none
			lo := 512 + 256*(i/3)
			out[i] = fabricWorkload{name: name, op: arith.OpSquare,
				sample: func(rng *rand.Rand, progress float64) uint64 {
					hi := 4000 + int(40000*progress)
					return tri(rng, lo, hi)
				}}
		case 1: // near-point mass: the donor
			base := uint64(16 + 8*(i/3))
			out[i] = fabricWorkload{name: name, op: arith.OpRecip,
				sample: func(rng *rand.Rand, progress float64) uint64 {
					return base + rng.Uint64()%4
				}}
		default: // moderate drifting sqrt
			lo := 256 + 128*(i/3)
			out[i] = fabricWorkload{name: name, op: arith.OpSqrt,
				sample: func(rng *rand.Rand, progress float64) uint64 {
					hi := 3000 + int(8000*progress)
					return tri(rng, lo, hi)
				}}
		}
	}
	return out
}

const fabricVNodes = 16

// fabricBenchFabric builds one mode's fabric with per-switch fault
// injectors on the first FaultySwitches switches. The injectors come back
// disarmed so provisioning mounts succeed deterministically; the caller arms
// them once the fleet is placed, so faults hit steady-state control rounds
// (and migrations), not setup.
func fabricBenchFabric(cfg FabricBenchConfig, elastic bool) (*fabric.Fabric, []*faults.Injector, error) {
	injectors := make([]*faults.Injector, cfg.FaultySwitches)
	for i := range injectors {
		prof := faults.OutageProfile()
		prof.Seed = cfg.Seed + int64(i)*131
		injectors[i] = faults.MustNew(prof)
		injectors[i].SetArmed(false)
	}
	fcfg := fabric.Config{
		Switches:      cfg.Switches,
		SwitchEntries: cfg.SwitchEntries,
		Workers:       cfg.Workers,
		RoundDeadline: cfg.RoundDeadline,
		VNodes:        fabricVNodes,
	}
	if elastic {
		fcfg.TenantArbiter = tenant.ArbiterConfig{Every: cfg.ArbiterEvery, MinMove: 6}
		fcfg.Migration = fabric.MigrationConfig{Every: cfg.MigrateEvery, MaxMoves: 2}
	}
	if cfg.FaultySwitches > 0 {
		fcfg.WrapDriver = func(sw int, d controlplane.Driver) controlplane.Driver {
			if sw < len(injectors) {
				return injectors[sw].Wrap(d)
			}
			return d
		}
	}
	f, err := fabric.New(fcfg)
	return f, injectors, err
}

// occupiedCount counts switches holding at least one tenant.
func occupiedCount(f *fabric.Fabric) int {
	seen := make(map[int]bool)
	for _, sw := range f.Placement() {
		seen[sw] = true
	}
	return len(seen)
}

// runFabricBenchMode runs one full deployment and returns the aggregate
// error, latency summary, migration count, and the final fabric (for the
// throughput model).
func runFabricBenchMode(cfg FabricBenchConfig, elastic bool) (*fabric.Fabric, float64, FabricLatency, int, error) {
	f, injectors, err := fabricBenchFabric(cfg, elastic)
	if err != nil {
		return nil, 0, FabricLatency{}, 0, err
	}
	workloads := fabricWorkloads(cfg.Tenants)

	// Static placement splits each switch's capacity equally among the
	// tenants the ring put there; elastic starts from the identical split.
	ring, err := fabric.NewRing(cfg.Switches, fabricVNodes)
	if err != nil {
		return nil, 0, FabricLatency{}, 0, err
	}
	counts := make([]int, cfg.Switches)
	for _, w := range workloads {
		counts[ring.Place(w.name)]++
	}
	for _, w := range workloads {
		c := core.DefaultConfig(16)
		c.MonitorEntries = 10
		c.CalcEntries = cfg.SwitchEntries / counts[ring.Place(w.name)]
		if _, err := f.AddUnary(w.name, c, w.op); err != nil {
			return nil, 0, FabricLatency{}, 0, err
		}
	}
	for _, inj := range injectors {
		inj.SetArmed(true)
	}

	feedRNGs := make([]*rand.Rand, len(workloads))
	evalRNGs := make([]*rand.Rand, len(workloads))
	for i := range workloads {
		feedRNGs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*977))
		evalRNGs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*977 + 500009))
	}

	sr := netsim.NewShardedReplay(cfg.Switches, cfg.BatchSize)
	scratch := make([]fabric.IngestScratch, cfg.Workers)
	var snap []int
	route := func(p uint64) int { return snap[p>>32] }
	stream := make([]uint64, 0, len(workloads)*cfg.SamplesPerRound)

	var delays []time.Duration
	var lat FabricLatency
	migrations := 0
	errSum, measured := 0.0, 0
	ctx := context.Background()
	for round := 0; round < cfg.Rounds; round++ {
		progress := float64(round) / float64(cfg.Rounds-1)
		// Interleave every tenant's round feed into one packed stream and
		// fan it across the fabric.
		stream = stream[:0]
		for s := 0; s < cfg.SamplesPerRound; s++ {
			for ti, w := range workloads {
				stream = append(stream, fabric.Pack(ti, w.sample(feedRNGs[ti], progress)))
			}
		}
		snap = f.RouteSnapshot(snap)
		sr.Replay(cfg.Workers, stream, route, func(w, shard int, batch []uint64) {
			f.ObserveEvalPacked(batch, &scratch[w], nil)
		})

		rep, err := f.SyncAll(ctx)
		if err != nil {
			return nil, 0, FabricLatency{}, 0, err
		}
		migrations += len(rep.Migrations)
		for _, sw := range rep.Switches {
			if sw.Tenants == 0 {
				continue
			}
			delays = append(delays, sw.Delay)
			if sw.DeadlineExceeded {
				lat.DeadlineExceeded++
			}
			lat.DegradedTenants += sw.Degraded
		}

		if round < cfg.Warmup {
			continue
		}
		measured++
		for ti, w := range workloads {
			tn, _, ok := f.Tenant(w.name)
			if !ok {
				return nil, 0, FabricLatency{}, 0, fmt.Errorf("fabricbench: tenant %s lost", w.name)
			}
			sum := 0.0
			for i := 0; i < cfg.EvalSamples; i++ {
				x := w.sample(evalRNGs[ti], progress)
				approx, err := tn.Unary().Engine().Eval(x)
				if err != nil {
					return nil, 0, FabricLatency{}, 0, fmt.Errorf("fabricbench: %s eval(%d): %w", w.name, x, err)
				}
				exact := w.op.Exact(x)
				diff := float64(approx) - float64(exact)
				if diff < 0 {
					diff = -diff
				}
				den := float64(exact)
				if den < 1 {
					den = 1
				}
				sum += diff / den
			}
			errSum += sum / float64(cfg.EvalSamples)
		}
	}

	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	if n := len(delays); n > 0 {
		lat.P50Micros = float64(delays[n/2]) / float64(time.Microsecond)
		lat.P99Micros = float64(delays[n*99/100]) / float64(time.Microsecond)
		lat.MaxMicros = float64(delays[n-1]) / float64(time.Microsecond)
	}
	agg := errSum / float64(measured*len(workloads))
	return f, agg, lat, migrations, nil
}

// fabricThroughput measures the aggregate replay-scaling grid on the final
// elastic fabric. Per-switch ingest service demand is timed sequentially
// (each switch's share of a fresh stream, in isolation), then the demands
// are scheduled LPT onto 1..Workers lanes: throughput(W) = samples /
// makespan(W). The model is exact for this embarrassingly-parallel fan-out
// and — unlike a wall clock — holds on hosts with fewer cores than workers.
// The honest measured number for this host is reported alongside.
func fabricThroughput(cfg FabricBenchConfig, f *fabric.Fabric, workloads []fabricWorkload) ([]FabricThroughputRow, float64, float64) {
	rng := rand.New(rand.NewSource(cfg.Seed + 999331))
	stream := make([]uint64, 0, cfg.ThroughputSamples)
	for len(stream) < cfg.ThroughputSamples {
		ti := rng.Intn(len(workloads))
		stream = append(stream, fabric.Pack(ti, workloads[ti].sample(rng, 1.0)))
	}
	snap := f.RouteSnapshot(nil)

	// Split the stream per switch and time each switch's ingest alone.
	perSwitch := make([][]uint64, f.NumSwitches())
	for _, p := range stream {
		sw := snap[p>>32]
		perSwitch[sw] = append(perSwitch[sw], p)
	}
	var sc fabric.IngestScratch
	demands := make([]time.Duration, 0, len(perSwitch))
	for _, svs := range perSwitch {
		if len(svs) == 0 {
			continue
		}
		start := time.Now()
		for lo := 0; lo < len(svs); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(svs) {
				hi = len(svs)
			}
			f.ObserveEvalPacked(svs[lo:hi], &sc, nil)
		}
		demands = append(demands, time.Since(start))
	}

	var rows []FabricThroughputRow
	for w := 1; w <= cfg.Workers; w *= 2 {
		span := fabric.Makespan(demands, w)
		rows = append(rows, FabricThroughputRow{
			Workers:       w,
			LookupsPerSec: float64(len(stream)) / span.Seconds(),
		})
	}
	scaling := 0.0
	if len(rows) > 1 && rows[0].LookupsPerSec > 0 {
		scaling = rows[len(rows)-1].LookupsPerSec / rows[0].LookupsPerSec
	}

	// Honest concurrent wall measurement on this host.
	sr := netsim.NewShardedReplay(f.NumSwitches(), cfg.BatchSize)
	scratch := make([]fabric.IngestScratch, cfg.Workers)
	route := func(p uint64) int { return snap[p>>32] }
	start := time.Now()
	sr.Replay(cfg.Workers, stream, route, func(w, shard int, batch []uint64) {
		f.ObserveEvalPacked(batch, &scratch[w], nil)
	})
	measured := float64(len(stream)) / time.Since(start).Seconds()
	return rows, scaling, measured
}

// RunFabricBench runs the static and elastic fabrics over identical streams
// and assembles the comparison plus the throughput model.
func RunFabricBench(cfg FabricBenchConfig) (*FabricBenchResult, error) {
	fStatic, staticAgg, staticLat, _, err := runFabricBenchMode(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("static mode: %w", err)
	}
	fElastic, elasticAgg, elasticLat, migrations, err := runFabricBenchMode(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("elastic mode: %w", err)
	}
	res := &FabricBenchResult{
		Switches:         cfg.Switches,
		SwitchEntries:    cfg.SwitchEntries,
		Tenants:          cfg.Tenants,
		Rounds:           cfg.Rounds,
		Workers:          cfg.Workers,
		MigrateEvery:     cfg.MigrateEvery,
		FaultySwitches:   cfg.FaultySwitches,
		OccupiedStatic:   occupiedCount(fStatic),
		OccupiedElastic:  occupiedCount(fElastic),
		Migrations:       migrations,
		StaticAggregate:  staticAgg,
		ElasticAggregate: elasticAgg,
		StaticLatency:    staticLat,
		ElasticLatency:   elasticLat,
	}
	if res.ElasticAggregate > 0 {
		res.Improvement = res.StaticAggregate / res.ElasticAggregate
	}
	res.Throughput, res.ModelScaling, res.MeasuredLookupsPerSec =
		fabricThroughput(cfg, fElastic, fabricWorkloads(cfg.Tenants))
	return res, nil
}

// WriteFabricBenchJSON writes the result as the committed BENCH_fabric.json
// artefact.
func WriteFabricBenchJSON(path string, res *FabricBenchResult) error {
	return WriteBenchJSON(path, res)
}

// RenderFabricBench formats the result.
func RenderFabricBench(res *FabricBenchResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Sharded fabric: elastic rebalancing vs static placement (%d switches x %d tenants, %d faulty)",
			res.Switches, res.Tenants, res.FaultySwitches),
		"mode", "aggregate err", "occupied", "p50 round", "p99 round", "deadline miss", "degraded")
	t.AddF("static", fmt.Sprintf("%.4f", res.StaticAggregate), res.OccupiedStatic,
		fmt.Sprintf("%.0fus", res.StaticLatency.P50Micros), fmt.Sprintf("%.0fus", res.StaticLatency.P99Micros),
		res.StaticLatency.DeadlineExceeded, res.StaticLatency.DegradedTenants)
	t.AddF("elastic", fmt.Sprintf("%.4f", res.ElasticAggregate), res.OccupiedElastic,
		fmt.Sprintf("%.0fus", res.ElasticLatency.P50Micros), fmt.Sprintf("%.0fus", res.ElasticLatency.P99Micros),
		res.ElasticLatency.DeadlineExceeded, res.ElasticLatency.DegradedTenants)
	out := t.String()
	out += fmt.Sprintf("\nmigrations: %d, improvement: %.2fx better aggregate error\n",
		res.Migrations, res.Improvement)
	tp := stats.NewTable("Aggregate replay throughput (service-demand model, LPT schedule)",
		"workers", "lookups/s")
	for _, r := range res.Throughput {
		tp.AddF(r.Workers, fmt.Sprintf("%.0f", r.LookupsPerSec))
	}
	out += "\n" + tp.String()
	out += fmt.Sprintf("\nmodel scaling 1->%d workers: %.2fx (measured on this host: %.0f lookups/s)\n",
		res.Workers, res.ModelScaling, res.MeasuredLookupsPerSec)
	return out
}
