package experiments

import (
	"fmt"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// ExtXCPConfig parameterises the XCP extension experiment. XCP is not in
// the paper's evaluation but heads its Table I motivation (4 floating-point
// operations per control decision with error propagation); this experiment
// applies the Fig 10 methodology to it: short-flow FCT with exact router
// arithmetic vs ADA TCAM arithmetic.
type ExtXCPConfig struct {
	// Fabric sizes the leaf-spine topology.
	Fabric netsim.LeafSpineConfig
	// Load is the offered load fraction.
	Load float64
	// Duration is the flow arrival window.
	Duration netsim.Time
	// Drain is extra completion time.
	Drain netsim.Time
	// SyncEvery is the ADA control-round period.
	SyncEvery netsim.Time
	// Seed drives the workload.
	Seed int64
}

// DefaultExtXCPConfig returns a seconds-scale configuration.
func DefaultExtXCPConfig() ExtXCPConfig {
	return ExtXCPConfig{
		Fabric: netsim.LeafSpineConfig{
			Spines: 2, Leaves: 4, HostsPerLeaf: 4,
			LinkRateBps: 10e9, LinkDelay: netsim.Microsecond,
		},
		Load:      0.4,
		Duration:  15 * netsim.Millisecond,
		Drain:     60 * netsim.Millisecond,
		SyncEvery: 500 * netsim.Microsecond,
		Seed:      13,
	}
}

// ExtXCPRow is one arithmetic variant's result.
type ExtXCPRow struct {
	// Variant is "ideal" or "ada".
	Variant string
	// ShortFCT summarises short-flow completion times.
	ShortFCT netsim.FCTStats
	// ADAEntries is the adaptive TCAM footprint (0 for ideal).
	ADAEntries int
}

// RunExtXCP runs XCP across the fabric with exact and ADA arithmetic.
func RunExtXCP(cfg ExtXCPConfig) ([]ExtXCPRow, error) {
	var rows []ExtXCPRow
	for _, variant := range []string{"ideal", "ada"} {
		topo := netsim.BuildLeafSpine(cfg.Fabric)
		net := topo.Net
		sim := net.Sim

		sites := netsim.UniformXCPSites(netsim.IdealArith{})
		var ada *apps.ADAXCPSites
		if variant == "ada" {
			a, err := apps.NewADAXCPSites(128, 12)
			if err != nil {
				return nil, err
			}
			a.ScheduleSync(sim, cfg.SyncEvery)
			sites = a.Sites()
			ada = a
		}
		d := 8*cfg.Fabric.LinkDelay + 20*netsim.Microsecond
		for _, p := range topo.AllSwitchPorts() {
			netsim.AttachXCP(sim, p, sites, d)
		}

		wl := netsim.DefaultWorkload(cfg.Load, cfg.Duration, cfg.Seed)
		flows := netsim.GenerateFlows(net, cfg.Fabric.Hosts(), cfg.Fabric.LinkRateBps, wl)
		if err := netsim.StartAll(net, flows, netsim.NewXCPTransport()); err != nil {
			return nil, err
		}
		sim.Run(cfg.Duration + cfg.Drain)

		row := ExtXCPRow{
			Variant:  variant,
			ShortFCT: netsim.CollectFCT(net.Flows(), netsim.ShortFlows(wl.ShortMax)),
		}
		if ada != nil {
			row.ADAEntries = ada.TotalEntries()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtXCP formats the rows.
func RenderExtXCP(rows []ExtXCPRow) string {
	t := stats.NewTable("Extension: XCP (Table I's heaviest arithmetic consumer) with ideal vs ADA arithmetic",
		"arithmetic", "short flows", "unfinished", "mean FCT", "p99 FCT", "ADA entries")
	for _, r := range rows {
		t.AddF(r.Variant, r.ShortFCT.N, r.ShortFCT.Unfinished,
			r.ShortFCT.Mean.String(), r.ShortFCT.P99.String(), r.ADAEntries)
	}
	return t.String()
}

var _ = fmt.Sprintf // reserved for future per-row annotations
