//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this test
// binary; its runtime distorts throughput ratios and charges bookkeeping
// allocations, so performance assertions relax under it.
const raceEnabled = true
