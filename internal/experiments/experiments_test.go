package experiments

import (
	"testing"

	"github.com/ada-repro/ada/internal/netsim"
)

func TestFig5AllDistributionsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFig5Config()
	rows, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (Fig 5a–e)", len(rows))
	}
	for _, r := range rows {
		if r.Bins != cfg.MonitorBins {
			t.Errorf("%s: bins = %d, want %d (rebalance keeps the count fixed)",
				r.Name, r.Bins, cfg.MonitorBins)
		}
		if r.TVFinal > 0.35 {
			t.Errorf("%s: TV after convergence = %.3f, bins did not model the PDF", r.Name, r.TVFinal)
		}
	}
	// Skewed distributions must improve markedly over the uniform start;
	// the uniform distribution is already matched initially.
	for _, r := range rows[1:] {
		if r.TVFinal >= r.TVInitial {
			t.Errorf("%s: TV did not improve (%.3f → %.3f)", r.Name, r.TVInitial, r.TVFinal)
		}
	}
	if RenderFig5(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig6GrowsBins(t *testing.T) {
	rows, err := RunFig6(DefaultFig6Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d, want several iterations", len(rows))
	}
	if rows[0].Bins != 2 {
		t.Errorf("initial bins = %d, want 2 (b=1)", rows[0].Bins)
	}
	last := rows[len(rows)-1]
	if last.Bins <= rows[0].Bins {
		t.Errorf("bins did not grow: %d → %d", rows[0].Bins, last.Bins)
	}
	if last.TV >= rows[0].TV {
		t.Errorf("TV did not improve: %.3f → %.3f", rows[0].TV, last.TV)
	}
	if RenderFig6(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig7aErrorFallsWithS(t *testing.T) {
	cfg := DefaultFig7aConfig()
	cfg.SigBits = []int{1, 3, 5, 7}
	cfg.Samples = 8000
	rows, err := RunFig7a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, combo := range fig7aCombos() {
		prev := 1e18
		for _, r := range rows {
			e := r.Errors[combo.name]
			if e >= prev {
				t.Errorf("%s: error did not fall at s=%d (%.4f → %.4f)", combo.name, r.S, prev, e)
			}
			prev = e
		}
	}
	// Paper: G×G is the worst combination at any s.
	for _, r := range rows {
		if r.Errors["G(x)*G(y)"] < r.Errors["U(x)+U(y)"] {
			t.Errorf("s=%d: G*G error %.4f below U+U %.4f", r.S,
				r.Errors["G(x)*G(y)"], r.Errors["U(x)+U(y)"])
		}
	}
	if RenderFig7a(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig7bExponentialGrowth(t *testing.T) {
	rows := RunFig7b([]int{1, 2, 3, 4, 5, 6, 7, 8})
	for i := 1; i < len(rows); i++ {
		ratio := float64(rows[i].UnaryEntries) / float64(rows[i-1].UnaryEntries)
		if ratio < 1.6 {
			t.Errorf("s=%d: growth ratio %.2f, want ≈2", rows[i].S, ratio)
		}
		if rows[i].BinaryEntries != rows[i].UnaryEntries*rows[i].UnaryEntries {
			t.Errorf("s=%d: binary size mismatch", rows[i].S)
		}
	}
	if RenderFig7b(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig7cSquarePropagatesWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunFig7c(DefaultFig7cConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 functions × 2 schemes)", len(rows))
	}
	get := func(fn, scheme string) Fig7cRow {
		for _, r := range rows {
			if r.Function == fn && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", fn, scheme)
		return Fig7cRow{}
	}
	// Paper's headline: x² propagation error exceeds 2x under every
	// population scheme (§V-A4: "the error propagation depends on the
	// function itself more than the population mechanism"). In our bounded
	// integer domain both chains saturate after a few squarings, which
	// caps the divergence window, so the x²/2x gap is asserted per scheme
	// rather than at the paper's unbounded-float magnitudes.
	for _, scheme := range []string{"naive", "ada"} {
		sq, db := get("x^2", scheme).MaxPct, get("2x", scheme).MaxPct
		if sq <= 2*db {
			t.Errorf("%s: x² peak %.1f%% not clearly above 2x peak %.1f%%", scheme, sq, db)
		}
	}
	// ADA must reduce the 2x propagation error vs the sig-bits baseline
	// (trained on the trajectory).
	if ada, naive := get("2x", "ada").MaxPct, get("2x", "naive").MaxPct; ada >= naive {
		t.Errorf("2x: ADA peak %.2f%% not below baseline %.2f%%", ada, naive)
	}
	if RenderFig7c(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig9DelayGrowsWithEntries(t *testing.T) {
	cfg := DefaultFig9Config()
	cfg.Rounds = 6
	rows, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (16..128 step 16)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Delay <= rows[i-1].Delay {
			t.Errorf("delay not monotone at %d entries: %v <= %v",
				rows[i].Entries, rows[i].Delay, rows[i-1].Delay)
		}
	}
	// Paper: ≈3.15 ms at 128 entries; accept the modelled value within 2×.
	last := rows[len(rows)-1]
	ms := last.Delay.Seconds() * 1000
	if ms < 1.5 || ms > 6.5 {
		t.Errorf("delay at 128 entries = %.2fms, want ≈3.15ms", ms)
	}
	if RenderFig9(rows) == "" {
		t.Error("render empty")
	}
}

func TestTable2StagesAndSkew(t *testing.T) {
	rows, err := RunTable2(DefaultTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	if byName["ADA(R)"].Stages != 2 || byName["ADA(dT)"].Stages != 2 || byName["ADA(dT,R)"].Stages != 3 {
		t.Errorf("stage counts = %d/%d/%d, want 2/2/3",
			byName["ADA(R)"].Stages, byName["ADA(dT)"].Stages, byName["ADA(dT,R)"].Stages)
	}
	// Both-variable deployment must read and write the most.
	both := byName["ADA(dT,R)"]
	for _, single := range []Table2Row{byName["ADA(R)"], byName["ADA(dT)"]} {
		if both.AvgReads <= single.AvgReads {
			t.Errorf("ADA(dT,R) reads %.1f not above %s reads %.1f",
				both.AvgReads, single.Variant, single.AvgReads)
		}
		if both.AvgWrites <= single.AvgWrites {
			t.Errorf("ADA(dT,R) writes %.1f not above %s writes %.1f",
				both.AvgWrites, single.Variant, single.AvgWrites)
		}
	}
	// Adaptive growth: reads exceed the initial 8 bins.
	if byName["ADA(R)"].AvgReads < 8 {
		t.Errorf("ADA(R) reads %.1f below the initial bin count", byName["ADA(R)"].AvgReads)
	}
	if RenderTable2(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig1aQueueSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFig1aConfig()
	cfg.Duration = 15 * netsim.Millisecond
	rows, err := RunFig1a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("%s: no queue samples", r.Protocol)
		}
		// The paper's point: occupancy is heavily skewed toward small
		// values.
		if r.FracBelow200KB < 0.8 {
			t.Errorf("%s: only %.2f below 200KB, want skew", r.Protocol, r.FracBelow200KB)
		}
	}
	// DCTCP keeps queues at least as low as Cubic (small tolerance: at the
	// scaled fabric size the two CDFs can touch).
	if rows[1].FracBelow100KB+0.01 < rows[0].FracBelow100KB {
		t.Errorf("dctcp <=100KB %.3f below cubic %.3f",
			rows[1].FracBelow100KB, rows[0].FracBelow100KB)
	}
	if RenderFig1a(rows) == "" {
		t.Error("render empty")
	}
}

func TestFig1bNarrowBand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig1b(DefaultFig1bConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gaps < 1000 {
		t.Fatalf("gaps = %d, too few", res.Gaps)
	}
	// Paper: inter-arrivals largely constrained to 120–360 ns despite the
	// rate changes.
	if res.FracInBand < 0.6 {
		t.Errorf("only %.2f of gaps in the narrow band", res.FracInBand)
	}
	if res.P50 < 100*netsim.Nanosecond || res.P50 > 500*netsim.Nanosecond {
		t.Errorf("median gap %v outside plausible band", res.P50)
	}
	if RenderFig1b(res) == "" {
		t.Error("render empty")
	}
}

func TestFig1cTwoOperandValues(t *testing.T) {
	points := RunFig1c(DefaultFig1cConfig())
	if len(points) == 0 {
		t.Fatal("no points")
	}
	if got := Fig1cDistinctValues(points); got != 2 {
		t.Errorf("distinct operand values = %d, want 2 (94 and 47)", got)
	}
	if points[0].RateGbps != 94 || points[len(points)-1].RateGbps != 47 {
		t.Errorf("trace endpoints = %d, %d", points[0].RateGbps, points[len(points)-1].RateGbps)
	}
	if RenderFig1c(points) == "" {
		t.Error("render empty")
	}
}

func TestFig8ADARecoversStaticDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunFig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	byV := map[Fig8Variant]Fig8Row{}
	for _, r := range rows {
		byV[r.Variant] = r
	}
	ideal, static, ada := byV[Fig8Ideal], byV[Fig8Static], byV[Fig8ADA]

	// Ideal must track both limits.
	if d := relDev(ideal.Phase1AvgGbps, 24); d > 0.30 {
		t.Errorf("ideal phase1 = %.2f Gbps, want ≈24", ideal.Phase1AvgGbps)
	}
	if d := relDev(ideal.Phase2AvgGbps, 12); d > 0.30 {
		t.Errorf("ideal phase2 = %.2f Gbps, want ≈12", ideal.Phase2AvgGbps)
	}
	// ADA must land near the new limit after the change...
	adaDev := relDev(ada.Phase2AvgGbps, 12)
	if adaDev > 0.40 {
		t.Errorf("ada phase2 = %.2f Gbps, want ≈12", ada.Phase2AvgGbps)
	}
	// ...and the frozen population must be markedly worse (the paper's
	// headline).
	staticDev := relDev(static.Phase2AvgGbps, 12)
	if staticDev < 2*adaDev {
		t.Errorf("static deviation %.2f not well above ada %.2f (static %.2f Gbps, ada %.2f Gbps)",
			staticDev, adaDev, static.Phase2AvgGbps, ada.Phase2AvgGbps)
	}
	if RenderFig8(rows) == "" {
		t.Error("render empty")
	}
}

func relDev(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestFig10ADATracksIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFig10Config()
	cfg.Loads = []float64{0.4}
	cfg.Duration = 10 * netsim.Millisecond
	rows, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[Fig10Scheme]Fig10Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	for _, s := range Fig10Schemes() {
		r, ok := byScheme[s]
		if !ok {
			t.Fatalf("missing scheme %s", s)
		}
		if r.ShortFCT.N == 0 {
			t.Fatalf("%s: no completed short flows", s)
		}
		done := float64(r.ShortFCT.N) / float64(r.ShortFCT.N+r.ShortFCT.Unfinished)
		if done < 0.9 {
			t.Errorf("%s: only %.0f%% of short flows finished", s, done*100)
		}
	}
	// ADA variants must track their ideal counterparts (paper: "similar
	// delay using ADA as in an idealized system"). Allow 2× on the mean.
	pairs := [][2]Fig10Scheme{
		{Fig10RCPIdeal, Fig10RCPADA},
		{Fig10NimbleIdeal, Fig10NimbleADA},
	}
	for _, p := range pairs {
		ideal := byScheme[p[0]].ShortFCT.Mean.Seconds()
		ada := byScheme[p[1]].ShortFCT.Mean.Seconds()
		if ada > 2*ideal {
			t.Errorf("%s mean FCT %.1fµs more than 2× %s %.1fµs",
				p[1], ada*1e6, p[0], ideal*1e6)
		}
	}
	if RenderFig10(rows) == "" {
		t.Error("render empty")
	}
}

func TestExtXCPBothVariantsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultExtXCPConfig()
	cfg.Duration = 8 * netsim.Millisecond
	rows, err := RunExtXCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ShortFCT.N == 0 {
			t.Fatalf("%s: no completed short flows", r.Variant)
		}
		done := float64(r.ShortFCT.N) / float64(r.ShortFCT.N+r.ShortFCT.Unfinished)
		if done < 0.9 {
			t.Errorf("%s: only %.0f%% of short flows finished", r.Variant, done*100)
		}
	}
	// XCP's per-packet arithmetic is the harshest consumer; ADA tracks the
	// ideal within a moderate factor rather than matching it.
	ideal, ada := rows[0].ShortFCT.Mean, rows[1].ShortFCT.Mean
	if ada > 6*ideal {
		t.Errorf("XCP ADA mean FCT %v more than 6× ideal %v", ada, ideal)
	}
	if rows[1].ADAEntries == 0 {
		t.Error("ADA entry footprint not reported")
	}
	if RenderExtXCP(rows) == "" {
		t.Error("render empty")
	}
}
