package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
	"github.com/ada-repro/ada/internal/tcam"
)

// LookupBenchConfig parameterises the data-plane lookup microbenchmark: the
// compiled per-generation index against the reference linear scan, plus the
// batch and parallel replay paths the experiments use.
type LookupBenchConfig struct {
	// Sizes are the table entry counts swept (powers of two — each size
	// installs a full-domain prefix cover of that many leaves).
	Sizes []int
	// Probes is the lookup count per measurement.
	Probes int
	// Workers are the goroutine counts for the parallel measurement.
	Workers []int
	// Width is the operand width in bits.
	Width int
	// Seed drives probe key generation.
	Seed int64
}

// DefaultLookupBenchConfig sweeps 128, 1024, and 8192 entries — the issue's
// acceptance sizes — with enough probes for stable nanosecond averages.
func DefaultLookupBenchConfig() LookupBenchConfig {
	return LookupBenchConfig{
		Sizes:   []int{128, 1024, 8192},
		Probes:  200000,
		Workers: []int{1, 2, 4},
		Width:   16,
		Seed:    41,
	}
}

// LookupParallelPoint is one worker count's wall-clock cost per lookup.
type LookupParallelPoint struct {
	// Workers is the goroutine count.
	Workers int `json:"workers"`
	// Ns is wall-clock nanoseconds per lookup across all workers; with
	// linear scaling it drops as 1/Workers.
	Ns float64 `json:"ns_per_lookup"`
}

// LookupBenchRow is one table size's measurements.
type LookupBenchRow struct {
	// Entries is the installed entry count.
	Entries int `json:"entries"`
	// ScanNs is the reference linear scan (LookupAll) cost per lookup.
	ScanNs float64 `json:"scan_ns"`
	// IndexedNs is the compiled-index Lookup cost per lookup.
	IndexedNs float64 `json:"indexed_ns"`
	// BatchNs is the LookupBatch cost per lookup (one snapshot per batch).
	BatchNs float64 `json:"batch_ns"`
	// Speedup is ScanNs / IndexedNs.
	Speedup float64 `json:"speedup"`
	// Parallel is the concurrent-lookup scaling curve.
	Parallel []LookupParallelPoint `json:"parallel"`
}

// lookupBenchTable installs a full binary cover of the width-bit domain with
// `size` leaves (size must be a power of two ≤ 2^width), so every probe hits.
func lookupBenchTable(width, size int) (*tcam.Table, error) {
	t, err := tcam.New("lookupbench", 0, width)
	if err != nil {
		return nil, err
	}
	depth := 0
	for 1<<depth < size {
		depth++
	}
	if 1<<depth != size || depth > width {
		return nil, fmt.Errorf("lookupbench: size %d is not a power of two within %d bits", size, width)
	}
	full := ^uint64(0) >> (64 - uint(width))
	mask := full &^ (full >> uint(depth)) // top `depth` bits exact
	rows := make([]tcam.Row, size)
	for i := 0; i < size; i++ {
		rows[i] = tcam.Row{
			Fields: []tcam.Field{{Value: uint64(i) << uint(width-depth), Mask: mask}},
			Data:   uint64(i),
		}
	}
	if _, err := t.ApplyRowsAtomic(rows); err != nil {
		return nil, err
	}
	return t, nil
}

// RunLookupBench measures the lookup paths at each configured size. It is a
// wall-clock microbenchmark: absolute numbers vary by machine, but the
// scan-vs-index ordering and the parallel scaling trend are the deliverables.
func RunLookupBench(cfg LookupBenchConfig) ([]LookupBenchRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	domain := uint64(1) << uint(cfg.Width)
	keys := make([]uint64, cfg.Probes)
	for i := range keys {
		keys[i] = rng.Uint64() % domain
	}

	rows := make([]LookupBenchRow, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		t, err := lookupBenchTable(cfg.Width, size)
		if err != nil {
			return nil, err
		}
		t.Lookup(keys[0]) // compile the index outside the timed region

		// Reference linear scan. LookupAll deliberately bypasses the
		// index; cap the probe count so 8k entries stays sub-second.
		scanProbes := cfg.Probes
		if max := 2_000_000 / size; scanProbes > max {
			scanProbes = max
		}
		if scanProbes < 1 {
			scanProbes = 1
		}
		start := time.Now()
		for _, k := range keys[:scanProbes] {
			if es := t.LookupAll(k); len(es) == 0 {
				return nil, fmt.Errorf("lookupbench: scan miss on full cover (key %d)", k)
			}
		}
		scanNs := float64(time.Since(start).Nanoseconds()) / float64(scanProbes)

		// Compiled index, sequential.
		start = time.Now()
		for _, k := range keys {
			if _, ok := t.Lookup(k); !ok {
				return nil, fmt.Errorf("lookupbench: indexed miss on full cover (key %d)", k)
			}
		}
		indexedNs := float64(time.Since(start).Nanoseconds()) / float64(len(keys))

		// Batch path: one compiled snapshot per batch.
		var dst []*tcam.Entry
		start = time.Now()
		dst = t.LookupSingleBatch(keys, dst)
		batchNs := float64(time.Since(start).Nanoseconds()) / float64(len(keys))
		for _, e := range dst {
			if e == nil {
				return nil, fmt.Errorf("lookupbench: batch miss on full cover")
			}
		}

		// Parallel replay: shard the same probe stream across workers.
		parallel := make([]LookupParallelPoint, 0, len(cfg.Workers))
		for _, w := range cfg.Workers {
			start = time.Now()
			netsim.Replay(w, len(keys), func(lo, hi int) {
				for _, k := range keys[lo:hi] {
					t.Lookup(k)
				}
			})
			parallel = append(parallel, LookupParallelPoint{
				Workers: w,
				Ns:      float64(time.Since(start).Nanoseconds()) / float64(len(keys)),
			})
		}

		rows = append(rows, LookupBenchRow{
			Entries:   size,
			ScanNs:    scanNs,
			IndexedNs: indexedNs,
			BatchNs:   batchNs,
			Speedup:   scanNs / indexedNs,
			Parallel:  parallel,
		})
	}
	return rows, nil
}

// WriteLookupBenchJSON writes the rows as an indented JSON baseline (the
// committed BENCH_lookup.json artefact).
func WriteLookupBenchJSON(path string, rows []LookupBenchRow) error {
	return WriteBenchJSON(path, rows)
}

// RenderLookupBench formats the rows.
func RenderLookupBench(rows []LookupBenchRow) string {
	t := stats.NewTable("Lookup microbenchmark: compiled index vs reference linear scan (ns per lookup)",
		"entries", "scan", "indexed", "batch", "speedup", "parallel (workers:ns)")
	for _, r := range rows {
		par := ""
		for i, p := range r.Parallel {
			if i > 0 {
				par += "  "
			}
			par += fmt.Sprintf("%d:%.0f", p.Workers, p.Ns)
		}
		t.AddF(r.Entries, fmt.Sprintf("%.0f", r.ScanNs), fmt.Sprintf("%.0f", r.IndexedNs),
			fmt.Sprintf("%.0f", r.BatchNs), fmt.Sprintf("%.1fx", r.Speedup), par)
	}
	return t.String()
}
