package experiments

import (
	"fmt"
	"math/rand"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/faults"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/stats"
)

// CacheBenchConfig parameterises the lookup-cache experiment: a Zipf-skew ×
// cache-size throughput sweep of the cached data-plane eval path against the
// uncached one, plus a long differential that pins the cached path
// bit-identical to the uncached path across hundreds of control rounds with
// distribution churn, injected driver faults, audits, tier re-placement,
// and a crash/restart.
type CacheBenchConfig struct {
	// Width is the sweep's operand width in bits. The default 17 is the
	// narrowest width in the predecessor-search regime (the dense LUT
	// fast path stops at 16 bits) — the regime any real >16-bit operand
	// domain runs in, and the one the cache exists for.
	Width int
	// CalcEntries is the sweep's calculation population size. The default
	// 2^17 gives every 17-bit key its own range: an exact population whose
	// uncached lookup pays the full log2(N) predecessor walk.
	CalcEntries int
	// Samples and Batch shape each measurement cell.
	Samples int
	Batch   int
	// ZipfS is the skew sweep (0 = uniform).
	ZipfS []float64
	// CacheEntries is the cache-size sweep.
	CacheEntries []int
	// HeadlineZipfS/HeadlineCacheEntries name the acceptance cell: the
	// sweep must contain it, and its speedup is reported separately.
	HeadlineZipfS        float64
	HeadlineCacheEntries int
	// DiffRounds is the differential's control-round count; DiffWidth and
	// DiffCalcEntries shape its (smaller) system. DiffRestartAt
	// crash-restarts both systems at that round; DiffFaultSpec injects
	// identical seeded driver faults into both.
	DiffRounds      int
	DiffWidth       int
	DiffCalcEntries int
	DiffRestartAt   int
	DiffFaultSpec   string
	// Seed drives stream generation.
	Seed int64
}

// DefaultCacheBenchConfig is the committed BENCH_cache.json configuration.
func DefaultCacheBenchConfig() CacheBenchConfig {
	return CacheBenchConfig{
		Width:                17,
		CalcEntries:          131072,
		Samples:              400_000,
		Batch:                4096,
		ZipfS:                []float64{0.6, 0.8, 1.0, 1.1, 1.2, 1.4},
		CacheEntries:         []int{1024, 4096, 16384},
		HeadlineZipfS:        1.1,
		HeadlineCacheEntries: 4096,
		DiffRounds:           500,
		DiffWidth:            16,
		DiffCalcEntries:      64,
		DiffRestartAt:        250,
		DiffFaultSpec:        "seed=29,write=0.03",
		Seed:                 47,
	}
}

// CachePoint is one (skew, cache size) cell of the sweep.
type CachePoint struct {
	ZipfS        float64 `json:"zipf_s"`
	CacheEntries int     `json:"cache_entries"`
	// UncachedSamplesSec and CachedSamplesSec are single-thread eval
	// throughputs over the same stream.
	UncachedSamplesSec float64 `json:"uncached_samples_per_sec"`
	CachedSamplesSec   float64 `json:"cached_samples_per_sec"`
	Speedup            float64 `json:"speedup"`
	// HitRate is cache hits over cache traffic, per sample occurrence.
	HitRate float64 `json:"hit_rate"`
	// Allocation rates per batch for both paths (steady state; 0 expected).
	UncachedAllocsBatch float64 `json:"uncached_allocs_per_batch"`
	CachedAllocsBatch   float64 `json:"cached_allocs_per_batch"`
}

// DedupPoint is one skew row of the standalone intra-batch dedup
// measurement: the same stream evaluated with only the fold/scatter pass
// armed (no cache), against the same uncached reference.
type DedupPoint struct {
	ZipfS           float64 `json:"zipf_s"`
	DedupSamplesSec float64 `json:"dedup_samples_per_sec"`
	Speedup         float64 `json:"speedup"`
	// UniquePerBatch is the fold factor: mean distinct keys per
	// Batch-sample batch.
	UniquePerBatch float64 `json:"unique_per_batch"`
}

// CacheDiffResult summarises the differential soak.
type CacheDiffResult struct {
	Rounds          int    `json:"rounds"`
	SamplesCompared uint64 `json:"samples_compared"`
	DegradedRounds  int    `json:"degraded_rounds"`
	Audits          int    `json:"audits"`
	Restarted       bool   `json:"restarted"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	Invalidations   uint64 `json:"invalidations"`
}

// CacheBenchResult is the committed BENCH_cache.json artefact.
type CacheBenchResult struct {
	Width       int          `json:"width"`
	CalcEntries int          `json:"calc_entries"`
	Samples     int          `json:"samples"`
	Batch       int          `json:"batch"`
	Points      []CachePoint `json:"points"`
	Dedup       []DedupPoint `json:"dedup"`
	// HeadlineSpeedup is the acceptance cell's cached/uncached ratio
	// (Zipf s = HeadlineZipfS with HeadlineCacheEntries slots).
	HeadlineZipfS        float64         `json:"headline_zipf_s"`
	HeadlineCacheEntries int             `json:"headline_cache_entries"`
	HeadlineSpeedup      float64         `json:"headline_speedup"`
	Differential         CacheDiffResult `json:"differential"`
}

// RunCacheBench runs the sweep and the differential. Like the other
// benchmarks, every run is also a correctness gate: each sweep cell
// cross-checks cached results against uncached before timing, and a
// differential failure fails the run.
func RunCacheBench(cfg CacheBenchConfig) (CacheBenchResult, error) {
	res := CacheBenchResult{
		Width:                cfg.Width,
		CalcEntries:          cfg.CalcEntries,
		Samples:              cfg.Samples,
		Batch:                cfg.Batch,
		HeadlineZipfS:        cfg.HeadlineZipfS,
		HeadlineCacheEntries: cfg.HeadlineCacheEntries,
	}

	// One engine serves the whole sweep: the population is static during
	// measurement (the differential covers the mutating case).
	domainMax := uint64(1)<<uint(cfg.Width) - 1
	entries, err := population.NaiveUnaryRange(arith.OpSqrt.Func(), cfg.Width, cfg.CalcEntries, 0, domainMax, population.Midpoint)
	if err != nil {
		return res, err
	}
	eng, err := arith.NewUnaryEngine("cachebench", cfg.Width, 0, entries)
	if err != nil {
		return res, err
	}

	batches := batchCount(cfg.Samples, cfg.Batch)
	for _, s := range cfg.ZipfS {
		// One stream per skew, shared by every cache size and all paths.
		rng := rand.New(rand.NewSource(cfg.Seed))
		xs := make([]uint64, cfg.Samples)
		newZipf(rng.Float64, cfg.Width, s).Fill(xs)
		want, wantM := eng.EvalBatch(xs) // bitwise reference for every path

		// Each configuration runs in its own closure over its own Scratch;
		// verifyStream is the per-path correctness gate (and cache/buffer
		// warmer): bitwise results and miss counts against the reference.
		mkRun := func(sc *arith.Scratch) func() {
			var dst []uint64
			return func() {
				for lo := 0; lo < len(xs); lo += cfg.Batch {
					hi := min(lo+cfg.Batch, len(xs))
					dst, _ = eng.EvalBatchInto(dst, xs[lo:hi], sc)
				}
			}
		}
		verifyStream := func(name string, sc *arith.Scratch) error {
			var dst []uint64
			gotM := 0
			got := make([]uint64, 0, len(xs))
			for lo := 0; lo < len(xs); lo += cfg.Batch {
				hi := min(lo+cfg.Batch, len(xs))
				var m int
				dst, m = eng.EvalBatchInto(dst, xs[lo:hi], sc)
				got = append(got, dst...)
				gotM += m
			}
			if gotM != wantM {
				return fmt.Errorf("cachebench: s=%.2f %s: misses %d, want %d", s, name, gotM, wantM)
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("cachebench: s=%.2f %s: result[%d] = %d, want %d", s, name, i, got[i], want[i])
				}
			}
			return nil
		}

		// The uncached reference throughput for this stream.
		var plainSc arith.Scratch
		if err := verifyStream("uncached", &plainSc); err != nil {
			return res, err
		}
		uncachedSec, uncachedAllocs := measureMedian(cfg.Samples, batches, mkRun(&plainSc))

		// The standalone dedup fold (no cache), plus the fold factor
		// counted directly from the stream.
		var dedupSc arith.Scratch
		dedupSc.EnableDedup()
		if err := verifyStream("dedup", &dedupSc); err != nil {
			return res, err
		}
		dedupSec, _ := measureMedian(cfg.Samples, batches, mkRun(&dedupSc))
		res.Dedup = append(res.Dedup, DedupPoint{
			ZipfS:           s,
			DedupSamplesSec: dedupSec,
			Speedup:         dedupSec / uncachedSec,
			UniquePerBatch:  uniquePerBatch(xs, cfg.Batch),
		})

		for _, ce := range cfg.CacheEntries {
			var sc arith.Scratch
			sc.EnableCache(eng.Store(), ce)
			if err := verifyStream(fmt.Sprintf("cache=%d", ce), &sc); err != nil {
				return res, err
			}
			before := sc.CacheStats()
			cachedSec, cachedAllocs := measureMedian(cfg.Samples, batches, mkRun(&sc))
			after := sc.CacheStats()
			traffic := (after.Hits - before.Hits) + (after.Misses - before.Misses)
			pt := CachePoint{
				ZipfS:               s,
				CacheEntries:        ce,
				UncachedSamplesSec:  uncachedSec,
				CachedSamplesSec:    cachedSec,
				Speedup:             cachedSec / uncachedSec,
				UncachedAllocsBatch: uncachedAllocs,
				CachedAllocsBatch:   cachedAllocs,
			}
			if traffic > 0 {
				pt.HitRate = float64(after.Hits-before.Hits) / float64(traffic)
			}
			res.Points = append(res.Points, pt)
			if s == cfg.HeadlineZipfS && ce == cfg.HeadlineCacheEntries {
				res.HeadlineSpeedup = pt.Speedup
			}
		}
	}

	diff, err := runCacheDifferential(cfg)
	if err != nil {
		return res, err
	}
	res.Differential = diff
	return res, nil
}

// measureMedian runs measure three times and reports the median throughput
// — single-core hosts drift enough between trials (scheduler preemption,
// frequency scaling) that one sample can swing a ratio by ±15% — together
// with the worst-case allocation rate across trials.
func measureMedian(samples, batches int, fn func()) (samplesSec, allocsBatch float64) {
	var secs [3]float64
	for i := range secs {
		sec, allocs := measure(samples, batches, fn)
		secs[i] = sec
		if allocs > allocsBatch {
			allocsBatch = allocs
		}
	}
	lo, hi := min(secs[0], secs[1]), max(secs[0], secs[1])
	switch {
	case secs[2] < lo:
		samplesSec = lo
	case secs[2] > hi:
		samplesSec = hi
	default:
		samplesSec = secs[2]
	}
	return samplesSec, allocsBatch
}

// uniquePerBatch counts the mean number of distinct keys per batch — the
// dedup fold factor of the stream.
func uniquePerBatch(xs []uint64, batch int) float64 {
	if batch <= 0 || len(xs) == 0 {
		return 0
	}
	seen := make(map[uint64]struct{}, batch)
	total := 0
	for lo := 0; lo < len(xs); lo += batch {
		hi := min(lo+batch, len(xs))
		clear(seen)
		for _, k := range xs[lo:hi] {
			seen[k] = struct{}{}
		}
		total += len(seen)
	}
	return float64(total) / float64(batchCount(len(xs), batch))
}

// runCacheDifferential drives two identically-configured systems — one with
// the lookup cache armed, one without — through DiffRounds control rounds
// over identical phase-shifting Zipf streams, with identical injected
// driver faults, periodic read-back audits, tiered tier re-placement, and
// one mid-soak crash/restart of both. After every batch the eval outputs
// must match bitwise; after every round the calculation fingerprints and
// monitor register snapshots must match exactly — the "monitoring stays
// exact" guarantee.
func runCacheDifferential(cfg CacheBenchConfig) (CacheDiffResult, error) {
	diff := CacheDiffResult{Rounds: cfg.DiffRounds}

	mk := func(cacheEntries int) (*core.UnarySystem, *faults.Injector, error) {
		tcfg := core.DefaultConfig(cfg.DiffWidth)
		tcfg.CalcEntries = cfg.DiffCalcEntries
		tcfg.CalcCapacity = 2 * cfg.DiffCalcEntries
		tcfg.TieredTCAMEntries = cfg.DiffCalcEntries / 2
		tcfg.AuditEvery = 7
		tcfg.EnableJournal = true
		tcfg.LookupCacheEntries = cacheEntries
		var inj *faults.Injector
		if cfg.DiffFaultSpec != "" {
			prof, err := faults.ParseProfile(cfg.DiffFaultSpec)
			if err != nil {
				return nil, nil, err
			}
			if inj, err = faults.New(prof); err != nil {
				return nil, nil, err
			}
			tcfg.WrapDriver = inj.Wrap
		}
		sys, err := core.NewUnary(tcfg, arith.OpSquare)
		if err != nil {
			return nil, nil, err
		}
		return sys, inj, nil
	}
	cached, injC, err := mk(cfg.HeadlineCacheEntries)
	if err != nil {
		return diff, err
	}
	plain, injP, err := mk(0)
	if err != nil {
		return diff, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	max := uint64(1)<<uint(cfg.DiffWidth) - 1
	zs := newZipf(rng.Float64, cfg.DiffWidth, 1.1)
	xs := make([]uint64, 512)
	var scC, scP arith.Scratch
	var dstC, dstP []uint64
	for round := 0; round < cfg.DiffRounds; round++ {
		// Distribution churn: the Zipf hot set shifts by a new offset
		// every 20 rounds, forcing repopulation (and with it generation
		// bumps, delta commits, rollback-on-fault, and re-placement).
		peak := (uint64(round/20) * 0x9E37) & max
		for b := 0; b < 4; b++ {
			for i := range xs {
				xs[i] = (peak + zs.Next()) & max
			}
			var mC, mP int
			dstC, mC = cached.ObserveEvalAll(dstC, xs, &scC)
			dstP, mP = plain.ObserveEvalAll(dstP, xs, &scP)
			if mC != mP {
				return diff, fmt.Errorf("cachebench differential: round %d: cached misses %d, plain %d", round, mC, mP)
			}
			for i := range dstP {
				if dstC[i] != dstP[i] {
					return diff, fmt.Errorf("cachebench differential: round %d sample %d: cached %d, plain %d", round, i, dstC[i], dstP[i])
				}
			}
			diff.SamplesCompared += uint64(len(xs))
		}

		if cfg.DiffRestartAt > 0 && round == cfg.DiffRestartAt {
			// Crash/restart both systems inside a fault-free maintenance
			// window, exactly like the serve soak does.
			for _, inj := range []*faults.Injector{injC, injP} {
				if inj != nil {
					inj.SetArmed(false)
				}
			}
			if _, err := cached.Restart(); err != nil {
				return diff, fmt.Errorf("cached restart: %w", err)
			}
			if _, err := plain.Restart(); err != nil {
				return diff, fmt.Errorf("plain restart: %w", err)
			}
			for _, inj := range []*faults.Injector{injC, injP} {
				if inj != nil {
					inj.SetArmed(true)
				}
			}
			diff.Restarted = true
		}

		repC, err := cached.Sync()
		if err != nil {
			return diff, err
		}
		repP, err := plain.Sync()
		if err != nil {
			return diff, err
		}
		if repC.Degraded != repP.Degraded {
			return diff, fmt.Errorf("cachebench differential: round %d: degraded %v vs %v", round, repC.Degraded, repP.Degraded)
		}
		if repC.Degraded {
			diff.DegradedRounds++
		}
		if repC.AuditRan {
			diff.Audits++
		}

		// Post-round state equality: same installed population, same
		// monitor registers. The monitor snapshot is the histogram drift
		// detection and tier placement read — bit-identical by contract.
		fpC := cached.Engine().Store().Fingerprint()
		fpP := plain.Engine().Store().Fingerprint()
		if fpC != fpP {
			return diff, fmt.Errorf("cachebench differential: round %d: calc fingerprints diverged", round)
		}
		snapC := cached.Controller().Monitor().Snapshot()
		snapP := plain.Controller().Monitor().Snapshot()
		if len(snapC) != len(snapP) {
			return diff, fmt.Errorf("cachebench differential: round %d: register counts diverged", round)
		}
		for i := range snapC {
			if snapC[i] != snapP[i] {
				return diff, fmt.Errorf("cachebench differential: round %d: register %d: cached %d, plain %d", round, i, snapC[i], snapP[i])
			}
		}
	}
	st := scC.CacheStats()
	diff.CacheHits = st.Hits
	diff.CacheMisses = st.Misses
	diff.Invalidations = st.Invalidations
	if diff.Invalidations == 0 {
		return diff, fmt.Errorf("cachebench differential: %d rounds caused no invalidations — the churn did not exercise the cache", cfg.DiffRounds)
	}
	return diff, nil
}

// RenderCacheBench formats the result.
func RenderCacheBench(res CacheBenchResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Lookup cache: cached vs uncached single-thread eval (width %d, %d entries, batch %d)",
			res.Width, res.CalcEntries, res.Batch),
		"zipf s", "cache", "uncached", "cached", "speedup", "hit rate", "allocs/batch")
	for _, p := range res.Points {
		t.AddF(fmt.Sprintf("%.1f", p.ZipfS), p.CacheEntries,
			fmt.Sprintf("%.2fM", p.UncachedSamplesSec/1e6),
			fmt.Sprintf("%.2fM", p.CachedSamplesSec/1e6),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.1f%%", 100*p.HitRate),
			fmt.Sprintf("%.1f→%.1f", p.UncachedAllocsBatch, p.CachedAllocsBatch))
	}
	out := t.String()
	dd := stats.NewTable("Intra-batch dedup fold alone (no cache)",
		"zipf s", "dedup", "speedup", "uniq/batch")
	for _, p := range res.Dedup {
		dd.AddF(fmt.Sprintf("%.1f", p.ZipfS),
			fmt.Sprintf("%.2fM", p.DedupSamplesSec/1e6),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0f", p.UniquePerBatch))
	}
	out += "\n" + dd.String()
	d := res.Differential
	out += fmt.Sprintf("\nheadline: %.2fx at zipf s=%.1f with %d-entry cache\n",
		res.HeadlineSpeedup, res.HeadlineZipfS, res.HeadlineCacheEntries)
	out += fmt.Sprintf("differential: %d rounds, %d samples compared bit-identical, %d degraded, %d audits, restart=%v, %d invalidations\n",
		d.Rounds, d.SamplesCompared, d.DegradedRounds, d.Audits, d.Restarted, d.Invalidations)
	return out
}

// WriteCacheBenchJSON writes the result as the committed BENCH_cache.json
// artefact.
func WriteCacheBenchJSON(path string, res CacheBenchResult) error {
	return WriteBenchJSON(path, res)
}
