package experiments

import "testing"

// TestRecoveryBenchAcceptance is the PR's benchmark acceptance: at ≤5%
// corrupted rows the anti-entropy repair must issue strictly fewer TCAM
// writes than full repopulation, detection must land within the audit
// cadence, and the corruption window must be visible in (and repair must
// remove) the arithmetic error.
func TestRecoveryBenchAcceptance(t *testing.T) {
	cfg := DefaultRecoveryBenchConfig()
	if testing.Short() {
		cfg.Samples = 1500
		cfg.WarmupRounds = 8
	}
	rows, err := RunRecoveryBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.CorruptRates) {
		t.Fatalf("%d rows, want %d", len(rows), len(cfg.CorruptRates))
	}
	for _, r := range rows {
		if r.CorruptedRows < 1 {
			t.Errorf("rate %.2f: no rows corrupted", r.CorruptRate)
		}
		if r.DetectionSyncs < 1 || r.DetectionSyncs > r.AuditEvery+1 {
			t.Errorf("rate %.2f: detection took %d rounds, want within audit cadence %d",
				r.CorruptRate, r.DetectionSyncs, r.AuditEvery)
		}
		if r.RepairWrites < 1 || r.RepairWrites >= r.FullRepopulateWrites {
			t.Errorf("rate %.2f: repair writes %d not strictly below full repopulation %d",
				r.CorruptRate, r.RepairWrites, r.FullRepopulateWrites)
		}
		if r.RestartCalcWrites >= r.FullRepopulateWrites {
			t.Errorf("rate %.2f: restart wrote %d rows, not a delta (full = %d)",
				r.CorruptRate, r.RestartCalcWrites, r.FullRepopulateWrites)
		}
		if r.CorruptErrPct <= r.CleanErrPct {
			t.Errorf("rate %.2f: corruption window invisible in arithmetic error (%.4f%% vs clean %.4f%%)",
				r.CorruptRate, r.CorruptErrPct, r.CleanErrPct)
		}
		if r.HealedErrPct >= r.CorruptErrPct {
			t.Errorf("rate %.2f: repair did not restore arithmetic error (%.4f%% vs corrupt %.4f%%)",
				r.CorruptRate, r.HealedErrPct, r.CorruptErrPct)
		}
		if r.AuditDelayNs <= 0 {
			t.Errorf("rate %.2f: audit delay not modelled", r.CorruptRate)
		}
	}
	if RenderRecoveryBench(rows) == "" {
		t.Error("render empty")
	}
	t.Logf("\n%s", RenderRecoveryBench(rows))
}
