package experiments

import (
	"fmt"

	"github.com/ada-repro/ada/internal/apps"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/stats"
)

// Fig1aConfig parameterises the queue-size CDF motivation study (§II-B):
// a datacenter fabric under mixed traffic, observed at edge ports, for TCP
// Cubic and DCTCP. The paper uses a 128-node three-tier fat-tree (k = 8);
// the default here is a k = 4 fat-tree scaled for fast runs.
type Fig1aConfig struct {
	// FatTreeK selects a k-ary three-tier fat-tree (the paper's topology;
	// k = 8 reproduces its 128 hosts). Zero falls back to the leaf-spine
	// in Fabric.
	FatTreeK int
	// Fabric sizes the fallback leaf-spine topology.
	Fabric netsim.LeafSpineConfig
	// LinkRateBps applies to the fat-tree.
	LinkRateBps float64
	// Load is the offered load fraction.
	Load float64
	// Duration is the simulated time.
	Duration netsim.Time
	// ECNThresholdBytes is DCTCP's marking threshold.
	ECNThresholdBytes int
	// Seed drives the workload.
	Seed int64
}

// DefaultFig1aConfig returns a seconds-scale configuration: a k=4 fat-tree
// (16 hosts); set FatTreeK = 8 for the paper's 128-host fabric.
func DefaultFig1aConfig() Fig1aConfig {
	return Fig1aConfig{
		FatTreeK:          4,
		LinkRateBps:       10e9,
		Load:              0.6,
		Duration:          30 * netsim.Millisecond,
		ECNThresholdBytes: 30 * 1024,
		Seed:              11,
	}
}

// Fig1aRow is one protocol's queue-occupancy distribution at the observed
// edge port.
type Fig1aRow struct {
	// Protocol is "cubic" or "dctcp".
	Protocol string
	// Samples is the number of queue-depth observations.
	Samples int
	// FracBelow50KB/100KB/200KB are CDF points (the paper reports <200 KB
	// for 80% / 95% of time under Cubic / DCTCP).
	FracBelow50KB, FracBelow100KB, FracBelow200KB float64
	// P99Bytes is the 99th-percentile depth.
	P99Bytes int
}

// RunFig1a runs the mixed workload under Cubic and DCTCP and reports the
// queue-size CDF at an edge (leaf→host) port.
func RunFig1a(cfg Fig1aConfig) ([]Fig1aRow, error) {
	var rows []Fig1aRow
	for _, proto := range []netsim.CCVariant{netsim.Cubic, netsim.DCTCP} {
		var topo *netsim.Topology
		var hosts int
		var rate float64
		if cfg.FatTreeK > 0 {
			ft := netsim.FatTreeConfig{
				K: cfg.FatTreeK, LinkRateBps: cfg.LinkRateBps, LinkDelay: netsim.Microsecond,
			}
			var err error
			topo, err = netsim.BuildFatTree(ft)
			if err != nil {
				return nil, err
			}
			hosts, rate = ft.Hosts(), ft.LinkRateBps
		} else {
			topo = netsim.BuildLeafSpine(cfg.Fabric)
			hosts, rate = cfg.Fabric.Hosts(), cfg.Fabric.LinkRateBps
		}
		if proto == netsim.DCTCP {
			topo.SetECNThreshold(cfg.ECNThresholdBytes)
		}
		net := topo.Net
		rec := &netsim.QueueRecorder{}
		// The paper observes one edge port and notes similar behaviour at
		// the others; at this scaled-down fabric size we aggregate samples
		// across all edge (leaf→host) ports for statistical weight.
		for _, ports := range topo.DownPorts {
			for _, p := range ports {
				rec.Attach(p)
			}
		}

		wl := netsim.DefaultWorkload(cfg.Load, cfg.Duration, cfg.Seed)
		wl.ShortMin, wl.ShortMax = 1024, 16*1024 // paper: 1–16 KB shorts
		wl.LongSize = 4 * 1024 * 1024            // scaled from 64 MB
		flows := netsim.GenerateFlows(net, hosts, rate, wl)
		if err := netsim.StartAll(net, flows, netsim.NewWindowTransport(proto)); err != nil {
			return nil, err
		}
		net.Sim.Run(cfg.Duration * 2)

		row := Fig1aRow{
			Protocol:       proto.String(),
			Samples:        len(rec.Samples),
			FracBelow50KB:  rec.FractionBelow(50 * 1024),
			FracBelow100KB: rec.FractionBelow(100 * 1024),
			FracBelow200KB: rec.FractionBelow(200 * 1024),
		}
		if depths, frac := rec.CDF(); len(depths) > 0 {
			for i, f := range frac {
				if f >= 0.99 {
					row.P99Bytes = depths[i]
					break
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig1a formats the rows.
func RenderFig1a(rows []Fig1aRow) string {
	t := stats.NewTable("Fig 1a: queue size CDF at an edge port (paper: <200KB for 80%/95% of time)",
		"protocol", "samples", "<=50KB", "<=100KB", "<=200KB", "p99")
	for _, r := range rows {
		t.AddF(r.Protocol, r.Samples, stats.Pct(r.FracBelow50KB),
			stats.Pct(r.FracBelow100KB), stats.Pct(r.FracBelow200KB), stats.KB(r.P99Bytes))
	}
	return t.String()
}

// Fig1bConfig parameterises the packet inter-arrival study (§II-B): a
// dumbbell with a rate limiter whose limit halves during the run; despite
// the changes, inter-arrivals stay in a narrow band.
type Fig1bConfig struct {
	// LinkRateBps is the link speed (paper: 100 Gbps).
	LinkRateBps float64
	// InitialRateGbps is the first limit; it halves RateChanges times.
	InitialRateGbps uint64
	// RateChanges is how many times the limit halves.
	RateChanges int
	// Phase is the duration of each rate setting.
	Phase netsim.Time
	// Seed drives the workload.
	Seed int64
}

// DefaultFig1bConfig returns the paper's setup at reduced duration.
func DefaultFig1bConfig() Fig1bConfig {
	return Fig1bConfig{
		LinkRateBps:     100e9,
		InitialRateGbps: 80,
		RateChanges:     3,
		Phase:           2 * netsim.Millisecond,
		Seed:            12,
	}
}

// Fig1bResult summarises the inter-arrival distribution.
type Fig1bResult struct {
	// Gaps is the number of recorded inter-arrivals.
	Gaps int
	// P10, P50, P90 are gap quantiles.
	P10, P50, P90 netsim.Time
	// FracInBand is the fraction of gaps within [120ns, 360ns], the paper's
	// observed band.
	FracInBand float64
}

// RunFig1b measures packet inter-arrival times downstream of a rate limiter
// across three rate halvings.
func RunFig1b(cfg Fig1bConfig) (Fig1bResult, error) {
	topo := netsim.BuildDumbbell(netsim.DumbbellConfig{
		HostsPerSide:      1,
		AccessRateBps:     cfg.LinkRateBps,
		BottleneckRateBps: cfg.LinkRateBps,
		LinkDelay:         netsim.Microsecond,
	})
	net := topo.Net
	nim, err := apps.NewNimble(netsim.IdealArith{}, cfg.InitialRateGbps, 100*1500)
	if err != nil {
		return Fig1bResult{}, err
	}
	topo.CorePorts[0].Filter = nim
	rec := &netsim.InterArrivalRecorder{}
	rec.Attach(topo.CorePorts[0])

	// One long saturating flow.
	total := netsim.Time(cfg.RateChanges+1) * cfg.Phase
	size := int(cfg.LinkRateBps * total.Seconds() / 8)
	f := net.AddFlow(&netsim.Flow{Src: 0, Dst: 1, Size: size, Start: 0})
	if err := net.StartFlow(f, netsim.NewWindowTransport(netsim.DCTCP)); err != nil {
		return Fig1bResult{}, err
	}
	// Halve the limit at each phase boundary.
	rate := cfg.InitialRateGbps
	for i := 1; i <= cfg.RateChanges; i++ {
		i := i
		net.Sim.Schedule(netsim.Time(i)*cfg.Phase, func() {
			rate /= 2
			nim.SetRateGbps(rate)
		})
	}
	net.Sim.Run(total)

	res := Fig1bResult{
		Gaps: len(rec.Gaps),
		P10:  rec.Quantile(0.10),
		P50:  rec.Quantile(0.50),
		P90:  rec.Quantile(0.90),
	}
	if len(rec.Gaps) > 0 {
		in := 0
		for _, g := range rec.Gaps {
			if g >= 100*netsim.Nanosecond && g <= 400*netsim.Nanosecond {
				in++
			}
		}
		res.FracInBand = float64(in) / float64(len(rec.Gaps))
	}
	return res, nil
}

// RenderFig1b formats the result.
func RenderFig1b(r Fig1bResult) string {
	t := stats.NewTable("Fig 1b: packet inter-arrival CDF under a rate limiter (paper: 120–360ns band)",
		"gaps", "p10", "p50", "p90", "in 100-400ns band")
	t.AddF(r.Gaps, r.P10.String(), r.P50.String(), r.P90.String(), stats.Pct(r.FracInBand))
	return t.String()
}

// Fig1cConfig parameterises the rate-operand trace (§II-B): the rate-limit
// value the TCAM must look up is constant between control events.
type Fig1cConfig struct {
	// InitialRateGbps is the line-rate setting (paper: 94 Gbps).
	InitialRateGbps uint64
	// ChangeAt is when the rate halves (paper: 1 s; scaled here).
	ChangeAt netsim.Time
	// Duration is the total observation window.
	Duration netsim.Time
	// SampleEvery is the trace resolution.
	SampleEvery netsim.Time
}

// DefaultFig1cConfig returns the paper's setup at reduced duration.
func DefaultFig1cConfig() Fig1cConfig {
	return Fig1cConfig{
		InitialRateGbps: 94,
		ChangeAt:        2 * netsim.Millisecond,
		Duration:        4 * netsim.Millisecond,
		SampleEvery:     100 * netsim.Microsecond,
	}
}

// Fig1cPoint is one trace sample.
type Fig1cPoint struct {
	// At is the sample time.
	At netsim.Time
	// RateGbps is the operand value the TCAM would look up.
	RateGbps uint64
}

// RunFig1c produces the rate-operand trace: constant at 94 until the
// change, constant at 47 after — the working-set observation motivating
// range-bounded population.
func RunFig1c(cfg Fig1cConfig) []Fig1cPoint {
	var out []Fig1cPoint
	for at := netsim.Time(0); at < cfg.Duration; at += cfg.SampleEvery {
		rate := cfg.InitialRateGbps
		if at >= cfg.ChangeAt {
			rate = cfg.InitialRateGbps / 2
		}
		out = append(out, Fig1cPoint{At: at, RateGbps: rate})
	}
	return out
}

// Fig1cDistinctValues counts the distinct operand values in the trace — the
// paper's point: the TCAM only ever needs entries for this tiny working
// set.
func Fig1cDistinctValues(points []Fig1cPoint) int {
	seen := make(map[uint64]bool)
	for _, p := range points {
		seen[p.RateGbps] = true
	}
	return len(seen)
}

// RenderFig1c formats the trace summary.
func RenderFig1c(points []Fig1cPoint) string {
	t := stats.NewTable("Fig 1c: rate-limit operand over time (94 → 47 Gbps step)",
		"samples", "distinct operand values", "first", "last")
	if len(points) == 0 {
		return t.String()
	}
	t.AddF(len(points), Fig1cDistinctValues(points),
		fmt.Sprintf("%dGbps", points[0].RateGbps),
		fmt.Sprintf("%dGbps", points[len(points)-1].RateGbps))
	return t.String()
}
