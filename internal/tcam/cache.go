// Hot-key result cache for the typed batch lookup path.
//
// ADA's operand streams are heavily skewed — that is the premise the whole
// population scheme rests on — yet LookupIndexBatch pays a full search
// (range resolve, product grid, or trie walk) for every sample, including
// the same hot keys millions of times between control rounds. The mapping a
// committed round installs is immutable until the next snapshot change, so
// key → ordinal is safely memoizable: a LookupCache is a fixed-size,
// power-of-two, set-associative open-addressing cache in front of a store's
// LookupIndexBatch that serves repeat keys from RAM instead of re-searching
// the ternary structures (the CRAM/MashUp offload argument in software
// form).
//
// The cache stores snapshot ordinals, not payload values. That keeps every
// consumer exact: the ordinal still resolves through the same Payloads view
// the uncached path uses (so corrupt or untyped action data misses
// identically), and monitoring paths that account ordinals into registers
// can keep doing so per sample.
//
// Invalidation is wholesale and implicit. Entries are valid only for the
// snapshot generation they were filled under (see Snapshotter); on any
// mismatch the cache empties itself and refills against the new snapshot.
// Control rounds, audits, repairs, tier re-placement, tenant churn, and
// even silent tampering all advance the snapshot generation, so no caller
// ever needs an explicit flush and a generation bump can never serve stale
// results — the cachebench differential pins this across 500 rounds of
// churn, faults, and crash/restart.
//
// A LookupCache is caller-owned, like arith.Scratch: one per worker, no
// locks on the read path, never shared by concurrent callers. The backing
// store may be mutated concurrently — the generation check makes that safe.
package tcam

import (
	"math/bits"
	"unsafe"
)

// Snapshotter is the optional store surface the cache keys itself on: the
// current compiled snapshot's typed payload view plus a generation token
// that changes whenever that snapshot changes. Two calls returning the same
// token are guaranteed to describe the same immutable snapshot, so ordinals
// obtained under that token remain valid against the returned Payloads.
//
// The token is deliberately not Table.Generation(): the bulk-commit
// generation stands still across single-row writes, audit-discovered
// tampering, and tiered re-placement, all of which change what the data
// plane serves. The snapshot generation advances on every such change.
// *Table, *TieredStore, and tenant slices implement Snapshotter.
type Snapshotter interface {
	LookupSnapshot() (Payloads, uint64)
}

var (
	_ Snapshotter = (*Table)(nil)
	_ Snapshotter = (*TieredStore)(nil)
)

// CacheStats counts a LookupCache's traffic: Hits served from the cache,
// Misses forwarded to the store, and Invalidations (wholesale resets on a
// snapshot-generation change or a rebind to a different store).
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// cacheWays is the set associativity. Four ways packs a whole unary set —
// keys, ordinals, and hit counters — into a single 64-byte cache line while
// making pathological same-set key collisions cheap to absorb.
const cacheWays = 4

// The batch probe loop is unrolled for exactly cacheWays ways.
var _ [cacheWays - 4]struct{}
var _ [4 - cacheWays]struct{}

// cacheSet is one unary associativity set packed into exactly one 64-byte
// cache line: four keys, four ordinals, four hit counters, padding. The
// parallel-array layout this replaces kept keys, ordinals, and counters
// tens of kilobytes apart, so at realistic cache sizes every probe touched
// three L1-hostile lines; packed, a hit touches one.
//
// hits holds one saturating 8-bit counter per way — the admission currency.
// A probe hit earns the resident a point; an admission contest on a full
// set drains one point from the set's least-hit resident and replaces it
// only once it is broke. Hot residents earn faster than the tail can drain
// them, so occupancy converges on the Zipf hot set instead of churning on
// one-hit tail keys, while a resident that has gone cold is drained and
// displaced within a few batches — LFU pressure with built-in aging, no
// shared sketch to maintain.
type cacheSet struct {
	keys [cacheWays]uint64
	ords [cacheWays]int32
	hits [cacheWays]uint8
	_    [12]byte
}

// cacheSet must stay exactly one cache line.
var _ [64 - unsafe.Sizeof(cacheSet{})]byte
var _ [unsafe.Sizeof(cacheSet{}) - 64]byte

// emptySet is a freshly invalidated set: every way free, every counter zero.
var emptySet = cacheSet{keys: [cacheWays]uint64{emptyKey, emptyKey, emptyKey, emptyKey}}

// LookupCache fronts one store's LookupIndexBatch with a generation-keyed
// key → ordinal cache. Construct with NewLookupCache; the zero value is a
// valid pass-through (every call forwards to nothing useful), so callers
// always go through the constructor.
type LookupCache struct {
	store Store
	snap  Snapshotter // nil: store cannot be cached, pass through
	arity int         // 1 (unary) or 2 (binary product-grid keys)

	shift uint       // 64 - log2(sets); hashes map to a set index
	sets  []cacheSet // unary layout: one packed cache line per set
	gen   uint64     // snapshot generation the live entries were filled under

	// Binary product-grid layout: a two-word key quadruplet does not fit
	// the packed 64-byte line, and the binary path is not the hot one, so
	// it keeps parallel arrays. ords holds ordinals verbatim (−1 is a
	// cached store miss); emptyKey in keys marks a free way; hits is the
	// per-way admission counter described on cacheSet.
	keys []uint64
	ords []int32
	hits []uint8

	stats CacheStats

	// fallback scratch: the keys of one batch that missed the cache, their
	// positions in the batch, the set base their probe already computed,
	// and the store's ordinals for them.
	missFlat []uint64
	missPos  []int32
	missSlot []int32
	missOrds []int32
}

// emptyKey marks an unoccupied way. All-ones cannot be a real key for any
// field narrower than 64 bits, so probes test occupancy and key equality in
// one compare; stores with a full-width 64-bit field fall back to
// pass-through rather than lose that code point.
const emptyKey = ^uint64(0)

// NewLookupCache builds a cache of at least `entries` slots (rounded up to
// a power of two, minimum one set of cacheWays ways) in front of store. A
// store that does not implement Snapshotter, has more than two key fields,
// or has a 64-bit key field, yields a pass-through cache: LookupIndexBatch
// forwards verbatim and Stats stays zero. entries <= 0 also yields a
// pass-through.
func NewLookupCache(store Store, entries int) *LookupCache {
	widths := store.FieldWidths()
	c := &LookupCache{store: store, arity: len(widths)}
	snap, ok := store.(Snapshotter)
	if !ok || entries <= 0 || c.arity < 1 || c.arity > 2 {
		return c
	}
	for _, w := range widths {
		if w >= 64 {
			return c
		}
	}
	if entries < cacheWays {
		entries = cacheWays
	}
	slots := 1 << bits.Len(uint(entries-1)) // next power of two
	sets := slots / cacheWays
	c.snap = snap
	c.shift = uint(64 - bits.Len(uint(sets-1)))
	if c.arity == 1 {
		c.sets = make([]cacheSet, sets)
		for i := range c.sets {
			c.sets[i] = emptySet
		}
		return c
	}
	c.keys = make([]uint64, slots*2)
	for i := range c.keys {
		c.keys[i] = emptyKey
	}
	c.ords = make([]int32, slots)
	c.hits = make([]uint8, slots)
	return c
}

// Store returns the backing store the cache fronts.
func (c *LookupCache) Store() Store { return c.store }

// Enabled reports whether lookups can actually be served from the cache
// (the store implements Snapshotter and a positive size was requested).
func (c *LookupCache) Enabled() bool { return c != nil && c.snap != nil }

// Len returns the slot count (0 for a pass-through cache).
func (c *LookupCache) Len() int {
	if c.arity == 1 {
		return len(c.sets) * cacheWays
	}
	return len(c.ords)
}

// Stats returns the cumulative hit/miss/invalidation counters.
func (c *LookupCache) Stats() CacheStats { return c.stats }

// hash mixes a packed key tuple into a full-width hash. Fibonacci-style odd
// multipliers spread the low operand bits the benchmarks concentrate on
// across the whole word; the top bits select the set, middle bits index the
// admission bitmap.
func (c *LookupCache) hash(k0, k1 uint64) uint64 {
	h := k0 * 0x9E3779B97F4A7C15
	if c.arity == 2 {
		h ^= (k1 + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	}
	return h
}

// invalidate empties the cache wholesale and rebases it on generation gen.
// keys is the only validity marker (emptyKey = free), so one sweep
// re-marking every way suffices; stale ordinals under an empty key are
// never read.
func (c *LookupCache) invalidate(gen uint64) {
	for i := range c.sets {
		c.sets[i] = emptySet
	}
	for i := range c.keys {
		c.keys[i] = emptyKey
	}
	clear(c.hits)
	c.gen = gen
	c.stats.Invalidations++
}

// probe looks one binary key pair up, returning (ordinal, true) on a hit.
// Cached store misses (ordinal −1) are hits too. A hit bumps the way's hit
// counter, which is what keeps hot residents in place: admission contests
// drain it. A free way holds emptyKey, which no real key equals, so the key
// compare alone decides. The unary probe is open-coded in LookupIndexBatch
// against the packed cacheSet layout.
func (c *LookupCache) probe(k0, k1 uint64) (int32, bool) {
	slot := int(c.hash(k0, k1)>>c.shift) * cacheWays
	for w := slot; w < slot+cacheWays; w++ {
		if c.keys[2*w] == k0 && c.keys[2*w+1] == k1 {
			c.bumpHit(w)
			return c.ords[w], true
		}
	}
	return 0, false
}

// transpose promotes the resident at way w one way towards the front of
// its set, swapping with its neighbour. Hits dominate skewed traffic, so
// the hottest residents settle in the first ways and the common probe exits
// after one key compare; promoting by a single position (rather than
// move-to-front) keeps two hot keys sharing a set from ping-ponging.
func (st *cacheSet) transpose(w int) {
	st.keys[w], st.keys[w-1] = st.keys[w-1], st.keys[w]
	st.ords[w], st.ords[w-1] = st.ords[w-1], st.ords[w]
	st.hits[w], st.hits[w-1] = st.hits[w-1], st.hits[w]
}

// bump credits a resident's hit counter for a probe hit. Sampling (every
// k-th hit) was tried here and rejected: thinning the bumps measurably
// weakens the admission signal (hit rate drops 1.5–4.5 points on Zipf
// streams), costing more in extra store searches than the skipped counter
// writes save. A wider TinyLFU-style frequency sketch shared with
// non-residents was likewise tried and rejected: its random 64 KB counter
// access on every hit cost more than its extra hit-rate bought back.
func (st *cacheSet) bump(w int) {
	if f := &st.hits[w]; *f < 255 {
		*f++
	}
}

// bumpHit is bump for the binary parallel-array layout.
func (c *LookupCache) bumpHit(w int) {
	if f := &c.hits[w]; *f < 255 {
		*f++
	}
}

// insert fills (or refreshes) one key tuple's ordinal. An empty way is
// taken freely, but evicting from a full set is an admission contest:
// under a Zipf tail every miss wants in, and unconditional replacement
// would turn the whole cache over between batches, evicting the hot set it
// exists to keep. Instead each contest drains one hit point from the set's
// least-hit resident and admits the newcomer only once that resident is
// broke. One-hit tail keys nudge a counter and leave; a resident serving
// real hits earns points faster than the tail can drain them, while a
// resident that has gone cold drains to zero and is displaced within a few
// batches — LFU pressure with built-in aging, no shared sketch to maintain.
func (c *LookupCache) insert(k0, k1 uint64, ord int32) {
	slot := int(c.hash(k0, k1)>>c.shift) * cacheWays
	victim := -1
	for w := slot; w < slot+cacheWays; w++ {
		switch {
		case c.keys[2*w] == emptyKey:
			if victim < 0 {
				victim = w
			}
		case c.keys[2*w] == k0 && c.keys[2*w+1] == k1:
			c.ords[w] = ord
			return
		}
	}
	if victim < 0 {
		vh := uint8(255)
		for w := slot; w < slot+cacheWays; w++ {
			if wh := c.hits[w]; wh < vh {
				victim, vh = w, wh
			}
		}
		if vh > 0 {
			c.hits[victim] = vh - 1
			return
		}
	}
	c.keys[2*victim], c.keys[2*victim+1] = k0, k1
	c.ords[victim] = ord
	c.hits[victim] = 0
}

// LookupIndexBatch is the cached drop-in for Store.LookupIndexBatch: same
// packed-key input, same dense-ordinal output, same ordinal/payload pairing
// contract, bit-identical results. Keys whose ordinal is cached under the
// current snapshot generation skip the store search entirely (misses are
// cached too); the rest resolve through one store batch lookup and refill
// the cache. If the snapshot generation moves mid-batch — a control round
// committing under a concurrent reader — the whole batch re-resolves
// uncached against one store snapshot, exactly what the uncached path would
// have served.
func (c *LookupCache) LookupIndexBatch(flat []uint64, dst []int32) ([]int32, Payloads) {
	if c.snap == nil {
		return c.store.LookupIndexBatch(flat, dst)
	}
	arity := c.arity
	n := len(flat) / arity
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int32, n)
	}
	pay, gen := c.snap.LookupSnapshot()
	if gen != c.gen {
		c.invalidate(gen)
	}
	if cap(c.missFlat) >= n*arity {
		c.missFlat = c.missFlat[:n*arity]
	} else {
		c.missFlat = make([]uint64, n*arity)
	}
	if cap(c.missPos) >= n {
		c.missPos = c.missPos[:n]
		c.missSlot = c.missSlot[:n]
	} else {
		c.missPos = make([]int32, n)
		c.missSlot = make([]int32, n)
	}
	nm := 0
	if arity == 1 {
		// The unary probe is open-coded and unrolled here: at millions of
		// samples per second the call, the tuple return, and append's
		// capacity checks are measurable, and this loop is the whole point
		// of the cache. One compare per way decides — a free way holds
		// emptyKey, which no real key equals.
		//
		// Each key has two candidate sets (two independent odd-multiplier
		// hashes). With one hash the hot keys land in sets Poisson(4)-style
		// and every overflow past cacheWays is an unavoidable conflict
		// miss; the second choice gives an overflowing key an independently
		// placed second home, recovering most of that lost hit rate for two
		// extra compares on the (already expensive) miss path. The binary
		// product-grid path below stays single-hashed — its axes are only
		// √budget deep, so its store searches are cheap enough that extra
		// probe work isn't worth it.
		sets, shift := c.sets, c.shift
		mask := uint64(len(sets) - 1)
		for i, k0 := range flat {
			// The mask is an identity (the shifted hash is already a set
			// index) that lets the compiler drop the bounds checks on the
			// set accesses; way indices are constants into fixed arrays.
			si := (k0 * 0x9E3779B97F4A7C15) >> shift & mask
			st := &sets[si]
			if st.keys[0] == k0 {
				dst[i] = st.ords[0]
				st.bump(0)
				continue
			}
			if st.keys[1] == k0 {
				dst[i] = st.ords[1]
				st.bump(1)
				st.transpose(1)
				continue
			}
			if st.keys[2] == k0 {
				dst[i] = st.ords[2]
				st.bump(2)
				st.transpose(2)
				continue
			}
			if st.keys[3] == k0 {
				dst[i] = st.ords[3]
				st.bump(3)
				st.transpose(3)
				continue
			}
			si2 := (k0 * 0xD6E8FEB86659FD93) >> shift & mask
			st2 := &sets[si2]
			if st2.keys[0] == k0 {
				dst[i] = st2.ords[0]
				st2.bump(0)
				continue
			}
			if st2.keys[1] == k0 {
				dst[i] = st2.ords[1]
				st2.bump(1)
				st2.transpose(1)
				continue
			}
			if st2.keys[2] == k0 {
				dst[i] = st2.ords[2]
				st2.bump(2)
				st2.transpose(2)
				continue
			}
			if st2.keys[3] == k0 {
				dst[i] = st2.ords[3]
				st2.bump(3)
				st2.transpose(3)
				continue
			}
			// Admission is decided now, while both candidate lines are
			// still in L1: the store walk over the miss buffer evicts
			// them, so a fill-time decision pays extra cache misses per
			// miss. missSlot records the chosen global way — a free way in
			// either set, else the least-hit way across both — or -1 when
			// drain-LFU rejects (the victim's counter is decremented here;
			// the fill loop then skips the entry entirely, which in steady
			// state is most cold misses).
			slot := -1
			switch emptyKey {
			case st.keys[0]:
				slot = int(si) * cacheWays
			case st.keys[1]:
				slot = int(si)*cacheWays + 1
			case st.keys[2]:
				slot = int(si)*cacheWays + 2
			case st.keys[3]:
				slot = int(si)*cacheWays + 3
			case st2.keys[0]:
				slot = int(si2) * cacheWays
			case st2.keys[1]:
				slot = int(si2)*cacheWays + 1
			case st2.keys[2]:
				slot = int(si2)*cacheWays + 2
			case st2.keys[3]:
				slot = int(si2)*cacheWays + 3
			default:
				v, vh := int(si)*cacheWays, st.hits[0]
				if h := st.hits[1]; h < vh {
					v, vh = int(si)*cacheWays+1, h
				}
				if h := st.hits[2]; h < vh {
					v, vh = int(si)*cacheWays+2, h
				}
				if h := st.hits[3]; h < vh {
					v, vh = int(si)*cacheWays+3, h
				}
				if h := st2.hits[0]; h < vh {
					v, vh = int(si2)*cacheWays, h
				}
				if h := st2.hits[1]; h < vh {
					v, vh = int(si2)*cacheWays+1, h
				}
				if h := st2.hits[2]; h < vh {
					v, vh = int(si2)*cacheWays+2, h
				}
				if h := st2.hits[3]; h < vh {
					v, vh = int(si2)*cacheWays+3, h
				}
				if vh > 0 {
					sets[v/cacheWays].hits[v%cacheWays] = vh - 1
				} else {
					slot = v
				}
			}
			c.missFlat[nm] = k0
			c.missPos[nm] = int32(i)
			c.missSlot[nm] = int32(slot)
			nm++
		}
	} else {
		for i := 0; i < n; i++ {
			k0, k1 := flat[2*i], flat[2*i+1]
			if ord, ok := c.probe(k0, k1); ok {
				dst[i] = ord
				continue
			}
			c.missFlat[2*nm], c.missFlat[2*nm+1] = k0, k1
			c.missPos[nm] = int32(i)
			nm++
		}
	}
	c.missFlat = c.missFlat[:nm*arity]
	c.missPos = c.missPos[:nm]
	c.stats.Hits += uint64(n - nm)
	c.stats.Misses += uint64(nm)
	if nm == 0 {
		return dst, pay
	}
	mords, _ := c.store.LookupIndexBatch(c.missFlat, c.missOrds)
	c.missOrds = mords
	if _, gen2 := c.snap.LookupSnapshot(); gen2 != gen {
		// The snapshot moved between the probe pass and the store lookup:
		// cached ordinals and fresh ordinals would mix two snapshots. Serve
		// the whole batch from one uncached store call instead and drop the
		// stale fill (the next batch re-bases on the new generation).
		c.invalidate(gen2)
		return c.store.LookupIndexBatch(flat, dst)
	}
	if arity == 1 {
		for j, p := range c.missPos {
			ord := mords[j]
			dst[p] = ord
			if slot := int(c.missSlot[j]); slot >= 0 {
				st := &c.sets[slot/cacheWays]
				w := slot % cacheWays
				st.keys[w] = c.missFlat[j]
				st.ords[w] = ord
				st.hits[w] = 0
			}
		}
	} else {
		for j, p := range c.missPos {
			ord := mords[j]
			dst[p] = ord
			c.insert(c.missFlat[2*j], c.missFlat[2*j+1], ord)
		}
	}
	return dst, pay
}
