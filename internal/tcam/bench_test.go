package tcam

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func benchTable(b *testing.B, entries int) *Table {
	b.Helper()
	tb := MustNew("bench", 0, 32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < entries; i++ {
		sig := 8 + rng.Intn(24)
		p, err := bitstr.New(rng.Uint64()&0xFFFFFFFF, sig, 32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.InsertPrefix(p, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func benchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() & 0xFFFFFFFF
	}
	return keys
}

// scanLookup replicates the pre-index serialized read path: a full linear
// scan over the resolution-ordered entries under the table's write lock.
// The indexed benchmarks below are measured against this baseline.
func scanLookup(tb *Table, keys ...uint64) (*Entry, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for _, e := range tb.ordered {
		if matchAll(e.Fields, keys) {
			return e, true
		}
	}
	return nil, false
}

func benchmarkLookup(b *testing.B, entries int) {
	tb := benchTable(b, entries)
	keys := benchKeys(1024)
	tb.Lookup(keys[0]) // compile the index outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(keys[i%len(keys)])
	}
}

func benchmarkLookupScan(b *testing.B, entries int) {
	tb := benchTable(b, entries)
	keys := benchKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanLookup(tb, keys[i%len(keys)])
	}
}

func BenchmarkLookup128(b *testing.B)  { benchmarkLookup(b, 128) }
func BenchmarkLookup1024(b *testing.B) { benchmarkLookup(b, 1024) }
func BenchmarkLookup8192(b *testing.B) { benchmarkLookup(b, 8192) }

func BenchmarkLookupScan128(b *testing.B)  { benchmarkLookupScan(b, 128) }
func BenchmarkLookupScan1024(b *testing.B) { benchmarkLookupScan(b, 1024) }
func BenchmarkLookupScan8192(b *testing.B) { benchmarkLookupScan(b, 8192) }

// BenchmarkLookupParallel measures concurrent read scaling: the indexed
// path resolves against a shared immutable snapshot, so throughput should
// grow near-linearly with GOMAXPROCS (use -cpu 1,2,4 to see the curve).
func BenchmarkLookupParallel1024(b *testing.B) {
	tb := benchTable(b, 1024)
	keys := benchKeys(1024)
	tb.Lookup(keys[0])
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tb.Lookup(keys[i%len(keys)])
			i++
		}
	})
}

func BenchmarkLookupBatch1024(b *testing.B) {
	tb := benchTable(b, 1024)
	keys := benchKeys(1024)
	var dst []*Entry
	tb.Lookup(keys[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tb.LookupSingleBatch(keys, dst)
	}
	_ = dst
}

func BenchmarkApplyRowsNoChange(b *testing.B) {
	tb := MustNew("bench", 0, 16)
	rows := make([]Row, 0, 64)
	root, _ := bitstr.Root(16)
	for i, p := range subdivideForBench(root, 64) {
		rows = append(rows, RowFromPrefix(p, uint64(i)))
	}
	if _, err := tb.ApplyRows(rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.ApplyRows(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// subdivideForBench avoids importing population (cycle-free helper).
func subdivideForBench(p bitstr.Prefix, m int) []bitstr.Prefix {
	out := []bitstr.Prefix{p}
	for len(out) < m {
		best, bestWild := -1, 0
		for i, q := range out {
			if q.WildBits() > bestWild {
				best, bestWild = i, q.WildBits()
			}
		}
		if best < 0 {
			break
		}
		l, _ := out[best].Left()
		r, _ := out[best].Right()
		out[best] = l
		out = append(out, r)
	}
	return out
}

// benchTieredPair builds a tiered store (tcamRows hot slots) and a pure
// table holding the same `entries`-row disjoint tiling — the matched
// populations the tiered-vs-table lookup benchmarks compare.
func benchTieredPair(b *testing.B, tcamRows, entries, width int) (*TieredStore, *Table) {
	b.Helper()
	root, err := bitstr.Root(width)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]Row, 0, entries)
	for i, p := range subdivideForBench(root, entries) {
		rows = append(rows, RowFromPrefix(p, uint64(1000+i)))
	}
	ts, err := NewTiered("bench-tiered", tcamRows, 0, width)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		b.Fatal(err)
	}
	tb := MustNew("bench-table", 0, width)
	if _, err := tb.ApplyRowsAtomic(rows); err != nil {
		b.Fatal(err)
	}
	return ts, tb
}

func benchWidthKeys(n, width int) []uint64 {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() & (1<<uint(width) - 1)
	}
	return keys
}

// benchmarkTieredIndexBatch measures the tiered combined-snapshot ordinal
// path: a 128-row TCAM tier fronting an `entries`-row population, against
// BenchmarkTableIndexBatch* on the identical population in a pure table.
func benchmarkTieredIndexBatch(b *testing.B, entries int) {
	const width = 16
	ts, _ := benchTieredPair(b, 128, entries, width)
	keys := benchWidthKeys(1024, width)
	var dst []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = ts.LookupIndexBatch(keys, dst)
	}
}

func benchmarkTableIndexBatch(b *testing.B, entries int) {
	const width = 16
	_, tb := benchTieredPair(b, 128, entries, width)
	keys := benchWidthKeys(1024, width)
	var dst []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tb.LookupIndexBatch(keys, dst)
	}
}

func BenchmarkTieredIndexBatch128(b *testing.B)  { benchmarkTieredIndexBatch(b, 128) }
func BenchmarkTieredIndexBatch1280(b *testing.B) { benchmarkTieredIndexBatch(b, 1280) }
func BenchmarkTableIndexBatch128(b *testing.B)   { benchmarkTableIndexBatch(b, 128) }
func BenchmarkTableIndexBatch1280(b *testing.B)  { benchmarkTableIndexBatch(b, 1280) }

// BenchmarkTieredSingleBatch covers the satellite fix: the single-field
// tiered batch path must be allocation-free like the Table path.
func BenchmarkTieredSingleBatch1280(b *testing.B) {
	const width = 16
	ts, _ := benchTieredPair(b, 128, 1280, width)
	keys := benchWidthKeys(1024, width)
	var dst []*Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ts.LookupSingleBatch(keys, dst)
	}
}

// benchCacheBatch draws one skewed 4096-key batch over the bench table's
// 32-bit domain: 7 of 8 draws come from a 64-key hot set, the rest are
// uniform tail — roughly the per-batch repeat mass of a Zipf s≈1.1 stream,
// which is the regime the cache is designed for.
func benchCacheBatch() []uint64 {
	rng := rand.New(rand.NewSource(3))
	hot := make([]uint64, 64)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	flat := make([]uint64, 4096)
	for i := range flat {
		if rng.Intn(8) > 0 {
			flat[i] = hot[rng.Intn(len(hot))]
		} else {
			flat[i] = rng.Uint64() & 0xFFFFFFFF
		}
	}
	return flat
}

// BenchmarkLookupCacheBatch4096 is the cached typed batch path on a skewed
// stream: one warm LookupCache in front of the compiled table index. Run
// with -benchmem — steady state must report 0 allocs/op; an allocation here
// is a hot-path regression (the CI short-bench job runs exactly this).
func BenchmarkLookupCacheBatch4096(b *testing.B) {
	tb := benchTable(b, 1024)
	flat := benchCacheBatch()
	c := NewLookupCache(tb, 4096)
	var dst []int32
	dst, _ = c.LookupIndexBatch(flat, dst) // warm: compile index, fill cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = c.LookupIndexBatch(flat, dst)
	}
}

// BenchmarkLookupCacheUncached4096 is the same batch resolved directly by
// the store — the baseline the cached benchmark above is read against.
func BenchmarkLookupCacheUncached4096(b *testing.B) {
	tb := benchTable(b, 1024)
	flat := benchCacheBatch()
	var dst []int32
	dst, _ = tb.LookupIndexBatch(flat, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tb.LookupIndexBatch(flat, dst)
	}
}
