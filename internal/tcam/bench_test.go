package tcam

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func benchTable(b *testing.B, entries int) *Table {
	b.Helper()
	tb := MustNew("bench", 0, 32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < entries; i++ {
		sig := 8 + rng.Intn(24)
		p, err := bitstr.New(rng.Uint64()&0xFFFFFFFF, sig, 32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.InsertPrefix(p, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkLookup128(b *testing.B) {
	tb := benchTable(b, 128)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = rng.Uint64() & 0xFFFFFFFF
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkLookup1024(b *testing.B) {
	tb := benchTable(b, 1024)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = rng.Uint64() & 0xFFFFFFFF
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkApplyRowsNoChange(b *testing.B) {
	tb := MustNew("bench", 0, 16)
	rows := make([]Row, 0, 64)
	root, _ := bitstr.Root(16)
	for i, p := range subdivideForBench(root, 64) {
		rows = append(rows, RowFromPrefix(p, uint64(i)))
	}
	if _, err := tb.ApplyRows(rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.ApplyRows(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// subdivideForBench avoids importing population (cycle-free helper).
func subdivideForBench(p bitstr.Prefix, m int) []bitstr.Prefix {
	out := []bitstr.Prefix{p}
	for len(out) < m {
		best, bestWild := -1, 0
		for i, q := range out {
			if q.WildBits() > bestWild {
				best, bestWild = i, q.WildBits()
			}
		}
		if best < 0 {
			break
		}
		l, _ := out[best].Left()
		r, _ := out[best].Right()
		out[best] = l
		out = append(out, r)
	}
	return out
}
