// Compiled read path: a per-version match index swapped in via
// atomic.Pointer so Lookup never takes the table lock.
//
// The hardware TCAM resolves every key in O(1); the software model used to
// pay an O(entries) scan under an exclusive lock per lookup. The index
// compiles the installed entries into a nested binary trie — one trie level
// per key field, walked MSB-first along the key bits — so a lookup costs
// O(total key width) node visits regardless of table size, and any number of
// goroutines can resolve concurrently against the same immutable snapshot.
//
// Resolution is unchanged: every entry whose field prefixes contain the key
// lies on the walked paths, and candidates are compared with the same
// (sig desc, priority desc, seq asc) order the reference scan uses, so the
// index returns bit-identical winners (the differential tests in
// index_test.go pin this against LookupAll).
//
// Entries with a non-prefix ternary mask (wildcard bits above significant
// bits) cannot be trie-indexed; such tables compile to an immutable
// resolution-ordered snapshot that is linearly scanned — still lock-free,
// same cost as the old path. Every population scheme in this repo emits
// prefix masks, so the fallback exists only for API completeness.
package tcam

import "math/bits"

// idxNode is one trie node. For the last key field, entry holds the best
// (resolution-order first) entry terminating at this node; for earlier
// fields, next roots the trie over the following field for entries whose
// current-field prefix ends here.
type idxNode struct {
	child [2]*idxNode
	next  *idxNode
	entry *Entry
}

// index is an immutable compiled snapshot of the table at one version.
// A snapshot is built entirely under the table's read lock, so it is always
// a committed generation — never a torn intermediate state.
type index struct {
	version uint64
	widths  []int
	root    *idxNode // nil when linear is set
	linear  []*Entry // resolution-ordered fallback for non-prefix masks
}

// lowMask returns a mask with the low n bits set, handling n >= 64.
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// maskIsPrefix reports whether mask selects a contiguous run of the top
// bits of a width-bit field (the LPM shape the trie can index).
func maskIsPrefix(mask uint64, width int) bool {
	sig := bits.OnesCount64(mask)
	return mask == lowMask(width)&^lowMask(width-sig)
}

// buildIndex compiles a resolution-ordered entry list. Entries are copied
// into the snapshot so later UpdateData/ApplyRows mutations of the live
// entries can never race with a reader holding an old snapshot.
func buildIndex(version uint64, widths []int, ordered []*Entry) *index {
	ix := &index{version: version, widths: widths}
	trieable := true
	for _, e := range ordered {
		for f, fd := range e.Fields {
			if !maskIsPrefix(fd.Mask, widths[f]) {
				trieable = false
				break
			}
		}
		if !trieable {
			break
		}
	}
	if !trieable {
		ix.linear = make([]*Entry, len(ordered))
		for i, e := range ordered {
			c := *e
			ix.linear[i] = &c
		}
		return ix
	}
	ix.root = &idxNode{}
	for _, e := range ordered {
		c := *e
		ix.insert(&c)
	}
	return ix
}

// insert threads one entry through the nested trie. ordered iteration means
// the first entry reaching a terminal node is the best one for that exact
// match key, so later arrivals (same fields, lower resolution rank) are
// dropped here and never visited at lookup time.
func (ix *index) insert(e *Entry) {
	n := ix.root
	last := len(e.Fields) - 1
	for f, fd := range e.Fields {
		w := ix.widths[f]
		sig := bits.OnesCount64(fd.Mask)
		for i := 0; i < sig; i++ {
			b := (fd.Value >> uint(w-1-i)) & 1
			if n.child[b] == nil {
				n.child[b] = &idxNode{}
			}
			n = n.child[b]
		}
		if f == last {
			break
		}
		if n.next == nil {
			n.next = &idxNode{}
		}
		n = n.next
	}
	if n.entry == nil {
		n.entry = e
	}
}

// lookup resolves keys (already arity-checked by the caller) to the winning
// entry, or nil on a miss.
func (ix *index) lookup(keys []uint64) *Entry {
	if ix.linear != nil || ix.root == nil {
		for _, e := range ix.linear {
			if matchAll(e.Fields, keys) {
				return e
			}
		}
		return nil
	}
	return ix.walk(ix.root, 0, keys)
}

// walk descends field f's trie along the key's bit path. Every node on the
// path corresponds to one prefix of the key present in the table; terminal
// candidates are compared with the same order the reference scan uses.
func (ix *index) walk(n *idxNode, f int, keys []uint64) *Entry {
	key, w := keys[f], ix.widths[f]
	lastField := f == len(ix.widths)-1
	var best *Entry
	for depth := 0; ; depth++ {
		if lastField {
			if n.entry != nil && (best == nil || less(n.entry, best)) {
				best = n.entry
			}
		} else if n.next != nil {
			if e := ix.walk(n.next, f+1, keys); e != nil && (best == nil || less(e, best)) {
				best = e
			}
		}
		if depth == w {
			return best
		}
		b := (key >> uint(w-1-depth)) & 1
		if n.child[b] == nil {
			return best
		}
		n = n.child[b]
	}
}
