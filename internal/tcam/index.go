// Compiled read path: a per-version match index swapped in via
// atomic.Pointer so Lookup never takes the table lock.
//
// The hardware TCAM resolves every key in O(1); the software model used to
// pay an O(entries) scan under an exclusive lock per lookup. The index
// compiles the installed entries into a nested binary trie — one trie level
// per key field, walked MSB-first along the key bits — so a lookup costs
// O(total key width) node visits regardless of table size, and any number of
// goroutines can resolve concurrently against the same immutable snapshot.
//
// Resolution is unchanged: every entry whose field prefixes contain the key
// lies on the walked paths, and candidates are compared with the same
// (sig desc, priority desc, seq asc) order the reference scan uses, so the
// index returns bit-identical winners (the differential tests in
// index_test.go pin this against LookupAll).
//
// Two further compilations serve the zero-allocation hot path:
//
//   - Every snapshot assigns each entry a dense ordinal (its position in
//     resolution order) and, when all action data is integral, a typed
//     payload array payload[ordinal], so batch callers receive plain int32
//     ordinals and resolve results without per-sample interface assertions
//     (see Table.LookupIndexBatch and Payloads).
//   - Tables whose per-field prefixes are pairwise disjoint — monitoring
//     bins tile the domain, calculation populations are trie leaves, and
//     joint binary populations are cross products of two tilings — compile
//     each field to a rangeSet: a dense lookup table (one indexed load per
//     key, no branches to mispredict) when the field is narrow, a sorted
//     range array searched by predecessor otherwise. A single-field lookup
//     is then one resolve; a two-field lookup is two resolves plus a load
//     from a #Xprefixes×#Yprefixes grid of winning ordinals. At most one
//     entry can match a key per disjoint field set, so results are
//     trivially bit-identical to the reference resolution; any overlap
//     (nested prefixes, duplicates) leaves the trie path in place.
//
// Entries with a non-prefix ternary mask (wildcard bits above significant
// bits) cannot be trie-indexed; such tables compile to an immutable
// resolution-ordered snapshot that is linearly scanned — still lock-free,
// same cost as the old path. Every population scheme in this repo emits
// prefix masks, so the fallback exists only for API completeness.
package tcam

import "math/bits"

// idxNode is one trie node. For the last key field, entry holds the best
// (resolution-order first) entry terminating at this node; for earlier
// fields, next roots the trie over the following field for entries whose
// current-field prefix ends here.
type idxNode struct {
	child [2]*idxNode
	next  *idxNode
	entry *Entry
}

// index is an immutable compiled snapshot of the table at one version.
// A snapshot is built entirely under the table's read lock, so it is always
// a committed generation — never a torn intermediate state.
type index struct {
	version uint64
	widths  []int
	root    *idxNode // nil when linear is set
	linear  bool     // scan entries in order: fallback for non-prefix masks

	// entries holds the snapshot's entry copies in resolution order; an
	// entry's ordinal (Entry.ord) is its position here.
	entries []*Entry
	// payload is the dense typed action-data array, payload[ordinal], valid
	// when typed is set (every entry's Data is a uint64 or non-negative int).
	payload []uint64
	typed   bool

	// Disjoint-prefix fast paths. rset resolves a single-field table
	// straight to ordinals. For two-field tables, rsetX/rsetY resolve each
	// key to its field's prefix slot and grid[slotX*gridNY+slotY] holds the
	// winning ordinal (−1 where no entry pairs the two prefixes). All stay
	// nil when any field's prefixes overlap, keeping the trie path.
	rset         *rangeSet
	rsetX, rsetY *rangeSet
	grid         []int32
	gridNY       int
}

// lutMaxBits bounds the dense-LUT form of a rangeSet: a field up to 16 bits
// compiles to at most a 256 KiB int32 table, built in one pass over the
// domain at snapshot-compile time (mutation-rate work, not lookup-rate).
const lutMaxBits = 16

// rangeSet is one field's compiled disjoint prefix set. resolve maps a key
// to the owning prefix's slot, or −1 for a miss. Narrow fields use the
// dense lut (a single indexed load — nothing for the branch predictor to
// miss); wide fields binary-search the sorted range bounds.
type rangeSet struct {
	mask   uint64
	lut    []int32
	lo, hi []uint64
	slot   []int32
}

// resolve maps a key to its slot or −1. Key bits above the field width are
// ignored, matching Field.Matches and the trie walk.
func (r *rangeSet) resolve(key uint64) int32 {
	key &= r.mask
	if r.lut != nil {
		return r.lut[key]
	}
	lo := r.lo
	base, n := 0, len(lo)
	for n > 1 {
		half := n >> 1
		if lo[base+half] <= key {
			base += half
		}
		n -= half
	}
	if lo[base] > key || key > r.hi[base] {
		return -1
	}
	return r.slot[base]
}

// buildRangeSet compiles [lo[i], hi[i]] → slot[i] after verifying the
// ranges are pairwise disjoint; it returns nil when they overlap. The
// inputs are insertion-sorted in place by range start (prefix sets arrive
// nearly sorted and stay TCAM-scale).
func buildRangeSet(width int, lo, hi []uint64, slot []int32) *rangeSet {
	n := len(lo)
	if n == 0 {
		return nil
	}
	for i := 1; i < n; i++ {
		l, h, s := lo[i], hi[i], slot[i]
		j := i - 1
		for j >= 0 && lo[j] > l {
			lo[j+1], hi[j+1], slot[j+1] = lo[j], hi[j], slot[j]
			j--
		}
		lo[j+1], hi[j+1], slot[j+1] = l, h, s
	}
	for i := 1; i < n; i++ {
		if lo[i] <= hi[i-1] {
			return nil // overlapping prefixes: LPM resolution needs the trie
		}
	}
	r := &rangeSet{mask: lowMask(width), lo: lo, hi: hi, slot: slot}
	if width <= lutMaxBits {
		lut := make([]int32, 1<<uint(width))
		for i := range lut {
			lut[i] = -1
		}
		for i := 0; i < n; i++ {
			for k := lo[i]; k <= hi[i]; k++ {
				lut[k] = slot[i]
			}
		}
		r.lut = lut
		r.lo, r.hi, r.slot = nil, nil, nil
	}
	return r
}

// lowMask returns a mask with the low n bits set, handling n >= 64.
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// maskIsPrefix reports whether mask selects a contiguous run of the top
// bits of a width-bit field (the LPM shape the trie can index).
func maskIsPrefix(mask uint64, width int) bool {
	sig := bits.OnesCount64(mask)
	return mask == lowMask(width)&^lowMask(width-sig)
}

// buildIndex compiles a resolution-ordered entry list. Entries are copied
// into the snapshot so later UpdateData/ApplyRows mutations of the live
// entries can never race with a reader holding an old snapshot.
func buildIndex(version uint64, widths []int, ordered []*Entry) *index {
	ix := &index{version: version, widths: widths}
	ix.entries = make([]*Entry, len(ordered))
	ix.payload = make([]uint64, len(ordered))
	ix.typed = true
	for i, e := range ordered {
		c := *e
		c.ord = int32(i)
		ix.entries[i] = &c
		if ix.typed {
			switch d := c.Data.(type) {
			case uint64:
				ix.payload[i] = d
			case int:
				if d >= 0 {
					ix.payload[i] = uint64(d)
				} else {
					ix.typed = false
				}
			default:
				ix.typed = false
			}
		}
	}
	if !ix.typed {
		ix.payload = nil
	}
	trieable := true
	for _, e := range ix.entries {
		for f, fd := range e.Fields {
			if !maskIsPrefix(fd.Mask, widths[f]) {
				trieable = false
				break
			}
		}
		if !trieable {
			break
		}
	}
	if !trieable {
		ix.linear = true
		return ix
	}
	ix.root = &idxNode{}
	for _, e := range ix.entries {
		ix.insert(e)
	}
	switch len(widths) {
	case 1:
		ix.buildSingle()
	case 2:
		ix.buildGrid()
	}
	return ix
}

// fieldRanges extracts field f's match ranges with slot[i] = i, the raw
// material for buildRangeSet.
func fieldRanges(entries []*Entry, f, width int) (lo, hi []uint64, slot []int32) {
	lo = make([]uint64, len(entries))
	hi = make([]uint64, len(entries))
	slot = make([]int32, len(entries))
	for i, e := range entries {
		fd := e.Fields[f]
		lo[i] = fd.Value
		hi[i] = fd.Value | (lowMask(width) &^ fd.Mask)
		slot[i] = int32(i)
	}
	return lo, hi, slot
}

// buildSingle compiles the single-field fast path: the entries' prefixes
// form the range set and slots are the ordinals themselves. Overlapping
// prefixes (one nested in another, or duplicates) leave the trie in place.
func (ix *index) buildSingle() {
	if len(ix.entries) == 0 {
		return
	}
	lo, hi, slot := fieldRanges(ix.entries, 0, ix.widths[0])
	ix.rset = buildRangeSet(ix.widths[0], lo, hi, slot)
}

// buildGrid compiles the two-field fast path for product-shaped tables
// (the joint binary populations): each field's distinct prefixes must be
// pairwise disjoint, so a key resolves to at most one prefix slot per
// field, and the winning entry for a (slotX, slotY) pair is the
// resolution-order first entry carrying exactly those prefixes.
func (ix *index) buildGrid() {
	if len(ix.entries) == 0 {
		return
	}
	type pref struct{ value, mask uint64 }
	xs := make(map[pref]int32)
	ys := make(map[pref]int32)
	ex := make([]int32, len(ix.entries)) // entry → X slot
	ey := make([]int32, len(ix.entries))
	for i, e := range ix.entries {
		px := pref{e.Fields[0].Value, e.Fields[0].Mask}
		sx, ok := xs[px]
		if !ok {
			sx = int32(len(xs))
			xs[px] = sx
		}
		py := pref{e.Fields[1].Value, e.Fields[1].Mask}
		sy, ok := ys[py]
		if !ok {
			sy = int32(len(ys))
			ys[py] = sy
		}
		ex[i], ey[i] = sx, sy
	}
	compile := func(m map[pref]int32, width int) *rangeSet {
		lo := make([]uint64, len(m))
		hi := make([]uint64, len(m))
		slot := make([]int32, len(m))
		i := 0
		for p, s := range m {
			lo[i] = p.value
			hi[i] = p.value | (lowMask(width) &^ p.mask)
			slot[i] = s
			i++
		}
		return buildRangeSet(width, lo, hi, slot)
	}
	rx := compile(xs, ix.widths[0])
	if rx == nil {
		return
	}
	ry := compile(ys, ix.widths[1])
	if ry == nil {
		return
	}
	ny := len(ys)
	grid := make([]int32, len(xs)*ny)
	for i := range grid {
		grid[i] = -1
	}
	// Forward fill, first writer wins: entries are in resolution order, so
	// the first entry with a given prefix pair is the one resolution picks.
	for i := range ix.entries {
		g := &grid[int(ex[i])*ny+int(ey[i])]
		if *g < 0 {
			*g = int32(i)
		}
	}
	ix.rsetX, ix.rsetY, ix.grid, ix.gridNY = rx, ry, grid, ny
}

// insert threads one entry through the nested trie. ordered iteration means
// the first entry reaching a terminal node is the best one for that exact
// match key, so later arrivals (same fields, lower resolution rank) are
// dropped here and never visited at lookup time.
func (ix *index) insert(e *Entry) {
	n := ix.root
	last := len(e.Fields) - 1
	for f, fd := range e.Fields {
		w := ix.widths[f]
		sig := bits.OnesCount64(fd.Mask)
		for i := 0; i < sig; i++ {
			b := (fd.Value >> uint(w-1-i)) & 1
			if n.child[b] == nil {
				n.child[b] = &idxNode{}
			}
			n = n.child[b]
		}
		if f == last {
			break
		}
		if n.next == nil {
			n.next = &idxNode{}
		}
		n = n.next
	}
	if n.entry == nil {
		n.entry = e
	}
}

// lookup resolves keys (already arity-checked by the caller) to the winning
// entry, or nil on a miss.
func (ix *index) lookup(keys []uint64) *Entry {
	if ord := ix.lookupOrd(keys); ord >= 0 {
		return ix.entries[ord]
	}
	return nil
}

// lookupOrd resolves keys to the winning entry's ordinal, or −1 on a miss.
// It dispatches to the cheapest compiled form the snapshot supports.
func (ix *index) lookupOrd(keys []uint64) int32 {
	if ix.rset != nil {
		return ix.rset.resolve(keys[0])
	}
	if ix.grid != nil {
		sx := ix.rsetX.resolve(keys[0])
		if sx < 0 {
			return -1
		}
		sy := ix.rsetY.resolve(keys[1])
		if sy < 0 {
			return -1
		}
		return ix.grid[int(sx)*ix.gridNY+int(sy)]
	}
	return ix.trieLookupOrd(keys)
}

// trieLookupOrd resolves keys without the range-compiled fast path: the
// trie walk (or the linear fallback). It is both lookupOrd's slow half and
// the reference the range compilation is measured and differentially
// tested against.
func (ix *index) trieLookupOrd(keys []uint64) int32 {
	if ix.linear || ix.root == nil {
		for _, e := range ix.entries {
			if matchAll(e.Fields, keys) {
				return e.ord
			}
		}
		return -1
	}
	if e := ix.walk(ix.root, 0, keys); e != nil {
		return e.ord
	}
	return -1
}

// walk descends field f's trie along the key's bit path. Every node on the
// path corresponds to one prefix of the key present in the table; terminal
// candidates are compared with the same order the reference scan uses.
func (ix *index) walk(n *idxNode, f int, keys []uint64) *Entry {
	key, w := keys[f], ix.widths[f]
	lastField := f == len(ix.widths)-1
	var best *Entry
	for depth := 0; ; depth++ {
		if lastField {
			if n.entry != nil && (best == nil || less(n.entry, best)) {
				best = n.entry
			}
		} else if n.next != nil {
			if e := ix.walk(n.next, f+1, keys); e != nil && (best == nil || less(e, best)) {
				best = e
			}
		}
		if depth == w {
			return best
		}
		b := (key >> uint(w-1-depth)) & 1
		if n.child[b] == nil {
			return best
		}
		n = n.child[b]
	}
}
