package tcam

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// checkIndexBatch resolves every tuple through LookupIndexBatch and the
// entry-based Lookup and fails on any divergence in hit/miss, winner, or
// typed payload.
func checkIndexBatch(t *testing.T, tb *Table, flat []uint64, arity int) {
	t.Helper()
	ords, pay := tb.LookupIndexBatch(flat, nil)
	n := len(flat) / arity
	if len(ords) != n {
		t.Fatalf("LookupIndexBatch returned %d ordinals for %d tuples", len(ords), n)
	}
	for i := 0; i < n; i++ {
		keys := flat[i*arity : (i+1)*arity]
		want, ok := tb.Lookup(keys...)
		if (ords[i] >= 0) != ok {
			t.Fatalf("tuple %v: ordinal %d, reference ok=%v", keys, ords[i], ok)
		}
		if !ok {
			if pay.Entry(ords[i]) != nil {
				t.Fatalf("tuple %v: miss ordinal resolved an entry", keys)
			}
			continue
		}
		got := pay.Entry(ords[i])
		if got == nil || got.ID != want.ID {
			t.Fatalf("tuple %v: typed winner %v, reference winner %d", keys, got, want.ID)
		}
		v, vok := pay.Value(ords[i])
		switch d := want.Data.(type) {
		case uint64:
			if !vok || v != d {
				t.Fatalf("tuple %v: Value=(%d,%v), want (%d,true)", keys, v, vok, d)
			}
		case int:
			if d >= 0 && (!vok || v != uint64(d)) {
				t.Fatalf("tuple %v: Value=(%d,%v), want (%d,true)", keys, v, vok, d)
			}
		}
	}
}

// TestLookupIndexBatchDifferentialFuzz proves the ordinal path bit-identical
// to the entry path across random one- and two-field tables — overlapping
// and disjoint prefixes, narrow (dense-LUT) and wide (range-searched)
// fields alike.
func TestLookupIndexBatchDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		nf := 1 + rng.Intn(2)
		widths := make([]int, nf)
		for i := range widths {
			widths[i] = 1 + rng.Intn(28) // spans both rangeSet forms
		}
		tb := randomPrefixTable(t, rng, 1+rng.Intn(150), widths...)
		flat := make([]uint64, 300*nf)
		for i := range flat {
			flat[i] = rng.Uint64() & lowMask(widths[i%nf])
		}
		checkIndexBatch(t, tb, flat, nf)
	}
}

// tileTable installs a disjoint full cover of the width-bit domain with
// 1<<depth leaves, data = leaf index as uint64.
func tileTable(t *testing.T, width, depth int) *Table {
	t.Helper()
	tb := MustNew("tile", 0, width)
	for i := 0; i < 1<<depth; i++ {
		p := bitstr.MustNew(uint64(i)<<uint(width-depth), depth, width)
		if _, err := tb.InsertPrefix(p, 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestLookupIndexBatchProductGrid covers the two-field product compilation
// the joint binary populations hit: disjoint X and Y tilings crossed into
// pair entries, with some pairs deliberately absent (grid holes must miss).
func TestLookupIndexBatchProductGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const wx, wy, dx, dy = 10, 8, 3, 2
	tb := MustNew("product", 0, wx, wy)
	seq := 0
	for i := 0; i < 1<<dx; i++ {
		for j := 0; j < 1<<dy; j++ {
			if i == 2 && j == 1 {
				continue // hole: this prefix pair has no entry
			}
			px := bitstr.MustNew(uint64(i)<<uint(wx-dx), dx, wx)
			py := bitstr.MustNew(uint64(j)<<uint(wy-dy), dy, wy)
			fields := []Field{FieldFromPrefix(px), FieldFromPrefix(py)}
			if _, err := tb.Insert(fields, 0, uint64(seq)); err != nil {
				t.Fatal(err)
			}
			seq++
		}
	}
	if ix := tb.loadIndex(); ix.grid == nil {
		t.Fatal("product table did not compile to the grid fast path")
	}
	flat := make([]uint64, 2*500)
	for i := 0; i < 500; i++ {
		flat[2*i] = rng.Uint64() & lowMask(wx)
		flat[2*i+1] = rng.Uint64() & lowMask(wy)
	}
	checkIndexBatch(t, tb, flat, 2)
	// The hole must miss on both paths.
	hx := uint64(2) << uint(wx-dx)
	hy := uint64(1) << uint(wy-dy)
	if _, ok := tb.Lookup(hx, hy); ok {
		t.Fatal("grid hole resolved an entry")
	}
	ords, _ := tb.LookupIndexBatch([]uint64{hx, hy}, nil)
	if ords[0] >= 0 {
		t.Fatalf("grid hole resolved ordinal %d", ords[0])
	}
}

// TestGridRejectsNestedPrefixes: a two-field table whose X prefixes nest
// must refuse the grid compilation and fall back to the trie, still
// resolving identically to the reference scan.
func TestGridRejectsNestedPrefixes(t *testing.T) {
	tb := MustNew("nested", 0, 8, 8)
	px1 := bitstr.MustNew(0x80, 1, 8) // 1xxxxxxx
	px2 := bitstr.MustNew(0xC0, 2, 8) // 11xxxxxx — nested in px1
	py := bitstr.MustNew(0x00, 1, 8)
	if _, err := tb.Insert([]Field{FieldFromPrefix(px1), FieldFromPrefix(py)}, 0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert([]Field{FieldFromPrefix(px2), FieldFromPrefix(py)}, 0, uint64(2)); err != nil {
		t.Fatal(err)
	}
	if ix := tb.loadIndex(); ix.grid != nil {
		t.Fatal("nested X prefixes compiled to a grid")
	}
	for key := uint64(0); key < 256; key++ {
		got, ok := tb.Lookup(key, 0x01)
		all := tb.LookupAll(key, 0x01)
		if (len(all) > 0) != ok {
			t.Fatalf("key %#x: ok=%v, reference %d", key, ok, len(all))
		}
		if ok && got.ID != all[0].ID {
			t.Fatalf("key %#x: winner %d, reference %d", key, got.ID, all[0].ID)
		}
	}
	flat := make([]uint64, 0, 512)
	for key := uint64(0); key < 256; key++ {
		flat = append(flat, key, 0x01)
	}
	checkIndexBatch(t, tb, flat, 2)
}

// TestLookupIndexBatchUntypedData: non-integral action data disables the
// dense payload but the ordinal path must still return the right entries.
func TestLookupIndexBatchUntypedData(t *testing.T) {
	tb := MustNew("untyped", 0, 8)
	for i := 0; i < 4; i++ {
		p := bitstr.MustNew(uint64(i)<<6, 2, 8)
		if _, err := tb.InsertPrefix(p, 0, fmt.Sprintf("bin-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ords, pay := tb.LookupIndexBatch([]uint64{0x00, 0x40, 0x80, 0xC0}, nil)
	if pay.Typed() {
		t.Fatal("string action data reported a typed payload")
	}
	for i, ord := range ords {
		if ord < 0 {
			t.Fatalf("key %d missed a full cover", i)
		}
		if _, ok := pay.Value(ord); ok {
			t.Fatalf("key %d: Value resolved non-integral data", i)
		}
		e := pay.Entry(ord)
		if e == nil || e.Data != fmt.Sprintf("bin-%d", i) {
			t.Fatalf("key %d: entry %v", i, e)
		}
	}
}

// TestLookupHighBitsIgnored pins the masking contract: key bits above the
// field width are ignored identically by the reference scan, the trie, the
// dense LUT, and the wide-field range search.
func TestLookupHighBitsIgnored(t *testing.T) {
	for _, width := range []int{8, 20} { // LUT form and range form
		tb := tileTable(t, width, 3)
		for probe := 0; probe < 64; probe++ {
			low := uint64(probe) << uint(width-6)
			key := low | (uint64(probe+1) << uint(width)) // garbage above width
			want := tb.LookupAll(key)
			got, ok := tb.Lookup(key)
			if !ok || len(want) == 0 || got.ID != want[0].ID {
				t.Fatalf("width %d key %#x: Lookup=(%v,%v), reference %d", width, key, got, ok, len(want))
			}
			ords, pay := tb.LookupIndexBatch([]uint64{key}, nil)
			if e := pay.Entry(ords[0]); e == nil || e.ID != want[0].ID {
				t.Fatalf("width %d key %#x: ordinal path %v, reference winner %d", width, key, e, want[0].ID)
			}
		}
	}
}

// TestLookupSingleBatchTrieMatchesFast cross-checks the reference trie walk
// against the fast single-field path on a table that compiles to the LUT.
func TestLookupSingleBatchTrieMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tb := tileTable(t, 12, 5)
	if ix := tb.loadIndex(); ix.rset == nil || ix.rset.lut == nil {
		t.Fatal("disjoint 12-bit tiling did not compile to the dense LUT")
	}
	keys := make([]uint64, 2048)
	for i := range keys {
		keys[i] = rng.Uint64() & lowMask(12)
	}
	fast := tb.LookupSingleBatch(keys, nil)
	ref := tb.LookupSingleBatchTrie(keys, nil)
	for i := range keys {
		if (fast[i] == nil) != (ref[i] == nil) {
			t.Fatalf("key %#x: fast=%v trie=%v", keys[i], fast[i], ref[i])
		}
		if fast[i] != nil && fast[i].ID != ref[i].ID {
			t.Fatalf("key %#x: fast winner %d, trie winner %d", keys[i], fast[i].ID, ref[i].ID)
		}
	}
}

// TestRangeSetRejectsOverlapSingleField: nested single-field prefixes must
// keep the trie (LPM semantics) and still agree with the reference.
func TestRangeSetRejectsOverlapSingleField(t *testing.T) {
	tb := MustNew("overlap", 0, 8)
	if _, err := tb.InsertPrefix(bitstr.MustNew(0x80, 1, 8), 0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(bitstr.MustNew(0xC0, 2, 8), 0, uint64(2)); err != nil {
		t.Fatal(err)
	}
	if ix := tb.loadIndex(); ix.rset != nil {
		t.Fatal("overlapping prefixes compiled to a range set")
	}
	flat := make([]uint64, 256)
	for i := range flat {
		flat[i] = uint64(i)
	}
	checkIndexBatch(t, tb, flat, 1)
}
