package tcam

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// randomPrefixTable builds a table with n random prefix entries over the
// given field widths (one prefix per field), random priorities.
func randomPrefixTable(t testing.TB, rng *rand.Rand, n int, widths ...int) *Table {
	t.Helper()
	tb := MustNew("fuzz", 0, widths...)
	for i := 0; i < n; i++ {
		fields := make([]Field, len(widths))
		for f, w := range widths {
			p, err := bitstr.New(rng.Uint64()&lowMask(w), rng.Intn(w+1), w)
			if err != nil {
				t.Fatal(err)
			}
			fields[f] = FieldFromPrefix(p)
		}
		if _, err := tb.Insert(fields, rng.Intn(4), i); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestIndexDifferentialSingleField proves the compiled index resolves
// bit-identically to the reference scan on ≥10k random keys across random
// single-field tables (the acceptance-criteria differential).
func TestIndexDifferentialSingleField(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keysChecked := 0
	for trial := 0; trial < 40; trial++ {
		width := 1 + rng.Intn(32)
		tb := randomPrefixTable(t, rng, 1+rng.Intn(200), width)
		for probe := 0; probe < 300; probe++ {
			key := rng.Uint64() & lowMask(width)
			got, ok := tb.Lookup(key)
			all := tb.LookupAll(key)
			if (len(all) > 0) != ok {
				t.Fatalf("width %d key %#x: indexed ok=%v, reference found %d", width, key, ok, len(all))
			}
			if ok && got.ID != all[0].ID {
				t.Fatalf("width %d key %#x: indexed winner %d, reference winner %d", width, key, got.ID, all[0].ID)
			}
			keysChecked++
		}
	}
	if keysChecked < 10000 {
		t.Fatalf("differential covered only %d keys, want >= 10000", keysChecked)
	}
}

// TestIndexDifferentialMultiField runs the same differential over two- and
// three-field tables, where LPM winners combine per-field significant bits.
func TestIndexDifferentialMultiField(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		nf := 2 + rng.Intn(2)
		widths := make([]int, nf)
		for i := range widths {
			widths[i] = 1 + rng.Intn(12)
		}
		tb := randomPrefixTable(t, rng, 1+rng.Intn(150), widths...)
		for probe := 0; probe < 400; probe++ {
			keys := make([]uint64, nf)
			for i, w := range widths {
				keys[i] = rng.Uint64() & lowMask(w)
			}
			got, ok := tb.Lookup(keys...)
			all := tb.LookupAll(keys...)
			if (len(all) > 0) != ok {
				t.Fatalf("widths %v keys %v: indexed ok=%v, reference found %d", widths, keys, ok, len(all))
			}
			if ok && got.ID != all[0].ID {
				t.Fatalf("widths %v keys %v: indexed winner %d, reference winner %d", widths, keys, got.ID, all[0].ID)
			}
		}
	}
}

// TestIndexFallbackNonPrefixMask: entries with non-contiguous ternary masks
// cannot be trie-compiled; the index must fall back to the resolution-order
// scan and still agree with LookupAll.
func TestIndexFallbackNonPrefixMask(t *testing.T) {
	tb := MustNew("ternary", 0, 8)
	// Match any key whose bit 2 is set, regardless of other bits.
	if _, err := tb.Insert([]Field{{Value: 0b100, Mask: 0b100}}, 0, "bit2"); err != nil {
		t.Fatal(err)
	}
	// And a proper prefix entry that outranks it on significant bits.
	p := bitstr.MustNew(0b10000000, 4, 8)
	if _, err := tb.InsertPrefix(p, 0, "prefix"); err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 256; key++ {
		got, ok := tb.Lookup(key)
		all := tb.LookupAll(key)
		if (len(all) > 0) != ok {
			t.Fatalf("key %#x: ok=%v, reference %d", key, ok, len(all))
		}
		if ok && got.ID != all[0].ID {
			t.Fatalf("key %#x: indexed %d, reference %d", key, got.ID, all[0].ID)
		}
	}
}

// TestIndexSeesMutations: single-row mutations (insert, update, delete)
// must invalidate the compiled index even though they do not advance the
// bulk-commit generation.
func TestIndexSeesMutations(t *testing.T) {
	tb := MustNew("mut", 0, 4)
	p := bitstr.MustNew(0b0100, 2, 4)
	id, err := tb.InsertPrefix(p, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(5); !ok || e.Data.(string) != "a" {
		t.Fatalf("after insert: %v", e)
	}
	if err := tb.UpdateData(id, "b"); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(5); !ok || e.Data.(string) != "b" {
		t.Fatalf("after update: %v", e)
	}
	if err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("lookup hit after delete")
	}
	tb.Clear()
	if _, err := tb.InsertPrefix(p, 0, "c"); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(5); !ok || e.Data.(string) != "c" {
		t.Fatalf("after clear+insert: %v", e)
	}
}

// generationRows builds a full 2-bit-domain population whose every entry
// carries the tag, so any lookup reveals which generation served it.
func generationRows(t *testing.T, tag int) []Row {
	t.Helper()
	var rows []Row
	// Alternate the population shape per tag parity so commits genuinely
	// reshape the table rather than only rewriting action data.
	if tag%2 == 0 {
		for v := uint64(0); v < 4; v++ {
			p, err := bitstr.New(v<<2, 2, 4)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, RowFromPrefix(p, tag))
		}
	} else {
		for v := uint64(0); v < 2; v++ {
			p, err := bitstr.New(v<<3, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, RowFromPrefix(p, tag))
		}
	}
	return rows
}

// TestIndexNoTornGeneration hammers lock-free Lookup/LookupBatch against
// ApplyRowsAtomic/ReplaceAll commits. Every committed population tags all
// of its rows with one generation number; a batch resolved against a single
// snapshot must never mix tags, and no lookup may miss (every population
// covers the domain). Run under -race this also proves the read path is
// data-race free against the commit path.
func TestIndexNoTornGeneration(t *testing.T) {
	tb := MustNew("torn", 0, 4)
	if _, err := tb.ApplyRowsAtomic(generationRows(t, 0)); err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		rounds  = 400
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			keys := make([][]uint64, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = []uint64{rng.Uint64() & 0xF}
				}
				got := tb.LookupBatch(keys)
				tag := -1
				for i, e := range got {
					if e == nil {
						select {
						case errs <- "lookup miss mid-commit (torn or empty generation)":
						default:
						}
						return
					}
					if i == 0 {
						tag = e.Data.(int)
					} else if e.Data.(int) != tag {
						select {
						case errs <- "one batch served two generations":
						default:
						}
						return
					}
				}
				if e, ok := tb.Lookup(rng.Uint64() & 0xF); !ok || e == nil {
					select {
					case errs <- "single lookup missed a fully covered domain":
					default:
					}
					return
				}
			}
		}(int64(r))
	}

	for tag := 1; tag <= rounds; tag++ {
		rows := generationRows(t, tag)
		var err error
		if tag%2 == 0 {
			_, err = tb.ApplyRowsAtomic(rows)
		} else {
			_, err = tb.ReplaceAll(rows)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestLookupBatchStats: batch lookups account hits and misses like the
// scalar path.
func TestLookupBatchStats(t *testing.T) {
	tb := MustNew("stats", 0, 4)
	p := bitstr.MustNew(0b1000, 1, 4) // covers 8..15
	if _, err := tb.InsertPrefix(p, 0, "hi"); err != nil {
		t.Fatal(err)
	}
	tb.ResetStats()
	got := tb.LookupBatch([][]uint64{{9}, {1}, {12}})
	if got[0] == nil || got[1] != nil || got[2] == nil {
		t.Fatalf("batch results = %v", got)
	}
	s := tb.Stats()
	if s.Lookups != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 lookups / 2 hits / 1 miss", s)
	}

	tb.ResetStats()
	single := tb.LookupSingleBatch([]uint64{9, 1, 12}, nil)
	if single[0] == nil || single[1] != nil || single[2] == nil {
		t.Fatalf("single batch results = %v", single)
	}
	s = tb.Stats()
	if s.Lookups != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("single-batch stats = %+v, want 3 lookups / 2 hits / 1 miss", s)
	}

	// Arity mismatch: every key misses, nothing panics.
	if out := tb.LookupBatch([][]uint64{{1, 2}}); out[0] != nil {
		t.Error("wrong-arity batch key must miss")
	}
}

// TestLookupSnapshotStableAcrossUpdate: an entry returned by Lookup belongs
// to an immutable snapshot — a subsequent UpdateData must not mutate it
// under the caller.
func TestLookupSnapshotStableAcrossUpdate(t *testing.T) {
	tb := MustNew("snap", 0, 4)
	p := bitstr.MustNew(0b0100, 2, 4)
	id, err := tb.InsertPrefix(p, 0, "old")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := tb.Lookup(5)
	if !ok {
		t.Fatal("miss")
	}
	if err := tb.UpdateData(id, "new"); err != nil {
		t.Fatal(err)
	}
	if e.Data.(string) != "old" {
		t.Error("held snapshot entry mutated by UpdateData")
	}
	if e2, _ := tb.Lookup(5); e2.Data.(string) != "new" {
		t.Error("fresh lookup does not see the update")
	}
}
