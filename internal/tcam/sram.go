// SRAM spill tier for the tiered store (see tiered.go).
//
// Switch pipelines pair a tiny TCAM with orders of magnitude more SRAM.
// MashUp-style tiling exploits that: the wildcard rows a TCAM would hold are
// prefix intervals, and a dense set of disjoint intervals resolves in SRAM
// with a predecessor search — no ternary cells needed. The sramTier below is
// the mutable cold-tail row set; sramIndex is its immutable compiled lookup
// form, rebuilt into the tiered snapshot whenever the contents change
// (mutation-rate work, not lookup-rate).
//
// Resolution must stay bit-identical to a Table holding the same rows. Rows
// are kept in the table's resolution order (sig desc, priority desc, seq
// asc); when the per-field prefix intervals are pairwise disjoint — true of
// every ADA population, which tiles the operand domain — at most one row can
// match a key and the predecessor search returns exactly the reference
// winner. Overlapping or non-prefix rows fall back to a first-match scan in
// resolution order, the same reference path index.go keeps for Tables.
package tcam

import "sort"

// sramTier is the mutable cold tier: the spilled rows in resolution order
// plus a match-key index for reconciliation. All methods require the owning
// TieredStore's mutex; the tier itself has none.
type sramTier struct {
	widths  []int
	rows    []*Entry            // resolution order: sig desc, priority desc, seq asc
	byKey   map[string][]*Entry // match key → installed rows, oldest first
	nextID  int
	nextSeq int
}

func newSRAMTier(widths []int) *sramTier {
	return &sramTier{widths: widths, byKey: make(map[string][]*Entry)}
}

func (s *sramTier) len() int { return len(s.rows) }

func (s *sramTier) count(key string) int { return len(s.byKey[key]) }

// insert installs one row, keeping resolution order.
func (s *sramTier) insert(r Row) {
	fs := make([]Field, len(r.Fields))
	copy(fs, r.Fields)
	sig := 0
	for _, f := range fs {
		sig += f.SigBits()
	}
	s.nextID++
	s.nextSeq++
	e := &Entry{
		ID: s.nextID, Fields: fs, Priority: r.Priority, Data: r.Data,
		sig: sig, seq: s.nextSeq, key: matchKey(fs, r.Priority),
	}
	i := sort.Search(len(s.rows), func(i int) bool { return !less(s.rows[i], e) })
	s.rows = append(s.rows, nil)
	copy(s.rows[i+1:], s.rows[i:])
	s.rows[i] = e
	s.byKey[e.key] = append(s.byKey[e.key], e)
}

// remove drops the oldest row installed under key, returning it for
// promotion into the other tier.
func (s *sramTier) remove(key string) (Row, bool) {
	list := s.byKey[key]
	if len(list) == 0 {
		return Row{}, false
	}
	e := list[0]
	if len(list) == 1 {
		delete(s.byKey, key)
	} else {
		s.byKey[key] = list[1:]
	}
	for i, o := range s.rows {
		if o == e {
			s.rows = append(s.rows[:i], s.rows[i+1:]...)
			break
		}
	}
	return Row{Fields: e.Fields, Priority: e.Priority, Data: e.Data}, true
}

// replace reconciles the tier contents toward rows with minimal row writes
// (same diff ApplyRows uses: unchanged rows cost nothing, changed data one
// rewrite, new/stale rows one insert/delete each) and returns the write
// count. It cannot fail: SRAM has no capacity gate here — the owning store
// enforces the combined budget before calling.
func (s *sramTier) replace(rows []Row) (writes int) {
	consumed := make(map[string]int, len(rows))
	var toInsert []Row
	for _, r := range rows {
		k := matchKey(r.Fields, r.Priority)
		list := s.byKey[k]
		idx := consumed[k]
		if idx >= len(list) {
			toInsert = append(toInsert, r)
			continue
		}
		consumed[k] = idx + 1
		if !dataEqual(list[idx].Data, r.Data) {
			list[idx].Data = r.Data
			writes++
		}
	}
	// Keep the consumed prefix of each key's list; everything else is stale.
	keep := make(map[*Entry]bool, len(rows))
	for k, n := range consumed {
		for _, e := range s.byKey[k][:n] {
			keep[e] = true
		}
	}
	if len(keep) < len(s.rows) {
		kept := s.rows[:0]
		for _, e := range s.rows {
			if keep[e] {
				kept = append(kept, e)
			} else {
				writes++
			}
		}
		s.rows = kept
		s.byKey = make(map[string][]*Entry, len(kept))
		for _, e := range kept {
			s.byKey[e.key] = append(s.byKey[e.key], e)
		}
	}
	for _, r := range toInsert {
		s.insert(r)
		writes++
	}
	return writes
}

// applyDelta applies the cold half of a staged delta. The owning store has
// already verified every delete is installed here, so it cannot fail.
func (s *sramTier) applyDelta(upserts, deletes []Row) (writes int) {
	for _, r := range deletes {
		if _, ok := s.remove(matchKey(r.Fields, r.Priority)); ok {
			writes++
		}
	}
	for _, r := range upserts {
		k := matchKey(r.Fields, r.Priority)
		if list := s.byKey[k]; len(list) > 0 {
			if !dataEqual(list[0].Data, r.Data) {
				list[0].Data = r.Data
				writes++
			}
			continue
		}
		s.insert(r)
		writes++
	}
	return writes
}

// sramIvl is one compiled prefix interval [lo, hi] → combined-snapshot slot.
type sramIvl struct {
	lo, hi uint64
	slot   int32
}

// sramIndex is the immutable compiled form of the cold tier at one tiered
// snapshot. Ordinals are pre-offset by the hot tier's entry count so they
// index the combined snapshot directly.
type sramIndex struct {
	entries []*Entry // row copies in resolution order, ord = base + position
	payload []uint64 // dense typed action data, valid when typed
	typed   bool

	// Disjoint-prefix fast paths, mirroring index.go: flat serves one-field
	// tables by predecessor search, xs/ys serve two-field product tables
	// (each x interval owns its sorted y intervals). linear falls back to a
	// first-match scan in resolution order. Keys are masked to the field
	// width first — bits above the width are ignored, as in Field.Matches.
	flat         []sramIvl
	xs           []sramIvl // slot indexes ys
	ys           [][]sramIvl
	maskX, maskY uint64
	linear       bool
}

// fieldIvl converts a prefix-shaped field to its match interval; ok reports
// whether the mask is a prefix mask (wildcard bits strictly below the
// significant ones).
func fieldIvl(f Field, width int) (lo, hi uint64, ok bool) {
	if !maskIsPrefix(f.Mask, width) {
		return 0, 0, false
	}
	return f.Value, f.Value | (lowMask(width) &^ f.Mask), true
}

// searchIvls finds the interval containing key by predecessor search over
// disjoint intervals sorted by lo. Returns the slot or −1.
func searchIvls(ivls []sramIvl, key uint64) int32 {
	base, n := 0, len(ivls)
	if n == 0 {
		return -1
	}
	for n > 1 {
		half := n >> 1
		if ivls[base+half].lo <= key {
			base += half
		}
		n -= half
	}
	if iv := ivls[base]; iv.lo <= key && key <= iv.hi {
		return iv.slot
	}
	return -1
}

// sortIvls orders intervals by lo and reports whether they are pairwise
// disjoint (the precondition for predecessor resolution).
func sortIvls(ivls []sramIvl) bool {
	sort.Slice(ivls, func(i, j int) bool { return ivls[i].lo < ivls[j].lo })
	for i := 1; i < len(ivls); i++ {
		if ivls[i].lo <= ivls[i-1].hi {
			return false
		}
	}
	return true
}

// compile builds the immutable lookup form. base is the hot tier's entry
// count: compiled ordinals start there so the combined snapshot's entry
// array resolves them without translation.
func (s *sramTier) compile(base int32) *sramIndex {
	ix := &sramIndex{typed: true}
	ix.entries = make([]*Entry, len(s.rows))
	ix.payload = make([]uint64, len(s.rows))
	for i, e := range s.rows {
		c := *e
		c.ord = base + int32(i)
		ix.entries[i] = &c
		if ix.typed {
			switch d := c.Data.(type) {
			case uint64:
				ix.payload[i] = d
			case int:
				if d >= 0 {
					ix.payload[i] = uint64(d)
				} else {
					ix.typed = false
				}
			default:
				ix.typed = false
			}
		}
	}
	if !ix.typed {
		ix.payload = nil
	}
	switch len(s.widths) {
	case 1:
		ix.compileFlat(s.widths[0])
	case 2:
		ix.compileGrid(s.widths)
	default:
		ix.linear = true
	}
	return ix
}

// compileFlat builds the one-field predecessor array; any non-prefix mask or
// overlap keeps the linear reference path.
func (ix *sramIndex) compileFlat(width int) {
	flat := make([]sramIvl, len(ix.entries))
	for i, e := range ix.entries {
		lo, hi, ok := fieldIvl(e.Fields[0], width)
		if !ok {
			ix.linear = true
			return
		}
		flat[i] = sramIvl{lo: lo, hi: hi, slot: int32(i)}
	}
	if !sortIvls(flat) {
		ix.linear = true
		return
	}
	ix.flat = flat
	ix.maskX = lowMask(width)
}

// compileGrid builds the two-field form: disjoint x intervals, each owning
// the disjoint y intervals of the rows sharing that x prefix. Product-shaped
// joint populations compile exactly; anything else keeps the linear path.
func (ix *sramIndex) compileGrid(widths []int) {
	type group struct {
		iv sramIvl
		ys []sramIvl
	}
	byX := make(map[uint64]*group)
	var order []uint64
	for i, e := range ix.entries {
		xlo, xhi, ok := fieldIvl(e.Fields[0], widths[0])
		if !ok {
			ix.linear = true
			return
		}
		ylo, yhi, ok := fieldIvl(e.Fields[1], widths[1])
		if !ok {
			ix.linear = true
			return
		}
		g := byX[xlo]
		if g == nil {
			g = &group{iv: sramIvl{lo: xlo, hi: xhi}}
			byX[xlo] = g
			order = append(order, xlo)
		} else if g.iv.hi != xhi {
			// Same start, different x prefix: nested intervals.
			ix.linear = true
			return
		}
		g.ys = append(g.ys, sramIvl{lo: ylo, hi: yhi, slot: int32(i)})
	}
	xs := make([]sramIvl, 0, len(order))
	ys := make([][]sramIvl, 0, len(order))
	for _, xlo := range order {
		g := byX[xlo]
		if !sortIvls(g.ys) {
			ix.linear = true
			return
		}
		xs = append(xs, sramIvl{lo: g.iv.lo, hi: g.iv.hi, slot: int32(len(ys))})
		ys = append(ys, g.ys)
	}
	if !sortIvls(xs) {
		ix.linear = true
		return
	}
	ix.xs, ix.ys = xs, ys
	ix.maskX, ix.maskY = lowMask(widths[0]), lowMask(widths[1])
}

// lookupOrd resolves a key tuple to the winning row's combined-snapshot
// ordinal, or −1 on a miss. The caller has already arity-checked keys.
func (ix *sramIndex) lookupOrd(keys []uint64) int32 {
	if ix.linear {
		for _, e := range ix.entries {
			if matchAll(e.Fields, keys) {
				return e.ord
			}
		}
		return -1
	}
	if ix.flat != nil {
		if s := searchIvls(ix.flat, keys[0]&ix.maskX); s >= 0 {
			return ix.entries[s].ord
		}
		return -1
	}
	if ix.xs != nil {
		sx := searchIvls(ix.xs, keys[0]&ix.maskX)
		if sx < 0 {
			return -1
		}
		if s := searchIvls(ix.ys[sx], keys[1]&ix.maskY); s >= 0 {
			return ix.entries[s].ord
		}
		return -1
	}
	return -1
}
