// TieredStore: a Store that splits one logical population across a bounded
// TCAM slice and an SRAM spill tier.
//
// ADA's population quality is capped by how many calculation rows the TCAM
// budget admits, yet the rows are plain prefix intervals — the cold tail
// resolves just as correctly from a dense SRAM interval structure (sram.go)
// as from ternary cells. A TieredStore therefore keeps the hottest rows in a
// real *Table of tcamEntries capacity and spills the rest into an sramTier,
// multiplying the effective entry budget at unchanged TCAM cost. Lookups
// consult the TCAM tier first and fall through to SRAM on a miss; because
// ADA populations tile the operand domain disjointly, at most one tier can
// match any key and the combined resolution is bit-identical to a single
// Table holding the union (the differential tests pin this).
//
// The mutation surface mirrors Table's contracts exactly: ApplyRowsAtomic
// and ApplyDelta are all-or-nothing across both tiers (the TCAM tier — the
// only one that can fail — commits transactionally first; the SRAM half is
// staged up front and cannot fail), Fingerprint/ReadRows digest the union in
// Table's canonical format, and the returned write counts cover TCAM row
// writes only. SRAM row writes accumulate separately and are drained with
// TakeSRAMWrites, so the control plane can charge the two memories at their
// real, very different costs.
//
// Tier placement is a control-plane decision: Rebalance ranks every row by a
// caller-supplied heat score (derived from the same per-bin hit registers
// Algorithm 2 reads) and moves rows between tiers so the TCAM slice holds
// the hottest ones. Placement changes which memory serves a row, never the
// row itself, so it advances the internal snapshot sequence but not the
// externally visible Version — a controller shadow guarded by Version keeps
// trusting its copy across placement rounds.
package tcam

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// TierMoves summarises one Rebalance pass.
type TierMoves struct {
	// Promotions counts rows moved SRAM → TCAM.
	Promotions int
	// Demotions counts rows moved TCAM → SRAM.
	Demotions int
	// TCAMWrites counts the physical TCAM row writes the moves cost; the
	// SRAM-side writes are drained via TakeSRAMWrites.
	TCAMWrites int
}

// RowHeat scores one logical row's observed hit mass; Rebalance ranks rows
// by it, hottest into the TCAM tier. The control plane derives it from the
// monitoring trie's per-bin hit registers.
type RowHeat func(fields []Field, priority int) uint64

// tieredSnap is one immutable combined snapshot: the hot tier's compiled
// index, the cold tier's compiled index with pre-offset ordinals, and the
// union entry/payload arrays batch lookups hand out.
type tieredSnap struct {
	seq     uint64
	token   uint64 // monotonic snapshot generation (Snapshotter contract)
	hot     *index
	cold    *sramIndex
	entries []*Entry
	vals    []uint64
	typed   bool
}

func (sn *tieredSnap) lookupOrd(keys []uint64) int32 {
	if ord := sn.hot.lookupOrd(keys); ord >= 0 {
		return ord
	}
	return sn.cold.lookupOrd(keys)
}

func (sn *tieredSnap) lookup(keys []uint64) *Entry {
	if ord := sn.lookupOrd(keys); ord >= 0 {
		return sn.entries[ord]
	}
	return nil
}

// TieredStore is a Store backed by a bounded TCAM slice plus an SRAM spill
// tier. It is safe for concurrent use; lookups are lock-free against the
// combined snapshot.
type TieredStore struct {
	mu sync.Mutex // serialises mutation, placement, and tier-consistent reads

	name     string
	widths   []int
	capacity int // combined budget across both tiers; 0 = unbounded
	hot      *Table
	cold     *sramTier

	// version and seq follow the package's Version / snapshot-generation
	// contract (see the package doc): seq additionally advances on tier
	// placement and tampering, which Version must not notice.
	version atomic.Uint64
	seq     atomic.Uint64
	snapGen atomic.Uint64 // tokens handed to combined snapshots, monotonic
	snap    atomic.Pointer[tieredSnap]
	snapMu  sync.Mutex // serialises snapshot rebuilds

	sramWrites atomic.Uint64
	promotions atomic.Uint64
	demotions  atomic.Uint64

	// residentScratch is placeLocked's reusable TCAM-residency count map,
	// cleared in place each reconcile instead of reallocated (guarded by mu).
	residentScratch map[string]int
}

var (
	_ Store    = (*TieredStore)(nil)
	_ Tamperer = (*TieredStore)(nil)
)

// NewTiered creates a tiered store: a TCAM slice bounded at tcamEntries rows
// plus an SRAM tier holding the spill, with capacity bounding the two tiers
// together (0 = unbounded SRAM behind a bounded TCAM).
func NewTiered(name string, tcamEntries, capacity int, fieldWidths ...int) (*TieredStore, error) {
	if tcamEntries < 1 {
		return nil, fmt.Errorf("tcam: tiered store %q needs a positive TCAM budget, got %d", name, tcamEntries)
	}
	if capacity > 0 && capacity < tcamEntries {
		return nil, fmt.Errorf("tcam: tiered store %q capacity %d below its TCAM budget %d", name, capacity, tcamEntries)
	}
	hot, err := New(name+".tcam", tcamEntries, fieldWidths...)
	if err != nil {
		return nil, err
	}
	return &TieredStore{
		name:     name,
		widths:   hot.fieldWidths,
		capacity: capacity,
		hot:      hot,
		cold:     newSRAMTier(hot.fieldWidths),
	}, nil
}

// Name returns the store name.
func (s *TieredStore) Name() string { return s.name }

// Capacity returns the combined two-tier entry limit (0 = unbounded).
func (s *TieredStore) Capacity() int { return s.capacity }

// TCAMBudget returns the hot tier's row budget.
func (s *TieredStore) TCAMBudget() int { return s.hot.capacity }

// Len returns the number of installed rows across both tiers.
func (s *TieredStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hot.Len() + s.cold.len()
}

// HotLen returns the rows currently resident in the TCAM tier.
func (s *TieredStore) HotLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hot.Len()
}

// ColdLen returns the rows currently spilled to the SRAM tier.
func (s *TieredStore) ColdLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cold.len()
}

// FieldWidths returns a copy of the declared per-field widths.
func (s *TieredStore) FieldWidths() []int { return s.hot.FieldWidths() }

// Version returns the mutation counter per the package's Version contract;
// placement and tampering do not advance it.
func (s *TieredStore) Version() uint64 { return s.version.Load() }

// Promotions returns the cumulative SRAM → TCAM row moves.
func (s *TieredStore) Promotions() uint64 { return s.promotions.Load() }

// Demotions returns the cumulative TCAM → SRAM row moves.
func (s *TieredStore) Demotions() uint64 { return s.demotions.Load() }

// TakeSRAMWrites drains the SRAM row-write counter accumulated since the
// last call: populate spills, delta updates, and tier moves alike.
func (s *TieredStore) TakeSRAMWrites() int { return int(s.sramWrites.Swap(0)) }

// bumpLocked records a Store-API mutation attempt; s.mu must be held.
func (s *TieredStore) bumpLocked() {
	s.version.Add(1)
	s.seq.Add(1)
}

// loadSnap returns the combined snapshot for the current contents,
// rebuilding when a mutation, placement, or hot-tier tamper invalidated it.
func (s *TieredStore) loadSnap() *tieredSnap {
	if sn := s.snap.Load(); sn != nil && sn.seq == s.seq.Load() && sn.hot.version == s.hot.idxSeq.Load() {
		return sn
	}
	return s.rebuildSnap()
}

func (s *TieredStore) rebuildSnap() *tieredSnap {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if sn := s.snap.Load(); sn != nil && sn.seq == s.seq.Load() && sn.hot.version == s.hot.idxSeq.Load() {
		return sn
	}
	// Hold the store lock so the two tiers compile from one committed state,
	// never a torn mid-mutation view.
	s.mu.Lock()
	seq := s.seq.Load()
	hix := s.hot.loadIndex()
	cix := s.cold.compile(int32(len(hix.entries)))
	s.mu.Unlock()

	entries := make([]*Entry, 0, len(hix.entries)+len(cix.entries))
	entries = append(entries, hix.entries...)
	entries = append(entries, cix.entries...)
	typed := hix.typed && cix.typed
	var vals []uint64
	if typed {
		vals = make([]uint64, 0, len(entries))
		vals = append(vals, hix.payload...)
		vals = append(vals, cix.payload...)
	}
	sn := &tieredSnap{seq: seq, token: s.snapGen.Add(1), hot: hix, cold: cix,
		entries: entries, vals: vals, typed: typed}
	s.snap.Store(sn)
	return sn
}

// LookupSnapshot implements Snapshotter over the combined two-tier
// snapshot. The token advances whenever the snapshot recompiles — content
// mutations, tier re-placement, and tampering in either tier — so cached
// ordinals never outlive the entry/payload arrays they index.
func (s *TieredStore) LookupSnapshot() (Payloads, uint64) {
	sn := s.loadSnap()
	return Payloads{entries: sn.entries, vals: sn.vals, typed: sn.typed}, sn.token
}

// Lookup resolves one key tuple: the TCAM tier wins, the SRAM tier serves
// its misses. Lock-free against the combined snapshot.
func (s *TieredStore) Lookup(keys ...uint64) (*Entry, bool) {
	if len(keys) != len(s.widths) {
		return nil, false
	}
	if e := s.loadSnap().lookup(keys); e != nil {
		return e, true
	}
	return nil, false
}

// LookupBatch resolves many key tuples against one combined snapshot;
// result i is nil on miss.
func (s *TieredStore) LookupBatch(keys [][]uint64) []*Entry {
	out := make([]*Entry, len(keys))
	if len(keys) == 0 {
		return out
	}
	sn := s.loadSnap()
	for i, ks := range keys {
		if len(ks) != len(s.widths) {
			continue
		}
		out[i] = sn.lookup(ks)
	}
	return out
}

// LookupSingleBatch is the single-field batch path; dst is reused when large
// enough. On a multi-field store every key misses.
func (s *TieredStore) LookupSingleBatch(keys []uint64, dst []*Entry) []*Entry {
	if cap(dst) >= len(keys) {
		dst = dst[:len(keys)]
		for i := range dst {
			dst[i] = nil
		}
	} else {
		dst = make([]*Entry, len(keys))
	}
	if len(keys) == 0 || len(s.widths) != 1 {
		return dst
	}
	sn := s.loadSnap()
	var kbuf [1]uint64
	for i, k := range keys {
		kbuf[0] = k
		dst[i] = sn.lookup(kbuf[:])
	}
	return dst
}

// LookupIndexBatch is the zero-allocation hot path over the combined
// snapshot: packed key tuples resolve to dense ordinals spanning both tiers
// (hot rows first), with the same ordinal/payload pairing contract as
// Table.LookupIndexBatch.
func (s *TieredStore) LookupIndexBatch(flat []uint64, dst []int32) ([]int32, Payloads) {
	arity := len(s.widths)
	n := len(flat) / arity
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int32, n)
	}
	sn := s.loadSnap()
	for i := 0; i < n; i++ {
		dst[i] = sn.lookupOrd(flat[i*arity : (i+1)*arity])
	}
	return dst, Payloads{entries: sn.entries, vals: sn.vals, typed: sn.typed}
}

func (s *TieredStore) validateRows(rows []Row) error {
	for _, r := range rows {
		if err := s.hot.validateFields(r.Fields); err != nil {
			return err
		}
	}
	return nil
}

// placeLocked splits a full target population across the tiers: rows whose
// match key is already resident in the TCAM tier stay there (sticky, so a
// converged reconcile causes no tier churn), remaining TCAM slots fill in
// row order, and everything else spills to SRAM. s.mu must be held.
func (s *TieredStore) placeLocked(rows []Row) (hotRows, coldRows []Row) {
	budget := s.hot.capacity
	if s.residentScratch == nil {
		s.residentScratch = make(map[string]int, s.hot.Len())
	}
	resident := s.residentScratch
	clear(resident)
	for _, e := range s.hot.Entries() {
		resident[e.key]++
	}
	sticky := make([]bool, len(rows))
	n := 0
	for i, r := range rows {
		k := matchKey(r.Fields, r.Priority)
		if c := resident[k]; c > 0 && n < budget {
			resident[k] = c - 1
			sticky[i] = true
			n++
		}
	}
	for i, r := range rows {
		switch {
		case sticky[i]:
			hotRows = append(hotRows, r)
		case n < budget:
			hotRows = append(hotRows, r)
			n++
		default:
			coldRows = append(coldRows, r)
		}
	}
	return hotRows, coldRows
}

// ApplyRowsAtomic reconciles both tiers toward rows with minimal writes,
// all-or-nothing: the TCAM tier commits transactionally first, and the SRAM
// reconcile that follows cannot fail. Returns TCAM row writes; SRAM writes
// accumulate for TakeSRAMWrites.
func (s *TieredStore) ApplyRowsAtomic(rows []Row) (writes int, err error) {
	if err := s.validateRows(rows); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.bumpLocked()
	if s.capacity > 0 && len(rows) > s.capacity {
		return 0, &CapacityError{Table: s.name, Capacity: s.capacity,
			Installed: s.hot.Len() + s.cold.len(), Requested: len(rows)}
	}
	hotRows, coldRows := s.placeLocked(rows)
	writes, err = s.hot.ApplyRowsAtomic(hotRows)
	if err != nil {
		return 0, err
	}
	s.sramWrites.Add(uint64(s.cold.replace(coldRows)))
	return writes, nil
}

// ApplyDelta applies an incremental reconciliation across both tiers,
// transactionally: the split is staged without touching either tier, so a
// conflict (a delete not installed in either tier — ErrDeltaConflict) or a
// capacity refusal leaves the store exactly as before. Deletes consume the
// TCAM tier first; new rows take free TCAM slots before spilling to SRAM.
// Returns TCAM row writes; SRAM writes accumulate for TakeSRAMWrites.
func (s *TieredStore) ApplyDelta(upserts, deletes []Row) (writes int, err error) {
	if err := s.validateRows(upserts); err != nil {
		return 0, err
	}
	if err := s.validateRows(deletes); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.bumpLocked()

	hotCount := make(map[string]int, s.hot.Len())
	for _, e := range s.hot.Entries() {
		hotCount[e.key]++
	}
	hotLen, coldLen := s.hot.Len(), s.cold.len()

	var hotDel, coldDel []Row
	coldConsumed := make(map[string]int)
	for _, r := range deletes {
		k := matchKey(r.Fields, r.Priority)
		switch {
		case hotCount[k] > 0:
			hotCount[k]--
			hotDel = append(hotDel, r)
		case s.cold.count(k)-coldConsumed[k] > 0:
			coldConsumed[k]++
			coldDel = append(coldDel, r)
		default:
			return 0, fmt.Errorf("%w: delete of %q not installed in tiered store %q",
				ErrDeltaConflict, k, s.name)
		}
	}
	newHot, newCold := hotLen-len(hotDel), coldLen-len(coldDel)

	var hotUp, coldUp []Row
	inserted := 0
	coldPresent := make(map[string]bool)
	for _, r := range upserts {
		k := matchKey(r.Fields, r.Priority)
		switch {
		case hotCount[k] > 0:
			hotUp = append(hotUp, r)
		case coldPresent[k] || s.cold.count(k)-coldConsumed[k] > 0:
			coldUp = append(coldUp, r)
		case newHot < s.hot.capacity:
			hotUp = append(hotUp, r)
			hotCount[k]++
			newHot++
			inserted++
		default:
			coldUp = append(coldUp, r)
			coldPresent[k] = true
			newCold++
			inserted++
		}
	}
	if s.capacity > 0 && newHot+newCold > s.capacity {
		return 0, &CapacityError{Table: s.name, Capacity: s.capacity,
			Installed: hotLen + coldLen, Requested: inserted}
	}

	writes, err = s.hot.ApplyDelta(hotUp, hotDel)
	if err != nil {
		return 0, err
	}
	s.sramWrites.Add(uint64(s.cold.applyDelta(coldUp, coldDel)))
	return writes, nil
}

// Fingerprint digests the union of both tiers in Table's canonical format:
// a TieredStore and a pure Table holding the same logical population
// fingerprint byte-identically, which is what the tier-differential tests
// and the audit layer rely on.
func (s *TieredStore) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, s.hot.Len()+s.cold.len())
	for _, e := range s.hot.Entries() {
		keys = append(keys, e.key+"="+fmt.Sprint(e.Data))
	}
	for _, e := range s.cold.rows {
		keys = append(keys, e.key+"="+fmt.Sprint(e.Data))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// ReadRows reads back the physically installed rows of both tiers, sorted
// by match key — including rows silently tampered into either tier.
func (s *TieredStore) ReadRows() ([]RowDigest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.hot.ReadRows()
	if err != nil {
		return nil, err
	}
	for _, e := range s.cold.rows {
		fs := make([]Field, len(e.Fields))
		copy(fs, e.Fields)
		out = append(out, RowDigest{Key: e.key, Fields: fs, Priority: e.Priority, Data: e.Data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// AuditFingerprint digests the read-back rows of both tiers in Fingerprint
// format.
func (s *TieredStore) AuditFingerprint() (string, error) {
	rows, err := s.ReadRows()
	if err != nil {
		return "", err
	}
	return DigestFingerprint(rows), nil
}

// AuditRepair reconciles both tiers toward the expected population with
// minimal writes, all-or-nothing, tolerating ghost rows in either tier.
func (s *TieredStore) AuditRepair(expect []Row) (writes int, err error) {
	return s.ApplyRowsAtomic(expect)
}

// TamperData silently corrupts the action data of the installed row in
// whichever tier holds it; Version stays put, the data plane serves the
// corruption immediately.
func (s *TieredStore) TamperData(fields []Field, priority int, data any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.hot.TamperData(fields, priority, data)
	if err == nil {
		s.seq.Add(1)
		return nil
	}
	if !errors.Is(err, ErrNotFound) {
		return err
	}
	k := matchKey(fields, priority)
	if list := s.cold.byKey[k]; len(list) > 0 {
		list[0].Data = data
		s.seq.Add(1)
		return nil
	}
	return fmt.Errorf("%w: tamper target %q in tiered store %q", ErrNotFound, k, s.name)
}

// TamperInsert silently installs a ghost row, preferring a free TCAM slot
// and spilling to SRAM otherwise, respecting the combined capacity.
func (s *TieredStore) TamperInsert(fields []Field, priority int, data any) error {
	if err := s.hot.validateFields(fields); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := matchKey(fields, priority)
	if s.cold.count(k) > 0 {
		return fmt.Errorf("%w: ghost row %q already installed in tiered store %q",
			ErrDeltaConflict, k, s.name)
	}
	if s.capacity > 0 && s.hot.Len()+s.cold.len() >= s.capacity {
		return &CapacityError{Table: s.name, Capacity: s.capacity,
			Installed: s.hot.Len() + s.cold.len(), Requested: 1}
	}
	if s.hot.Len() < s.hot.capacity {
		if err := s.hot.TamperInsert(fields, priority, data); err != nil {
			return err
		}
	} else {
		// Reject a hot-tier duplicate the same way Table does before
		// spilling the ghost to SRAM.
		if dup := func() bool {
			s.hot.mu.RLock()
			defer s.hot.mu.RUnlock()
			return s.hot.findTamperTargetLocked(fields, priority) != nil
		}(); dup {
			return fmt.Errorf("%w: ghost row %q already installed in tiered store %q",
				ErrDeltaConflict, k, s.name)
		}
		s.cold.insert(Row{Fields: fields, Priority: priority, Data: data})
	}
	s.seq.Add(1)
	return nil
}

// TamperDelete silently drops the installed row from whichever tier holds
// it.
func (s *TieredStore) TamperDelete(fields []Field, priority int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.hot.TamperDelete(fields, priority)
	if err == nil {
		s.seq.Add(1)
		return nil
	}
	if !errors.Is(err, ErrNotFound) {
		return err
	}
	k := matchKey(fields, priority)
	if _, ok := s.cold.remove(k); ok {
		s.seq.Add(1)
		return nil
	}
	return fmt.Errorf("%w: tamper target %q in tiered store %q", ErrNotFound, k, s.name)
}

// Rebalance re-ranks every installed row by heat and moves rows between
// tiers so the TCAM slice holds the hottest ones. Ties keep the incumbent
// tier (hysteresis: equal heat never causes a swap), then break by match
// key for determinism. The TCAM half of the move set commits
// transactionally; on its failure the store is unchanged. A converged
// placement returns zero moves and performs no writes.
//
// Placement advances the snapshot sequence, never Version: the logical
// population is untouched, so Version-guarded controller shadows remain
// valid across placement rounds.
func (s *TieredStore) Rebalance(heat RowHeat) (TierMoves, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	type scored struct {
		row Row
		key string
		h   uint64
		hot bool
	}
	hotEntries := s.hot.Entries()
	all := make([]scored, 0, len(hotEntries)+s.cold.len())
	for _, e := range hotEntries {
		all = append(all, scored{
			row: Row{Fields: e.Fields, Priority: e.Priority, Data: e.Data},
			key: e.key, h: heat(e.Fields, e.Priority), hot: true,
		})
	}
	for _, e := range s.cold.rows {
		all = append(all, scored{
			row: Row{Fields: e.Fields, Priority: e.Priority, Data: e.Data},
			key: e.key, h: heat(e.Fields, e.Priority),
		})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].h != all[j].h {
			return all[i].h > all[j].h
		}
		if all[i].hot != all[j].hot {
			return all[i].hot
		}
		return all[i].key < all[j].key
	})

	want := s.hot.capacity
	if want > len(all) {
		want = len(all)
	}
	var promote, demote []Row
	for _, sc := range all[:want] {
		if !sc.hot {
			promote = append(promote, sc.row)
		}
	}
	for _, sc := range all[want:] {
		if sc.hot {
			demote = append(demote, sc.row)
		}
	}
	if len(promote) == 0 && len(demote) == 0 {
		return TierMoves{}, nil
	}

	tcamWrites, err := s.hot.ApplyDelta(promote, demote)
	if err != nil {
		// The hot tier rolled itself back and the cold tier was never
		// touched; refresh the snapshot (the rollback bumped the hot index)
		// and surface the failure.
		s.seq.Add(1)
		return TierMoves{}, err
	}
	for _, r := range promote {
		s.cold.remove(matchKey(r.Fields, r.Priority))
	}
	for _, r := range demote {
		s.cold.insert(r)
	}
	s.sramWrites.Add(uint64(len(promote) + len(demote)))
	s.promotions.Add(uint64(len(promote)))
	s.demotions.Add(uint64(len(demote)))
	s.seq.Add(1)
	return TierMoves{Promotions: len(promote), Demotions: len(demote), TCAMWrites: tcamWrites}, nil
}
