package tcam

import "fmt"

// Store is the table surface the arithmetic engines and the control plane
// program against: the lookup fast path plus the transactional mutation,
// accounting, and fingerprinting contract of a *Table. A Store is either a
// physical *Table or a tenant slice of one (internal/tenant), which lets
// several ADA operations share a single calculation TCAM without the layers
// above knowing.
type Store interface {
	// Lookup resolves one key tuple LPM-style (sig bits desc, priority
	// desc, insertion seq asc).
	Lookup(keys ...uint64) (*Entry, bool)
	// LookupBatch resolves many key tuples; result i is nil on miss.
	LookupBatch(keys [][]uint64) []*Entry
	// LookupSingleBatch is the single-field fast path; dst is reused when
	// large enough.
	LookupSingleBatch(keys []uint64, dst []*Entry) []*Entry
	// LookupIndexBatch is the zero-allocation hot path: packed key tuples
	// resolve to dense snapshot ordinals (−1 = miss) plus a typed payload
	// view, with dst reused when large enough. See Table.LookupIndexBatch
	// for the ordinal/payload pairing contract.
	LookupIndexBatch(flat []uint64, dst []int32) ([]int32, Payloads)

	// ApplyRowsAtomic reconciles the store contents toward rows with
	// minimal writes, all-or-nothing.
	ApplyRowsAtomic(rows []Row) (writes int, err error)
	// ApplyDelta applies an incremental reconciliation transactionally;
	// a delete of a key that is not installed fails with ErrDeltaConflict.
	ApplyDelta(upserts, deletes []Row) (writes int, err error)

	Name() string
	// Capacity is the maximum number of entries the store admits (a
	// tenant slice reports its current quota, which may change between
	// rounds).
	Capacity() int
	Len() int
	// FieldWidths reports the match-field widths in bits.
	FieldWidths() []int
	// Version increases on every mutation attempt per the package's
	// generation/version contract (see the package doc).
	Version() uint64
	// Fingerprint digests the installed rows (match key + action data),
	// independent of insertion order.
	Fingerprint() string

	// ReadRows reads back the physically installed rows, sorted by match
	// key — the ground truth the audit layer diffs a shadow against. A
	// tenant slice reads back only its own priority band.
	ReadRows() ([]RowDigest, error)
	// AuditFingerprint digests the read-back rows in Fingerprint format;
	// it diverges from Fingerprint after silent corruption.
	AuditFingerprint() (string, error)
	// AuditRepair reconciles the physical contents toward the expected
	// population with minimal writes, all-or-nothing, tolerating ghost
	// rows the shadow never installed.
	AuditRepair(expect []Row) (writes int, err error)
}

// Tamperer is the fault-injection surface of a store: silent in-hardware
// mutations that bypass write hooks, stats, and the Version counter, so a
// controller shadow cannot see them. *Table implements it directly; a
// tenant slice implements it by translating to its physical band, which
// keeps injected corruption inside the slice's own rows.
type Tamperer interface {
	TamperData(fields []Field, priority int, data any) error
	TamperInsert(fields []Field, priority int, data any) error
	TamperDelete(fields []Field, priority int) error
}

var (
	_ Store    = (*Table)(nil)
	_ Tamperer = (*Table)(nil)
)

// CapacityError reports an operation refused because the table (or tenant
// slice) lacks room, including how much headroom remained so operators — and
// the tenant partition manager — can size the shortfall without a second
// query. It unwraps to ErrCapacity.
type CapacityError struct {
	Table     string
	Capacity  int
	Installed int // entries installed when the operation was refused
	Requested int // rows the operation needed room for
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("%v: table %q: %d rows requested, %d installed, capacity %d (headroom %d)",
		ErrCapacity, e.Table, e.Requested, e.Installed, e.Capacity, e.Headroom())
}

func (e *CapacityError) Unwrap() error { return ErrCapacity }

// Headroom is the number of further rows the table could still admit when
// the operation was refused.
func (e *CapacityError) Headroom() int {
	if h := e.Capacity - e.Installed; h > 0 {
		return h
	}
	return 0
}

// RowKey serialises a row's match fields and priority exactly as the table's
// internal match keys used for diffing and fingerprints. Tenant slices use it
// to fingerprint their tenant-local view identically to a private table.
func RowKey(fields []Field, priority int) string {
	return matchKey(fields, priority)
}
