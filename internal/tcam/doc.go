// Package tcam models the ternary content-addressable memory found in
// PISA/RMT switch pipeline stages.
//
// A Table holds ternary entries over one or more key fields. Each field of an
// entry carries a value and a mask; a key matches when key & mask == value for
// every field. When several entries match, the table resolves the conflict by
// longest prefix match — the entry with the most total significant (masked)
// bits wins, mirroring the LPM resolution the paper relies on — with explicit
// priority and insertion order as tie-breakers.
//
// Capacity is a hard limit, as TCAM is the scarce resource whose footprint
// ADA exists to minimise. The table also keeps operation counters so the
// control-plane overhead accounting (paper Table II, Fig 9) can be derived
// from real operation counts rather than estimates.
//
// # The generation/version contract
//
// Every store in this package (and tenant slices outside it) exposes up to
// three monotonic counters with deliberately different blind spots. This
// file is the single normative statement of what each one means; other
// packages reference it instead of restating the rules.
//
// # Generation — bulk commits only
//
// Table.Generation advances by one each time a bulk reconciliation commits
// successfully: ReplaceAll, ApplyRows, ApplyRowsAtomic, ApplyDelta, and the
// audit layer's AuditRepair (which is a bulk reconcile). It never advances
// on a failed or rolled-back commit, on single-row operations, or on silent
// tampering. Invariant checks use it to assert a table is either fully
// old-generation or fully new-generation ("a round is atomic"), and
// GenerationChanged(since) is the convenience form of that question.
//
// # Version — every mutation attempt through the API
//
// Store.Version advances on every content mutation performed through the
// store API: bulk commits, single-row inserts/deletes/updates, and
// rollbacks included (a rolled-back commit bumps it even though the content
// is unchanged — conservative, at worst forcing one unnecessary full
// reconciliation). It is the counter a control-plane shadow copy guards its
// trust with: an unchanged Version proves nobody else touched the store.
// Two things deliberately do NOT advance it, because the control plane must
// not be able to notice them for free: silent hardware tampering (the
// Tamper* methods — only a read-back audit may discover those), and tiered
// tier re-placement (the logical population is untouched, so
// Version-guarded shadows stay valid across placement rounds).
//
// # Snapshot generation — everything the data plane can observe
//
// Snapshotter.LookupSnapshot returns a token that advances whenever the
// compiled lookup snapshot changes: every Version-visible mutation, plus
// the two Version-invisible ones above (tampering, tier placement). It
// exists because ordinal-based consumers — LookupIndexBatch callers and the
// LookupCache — hold dense ordinals that are only meaningful against the
// exact snapshot that produced them. This is the one counter that is never
// blind: if the bits a lookup would serve changed, the token changed.
//
// Rule of thumb: invariant checks key on Generation, control-plane shadows
// key on Version, data-plane caches key on the snapshot generation. Using a
// coarser counter where a finer one is required serves stale data (e.g. a
// cache keyed on Generation would survive a single-row update); using a
// finer one where a coarser one suffices merely costs spurious work.
package tcam
