package tcam

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("t", 4); err == nil {
		t.Error("no fields: want error")
	}
	if _, err := New("t", 4, 0); err == nil {
		t.Error("zero width: want error")
	}
	if _, err := New("t", 4, 65); err == nil {
		t.Error("width 65: want error")
	}
	if _, err := New("t", 4, 32, 32); err != nil {
		t.Errorf("two 32-bit fields: %v", err)
	}
}

func TestInsertLookupLPM(t *testing.T) {
	tb := MustNew("calc", 8, 3)
	// Figure 4b population: 00x, 010, 011, 1xx.
	for _, s := range []string{"00x", "010", "011", "1xx"} {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.InsertPrefix(p, 0, s); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		key  uint64
		want string
	}{
		{0, "00x"}, {1, "00x"}, {2, "010"}, {3, "011"},
		{4, "1xx"}, {5, "1xx"}, {6, "1xx"}, {7, "1xx"},
	}
	for _, tt := range tests {
		e, ok := tb.Lookup(tt.key)
		if !ok {
			t.Fatalf("Lookup(%d): miss", tt.key)
		}
		if e.Data.(string) != tt.want {
			t.Errorf("Lookup(%d) = %v, want %v", tt.key, e.Data, tt.want)
		}
	}
}

func TestLPMPreferredOverShorter(t *testing.T) {
	tb := MustNew("calc", 0, 4)
	root, _ := bitstr.Root(4)
	if _, err := tb.InsertPrefix(root, 100, "default"); err != nil {
		t.Fatal(err)
	}
	p := bitstr.MustNew(0b0100, 2, 4) // 01xx
	if _, err := tb.InsertPrefix(p, 0, "specific"); err != nil {
		t.Fatal(err)
	}
	// Despite lower priority, the longer prefix must win (paper: LPM
	// resolution).
	e, ok := tb.Lookup(5)
	if !ok || e.Data.(string) != "specific" {
		t.Fatalf("Lookup(5) = %v, want specific", e)
	}
	e, ok = tb.Lookup(9)
	if !ok || e.Data.(string) != "default" {
		t.Fatalf("Lookup(9) = %v, want default", e)
	}
}

func TestPriorityBreaksSigBitTies(t *testing.T) {
	tb := MustNew("calc", 0, 4)
	p := bitstr.MustNew(0b0100, 2, 4)
	if _, err := tb.InsertPrefix(p, 1, "low"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(p, 9, "high"); err != nil {
		t.Fatal(err)
	}
	e, ok := tb.Lookup(5)
	if !ok || e.Data.(string) != "high" {
		t.Fatalf("Lookup = %v, want high-priority entry", e)
	}
}

func TestInsertionOrderBreaksFullTies(t *testing.T) {
	tb := MustNew("calc", 0, 4)
	p := bitstr.MustNew(0b0100, 2, 4)
	first, err := tb.InsertPrefix(p, 0, "first")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(p, 0, "second"); err != nil {
		t.Fatal(err)
	}
	e, ok := tb.Lookup(5)
	if !ok || e.ID != first {
		t.Fatalf("Lookup = id %d, want first-installed %d", e.ID, first)
	}
}

func TestCapacity(t *testing.T) {
	tb := MustNew("small", 2, 8)
	p, _ := bitstr.Root(8)
	if _, err := tb.InsertPrefix(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(p, 0, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("third insert error = %v, want ErrCapacity", err)
	}
	if tb.Occupancy() != 1.0 {
		t.Errorf("Occupancy = %v, want 1", tb.Occupancy())
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	tb := MustNew("t", 4, 8)
	p := bitstr.MustNew(0x40, 2, 8)
	id, err := tb.InsertPrefix(p, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.UpdateData(id, "b"); err != nil {
		t.Fatal(err)
	}
	e, ok := tb.Lookup(0x41)
	if !ok || e.Data.(string) != "b" {
		t.Fatalf("after update: %v", e)
	}
	if err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup(0x41); ok {
		t.Error("lookup after delete: want miss")
	}
	if err := tb.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete error = %v, want ErrNotFound", err)
	}
	if err := tb.UpdateData(999, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing error = %v, want ErrNotFound", err)
	}
}

func TestTwoFieldMatch(t *testing.T) {
	tb := MustNew("mult", 0, 4, 4)
	x := bitstr.MustNew(0b0100, 2, 4) // 01xx: 4..7
	y := bitstr.MustNew(0b1000, 1, 4) // 1xxx: 8..15
	if _, err := tb.Insert([]Field{FieldFromPrefix(x), FieldFromPrefix(y)}, 0, "xy"); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(5, 9); !ok || e.Data.(string) != "xy" {
		t.Fatalf("Lookup(5,9) = %v", e)
	}
	if _, ok := tb.Lookup(5, 3); ok {
		t.Error("Lookup(5,3): want miss")
	}
	if _, ok := tb.Lookup(5); ok {
		t.Error("wrong arity lookup: want miss")
	}
}

func TestFieldValidation(t *testing.T) {
	tb := MustNew("t", 0, 4)
	if _, err := tb.Insert([]Field{{Value: 0x1F, Mask: 0x1F}}, 0, nil); !errors.Is(err, ErrFieldWidth) {
		t.Errorf("oversized field error = %v, want ErrFieldWidth", err)
	}
	if _, err := tb.Insert([]Field{{Value: 0b11, Mask: 0b10}}, 0, nil); !errors.Is(err, ErrFieldWidth) {
		t.Errorf("value outside mask error = %v, want ErrFieldWidth", err)
	}
	if _, err := tb.Insert(nil, 0, nil); !errors.Is(err, ErrFieldCount) {
		t.Errorf("nil fields error = %v, want ErrFieldCount", err)
	}
}

func TestReplaceAll(t *testing.T) {
	tb := MustNew("t", 4, 3)
	p1, _ := bitstr.Parse("0xx")
	p2, _ := bitstr.Parse("1xx")
	if _, err := tb.InsertPrefix(p1, 0, "old"); err != nil {
		t.Fatal(err)
	}
	writes, err := tb.ReplaceAll([]Row{RowFromPrefix(p1, "a"), RowFromPrefix(p2, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if writes != 3 { // 1 delete + 2 inserts
		t.Errorf("writes = %d, want 3", writes)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
	e, ok := tb.Lookup(6)
	if !ok || e.Data.(string) != "b" {
		t.Fatalf("Lookup(6) = %v, want b", e)
	}
	// Over capacity must fail and leave the table unchanged.
	rows := make([]Row, 5)
	for i := range rows {
		rows[i] = RowFromPrefix(p1, i)
	}
	if _, err := tb.ReplaceAll(rows); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity ReplaceAll error = %v, want ErrCapacity", err)
	}
	if tb.Len() != 2 {
		t.Errorf("table mutated by failed ReplaceAll: Len = %d", tb.Len())
	}
}

func TestStats(t *testing.T) {
	tb := MustNew("t", 0, 3)
	p, _ := bitstr.Parse("1xx")
	id, _ := tb.InsertPrefix(p, 0, nil)
	tb.Lookup(5)
	tb.Lookup(1)
	_ = tb.UpdateData(id, "x")
	_ = tb.Delete(id)
	s := tb.Stats()
	want := Stats{Lookups: 2, Hits: 1, Misses: 1, Inserts: 1, Deletes: 1, Updates: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
	tb.ResetStats()
	if tb.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestClearCountsDeletes(t *testing.T) {
	tb := MustNew("t", 0, 3)
	p, _ := bitstr.Parse("1xx")
	for i := 0; i < 3; i++ {
		if _, err := tb.InsertPrefix(p, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Error("Clear left entries")
	}
	if got := tb.Stats().Deletes; got != 3 {
		t.Errorf("Deletes after Clear = %d, want 3", got)
	}
}

// Reference implementation: linear scan picking max (sig, priority, -seq).
func referenceLookup(entries []*Entry, keys []uint64) *Entry {
	var best *Entry
	for _, e := range entries {
		if !matchAll(e.Fields, keys) {
			continue
		}
		if best == nil || less(e, best) {
			best = e
		}
	}
	return best
}

// Property: Lookup agrees with a brute-force reference over random tables.
func TestQuickLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(16)
		tb := MustNew("q", 0, width)
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			sig := rng.Intn(width + 1)
			var m uint64
			if width >= 64 {
				m = ^uint64(0)
			} else {
				m = (uint64(1) << uint(width)) - 1
			}
			p, err := bitstr.New(rng.Uint64()&m, sig, width)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tb.InsertPrefix(p, rng.Intn(4), i); err != nil {
				t.Fatal(err)
			}
		}
		for probe := 0; probe < 50; probe++ {
			var m uint64
			if width >= 64 {
				m = ^uint64(0)
			} else {
				m = (uint64(1) << uint(width)) - 1
			}
			key := rng.Uint64() & m
			got, ok := tb.Lookup(key)
			want := referenceLookup(tb.Entries(), []uint64{key})
			if (want == nil) != !ok {
				t.Fatalf("width %d key %d: ok=%v want %v", width, key, ok, want != nil)
			}
			if want != nil && got.ID != want.ID {
				t.Fatalf("width %d key %d: got entry %d (sig %d), want %d (sig %d)",
					width, key, got.ID, got.SigBits(), want.ID, want.SigBits())
			}
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := MustNew("c", 0, 16)
	p, _ := bitstr.Root(16)
	if _, err := tb.InsertPrefix(p, 0, uint64(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				switch rng.Intn(3) {
				case 0:
					tb.Lookup(rng.Uint64() & 0xFFFF)
				case 1:
					q, err := bitstr.New(rng.Uint64()&0xFF00, 8, 16)
					if err == nil {
						_, _ = tb.InsertPrefix(q, 0, nil)
					}
				default:
					tb.Len()
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestLookupAllOrder(t *testing.T) {
	tb := MustNew("t", 0, 4)
	root, _ := bitstr.Root(4)
	deep := bitstr.MustNew(0b0100, 2, 4)
	if _, err := tb.InsertPrefix(root, 0, "root"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertPrefix(deep, 0, "deep"); err != nil {
		t.Fatal(err)
	}
	all := tb.LookupAll(5)
	if len(all) != 2 || all[0].Data.(string) != "deep" || all[1].Data.(string) != "root" {
		t.Fatalf("LookupAll order wrong: %v", all)
	}
}
