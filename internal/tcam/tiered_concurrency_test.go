package tcam

import (
	"math/rand"
	"sync"
	"testing"
)

// TestTieredConcurrentChurn hammers every tiered lookup surface (and the
// lazy rebuildSnap behind them) against concurrent full-population
// ApplyRowsAtomic churn and heat-driven tier moves. Run under -race this is
// the tiered store's data-plane/control-plane isolation proof; without it,
// it still checks every observed snapshot is internally consistent (hits
// resolve to payloads the populations actually install).
func TestTieredConcurrentChurn(t *testing.T) {
	const width = 10
	rng := rand.New(rand.NewSource(41))
	ts := mustTiered(t, 16, 0, width)
	tilings := make([][]Row, 8)
	for i := range tilings {
		tilings[i] = tilingRows(randTiling(rng, width, 7))
	}
	if _, err := ts.ApplyRowsAtomic(tilings[0]); err != nil {
		t.Fatal(err)
	}

	applies := 60
	rebalances := 30
	if testing.Short() {
		applies, rebalances = 20, 10
	}
	done := make(chan struct{})
	var writers, readers sync.WaitGroup

	writers.Add(1)
	go func() { // full-population churn
		defer writers.Done()
		for i := 0; i < applies; i++ {
			if _, err := ts.ApplyRowsAtomic(tilings[i%len(tilings)]); err != nil {
				t.Errorf("apply %d: %v", i, err)
				return
			}
		}
	}()
	writers.Add(1)
	go func() { // heat-driven tier moves
		defer writers.Done()
		for i := 0; i < rebalances; i++ {
			salt := uint64(i)
			heat := func(fields []Field, _ int) uint64 { return fields[0].Value ^ salt }
			if _, err := ts.Rebalance(heat); err != nil {
				t.Errorf("rebalance %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed int64) { // reader: all three batch surfaces + singles
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]uint64, 256)
			var entDst []*Entry
			var ordDst []int32
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := range keys {
					keys[i] = rng.Uint64() & (1<<width - 1)
				}
				entDst = ts.LookupSingleBatch(keys, entDst)
				var pay Payloads
				ordDst, pay = ts.LookupIndexBatch(keys, ordDst)
				for i, k := range keys {
					if e, ok := ts.Lookup(k); ok {
						if v, vok := e.Data.(uint64); !vok || v < 1000 {
							t.Errorf("Lookup(%d): payload %v outside population range", k, e.Data)
							return
						}
					}
					if entDst[i] != nil {
						if v, vok := entDst[i].Data.(uint64); !vok || v < 1000 {
							t.Errorf("LookupSingleBatch(%d): payload %v outside population range", k, entDst[i].Data)
							return
						}
					}
					if ordDst[i] >= 0 {
						if v, ok := pay.Value(ordDst[i]); !ok || v < 1000 {
							t.Errorf("LookupIndexBatch(%d): payload %v/%v outside population range", k, v, ok)
							return
						}
					}
				}
			}
		}(int64(100 + r))
	}

	writers.Wait()
	close(done)
	readers.Wait()

	// The final state must still resolve bit-identically to a pure table
	// holding the same logical population.
	ref := MustNew("ref", 0, width)
	if _, err := ref.ApplyRowsAtomic(tilings[(applies-1)%len(tilings)]); err != nil {
		t.Fatal(err)
	}
	assertLookupParity(t, ts, ref, width)
}
