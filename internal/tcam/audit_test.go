package tcam

import (
	"errors"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// auditTable builds the Figure 4b population used across the audit tests.
func auditTable(t *testing.T) (*Table, []Row) {
	t.Helper()
	tb := MustNew("calc", 8, 3)
	var rows []Row
	for i, s := range []string{"00x", "010", "011", "1xx"} {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		r := RowFromPrefix(p, uint64(i+1))
		if _, err := tb.InsertPrefix(p, 0, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return tb, rows
}

func TestReadRowsSortedAndComplete(t *testing.T) {
	tb, rows := auditTable(t)
	digests, err := tb.ReadRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != len(rows) {
		t.Fatalf("ReadRows: %d rows, want %d", len(digests), len(rows))
	}
	for i := 1; i < len(digests); i++ {
		if digests[i-1].Key >= digests[i].Key {
			t.Fatalf("ReadRows not sorted: %q >= %q", digests[i-1].Key, digests[i].Key)
		}
	}
	// Digest keys must be the canonical row keys, round-trippable via Row().
	for _, d := range digests {
		if got := RowKey(d.Fields, d.Priority); got != d.Key {
			t.Errorf("digest key %q != RowKey %q", d.Key, got)
		}
		r := d.Row()
		if RowKey(r.Fields, r.Priority) != d.Key {
			t.Errorf("Row() does not round-trip key %q", d.Key)
		}
	}
}

func TestAuditFingerprintMatchesShadowWhenClean(t *testing.T) {
	tb, _ := auditTable(t)
	afp, err := tb.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp != tb.Fingerprint() {
		t.Fatalf("clean table: AuditFingerprint != Fingerprint\naudit:\n%s\nshadow:\n%s", afp, tb.Fingerprint())
	}
}

// TestTamperDataSilentButServed is the corruption model in one test: the
// externally visible Version must not move (the controller shadow stays
// blind), yet the data plane serves the corrupted payload, and only a
// read-back audit sees the divergence.
func TestTamperDataSilentButServed(t *testing.T) {
	tb, rows := auditTable(t)
	cleanFP := tb.Fingerprint()
	v := tb.Version()

	victim := rows[1] // "010" → key 2
	if err := tb.TamperData(victim.Fields, victim.Priority, uint64(999)); err != nil {
		t.Fatal(err)
	}

	if got := tb.Version(); got != v {
		t.Errorf("TamperData bumped Version %d → %d; silent corruption must stay invisible", v, got)
	}
	e, ok := tb.Lookup(2)
	if !ok {
		t.Fatal("Lookup(2): miss")
	}
	if e.Data.(uint64) != 999 {
		t.Errorf("data plane serves %v after tamper, want corrupted 999", e.Data)
	}
	afp, err := tb.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp == cleanFP {
		t.Error("AuditFingerprint unchanged after tamper; read-back must see corruption")
	}
}

func TestTamperInsertDeleteAndErrors(t *testing.T) {
	tb, rows := auditTable(t)

	if err := tb.TamperData([]Field{{Value: 7, Mask: 7}}, 5, uint64(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("TamperData on absent row: %v, want ErrNotFound", err)
	}
	if err := tb.TamperInsert(rows[0].Fields, rows[0].Priority, uint64(7)); !errors.Is(err, ErrDeltaConflict) {
		t.Errorf("TamperInsert over installed key: %v, want ErrDeltaConflict", err)
	}
	if err := tb.TamperDelete([]Field{{Value: 7, Mask: 7}}, 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("TamperDelete on absent row: %v, want ErrNotFound", err)
	}

	v := tb.Version()
	ghost := []Field{{Value: 5, Mask: 7}}
	if err := tb.TamperInsert(ghost, 3, uint64(42)); err != nil {
		t.Fatal(err)
	}
	digests, _ := tb.ReadRows()
	if len(digests) != len(rows)+1 {
		t.Fatalf("after ghost insert: %d rows, want %d", len(digests), len(rows)+1)
	}
	if err := tb.TamperDelete(ghost, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.TamperDelete(rows[3].Fields, rows[3].Priority); err != nil {
		t.Fatal(err)
	}
	digests, _ = tb.ReadRows()
	if len(digests) != len(rows)-1 {
		t.Fatalf("after drop: %d rows, want %d", len(digests), len(rows)-1)
	}
	if got := tb.Version(); got != v {
		t.Errorf("tamper insert/delete moved Version %d → %d", v, got)
	}

	// Ghost inserts still respect physical capacity.
	for i := 0; tb.Len() < tb.Capacity(); i++ {
		if err := tb.TamperInsert([]Field{{Value: uint64(i), Mask: 7}}, 7, uint64(i)); err != nil &&
			!errors.Is(err, ErrDeltaConflict) {
			t.Fatal(err)
		}
	}
	if err := tb.TamperInsert([]Field{{Value: 6, Mask: 7}}, 6, uint64(1)); !errors.Is(err, ErrCapacity) {
		t.Errorf("TamperInsert over capacity: %v, want ErrCapacity", err)
	}
}

// TestAuditRepairHealsAllFaultClasses corrupts, ghosts, and drops rows, then
// repairs against the pre-tamper expectation and checks the hardware
// fingerprint returns to the original with one write per divergent row.
func TestAuditRepairHealsAllFaultClasses(t *testing.T) {
	tb, rows := auditTable(t)
	cleanFP := tb.Fingerprint()

	if err := tb.TamperData(rows[0].Fields, rows[0].Priority, uint64(77)); err != nil {
		t.Fatal(err)
	}
	ghost := []Field{{Value: 5, Mask: 7}}
	if err := tb.TamperInsert(ghost, 3, uint64(42)); err != nil {
		t.Fatal(err)
	}
	if err := tb.TamperDelete(rows[2].Fields, rows[2].Priority); err != nil {
		t.Fatal(err)
	}

	writes, err := tb.AuditRepair(rows)
	if err != nil {
		t.Fatal(err)
	}
	// One update (corrupted), one delete (ghost), one insert (missing).
	if writes != 3 {
		t.Errorf("repair writes = %d, want 3 (minimal delta)", writes)
	}
	afp, err := tb.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp != cleanFP {
		t.Errorf("repair did not restore hardware:\n%s\nwant:\n%s", afp, cleanFP)
	}
	if afp != tb.Fingerprint() {
		t.Error("post-repair shadow and hardware fingerprints diverge")
	}
}

// TestTamperThenAPIWriteKeepsIndexFresh guards the idxSeq split: a tamper
// followed by a normal API write must not leave the compiled lookup index
// keyed at a stale sequence.
func TestTamperThenAPIWriteKeepsIndexFresh(t *testing.T) {
	tb, rows := auditTable(t)
	if err := tb.TamperData(rows[1].Fields, rows[1].Priority, uint64(500)); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(2); !ok || e.Data.(uint64) != 500 {
		t.Fatalf("post-tamper lookup: %v %v, want 500", e, ok)
	}
	// A normal API write on top of the tamper must recompile and serve both.
	p, _ := bitstr.Parse("001")
	if _, err := tb.InsertPrefix(p, 1, uint64(9)); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.Lookup(1); !ok || e.Data.(uint64) != 9 {
		t.Fatalf("lookup of new row: %v %v, want 9", e, ok)
	}
	if e, ok := tb.Lookup(2); !ok || e.Data.(uint64) != 500 {
		t.Fatalf("tampered row lost after API write: %v %v, want 500", e, ok)
	}
}
