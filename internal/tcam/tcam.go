package tcam

import (
	"errors"
	"fmt"
	"math/bits"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ada-repro/ada/internal/bitstr"
)

var (
	// ErrCapacity reports an insert into a full table.
	ErrCapacity = errors.New("tcam: table capacity exhausted")
	// ErrFieldCount reports a key or entry with the wrong number of fields.
	ErrFieldCount = errors.New("tcam: field count mismatch")
	// ErrNotFound reports an operation on a non-existent entry ID.
	ErrNotFound = errors.New("tcam: entry not found")
	// ErrFieldWidth reports a field value or mask outside its declared width.
	ErrFieldWidth = errors.New("tcam: field exceeds declared width")
	// ErrDeltaConflict reports an ApplyDelta whose view of the installed
	// population diverged from the table (e.g. a delete of a row that is not
	// installed). The caller's shadow copy is stale; it must fall back to a
	// full reconciliation.
	ErrDeltaConflict = errors.New("tcam: delta conflicts with installed entries")
)

// WriteOp identifies one physical row operation presented to a write hook.
type WriteOp int

// Write operations, in the order a driver would issue them.
const (
	// WriteInsert is a new row install.
	WriteInsert WriteOp = iota
	// WriteDelete is a row invalidate.
	WriteDelete
	// WriteUpdate is an in-place action-data rewrite.
	WriteUpdate
)

// String implements fmt.Stringer.
func (op WriteOp) String() string {
	switch op {
	case WriteInsert:
		return "insert"
	case WriteDelete:
		return "delete"
	case WriteUpdate:
		return "update"
	default:
		return fmt.Sprintf("WriteOp(%d)", int(op))
	}
}

// WriteHook is consulted before every physical row write. Returning an error
// aborts that write; whether earlier writes of the same bulk operation remain
// applied depends on the operation (see ApplyRows vs ApplyRowsAtomic). The
// hook runs with the table lock held and must not call back into the table.
type WriteHook func(WriteOp) error

// Field is one ternary key field of an entry: the key bits selected by Mask
// must equal Value.
type Field struct {
	Value uint64
	Mask  uint64
}

// FieldFromPrefix converts a bitstr.Prefix into a ternary Field.
func FieldFromPrefix(p bitstr.Prefix) Field {
	return Field{Value: p.Value(), Mask: p.Mask()}
}

// SigBits returns the number of significant (masked) bits in the field.
func (f Field) SigBits() int { return bits.OnesCount64(f.Mask) }

// Matches reports whether key satisfies the field pattern.
func (f Field) Matches(key uint64) bool { return key&f.Mask == f.Value }

// Entry is one installed TCAM row.
type Entry struct {
	// ID is the table-unique identifier assigned at insert.
	ID int
	// Fields are the ternary match fields, one per table key field.
	Fields []Field
	// Priority breaks ties between entries with equal significant bits;
	// larger wins.
	Priority int
	// Data is the opaque action data (e.g. an arithmetic result or a
	// register index).
	Data any

	sig int    // cached total significant bits
	seq int    // insertion sequence for deterministic final tie-break
	key string // match key serialised once at insert; Fields/Priority are immutable
	ord int32  // dense snapshot ordinal, assigned per compiled index build
}

// SigBits returns the total number of significant bits across all fields.
func (e *Entry) SigBits() int { return e.sig }

// MatchKey returns the entry's serialised match key (fields plus priority),
// computed once at insert time. Reconciliation and fingerprinting reuse it
// instead of re-serialising every installed entry per round.
func (e *Entry) MatchKey() string { return e.key }

// Stats counts table operations since creation (or the last ResetStats).
type Stats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Inserts uint64
	Deletes uint64
	Updates uint64
}

// counters is the live, atomically-updated form of Stats. Lookup counters
// are incremented off-lock so the read path never needs the table mutex.
type counters struct {
	lookups atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	inserts atomic.Uint64
	deletes atomic.Uint64
	updates atomic.Uint64
}

// Table is a ternary match table with bounded capacity. It is safe for
// concurrent use; Lookup and LookupBatch are lock-free against a compiled
// index snapshot (see index.go) and scale across goroutines.
type Table struct {
	mu sync.RWMutex

	name        string
	capacity    int
	fieldWidths []int
	entries     map[int]*Entry
	ordered     []*Entry // resolution order: sig desc, priority desc, seq asc
	nextID      int
	nextSeq     int
	generation  uint64
	hook        WriteHook
	stats       counters

	// version counts every content mutation performed through the table API
	// (unlike generation, which only counts bulk commits). It is the counter
	// a control-plane shadow copy watches; silent hardware tampering (the
	// Tamper* methods) deliberately does not advance it.
	version atomic.Uint64
	// idxSeq keys the compiled index. It advances on every content change —
	// API mutations and silent tampering alike — so the data plane always
	// serves the physical contents, even the corrupted ones the control
	// plane has not noticed yet.
	idxSeq atomic.Uint64
	idx    atomic.Pointer[index]
	idxMu  sync.Mutex // serialises index rebuilds
}

// New creates a ternary table. capacity <= 0 means unbounded (used to model
// the paper's "ideal, unlimited TCAM" baseline). fieldWidths declares the bit
// width of each key field; at least one field is required.
func New(name string, capacity int, fieldWidths ...int) (*Table, error) {
	if len(fieldWidths) == 0 {
		return nil, fmt.Errorf("%w: table %q needs at least one field", ErrFieldCount, name)
	}
	for i, w := range fieldWidths {
		if w < 1 || w > 64 {
			return nil, fmt.Errorf("%w: field %d width %d", ErrFieldWidth, i, w)
		}
	}
	widths := make([]int, len(fieldWidths))
	copy(widths, fieldWidths)
	return &Table{
		name:        name,
		capacity:    capacity,
		fieldWidths: widths,
		entries:     make(map[int]*Entry),
	}, nil
}

// MustNew is New but panics on error; for tests and static configuration.
func MustNew(name string, capacity int, fieldWidths ...int) *Table {
	t, err := New(name, capacity, fieldWidths...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Capacity returns the entry limit (0 = unbounded).
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Occupancy returns installed/capacity in [0,1]; 0 for unbounded tables.
func (t *Table) Occupancy() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.capacity <= 0 {
		return 0
	}
	return float64(len(t.entries)) / float64(t.capacity)
}

// FieldWidths returns a copy of the declared per-field widths.
func (t *Table) FieldWidths() []int {
	out := make([]int, len(t.fieldWidths))
	copy(out, t.fieldWidths)
	return out
}

// Stats returns a snapshot of the operation counters. The counters are
// atomics, so the snapshot needs no lock; individual counters are read
// independently (a concurrent lookup may land between two reads).
func (t *Table) Stats() Stats {
	return Stats{
		Lookups: t.stats.lookups.Load(),
		Hits:    t.stats.hits.Load(),
		Misses:  t.stats.misses.Load(),
		Inserts: t.stats.inserts.Load(),
		Deletes: t.stats.deletes.Load(),
		Updates: t.stats.updates.Load(),
	}
}

// ResetStats zeroes the operation counters.
func (t *Table) ResetStats() {
	t.stats.lookups.Store(0)
	t.stats.hits.Store(0)
	t.stats.misses.Store(0)
	t.stats.inserts.Store(0)
	t.stats.deletes.Store(0)
	t.stats.updates.Store(0)
}

// dirtyLocked records a content mutation; t.mu must be held exclusively.
// The next Lookup recompiles the index from the committed state.
func (t *Table) dirtyLocked() {
	t.version.Add(1)
	t.idxSeq.Add(1)
}

// tamperLocked records a silent hardware mutation: the compiled index is
// invalidated (the data plane must serve the corrupted contents) but the
// externally visible Version stays put, so a controller shadow guarded by
// Version cannot tell anything happened. t.mu must be held exclusively.
func (t *Table) tamperLocked() {
	t.idxSeq.Add(1)
}

// loadIndex returns the compiled index for the current table contents,
// rebuilding it if a mutation invalidated the cached one.
func (t *Table) loadIndex() *index {
	if ix := t.idx.Load(); ix != nil && ix.version == t.idxSeq.Load() {
		return ix
	}
	return t.rebuildIndex()
}

// rebuildIndex compiles a fresh snapshot under the read lock (so it always
// observes a fully committed state, never a torn mid-commit one) and
// publishes it. idxMu keeps a rebuild herd from compiling the same version
// many times; a writer committing mid-build simply leaves the published
// index stale, and the next lookup rebuilds again.
func (t *Table) rebuildIndex() *index {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if ix := t.idx.Load(); ix != nil && ix.version == t.idxSeq.Load() {
		return ix
	}
	t.mu.RLock()
	ix := buildIndex(t.idxSeq.Load(), t.fieldWidths, t.ordered)
	t.mu.RUnlock()
	t.idx.Store(ix)
	return ix
}

// SetWriteHook installs h as the per-row write interceptor (nil clears it).
// Fault injectors use this to make individual TCAM row writes fail the way a
// real switch driver's do.
func (t *Table) SetWriteHook(h WriteHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = h
}

// Generation returns the bulk-commit generation: it advances by one each
// time ReplaceAll, ApplyRows, ApplyRowsAtomic, or ApplyDelta completes
// successfully, and never on a failed or rolled-back commit. Invariant checks
// use it to assert a table is either fully old-generation or fully
// new-generation.
func (t *Table) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.generation
}

// GenerationChanged reports whether the bulk-commit generation has advanced
// past since — the idiom control-plane callers use to ask "did any round,
// audit repair, or repopulation commit since I last looked?" without
// restating the counter semantics (see doc.go for the full contract).
func (t *Table) GenerationChanged(since uint64) bool {
	return t.Generation() != since
}

// Version returns the content mutation counter. Unlike Generation it advances
// on every mutation — single-row operations and rollbacks included — so a
// caller holding a shadow copy of the installed population can use an
// unchanged Version as proof that no one else touched the table. The counter
// is conservative: a rolled-back commit bumps it even though the content is
// unchanged, which at worst forces one unnecessary full reconciliation.
func (t *Table) Version() uint64 { return t.version.Load() }

// Fingerprint digests the installed rows (match key, priority, action data)
// independent of entry IDs and install order: two tables holding the same
// logical population fingerprint equal. Used with Generation by the chaos
// invariant checks.
func (t *Table) Fingerprint() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.ordered))
	for _, e := range t.ordered {
		keys = append(keys, e.key+"="+fmt.Sprint(e.Data))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// writeLocked consults the write hook for one physical row operation.
func (t *Table) writeLocked(op WriteOp) error {
	if t.hook == nil {
		return nil
	}
	return t.hook(op)
}

func (t *Table) validateFields(fields []Field) error {
	if len(fields) != len(t.fieldWidths) {
		return fmt.Errorf("%w: got %d fields, table %q has %d",
			ErrFieldCount, len(fields), t.name, len(t.fieldWidths))
	}
	for i, f := range fields {
		var m uint64
		if t.fieldWidths[i] >= 64 {
			m = ^uint64(0)
		} else {
			m = (uint64(1) << uint(t.fieldWidths[i])) - 1
		}
		if f.Value&^m != 0 || f.Mask&^m != 0 {
			return fmt.Errorf("%w: field %d value %#x mask %#x width %d",
				ErrFieldWidth, i, f.Value, f.Mask, t.fieldWidths[i])
		}
		if f.Value&^f.Mask != 0 {
			return fmt.Errorf("%w: field %d has value bits outside mask", ErrFieldWidth, i)
		}
	}
	return nil
}

// Insert installs a new entry and returns its ID. It fails with ErrCapacity
// when the table is full.
func (t *Table) Insert(fields []Field, priority int, data any) (int, error) {
	if err := t.validateFields(fields); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		return 0, &CapacityError{Table: t.name, Capacity: t.capacity, Installed: len(t.entries), Requested: 1}
	}
	if err := t.writeLocked(WriteInsert); err != nil {
		return 0, err
	}
	e := t.newEntryLocked(fields, priority, data)
	t.entries[e.ID] = e
	t.insertOrdered(e)
	t.stats.inserts.Add(1)
	t.dirtyLocked()
	return e.ID, nil
}

// newEntryLocked allocates an entry with a fresh ID/seq and the cached sig
// bits and match key; t.mu must be held. The fields slice is copied.
func (t *Table) newEntryLocked(fields []Field, priority int, data any) *Entry {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sig := 0
	for _, f := range fs {
		sig += f.SigBits()
	}
	t.nextID++
	t.nextSeq++
	return &Entry{
		ID: t.nextID, Fields: fs, Priority: priority, Data: data,
		sig: sig, seq: t.nextSeq, key: matchKey(fs, priority),
	}
}

// removeOrderedLocked drops e from the resolution order; t.mu must be held.
func (t *Table) removeOrderedLocked(e *Entry) {
	for i, o := range t.ordered {
		if o == e {
			t.ordered = append(t.ordered[:i], t.ordered[i+1:]...)
			return
		}
	}
}

// InsertPrefix installs a single-field entry matching the given prefix.
func (t *Table) InsertPrefix(p bitstr.Prefix, priority int, data any) (int, error) {
	return t.Insert([]Field{FieldFromPrefix(p)}, priority, data)
}

// less reports resolution order: more significant bits first (LPM), then
// higher priority, then earlier insertion.
func less(a, b *Entry) bool {
	if a.sig != b.sig {
		return a.sig > b.sig
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (t *Table) insertOrdered(e *Entry) {
	i := sort.Search(len(t.ordered), func(i int) bool { return !less(t.ordered[i], e) })
	t.ordered = append(t.ordered, nil)
	copy(t.ordered[i+1:], t.ordered[i:])
	t.ordered[i] = e
}

// Delete removes the entry with the given ID.
func (t *Table) Delete(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: id %d in table %q", ErrNotFound, id, t.name)
	}
	if err := t.writeLocked(WriteDelete); err != nil {
		return err
	}
	delete(t.entries, id)
	t.removeOrderedLocked(e)
	t.stats.deletes.Add(1)
	t.dirtyLocked()
	return nil
}

// UpdateData replaces the action data of an existing entry in place. This
// models the cheap control-plane write that rewrites an action without
// touching the match key.
func (t *Table) UpdateData(id int, data any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: id %d in table %q", ErrNotFound, id, t.name)
	}
	if err := t.writeLocked(WriteUpdate); err != nil {
		return err
	}
	e.Data = data
	t.stats.updates.Add(1)
	t.dirtyLocked()
	return nil
}

// Clear removes all entries. Each removed entry counts as one delete, since
// the control plane pays per-entry to invalidate TCAM rows.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.deletes.Add(uint64(len(t.entries)))
	t.entries = make(map[int]*Entry)
	t.ordered = t.ordered[:0]
	t.dirtyLocked()
}

// Lookup matches the key fields against the table and returns the winning
// entry under LPM resolution. The match runs lock-free against the compiled
// index (O(total key width), not O(entries)); the returned entry is part of
// an immutable snapshot, so holding it across later table mutations is safe.
func (t *Table) Lookup(keys ...uint64) (*Entry, bool) {
	t.stats.lookups.Add(1)
	if len(keys) != len(t.fieldWidths) {
		t.stats.misses.Add(1)
		return nil, false
	}
	e := t.loadIndex().lookup(keys)
	if e == nil {
		t.stats.misses.Add(1)
		return nil, false
	}
	t.stats.hits.Add(1)
	return e, true
}

// LookupBatch resolves many multi-field keys against one compiled snapshot
// and returns the winners positionally (nil = miss). All results come from
// the same committed generation — a bulk commit racing with the batch is
// observed either entirely or not at all.
func (t *Table) LookupBatch(keys [][]uint64) []*Entry {
	out := make([]*Entry, len(keys))
	if len(keys) == 0 {
		return out
	}
	ix := t.loadIndex()
	var hits uint64
	for i, ks := range keys {
		if len(ks) != len(t.fieldWidths) {
			continue
		}
		if e := ix.lookup(ks); e != nil {
			out[i] = e
			hits++
		}
	}
	t.stats.lookups.Add(uint64(len(keys)))
	t.stats.hits.Add(hits)
	t.stats.misses.Add(uint64(len(keys)) - hits)
	return out
}

// LookupSingleBatch is LookupBatch for single-field tables, avoiding the
// per-key slice allocations of the general form. dst is reused when it has
// the capacity. On a multi-field table every key misses.
func (t *Table) LookupSingleBatch(keys []uint64, dst []*Entry) []*Entry {
	if cap(dst) >= len(keys) {
		dst = dst[:len(keys)]
		for i := range dst {
			dst[i] = nil
		}
	} else {
		dst = make([]*Entry, len(keys))
	}
	if len(keys) == 0 {
		return dst
	}
	if len(t.fieldWidths) != 1 {
		t.stats.lookups.Add(uint64(len(keys)))
		t.stats.misses.Add(uint64(len(keys)))
		return dst
	}
	ix := t.loadIndex()
	var hits uint64
	kbuf := make([]uint64, 1)
	for i, k := range keys {
		kbuf[0] = k
		if e := ix.lookup(kbuf); e != nil {
			dst[i] = e
			hits++
		}
	}
	t.stats.lookups.Add(uint64(len(keys)))
	t.stats.hits.Add(hits)
	t.stats.misses.Add(uint64(len(keys)) - hits)
	return dst
}

// LookupSingleBatchTrie is LookupSingleBatch pinned to the compiled trie
// walk, bypassing the range-compiled fast path single-field tables usually
// resolve through. Like LookupAll's linear scan it is a reference path: the
// differential tests cross-check the range compilation against it, and the
// data-plane throughput benchmark uses it to replicate the
// pre-optimisation per-sample cost. Results are bit-identical to
// LookupSingleBatch.
func (t *Table) LookupSingleBatchTrie(keys []uint64, dst []*Entry) []*Entry {
	if cap(dst) >= len(keys) {
		dst = dst[:len(keys)]
		for i := range dst {
			dst[i] = nil
		}
	} else {
		dst = make([]*Entry, len(keys))
	}
	if len(keys) == 0 {
		return dst
	}
	if len(t.fieldWidths) != 1 {
		t.stats.lookups.Add(uint64(len(keys)))
		t.stats.misses.Add(uint64(len(keys)))
		return dst
	}
	ix := t.loadIndex()
	var hits uint64
	kbuf := make([]uint64, 1)
	for i, k := range keys {
		kbuf[0] = k
		if ord := ix.trieLookupOrd(kbuf); ord >= 0 {
			dst[i] = ix.entries[ord]
			hits++
		}
	}
	t.stats.lookups.Add(uint64(len(keys)))
	t.stats.hits.Add(hits)
	t.stats.misses.Add(uint64(len(keys)) - hits)
	return dst
}

// Payloads is the typed action-data view of one compiled snapshot. Ordinals
// returned by a LookupIndexBatch call index only the Payloads returned by
// that same call — both come from the same immutable snapshot, so holding
// them across later table mutations is safe, but mixing ordinals and
// payloads from different calls is not.
type Payloads struct {
	entries []*Entry
	vals    []uint64 // dense payload per ordinal, valid when typed
	typed   bool
}

// Value resolves an ordinal to its action data as a uint64 without boxing:
// a direct array load when the snapshot compiled typed (every entry's Data a
// uint64 or non-negative int — all population schemes and the monitor
// qualify), an interface assertion otherwise. It reports false for negative
// (miss) or out-of-snapshot ordinals and for non-integral action data.
func (p Payloads) Value(ord int32) (uint64, bool) {
	if ord < 0 || int(ord) >= len(p.entries) {
		return 0, false
	}
	if p.typed {
		return p.vals[ord], true
	}
	switch d := p.entries[ord].Data.(type) {
	case uint64:
		return d, true
	case int:
		if d >= 0 {
			return uint64(d), true
		}
	}
	return 0, false
}

// Entry returns the snapshot entry behind an ordinal (nil for a miss
// ordinal), for callers that need more than the typed payload.
func (p Payloads) Entry(ord int32) *Entry {
	if ord < 0 || int(ord) >= len(p.entries) {
		return nil
	}
	return p.entries[ord]
}

// Typed reports whether Value resolves through the dense payload array.
func (p Payloads) Typed() bool { return p.typed }

// LookupIndexBatch is the zero-allocation batch lookup: flat packs
// len(flat)/arity key tuples contiguously ([x0, y0, x1, y1, ...] for a
// two-field table), and each tuple resolves to the winning entry's dense
// snapshot ordinal (−1 on a miss) against one compiled snapshot. dst is
// reused when it has the capacity, so a caller recycling its scratch buffer
// performs no allocation; the returned Payloads resolves ordinals to action
// data without per-sample interface assertions. Trailing elements of flat
// that do not form a whole tuple are ignored.
func (t *Table) LookupIndexBatch(flat []uint64, dst []int32) ([]int32, Payloads) {
	arity := len(t.fieldWidths)
	n := len(flat) / arity
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int32, n)
	}
	ix := t.loadIndex()
	var hits uint64
	if ix.rset != nil && arity == 1 {
		rs := ix.rset
		for i, k := range flat[:n] {
			ord := rs.resolve(k)
			dst[i] = ord
			if ord >= 0 {
				hits++
			}
		}
	} else {
		for i := 0; i < n; i++ {
			ord := ix.lookupOrd(flat[i*arity : (i+1)*arity])
			dst[i] = ord
			if ord >= 0 {
				hits++
			}
		}
	}
	if n > 0 {
		t.stats.lookups.Add(uint64(n))
		t.stats.hits.Add(hits)
		t.stats.misses.Add(uint64(n) - hits)
	}
	return dst, Payloads{entries: ix.entries, vals: ix.payload, typed: ix.typed}
}

// LookupSnapshot implements Snapshotter: the current compiled snapshot's
// payload view plus its generation token. The token is the compiled-index
// sequence, which advances on every content change — bulk commits,
// single-row writes, rollbacks, and silent tampering alike — so a
// LookupCache keyed on it can never serve an ordinal from a superseded
// snapshot.
func (t *Table) LookupSnapshot() (Payloads, uint64) {
	ix := t.loadIndex()
	return Payloads{entries: ix.entries, vals: ix.payload, typed: ix.typed}, ix.version
}

// LookupAll returns every matching entry in resolution order. This is the
// reference linear scan the compiled index is differentially tested against;
// it deliberately bypasses the index.
func (t *Table) LookupAll(keys ...uint64) []*Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(keys) != len(t.fieldWidths) {
		return nil
	}
	var out []*Entry
	for _, e := range t.ordered {
		if matchAll(e.Fields, keys) {
			out = append(out, e)
		}
	}
	return out
}

func matchAll(fields []Field, keys []uint64) bool {
	for i, f := range fields {
		if !f.Matches(keys[i]) {
			return false
		}
	}
	return true
}

// Entries returns a snapshot of all entries in resolution order.
func (t *Table) Entries() []*Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Entry, len(t.ordered))
	copy(out, t.ordered)
	return out
}

// ReplaceAll atomically swaps the table contents for the given rows,
// returning the number of TCAM writes performed (deletes of stale rows plus
// inserts of new rows). This is the bulk operation the ADA controller issues
// at the end of every control round.
func (t *Table) ReplaceAll(rows []Row) (writes int, err error) {
	for _, r := range rows {
		if err := t.validateFields(r.Fields); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.capacity > 0 && len(rows) > t.capacity {
		return 0, &CapacityError{Table: t.name, Capacity: t.capacity, Installed: len(t.entries), Requested: len(rows)}
	}
	// Pre-flight every row write so the advertised atomicity holds even
	// under an injected per-row failure: either all writes are admitted or
	// none are applied.
	for range t.entries {
		if err := t.writeLocked(WriteDelete); err != nil {
			return 0, err
		}
	}
	for range rows {
		if err := t.writeLocked(WriteInsert); err != nil {
			return 0, err
		}
	}
	writes = len(t.entries) + len(rows)
	t.stats.deletes.Add(uint64(len(t.entries)))
	t.entries = make(map[int]*Entry, len(rows))
	t.ordered = t.ordered[:0]
	for _, r := range rows {
		e := t.newEntryLocked(r.Fields, r.Priority, r.Data)
		t.entries[e.ID] = e
		t.insertOrdered(e)
		t.stats.inserts.Add(1)
	}
	t.generation++
	t.dirtyLocked()
	return writes, nil
}

// ApplyRows reconciles the table contents toward the given rows with the
// minimum number of TCAM writes: rows whose match key and action data are
// already installed cost nothing, rows whose key exists but whose data
// changed cost one action rewrite, and only genuinely new/stale rows cost
// an insert/delete. This models a real switch driver, which diffs against
// its shadow copy instead of re-flashing the table (and is what keeps the
// paper's Table II write counts low).
//
// Partial-failure contract: row writes are issued in update, delete, insert
// order, and when one fails (a write hook error) ApplyRows stops and returns
// the error with every earlier write still applied — exactly how a
// non-transactional driver leaves a table. Callers that need all-or-nothing
// semantics must use ApplyRowsAtomic.
//
// The end state on success is identical to ReplaceAll(rows); only the write
// accounting differs.
func (t *Table) ApplyRows(rows []Row) (writes int, err error) {
	for _, r := range rows {
		if err := t.validateFields(r.Fields); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	writes, err = t.applyRowsLocked(rows)
	if err == nil {
		t.generation++
	}
	// A partial failure still mutated the table, so the index must be
	// recompiled either way.
	t.dirtyLocked()
	return writes, err
}

// ApplyRowsAtomic is ApplyRows with transactional semantics: the
// reconciliation is staged against a shadow snapshot of the table, and on
// any row-write failure the table (entries, counters, generation) is
// restored to its pre-call state. This models rebuilding the calculation
// population into a shadow generation and committing it atomically, so a
// data-plane lookup never observes a partially populated table.
func (t *Table) ApplyRowsAtomic(rows []Row) (writes int, err error) {
	for _, r := range rows {
		if err := t.validateFields(r.Fields); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := t.snapshotLocked()
	writes, err = t.applyRowsLocked(rows)
	if err != nil {
		t.restoreLocked(snap)
		return 0, err
	}
	t.generation++
	t.dirtyLocked()
	return writes, nil
}

// applyRowsLocked is the shared reconciliation. On a row-write failure it
// returns immediately with earlier writes applied; t.mu must be held.
func (t *Table) applyRowsLocked(rows []Row) (writes int, err error) {
	if t.capacity > 0 && len(rows) > t.capacity {
		return 0, &CapacityError{Table: t.name, Capacity: t.capacity, Installed: len(t.entries), Requested: len(rows)}
	}
	// Index current entries by their cached match key (serialised once at
	// insert, not per reconcile).
	current := make(map[string][]*Entry, len(t.entries))
	for _, e := range t.ordered {
		current[e.key] = append(current[e.key], e)
	}
	var toInsert []Row
	for _, r := range rows {
		k := matchKey(r.Fields, r.Priority)
		list := current[k]
		if len(list) == 0 {
			toInsert = append(toInsert, r)
			continue
		}
		e := list[0]
		current[k] = list[1:]
		if !dataEqual(e.Data, r.Data) {
			if err := t.writeLocked(WriteUpdate); err != nil {
				return writes, err
			}
			e.Data = r.Data
			t.stats.updates.Add(1)
			writes++
		}
	}
	// Remove stale entries.
	for _, list := range current {
		for _, e := range list {
			if err := t.writeLocked(WriteDelete); err != nil {
				return writes, err
			}
			delete(t.entries, e.ID)
			t.removeOrderedLocked(e)
			t.stats.deletes.Add(1)
			writes++
		}
	}
	// Install new entries.
	for _, r := range toInsert {
		if err := t.writeLocked(WriteInsert); err != nil {
			return writes, err
		}
		e := t.newEntryLocked(r.Fields, r.Priority, r.Data)
		t.entries[e.ID] = e
		t.insertOrdered(e)
		t.stats.inserts.Add(1)
		writes++
	}
	return writes, nil
}

// ApplyDelta applies an incremental reconciliation: deletes removes installed
// rows by match key, upserts installs new rows or rewrites the action data of
// rows already installed under the same key. Unlike ApplyRows* it never
// visits unchanged entries, so a converged round costs O(delta), not
// O(table).
//
// The operation is transactional: on any failure — a write-hook error, a
// capacity overflow, or a delete whose key is not installed (ErrDeltaConflict,
// meaning the caller's shadow copy is stale and a full reconciliation is
// required) — every applied row is rolled back and the table is left exactly
// as before the call. Duplicate keys in deletes consume one installed entry
// each. On success the end state is identical to the equivalent full
// ApplyRowsAtomic, generation advances, and writes counts physical row
// operations (deletes + inserts + data rewrites; an upsert whose data is
// already installed costs nothing).
func (t *Table) ApplyDelta(upserts, deletes []Row) (writes int, err error) {
	for _, r := range upserts {
		if err := t.validateFields(r.Fields); err != nil {
			return 0, err
		}
	}
	for _, r := range deletes {
		if err := t.validateFields(r.Fields); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Undo log: each applied physical op records how to reverse itself.
	// Rollback replays it in reverse; re-inserting the original *Entry
	// restores the exact resolution order because its seq is preserved.
	type undoOp struct {
		op      WriteOp
		e       *Entry
		oldData any
	}
	var undo []undoOp
	savedID, savedSeq := t.nextID, t.nextSeq
	savedIns := t.stats.inserts.Load()
	savedDel := t.stats.deletes.Load()
	savedUpd := t.stats.updates.Load()
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			u := undo[i]
			switch u.op {
			case WriteDelete:
				t.entries[u.e.ID] = u.e
				t.insertOrdered(u.e)
			case WriteUpdate:
				u.e.Data = u.oldData
			case WriteInsert:
				delete(t.entries, u.e.ID)
				t.removeOrderedLocked(u.e)
			}
		}
		t.nextID, t.nextSeq = savedID, savedSeq
		t.stats.inserts.Store(savedIns)
		t.stats.deletes.Store(savedDel)
		t.stats.updates.Store(savedUpd)
		t.dirtyLocked()
	}

	current := make(map[string][]*Entry, len(t.entries))
	for _, e := range t.ordered {
		current[e.key] = append(current[e.key], e)
	}

	// Deletes first, freeing capacity for the inserts.
	for _, r := range deletes {
		k := matchKey(r.Fields, r.Priority)
		list := current[k]
		if len(list) == 0 {
			rollback()
			return 0, fmt.Errorf("%w: delete of %q not installed in table %q", ErrDeltaConflict, k, t.name)
		}
		e := list[0]
		current[k] = list[1:]
		if err := t.writeLocked(WriteDelete); err != nil {
			rollback()
			return 0, err
		}
		delete(t.entries, e.ID)
		t.removeOrderedLocked(e)
		t.stats.deletes.Add(1)
		writes++
		undo = append(undo, undoOp{op: WriteDelete, e: e})
	}
	for _, r := range upserts {
		k := matchKey(r.Fields, r.Priority)
		if list := current[k]; len(list) > 0 {
			e := list[0]
			if dataEqual(e.Data, r.Data) {
				continue
			}
			if err := t.writeLocked(WriteUpdate); err != nil {
				rollback()
				return 0, err
			}
			undo = append(undo, undoOp{op: WriteUpdate, e: e, oldData: e.Data})
			e.Data = r.Data
			t.stats.updates.Add(1)
			writes++
			continue
		}
		if t.capacity > 0 && len(t.entries) >= t.capacity {
			rollback()
			return 0, &CapacityError{Table: t.name, Capacity: t.capacity, Installed: len(t.entries), Requested: 1}
		}
		if err := t.writeLocked(WriteInsert); err != nil {
			rollback()
			return 0, err
		}
		e := t.newEntryLocked(r.Fields, r.Priority, r.Data)
		t.entries[e.ID] = e
		t.insertOrdered(e)
		t.stats.inserts.Add(1)
		writes++
		undo = append(undo, undoOp{op: WriteInsert, e: e})
		current[k] = append(current[k], e)
	}
	t.generation++
	t.dirtyLocked()
	return writes, nil
}

// tableSnapshot captures the mutable table state for rollback. Only the
// mutator counters are captured: lookup counters advance lock-free while a
// commit is staged, so restoring them would erase concurrent lookups.
type tableSnapshot struct {
	entries map[int]*Entry
	ordered []*Entry
	nextID  int
	nextSeq int
	inserts uint64
	deletes uint64
	updates uint64
}

// snapshotLocked deep-copies the entries (Field slices are immutable and
// shared; Data is copied by value at the Entry level, which is enough
// because updates replace Data rather than mutating through it).
func (t *Table) snapshotLocked() tableSnapshot {
	snap := tableSnapshot{
		entries: make(map[int]*Entry, len(t.entries)),
		ordered: make([]*Entry, len(t.ordered)),
		nextID:  t.nextID,
		nextSeq: t.nextSeq,
		inserts: t.stats.inserts.Load(),
		deletes: t.stats.deletes.Load(),
		updates: t.stats.updates.Load(),
	}
	for i, e := range t.ordered {
		c := *e
		snap.ordered[i] = &c
		snap.entries[c.ID] = &c
	}
	return snap
}

func (t *Table) restoreLocked(snap tableSnapshot) {
	t.entries = snap.entries
	t.ordered = snap.ordered
	t.nextID = snap.nextID
	t.nextSeq = snap.nextSeq
	t.stats.inserts.Store(snap.inserts)
	t.stats.deletes.Store(snap.deletes)
	t.stats.updates.Store(snap.updates)
	t.dirtyLocked()
}

// matchKey serialises an entry's match fields and priority for diffing.
func matchKey(fields []Field, priority int) string {
	var b strings.Builder
	b.Grow(len(fields)*34 + 12)
	for _, f := range fields {
		b.WriteString(strconv.FormatUint(f.Value, 16))
		b.WriteByte('/')
		b.WriteString(strconv.FormatUint(f.Mask, 16))
		b.WriteByte(';')
	}
	b.WriteString(strconv.Itoa(priority))
	return b.String()
}

// dataEqual compares action data without panicking on non-comparable types.
func dataEqual(a, b any) bool {
	return reflect.DeepEqual(a, b)
}

// Row is the insert-time description of an entry, used by ReplaceAll and
// ApplyRows.
type Row struct {
	Fields   []Field
	Priority int
	Data     any
}

// RowFromPrefix builds a single-field Row from a prefix.
func RowFromPrefix(p bitstr.Prefix, data any) Row {
	return Row{Fields: []Field{FieldFromPrefix(p)}, Data: data}
}

// String renders a short human-readable summary.
func (t *Table) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "tcam %q: %d", t.name, len(t.entries))
	if t.capacity > 0 {
		fmt.Fprintf(&b, "/%d", t.capacity)
	}
	b.WriteString(" entries")
	return b.String()
}
