package tcam

import (
	"fmt"
	"sort"
	"strings"
)

// RowDigest is one physical row as read back from the hardware: the match
// key in the table's canonical serialisation, the raw fields/priority it was
// derived from, and the installed action data. The audit layer diffs digests
// against the controller's shadow population to classify desync.
type RowDigest struct {
	Key      string
	Fields   []Field
	Priority int
	Data     any
}

// Row converts the digest back into a Row suitable for re-installation.
func (d RowDigest) Row() Row {
	return Row{Fields: d.Fields, Priority: d.Priority, Data: d.Data}
}

// DataEqual compares two action payloads with the same semantics the
// table's own reconciliation diff uses, so an external audit classifies
// "changed data" exactly when ApplyRowsAtomic would issue an update.
func DataEqual(a, b any) bool { return dataEqual(a, b) }

// ReadRows reads back every physically installed row, sorted by match key
// for deterministic comparison. Unlike Entries, it reflects the true
// hardware contents — including rows silently corrupted or inserted by the
// Tamper methods that the version counter never saw.
func (t *Table) ReadRows() ([]RowDigest, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]RowDigest, 0, len(t.ordered))
	for _, e := range t.ordered {
		fs := make([]Field, len(e.Fields))
		copy(fs, e.Fields)
		out = append(out, RowDigest{Key: e.key, Fields: fs, Priority: e.Priority, Data: e.Data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// AuditFingerprint digests the rows actually installed in hardware by
// reading them back, in the same format as Fingerprint. For an untampered
// table the two are equal; after silent corruption Fingerprint (which a
// shadow copy can mirror) and AuditFingerprint diverge.
func (t *Table) AuditFingerprint() (string, error) {
	rows, err := t.ReadRows()
	if err != nil {
		return "", err
	}
	return DigestFingerprint(rows), nil
}

// DigestFingerprint renders read-back digests in Fingerprint format so
// hardware read-backs and shadow fingerprints compare byte-for-byte.
func DigestFingerprint(rows []RowDigest) string {
	keys := make([]string, 0, len(rows))
	for _, d := range rows {
		keys = append(keys, d.Key+"="+fmt.Sprint(d.Data))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// AuditRepair reconciles the physical contents toward the expected
// population with minimal writes, all-or-nothing. It is the anti-entropy
// write path: unlike ApplyDelta it tolerates ghost rows (entries the shadow
// never installed) because it diffs against the true hardware state.
func (t *Table) AuditRepair(expect []Row) (writes int, err error) {
	return t.ApplyRowsAtomic(expect)
}

// findTamperTargetLocked locates the physical entry with the given match
// fields and priority; t.mu must be held.
func (t *Table) findTamperTargetLocked(fields []Field, priority int) *Entry {
	key := matchKey(fields, priority)
	for _, e := range t.ordered {
		if e.key == key {
			return e
		}
	}
	return nil
}

// TamperData silently overwrites the action data of the installed row with
// the given match fields and priority, modelling in-hardware payload
// corruption (e.g. a bit-flip): no write hook fires, no stats move, and the
// externally visible Version stays put, so controller shadows keep trusting
// a row that now serves wrong data. The data plane serves the corrupted
// payload immediately. Returns ErrNotFound when no such row is installed.
func (t *Table) TamperData(fields []Field, priority int, data any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findTamperTargetLocked(fields, priority)
	if e == nil {
		return fmt.Errorf("%w: tamper target %q in table %q", ErrNotFound, matchKey(fields, priority), t.name)
	}
	e.Data = data
	t.tamperLocked()
	return nil
}

// TamperInsert silently installs a ghost row the controller never asked
// for. It respects physical capacity (hardware cannot hold more rows than
// it has) but bypasses the write hook, stats, and the Version counter.
// Inserting over an already-installed match key fails with ErrDeltaConflict
// so injectors can distinguish ghosts from corruption.
func (t *Table) TamperInsert(fields []Field, priority int, data any) error {
	if err := t.validateFields(fields); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.findTamperTargetLocked(fields, priority) != nil {
		return fmt.Errorf("%w: ghost row %q already installed in table %q",
			ErrDeltaConflict, matchKey(fields, priority), t.name)
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		return &CapacityError{Table: t.name, Capacity: t.capacity, Installed: len(t.entries), Requested: 1}
	}
	e := t.newEntryLocked(fields, priority, data)
	t.entries[e.ID] = e
	t.insertOrdered(e)
	t.tamperLocked()
	return nil
}

// TamperDelete silently drops the installed row with the given match fields
// and priority, modelling a row lost in hardware. Bypasses the write hook,
// stats, and the Version counter. Returns ErrNotFound when absent.
func (t *Table) TamperDelete(fields []Field, priority int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findTamperTargetLocked(fields, priority)
	if e == nil {
		return fmt.Errorf("%w: tamper target %q in table %q", ErrNotFound, matchKey(fields, priority), t.name)
	}
	delete(t.entries, e.ID)
	t.removeOrderedLocked(e)
	t.tamperLocked()
	return nil
}
