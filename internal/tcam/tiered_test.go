package tcam

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// randTiling returns a random disjoint prefix tiling of the width-bit domain
// (the shape of every ADA calculation population).
func randTiling(rng *rand.Rand, width, maxDepth int) []bitstr.Prefix {
	root, _ := bitstr.Root(width)
	var out []bitstr.Prefix
	var split func(p bitstr.Prefix, depth int)
	split = func(p bitstr.Prefix, depth int) {
		if p.Bits() < width && depth < maxDepth && (depth == 0 || rng.Intn(3) > 0) {
			l, _ := p.Left()
			r, _ := p.Right()
			split(l, depth+1)
			split(r, depth+1)
			return
		}
		out = append(out, p)
	}
	split(root, 0)
	return out
}

func tilingRows(ps []bitstr.Prefix) []Row {
	rows := make([]Row, len(ps))
	for i, p := range ps {
		rows[i] = RowFromPrefix(p, uint64(1000+i))
	}
	return rows
}

// mustTiered builds a tiered store or fails the test.
func mustTiered(t *testing.T, tcamEntries, capacity int, widths ...int) *TieredStore {
	t.Helper()
	ts, err := NewTiered("tier", tcamEntries, capacity, widths...)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// assertLookupParity checks every key of the width-bit domain resolves
// identically through the tiered store and the reference table, across all
// four lookup surfaces.
func assertLookupParity(t *testing.T, ts *TieredStore, ref *Table, width int) {
	t.Helper()
	n := uint64(1) << uint(width)
	keys := make([]uint64, 0, n)
	for k := uint64(0); k < n; k++ {
		keys = append(keys, k)
	}
	// Single lookups.
	for _, k := range keys {
		te, tok := ts.Lookup(k)
		re, rok := ref.Lookup(k)
		if tok != rok {
			t.Fatalf("Lookup(%d): tiered ok=%v, table ok=%v", k, tok, rok)
		}
		if tok && !dataEqual(te.Data, re.Data) {
			t.Fatalf("Lookup(%d): tiered %v, table %v", k, te.Data, re.Data)
		}
	}
	// Batch surfaces against one snapshot each.
	single := ts.LookupSingleBatch(keys, nil)
	refSingle := ref.LookupSingleBatch(keys, nil)
	ords, pay := ts.LookupIndexBatch(keys, nil)
	for i, k := range keys {
		var want any
		if refSingle[i] != nil {
			want = refSingle[i].Data
		}
		var got any
		if single[i] != nil {
			got = single[i].Data
		}
		if !dataEqual(got, want) {
			t.Fatalf("LookupSingleBatch(%d): tiered %v, table %v", k, got, want)
		}
		if want == nil {
			if ords[i] >= 0 {
				t.Fatalf("LookupIndexBatch(%d): hit ordinal %d, table missed", k, ords[i])
			}
			continue
		}
		if ords[i] < 0 {
			t.Fatalf("LookupIndexBatch(%d): miss, table hit %v", k, want)
		}
		v, ok := pay.Value(ords[i])
		if !ok || v != want.(uint64) {
			t.Fatalf("LookupIndexBatch(%d): payload %v/%v, want %v", k, v, ok, want)
		}
	}
}

// TestTieredDifferentialVsTable is the core bit-identity claim: a TieredStore
// with a tiny TCAM slice resolves every key exactly like a pure Table holding
// the same logical population, and fingerprints byte-identically, across
// random populations and incremental churn.
func TestTieredDifferentialVsTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width = 8
	for trial := 0; trial < 25; trial++ {
		ps := randTiling(rng, width, 6)
		rows := tilingRows(ps)
		ts := mustTiered(t, 4, 0, width)
		ref := MustNew("ref", 0, width)
		if _, err := ts.ApplyRowsAtomic(rows); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyRowsAtomic(rows); err != nil {
			t.Fatal(err)
		}
		if ts.HotLen() > 4 {
			t.Fatalf("hot tier overflowed its budget: %d", ts.HotLen())
		}
		if ts.Len() != len(rows) {
			t.Fatalf("Len = %d, want %d", ts.Len(), len(rows))
		}
		if ts.Fingerprint() != ref.Fingerprint() {
			t.Fatal("fingerprint diverged from reference table")
		}
		assertLookupParity(t, ts, ref, width)

		// Churn: replace with a fresh tiling via the full-reconcile path and
		// re-check (sticky placement must not corrupt resolution).
		rows2 := tilingRows(randTiling(rng, width, 6))
		if _, err := ts.ApplyRowsAtomic(rows2); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyRowsAtomic(rows2); err != nil {
			t.Fatal(err)
		}
		if ts.Fingerprint() != ref.Fingerprint() {
			t.Fatal("fingerprint diverged after churn")
		}
		assertLookupParity(t, ts, ref, width)
	}
}

// TestTieredDeltaDifferential drives the same population through ApplyDelta
// on both stores and checks parity, including the conflict path leaving the
// tiered store untouched.
func TestTieredDeltaDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 8
	ps := randTiling(rng, width, 6)
	rows := tilingRows(ps)
	ts := mustTiered(t, 4, 0, width)
	ref := MustNew("ref", 0, width)
	for _, s := range []Store{ts, ref} {
		if _, err := s.ApplyRowsAtomic(rows); err != nil {
			t.Fatal(err)
		}
	}

	// Split one leaf into its two children: delete the parent, insert kids.
	victim := ps[len(ps)/2]
	for victim.Bits() == width {
		victim = ps[rng.Intn(len(ps))]
	}
	l, _ := victim.Left()
	r, _ := victim.Right()
	up := []Row{RowFromPrefix(l, uint64(7001)), RowFromPrefix(r, uint64(7002))}
	del := []Row{RowFromPrefix(victim, nil)}
	for _, s := range []Store{ts, ref} {
		if _, err := s.ApplyDelta(up, del); err != nil {
			t.Fatal(err)
		}
	}
	if ts.Fingerprint() != ref.Fingerprint() {
		t.Fatal("fingerprint diverged after delta")
	}
	assertLookupParity(t, ts, ref, width)

	// Conflict: deleting a row absent from both tiers must refuse and leave
	// the store exactly as it was (fingerprint and contents unchanged).
	before := ts.Fingerprint()
	if _, err := ts.ApplyDelta(nil, []Row{RowFromPrefix(victim, nil)}); !errors.Is(err, ErrDeltaConflict) {
		t.Fatalf("conflicting delete: got %v, want ErrDeltaConflict", err)
	}
	if ts.Fingerprint() != before {
		t.Fatal("failed delta mutated the store")
	}
	assertLookupParity(t, ts, ref, width)
}

// TestTieredDeltaPlacement pins the split rules: deletes consume the TCAM
// tier first, and new rows take free TCAM slots before spilling to SRAM.
func TestTieredDeltaPlacement(t *testing.T) {
	const width = 4
	ts := mustTiered(t, 2, 0, width)
	p := func(s string) bitstr.Prefix {
		pr, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	rows := []Row{
		RowFromPrefix(p("00xx"), uint64(1)),
		RowFromPrefix(p("01xx"), uint64(2)),
		RowFromPrefix(p("10xx"), uint64(3)),
		RowFromPrefix(p("11xx"), uint64(4)),
	}
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	if ts.HotLen() != 2 || ts.ColdLen() != 2 {
		t.Fatalf("tiers = %d/%d, want 2/2", ts.HotLen(), ts.ColdLen())
	}
	// Delete a hot row: the freed slot must be taken by the next new row.
	if _, err := ts.ApplyDelta(nil, []Row{RowFromPrefix(p("00xx"), nil)}); err != nil {
		t.Fatal(err)
	}
	if ts.HotLen() != 1 {
		t.Fatalf("hot after hot delete = %d, want 1", ts.HotLen())
	}
	if _, err := ts.ApplyDelta([]Row{RowFromPrefix(p("000x"), uint64(5))}, nil); err != nil {
		t.Fatal(err)
	}
	if ts.HotLen() != 2 || ts.ColdLen() != 2 {
		t.Fatalf("tiers after refill = %d/%d, want 2/2", ts.HotLen(), ts.ColdLen())
	}
	// Hot tier full: another new row must spill cold.
	if _, err := ts.ApplyDelta([]Row{RowFromPrefix(p("001x"), uint64(6))}, nil); err != nil {
		t.Fatal(err)
	}
	if ts.HotLen() != 2 || ts.ColdLen() != 3 {
		t.Fatalf("tiers after spill = %d/%d, want 2/3", ts.HotLen(), ts.ColdLen())
	}
}

// TestTieredCapacity pins the combined budget: the TCAM slice bounds only the
// hot tier, capacity bounds the union, and a refused apply is a no-op.
func TestTieredCapacity(t *testing.T) {
	const width = 4
	ts := mustTiered(t, 2, 3, width)
	rows := tilingRows(randTiling(rand.New(rand.NewSource(3)), width, 2)) // 4 rows at least
	if len(rows) <= 3 {
		t.Fatalf("tiling too small for the test: %d", len(rows))
	}
	var capErr *CapacityError
	if _, err := ts.ApplyRowsAtomic(rows); !errors.As(err, &capErr) {
		t.Fatalf("over-capacity apply: got %v, want CapacityError", err)
	}
	if ts.Len() != 0 {
		t.Fatalf("refused apply installed %d rows", ts.Len())
	}
	if _, err := ts.ApplyRowsAtomic(rows[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.ApplyDelta(rows[3:4], nil); !errors.As(err, &capErr) {
		t.Fatalf("over-capacity delta: got %v, want CapacityError", err)
	}
	if ts.Len() != 3 {
		t.Fatalf("refused delta changed Len to %d", ts.Len())
	}
	// NewTiered validation.
	if _, err := NewTiered("bad", 0, 0, width); err == nil {
		t.Error("zero TCAM budget accepted")
	}
	if _, err := NewTiered("bad", 8, 4, width); err == nil {
		t.Error("capacity below TCAM budget accepted")
	}
}

// TestTieredRebalance drives placement: hot rows with no heat are demoted in
// favour of hot cold rows, lookups stay bit-identical, a converged pass is a
// no-op, and placement never advances Version.
func TestTieredRebalance(t *testing.T) {
	const width = 8
	rng := rand.New(rand.NewSource(19))
	rows := tilingRows(randTiling(rng, width, 6))
	ts := mustTiered(t, 4, 0, width)
	ref := MustNew("ref", 0, width)
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	ts.TakeSRAMWrites()

	// Heat = the row's low interval bound, so the hottest rows are the ones
	// covering the top of the domain — deterministic and mostly not the ones
	// ApplyRows placed hot (it fills in row order from the bottom).
	heat := func(fields []Field, _ int) uint64 { return fields[0].Value }
	version := ts.Version()
	moves, err := ts.Rebalance(heat)
	if err != nil {
		t.Fatal(err)
	}
	if moves.Promotions == 0 || moves.Promotions != moves.Demotions {
		t.Fatalf("moves = %+v, want balanced nonzero promotions/demotions", moves)
	}
	if moves.TCAMWrites == 0 {
		t.Fatalf("moves = %+v, want TCAM writes", moves)
	}
	if got := ts.TakeSRAMWrites(); got != moves.Promotions+moves.Demotions {
		t.Fatalf("SRAM writes = %d, want %d", got, moves.Promotions+moves.Demotions)
	}
	if ts.Version() != version {
		t.Fatal("Rebalance advanced Version; placement must be invisible to version guards")
	}
	if ts.Promotions() != uint64(moves.Promotions) || ts.Demotions() != uint64(moves.Demotions) {
		t.Fatal("cumulative move counters diverge from the reported moves")
	}
	if ts.Fingerprint() != ref.Fingerprint() {
		t.Fatal("placement changed the logical population")
	}
	assertLookupParity(t, ts, ref, width)

	// The hottest rows must now be TCAM-resident: a second pass under the
	// same heat is converged — zero moves, zero writes.
	moves2, err := ts.Rebalance(heat)
	if err != nil {
		t.Fatal(err)
	}
	if moves2 != (TierMoves{}) {
		t.Fatalf("converged rebalance moved rows: %+v", moves2)
	}
	if got := ts.TakeSRAMWrites(); got != 0 {
		t.Fatalf("converged rebalance cost %d SRAM writes", got)
	}

	// Hysteresis: uniform heat keeps every incumbent in place.
	moves3, err := ts.Rebalance(func([]Field, int) uint64 { return 42 })
	if err != nil {
		t.Fatal(err)
	}
	if moves3 != (TierMoves{}) {
		t.Fatalf("uniform heat caused churn: %+v", moves3)
	}
}

// TestTieredTamperAudit routes tampering through both tiers and checks the
// audit surface sees and repairs it.
func TestTieredTamperAudit(t *testing.T) {
	const width = 4
	ts := mustTiered(t, 2, 0, width)
	rows := []Row{
		RowFromPrefix(bitstr.MustNew(0x0, 2, width), uint64(1)),
		RowFromPrefix(bitstr.MustNew(0x4, 2, width), uint64(2)),
		RowFromPrefix(bitstr.MustNew(0x8, 2, width), uint64(3)),
		RowFromPrefix(bitstr.MustNew(0xc, 2, width), uint64(4)),
	}
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	expect := make([]Row, len(rows))
	copy(expect, rows)
	want, err := ts.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if want != ts.Fingerprint() {
		t.Fatal("clean store: audit fingerprint diverges from Fingerprint")
	}

	// Corrupt a cold-tier row (rows[2] or [3] spilled) and a hot-tier row.
	if err := ts.TamperData(rows[3].Fields, rows[3].Priority, uint64(99)); err != nil {
		t.Fatal(err)
	}
	if err := ts.TamperData(rows[0].Fields, rows[0].Priority, uint64(98)); err != nil {
		t.Fatal(err)
	}
	// The data plane serves the corruption immediately.
	if e, ok := ts.Lookup(0xf); !ok || e.Data.(uint64) != 99 {
		t.Fatalf("cold tamper not served: %v", e)
	}
	if e, ok := ts.Lookup(0x0); !ok || e.Data.(uint64) != 98 {
		t.Fatalf("hot tamper not served: %v", e)
	}
	got, err := ts.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Fatal("audit fingerprint blind to tampering")
	}
	// Ghost insert and silent delete, then repair everything in one pass.
	if err := ts.TamperInsert([]Field{FieldFromPrefix(bitstr.MustNew(0x2, 3, width))}, 0, uint64(66)); err != nil {
		t.Fatal(err)
	}
	if err := ts.TamperDelete(rows[1].Fields, rows[1].Priority); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.AuditRepair(expect); err != nil {
		t.Fatal(err)
	}
	got, err = ts.AuditFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("repair did not restore the expected population")
	}
	// Tampering an absent row reports ErrNotFound from either tier.
	if err := ts.TamperData([]Field{FieldFromPrefix(bitstr.MustNew(0x3, 4, width))}, 5, uint64(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tamper missing row: got %v, want ErrNotFound", err)
	}
}

// TestTieredBinaryGridDifferential checks the two-field SRAM grid path and
// its linear fallback against the reference table.
func TestTieredBinaryGridDifferential(t *testing.T) {
	const w = 3
	xs := []bitstr.Prefix{bitstr.MustNew(0, 1, w), bitstr.MustNew(4, 2, w), bitstr.MustNew(6, 2, w)}
	ys := []bitstr.Prefix{bitstr.MustNew(0, 2, w), bitstr.MustNew(2, 2, w), bitstr.MustNew(4, 1, w)}
	var rows []Row
	d := uint64(100)
	for _, x := range xs {
		for _, y := range ys {
			rows = append(rows, Row{
				Fields: []Field{FieldFromPrefix(x), FieldFromPrefix(y)},
				Data:   d,
			})
			d++
		}
	}
	check := func(t *testing.T, rows []Row) {
		t.Helper()
		ts := mustTiered(t, 2, 0, w, w)
		ref := MustNew("ref", 0, w, w)
		for _, s := range []Store{ts, ref} {
			if _, err := s.ApplyRowsAtomic(rows); err != nil {
				t.Fatal(err)
			}
		}
		flat := make([]uint64, 0, 2*64)
		for x := uint64(0); x < 8; x++ {
			for y := uint64(0); y < 8; y++ {
				te, tok := ts.Lookup(x, y)
				re, rok := ref.Lookup(x, y)
				if tok != rok || (tok && !dataEqual(te.Data, re.Data)) {
					t.Fatalf("Lookup(%d,%d) diverged", x, y)
				}
				flat = append(flat, x, y)
			}
		}
		ords, pay := ts.LookupIndexBatch(flat, nil)
		for i := 0; i < len(flat); i += 2 {
			re, rok := ref.Lookup(flat[i], flat[i+1])
			ord := ords[i/2]
			if !rok {
				if ord >= 0 {
					t.Fatalf("ordinal hit where table missed: (%d,%d)", flat[i], flat[i+1])
				}
				continue
			}
			v, ok := pay.Value(ord)
			if !ok || v != re.Data.(uint64) {
				t.Fatalf("ordinal payload (%d,%d) = %v/%v, want %v", flat[i], flat[i+1], v, ok, re.Data)
			}
		}
	}
	t.Run("grid", func(t *testing.T) { check(t, rows) })
	t.Run("linear-fallback", func(t *testing.T) {
		// An extra all-wildcard row overlaps every x interval, defeating the
		// disjointness precondition — the SRAM tier must fall back to the
		// first-match scan and still agree with the table.
		rootX, _ := bitstr.Root(w)
		rootY, _ := bitstr.Root(w)
		overlap := Row{
			Fields:   []Field{FieldFromPrefix(rootX), FieldFromPrefix(rootY)},
			Priority: -1,
			Data:     uint64(9999),
		}
		check(t, append(append([]Row{}, rows...), overlap))
	})
}

// TestTieredVersionSemantics pins the Version contract: every Store-API
// mutation attempt bumps it (success or refusal), tampering and placement
// never do.
func TestTieredVersionSemantics(t *testing.T) {
	const width = 4
	ts := mustTiered(t, 2, 3, width)
	rows := []Row{
		RowFromPrefix(bitstr.MustNew(0x0, 2, width), uint64(1)),
		RowFromPrefix(bitstr.MustNew(0x4, 2, width), uint64(2)),
		RowFromPrefix(bitstr.MustNew(0x8, 2, width), uint64(3)),
	}
	v := ts.Version()
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	if ts.Version() == v {
		t.Fatal("successful apply did not bump Version")
	}
	v = ts.Version()
	if _, err := ts.ApplyDelta(tilingRows([]bitstr.Prefix{bitstr.MustNew(0xc, 2, width), bitstr.MustNew(0x2, 3, width)}), nil); err == nil {
		t.Fatal("over-capacity delta accepted")
	}
	if ts.Version() == v {
		t.Fatal("refused delta did not bump Version (mutation attempts must)")
	}
	v = ts.Version()
	if err := ts.TamperData(rows[0].Fields, rows[0].Priority, uint64(77)); err != nil {
		t.Fatal(err)
	}
	if ts.Version() != v {
		t.Fatal("tamper bumped Version; silent corruption must stay silent")
	}
}
