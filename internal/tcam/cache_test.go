package tcam

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// assertCachedParity resolves one batch through the cache and directly
// through the store and requires bit-identical ordinals and resolved values
// — the exactness contract the cache advertises.
func assertCachedParity(t *testing.T, c *LookupCache, st Store, flat []uint64) {
	t.Helper()
	got, gpay := c.LookupIndexBatch(flat, nil)
	want, wpay := st.LookupIndexBatch(flat, nil)
	if len(got) != len(want) {
		t.Fatalf("cached batch length %d, uncached %d", len(got), len(want))
	}
	for i := range want {
		gv, gok := gpay.Value(got[i])
		wv, wok := wpay.Value(want[i])
		if got[i] != want[i] || gv != wv || gok != wok {
			t.Fatalf("sample %d: cached (ord %d, val %d/%v) vs uncached (ord %d, val %d/%v)",
				i, got[i], gv, gok, want[i], wv, wok)
		}
	}
}

// skewedBatch draws n keys of the width-bit domain with repeats concentrated
// on a small hot set, the shape the cache is built for.
func skewedBatch(rng *rand.Rand, n, width int) []uint64 {
	mask := uint64(1)<<uint(width) - 1
	hot := make([]uint64, 8)
	for i := range hot {
		hot[i] = rng.Uint64() & mask
	}
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(4) > 0 {
			out[i] = hot[rng.Intn(len(hot))]
		} else {
			out[i] = rng.Uint64() & mask
		}
	}
	return out
}

// TestLookupCacheDifferentialApplyRows is the core differential: across many
// bulk-committed generations the cached path must stay bit-identical to the
// uncached store, and each committed round must invalidate wholesale.
func TestLookupCacheDifferentialApplyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := MustNew("t", 0, 8)
	c := NewLookupCache(tb, 256)
	if !c.Enabled() {
		t.Fatal("cache disabled over a *Table")
	}
	gen0 := tb.Generation()
	for round := 0; round < 64; round++ {
		if _, err := tb.ApplyRows(tilingRows(randTiling(rng, 8, 5))); err != nil {
			t.Fatalf("round %d: ApplyRows: %v", round, err)
		}
		for b := 0; b < 4; b++ {
			assertCachedParity(t, c, tb, skewedBatch(rng, 512, 8))
		}
	}
	if !tb.GenerationChanged(gen0) {
		t.Fatal("64 ApplyRows rounds left the generation unchanged")
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatal("skewed batches produced zero cache hits")
	}
	// Every committed round re-bases the cache: at least one invalidation
	// per generation the cache observed.
	if st.Invalidations < 64 {
		t.Fatalf("Invalidations = %d, want >= 64 (one per committed round)", st.Invalidations)
	}
}

// TestLookupCacheApplyDeltaRollback pins the rollback half of the contract:
// a failed delta must not advance the bulk generation, yet the rollback's
// physical writes advance the snapshot generation, so the cache re-bases and
// keeps serving exactly what the store serves.
func TestLookupCacheApplyDeltaRollback(t *testing.T) {
	tab := MustNew("t", 0, 8)
	base := []Row{
		row(0x00, 0xC0, 0, uint64(1)),
		row(0x40, 0xC0, 0, uint64(2)),
		row(0x80, 0xC0, 0, uint64(3)),
		row(0xC0, 0xC0, 0, uint64(4)),
	}
	if _, err := tab.ApplyRowsAtomic(base); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(tab, 64)
	batch := []uint64{0x00, 0x41, 0x82, 0xC3, 0x00, 0x41}
	assertCachedParity(t, c, tab, batch) // warm
	assertCachedParity(t, c, tab, batch) // all-hit pass
	gen := tab.Generation()
	inv := c.Stats().Invalidations

	boom := errors.New("row write fault")
	n := 0
	tab.SetWriteHook(func(WriteOp) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	_, err := tab.ApplyDelta(
		[]Row{row(0x40, 0xC0, 0, uint64(20)), row(0x20, 0xE0, 0, uint64(5))},
		[]Row{row(0x00, 0xC0, 0, uint64(1))},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	tab.SetWriteHook(nil)

	if tab.GenerationChanged(gen) {
		t.Fatal("rolled-back delta advanced the bulk generation")
	}
	assertCachedParity(t, c, tab, batch)
	if got := c.Stats().Invalidations; got != inv+1 {
		t.Fatalf("Invalidations after rollback = %d, want %d (rollback writes move the snapshot)", got, inv+1)
	}
}

// TestLookupCacheTamperAuditRepair covers the Version-invisible mutations:
// silent tampering must be visible through the cache the instant it lands
// (the snapshot generation moves even though Version does not), and an
// AuditRepair must restore the pre-tamper results through the cache too.
func TestLookupCacheTamperAuditRepair(t *testing.T) {
	tab := MustNew("t", 0, 8)
	expect := []Row{
		row(0x00, 0xC0, 0, uint64(1)),
		row(0x40, 0xC0, 0, uint64(2)),
		row(0x80, 0xC0, 0, uint64(3)),
		row(0xC0, 0xC0, 0, uint64(4)),
	}
	if _, err := tab.ApplyRowsAtomic(expect); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(tab, 64)
	batch := []uint64{0x41, 0x41, 0x41, 0x41}
	assertCachedParity(t, c, tab, batch)

	ver := tab.Version()
	if err := tab.TamperData([]Field{{Value: 0x40, Mask: 0xC0}}, 0, uint64(99)); err != nil {
		t.Fatalf("TamperData: %v", err)
	}
	if tab.Version() != ver {
		t.Fatal("tampering advanced Version — the control plane noticed for free")
	}
	ords, pay := c.LookupIndexBatch(batch, nil)
	if v, ok := pay.Value(ords[0]); !ok || v != 99 {
		t.Fatalf("cached lookup after tamper = %d/%v, want tampered 99", v, ok)
	}
	assertCachedParity(t, c, tab, batch)

	writes, err := tab.AuditRepair(expect)
	if err != nil || writes == 0 {
		t.Fatalf("AuditRepair writes=%d err=%v, want repairs", writes, err)
	}
	ords, pay = c.LookupIndexBatch(batch, nil)
	if v, ok := pay.Value(ords[0]); !ok || v != 2 {
		t.Fatalf("cached lookup after repair = %d/%v, want restored 2", v, ok)
	}
	assertCachedParity(t, c, tab, batch)
}

// TestLookupCacheTieredRebalance pins the tiered re-placement case: moving
// rows between TCAM and SRAM changes every ordinal without advancing
// Version, and the cache must follow the placement, not the Version.
func TestLookupCacheTieredRebalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := mustTiered(t, 4, 0, 8)
	rows := tilingRows(randTiling(rng, 8, 5))
	for len(rows) <= 4 {
		rows = tilingRows(randTiling(rng, 8, 5))
	}
	if _, err := ts.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(ts, 512)
	if !c.Enabled() {
		t.Fatal("cache disabled over a *TieredStore")
	}
	all := make([]uint64, 256)
	for k := range all {
		all[k] = uint64(k)
	}
	assertCachedParity(t, c, ts, all)

	ver := ts.Version()
	flip := uint64(0)
	for round := 0; round < 3; round++ {
		flip = ^flip // alternate which rows look hot, forcing moves
		moves, err := ts.Rebalance(func(fields []Field, _ int) uint64 {
			return fields[0].Value ^ flip
		})
		if err != nil {
			t.Fatalf("Rebalance: %v", err)
		}
		if round > 0 && moves.Promotions == 0 && moves.Demotions == 0 {
			t.Fatalf("round %d: flipped heat produced no tier moves", round)
		}
		assertCachedParity(t, c, ts, all)
	}
	if ts.Version() != ver {
		t.Fatal("tier placement advanced Version")
	}
}

// noSnap hides the Snapshotter surface of a store, modelling a Store
// implementation that cannot be cached.
type noSnap struct{ Store }

// TestLookupCachePassThrough pins the degraded modes: a store without
// LookupSnapshot, or a non-positive size, yields a transparent forwarder.
func TestLookupCachePassThrough(t *testing.T) {
	tb := MustNew("t", 0, 8)
	if _, err := tb.ApplyRowsAtomic([]Row{row(0x00, 0x80, 0, uint64(1)), row(0x80, 0x80, 0, uint64(2))}); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*LookupCache{
		"no-snapshotter": NewLookupCache(noSnap{tb}, 1024),
		"zero-entries":   NewLookupCache(tb, 0),
	} {
		if c.Enabled() {
			t.Fatalf("%s: Enabled() = true", name)
		}
		if c.Len() != 0 {
			t.Fatalf("%s: Len() = %d, want 0", name, c.Len())
		}
		assertCachedParity(t, c, tb, []uint64{0x01, 0x81, 0x01})
		if st := c.Stats(); st != (CacheStats{}) {
			t.Fatalf("%s: pass-through accounted stats %+v", name, st)
		}
	}
}

// TestLookupCacheCachedMiss requires misses (ordinal −1) to be cached like
// hits: a key with no covering entry must not re-search the store on every
// batch just because the answer is "no entry".
func TestLookupCacheCachedMiss(t *testing.T) {
	tb := MustNew("t", 0, 8)
	if _, err := tb.ApplyRowsAtomic([]Row{row(0x00, 0xC0, 0, uint64(1))}); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(tb, 64)
	batch := []uint64{0x01, 0xF0, 0xF0} // one hit key, one missing key twice
	ords, _ := c.LookupIndexBatch(batch, nil)
	if ords[1] != -1 || ords[2] != -1 {
		t.Fatalf("miss ordinals = %d,%d, want -1,-1", ords[1], ords[2])
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("first batch stats = %+v, want 0 hits, 3 misses", st)
	}
	ords, _ = c.LookupIndexBatch(batch, nil)
	if ords[0] < 0 || ords[1] != -1 || ords[2] != -1 {
		t.Fatalf("second batch ordinals = %v", ords)
	}
	if st := c.Stats(); st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("second batch stats = %+v, want all three samples served cached", st)
	}
}

// TestLookupCacheBinaryKeys exercises the two-field variant keyed on the
// packed product-grid key pair.
func TestLookupCacheBinaryKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := MustNew("t", 0, 4, 4)
	rows := make([]Row, 0, 16)
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			rows = append(rows, Row{
				Fields: []Field{{Value: a << 2, Mask: 0xC}, {Value: b << 2, Mask: 0xC}},
				Data:   a*4 + b,
			})
		}
	}
	if _, err := tb.ApplyRowsAtomic(rows); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(tb, 128)
	for pass := 0; pass < 3; pass++ {
		flat := make([]uint64, 2*256)
		for i := 0; i < 256; i++ {
			flat[2*i] = rng.Uint64() & 0xF
			flat[2*i+1] = rng.Uint64() & 0xF
		}
		assertCachedParity(t, c, tb, flat)
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("binary batches produced no hits: %+v", st)
	}
}

// TestLookupCacheEviction runs a working set far larger than a single-set
// cache: correctness must survive continuous round-robin eviction.
func TestLookupCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := MustNew("t", 0, 8)
	if _, err := tb.ApplyRows(tilingRows(randTiling(rng, 8, 5))); err != nil {
		t.Fatal(err)
	}
	c := NewLookupCache(tb, cacheWays) // one set: every insert contends
	if c.Len() != cacheWays {
		t.Fatalf("Len = %d, want %d", c.Len(), cacheWays)
	}
	keys := make([]uint64, 256)
	for k := range keys {
		keys[k] = uint64(k)
	}
	for pass := 0; pass < 4; pass++ {
		assertCachedParity(t, c, tb, keys)
	}
}

// TestLookupCacheConcurrentReaders runs cached readers against control
// rounds committing concurrently. Each reader owns its cache (the documented
// ownership model); the shared table mutates underneath. Readers assert
// internal consistency only — every key of a full tiling must resolve to
// some committed tiling value — and the race detector does the rest.
func TestLookupCacheConcurrentReaders(t *testing.T) {
	tb := MustNew("t", 0, 8)
	rng := rand.New(rand.NewSource(99))
	if _, err := tb.ApplyRowsAtomic(tilingRows(randTiling(rng, 8, 5))); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			c := NewLookupCache(tb, 256)
			var dst []int32
			for !stop.Load() {
				batch := skewedBatch(rrng, 256, 8)
				var pay Payloads
				dst, pay = c.LookupIndexBatch(batch, dst)
				for _, ord := range dst {
					v, ok := pay.Value(ord)
					// tilingRows data is 1000+i and a tiling covers the
					// whole domain: every sample must resolve.
					if ord < 0 || !ok || v < 1000 || v >= 1256 {
						select {
						case errc <- errors.New("reader saw inconsistent snapshot"):
						default:
						}
						return
					}
				}
			}
		}(int64(r))
	}

	for round := 0; round < 50; round++ {
		if _, err := tb.ApplyRowsAtomic(tilingRows(randTiling(rng, 8, 5))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
