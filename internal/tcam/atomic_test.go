package tcam

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

var errInjected = errors.New("injected row-write failure")

// failAfter returns a hook that admits n row writes and fails every write
// after them.
func failAfter(n int) WriteHook {
	return func(WriteOp) error {
		if n <= 0 {
			return errInjected
		}
		n--
		return nil
	}
}

// TestApplyRowsPartialFailureContract pins the documented non-transactional
// behaviour: when a row write fails mid-reconciliation, ApplyRows returns
// the error with every earlier write still applied.
func TestApplyRowsPartialFailureContract(t *testing.T) {
	tb := MustNew("t", 8, 3)
	if _, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 2})); err != nil {
		t.Fatal(err)
	}
	// Target set: keep 0xx, split 1xx into 10x/11x — one delete then two
	// inserts. Admit exactly the delete, fail the first insert.
	tb.SetWriteHook(failAfter(1))
	writes, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "10x": 4, "11x": 5}))
	if !errors.Is(err, errInjected) {
		t.Fatalf("error = %v, want injected", err)
	}
	if writes != 1 {
		t.Errorf("partial writes = %d, want 1 (the delete that was applied)", writes)
	}
	// The table is now partially written: 1xx is gone, its replacements are
	// not installed — the hole the transactional controller must never expose.
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only 0xx survives)", tb.Len())
	}
	if _, ok := tb.Lookup(5); ok {
		t.Error("key 5 still resolves; expected a coverage hole after partial failure")
	}
	if e, ok := tb.Lookup(2); !ok || e.Data.(uint64) != 1 {
		t.Errorf("untouched row 0xx lost: %v", e)
	}
}

// TestApplyRowsAtomicRollsBack asserts the transactional variant restores
// the exact pre-call state — entries, lookups, stats, and generation — on a
// mid-reconciliation failure.
func TestApplyRowsAtomicRollsBack(t *testing.T) {
	tb := MustNew("t", 8, 3)
	if _, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 2})); err != nil {
		t.Fatal(err)
	}
	gen, fp, stats := tb.Generation(), tb.Fingerprint(), tb.Stats()

	tb.SetWriteHook(failAfter(1))
	writes, err := tb.ApplyRowsAtomic(rowsOf(t, map[string]uint64{"0xx": 9, "10x": 4, "11x": 5}))
	if !errors.Is(err, errInjected) {
		t.Fatalf("error = %v, want injected", err)
	}
	if writes != 0 {
		t.Errorf("rolled-back commit reported %d writes, want 0", writes)
	}
	if tb.Generation() != gen {
		t.Errorf("generation moved across a rolled-back commit: %d -> %d", gen, tb.Generation())
	}
	if tb.Fingerprint() != fp {
		t.Errorf("contents changed across a rolled-back commit:\n%s\nwant\n%s", tb.Fingerprint(), fp)
	}
	if tb.Stats() != stats {
		t.Errorf("stats changed across a rolled-back commit: %+v want %+v", tb.Stats(), stats)
	}
	// The update admitted before the failure must not leak: 0xx keeps data 1.
	if e, ok := tb.Lookup(2); !ok || e.Data.(uint64) != 1 {
		t.Errorf("lookup 2 after rollback: %v", e)
	}

	// With the hook cleared the same commit succeeds and bumps the generation.
	tb.SetWriteHook(nil)
	if _, err := tb.ApplyRowsAtomic(rowsOf(t, map[string]uint64{"0xx": 9, "10x": 4, "11x": 5})); err != nil {
		t.Fatal(err)
	}
	if tb.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d after commit", tb.Generation(), gen+1)
	}
}

// TestApplyRowsAtomicMatchesApplyRows: on success the two variants are
// indistinguishable (state and write accounting).
func TestApplyRowsAtomicMatchesApplyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mkRows := func(width int) []Row {
		n := 1 + rng.Intn(10)
		seen := make(map[string]bool)
		var out []Row
		for i := 0; i < n; i++ {
			m := (uint64(1) << uint(width)) - 1
			p, err := bitstr.New(rng.Uint64()&m, rng.Intn(width+1), width)
			if err != nil {
				t.Fatal(err)
			}
			if seen[p.String()] {
				continue
			}
			seen[p.String()] = true
			out = append(out, RowFromPrefix(p, uint64(rng.Intn(4))))
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		width := 4 + rng.Intn(6)
		first, second := mkRows(width), mkRows(width)
		a, b := MustNew("a", 0, width), MustNew("b", 0, width)
		for _, rows := range [][]Row{first, second} {
			wa, err := a.ApplyRows(rows)
			if err != nil {
				t.Fatal(err)
			}
			wb, err := b.ApplyRowsAtomic(rows)
			if err != nil {
				t.Fatal(err)
			}
			if wa != wb {
				t.Fatalf("trial %d: writes differ: ApplyRows %d vs atomic %d", trial, wa, wb)
			}
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("trial %d: end states differ", trial)
		}
	}
}

// TestReplaceAllPreflightsHook: ReplaceAll advertises an atomic swap, so a
// row-write failure must leave it untouched.
func TestReplaceAllPreflightsHook(t *testing.T) {
	tb := MustNew("t", 8, 3)
	if _, err := tb.ReplaceAll(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 2})); err != nil {
		t.Fatal(err)
	}
	fp := tb.Fingerprint()
	tb.SetWriteHook(failAfter(3)) // 2 deletes admitted, first insert fails
	if _, err := tb.ReplaceAll(rowsOf(t, map[string]uint64{"00x": 7, "01x": 8, "1xx": 9})); !errors.Is(err, errInjected) {
		t.Fatalf("error = %v, want injected", err)
	}
	if tb.Fingerprint() != fp {
		t.Error("failed ReplaceAll mutated the table")
	}
}

// TestRowLevelHooks: Insert, Delete, and UpdateData each consult the hook
// and leave the table unchanged when it fails.
func TestRowLevelHooks(t *testing.T) {
	tb := MustNew("t", 8, 3)
	p, _ := bitstr.Parse("0xx")
	id, err := tb.InsertPrefix(p, 0, uint64(1))
	if err != nil {
		t.Fatal(err)
	}
	tb.SetWriteHook(failAfter(0))
	if _, err := tb.InsertPrefix(mustParse(t, "1xx"), 0, uint64(2)); !errors.Is(err, errInjected) {
		t.Errorf("Insert error = %v", err)
	}
	if err := tb.Delete(id); !errors.Is(err, errInjected) {
		t.Errorf("Delete error = %v", err)
	}
	if err := tb.UpdateData(id, uint64(9)); !errors.Is(err, errInjected) {
		t.Errorf("UpdateData error = %v", err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
	if e, ok := tb.Lookup(2); !ok || e.Data.(uint64) != 1 {
		t.Errorf("entry changed under failing hook: %v", e)
	}
}

func mustParse(t *testing.T, s string) bitstr.Prefix {
	t.Helper()
	p, err := bitstr.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
