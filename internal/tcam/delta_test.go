package tcam

import (
	"errors"
	"math/rand"
	"testing"
)

func row(v, m uint64, prio int, data any) Row {
	return Row{Fields: []Field{{Value: v, Mask: m}}, Priority: prio, Data: data}
}

// applyRef mirrors a delta onto a reference table via full reconciliation.
func refRows(base []Row, upserts, deletes []Row) []Row {
	type slot struct{ r Row }
	keyOf := func(r Row) string { return matchKey(r.Fields, r.Priority) }
	out := make([]Row, 0, len(base)+len(upserts))
	removed := make(map[string]int)
	for _, d := range deletes {
		removed[keyOf(d)]++
	}
	upserted := make(map[string]Row, len(upserts))
	for _, u := range upserts {
		upserted[keyOf(u)] = u
	}
	for _, b := range base {
		k := keyOf(b)
		if removed[k] > 0 {
			removed[k]--
			continue
		}
		if u, ok := upserted[k]; ok {
			b.Data = u.Data
			delete(upserted, k)
		}
		out = append(out, slot{b}.r)
	}
	for _, u := range upserts {
		k := keyOf(u)
		if _, pending := upserted[k]; pending {
			out = append(out, u)
			delete(upserted, k)
		}
	}
	return out
}

func TestApplyDeltaMatchesFullReconcile(t *testing.T) {
	base := []Row{
		row(0x00, 0xC0, 0, uint64(1)),
		row(0x40, 0xC0, 0, uint64(2)),
		row(0x80, 0xC0, 0, uint64(3)),
		row(0xC0, 0xC0, 0, uint64(4)),
	}
	upserts := []Row{
		row(0x40, 0xC0, 0, uint64(20)), // data rewrite
		row(0x80, 0xC0, 0, uint64(3)),  // identical: no write
		row(0xE0, 0xE0, 0, uint64(5)),  // fresh insert
	}
	deletes := []Row{row(0xC0, 0xC0, 0, uint64(4))}

	inc := MustNew("inc", 0, 8)
	if _, err := inc.ApplyRowsAtomic(base); err != nil {
		t.Fatal(err)
	}
	writes, err := inc.ApplyDelta(upserts, deletes)
	if err != nil {
		t.Fatal(err)
	}
	// 1 delete + 1 update + 1 insert.
	if writes != 3 {
		t.Fatalf("ApplyDelta writes = %d, want 3", writes)
	}

	full := MustNew("full", 0, 8)
	if _, err := full.ApplyRowsAtomic(refRows(base, upserts, deletes)); err != nil {
		t.Fatal(err)
	}
	if inc.Fingerprint() != full.Fingerprint() {
		t.Fatalf("delta end state diverges:\n inc: %q\nfull: %q", inc.Fingerprint(), full.Fingerprint())
	}
}

func TestApplyDeltaConflictRollsBack(t *testing.T) {
	tab := MustNew("t", 0, 8)
	if _, err := tab.ApplyRowsAtomic([]Row{row(0x00, 0x80, 0, uint64(1))}); err != nil {
		t.Fatal(err)
	}
	fp := tab.Fingerprint()
	gen := tab.Generation()
	st := tab.Stats()
	_, err := tab.ApplyDelta(
		[]Row{row(0x80, 0x80, 0, uint64(9))},
		[]Row{row(0x40, 0xC0, 0, nil)}, // not installed
	)
	if !errors.Is(err, ErrDeltaConflict) {
		t.Fatalf("err = %v, want ErrDeltaConflict", err)
	}
	if tab.Fingerprint() != fp {
		t.Fatal("failed delta mutated the table")
	}
	if tab.Generation() != gen {
		t.Fatal("failed delta advanced the generation")
	}
	if got := tab.Stats(); got.Inserts != st.Inserts || got.Deletes != st.Deletes || got.Updates != st.Updates {
		t.Fatalf("failed delta left counters mutated: %+v vs %+v", got, st)
	}
}

func TestApplyDeltaHookFailureRollsBackExactly(t *testing.T) {
	tab := MustNew("t", 0, 8)
	base := []Row{
		row(0x00, 0xC0, 0, uint64(1)),
		row(0x40, 0xC0, 0, uint64(2)),
		row(0x80, 0xC0, 0, uint64(3)),
	}
	if _, err := tab.ApplyRowsAtomic(base); err != nil {
		t.Fatal(err)
	}
	fp := tab.Fingerprint()
	boom := errors.New("row write fault")
	n := 0
	tab.SetWriteHook(func(WriteOp) error {
		n++
		if n == 3 { // fail mid-delta, after a delete and an update landed
			return boom
		}
		return nil
	})
	_, err := tab.ApplyDelta(
		[]Row{row(0x40, 0xC0, 0, uint64(20)), row(0xC0, 0xC0, 0, uint64(4))},
		[]Row{row(0x00, 0xC0, 0, uint64(1))},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	tab.SetWriteHook(nil)
	if tab.Fingerprint() != fp {
		t.Fatalf("mid-delta fault not fully rolled back:\n got: %q\nwant: %q", tab.Fingerprint(), fp)
	}
	// The table must remain fully usable after rollback.
	if _, err := tab.ApplyDelta([]Row{row(0xC0, 0xC0, 0, uint64(4))}, nil); err != nil {
		t.Fatalf("delta after rollback: %v", err)
	}
	if got := tab.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestApplyDeltaCapacityRollsBack(t *testing.T) {
	tab := MustNew("t", 2, 8)
	if _, err := tab.ApplyRowsAtomic([]Row{row(0x00, 0x80, 0, uint64(1)), row(0x80, 0x80, 0, uint64(2))}); err != nil {
		t.Fatal(err)
	}
	fp := tab.Fingerprint()
	_, err := tab.ApplyDelta([]Row{row(0xC0, 0xC0, 0, uint64(3))}, nil)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	if tab.Fingerprint() != fp {
		t.Fatal("capacity overflow not rolled back")
	}
	// Delete + insert within the same delta must fit.
	if _, err := tab.ApplyDelta(
		[]Row{row(0xC0, 0xC0, 0, uint64(3))},
		[]Row{row(0x00, 0x80, 0, uint64(1))},
	); err != nil {
		t.Fatalf("freeing delta: %v", err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

// TestApplyDeltaRandomizedDifferential drives random deltas against the
// incremental table and a full-reconcile reference, asserting fingerprint
// equality after every step.
func TestApplyDeltaRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc := MustNew("inc", 0, 8)
	full := MustNew("full", 0, 8)
	installed := make([]Row, 0) // shadow copy in install order

	keyOf := func(r Row) string { return matchKey(r.Fields, r.Priority) }
	for step := 0; step < 400; step++ {
		have := make(map[string]int, len(installed))
		for _, r := range installed {
			have[keyOf(r)]++
		}
		var upserts, deletes []Row
		next := make([]Row, 0, len(installed)+4)
		// Randomly delete ~1/4 of installed rows.
		for _, r := range installed {
			if rng.Intn(4) == 0 {
				deletes = append(deletes, r)
				have[keyOf(r)]--
				continue
			}
			next = append(next, r)
		}
		// Randomly rewrite or insert a few rows.
		for i := 0; i < rng.Intn(4); i++ {
			bits := uint(rng.Intn(4) + 2)
			mask := uint64((1<<bits)-1) << (8 - bits)
			val := uint64(rng.Intn(256)) & mask
			r := row(val, mask, 0, uint64(rng.Intn(100)))
			if have[keyOf(r)] > 0 {
				// Rewrite of an installed key.
				for j := range next {
					if keyOf(next[j]) == keyOf(r) {
						next[j] = r
						break
					}
				}
			} else {
				have[keyOf(r)]++
				next = append(next, r)
			}
			upserts = append(upserts, r)
		}
		if _, err := inc.ApplyDelta(upserts, deletes); err != nil {
			t.Fatalf("step %d: ApplyDelta: %v", step, err)
		}
		if _, err := full.ApplyRowsAtomic(next); err != nil {
			t.Fatalf("step %d: ApplyRowsAtomic: %v", step, err)
		}
		if inc.Fingerprint() != full.Fingerprint() {
			t.Fatalf("step %d: fingerprints diverged", step)
		}
		installed = next
	}
}
