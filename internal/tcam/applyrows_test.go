package tcam

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func rowsOf(t *testing.T, data map[string]uint64) []Row {
	t.Helper()
	out := make([]Row, 0, len(data))
	for s, v := range data {
		p, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, RowFromPrefix(p, v))
	}
	return out
}

func TestApplyRowsIdempotent(t *testing.T) {
	tb := MustNew("t", 8, 3)
	rows := rowsOf(t, map[string]uint64{"0xx": 1, "10x": 2, "11x": 3})
	writes, err := tb.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if writes != 3 {
		t.Errorf("initial writes = %d, want 3", writes)
	}
	// Re-applying identical rows must cost nothing.
	writes, err = tb.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if writes != 0 {
		t.Errorf("idempotent re-apply writes = %d, want 0", writes)
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestApplyRowsDataOnlyChange(t *testing.T) {
	tb := MustNew("t", 8, 3)
	if _, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 2})); err != nil {
		t.Fatal(err)
	}
	// Same keys, one new result: exactly one action rewrite.
	writes, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 99}))
	if err != nil {
		t.Fatal(err)
	}
	if writes != 1 {
		t.Errorf("data-only change writes = %d, want 1", writes)
	}
	e, ok := tb.Lookup(7)
	if !ok || e.Data.(uint64) != 99 {
		t.Fatalf("lookup after update: %v", e)
	}
	if got := tb.Stats().Updates; got != 1 {
		t.Errorf("Updates = %d", got)
	}
}

func TestApplyRowsAddAndRemove(t *testing.T) {
	tb := MustNew("t", 8, 3)
	if _, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "1xx": 2})); err != nil {
		t.Fatal(err)
	}
	// Split 1xx into 10x/11x: one delete, two inserts, 0xx untouched.
	writes, err := tb.ApplyRows(rowsOf(t, map[string]uint64{"0xx": 1, "10x": 4, "11x": 5}))
	if err != nil {
		t.Fatal(err)
	}
	if writes != 3 {
		t.Errorf("writes = %d, want 3 (1 delete + 2 inserts)", writes)
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
	if e, ok := tb.Lookup(5); !ok || e.Data.(uint64) != 4 {
		t.Fatalf("lookup 5: %v", e)
	}
}

func TestApplyRowsCapacity(t *testing.T) {
	tb := MustNew("t", 2, 3)
	rows := rowsOf(t, map[string]uint64{"00x": 1, "01x": 2, "1xx": 3})
	if _, err := tb.ApplyRows(rows); !errors.Is(err, ErrCapacity) {
		t.Errorf("over-capacity ApplyRows error = %v, want ErrCapacity", err)
	}
	if tb.Len() != 0 {
		t.Error("failed ApplyRows mutated the table")
	}
}

func TestApplyRowsPriorityIsPartOfKey(t *testing.T) {
	tb := MustNew("t", 8, 3)
	p, _ := bitstr.Parse("0xx")
	if _, err := tb.ApplyRows([]Row{{Fields: []Field{FieldFromPrefix(p)}, Priority: 1, Data: uint64(1)}}); err != nil {
		t.Fatal(err)
	}
	// Same match, different priority: a distinct TCAM row (delete + insert).
	writes, err := tb.ApplyRows([]Row{{Fields: []Field{FieldFromPrefix(p)}, Priority: 2, Data: uint64(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if writes != 2 {
		t.Errorf("priority change writes = %d, want 2", writes)
	}
}

// Property: ApplyRows reaches the same end state as ReplaceAll for random
// row sets, with never more writes.
func TestQuickApplyRowsMatchesReplaceAll(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		width := 4 + rng.Intn(8)
		mkRows := func() []Row {
			n := 1 + rng.Intn(12)
			seen := make(map[string]bool)
			var out []Row
			for i := 0; i < n; i++ {
				sig := rng.Intn(width + 1)
				m := (uint64(1) << uint(width)) - 1
				p, err := bitstr.New(rng.Uint64()&m, sig, width)
				if err != nil {
					t.Fatal(err)
				}
				if seen[p.String()] {
					continue
				}
				seen[p.String()] = true
				out = append(out, RowFromPrefix(p, uint64(rng.Intn(4))))
			}
			return out
		}
		first, second := mkRows(), mkRows()

		a := MustNew("a", 0, width)
		b := MustNew("b", 0, width)
		if _, err := a.ApplyRows(first); err != nil {
			t.Fatal(err)
		}
		if _, err := b.ReplaceAll(first); err != nil {
			t.Fatal(err)
		}
		deltaWrites, err := a.ApplyRows(second)
		if err != nil {
			t.Fatal(err)
		}
		fullWrites, err := b.ReplaceAll(second)
		if err != nil {
			t.Fatal(err)
		}
		if deltaWrites > fullWrites {
			t.Fatalf("trial %d: delta writes %d exceed full rewrite %d", trial, deltaWrites, fullWrites)
		}
		// Same lookups everywhere.
		for probe := 0; probe < 40; probe++ {
			key := rng.Uint64() & ((uint64(1) << uint(width)) - 1)
			ea, oka := a.Lookup(key)
			eb, okb := b.Lookup(key)
			if oka != okb {
				t.Fatalf("trial %d key %d: hit mismatch %v vs %v", trial, key, oka, okb)
			}
			if oka && !sameMatch(ea, eb) {
				t.Fatalf("trial %d key %d: resolved different rows", trial, key)
			}
		}
	}
}

func sameMatch(a, b *Entry) bool {
	if len(a.Fields) != len(b.Fields) || a.Priority != b.Priority {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return dataEqual(a.Data, b.Data)
}
