// Package stats renders experiment results as fixed-width text tables, the
// output format of cmd/adabench and EXPERIMENTS.md.
package stats

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Headers label the columns.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are kept as-is.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// renders with 4 significant digits, integers as decimal.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'g', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'g', 4, 64)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case uint64:
		return strconv.FormatUint(v, 10)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(widths)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(frac float64) string {
	return strconv.FormatFloat(frac*100, 'f', 1, 64) + "%"
}

// KB formats bytes as kilobytes.
func KB(bytes int) string {
	return strconv.FormatFloat(float64(bytes)/1024, 'f', 1, 64) + "KB"
}

// Gbps formats bits/s as gigabits per second.
func Gbps(bps float64) string {
	return strconv.FormatFloat(bps/1e9, 'f', 2, 64) + "Gbps"
}
