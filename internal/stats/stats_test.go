package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "col a", "b")
	tb.Add("x", "1")
	tb.Add("longer cell", "2")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "=====") {
		t.Errorf("missing title/underline:\n%s", out)
	}
	if !strings.Contains(out, "col a") {
		t.Errorf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "1" and "2" start at the same offset.
	r1, r2 := lines[4], lines[5]
	if strings.Index(r1, "1") != strings.Index(r2, "2") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.Add("only", "row")
	out := tb.String()
	if strings.Contains(out, "=") || strings.Contains(out, "-") {
		t.Errorf("decorations without title/headers:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestAddFFormats(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddF("s", 3.14159, float32(2.5), 42, int64(-7), uint64(9), Time99{})
	out := tb.String()
	for _, want := range []string{"s", "3.142", "2.5", "42", "-7", "9", "99s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// Time99 exercises the fmt.Stringer branch.
type Time99 struct{}

func (Time99) String() string { return "99s" }

func TestAddFDefaultBranch(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddF([]int{1, 2})
	if !strings.Contains(tb.String(), "[1 2]") {
		t.Error("default formatting missed")
	}
}

func TestRowWiderThanHeaders(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("1", "2", "3") // more cells than headers must not panic
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
}

func TestHelpers(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := KB(2048); got != "2.0KB" {
		t.Errorf("KB = %q", got)
	}
	if got := Gbps(12.5e9); got != "12.50Gbps" {
		t.Errorf("Gbps = %q", got)
	}
}
