package apps

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/population"
)

func TestHeavyHitterBasics(t *testing.T) {
	if _, err := NewHeavyHitter(0, nil); err == nil {
		t.Error("zero slots: want error")
	}
	h, err := NewHeavyHitter(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One elephant, background mice.
	for i := 0; i < 5000; i++ {
		h.Observe(7)
		if i%10 == 0 {
			h.Observe(1000 + i)
		}
	}
	flow, count := h.Top()
	if flow != 7 {
		t.Errorf("top flow = %d, want 7", flow)
	}
	if count < 4000 {
		t.Errorf("top count = %d, want ≈5000", count)
	}
	if h.Count(7) != count {
		t.Error("Count accessor mismatch")
	}
	if h.Count(424242) != 0 {
		t.Error("untracked flow must count 0")
	}
}

func TestHeavyHitterEmptyTop(t *testing.T) {
	h, err := NewHeavyHitter(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flow, count := h.Top(); flow != 0 || count != 0 {
		t.Errorf("empty detector Top() = (%d, %d), want (0, 0)", flow, count)
	}
}

func TestHeavyHitterRecirculation(t *testing.T) {
	// A single slot forces every colliding flow through the PRECISION
	// admission coin: recirculations must be counted, and a persistent
	// challenger must eventually evict a weak incumbent.
	h, err := NewHeavyHitter(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1) // incumbent with count 1
	for i := 0; i < 200 && h.Count(2) == 0; i++ {
		h.Observe(2)
	}
	if h.Recirculations == 0 {
		t.Error("collisions never recirculated")
	}
	if h.Count(2) == 0 {
		t.Error("challenger never admitted against a count-1 incumbent")
	}
}

func TestHeavyHitterMSEWithTCAMSquares(t *testing.T) {
	entries, err := population.NaiveUnary(arith.OpSquare.Func(), 16, 512, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := arith.NewUnaryEngine("sq", 16, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	exactH, _ := NewHeavyHitter(32, nil)
	tcamH, _ := NewHeavyHitter(32, sq)
	// Skewed counters: one elephant plus uniform mice, so the deviations
	// are large enough for the 512-entry table's granularity.
	for i := 0; i < 3000; i++ {
		exactH.Observe(0)
		tcamH.Observe(0)
	}
	for f := 1; f < 32; f++ {
		for i := 0; i < 100; i++ {
			exactH.Observe(f)
			tcamH.Observe(f)
		}
	}
	e, a := exactH.MSE(), tcamH.MSE()
	if e == 0 {
		t.Fatal("degenerate counter distribution")
	}
	rel := (a - e) / e
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.5 {
		t.Errorf("TCAM MSE %.1f deviates %.0f%% from exact %.1f", a, rel*100, e)
	}
	var empty HeavyHitter
	empty.slots = make([]hhSlot, 4)
	if empty.MSE() != 0 {
		t.Error("empty MSE must be 0")
	}
}
