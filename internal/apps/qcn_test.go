package apps

import (
	"testing"

	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
)

func TestQCNConfig(t *testing.T) {
	if _, err := NewQCNRP(nil, 10000); err == nil {
		t.Error("nil arith: want error")
	}
	if _, err := NewQCNRP(netsim.IdealArith{}, 0); err == nil {
		t.Error("zero rate: want error")
	}
}

func TestQCNCPSampling(t *testing.T) {
	cp := NewQCNCP(100 * 1024)
	cp.SampleEvery = 1 // sample every arrival for the test
	cp.Sample(50 * 1024)
	// Queue below the setpoint and falling: no feedback.
	if fb := cp.Sample(49 * 1024); fb != 0 {
		t.Errorf("below setpoint and falling: fb = %d, want 0", fb)
	}
	// Queue far above the setpoint and rising: strong feedback.
	fb := cp.Sample(400 * 1024)
	if fb == 0 {
		t.Fatal("no feedback above setpoint")
	}
	if fb > 63 {
		t.Errorf("fb = %d, exceeds 6-bit quantization", fb)
	}
	// Rising further yields at-least-as-strong feedback.
	fb2 := cp.Sample(800 * 1024)
	if fb2 < fb {
		t.Errorf("fb fell from %d to %d while queue grew", fb, fb2)
	}
	// Three notifications: the warm-up burst (rapid growth from empty) and
	// the two above-setpoint samples.
	if cp.Notifications != 3 {
		t.Errorf("Notifications = %d, want 3", cp.Notifications)
	}
}

func TestQCNCPSampleRate(t *testing.T) {
	cp := NewQCNCP(1024)
	fired := 0
	for i := 0; i < 1000; i++ {
		if cp.Sample(1<<20) != 0 {
			fired++
		}
	}
	if fired != 10 { // every 100th arrival
		t.Errorf("samples fired = %d, want 10", fired)
	}
}

func TestQCNRPDecreaseAndRecovery(t *testing.T) {
	rp, err := NewQCNRP(netsim.IdealArith{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Maximum feedback halves the rate.
	rp.OnFeedback(63)
	if rp.RateMbps < 4900 || rp.RateMbps > 5100 {
		t.Errorf("rate after max fb = %d, want ≈5000", rp.RateMbps)
	}
	if rp.TargetRateMbps != 10000 {
		t.Errorf("target = %d, want 10000", rp.TargetRateMbps)
	}
	// Fast recovery moves halfway back per cycle.
	before := rp.RateMbps
	rp.OnSent(rp.RecoveryBytes)
	if rp.RateMbps <= before || rp.RateMbps > 10000 {
		t.Errorf("recovery rate = %d (from %d)", rp.RateMbps, before)
	}
	for i := 0; i < 20; i++ {
		rp.OnSent(rp.RecoveryBytes)
	}
	if rp.RateMbps < 9900 {
		t.Errorf("rate did not recover toward target: %d", rp.RateMbps)
	}
	if rp.Decreases != 1 || rp.Recoveries != 21 {
		t.Errorf("counters: %d decreases, %d recoveries", rp.Decreases, rp.Recoveries)
	}
	// Zero feedback is ignored.
	r := rp.RateMbps
	rp.OnFeedback(0)
	if rp.RateMbps != r {
		t.Error("zero feedback changed the rate")
	}
}

// TestQCNClosedLoopConvergence drives the CP/RP pair against a synthetic
// queue: the loop must pull the offered rate to the drain rate and hold the
// queue near the setpoint, under both ideal and ADA arithmetic.
func TestQCNClosedLoopConvergence(t *testing.T) {
	run := func(a netsim.Arithmetic, sync func()) (finalRate uint64, meanQ float64) {
		const (
			drainMbps = 5000
			qeq       = 60 * 1024
			stepBytes = 15000 // bytes moved per simulated tick at 1 Gbps-ish granularity
		)
		cp := NewQCNCP(qeq)
		cp.SampleEvery = 10
		rp, err := NewQCNRP(a, 10000)
		if err != nil {
			t.Fatal(err)
		}
		queue := 0
		sumQ, ticks := 0.0, 0
		for tick := 0; tick < 8000; tick++ {
			// Source emits at rp.RateMbps, queue drains at drainMbps.
			in := int(rp.RateMbps) * stepBytes / 10000
			out := drainMbps * stepBytes / 10000
			queue += in - out
			if queue < 0 {
				queue = 0
			}
			rp.OnSent(uint64(in))
			if fb := cp.Sample(queue); fb > 0 {
				rp.OnFeedback(fb)
			}
			if sync != nil && tick%500 == 0 {
				sync()
			}
			if tick >= 4000 { // steady-state window
				sumQ += float64(queue)
				ticks++
			}
		}
		return rp.RateMbps, sumQ / float64(ticks)
	}

	idealRate, idealQ := run(netsim.IdealArith{}, nil)
	if idealRate < 3500 || idealRate > 7000 {
		t.Errorf("ideal rate = %d, want ≈5000 (drain rate)", idealRate)
	}
	if idealQ > 400*1024 {
		t.Errorf("ideal mean queue = %.0f, runaway", idealQ)
	}

	cfg := core.DefaultConfig(14)
	cfg.CalcEntries = 128
	cfg.MonitorEntries = 12
	ada, err := NewADAArith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaRate, adaQ := run(ada, func() {
		if _, err := ada.Sync(); err != nil {
			t.Fatal(err)
		}
	})
	if adaRate < 3000 || adaRate > 8000 {
		t.Errorf("ADA rate = %d, want ≈5000", adaRate)
	}
	if adaQ > 400*1024 {
		t.Errorf("ADA mean queue = %.0f, runaway", adaQ)
	}
}
