package apps

import (
	"testing"

	"github.com/ada-repro/ada/internal/netsim"
)

func TestNimbleConfig(t *testing.T) {
	if _, err := NewNimble(nil, 10, 1000); err == nil {
		t.Error("nil arith: want error")
	}
	if _, err := NewNimble(netsim.IdealArith{}, 0, 1000); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := NewNimble(netsim.IdealArith{}, 10, 0); err == nil {
		t.Error("zero limit: want error")
	}
}

func TestNimbleEnforcesRateIdeal(t *testing.T) {
	// Feed packets at 10 Gbps into a 1 Gbps Nimble limit: ~90% must drop,
	// and the passing rate must approximate 1 Gbps.
	n, err := NewNimble(netsim.IdealArith{}, 1, 30*1500)
	if err != nil {
		t.Fatal(err)
	}
	const pktSize = 1500
	gap := netsim.Time(float64(pktSize*8) / 10e9 * float64(netsim.Second)) // 10 Gbps arrivals
	now := netsim.Time(0)
	var passedBytes uint64
	const nPkts = 100000
	for i := 0; i < nPkts; i++ {
		if n.Allow(&netsim.Packet{Size: pktSize}, now) {
			passedBytes += pktSize
		}
		now += gap
	}
	elapsed := now.Seconds()
	gotRate := float64(passedBytes*8) / elapsed
	if gotRate < 0.8e9 || gotRate > 1.2e9 {
		t.Errorf("passed rate = %.2g bps, want ≈1 Gbps", gotRate)
	}
	if n.Drops == 0 || n.Passed == 0 {
		t.Errorf("drops=%d passed=%d", n.Drops, n.Passed)
	}
}

func TestNimbleMatchesTokenBucket(t *testing.T) {
	// Same arrival pattern through Nimble (ideal arithmetic) and a token
	// bucket: admitted byte counts must be within 15%.
	nim, err := NewNimble(netsim.IdealArith{}, 2, 40*1500)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTokenBucket(2e9, 40*1500)
	gap := netsim.Time(float64(1500*8) / 8e9 * float64(netsim.Second))
	now := netsim.Time(0)
	var nimBytes, tbBytes float64
	for i := 0; i < 50000; i++ {
		p := &netsim.Packet{Size: 1500}
		if nim.Allow(p, now) {
			nimBytes += 1500
		}
		if tb.Allow(p, now) {
			tbBytes += 1500
		}
		now += gap
	}
	ratio := nimBytes / tbBytes
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("nimble/token-bucket admitted ratio = %.3f", ratio)
	}
}

func TestNimbleOperandHook(t *testing.T) {
	n, err := NewNimble(netsim.IdealArith{}, 24, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var rates, dts []uint64
	n.OnOperands = func(r, dt uint64) { rates = append(rates, r); dts = append(dts, dt) }
	n.Allow(&netsim.Packet{Size: 100}, 0)
	n.Allow(&netsim.Packet{Size: 100}, 120*netsim.Nanosecond)
	n.Allow(&netsim.Packet{Size: 100}, 360*netsim.Nanosecond)
	if len(rates) != 2 || rates[0] != 24 || dts[0] != 120 || dts[1] != 240 {
		t.Errorf("operand trace: rates=%v dts=%v", rates, dts)
	}
	n.SetRateGbps(12)
	if n.RateGbps() != 12 {
		t.Error("SetRateGbps")
	}
}

func TestNimbleECNMarking(t *testing.T) {
	// Overdrive a limiter with a marking threshold: packets admitted below
	// the threshold stay unmarked, sustained overload must mark some, and
	// the buffer accessor must track admissions.
	n, err := NewNimble(netsim.IdealArith{}, 1, 100*1500)
	if err != nil {
		t.Fatal(err)
	}
	n.ECNThresholdBytes = 20 * 1500
	gap := netsim.Time(float64(1500*8) / 20e9 * float64(netsim.Second)) // 20 Gbps arrivals
	now := netsim.Time(0)
	var earlyMarked uint64
	for i := 0; i < 5000; i++ {
		p := &netsim.Packet{Size: 1500}
		n.Allow(p, now)
		if i == 5 {
			earlyMarked = n.Marked
			if n.VirtualBuffer() == 0 {
				t.Error("virtual buffer empty after admissions")
			}
		}
		now += gap
	}
	if earlyMarked != 0 {
		t.Errorf("marked %d packets below the ECN threshold", earlyMarked)
	}
	if n.Marked == 0 {
		t.Error("sustained overload never ECN-marked")
	}
	if n.Marked > n.Passed {
		t.Errorf("marked %d > passed %d", n.Marked, n.Passed)
	}
}
