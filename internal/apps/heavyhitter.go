package apps

import (
	"errors"

	"github.com/ada-repro/ada/internal/arith"
)

// HeavyHitter is a PRECISION-style [9] heavy-hitter detector: per-flow
// packet counters in a fixed-size table with probabilistic recirculation
// admission, plus a mean-square-error estimate over the counters whose x²
// operations go through a TCAM square engine — the arithmetic PRECISION
// borrows from [12] and that ADA improves.
type HeavyHitter struct {
	square interface {
		Eval(x uint64) (uint64, error)
	}
	slots   []hhSlot
	rngPool uint64 // cheap xorshift state for the admission coin

	// Recirculations counts admission attempts (the PRECISION overhead
	// metric).
	Recirculations uint64
}

type hhSlot struct {
	flow  int
	count uint64
	used  bool
}

// NewHeavyHitter builds a detector with the given table size and square
// engine (nil = exact squares).
func NewHeavyHitter(slots int, square *arith.UnaryEngine) (*HeavyHitter, error) {
	if slots < 1 {
		return nil, errors.New("apps: heavy hitter needs at least one slot")
	}
	h := &HeavyHitter{slots: make([]hhSlot, slots), rngPool: 0x9E3779B97F4A7C15}
	if square != nil {
		h.square = square
	}
	return h, nil
}

func (h *HeavyHitter) rand() uint64 {
	h.rngPool ^= h.rngPool << 13
	h.rngPool ^= h.rngPool >> 7
	h.rngPool ^= h.rngPool << 17
	return h.rngPool
}

// Observe processes one packet of the given flow.
func (h *HeavyHitter) Observe(flow int) {
	idx := flow % len(h.slots)
	s := &h.slots[idx]
	if s.used && s.flow == flow {
		s.count++
		return
	}
	if !s.used {
		*s = hhSlot{flow: flow, count: 1, used: true}
		return
	}
	// PRECISION: replace the incumbent with probability 1/(count+1),
	// approximated by a recirculation coin flip.
	h.Recirculations++
	if h.rand()%(s.count+1) == 0 {
		*s = hhSlot{flow: flow, count: s.count + 1, used: true}
	}
}

// Top returns the flow with the largest counter.
func (h *HeavyHitter) Top() (flow int, count uint64) {
	best := -1
	for i, s := range h.slots {
		if s.used && (best < 0 || s.count > h.slots[best].count) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0
	}
	return h.slots[best].flow, h.slots[best].count
}

// Count returns the tracked count for a flow (0 if untracked).
func (h *HeavyHitter) Count(flow int) uint64 {
	s := h.slots[flow%len(h.slots)]
	if s.used && s.flow == flow {
		return s.count
	}
	return 0
}

// MSE estimates the mean square error of the counters around their mean,
// Σ(cᵢ−µ)²/n, with each square going through the TCAM engine when one is
// configured. Misses fall back to zero contribution, as an out-of-range
// operand would on the switch.
func (h *HeavyHitter) MSE() float64 {
	var sum, n uint64
	for _, s := range h.slots {
		if s.used {
			sum += s.count
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean := sum / n
	var acc float64
	for _, s := range h.slots {
		if !s.used {
			continue
		}
		var d uint64
		if s.count >= mean {
			d = s.count - mean
		} else {
			d = mean - s.count
		}
		sq := d * d
		if h.square != nil {
			if v, err := h.square.Eval(d); err == nil {
				sq = v
			} else {
				sq = 0
			}
		}
		acc += float64(sq)
	}
	return acc / float64(n)
}
