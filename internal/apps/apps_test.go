package apps

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/population"
)

func TestNimbleConfig(t *testing.T) {
	if _, err := NewNimble(nil, 10, 1000); err == nil {
		t.Error("nil arith: want error")
	}
	if _, err := NewNimble(netsim.IdealArith{}, 0, 1000); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := NewNimble(netsim.IdealArith{}, 10, 0); err == nil {
		t.Error("zero limit: want error")
	}
}

func TestNimbleEnforcesRateIdeal(t *testing.T) {
	// Feed packets at 10 Gbps into a 1 Gbps Nimble limit: ~90% must drop,
	// and the passing rate must approximate 1 Gbps.
	n, err := NewNimble(netsim.IdealArith{}, 1, 30*1500)
	if err != nil {
		t.Fatal(err)
	}
	const pktSize = 1500
	gap := netsim.Time(float64(pktSize*8) / 10e9 * float64(netsim.Second)) // 10 Gbps arrivals
	now := netsim.Time(0)
	var passedBytes uint64
	const nPkts = 100000
	for i := 0; i < nPkts; i++ {
		if n.Allow(&netsim.Packet{Size: pktSize}, now) {
			passedBytes += pktSize
		}
		now += gap
	}
	elapsed := now.Seconds()
	gotRate := float64(passedBytes*8) / elapsed
	if gotRate < 0.8e9 || gotRate > 1.2e9 {
		t.Errorf("passed rate = %.2g bps, want ≈1 Gbps", gotRate)
	}
	if n.Drops == 0 || n.Passed == 0 {
		t.Errorf("drops=%d passed=%d", n.Drops, n.Passed)
	}
}

func TestNimbleMatchesTokenBucket(t *testing.T) {
	// Same arrival pattern through Nimble (ideal arithmetic) and a token
	// bucket: admitted byte counts must be within 15%.
	nim, err := NewNimble(netsim.IdealArith{}, 2, 40*1500)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTokenBucket(2e9, 40*1500)
	gap := netsim.Time(float64(1500*8) / 8e9 * float64(netsim.Second))
	now := netsim.Time(0)
	var nimBytes, tbBytes float64
	for i := 0; i < 50000; i++ {
		p := &netsim.Packet{Size: 1500}
		if nim.Allow(p, now) {
			nimBytes += 1500
		}
		if tb.Allow(p, now) {
			tbBytes += 1500
		}
		now += gap
	}
	ratio := nimBytes / tbBytes
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("nimble/token-bucket admitted ratio = %.3f", ratio)
	}
}

func TestNimbleOperandHook(t *testing.T) {
	n, err := NewNimble(netsim.IdealArith{}, 24, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var rates, dts []uint64
	n.OnOperands = func(r, dt uint64) { rates = append(rates, r); dts = append(dts, dt) }
	n.Allow(&netsim.Packet{Size: 100}, 0)
	n.Allow(&netsim.Packet{Size: 100}, 120*netsim.Nanosecond)
	n.Allow(&netsim.Packet{Size: 100}, 360*netsim.Nanosecond)
	if len(rates) != 2 || rates[0] != 24 || dts[0] != 120 || dts[1] != 240 {
		t.Errorf("operand trace: rates=%v dts=%v", rates, dts)
	}
	n.SetRateGbps(12)
	if n.RateGbps() != 12 {
		t.Error("SetRateGbps")
	}
}

func TestStaticTCAMArith(t *testing.T) {
	s, err := NewStaticTCAMArith(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() == "" {
		t.Error("name")
	}
	// Coarse but sane: result within an order of magnitude mid-domain.
	got := s.Multiply(500, 500)
	if got < 25000 || got > 2500000 {
		t.Errorf("Multiply(500,500) = %d, want within 10× of 250000", got)
	}
	if s.Divide(10, 0) == 0 {
		t.Error("divide by zero must saturate")
	}
	// Out-of-width operands clamp instead of missing.
	if v := s.Multiply(1<<20, 2); v == 0 {
		t.Error("oversized operand must clamp, not miss")
	}
}

func TestADAArithAdaptsNimbleOperands(t *testing.T) {
	cfg := core.DefaultConfig(12)
	cfg.CalcEntries = 128
	cfg.MonitorEntries = 12
	a, err := NewADAArith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "ada" {
		t.Error("name")
	}
	// Nimble-like operands: rate fixed at 24, ΔT clustered around 480 ns.
	for round := 0; round < 20; round++ {
		for i := 0; i < 500; i++ {
			a.Multiply(24, uint64(470+i%20))
		}
		if _, err := a.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	// After adaptation, error at the hot operating point must be small.
	// The joint table splits its budget across two dimensions (~11 entries
	// per side at 128), so a few percent is the honest floor.
	got := a.Multiply(24, 480)
	exact := uint64(24 * 480)
	rel := arith.RelError(got, exact)
	if rel > 0.10 {
		t.Errorf("adapted Multiply(24,480) = %d (exact %d), rel error %.3f", got, exact, rel)
	}
	// And it must beat the static naive population at the same budget.
	static, err := NewStaticTCAMArith(12, 128)
	if err != nil {
		t.Fatal(err)
	}
	if staticRel := arith.RelError(static.Multiply(24, 480), exact); staticRel <= rel {
		t.Errorf("ADA error %.3f not below static %.3f at the hot point", rel, staticRel)
	}
}

func TestADAUnaryMultiplier(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.CalcEntries = 64
	m, err := NewADAUnaryMultiplier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" {
		t.Error("name")
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			m.Multiply(24, 100)
		}
		if _, err := m.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Multiply(24, 100)
	rel := arith.RelError(got, 2400)
	if rel > 0.10 {
		t.Errorf("ADA(R) Multiply(24,100) = %d, rel error %.3f", got, rel)
	}
	if m.Divide(100, 10) != 10 {
		t.Error("ADA(R) divide must be exact")
	}
	if m.Divide(1, 0) == 0 {
		t.Error("divide by zero must saturate")
	}
	if m.System() == nil {
		t.Error("System accessor")
	}
}

func TestHeavyHitterBasics(t *testing.T) {
	if _, err := NewHeavyHitter(0, nil); err == nil {
		t.Error("zero slots: want error")
	}
	h, err := NewHeavyHitter(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One elephant, background mice.
	for i := 0; i < 5000; i++ {
		h.Observe(7)
		if i%10 == 0 {
			h.Observe(1000 + i)
		}
	}
	flow, count := h.Top()
	if flow != 7 {
		t.Errorf("top flow = %d, want 7", flow)
	}
	if count < 4000 {
		t.Errorf("top count = %d, want ≈5000", count)
	}
	if h.Count(7) != count {
		t.Error("Count accessor mismatch")
	}
	if h.Count(424242) != 0 {
		t.Error("untracked flow must count 0")
	}
}

func TestHeavyHitterMSEWithTCAMSquares(t *testing.T) {
	entries, err := population.NaiveUnary(arith.OpSquare.Func(), 16, 512, population.Midpoint)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := arith.NewUnaryEngine("sq", 16, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	exactH, _ := NewHeavyHitter(32, nil)
	tcamH, _ := NewHeavyHitter(32, sq)
	// Skewed counters: one elephant plus uniform mice, so the deviations
	// are large enough for the 512-entry table's granularity.
	for i := 0; i < 3000; i++ {
		exactH.Observe(0)
		tcamH.Observe(0)
	}
	for f := 1; f < 32; f++ {
		for i := 0; i < 100; i++ {
			exactH.Observe(f)
			tcamH.Observe(f)
		}
	}
	e, a := exactH.MSE(), tcamH.MSE()
	if e == 0 {
		t.Fatal("degenerate counter distribution")
	}
	rel := (a - e) / e
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.5 {
		t.Errorf("TCAM MSE %.1f deviates %.0f%% from exact %.1f", a, rel*100, e)
	}
	var empty HeavyHitter
	empty.slots = make([]hhSlot, 4)
	if empty.MSE() != 0 {
		t.Error("empty MSE must be 0")
	}
}
