package apps

import (
	"errors"

	"github.com/ada-repro/ada/internal/netsim"
)

// QCN implements the IEEE 802.1Qau quantized congestion notification loop
// from the paper's Table I ("1 multiplication, quantized congestion
// notification"): a congestion point (CP) at a switch queue samples arrivals
// and quantizes a feedback value
//
//	Fb = −(Qoff + w·Qdelta),  Qoff = q − Qeq, Qdelta = q − qOld
//
// and the reaction point (RP) at the source applies a multiplicative rate
// decrease rate ← rate·(1 − Gd·|Fb|), recovering additively afterwards. The
// rate×Fb product is the multiplication a PISA switch must emulate in TCAM;
// it goes through the Arithmetic implementation.

// QCNCP is the congestion-point side: queue sampling and feedback
// quantization.
type QCNCP struct {
	// QeqBytes is the queue equilibrium setpoint.
	QeqBytes int
	// W weights the queue derivative (the standard value is 2).
	W int
	// SampleEvery counts arrivals between samples (hardware samples ~1% of
	// frames).
	SampleEvery int

	arrivals int
	qOld     int
	// Notifications counts generated feedback messages.
	Notifications uint64
}

// NewQCNCP builds a congestion point with standard parameters.
func NewQCNCP(qeqBytes int) *QCNCP {
	return &QCNCP{QeqBytes: qeqBytes, W: 2, SampleEvery: 100}
}

// Sample processes one arrival at the monitored queue and returns a
// quantized feedback magnitude |Fb| in [0, 63] (0 = no congestion or not
// sampled this arrival; the 6-bit quantization is the protocol's).
func (cp *QCNCP) Sample(queueBytes int) uint64 {
	cp.arrivals++
	if cp.arrivals%cp.SampleEvery != 0 {
		return 0
	}
	qoff := queueBytes - cp.QeqBytes
	qdelta := queueBytes - cp.qOld
	cp.qOld = queueBytes
	fb := qoff + cp.W*qdelta // w is a constant: shift-add on the switch
	if fb <= 0 {
		return 0
	}
	// Quantize to 6 bits against the maximum meaningful offset (8·Qeq).
	maxFb := 8 * cp.QeqBytes
	q := fb * 63 / maxFb
	if q < 1 {
		q = 1
	}
	if q > 63 {
		q = 63
	}
	cp.Notifications++
	return uint64(q)
}

// QCNRP is the reaction-point rate limiter at the source.
type QCNRP struct {
	arith netsim.Arithmetic

	// RateMbps is the current sending rate.
	RateMbps uint64
	// TargetRateMbps tracks the rate before the last decrease (fast
	// recovery's target).
	TargetRateMbps uint64
	// GdShift encodes the decrease gain Gd = 2^-GdShift (standard: 1/128).
	GdShift uint
	// RecoveryBytes is the byte-counter threshold per recovery cycle.
	RecoveryBytes uint64

	bytesSinceFb uint64
	// Decreases and Recoveries count state transitions.
	Decreases, Recoveries uint64
}

// NewQCNRP builds a reaction point starting at lineRateMbps.
func NewQCNRP(arith netsim.Arithmetic, lineRateMbps uint64) (*QCNRP, error) {
	if arith == nil {
		return nil, errors.New("apps: qcn needs an arithmetic implementation")
	}
	if lineRateMbps == 0 {
		return nil, ErrConfig
	}
	return &QCNRP{
		arith:          arith,
		RateMbps:       lineRateMbps,
		TargetRateMbps: lineRateMbps,
		GdShift:        7, // Gd = 1/128
		RecoveryBytes:  150 * 1024,
	}, nil
}

// OnFeedback applies a congestion notification with quantized magnitude fb:
// the multiplicative decrease rate·(Gd·Fb) is the TCAM multiplication.
func (rp *QCNRP) OnFeedback(fb uint64) {
	if fb == 0 {
		return
	}
	rp.TargetRateMbps = rp.RateMbps
	// decrease = Gd · rate × Fb with Gd = 2^-GdShift, so the maximum
	// quantized feedback (63) halves the rate. The ×Fb product is
	// variable×variable (TCAM); the gain is a native shift.
	decrease := rp.arith.Multiply(rp.RateMbps, fb) >> rp.GdShift
	if decrease >= rp.RateMbps {
		decrease = rp.RateMbps / 2
	}
	rp.RateMbps -= decrease
	if rp.RateMbps < 1 {
		rp.RateMbps = 1
	}
	rp.bytesSinceFb = 0
	rp.Decreases++
}

// OnSent credits sent bytes toward fast recovery: after each
// RecoveryBytes without feedback, the rate moves halfway back to the
// pre-decrease target (adds and shifts, native).
func (rp *QCNRP) OnSent(bytes uint64) {
	rp.bytesSinceFb += bytes
	for rp.bytesSinceFb >= rp.RecoveryBytes {
		rp.bytesSinceFb -= rp.RecoveryBytes
		rp.RateMbps = (rp.RateMbps + rp.TargetRateMbps) / 2
		rp.Recoveries++
	}
}
