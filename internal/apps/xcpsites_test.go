package apps

import (
	"math"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/netsim"
)

func TestADAXCPSitesConstruction(t *testing.T) {
	a, err := NewADAXCPSites(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	for _, site := range []netsim.Arithmetic{s.SmallMul, s.BigMul, s.PktDiv, s.CtlDiv} {
		if site == nil {
			t.Fatal("nil site")
		}
		if site.Name() == "" {
			t.Error("empty site name")
		}
	}
	if a.TotalEntries() == 0 {
		t.Error("no initial entries")
	}
	// Hot-point adaptation: rtt×rtt at the typical cluster.
	for round := 0; round < 15; round++ {
		for i := 0; i < 200; i++ {
			s.SmallMul.Multiply(uint64(48+i%8), uint64(48+i%8))
		}
		if err := a.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	got := s.SmallMul.Multiply(50, 50)
	if rel := arith.RelError(got, 2500); rel > 0.15 {
		t.Errorf("SmallMul(50,50) = %d, rel error %.3f", got, rel)
	}
}

func TestADAXCPSitesZeroGuards(t *testing.T) {
	a, err := NewADAXCPSites(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	if s.SmallMul.Multiply(0, 7) != 0 || s.BigMul.Multiply(7, 0) != 0 {
		t.Error("multiply zero guard")
	}
	if s.PktDiv.Divide(0, 9) != 0 {
		t.Error("divide zero dividend")
	}
	if s.CtlDiv.Divide(9, 0) != math.MaxUint64 {
		t.Error("divide by zero must saturate")
	}
}

func TestADAXCPSitesDivAdaptation(t *testing.T) {
	// The per-packet basis division sees dividends clustered near φ·2^16;
	// after adaptation the hot quotient must be close.
	a, err := NewADAXCPSites(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	before := arith.RelError(s.PktDiv.Divide(4_100_000, 41), 4_100_000/41)
	for round := 0; round < 40; round++ {
		for i := 0; i < 200; i++ {
			s.PktDiv.Divide(uint64(4_000_000+i*1000), 41)
		}
		if err := a.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	got := s.PktDiv.Divide(4_100_000, 41)
	after := arith.RelError(got, 4_100_000/41)
	if after > 0.15 {
		t.Errorf("PktDiv(4.1e6, 41) = %d, rel error %.3f", got, after)
	}
	if after >= before && before > 0.15 {
		t.Errorf("adaptation did not improve the hot point: before %.3f, after %.3f", before, after)
	}
}

func TestADAXCPSitesScheduleSync(t *testing.T) {
	a, err := NewADAXCPSites(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator()
	a.ScheduleSync(sim, netsim.Millisecond)
	sim.Run(3 * netsim.Millisecond)
	if sim.Processed < 2 {
		t.Error("scheduled syncs did not run")
	}
}
