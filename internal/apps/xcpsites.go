package apps

import (
	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
)

// ADAXCPSites owns one adaptive system per XCP call-site class: the
// per-packet multiplications (rtt², rtt·size, ξ·basis), the per-packet
// basis division, and the per-interval ξ division. XCP is the paper's
// Table I entry with the heaviest arithmetic appetite (4 FP operations with
// error propagation), so it is the natural extension workload for ADA.
type ADAXCPSites struct {
	systems []*core.BinarySystem
	sites   netsim.XCPSites
}

// NewADAXCPSites builds the per-site systems. Operand widths cover the
// fixed-point ranges each site can see: per-packet multiplies mix
// microsecond RTTs with 2^16-scaled ξ factors (≤ 2^33-ish products of
// operands ≤ 2^24), and the divisions see dividends up to φ·2^16.
func NewADAXCPSites(calcEntries, monitorEntries int) (*ADAXCPSites, error) {
	mkCfg := func(width int) core.Config {
		cfg := core.DefaultConfig(width)
		cfg.CalcEntries = calcEntries
		cfg.MonitorEntries = monitorEntries
		return cfg
	}
	smallMul, err := core.NewBinary(mkCfg(12), arith.OpMul)
	if err != nil {
		return nil, err
	}
	bigMul, err := core.NewBinary(mkCfg(26), arith.OpMul)
	if err != nil {
		return nil, err
	}
	pktDiv, err := core.NewBinary(mkCfg(36), arith.OpDiv)
	if err != nil {
		return nil, err
	}
	ctlDiv, err := core.NewBinary(mkCfg(40), arith.OpDiv)
	if err != nil {
		return nil, err
	}
	return &ADAXCPSites{
		systems: []*core.BinarySystem{smallMul, bigMul, pktDiv, ctlDiv},
		sites: netsim.XCPSites{
			SmallMul: siteArith{sys: smallMul},
			BigMul:   siteArith{sys: bigMul},
			PktDiv:   siteArith{sys: pktDiv},
			CtlDiv:   siteArith{sys: ctlDiv},
		},
	}, nil
}

// Sites returns the per-call-site arithmetic bundle for AttachXCP.
func (a *ADAXCPSites) Sites() netsim.XCPSites { return a.sites }

// Sync runs one control round on every site system.
func (a *ADAXCPSites) Sync() error {
	for _, s := range a.systems {
		if _, err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// ScheduleSync arranges periodic control rounds on the simulator.
func (a *ADAXCPSites) ScheduleSync(sim *netsim.Simulator, every netsim.Time) {
	var tick func()
	tick = func() {
		if err := a.Sync(); err == nil {
			sim.After(every, tick)
		}
	}
	sim.After(every, tick)
}

// TotalEntries returns the combined calculation-TCAM footprint.
func (a *ADAXCPSites) TotalEntries() int {
	n := 0
	for _, s := range a.systems {
		n += s.Engine().Table().Len()
	}
	return n
}
