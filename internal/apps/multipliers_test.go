package apps

import (
	"math"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
)

func TestStaticTCAMArith(t *testing.T) {
	s, err := NewStaticTCAMArith(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() == "" {
		t.Error("name")
	}
	// Coarse but sane: result within an order of magnitude mid-domain.
	got := s.Multiply(500, 500)
	if got < 25000 || got > 2500000 {
		t.Errorf("Multiply(500,500) = %d, want within 10× of 250000", got)
	}
	if s.Divide(10, 0) == 0 {
		t.Error("divide by zero must saturate")
	}
	// Out-of-width operands clamp instead of missing.
	if v := s.Multiply(1<<20, 2); v == 0 {
		t.Error("oversized operand must clamp, not miss")
	}
}

func TestADAArithAdaptsNimbleOperands(t *testing.T) {
	cfg := core.DefaultConfig(12)
	cfg.CalcEntries = 128
	cfg.MonitorEntries = 12
	a, err := NewADAArith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "ada" {
		t.Error("name")
	}
	// Nimble-like operands: rate fixed at 24, ΔT clustered around 480 ns.
	for round := 0; round < 20; round++ {
		for i := 0; i < 500; i++ {
			a.Multiply(24, uint64(470+i%20))
		}
		if _, err := a.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	// After adaptation, error at the hot operating point must be small.
	// The joint table splits its budget across two dimensions (~11 entries
	// per side at 128), so a few percent is the honest floor.
	got := a.Multiply(24, 480)
	exact := uint64(24 * 480)
	rel := arith.RelError(got, exact)
	if rel > 0.10 {
		t.Errorf("adapted Multiply(24,480) = %d (exact %d), rel error %.3f", got, exact, rel)
	}
	// And it must beat the static naive population at the same budget.
	static, err := NewStaticTCAMArith(12, 128)
	if err != nil {
		t.Fatal(err)
	}
	if staticRel := arith.RelError(static.Multiply(24, 480), exact); staticRel <= rel {
		t.Errorf("ADA error %.3f not below static %.3f at the hot point", rel, staticRel)
	}
}

func TestADAArithGuards(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.CalcEntries = 64
	cfg.MonitorEntries = 8
	a, err := NewADAArith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Multiply(0, 9) != 0 || a.Multiply(9, 0) != 0 {
		t.Error("zero-operand multiply must short-circuit to 0")
	}
	if a.Divide(0, 9) != 0 {
		t.Error("zero dividend must short-circuit to 0")
	}
	if a.Divide(9, 0) != math.MaxUint64 {
		t.Error("divide by zero must saturate")
	}
	if a.Multiplier() == nil {
		t.Error("Multiplier accessor")
	}
}

func TestADAArithScheduleSync(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.CalcEntries = 64
	cfg.MonitorEntries = 8
	a, err := NewADAArith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator()
	a.ScheduleSync(sim, netsim.Millisecond)
	sim.Run(4 * netsim.Millisecond)
	if sim.Processed < 3 {
		t.Errorf("scheduled syncs did not run (%d events)", sim.Processed)
	}
}

func TestADAUnaryMultiplier(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.CalcEntries = 64
	m, err := NewADAUnaryMultiplier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" {
		t.Error("name")
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			m.Multiply(24, 100)
		}
		if _, err := m.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Multiply(24, 100)
	rel := arith.RelError(got, 2400)
	if rel > 0.10 {
		t.Errorf("ADA(R) Multiply(24,100) = %d, rel error %.3f", got, rel)
	}
	if m.Divide(100, 10) != 10 {
		t.Error("ADA(R) divide must be exact")
	}
	if m.Divide(1, 0) == 0 {
		t.Error("divide by zero must saturate")
	}
	if m.System() == nil {
		t.Error("System accessor")
	}
}

func TestClampWidth(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  uint64
	}{
		{5, 8, 5},
		{255, 8, 255},
		{256, 8, 255},
		{1 << 40, 16, 1<<16 - 1},
		{math.MaxUint64, 64, math.MaxUint64},
		{42, 64, 42},
	}
	for _, c := range cases {
		if got := clampWidth(c.v, c.width); got != c.want {
			t.Errorf("clampWidth(%d, %d) = %d, want %d", c.v, c.width, got, c.want)
		}
	}
}
