package apps

import (
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/netsim"
)

func TestADARateMultiplierBasics(t *testing.T) {
	m, err := NewADARateMultiplier(8, 16, 2, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
	if m.Multiply(0, 100) != 0 || m.Multiply(24, 0) != 0 {
		t.Error("zero guard failed")
	}
	if m.Divide(100, 10) != 10 {
		t.Error("divide must be exact in ADA(R)")
	}
	if m.Divide(1, 0) == 0 {
		t.Error("divide by zero must saturate")
	}
	if m.Controller() == nil || m.Engine() == nil {
		t.Error("accessors")
	}
}

func TestADARateMultiplierErrors(t *testing.T) {
	if _, err := NewADARateMultiplier(0, 16, 2, 12, 2); err == nil {
		t.Error("bad rate width: want error")
	}
	if _, err := NewADARateMultiplier(8, 0, 2, 12, 2); err == nil {
		t.Error("bad dt width: want error")
	}
	if _, err := NewADARateMultiplier(8, 16, 0, 12, 2); err == nil {
		t.Error("zero rate budget: want error")
	}
	if _, err := NewADARateMultiplier(8, 16, 2, 0, 2); err == nil {
		t.Error("zero monitor budget: want error")
	}
	if _, err := NewADARateMultiplier(8, 16, 2, 12, -1); err == nil {
		t.Error("negative sig bits: want error")
	}
}

func TestADARateMultiplierAdaptsAcrossRateChange(t *testing.T) {
	m, err := NewADARateMultiplier(8, 16, 2, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 at rate 24.
	for round := 0; round < 10; round++ {
		for i := 0; i < 300; i++ {
			m.Multiply(24, uint64(300+i%50))
		}
		if _, err := m.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if rel := arith.RelError(m.Multiply(24, 320), 24*320); rel > 0.10 {
		t.Errorf("phase-1 error %.3f at the hot point", rel)
	}
	// Rate changes to 12; the monitor must re-zoom.
	for round := 0; round < 12; round++ {
		for i := 0; i < 300; i++ {
			m.Multiply(12, uint64(600+i%100))
		}
		if _, err := m.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if rel := arith.RelError(m.Multiply(12, 640), 12*640); rel > 0.10 {
		t.Errorf("phase-2 error %.3f after adaptation", rel)
	}
	// ΔT error stays bounded across magnitudes (the sig-bits property).
	for _, dt := range []uint64{100, 1000, 10000, 60000} {
		got := m.Multiply(12, dt)
		if rel := arith.RelError(got, 12*dt); rel > 0.20 {
			t.Errorf("dt=%d: rel error %.3f exceeds sig-bits bound", dt, rel)
		}
	}
}

func TestADARateMultiplierScheduleSync(t *testing.T) {
	m, err := NewADARateMultiplier(8, 16, 2, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator()
	m.ScheduleSync(sim, netsim.Millisecond)
	sim.After(0, func() { m.Multiply(24, 500) })
	sim.Run(5 * netsim.Millisecond)
	if m.Controller().Totals().Rounds < 4 {
		t.Errorf("scheduled rounds = %d, want >= 4", m.Controller().Totals().Rounds)
	}
}
