package apps

import (
	"math"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/population"
)

// StaticTCAMArith is a frozen TCAM population: built once (naively, over the
// whole domain), never updated. This is the "without ADA" configuration of
// Fig 8 — accurate only where the initial population happens to be fine.
type StaticTCAMArith struct {
	mul *arith.BinaryEngine
	div *arith.BinaryEngine
}

// NewStaticTCAMArith builds naive two-operand multiply/divide tables of the
// given entry budget over width-bit operands.
func NewStaticTCAMArith(width, budget int) (*StaticTCAMArith, error) {
	mulEntries, err := population.NaiveBinary(arith.OpMul.Func(), width, budget, population.Midpoint)
	if err != nil {
		return nil, err
	}
	divEntries, err := population.NaiveBinary(arith.OpDiv.Func(), width, budget, population.Midpoint)
	if err != nil {
		return nil, err
	}
	mul, err := arith.NewBinaryEngine("static.mul", width, 0, mulEntries)
	if err != nil {
		return nil, err
	}
	div, err := arith.NewBinaryEngine("static.div", width, 0, divEntries)
	if err != nil {
		return nil, err
	}
	return &StaticTCAMArith{mul: mul, div: div}, nil
}

// Multiply implements netsim.Arithmetic.
func (s *StaticTCAMArith) Multiply(x, y uint64) uint64 {
	v, err := s.mul.Eval(clampWidth(x, s.mul.Width()), clampWidth(y, s.mul.Width()))
	if err != nil {
		return 0
	}
	return v
}

// Divide implements netsim.Arithmetic.
func (s *StaticTCAMArith) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	v, err := s.div.Eval(clampWidth(x, s.div.Width()), clampWidth(y, s.div.Width()))
	if err != nil {
		return 0
	}
	return v
}

// Name implements netsim.Arithmetic.
func (s *StaticTCAMArith) Name() string { return "static-tcam" }

// ADAArith adapts a pair of adaptive core systems to netsim.Arithmetic.
// Every Multiply/Divide is a data-plane lookup that also feeds the
// monitoring pipeline; Sync runs the control rounds.
type ADAArith struct {
	mul *core.BinarySystem
	div *core.BinarySystem
}

// NewADAArith builds adaptive multiply and divide systems with the given
// configuration.
func NewADAArith(cfg core.Config) (*ADAArith, error) {
	return NewADAArithSplit(cfg, cfg)
}

// NewADAArithSplit builds the multiply and divide systems with separate
// configurations. Useful when the two operations see very different operand
// ranges (e.g. RCP divides values up to R·adj but multiplies small rates).
func NewADAArithSplit(mulCfg, divCfg core.Config) (*ADAArith, error) {
	mul, err := core.NewBinary(mulCfg, arith.OpMul)
	if err != nil {
		return nil, err
	}
	div, err := core.NewBinary(divCfg, arith.OpDiv)
	if err != nil {
		return nil, err
	}
	return &ADAArith{mul: mul, div: div}, nil
}

// Multiply implements netsim.Arithmetic. Operands are monitored as a side
// effect, exactly like the P4 pipeline. A zero operand short-circuits to
// zero, as the P4 table's exact-zero guard entry does.
func (a *ADAArith) Multiply(x, y uint64) uint64 {
	if x == 0 || y == 0 {
		return 0
	}
	w := a.mul.Engine().Width()
	v, err := a.mul.Lookup(clampWidth(x, w), clampWidth(y, w))
	if err != nil {
		return 0
	}
	return v
}

// Divide implements netsim.Arithmetic. Zero dividends short-circuit via the
// exact-zero guard entry.
func (a *ADAArith) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	if x == 0 {
		return 0
	}
	w := a.div.Engine().Width()
	v, err := a.div.Lookup(clampWidth(x, w), clampWidth(y, w))
	if err != nil {
		return 0
	}
	return v
}

// Name implements netsim.Arithmetic.
func (a *ADAArith) Name() string { return "ada" }

// Sync runs one control round on both systems and returns the combined
// convergence delay.
func (a *ADAArith) Sync() (netsim.Time, error) {
	repM, err := a.mul.Sync()
	if err != nil {
		return 0, err
	}
	repD, err := a.div.Sync()
	if err != nil {
		return 0, err
	}
	total := repM.Delay + repD.Delay
	return netsim.Time(total.Nanoseconds()) * netsim.Nanosecond, nil
}

// Multiplier returns the underlying multiply system (error measurement).
func (a *ADAArith) Multiplier() *core.BinarySystem { return a.mul }

// ScheduleSync arranges periodic control rounds on the simulator, the
// in-simulation analogue of the paper's gRPC control loop.
func (a *ADAArith) ScheduleSync(sim *netsim.Simulator, every netsim.Time) {
	var tick func()
	tick = func() {
		if _, err := a.Sync(); err == nil {
			sim.After(every, tick)
		}
	}
	sim.After(every, tick)
}

// ADAUnaryMultiplier adapts a single adaptive unary system (monitoring only
// the rate variable, as the Fig 8 testbed does) combined with exact ΔT
// handling: result = table(rate) × ΔT where table(rate) is the adaptive
// per-rate drain coefficient. It demonstrates the ADA(R) configuration.
type ADAUnaryMultiplier struct {
	sys *core.UnarySystem
}

// NewADAUnaryMultiplier builds the ADA(R) multiplier: the unary system
// learns the rate distribution and serves identity lookups (coefficient =
// rate), so all TCAM error concentrates on the monitored variable.
func NewADAUnaryMultiplier(cfg core.Config) (*ADAUnaryMultiplier, error) {
	sys, err := core.NewUnary(cfg, arith.OpDouble)
	if err != nil {
		return nil, err
	}
	return &ADAUnaryMultiplier{sys: sys}, nil
}

// Multiply implements netsim.Arithmetic: (table(2x)/2) × y.
func (m *ADAUnaryMultiplier) Multiply(x, y uint64) uint64 {
	w := m.sys.Engine().Width()
	v, err := m.sys.Lookup(clampWidth(x, w))
	if err != nil {
		return 0
	}
	return (v / 2) * y
}

// Divide implements netsim.Arithmetic (exact; the ADA(R) deployment only
// offloads the multiplication).
func (m *ADAUnaryMultiplier) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	return x / y
}

// Name implements netsim.Arithmetic.
func (m *ADAUnaryMultiplier) Name() string { return "ada(R)" }

// Sync runs one control round.
func (m *ADAUnaryMultiplier) Sync() (core.SyncReport, error) { return m.sys.Sync() }

// System exposes the underlying unary system.
func (m *ADAUnaryMultiplier) System() *core.UnarySystem { return m.sys }

func clampWidth(v uint64, width int) uint64 {
	if width >= 64 {
		return v
	}
	maxV := uint64(1)<<uint(width) - 1
	if v > maxV {
		return maxV
	}
	return v
}

var (
	_ netsim.Arithmetic = (*StaticTCAMArith)(nil)
	_ netsim.Arithmetic = (*ADAArith)(nil)
	_ netsim.Arithmetic = (*ADAUnaryMultiplier)(nil)
)
