package apps

import (
	"math"
	"math/bits"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/core"
	"github.com/ada-repro/ada/internal/netsim"
)

// siteArith adapts one adaptive binary system to netsim.Arithmetic for a
// single RCP call site. Lookups monitor operands as a side effect.
type siteArith struct {
	sys *core.BinarySystem
}

// Multiply implements netsim.Arithmetic.
func (s siteArith) Multiply(x, y uint64) uint64 {
	if x == 0 || y == 0 {
		return 0
	}
	w := s.sys.Engine().Width()
	v, err := s.sys.Lookup(clampWidth(x, w), clampWidth(y, w))
	if err != nil {
		return 0
	}
	return v
}

// Divide implements netsim.Arithmetic.
func (s siteArith) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	if x == 0 {
		return 0
	}
	w := s.sys.Engine().Width()
	v, err := s.sys.Lookup(clampWidth(x, w), clampWidth(y, w))
	if err != nil {
		return 0
	}
	return v
}

// Name implements netsim.Arithmetic.
func (s siteArith) Name() string { return "ada-site" }

// ADARCPSites owns one adaptive system per RCP call site (the P4 layout:
// one TCAM table per arithmetic statement). All ports of the switch share
// the sites, as they share the pipeline program.
type ADARCPSites struct {
	systems []*core.BinarySystem
	sites   netsim.RCPSites
}

// NewADARCPSites builds the per-site systems for a link of cMbps capacity
// with the given per-table budgets. Operand widths are derived from the
// value ranges each site can produce.
func NewADARCPSites(cMbps uint64, calcEntries, monitorEntries int) (*ADARCPSites, error) {
	mkCfg := func(width int) core.Config {
		cfg := core.DefaultConfig(width)
		cfg.CalcEntries = calcEntries
		cfg.MonitorEntries = monitorEntries
		return cfg
	}
	cBits := bits.Len64(cMbps)
	// y = bits/T and q/d divide quantities up to ~C·T bits by small
	// microsecond constants; num/C divides up to R·adj ≤ 0.4·C².
	widthYQ := cBits + 8
	widthMul := cBits + 1
	widthFrac := 2*cBits + 1
	clampW := func(w int) int {
		if w > 48 {
			return 48
		}
		if w < 4 {
			return 4
		}
		return w
	}

	yDiv, err := core.NewBinary(mkCfg(clampW(widthYQ)), arith.OpDiv)
	if err != nil {
		return nil, err
	}
	qDiv, err := core.NewBinary(mkCfg(clampW(widthYQ)), arith.OpDiv)
	if err != nil {
		return nil, err
	}
	raMul, err := core.NewBinary(mkCfg(clampW(widthMul)), arith.OpMul)
	if err != nil {
		return nil, err
	}
	fracDiv, err := core.NewBinary(mkCfg(clampW(widthFrac)), arith.OpDiv)
	if err != nil {
		return nil, err
	}
	return &ADARCPSites{
		systems: []*core.BinarySystem{yDiv, qDiv, raMul, fracDiv},
		sites: netsim.RCPSites{
			YDiv:    siteArith{sys: yDiv},
			QDiv:    siteArith{sys: qDiv},
			RAdjMul: siteArith{sys: raMul},
			FracDiv: siteArith{sys: fracDiv},
		},
	}, nil
}

// Sites returns the per-call-site arithmetic bundle for AttachRCPSites.
func (a *ADARCPSites) Sites() netsim.RCPSites { return a.sites }

// Sync runs one control round on every site system.
func (a *ADARCPSites) Sync() error {
	for _, s := range a.systems {
		if _, err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// ScheduleSync arranges periodic control rounds on the simulator.
func (a *ADARCPSites) ScheduleSync(sim *netsim.Simulator, every netsim.Time) {
	var tick func()
	tick = func() {
		if err := a.Sync(); err == nil {
			sim.After(every, tick)
		}
	}
	sim.After(every, tick)
}

// TotalEntries returns the combined calculation-TCAM footprint.
func (a *ADARCPSites) TotalEntries() int {
	n := 0
	for _, s := range a.systems {
		n += s.Engine().Table().Len()
	}
	return n
}

var _ netsim.Arithmetic = siteArith{}
