// Package apps implements the arithmetic-heavy in-network applications the
// paper evaluates ADA with (Table I, §V-B/C): the Nimble rate limiter
// (bytes_enqueued = rate × ΔT through a TCAM multiplier), RCP arithmetic
// adapters, and a PRECISION-style heavy-hitter MSE estimator.
package apps

import (
	"errors"
	"math"

	"github.com/ada-repro/ada/internal/netsim"
)

// ErrConfig reports an invalid application configuration.
var ErrConfig = errors.New("apps: invalid configuration")

// Nimble is the paper's in-network rate limiter [10], deployed as an
// enqueue filter on a switch port. It tracks a virtual buffer: on each
// arrival the buffer drains by rate × ΔT (the multiplication PISA cannot do
// natively — it goes through the Arithmetic implementation) and grows by the
// packet size; packets are dropped while the virtual buffer exceeds the
// configured depth.
//
// Units are chosen for TCAM-friendly operand ranges: rate in bits/ns (a
// 100 Gbps limit is the value 100) and ΔT in ns.
type Nimble struct {
	arith netsim.Arithmetic

	rateBpns   uint64 // bits per nanosecond (== Gbps)
	limitBytes uint64

	bufBytes    uint64
	lastArrival netsim.Time
	seen        bool

	// OnOperands, when set, observes every (rate, ΔT ns) operand pair —
	// this is where ADA's monitoring samples come from when the multiplier
	// itself does not monitor.
	OnOperands func(rateBpns, dtNs uint64)

	// ECNThresholdBytes, when non-zero, marks packets CE with probability
	// ramping from 0 at the threshold to 1 at three times it (RED-style),
	// so DCTCP senders settle at the limit without global synchronisation.
	// Drops still occur at the full buffer.
	ECNThresholdBytes uint64
	// Marked counts packets ECN-marked by the limiter.
	Marked uint64

	rngState uint64

	// Drops counts packets rejected by the limiter.
	Drops uint64
	// Passed counts packets admitted.
	Passed uint64
}

// NewNimble builds a rate limiter. rateGbps is the limit (1 Gbps resolution,
// matching the paper's 24/12 Gbps settings); limitBytes is the virtual
// buffer depth.
func NewNimble(arith netsim.Arithmetic, rateGbps, limitBytes uint64) (*Nimble, error) {
	if arith == nil {
		return nil, errors.New("apps: nimble needs an arithmetic implementation")
	}
	if rateGbps == 0 || limitBytes == 0 {
		return nil, ErrConfig
	}
	return &Nimble{arith: arith, rateBpns: rateGbps, limitBytes: limitBytes}, nil
}

// SetRateGbps changes the rate limit (the Fig 8 mid-run event). The TCAM
// population backing the arithmetic is NOT touched here — exactly the
// paper's point: without ADA the stale population keeps answering for the
// old operating range.
func (n *Nimble) SetRateGbps(rate uint64) { n.rateBpns = rate }

// RateGbps returns the current limit.
func (n *Nimble) RateGbps() uint64 { return n.rateBpns }

// VirtualBuffer returns the current estimate in bytes.
func (n *Nimble) VirtualBuffer() uint64 { return n.bufBytes }

// Allow implements netsim.EnqueueFilter.
func (n *Nimble) Allow(p *netsim.Packet, now netsim.Time) bool {
	if n.seen {
		dtNs := uint64((now - n.lastArrival) / netsim.Nanosecond)
		if dtNs > 0 {
			if n.OnOperands != nil {
				n.OnOperands(n.rateBpns, dtNs)
			}
			drainedBits := n.arith.Multiply(n.rateBpns, dtNs)
			drainedBytes := drainedBits / 8
			if drainedBytes >= n.bufBytes {
				n.bufBytes = 0
			} else {
				n.bufBytes -= drainedBytes
			}
		}
	}
	n.lastArrival = now
	n.seen = true
	if n.bufBytes+uint64(p.Size) > n.limitBytes {
		n.Drops++
		return false
	}
	n.bufBytes += uint64(p.Size)
	if k := n.ECNThresholdBytes; k > 0 && n.bufBytes > k {
		span := 2 * k // full marking at 3k
		excess := n.bufBytes - k
		if excess >= span || n.randU16() < uint64(excess*65536/span) {
			p.ECN = true
			n.Marked++
		}
	}
	n.Passed++
	return true
}

// randU16 draws a deterministic pseudo-random value in [0, 65536).
func (n *Nimble) randU16() uint64 {
	if n.rngState == 0 {
		n.rngState = 0x9E3779B97F4A7C15
	}
	n.rngState ^= n.rngState << 13
	n.rngState ^= n.rngState >> 7
	n.rngState ^= n.rngState << 17
	return n.rngState & 0xFFFF
}

// TokenBucket is the classic reference limiter used to validate Nimble's
// behaviour in tests: exact arithmetic, same drain law.
type TokenBucket struct {
	rateBps    float64
	burstBytes float64
	tokens     float64
	last       netsim.Time
	seen       bool
}

// NewTokenBucket builds an exact limiter with the given rate and burst.
func NewTokenBucket(rateBps, burstBytes float64) *TokenBucket {
	return &TokenBucket{rateBps: rateBps, burstBytes: burstBytes, tokens: burstBytes}
}

// Allow implements netsim.EnqueueFilter.
func (t *TokenBucket) Allow(p *netsim.Packet, now netsim.Time) bool {
	if t.seen {
		dt := (now - t.last).Seconds()
		t.tokens = math.Min(t.burstBytes, t.tokens+dt*t.rateBps/8)
	}
	t.last = now
	t.seen = true
	if float64(p.Size) > t.tokens {
		return false
	}
	t.tokens -= float64(p.Size)
	return true
}
