package apps

import (
	"fmt"
	"math"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/controlplane"
	"github.com/ada-repro/ada/internal/monitor"
	"github.com/ada-repro/ada/internal/netsim"
	"github.com/ada-repro/ada/internal/population"
	"github.com/ada-repro/ada/internal/tcam"
	"github.com/ada-repro/ada/internal/trie"
)

// ADARateMultiplier is the paper's ADA(R) Nimble deployment (§V-B1: "we
// implement only monitoring for the rate variable"): the rate marginal is
// adaptive (monitored, Algorithm 2/3), while the ΔT marginal uses the
// magnitude-logarithmic 0^p 1 (0|1)^s x^r population of [12], whose relative
// error is uniform across all ΔT magnitudes. The joint table is the cross
// product, so its size is rateBudget × sig-bits table size.
type ADARateMultiplier struct {
	ctl    *controlplane.Controller
	engine *arith.BinaryEngine
	widthR int
	widthT int
}

// rateMulTarget regenerates the joint table from the adaptive rate trie.
// It keeps the rows of the last committed build so the controller's
// read-back audit can diff the hardware against the expected population.
type rateMulTarget struct {
	engine        *arith.BinaryEngine
	dtPrefixes    []bitstr.Prefix
	rep           population.Representative
	installed     []tcam.Row
	haveInstalled bool
}

func (t *rateMulTarget) Populate(tr *trie.Trie, budget int) (int, int, error) {
	xs, err := population.ADAAllocate(tr, budget)
	if err != nil {
		return 0, 0, err
	}
	entries := population.CrossEntries(arith.OpMul.Func(), xs, t.dtPrefixes, t.rep)
	writes, err := t.engine.Reload(entries)
	if err == nil {
		rows := make([]tcam.Row, len(entries))
		for i, e := range entries {
			rows[i] = tcam.Row{
				Fields: []tcam.Field{tcam.FieldFromPrefix(e.X), tcam.FieldFromPrefix(e.Y)},
				Data:   e.Result,
			}
		}
		t.installed = rows
		t.haveInstalled = true
	}
	return writes, len(entries), err
}

// AuditCalc implements controlplane.AuditableTarget: read the joint table
// back, classify divergence from the last committed build, and repair it
// with the store's minimal anti-entropy delta when asked.
func (t *rateMulTarget) AuditCalc(repair bool) (controlplane.AuditReport, error) {
	if !t.haveInstalled {
		return controlplane.AuditReport{}, nil
	}
	return controlplane.AuditStore(t.engine.Store(), t.installed, repair)
}

// RateMulOption tunes an ADARateMultiplier beyond the required parameters.
type RateMulOption func(*controlplane.Config)

// WithWrapDriver wraps the controller's switch driver — the seam for
// internal/faults injection in the chaos experiments.
func WithWrapDriver(wrap func(controlplane.Driver) controlplane.Driver) RateMulOption {
	return func(cfg *controlplane.Config) { cfg.WrapDriver = wrap }
}

// WithRetryPolicy overrides the controller's driver retry policy.
func WithRetryPolicy(p controlplane.RetryPolicy) RateMulOption {
	return func(cfg *controlplane.Config) { cfg.Retry = p }
}

// WithUnhealthyAfter sets the consecutive failed rounds before degraded
// mode (negative = never).
func WithUnhealthyAfter(n int) RateMulOption {
	return func(cfg *controlplane.Config) { cfg.UnhealthyAfter = n }
}

// WithAuditEvery enables the controller's periodic read-back audit of the
// joint calculation table (see controlplane.Config.AuditEvery).
func WithAuditEvery(n int) RateMulOption {
	return func(cfg *controlplane.Config) { cfg.AuditEvery = n }
}

// NewADARateMultiplier builds the ADA(R) multiplier.
//
//   - widthR, widthT: operand widths of the rate and ΔT keys.
//   - rateBudget: adaptive entries for the rate marginal.
//   - monitorEntries: monitoring TCAM budget for the rate variable (the
//     paper uses 12).
//   - dtSigBits: significant bits of the static ΔT marginal; relative error
//     is about ±2^-(dtSigBits+1) per lookup.
func NewADARateMultiplier(widthR, widthT, rateBudget, monitorEntries, dtSigBits int, opts ...RateMulOption) (*ADARateMultiplier, error) {
	dtPrefixes, err := population.SigBitsPrefixes(widthT, dtSigBits)
	if err != nil {
		return nil, fmt.Errorf("apps: dt marginal: %w", err)
	}
	engine, err := arith.NewBinaryEngineWidths("ada(R).mul", widthR, widthT, 0, nil)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New("ada(R).mon", widthR, 0)
	if err != nil {
		return nil, err
	}
	target := &rateMulTarget{engine: engine, dtPrefixes: dtPrefixes, rep: population.Midpoint}
	cfg := controlplane.DefaultConfig(monitorEntries, rateBudget)
	cfg.MaxMonitorEntries = 4 * monitorEntries
	for _, o := range opts {
		o(&cfg)
	}
	ctl, err := controlplane.New(cfg, mon, target)
	if err != nil {
		return nil, err
	}
	// Initial population from the uniform trie.
	if _, _, err := target.Populate(ctl.Trie(), rateBudget); err != nil {
		return nil, err
	}
	return &ADARateMultiplier{ctl: ctl, engine: engine, widthR: widthR, widthT: widthT}, nil
}

// Multiply implements netsim.Arithmetic: the rate operand is monitored (the
// ADA data-plane path), then the joint table answers.
func (m *ADARateMultiplier) Multiply(rate, dt uint64) uint64 {
	if rate == 0 || dt == 0 {
		return 0
	}
	m.ctl.Monitor().Observe(rate)
	v, err := m.engine.Eval(clampWidth(rate, m.widthR), clampWidth(dt, m.widthT))
	if err != nil {
		return 0
	}
	return v
}

// Divide implements netsim.Arithmetic (exact: this deployment offloads only
// the multiplication).
func (m *ADARateMultiplier) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	return x / y
}

// Name implements netsim.Arithmetic.
func (m *ADARateMultiplier) Name() string { return "ada(R)+sigbits(dT)" }

// Sync runs one control round: read the rate registers, adapt the trie,
// regenerate the joint table.
func (m *ADARateMultiplier) Sync() (controlplane.RoundReport, error) {
	return m.ctl.Round()
}

// ScheduleSync arranges periodic control rounds on the simulator.
func (m *ADARateMultiplier) ScheduleSync(sim *netsim.Simulator, every netsim.Time) {
	var tick func()
	tick = func() {
		if _, err := m.Sync(); err == nil {
			sim.After(every, tick)
		}
	}
	sim.After(every, tick)
}

// Controller exposes the control-plane state (resource accounting).
func (m *ADARateMultiplier) Controller() *controlplane.Controller { return m.ctl }

// Engine exposes the joint calculation engine.
func (m *ADARateMultiplier) Engine() *arith.BinaryEngine { return m.engine }

var _ netsim.Arithmetic = (*ADARateMultiplier)(nil)
