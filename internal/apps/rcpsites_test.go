package apps

import (
	"math"
	"testing"

	"github.com/ada-repro/ada/internal/arith"
	"github.com/ada-repro/ada/internal/netsim"
)

func TestADARCPSitesConstruction(t *testing.T) {
	a, err := NewADARCPSites(10000, 128, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	for _, site := range []netsim.Arithmetic{s.YDiv, s.QDiv, s.RAdjMul, s.FracDiv} {
		if site == nil {
			t.Fatal("nil site")
		}
		if site.Name() == "" {
			t.Error("empty site name")
		}
	}
	if a.TotalEntries() == 0 {
		t.Error("no initial entries")
	}
}

func TestADARCPSitesZeroGuards(t *testing.T) {
	a, err := NewADARCPSites(1000, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	if s.RAdjMul.Multiply(0, 5) != 0 || s.RAdjMul.Multiply(5, 0) != 0 {
		t.Error("multiply zero guard")
	}
	if s.YDiv.Divide(0, 20) != 0 {
		t.Error("divide zero dividend")
	}
	if s.YDiv.Divide(5, 0) != math.MaxUint64 {
		t.Error("divide by zero must saturate")
	}
}

func TestADARCPSitesAdaptation(t *testing.T) {
	// Feed each site its realistic operand cluster and verify post-sync
	// accuracy at the hot points.
	a, err := NewADARCPSites(10000, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Sites()
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			s.YDiv.Divide(uint64(150000+i*100), 28) // bits / T
			s.QDiv.Divide(uint64(i*8000), 28)       // q bits / d
			s.RAdjMul.Multiply(5000, uint64(100+i)) // R · adj
			s.FracDiv.Divide(uint64(500000+i*5000), 10000)
		}
		if err := a.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	checks := []struct {
		name  string
		got   uint64
		exact uint64
	}{
		{"y", s.YDiv.Divide(160000, 28), 160000 / 28},
		{"mul", s.RAdjMul.Multiply(5000, 150), 5000 * 150},
		{"frac", s.FracDiv.Divide(750000, 10000), 75},
	}
	for _, c := range checks {
		if rel := arith.RelError(c.got, c.exact); rel > 0.15 {
			t.Errorf("%s: got %d want ≈%d (rel %.3f)", c.name, c.got, c.exact, rel)
		}
	}
}

func TestADARCPSitesScheduleSync(t *testing.T) {
	a, err := NewADARCPSites(1000, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator()
	a.ScheduleSync(sim, netsim.Millisecond)
	sim.Run(4 * netsim.Millisecond)
	if sim.Processed < 3 {
		t.Errorf("scheduled syncs did not run (%d events)", sim.Processed)
	}
}

func TestUniformRCPSites(t *testing.T) {
	s := netsim.UniformRCPSites(netsim.IdealArith{})
	if s.YDiv.Divide(100, 4) != 25 || s.RAdjMul.Multiply(3, 4) != 12 {
		t.Error("uniform sites must share the implementation")
	}
}
