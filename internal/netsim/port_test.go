package netsim

import (
	"testing"
)

// sink collects delivered packets.
type sink struct {
	pkts  []*Packet
	times []Time
	sim   *Simulator
}

func (s *sink) Receive(p *Packet) {
	s.pkts = append(s.pkts, p)
	if s.sim != nil {
		s.times = append(s.times, s.sim.Now())
	}
}

func TestPortSerialisation(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{sim: sim}
	// 100 Gbps, 1 µs propagation: a 1500 B frame serialises in exactly
	// 120 ns.
	p := NewPort(sim, "p", 100e9, Microsecond, dst)
	p.Send(&Packet{Size: 1500})
	sim.Run(Second)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	want := 120*Nanosecond + Microsecond
	if dst.times[0] != want {
		t.Errorf("delivery at %v, want %v", dst.times[0], want)
	}
}

func TestPortBackToBackSpacing(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{sim: sim}
	p := NewPort(sim, "p", 100e9, 0, dst)
	for i := 0; i < 3; i++ {
		p.Send(&Packet{Size: 1500, Seq: i})
	}
	sim.Run(Second)
	if len(dst.times) != 3 {
		t.Fatalf("delivered %d", len(dst.times))
	}
	// Back-to-back full frames at 100 Gbps arrive 120 ns apart — the Fig 1b
	// narrow-band phenomenon.
	for i := 1; i < 3; i++ {
		gap := dst.times[i] - dst.times[i-1]
		if gap != 120*Nanosecond {
			t.Errorf("gap %d = %v, want 120ns", i, gap)
		}
	}
}

func TestPortBufferDrop(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{}
	p := NewPort(sim, "p", 1e9, 0, dst)
	p.BufferBytes = 3000
	for i := 0; i < 5; i++ {
		p.Send(&Packet{Size: 1500})
	}
	sim.Run(Second)
	st := p.Stats()
	// First packet starts transmitting immediately (leaves the queue), two
	// fit in the buffer, the rest drop.
	if st.DroppedBuffer == 0 {
		t.Error("expected buffer drops")
	}
	if st.Enqueued+st.DroppedBuffer != 5 {
		t.Errorf("enqueued %d + dropped %d != 5", st.Enqueued, st.DroppedBuffer)
	}
	if len(dst.pkts) != int(st.Enqueued) {
		t.Errorf("delivered %d, enqueued %d", len(dst.pkts), st.Enqueued)
	}
}

func TestPortECNMarking(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{}
	p := NewPort(sim, "p", 1e9, 0, dst)
	p.ECNThreshold = 2000
	var marked int
	for i := 0; i < 4; i++ {
		p.Send(&Packet{Size: 1500})
	}
	sim.Run(Second)
	for _, pkt := range dst.pkts {
		if pkt.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no packets marked above ECN threshold")
	}
	if p.Stats().ECNMarked != uint64(marked) {
		t.Errorf("stats marked %d, observed %d", p.Stats().ECNMarked, marked)
	}
}

type vetoFilter struct{ drops int }

func (v *vetoFilter) Allow(p *Packet, now Time) bool {
	v.drops++
	return false
}

func TestPortFilterVeto(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{}
	p := NewPort(sim, "p", 1e9, 0, dst)
	f := &vetoFilter{}
	p.Filter = f
	p.Send(&Packet{Size: 100})
	sim.Run(Second)
	if len(dst.pkts) != 0 {
		t.Error("vetoed packet was delivered")
	}
	if p.Stats().DroppedFilter != 1 || f.drops != 1 {
		t.Errorf("filter drop accounting wrong: %+v", p.Stats())
	}
}

func TestPortQueueSampler(t *testing.T) {
	sim := NewSimulator()
	p := NewPort(sim, "p", 1e9, 0, &sink{})
	var samples []int
	p.OnQueueSample = func(bytes int, now Time) { samples = append(samples, bytes) }
	p.Send(&Packet{Size: 1000})
	p.Send(&Packet{Size: 1000})
	sim.Run(Second)
	if len(samples) != 2 {
		t.Fatalf("samples = %v", samples)
	}
	if samples[0] != 1000 {
		t.Errorf("first sample = %d, want 1000 (before transmit drains)", samples[0])
	}
}

func TestTxTime(t *testing.T) {
	sim := NewSimulator()
	p := NewPort(sim, "p", 10e9, 0, nil)
	if got := p.TxTime(1500); got != 1200*Nanosecond {
		t.Errorf("TxTime(1500) at 10G = %v, want 1.2µs", got)
	}
}
