package netsim

import "math"

// Transport is a sender-side protocol engine for one flow.
type Transport interface {
	// Start begins transmission (scheduled at the flow's start time).
	Start()
	// OnAck processes a returning acknowledgement.
	OnAck(p *Packet)
}

// TransportFactory builds a transport for a flow on its source host.
type TransportFactory func(sim *Simulator, src *Host, f *Flow) Transport

// CCVariant selects the window-growth law of the window transport.
type CCVariant int

const (
	// Reno is classic AIMD with slow start.
	Reno CCVariant = iota + 1
	// Cubic grows the window with the CUBIC time-based law.
	Cubic
	// DCTCP is Reno plus ECN-fraction-proportional decrease.
	DCTCP
)

// String implements fmt.Stringer.
func (v CCVariant) String() string {
	switch v {
	case Reno:
		return "reno"
	case Cubic:
		return "cubic"
	case DCTCP:
		return "dctcp"
	default:
		return "cc?"
	}
}

const (
	initialCwnd   = 10.0
	minCwnd       = 1.0
	dctcpG        = 1.0 / 16
	cubicC        = 0.4
	cubicBeta     = 0.7
	defaultMinRTO = 200 * Microsecond
)

// windowTransport implements Reno/CUBIC/DCTCP window-based sending with
// cumulative ACKs, fast retransmit on three duplicate ACKs, and RTO
// recovery.
type windowTransport struct {
	sim     *Simulator
	host    *Host
	flow    *Flow
	variant CCVariant

	total    int // packets in flow
	sndUna   int
	sndNext  int
	cwnd     float64
	ssthresh float64
	dupacks  int

	recovering  bool
	recoverSeq  int
	rtoSeq      int64
	srtt        Time
	minRTO      Time
	lastAckTime Time

	// CUBIC state.
	wMax     float64
	lastDecr Time
	cubicK   float64
	hadLoss  bool

	// DCTCP state.
	alpha       float64
	ecnAcked    int
	totalAcked  int
	windowEnd   int // seq at which the current observation window closes
	markedInWin bool
}

// NewWindowTransport returns a factory for the given congestion-control
// variant.
func NewWindowTransport(variant CCVariant) TransportFactory {
	return func(sim *Simulator, src *Host, f *Flow) Transport {
		return &windowTransport{
			sim:      sim,
			host:     src,
			flow:     f,
			variant:  variant,
			total:    f.NumPackets(),
			cwnd:     initialCwnd,
			ssthresh: math.Inf(1),
			minRTO:   defaultMinRTO,
			alpha:    0,
		}
	}
}

// Start implements Transport.
func (t *windowTransport) Start() {
	t.windowEnd = int(t.cwnd)
	t.trySend()
	t.armRTO()
}

func (t *windowTransport) inflight() int { return t.sndNext - t.sndUna }

func (t *windowTransport) trySend() {
	for t.sndNext < t.total && float64(t.inflight()) < t.cwnd {
		t.emit(t.sndNext)
		t.sndNext++
	}
}

func (t *windowTransport) emit(seq int) {
	payload := t.flow.PacketPayload(seq)
	t.host.NIC.Send(&Packet{
		FlowID:  t.flow.ID,
		Src:     t.flow.Src,
		Dst:     t.flow.Dst,
		Seq:     seq,
		Size:    payload + HeaderBytes,
		Payload: payload,
		Sent:    t.sim.Now(),
	})
}

// OnAck implements Transport.
func (t *windowTransport) OnAck(p *Packet) {
	if t.flow.Done() {
		return
	}
	t.lastAckTime = t.sim.Now()
	if rtt := t.sim.Now() - p.Sent; rtt > 0 {
		if t.srtt == 0 {
			t.srtt = rtt
		} else {
			t.srtt = (7*t.srtt + rtt) / 8
		}
	}
	if t.variant == DCTCP {
		t.totalAcked++
		if p.ECNEcho {
			t.ecnAcked++
			t.markedInWin = true
		}
	}
	switch {
	case p.AckNo > t.sndUna:
		newly := p.AckNo - t.sndUna
		t.sndUna = p.AckNo
		t.dupacks = 0
		if t.recovering {
			if t.sndUna >= t.recoverSeq {
				t.recovering = false
			} else {
				// NewReno partial ACK: the next hole is lost too;
				// retransmit it immediately instead of stalling into RTO.
				t.emit(t.sndUna)
			}
		}
		if !t.recovering {
			t.grow(newly)
		}
		if t.variant == DCTCP && t.sndUna >= t.windowEnd {
			t.closeDctcpWindow()
		}
		if t.sndUna >= t.total {
			t.flow.Finish = t.sim.Now()
			if t.host.OnFlowDone != nil {
				t.host.OnFlowDone(t.flow)
			}
			return
		}
	case p.AckNo == t.sndUna:
		t.dupacks++
		if t.dupacks == 3 && !t.recovering {
			t.fastRetransmit()
		}
	}
	t.trySend()
	t.armRTO()
}

// grow applies the variant's window increase for newly acked packets.
func (t *windowTransport) grow(newly int) {
	if t.cwnd < t.ssthresh {
		t.cwnd += float64(newly) // slow start
		return
	}
	switch t.variant {
	case Cubic:
		if !t.hadLoss {
			t.cwnd += float64(newly) / t.cwnd // pre-loss: Reno-like probing
			return
		}
		el := (t.sim.Now() - t.lastDecr).Seconds()
		target := cubicC*math.Pow(el-t.cubicK, 3) + t.wMax
		if target > t.cwnd {
			// Converge toward the cubic target within roughly one RTT.
			t.cwnd += (target - t.cwnd) / t.cwnd * float64(newly)
		} else {
			t.cwnd += float64(newly) * 0.01 / t.cwnd // TCP-friendly floor
		}
	default: // Reno, DCTCP
		t.cwnd += float64(newly) / t.cwnd
	}
}

// closeDctcpWindow updates α and applies the proportional decrease once per
// observation window (~one RTT of acks).
func (t *windowTransport) closeDctcpWindow() {
	if t.totalAcked > 0 {
		frac := float64(t.ecnAcked) / float64(t.totalAcked)
		t.alpha = (1-dctcpG)*t.alpha + dctcpG*frac
	}
	if t.markedInWin {
		t.cwnd *= 1 - t.alpha/2
		if t.cwnd < minCwnd {
			t.cwnd = minCwnd
		}
		t.ssthresh = t.cwnd
	}
	t.ecnAcked, t.totalAcked, t.markedInWin = 0, 0, false
	t.windowEnd = t.sndUna + int(math.Max(t.cwnd, 1))
}

func (t *windowTransport) fastRetransmit() {
	t.onLoss()
	t.recovering = true
	t.recoverSeq = t.sndNext
	t.emit(t.sndUna)
}

// onLoss applies the multiplicative decrease.
func (t *windowTransport) onLoss() {
	switch t.variant {
	case Cubic:
		t.wMax = t.cwnd
		t.hadLoss = true
		t.lastDecr = t.sim.Now()
		t.cwnd = math.Max(minCwnd, t.cwnd*cubicBeta)
		t.cubicK = math.Cbrt(t.wMax * (1 - cubicBeta) / cubicC)
	default:
		t.cwnd = math.Max(minCwnd, t.cwnd/2)
	}
	t.ssthresh = math.Max(t.cwnd, 2)
}

// rto returns the retransmission timeout.
func (t *windowTransport) rto() Time {
	if t.srtt == 0 {
		return t.minRTO
	}
	r := 3 * t.srtt
	if r < t.minRTO {
		r = t.minRTO
	}
	return r
}

// armRTO schedules a retransmission check; newer arms invalidate older ones.
func (t *windowTransport) armRTO() {
	if t.flow.Done() || t.sndUna >= t.total {
		return
	}
	t.rtoSeq++
	seq := t.rtoSeq
	una := t.sndUna
	t.sim.After(t.rto(), func() {
		if seq != t.rtoSeq || t.flow.Done() {
			return
		}
		if t.sndUna == una {
			// No progress: timeout. Collapse the window and resend.
			t.ssthresh = math.Max(t.cwnd/2, 2)
			t.cwnd = minCwnd
			t.recovering = false
			t.dupacks = 0
			t.sndNext = t.sndUna
			t.trySend()
		}
		t.armRTO()
	})
}
