package netsim

import (
	"math"
	"sort"
)

// FCTStats summarises flow completion times for one flow class.
type FCTStats struct {
	// N is the number of completed flows.
	N int
	// Unfinished counts flows that never completed within the run.
	Unfinished int
	// Mean, Median, P99, Max are completion-time statistics.
	Mean, Median, P99, Max Time
}

// CollectFCT computes statistics over the flows accepted by the filter
// (nil = all flows).
func CollectFCT(flows []*Flow, filter func(*Flow) bool) FCTStats {
	var done []Time
	var out FCTStats
	for _, f := range flows {
		if filter != nil && !filter(f) {
			continue
		}
		if !f.Done() {
			out.Unfinished++
			continue
		}
		done = append(done, f.FCT())
	}
	out.N = len(done)
	if out.N == 0 {
		return out
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	var sum Time
	for _, d := range done {
		sum += d
	}
	out.Mean = sum / Time(out.N)
	out.Median = done[out.N/2]
	out.P99 = done[int(math.Ceil(0.99*float64(out.N)))-1]
	out.Max = done[out.N-1]
	return out
}

// ShortFlows filters the §V-C short-flow class.
func ShortFlows(shortMax int) func(*Flow) bool {
	return func(f *Flow) bool { return !f.Incast && f.Size <= shortMax }
}

// LongFlows filters the long-flow class.
func LongFlows(shortMax int) func(*Flow) bool {
	return func(f *Flow) bool { return !f.Incast && f.Size > shortMax }
}

// QueueRecorder samples queue depth over time for the Fig 1a CDF.
type QueueRecorder struct {
	// Samples are queue depths in bytes at enqueue instants.
	Samples []int
}

// Attach hooks the recorder onto a port.
func (r *QueueRecorder) Attach(p *Port) {
	prev := p.OnQueueSample
	p.OnQueueSample = func(bytes int, now Time) {
		r.Samples = append(r.Samples, bytes)
		if prev != nil {
			prev(bytes, now)
		}
	}
}

// CDF returns (depths, cumulative fractions) suitable for plotting: the
// fraction of samples with depth <= depths[i].
func (r *QueueRecorder) CDF() (depths []int, frac []float64) {
	if len(r.Samples) == 0 {
		return nil, nil
	}
	s := make([]int, len(r.Samples))
	copy(s, r.Samples)
	sort.Ints(s)
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		depths = append(depths, s[i])
		frac = append(frac, float64(i+1)/n)
	}
	return depths, frac
}

// FractionBelow returns the fraction of samples with depth <= bytes.
func (r *QueueRecorder) FractionBelow(bytes int) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	count := 0
	for _, s := range r.Samples {
		if s <= bytes {
			count++
		}
	}
	return float64(count) / float64(len(r.Samples))
}

// InterArrivalRecorder captures packet inter-arrival times on a link for
// the Fig 1b CDF.
type InterArrivalRecorder struct {
	// Gaps are successive inter-arrival times.
	Gaps []Time

	last Time
	seen bool
}

// Attach hooks the recorder onto a port's delivery side.
func (r *InterArrivalRecorder) Attach(p *Port) {
	prev := p.OnDeliver
	p.OnDeliver = func(pkt *Packet, now Time) {
		if r.seen {
			r.Gaps = append(r.Gaps, now-r.last)
		}
		r.last = now
		r.seen = true
		if prev != nil {
			prev(pkt, now)
		}
	}
}

// Quantile returns the q-quantile inter-arrival gap.
func (r *InterArrivalRecorder) Quantile(q float64) Time {
	if len(r.Gaps) == 0 {
		return 0
	}
	s := make([]Time, len(r.Gaps))
	copy(s, r.Gaps)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// ThroughputMeter measures delivered goodput on a port over fixed windows,
// for the Fig 8 throughput-over-time series.
type ThroughputMeter struct {
	// Window is the measurement interval.
	Window Time
	// BpsSeries holds one goodput sample (bits/s) per elapsed window.
	BpsSeries []float64

	bytesInWindow uint64
}

// Attach hooks the meter onto a port and starts its window timer.
func (m *ThroughputMeter) Attach(sim *Simulator, p *Port) {
	prev := p.OnDeliver
	p.OnDeliver = func(pkt *Packet, now Time) {
		if !pkt.Ack {
			m.bytesInWindow += uint64(pkt.Payload)
		}
		if prev != nil {
			prev(pkt, now)
		}
	}
	var tick func()
	tick = func() {
		bps := float64(m.bytesInWindow*8) / m.Window.Seconds()
		m.BpsSeries = append(m.BpsSeries, bps)
		m.bytesInWindow = 0
		sim.After(m.Window, tick)
	}
	sim.After(m.Window, tick)
}
