package netsim

// MSS is the payload bytes per full-sized packet.
const MSS = 1460

// HeaderBytes is the per-packet header overhead.
const HeaderBytes = 40

// AckBytes is the size of a bare acknowledgement.
const AckBytes = 64

// Packet is one simulated frame. Packets are passed by pointer and owned by
// whichever component currently holds them.
type Packet struct {
	// FlowID identifies the flow.
	FlowID int
	// Src and Dst are host IDs.
	Src, Dst int
	// Seq is the packet index within the flow (data packets).
	Seq int
	// Size is the on-wire size in bytes, headers included.
	Size int
	// Payload is the data bytes carried.
	Payload int
	// ECN is the congestion-experienced mark set by a queue.
	ECN bool
	// Ack marks acknowledgements.
	Ack bool
	// AckNo is the cumulative acknowledgement: next expected Seq.
	AckNo int
	// ECNEcho carries the receiver's echo of the ECN mark (DCTCP).
	ECNEcho bool
	// RCPRate is the allowed rate in bits/s carried by RCP packets; routers
	// lower it to their offered rate, receivers reflect it in ACKs. Zero
	// means unset.
	RCPRate float64
	// XCPCwnd is the sender's congestion window in bytes (XCP header); zero
	// means the packet carries no XCP state.
	XCPCwnd uint64
	// XCPRTTUs is the sender's smoothed RTT in microseconds (XCP header).
	XCPRTTUs uint64
	// XCPFeedback is the cwnd change in bytes the network allows; routers
	// only ever lower it, receivers reflect it in ACKs.
	XCPFeedback int64
	// Enqueued is the time the packet last entered a queue (queue-delay
	// accounting).
	Enqueued Time
	// Sent is the time the sender emitted the packet.
	Sent Time
}

// Flow describes one transfer.
type Flow struct {
	// ID is unique per simulation.
	ID int
	// Src and Dst are host IDs.
	Src, Dst int
	// Size is the payload bytes to transfer.
	Size int
	// Start is the flow arrival time.
	Start Time
	// Finish is the completion time (last byte acknowledged); zero until
	// done.
	Finish Time
	// Incast marks flows belonging to an incast episode.
	Incast bool
}

// Done reports completion.
func (f *Flow) Done() bool { return f.Finish != 0 }

// FCT returns the flow completion time; zero if unfinished.
func (f *Flow) FCT() Time {
	if !f.Done() {
		return 0
	}
	return f.Finish - f.Start
}

// NumPackets returns the packet count needed for Size payload bytes.
func (f *Flow) NumPackets() int {
	n := f.Size / MSS
	if f.Size%MSS != 0 || f.Size == 0 {
		n++
	}
	return n
}

// PacketPayload returns the payload bytes of packet seq.
func (f *Flow) PacketPayload(seq int) int {
	total := f.NumPackets()
	if seq < total-1 {
		return MSS
	}
	last := f.Size - (total-1)*MSS
	if last <= 0 {
		last = f.Size
		if last > MSS {
			last = MSS
		}
	}
	return last
}
