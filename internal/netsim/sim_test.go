package netsim

import (
	"math/rand"
	"testing"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	s.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	s.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	s.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if s.Now() != Second {
		t.Errorf("Now = %v, want advanced to until", s.Now())
	}
}

func TestSimulatorFIFOTieBreak(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(Microsecond, tick)
		}
	}
	s.After(0, tick)
	s.Run(Second)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	if s.Processed != 5 {
		t.Errorf("Processed = %d", s.Processed)
	}
}

func TestSchedulePastClamps(t *testing.T) {
	s := NewSimulator()
	s.Schedule(10*Microsecond, func() {
		fired := false
		s.Schedule(Microsecond, func() { fired = true }) // in the past
		s.Step()
		if !fired {
			t.Error("past event must fire immediately")
		}
		if s.Now() != 10*Microsecond {
			t.Errorf("clock went backwards: %v", s.Now())
		}
	})
	s.Run(Second)
}

func TestRunStopsAtUntil(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(2*Second, func() { fired = true })
	s.Run(Second)
	if fired {
		t.Error("event after until must not fire")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestTimeString(t *testing.T) {
	for _, tt := range []struct {
		t Time
	}{{Second}, {Millisecond}, {Microsecond}, {5 * Nanosecond}} {
		if tt.t.String() == "" {
			t.Errorf("empty String for %d", int64(tt.t))
		}
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds conversion wrong")
	}
	if Microsecond.Micros() != 1 {
		t.Error("Micros conversion wrong")
	}
}

func TestHeapStress(t *testing.T) {
	s := NewSimulator()
	rng := rand.New(rand.NewSource(1))
	var last Time
	n := 0
	for i := 0; i < 5000; i++ {
		at := Time(rng.Int63n(int64(Second)))
		s.Schedule(at, func() {
			if s.Now() < last {
				t.Fatal("time went backwards")
			}
			last = s.Now()
			n++
		})
	}
	s.Run(Second)
	if n != 5000 {
		t.Errorf("executed %d events, want 5000", n)
	}
}
