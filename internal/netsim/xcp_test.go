package netsim

import (
	"testing"
)

func TestXCPSingleFlowConverges(t *testing.T) {
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      1,
		AccessRateBps:     1e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	st := AttachXCP(net.Sim, topo.CorePorts[0], UniformXCPSites(IdealArith{}), 40*Microsecond)
	f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 4 << 20, Start: 0})
	if err := net.StartFlow(f, NewXCPTransport()); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(10 * Second)
	if !f.Done() {
		t.Fatal("XCP flow did not complete")
	}
	if st.Updates == 0 {
		t.Fatal("XCP controller never updated")
	}
	// Ideal serialised time ≈ 34 ms; XCP's explicit ramp should land within
	// a small factor.
	ideal := Time(float64(f.Size+f.NumPackets()*HeaderBytes) * 8 / 1e9 * float64(Second))
	if f.FCT() > 4*ideal {
		t.Errorf("XCP FCT %v not close to ideal %v", f.FCT(), ideal)
	}
}

func TestXCPSharesFairly(t *testing.T) {
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     10e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	AttachXCP(net.Sim, topo.CorePorts[0], UniformXCPSites(IdealArith{}), 40*Microsecond)
	f1 := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 2 << 20, Start: 0})
	f2 := net.AddFlow(&Flow{Src: 1, Dst: 3, Size: 2 << 20, Start: 0})
	for _, f := range []*Flow{f1, f2} {
		if err := net.StartFlow(f, NewXCPTransport()); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(10 * Second)
	if !f1.Done() || !f2.Done() {
		t.Fatalf("flows done: %v %v", f1.Done(), f2.Done())
	}
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if a/b > 3 || b/a > 3 {
		t.Errorf("unfair XCP completion: %v vs %v", f1.FCT(), f2.FCT())
	}
}

func TestXCPKeepsQueueSmall(t *testing.T) {
	// XCP's β·Q term drains the persistent queue; with exact arithmetic the
	// bottleneck queue must stay far below the buffer.
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     10e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	AttachXCP(net.Sim, topo.CorePorts[0], UniformXCPSites(IdealArith{}), 40*Microsecond)
	rec := &QueueRecorder{}
	rec.Attach(topo.CorePorts[0])
	f1 := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 8 << 20, Start: 0})
	f2 := net.AddFlow(&Flow{Src: 1, Dst: 3, Size: 8 << 20, Start: 0})
	for _, f := range []*Flow{f1, f2} {
		if err := net.StartFlow(f, NewXCPTransport()); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(5 * Second)
	if len(rec.Samples) == 0 {
		t.Fatal("no queue samples")
	}
	if frac := rec.FractionBelow(120 * 1024); frac < 0.9 {
		t.Errorf("only %.2f of samples below 120KB; XCP queue control failed", frac)
	}
}

func TestXCPFeedbackOnlyDecreasesAtRouters(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{}
	port := NewPort(sim, "p", 1e9, 0, dst)
	st := AttachXCP(sim, port, UniformXCPSites(IdealArith{}), 100*Microsecond)
	st.xiPos = 0
	st.xiNeg = 1 << 20 // force strongly negative feedback
	p := &Packet{Size: 1500, Payload: 1460, XCPCwnd: 100000, XCPRTTUs: 50, XCPFeedback: 1 << 40}
	port.Send(p)
	sim.Run(Millisecond)
	if p.XCPFeedback >= 1<<40 {
		t.Error("router did not lower the feedback field")
	}
	if p.XCPFeedback > 0 {
		t.Errorf("feedback = %d, want negative under forced ξn", p.XCPFeedback)
	}
}

func TestXCPLossyArithmeticHurts(t *testing.T) {
	// The Table I motivation: XCP's convergence degrades under arithmetic
	// error. A consistent underestimate of the ξ division starves feedback.
	run := func(a Arithmetic) Time {
		topo := BuildDumbbell(DumbbellConfig{
			HostsPerSide:      1,
			AccessRateBps:     1e9,
			BottleneckRateBps: 1e9,
			LinkDelay:         5 * Microsecond,
		})
		net := topo.Net
		AttachXCP(net.Sim, topo.CorePorts[0], UniformXCPSites(a), 40*Microsecond)
		f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 1 << 20, Start: 0})
		if err := net.StartFlow(f, NewXCPTransport()); err != nil {
			t.Fatal(err)
		}
		net.Sim.Run(10 * Second)
		if !f.Done() {
			return 10 * Second
		}
		return f.FCT()
	}
	ideal := run(IdealArith{})
	lossy := run(lossyArith{factor: 0.05})
	if lossy <= ideal {
		t.Errorf("lossy XCP FCT %v not above ideal %v", lossy, ideal)
	}
}
