package netsim

import (
	"testing"

	"github.com/ada-repro/ada/internal/dist"
)

func TestLeafSpineConnectivity(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines:       2,
		Leaves:       4,
		HostsPerLeaf: 4,
		LinkRateBps:  10e9,
		LinkDelay:    Microsecond,
	}
	topo := BuildLeafSpine(cfg)
	net := topo.Net
	if len(net.Hosts) != 16 {
		t.Fatalf("hosts = %d", len(net.Hosts))
	}
	if len(net.Switches) != 6 {
		t.Fatalf("switches = %d", len(net.Switches))
	}
	// Every host pair must be able to complete a small flow (intra- and
	// inter-rack).
	pairs := [][2]int{{0, 1}, {0, 5}, {3, 12}, {15, 0}, {7, 8}}
	var flows []*Flow
	for _, pr := range pairs {
		f := net.AddFlow(&Flow{Src: pr[0], Dst: pr[1], Size: 64 * 1024, Start: 0})
		flows = append(flows, f)
		if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(5 * Second)
	for i, f := range flows {
		if !f.Done() {
			t.Errorf("pair %v (flow %d) did not complete", pairs[i], i)
		}
	}
	for _, sw := range net.Switches {
		if sw.Dropped() != 0 {
			t.Errorf("switch %d dropped %d packets to routing", sw.ID, sw.Dropped())
		}
	}
}

func TestLeafSpineECMPSpreads(t *testing.T) {
	cfg := LeafSpineConfig{
		Spines:       4,
		Leaves:       2,
		HostsPerLeaf: 2,
		LinkRateBps:  10e9,
		LinkDelay:    Microsecond,
	}
	topo := BuildLeafSpine(cfg)
	net := topo.Net
	// Many inter-rack flows: their packets must spread across uplinks.
	var flows []*Flow
	for i := 0; i < 32; i++ {
		f := net.AddFlow(&Flow{Src: i % 2, Dst: 2 + i%2, Size: 16 * 1024, Start: 0})
		flows = append(flows, f)
		if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(5 * Second)
	used := 0
	for _, leafID := range []int{2000, 2001} {
		for _, up := range topo.UpPorts[leafID] {
			if up.Stats().DeliveredPkts > 0 {
				used++
			}
		}
	}
	if used < 4 {
		t.Errorf("only %d uplink ports used; ECMP not spreading", used)
	}
}

func TestDumbbellRouting(t *testing.T) {
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     1e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         Microsecond,
	})
	net := topo.Net
	// Same-side flow must not cross the bottleneck.
	f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 16 * 1024, Start: 0})
	if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(Second)
	if !f.Done() {
		t.Fatal("same-side flow incomplete")
	}
	if topo.CorePorts[0].Stats().DeliveredPkts != 0 {
		t.Error("same-side traffic crossed the bottleneck")
	}
}

func TestNetworkHostErrors(t *testing.T) {
	net := NewNetwork()
	if _, err := net.Host(0); err == nil {
		t.Error("empty network Host(0): want error")
	}
	f := &Flow{Src: 0, Dst: 99, Size: 100}
	net.AddFlow(f)
	if err := net.StartFlow(f, NewWindowTransport(Reno)); err == nil {
		t.Error("StartFlow with bad hosts: want error")
	}
}

func TestSetECNThreshold(t *testing.T) {
	topo := BuildLeafSpine(LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		LinkRateBps: 1e9, LinkDelay: Microsecond,
	})
	topo.SetECNThreshold(12345)
	for _, p := range topo.AllSwitchPorts() {
		if p.ECNThreshold != 12345 {
			t.Fatalf("port %s threshold %d", p.Name(), p.ECNThreshold)
		}
	}
}

func TestWorkloadGeneration(t *testing.T) {
	net := NewNetwork()
	for i := 0; i < 8; i++ {
		net.Hosts = append(net.Hosts, NewHost(net.Sim, i))
	}
	cfg := DefaultWorkload(0.5, 100*Millisecond, 7)
	cfg.IncastEvery = 20 * Millisecond
	cfg.IncastFanIn = 4
	flows := GenerateFlows(net, 8, 10e9, cfg)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	shorts, longs, incasts := 0, 0, 0
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self-flow generated")
		}
		if f.Src < 0 || f.Src >= 8 || f.Dst < 0 || f.Dst >= 8 {
			t.Fatalf("host out of range: %+v", f)
		}
		if f.Start < 0 || f.Start >= cfg.Duration {
			t.Fatalf("arrival outside window: %v", f.Start)
		}
		switch {
		case f.Incast:
			incasts++
		case f.Size <= cfg.ShortMax:
			shorts++
		default:
			longs++
		}
	}
	if incasts != 4*4 { // 4 episodes × fan-in 4
		t.Errorf("incast flows = %d, want 16", incasts)
	}
	frac := float64(shorts) / float64(shorts+longs)
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("short fraction = %.2f, want ≈0.8", frac)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	gen := func() []*Flow {
		net := NewNetwork()
		for i := 0; i < 4; i++ {
			net.Hosts = append(net.Hosts, NewHost(net.Sim, i))
		}
		return GenerateFlows(net, 4, 1e9, DefaultWorkload(0.3, 50*Millisecond, 99))
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].Size != b[i].Size || a[i].Start != b[i].Start {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestWorkloadEdgeCases(t *testing.T) {
	net := NewNetwork()
	if flows := GenerateFlows(net, 1, 1e9, DefaultWorkload(0.5, Second, 1)); flows != nil {
		t.Error("single-host workload must be empty")
	}
	if flows := GenerateFlows(net, 8, 1e9, DefaultWorkload(0, Second, 1)); flows != nil {
		t.Error("zero-load workload must be empty")
	}
}

func TestCollectFCT(t *testing.T) {
	flows := []*Flow{
		{Size: 1000, Start: 0, Finish: 10 * Microsecond},
		{Size: 1000, Start: 0, Finish: 20 * Microsecond},
		{Size: 1000, Start: 0, Finish: 30 * Microsecond},
		{Size: 1000, Start: 0}, // unfinished
		{Size: 1 << 20, Start: 0, Finish: 100 * Microsecond},
	}
	s := CollectFCT(flows, ShortFlows(64*1024))
	if s.N != 3 || s.Unfinished != 1 {
		t.Fatalf("N=%d Unfinished=%d", s.N, s.Unfinished)
	}
	if s.Mean != 20*Microsecond || s.Median != 20*Microsecond || s.Max != 30*Microsecond {
		t.Errorf("stats = %+v", s)
	}
	l := CollectFCT(flows, LongFlows(64*1024))
	if l.N != 1 || l.Mean != 100*Microsecond {
		t.Errorf("long stats = %+v", l)
	}
	empty := CollectFCT(nil, nil)
	if empty.N != 0 {
		t.Error("empty stats")
	}
}

func TestQueueRecorderCDF(t *testing.T) {
	r := &QueueRecorder{Samples: []int{100, 200, 200, 300}}
	depths, frac := r.CDF()
	if len(depths) != 3 {
		t.Fatalf("depths = %v", depths)
	}
	if frac[len(frac)-1] != 1 {
		t.Errorf("CDF tail = %g", frac[len(frac)-1])
	}
	if got := r.FractionBelow(200); got != 0.75 {
		t.Errorf("FractionBelow(200) = %g, want 0.75", got)
	}
	var emptyRec QueueRecorder
	if d, f := emptyRec.CDF(); d != nil || f != nil {
		t.Error("empty CDF must be nil")
	}
}

func TestInterArrivalRecorder(t *testing.T) {
	sim := NewSimulator()
	p := NewPort(sim, "p", 100e9, 0, &sink{})
	r := &InterArrivalRecorder{}
	r.Attach(p)
	for i := 0; i < 10; i++ {
		p.Send(&Packet{Size: 1500})
	}
	sim.Run(Second)
	if len(r.Gaps) != 9 {
		t.Fatalf("gaps = %d", len(r.Gaps))
	}
	if q := r.Quantile(0.5); q != 120*Nanosecond {
		t.Errorf("median gap = %v, want 120ns", q)
	}
	var emptyRec InterArrivalRecorder
	if emptyRec.Quantile(0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestThroughputMeter(t *testing.T) {
	sim := NewSimulator()
	p := NewPort(sim, "p", 1e9, 0, &sink{})
	m := &ThroughputMeter{Window: Millisecond}
	m.Attach(sim, p)
	// Saturate for ~5 ms.
	var feed func()
	feed = func() {
		if sim.Now() < 5*Millisecond {
			p.Send(&Packet{Size: 1500, Payload: 1460})
			sim.After(12*Microsecond, feed) // 1 Gbps worth
		}
	}
	sim.After(0, feed)
	sim.Run(6 * Millisecond)
	if len(m.BpsSeries) < 4 {
		t.Fatalf("series = %v", m.BpsSeries)
	}
	mid := m.BpsSeries[2]
	if mid < 0.5e9 || mid > 1.2e9 {
		t.Errorf("mid-series goodput = %g bps, want ≈1G", mid)
	}
}

func TestWorkloadEmpiricalSizeDist(t *testing.T) {
	net := NewNetwork()
	for i := 0; i < 8; i++ {
		net.Hosts = append(net.Hosts, NewHost(net.Sim, i))
	}
	cfg := DefaultWorkload(0.5, 50*Millisecond, 9)
	cfg.SizeDist = dist.WebSearchFlowSizes()
	flows := GenerateFlows(net, 8, 10e9, cfg)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	seenLarge := false
	for _, f := range flows {
		if f.Size < 1 {
			t.Fatalf("flow size %d", f.Size)
		}
		if !f.Incast && f.Size > 1024*1024 {
			seenLarge = true
		}
	}
	if !seenLarge {
		t.Error("no heavy-tail flows generated from the empirical distribution")
	}
}
