package netsim

import (
	"runtime"
	"sync"
)

// Replay runs fn over the index range [0, n) split into one contiguous
// shard per worker. It is the packet-replay harness for feeding observed
// operand streams into the ADA monitoring path from several goroutines at
// once — the event-driven simulator itself stays single-threaded; only the
// replay of already-generated samples parallelises.
//
// workers <= 0 selects GOMAXPROCS. Shards are contiguous and cover [0, n)
// exactly once, so any per-index work is done exactly once regardless of
// the worker count; fn must be safe to call concurrently.
func Replay(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ReplayOperands shards an operand stream across workers and hands each
// shard to observe as one batch (e.g. core.UnarySystem.ObserveAll), so each
// worker resolves its whole shard against one compiled TCAM snapshot.
// Register increments are commutative, so the resulting monitor state is
// identical to a sequential replay regardless of the worker count.
func ReplayOperands(workers int, vs []uint64, observe func([]uint64)) {
	Replay(workers, len(vs), func(lo, hi int) {
		observe(vs[lo:hi])
	})
}

// ReplayBatched shards an operand stream across workers like ReplayOperands,
// then feeds each worker's shard to fn in sub-batches of at most batchSize
// samples — the shape the zero-allocation data-plane path wants: the caller
// keeps one set of scratch buffers per worker (indexed by the worker
// argument, always in [0, workers)) and reuses them across that worker's
// batches. batchSize <= 0 hands each shard over as a single batch. Every
// sample is delivered exactly once; fn must be safe to call concurrently
// for distinct workers.
func ReplayBatched(workers, batchSize int, vs []uint64, fn func(worker int, batch []uint64)) {
	n := len(vs)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	run := func(w int, vs []uint64) {
		if batchSize <= 0 {
			fn(w, vs)
			return
		}
		for lo := 0; lo < len(vs); lo += batchSize {
			hi := lo + batchSize
			if hi > len(vs) {
				hi = len(vs)
			}
			fn(w, vs[lo:hi])
		}
	}
	if workers == 1 {
		run(0, vs)
		return
	}
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w int, shard []uint64) {
			defer wg.Done()
			run(w, shard)
		}(w, vs[lo:hi])
	}
	wg.Wait()
}
