package netsim

import (
	"runtime"
	"sync"
)

// Replay runs fn over the index range [0, n) split into one contiguous
// shard per worker. It is the packet-replay harness for feeding observed
// operand streams into the ADA monitoring path from several goroutines at
// once — the event-driven simulator itself stays single-threaded; only the
// replay of already-generated samples parallelises.
//
// workers <= 0 selects GOMAXPROCS. Shards are contiguous and cover [0, n)
// exactly once, so any per-index work is done exactly once regardless of
// the worker count; fn must be safe to call concurrently.
func Replay(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ReplayOperands shards an operand stream across workers and hands each
// shard to observe as one batch (e.g. core.UnarySystem.ObserveAll), so each
// worker resolves its whole shard against one compiled TCAM snapshot.
// Register increments are commutative, so the resulting monitor state is
// identical to a sequential replay regardless of the worker count.
func ReplayOperands(workers int, vs []uint64, observe func([]uint64)) {
	Replay(workers, len(vs), func(lo, hi int) {
		observe(vs[lo:hi])
	})
}

// ReplayBatched shards an operand stream across workers like ReplayOperands,
// then feeds each worker's shard to fn in sub-batches of at most batchSize
// samples — the shape the zero-allocation data-plane path wants: the caller
// keeps one set of scratch buffers per worker (indexed by the worker
// argument, always in [0, workers)) and reuses them across that worker's
// batches. batchSize <= 0 hands each shard over as a single batch. Every
// sample is delivered exactly once; fn must be safe to call concurrently
// for distinct workers.
func ReplayBatched(workers, batchSize int, vs []uint64, fn func(worker int, batch []uint64)) {
	n := len(vs)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	run := func(w int, vs []uint64) {
		if batchSize <= 0 {
			fn(w, vs)
			return
		}
		for lo := 0; lo < len(vs); lo += batchSize {
			hi := lo + batchSize
			if hi > len(vs) {
				hi = len(vs)
			}
			fn(w, vs[lo:hi])
		}
	}
	if workers == 1 {
		run(0, vs)
		return
	}
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w int, shard []uint64) {
			defer wg.Done()
			run(w, shard)
		}(w, vs[lo:hi])
	}
	wg.Wait()
}

// ShardedReplay fans one sample stream across shards (e.g. the switches of
// a fabric) from several workers at once. Each worker owns a contiguous
// slice of the stream, routes every sample to a shard, and accumulates
// per-shard batches in buffers owned by that (worker, shard) pair — flushed
// to fn whenever one reaches batchSize and at end of stream. The buffers
// live on the ShardedReplay and are reused across Replay calls, so the
// steady-state fan-out path allocates nothing; fn receives batches for
// distinct workers concurrently and must tolerate that (distinct shards may
// also arrive concurrently — from distinct workers).
type ShardedReplay struct {
	shards    int
	batchSize int
	bufs      [][][]uint64 // [worker][shard] reused batch buffers
}

// NewShardedReplay sizes the fan-out: shards is the routing-target count,
// batchSize the flush threshold (<= 0 selects 1024).
func NewShardedReplay(shards, batchSize int) *ShardedReplay {
	if shards < 1 {
		shards = 1
	}
	if batchSize <= 0 {
		batchSize = 1024
	}
	return &ShardedReplay{shards: shards, batchSize: batchSize}
}

// Replay routes vs across shards from `workers` goroutines. route maps a
// sample to its shard (must be pure and in [0, shards)); fn consumes one
// worker's batch for one shard. Every sample is delivered exactly once, in
// stream order within a (worker, shard) pair.
func (r *ShardedReplay) Replay(workers int, vs []uint64, route func(uint64) int, fn func(worker, shard int, batch []uint64)) {
	n := len(vs)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	for len(r.bufs) < workers {
		r.bufs = append(r.bufs, make([][]uint64, r.shards))
	}
	if workers == 1 {
		r.runShard(0, vs, route, fn)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w int, shard []uint64) {
			defer wg.Done()
			r.runShard(w, shard, route, fn)
		}(w, vs[lo:hi])
	}
	wg.Wait()
}

func (r *ShardedReplay) runShard(w int, shard []uint64, route func(uint64) int, fn func(worker, shard int, batch []uint64)) {
	bufs := r.bufs[w]
	for _, v := range shard {
		s := route(v)
		bufs[s] = append(bufs[s], v)
		if len(bufs[s]) >= r.batchSize {
			fn(w, s, bufs[s])
			bufs[s] = bufs[s][:0]
		}
	}
	for s, b := range bufs {
		if len(b) > 0 {
			fn(w, s, b)
			bufs[s] = b[:0]
		}
	}
}
