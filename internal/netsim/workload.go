package netsim

import (
	"math/rand"

	"github.com/ada-repro/ada/internal/dist"
)

// WorkloadConfig describes the §V-C traffic mix: heavy-tailed flow sizes
// (80% short, 20% long), Poisson arrivals at a target load, plus periodic
// incast episodes with a configurable fan-in.
type WorkloadConfig struct {
	// Load is the offered load as a fraction of aggregate host bandwidth.
	Load float64
	// ShortMin and ShortMax bound short-flow sizes in bytes (paper:
	// 16–64 KB).
	ShortMin, ShortMax int
	// LongSize is the long-flow size in bytes (paper: 1024 KB).
	LongSize int
	// ShortFrac is the short-flow fraction of flows (paper: 0.8).
	ShortFrac float64
	// IncastFanIn is the number of simultaneous senders per incast episode
	// (paper: 32); zero disables incast.
	IncastFanIn int
	// IncastEvery is the episode period.
	IncastEvery Time
	// IncastSize is the per-sender incast transfer in bytes.
	IncastSize int
	// SizeDist, when set, replaces the short/long two-point mix with an
	// empirical flow-size distribution (e.g. dist.WebSearchFlowSizes);
	// ShortMax still classifies flows for FCT reporting.
	SizeDist dist.Distribution
	// Duration is the arrival window; flows arrive in [0, Duration).
	Duration Time
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultWorkload returns the paper's §V-C mix at the given load.
func DefaultWorkload(load float64, duration Time, seed int64) WorkloadConfig {
	return WorkloadConfig{
		Load:        load,
		ShortMin:    16 * 1024,
		ShortMax:    64 * 1024,
		LongSize:    1024 * 1024,
		ShortFrac:   0.8,
		IncastFanIn: 32,
		IncastEvery: 0, // enabled explicitly by experiments that need it
		IncastSize:  16 * 1024,
		Duration:    duration,
		Seed:        seed,
	}
}

// meanFlowSize returns the expected flow size in bytes.
func (cfg WorkloadConfig) meanFlowSize() float64 {
	if e, ok := cfg.SizeDist.(*dist.Empirical); ok {
		return e.Mean()
	}
	meanShort := float64(cfg.ShortMin+cfg.ShortMax) / 2
	return cfg.ShortFrac*meanShort + (1-cfg.ShortFrac)*float64(cfg.LongSize)
}

// GenerateFlows produces the flow list for a topology with the given host
// count and per-host access rate. Flows are registered with the network but
// not started; callers start them with the transport of the scenario under
// test.
func GenerateFlows(net *Network, hosts int, hostRateBps float64, cfg WorkloadConfig) []*Flow {
	if hosts < 2 || cfg.Duration <= 0 || cfg.Load <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Arrival rate: Load × aggregate bandwidth / mean flow size.
	aggBps := cfg.Load * hostRateBps * float64(hosts)
	lambda := aggBps / (8 * cfg.meanFlowSize()) // flows per second
	meanGap := float64(Second) / lambda

	var out []*Flow
	for t := Time(rng.ExpFloat64() * meanGap); t < cfg.Duration; t += Time(rng.ExpFloat64() * meanGap) {
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		size := cfg.LongSize
		if cfg.SizeDist != nil {
			size = int(cfg.SizeDist.Sample(rng))
			if size < 1 {
				size = 1
			}
		} else if rng.Float64() < cfg.ShortFrac {
			size = cfg.ShortMin + rng.Intn(cfg.ShortMax-cfg.ShortMin+1)
		}
		f := &Flow{Src: src, Dst: dst, Size: size, Start: t}
		net.AddFlow(f)
		out = append(out, f)
	}

	// Incast episodes: FanIn senders converge on one victim simultaneously.
	if cfg.IncastFanIn > 1 && cfg.IncastEvery > 0 {
		for t := cfg.IncastEvery; t < cfg.Duration; t += cfg.IncastEvery {
			victim := rng.Intn(hosts)
			for s := 0; s < cfg.IncastFanIn; s++ {
				src := rng.Intn(hosts - 1)
				if src >= victim {
					src++
				}
				f := &Flow{Src: src, Dst: victim, Size: cfg.IncastSize, Start: t, Incast: true}
				net.AddFlow(f)
				out = append(out, f)
			}
		}
	}
	return out
}

// StartAll launches every flow with the given transport factory.
func StartAll(net *Network, flows []*Flow, factory TransportFactory) error {
	for _, f := range flows {
		if err := net.StartFlow(f, factory); err != nil {
			return err
		}
	}
	return nil
}
