package netsim

import (
	"testing"

	"github.com/ada-repro/ada/internal/leakcheck"
)

// TestMain backstops the package: the replay fan-out workers must all have
// exited by the time the test binary finishes.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
