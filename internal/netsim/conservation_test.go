package netsim

import (
	"math/rand"
	"testing"
)

// TestPortConservation checks the DESIGN.md invariant on a single port:
// every offered packet is either filtered, dropped at the buffer, still
// queued, in flight, or delivered.
func TestPortConservation(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{}
	p := NewPort(sim, "p", 1e9, Microsecond, dst)
	p.BufferBytes = 8 * 1500
	f := &everyOther{}
	p.Filter = f
	const offered = 500
	for i := 0; i < offered; i++ {
		p.Send(&Packet{Size: 1500, Seq: i})
	}
	sim.Run(Second)
	st := p.Stats()
	accounted := st.DroppedFilter + st.DroppedBuffer + uint64(len(dst.pkts))
	if accounted != offered {
		t.Fatalf("conservation violated: filter %d + buffer %d + delivered %d != %d",
			st.DroppedFilter, st.DroppedBuffer, len(dst.pkts), offered)
	}
	if st.DeliveredPkts != uint64(len(dst.pkts)) {
		t.Errorf("delivered stat %d vs sink %d", st.DeliveredPkts, len(dst.pkts))
	}
	if p.QueuedBytes() != 0 {
		t.Errorf("queue not drained: %d bytes", p.QueuedBytes())
	}
}

type everyOther struct{ n int }

func (e *everyOther) Allow(p *Packet, now Time) bool {
	e.n++
	return e.n%2 == 0
}

// TestNetworkByteConservation runs a full leaf-spine workload and checks
// that every completed flow delivered exactly its payload to the receiver,
// and that per-port accounting balances across the fabric.
func TestNetworkByteConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 4,
		LinkRateBps: 10e9, LinkDelay: Microsecond,
	}
	topo := BuildLeafSpine(cfg)
	topo.SetECNThreshold(30 * 1024)
	net := topo.Net

	// Count payload bytes arriving at each destination.
	recvBytes := make(map[int]int)
	for _, ports := range topo.DownPorts {
		for _, p := range ports {
			p := p
			prev := p.OnDeliver
			p.OnDeliver = func(pkt *Packet, now Time) {
				if !pkt.Ack {
					recvBytes[pkt.Dst] += pkt.Payload
				}
				if prev != nil {
					prev(pkt, now)
				}
			}
		}
	}
	wl := DefaultWorkload(0.5, 10*Millisecond, 77)
	flows := GenerateFlows(net, cfg.Hosts(), cfg.LinkRateBps, wl)
	if err := StartAll(net, flows, NewWindowTransport(DCTCP)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(200 * Millisecond)

	wantBytes := make(map[int]int)
	for _, f := range net.Flows() {
		if !f.Done() {
			t.Logf("flow %d (%d B) unfinished; skipping strict check", f.ID, f.Size)
			continue
		}
		wantBytes[f.Dst] += f.Size
	}
	for dst, want := range wantBytes {
		// Retransmissions may deliver duplicates, so received >= payload; a
		// receiver can never get less than the acknowledged flow payload.
		if recvBytes[dst] < want {
			t.Errorf("dst %d received %d bytes < completed payload %d", dst, recvBytes[dst], want)
		}
		if recvBytes[dst] > 2*want {
			t.Errorf("dst %d received %d bytes, over 2× payload %d (retransmit storm)",
				dst, recvBytes[dst], want)
		}
	}
	// Per-port balance: enqueued = delivered + still queued (in packets,
	// queue should be drained by now).
	rng := rand.New(rand.NewSource(1))
	ports := topo.AllSwitchPorts()
	for i := 0; i < 10; i++ {
		p := ports[rng.Intn(len(ports))]
		st := p.Stats()
		if st.Enqueued != st.DeliveredPkts || p.QueuedBytes() != 0 {
			t.Errorf("port %s: enqueued %d, delivered %d, queued %dB",
				p.Name(), st.Enqueued, st.DeliveredPkts, p.QueuedBytes())
		}
	}
}
