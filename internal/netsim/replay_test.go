package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestReplayCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 4, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			Replay(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad shard [%d, %d)", workers, n, lo, hi)
					return
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestReplayOperandsShardsEverySample(t *testing.T) {
	vs := make([]uint64, 1237)
	for i := range vs {
		vs[i] = uint64(i)
	}
	var total, batches atomic.Uint64
	ReplayOperands(4, vs, func(shard []uint64) {
		batches.Add(1)
		var sum uint64
		for _, v := range shard {
			sum += v
		}
		total.Add(sum)
	})
	want := uint64(len(vs)) * uint64(len(vs)-1) / 2
	if total.Load() != want {
		t.Errorf("shard sum = %d, want %d", total.Load(), want)
	}
	if b := batches.Load(); b != 4 {
		t.Errorf("batches = %d, want 4", b)
	}
	// Empty stream: observe must not be called.
	ReplayOperands(4, nil, func([]uint64) { t.Error("observe called for empty stream") })
}
