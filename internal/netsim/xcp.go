package netsim

import "math"

// XCP (Katabi et al., SIGCOMM 2002) is the paper's Table I entry with the
// heaviest arithmetic appetite: four floating-point operations per control
// decision, iterative feedback, and convergence that suffers directly from
// arithmetic error. Routers compute an aggregate feedback
//
//	φ = α·d·S − β·Q
//
// per control interval (S spare bandwidth, Q persistent queue, d mean RTT)
// and distribute it across packets: positive feedback proportional to
// rtt²·size/cwnd (so slow, small-window flows catch up faster) and negative
// feedback proportional to rtt·size. Every variable×variable multiply and
// divide goes through an Arithmetic site, exactly as the TCAM realisation
// would.
//
// Fixed-point convention: ξ factors are scaled by 2^16.

// XCPSites holds one Arithmetic per call-site class of the XCP computation,
// mirroring a P4 program's one-table-per-statement layout. The ×2^16
// fixed-point scalings are shifts the ALU performs natively.
type XCPSites struct {
	// SmallMul serves rtt×rtt and rtt×size (microsecond × packet-size
	// operands).
	SmallMul Arithmetic
	// BigMul serves rtt²×size and ξ×basis (wide fixed-point operands).
	BigMul Arithmetic
	// PktDiv serves the per-packet basis division by cwnd.
	PktDiv Arithmetic
	// CtlDiv serves the per-interval ξ divisions.
	CtlDiv Arithmetic
}

// UniformXCPSites uses one Arithmetic everywhere.
func UniformXCPSites(a Arithmetic) XCPSites {
	return XCPSites{SmallMul: a, BigMul: a, PktDiv: a, CtlDiv: a}
}

const xcpXiScale = 1 << 16

// XCPState is the per-output-port XCP efficiency/fairness controller.
type XCPState struct {
	sim   *Simulator
	port  *Port
	sites XCPSites

	// CBytesPerInterval is the link capacity in bytes per control interval.
	CBytesPerInterval uint64
	// DUs is the mean RTT estimate in microseconds (the control interval).
	DUs uint64

	bytesIn uint64
	// ξ factors for the current interval, scaled by 2^16.
	xiPos, xiNeg uint64
	// Per-interval accumulators over the previous interval's packets.
	sumPosBasis uint64 // Σ rtt²·size/cwnd (µs²·B/B = µs²)
	sumNegBasis uint64 // Σ rtt·size (µs·B)
	// Updates counts control intervals.
	Updates uint64
}

// AttachXCP installs XCP processing on a port and starts its interval timer.
// d is the mean RTT estimate.
func AttachXCP(sim *Simulator, port *Port, sites XCPSites, d Time) *XCPState {
	st := &XCPState{
		sim:   sim,
		port:  port,
		sites: sites,
		DUs:   uint64(d / Microsecond),
	}
	if st.DUs == 0 {
		st.DUs = 1
	}
	st.CBytesPerInterval = uint64(port.RateBps / 8 * float64(st.DUs) / 1e6)
	port.XCP = st
	st.scheduleUpdate()
	return st
}

func (st *XCPState) scheduleUpdate() {
	st.sim.After(Time(st.DUs)*Microsecond, func() {
		st.update()
		st.scheduleUpdate()
	})
}

// OnPacket computes this packet's feedback allowance and lowers the carried
// feedback field, XCP's router-side per-packet path.
func (st *XCPState) OnPacket(p *Packet) {
	st.bytesIn += uint64(p.Size)
	if p.Ack || p.XCPCwnd == 0 {
		return
	}
	rtt := p.XCPRTTUs
	if rtt == 0 {
		rtt = st.DUs
	}
	size := uint64(p.Size)

	// Accumulate the next interval's distribution bases.
	rttSq := st.sites.SmallMul.Multiply(rtt, rtt)
	posBasis := st.sites.PktDiv.Divide(st.sites.BigMul.Multiply(rttSq, size), maxU64(p.XCPCwnd, 1))
	negBasis := st.sites.SmallMul.Multiply(rtt, size)
	st.sumPosBasis += posBasis
	st.sumNegBasis += negBasis

	// Per-packet feedback from the current ξ factors (bytes, signed).
	pos := int64(st.sites.BigMul.Multiply(st.xiPos, posBasis) >> 16)
	neg := int64(st.sites.BigMul.Multiply(st.xiNeg, negBasis) >> 16)
	feedback := pos - neg
	if feedback < p.XCPFeedback {
		p.XCPFeedback = feedback
	}
}

// update recomputes the aggregate feedback and ξ factors once per interval.
func (st *XCPState) update() {
	st.Updates++
	in := st.bytesIn
	st.bytesIn = 0

	// φ = α·(C − y) − β·Q, in bytes per interval. The constant factors
	// decompose into native shift-adds (×0.4 ≈ 410>>10, ×0.226 ≈ 231>>10).
	var phiPos, phiNeg uint64
	if st.CBytesPerInterval >= in {
		phiPos = constMul(st.CBytesPerInterval-in, rcpAlphaQ10) >> 10
	} else {
		phiNeg = constMul(in-st.CBytesPerInterval, rcpAlphaQ10) >> 10
	}
	q := uint64(st.port.QueuedBytes())
	phiNeg += constMul(q, rcpBetaQ10) >> 10

	// ξ factors for the next interval: scale the aggregate feedback by the
	// measured distribution bases.
	if st.sumPosBasis > 0 {
		st.xiPos = st.sites.CtlDiv.Divide(phiPos*xcpXiScale, st.sumPosBasis)
	} else {
		st.xiPos = 0
	}
	if st.sumNegBasis > 0 {
		st.xiNeg = st.sites.CtlDiv.Divide(phiNeg*xcpXiScale, st.sumNegBasis)
	} else {
		st.xiNeg = 0
	}
	st.sumPosBasis, st.sumNegBasis = 0, 0
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// xcpTransport is the XCP sender: a window transport whose window moves only
// by the network's explicit feedback.
type xcpTransport struct {
	sim  *Simulator
	host *Host
	flow *Flow

	total     int
	sndUna    int
	sndNext   int
	cwndBytes float64
	srttUs    uint64
	rtoSeq    int64
}

// NewXCPTransport returns a factory for XCP senders.
func NewXCPTransport() TransportFactory {
	return func(sim *Simulator, src *Host, f *Flow) Transport {
		return &xcpTransport{
			sim:       sim,
			host:      src,
			flow:      f,
			total:     f.NumPackets(),
			cwndBytes: 4 * (MSS + HeaderBytes),
			srttUs:    50,
		}
	}
}

// Start implements Transport.
func (t *xcpTransport) Start() {
	t.trySend()
	t.armRTO()
}

func (t *xcpTransport) inflightBytes() float64 {
	return float64((t.sndNext - t.sndUna) * (MSS + HeaderBytes))
}

func (t *xcpTransport) trySend() {
	for t.sndNext < t.total && t.inflightBytes() < t.cwndBytes {
		payload := t.flow.PacketPayload(t.sndNext)
		t.host.NIC.Send(&Packet{
			FlowID:      t.flow.ID,
			Src:         t.flow.Src,
			Dst:         t.flow.Dst,
			Seq:         t.sndNext,
			Size:        payload + HeaderBytes,
			Payload:     payload,
			XCPCwnd:     uint64(t.cwndBytes),
			XCPRTTUs:    t.srttUs,
			XCPFeedback: math.MaxInt64,
			Sent:        t.sim.Now(),
		})
		t.sndNext++
	}
}

// OnAck implements Transport: apply the network's explicit feedback.
func (t *xcpTransport) OnAck(p *Packet) {
	if t.flow.Done() {
		return
	}
	if rtt := t.sim.Now() - p.Sent; rtt > 0 {
		r := uint64(rtt / Microsecond)
		if r == 0 {
			r = 1
		}
		t.srttUs = (7*t.srttUs + r) / 8
	}
	if p.XCPFeedback != math.MaxInt64 {
		t.cwndBytes += float64(p.XCPFeedback)
		if min := float64(MSS + HeaderBytes); t.cwndBytes < min {
			t.cwndBytes = min
		}
	}
	if p.AckNo > t.sndUna {
		t.sndUna = p.AckNo
		if t.sndUna >= t.total {
			t.flow.Finish = t.sim.Now()
			if t.host.OnFlowDone != nil {
				t.host.OnFlowDone(t.flow)
			}
			return
		}
	}
	t.trySend()
	t.armRTO()
}

func (t *xcpTransport) armRTO() {
	if t.flow.Done() {
		return
	}
	t.rtoSeq++
	seq := t.rtoSeq
	una := t.sndUna
	t.sim.After(2*Millisecond, func() {
		if seq != t.rtoSeq || t.flow.Done() {
			return
		}
		if t.sndUna == una {
			t.sndNext = t.sndUna
			t.trySend()
		}
		t.armRTO()
	})
}
