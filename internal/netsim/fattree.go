package netsim

import "fmt"

// FatTreeConfig sizes a classic k-ary three-tier fat-tree: k pods, each
// with k/2 edge and k/2 aggregation switches, (k/2)² core switches, and
// k³/4 hosts. The paper's Fig 1a motivation study uses k = 8 (128 hosts).
type FatTreeConfig struct {
	// K is the fat-tree arity; it must be even and at least 2.
	K int
	// LinkRateBps applies to every link.
	LinkRateBps float64
	// LinkDelay is the per-hop propagation delay.
	LinkDelay Time
}

// Hosts returns the host count, k³/4.
func (c FatTreeConfig) Hosts() int { return c.K * c.K * c.K / 4 }

// BuildFatTree constructs the k-ary fat-tree with ECMP hashing on the
// upward paths and deterministic downward routing.
//
// Port bookkeeping in the returned Topology: DownPorts holds the host-facing
// edge ports and the downward agg→edge / core→agg ports; UpPorts holds
// edge→agg and agg→core ports. AllSwitchPorts therefore covers the full
// fabric.
func BuildFatTree(cfg FatTreeConfig) (*Topology, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("netsim: fat-tree arity must be even and >= 2, got %d", k)
	}
	half := k / 2
	hostsPerEdge := half
	hostsPerPod := half * hostsPerEdge

	net := NewNetwork()
	topo := &Topology{
		Net:       net,
		DownPorts: make(map[int][]*Port),
		UpPorts:   make(map[int][]*Port),
		SpineDown: make(map[int][]*Port),
	}
	sim := net.Sim

	// Switch IDs: edges 3000+, aggs 4000+, cores 5000+.
	edges := make([][]*Switch, k) // [pod][i]
	aggs := make([][]*Switch, k)  // [pod][j]
	cores := make([]*Switch, half*half)
	for p := 0; p < k; p++ {
		edges[p] = make([]*Switch, half)
		aggs[p] = make([]*Switch, half)
		for i := 0; i < half; i++ {
			edges[p][i] = NewSwitch(sim, 3000+p*half+i)
			aggs[p][i] = NewSwitch(sim, 4000+p*half+i)
			net.Switches = append(net.Switches, edges[p][i], aggs[p][i])
		}
	}
	for c := range cores {
		cores[c] = NewSwitch(sim, 5000+c)
		net.Switches = append(net.Switches, cores[c])
	}

	podOf := func(host int) int { return host / hostsPerPod }
	edgeOf := func(host int) int { return (host % hostsPerPod) / hostsPerEdge }

	// Hosts ↔ edges.
	for h := 0; h < cfg.Hosts(); h++ {
		host := NewHost(sim, h)
		e := edges[podOf(h)][edgeOf(h)]
		nic := NewPort(sim, portName("h", h, "up"), cfg.LinkRateBps, cfg.LinkDelay, e)
		host.NIC = nic
		down := NewPort(sim, portName("e", e.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, host)
		e.AddPort(down)
		topo.DownPorts[e.ID] = append(topo.DownPorts[e.ID], down)
		topo.HostPorts = append(topo.HostPorts, nic)
		net.Hosts = append(net.Hosts, host)
	}

	// Edges ↔ aggs (full bipartite within a pod).
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				e, a := edges[p][i], aggs[p][j]
				up := NewPort(sim, portName("e", e.ID, "up"), cfg.LinkRateBps, cfg.LinkDelay, a)
				e.AddPort(up)
				topo.UpPorts[e.ID] = append(topo.UpPorts[e.ID], up)
				down := NewPort(sim, portName("a", a.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, e)
				a.AddPort(down)
				topo.SpineDown[a.ID] = append(topo.SpineDown[a.ID], down)
			}
		}
	}

	// Aggs ↔ cores: agg j of every pod connects to cores j*half .. j*half+half-1.
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			a := aggs[p][j]
			for m := 0; m < half; m++ {
				c := cores[j*half+m]
				up := NewPort(sim, portName("a", a.ID, "up"), cfg.LinkRateBps, cfg.LinkDelay, c)
				a.AddPort(up)
				topo.UpPorts[a.ID] = append(topo.UpPorts[a.ID], up)
				down := NewPort(sim, portName("c", c.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, a)
				c.AddPort(down)
				// Core down ports indexed by pod.
				topo.SpineDown[c.ID] = append(topo.SpineDown[c.ID], down)
			}
		}
	}

	// Routing.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			p, i := p, i
			e := edges[p][i]
			e.Route = func(pkt *Packet) *Port {
				if podOf(pkt.Dst) == p && edgeOf(pkt.Dst) == i {
					return topo.DownPorts[e.ID][pkt.Dst%hostsPerEdge]
				}
				ups := topo.UpPorts[e.ID]
				return ups[flowHash(pkt)%len(ups)]
			}
			a := aggs[p][i]
			a.Route = func(pkt *Packet) *Port {
				if podOf(pkt.Dst) == p {
					return topo.SpineDown[a.ID][edgeOf(pkt.Dst)]
				}
				ups := topo.UpPorts[a.ID]
				return ups[flowHash(pkt)%len(ups)]
			}
		}
	}
	for _, c := range cores {
		c := c
		c.Route = func(pkt *Packet) *Port {
			return topo.SpineDown[c.ID][podOf(pkt.Dst)]
		}
	}
	return topo, nil
}
