// Package netsim is a packet-level discrete-event network simulator, the
// stand-in for the paper's ns-3 evaluation environment (§IV, §V-C). It
// models hosts, output-queued switches with finite buffers and ECN marking,
// links with bandwidth and propagation delay, window-based transports (Reno,
// CUBIC-style, DCTCP) and rate-based RCP, heavy-tailed workload generation
// with incast, and the per-port hooks (rate limiters, queue samplers) the
// ADA applications attach to.
//
// The simulator is deterministic under a fixed seed and single-threaded; all
// state is owned by the event loop.
package netsim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in picoseconds. Picosecond resolution keeps
// 100 Gbps serialisation times exact (a 1500 B frame is 120 ns).
type Time int64

// Time unit constants.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders a human-friendly duration.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// event is one scheduled callback.
type event struct {
	at  Time
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is the event loop.
type Simulator struct {
	now    Time
	events eventHeap
	seq    int64
	// Processed counts executed events (diagnostics).
	Processed uint64
}

// NewSimulator creates an empty simulator at time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Schedule runs fn at the absolute time at; times in the past run "now".
func (s *Simulator) Schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d after the current time.
func (s *Simulator) After(d Time, fn func()) {
	s.Schedule(s.now+d, fn)
}

// Step executes the next event; it reports whether one existed.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.Processed++
	e.fn()
	return true
}

// Run executes events until the queue empties or the clock passes until.
func (s *Simulator) Run(until Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
