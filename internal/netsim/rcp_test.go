package netsim

import (
	"math"
	"testing"
)

func TestIdealArith(t *testing.T) {
	a := IdealArith{}
	if a.Multiply(6, 7) != 42 {
		t.Error("multiply")
	}
	if a.Multiply(math.MaxUint64, 2) != math.MaxUint64 {
		t.Error("multiply saturation")
	}
	if a.Divide(42, 6) != 7 {
		t.Error("divide")
	}
	if a.Divide(1, 0) != math.MaxUint64 {
		t.Error("divide by zero")
	}
	if a.Name() != "ideal" {
		t.Error("name")
	}
}

func TestRCPSingleFlowRampsToLineRate(t *testing.T) {
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      1,
		AccessRateBps:     1e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	st := AttachRCP(net.Sim, topo.CorePorts[0], IdealArith{}, 40*Microsecond)
	f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 4 * 1024 * 1024, Start: 0})
	if err := net.StartFlow(f, NewRCPTransport(1e9)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(10 * Second)
	if !f.Done() {
		t.Fatal("RCP flow did not complete")
	}
	if st.Updates == 0 {
		t.Fatal("RCP never updated")
	}
	// Ideal time: 4 MB + headers at 1 Gbps ≈ 34 ms; RCP at line rate should
	// be close.
	ideal := Time(float64(f.Size+f.NumPackets()*HeaderBytes) * 8 / 1e9 * float64(Second))
	if f.FCT() > 4*ideal {
		t.Errorf("RCP FCT %v not close to ideal %v", f.FCT(), ideal)
	}
}

func TestRCPSharesBottleneck(t *testing.T) {
	// Two RCP flows share a bottleneck; the router hands both the same rate
	// and both complete.
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     10e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	AttachRCP(net.Sim, topo.CorePorts[0], IdealArith{}, 40*Microsecond)
	f1 := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 1024 * 1024, Start: 0})
	f2 := net.AddFlow(&Flow{Src: 1, Dst: 3, Size: 1024 * 1024, Start: 0})
	for _, f := range []*Flow{f1, f2} {
		if err := net.StartFlow(f, NewRCPTransport(1e9)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(10 * Second)
	if !f1.Done() || !f2.Done() {
		t.Fatalf("RCP flows done: %v %v", f1.Done(), f2.Done())
	}
	// Fairness: completion times within 3× of each other (same size, same
	// start, same offered rate).
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if a/b > 3 || b/a > 3 {
		t.Errorf("unfair RCP completion: %v vs %v", f1.FCT(), f2.FCT())
	}
}

// lossyArith injects a fixed multiplicative error into every operation,
// modelling a badly populated TCAM.
type lossyArith struct{ factor float64 }

func (l lossyArith) Multiply(x, y uint64) uint64 {
	return uint64(float64(x) * float64(y) * l.factor)
}
func (l lossyArith) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	return uint64(float64(x) / float64(y) * l.factor)
}
func (l lossyArith) Name() string { return "lossy" }

func TestRCPArithmeticErrorDistortsFixedPoint(t *testing.T) {
	// The paper's core claim for RCP: arithmetic error distorts the rate
	// computation. With two flows sharing the bottleneck, the ideal router
	// converges near C/2 per flow; a router whose division/multiplication
	// underestimates the measured input rate believes the link is idle and
	// keeps the offered rate pinned near line rate, overloading the queue.
	run := func(a Arithmetic) (rate uint64, drops uint64) {
		topo := BuildDumbbell(DumbbellConfig{
			HostsPerSide:      2,
			AccessRateBps:     10e9,
			BottleneckRateBps: 1e9,
			LinkDelay:         5 * Microsecond,
		})
		net := topo.Net
		st := AttachRCP(net.Sim, topo.CorePorts[0], a, 40*Microsecond)
		// Long-running flows so the controller reaches its fixed point.
		f1 := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 16 * 1024 * 1024, Start: 0})
		f2 := net.AddFlow(&Flow{Src: 1, Dst: 3, Size: 16 * 1024 * 1024, Start: 0})
		for _, f := range []*Flow{f1, f2} {
			if err := net.StartFlow(f, NewRCPTransport(1e9)); err != nil {
				t.Fatal(err)
			}
		}
		net.Sim.Run(100 * Millisecond) // mid-transfer: observe the fixed point
		return st.RMbps, topo.CorePorts[0].Stats().DroppedBuffer
	}
	idealRate, _ := run(IdealArith{})
	lossyRate, lossyDrops := run(lossyArith{factor: 0.2})
	if idealRate > 750 {
		t.Errorf("ideal RCP rate %d Mbps did not converge below line rate with two flows", idealRate)
	}
	if lossyRate <= idealRate && lossyDrops == 0 {
		t.Errorf("lossy arithmetic neither inflated the rate (%d vs %d Mbps) nor caused drops",
			lossyRate, idealRate)
	}
}

func TestRCPZeroDelayGuards(t *testing.T) {
	topo := BuildStar(StarConfig{Hosts: 2, LinkRateBps: 1e9})
	st := AttachRCP(topo.Net.Sim, topo.DownPorts[1][0], IdealArith{}, 0)
	if st.DUs == 0 || st.TUs == 0 {
		t.Error("zero RTT must clamp to 1µs")
	}
}
