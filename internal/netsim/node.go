package netsim

import "fmt"

// Host is an end system: one NIC toward its top-of-rack switch, sender
// transports for outgoing flows, and receiver state for incoming flows.
type Host struct {
	sim *Simulator
	// ID is the global host identifier.
	ID int
	// NIC is the host's uplink port.
	NIC *Port

	senders map[int]Transport
	recvs   map[int]*rxState
	// OnFlowDone fires when a received flow completes... completion is
	// detected at the sender (last byte acknowledged), so this hook lives
	// on the sending host.
	OnFlowDone func(f *Flow)
}

// NewHost creates a host; attach the NIC afterwards.
func NewHost(sim *Simulator, id int) *Host {
	return &Host{
		sim:     sim,
		ID:      id,
		senders: make(map[int]Transport),
		recvs:   make(map[int]*rxState),
	}
}

// rxState is per-incoming-flow receiver bookkeeping.
type rxState struct {
	flow     *Flow
	recvNext int
	ooo      map[int]bool
	bytes    int
}

// AttachSender registers a transport for an outgoing flow.
func (h *Host) AttachSender(flowID int, t Transport) {
	h.senders[flowID] = t
}

// Receive implements Receiver: ACKs go to the owning transport, data
// generates cumulative ACKs with DCTCP-style per-packet ECN echo.
func (h *Host) Receive(p *Packet) {
	if p.Ack {
		if t, ok := h.senders[p.FlowID]; ok {
			t.OnAck(p)
		}
		return
	}
	rx, ok := h.recvs[p.FlowID]
	if !ok {
		rx = &rxState{recvNext: 0, ooo: make(map[int]bool)}
		h.recvs[p.FlowID] = rx
	}
	if p.Seq == rx.recvNext {
		rx.recvNext++
		rx.bytes += p.Payload
		for rx.ooo[rx.recvNext] {
			delete(rx.ooo, rx.recvNext)
			rx.recvNext++
		}
	} else if p.Seq > rx.recvNext {
		rx.ooo[p.Seq] = true
	}
	ack := &Packet{
		FlowID:      p.FlowID,
		Src:         h.ID,
		Dst:         p.Src,
		Size:        AckBytes,
		Ack:         true,
		AckNo:       rx.recvNext,
		ECNEcho:     p.ECN,
		RCPRate:     p.RCPRate,
		XCPFeedback: p.XCPFeedback,
		Sent:        h.sim.Now(),
	}
	h.NIC.Send(ack)
}

// Switch is an output-queued PISA-style switch: a routing function picks the
// egress port for each packet.
type Switch struct {
	sim *Simulator
	// ID is the switch identifier.
	ID int
	// Route selects the egress port; nil routes are dropped.
	Route func(p *Packet) *Port

	ports   []*Port
	dropped uint64
}

// NewSwitch creates a switch; add ports and set Route afterwards.
func NewSwitch(sim *Simulator, id int) *Switch {
	return &Switch{sim: sim, ID: id}
}

// AddPort registers an egress port and returns it.
func (s *Switch) AddPort(p *Port) *Port {
	s.ports = append(s.ports, p)
	return p
}

// Ports returns the registered egress ports.
func (s *Switch) Ports() []*Port {
	out := make([]*Port, len(s.ports))
	copy(out, s.ports)
	return out
}

// Dropped returns packets lost to routing failures.
func (s *Switch) Dropped() uint64 { return s.dropped }

// Receive implements Receiver: route and forward.
func (s *Switch) Receive(p *Packet) {
	if s.Route == nil {
		s.dropped++
		return
	}
	port := s.Route(p)
	if port == nil {
		s.dropped++
		return
	}
	port.Send(p)
}

// Network owns a topology and its flows.
type Network struct {
	// Sim is the shared event loop.
	Sim *Simulator
	// Hosts indexed by host ID.
	Hosts []*Host
	// Switches in construction order.
	Switches []*Switch

	flows  []*Flow
	nextID int
}

// NewNetwork creates an empty network on a fresh simulator.
func NewNetwork() *Network {
	return &Network{Sim: NewSimulator()}
}

// AddFlow registers a flow and assigns its ID.
func (n *Network) AddFlow(f *Flow) *Flow {
	n.nextID++
	f.ID = n.nextID
	n.flows = append(n.flows, f)
	return f
}

// Flows returns all registered flows.
func (n *Network) Flows() []*Flow {
	out := make([]*Flow, len(n.flows))
	copy(out, n.flows)
	return out
}

// Host returns the host with the given ID.
func (n *Network) Host(id int) (*Host, error) {
	if id < 0 || id >= len(n.Hosts) {
		return nil, fmt.Errorf("netsim: host %d out of range (%d hosts)", id, len(n.Hosts))
	}
	return n.Hosts[id], nil
}

// StartFlow launches a flow at its start time using the given transport
// factory.
func (n *Network) StartFlow(f *Flow, newTransport TransportFactory) error {
	src, err := n.Host(f.Src)
	if err != nil {
		return err
	}
	if _, err := n.Host(f.Dst); err != nil {
		return err
	}
	t := newTransport(n.Sim, src, f)
	src.AttachSender(f.ID, t)
	n.Sim.Schedule(f.Start, t.Start)
	return nil
}
