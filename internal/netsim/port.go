package netsim

import "math"

// Receiver consumes packets delivered by a port.
type Receiver interface {
	Receive(p *Packet)
}

// EnqueueFilter lets an application veto packets at enqueue time; the Nimble
// rate limiter plugs in here.
type EnqueueFilter interface {
	// Allow returns false to drop the packet.
	Allow(p *Packet, now Time) bool
}

// PortStats counts per-port activity.
type PortStats struct {
	Enqueued       uint64
	DeliveredPkts  uint64
	DeliveredBytes uint64
	DroppedBuffer  uint64
	DroppedFilter  uint64
	ECNMarked      uint64
}

// Port is an output-queued link attachment: a finite FIFO byte queue, a
// serialising transmitter at the link rate, and a propagation delay to the
// peer. The per-port buffer defaults to the paper's 400 KB.
type Port struct {
	sim  *Simulator
	name string

	// RateBps is the link bandwidth in bits per second.
	RateBps float64
	// PropDelay is the one-way propagation delay.
	PropDelay Time
	// BufferBytes bounds the queue (drop-tail).
	BufferBytes int
	// ECNThreshold marks CE when the queue exceeds this many bytes
	// (0 disables marking).
	ECNThreshold int
	// Filter, when set, screens every enqueue.
	Filter EnqueueFilter
	// OnQueueSample, when set, observes the queue depth (bytes) after each
	// enqueue; used for the Fig 1a queue-size CDF.
	OnQueueSample func(bytes int, now Time)
	// OnDeliver, when set, observes each delivered packet at the receiver
	// side of the link; used for the Fig 1b inter-arrival study.
	OnDeliver func(p *Packet, now Time)
	// RCP, when set, stamps traversing packets with the offered rate and
	// measures input traffic for the RCP control loop.
	RCP *RCPState
	// XCP, when set, computes per-packet explicit feedback for the XCP
	// control loop.
	XCP *XCPState

	peer        Receiver
	queue       []*Packet
	queuedBytes int
	busy        bool
	stats       PortStats
}

// DefaultBufferBytes is the paper's per-port buffer capacity (§IV).
const DefaultBufferBytes = 400 * 1024

// NewPort creates a port. rateBps must be positive.
func NewPort(sim *Simulator, name string, rateBps float64, prop Time, peer Receiver) *Port {
	return &Port{
		sim:         sim,
		name:        name,
		RateBps:     rateBps,
		PropDelay:   prop,
		BufferBytes: DefaultBufferBytes,
		peer:        peer,
	}
}

// Name returns the port label.
func (p *Port) Name() string { return p.name }

// Stats returns a snapshot of the counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueuedBytes returns the instantaneous queue depth.
func (p *Port) QueuedBytes() int { return p.queuedBytes }

// SetPeer rewires the delivery target (topology construction).
func (p *Port) SetPeer(r Receiver) { p.peer = r }

// TxTime returns the serialisation delay of size bytes, rounded to the
// nearest picosecond.
func (p *Port) TxTime(size int) Time {
	return Time(math.Round(float64(size*8) / p.RateBps * float64(Second)))
}

// Send enqueues a packet for transmission, applying the filter, buffer
// bound, and ECN marking.
func (p *Port) Send(pkt *Packet) {
	if p.RCP != nil {
		p.RCP.OnPacket(pkt)
	}
	if p.XCP != nil {
		p.XCP.OnPacket(pkt)
	}
	if p.Filter != nil && !p.Filter.Allow(pkt, p.sim.Now()) {
		p.stats.DroppedFilter++
		return
	}
	if p.queuedBytes+pkt.Size > p.BufferBytes {
		p.stats.DroppedBuffer++
		return
	}
	p.queuedBytes += pkt.Size
	if p.ECNThreshold > 0 && p.queuedBytes > p.ECNThreshold {
		pkt.ECN = true
		p.stats.ECNMarked++
	}
	pkt.Enqueued = p.sim.Now()
	p.queue = append(p.queue, pkt)
	p.stats.Enqueued++
	if p.OnQueueSample != nil {
		p.OnQueueSample(p.queuedBytes, p.sim.Now())
	}
	p.pump()
}

// pump starts the transmitter if idle.
func (p *Port) pump() {
	if p.busy || len(p.queue) == 0 {
		return
	}
	p.busy = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	p.queuedBytes -= pkt.Size
	tx := p.TxTime(pkt.Size)
	p.sim.After(tx, func() {
		p.busy = false
		p.stats.DeliveredPkts++
		p.stats.DeliveredBytes += uint64(pkt.Size)
		arrival := p.PropDelay
		p.sim.After(arrival, func() {
			if p.OnDeliver != nil {
				p.OnDeliver(pkt, p.sim.Now())
			}
			if p.peer != nil {
				p.peer.Receive(pkt)
			}
		})
		p.pump()
	})
}
