package netsim

import "math"

// Arithmetic supplies the multiplication and division the RCP router logic
// and the Nimble rate limiter need but PISA switches cannot execute
// natively. Implementations: exact (the paper's "ideal"), a static TCAM
// population, or an ADA-adaptive TCAM population.
type Arithmetic interface {
	// Multiply approximates x * y.
	Multiply(x, y uint64) uint64
	// Divide approximates x / y.
	Divide(x, y uint64) uint64
	// Name labels the implementation in experiment output.
	Name() string
}

// IdealArith computes exactly — the paper's unlimited-TCAM baseline.
type IdealArith struct{}

// Multiply implements Arithmetic.
func (IdealArith) Multiply(x, y uint64) uint64 {
	if y != 0 && x > math.MaxUint64/y {
		return math.MaxUint64
	}
	return x * y
}

// Divide implements Arithmetic.
func (IdealArith) Divide(x, y uint64) uint64 {
	if y == 0 {
		return math.MaxUint64
	}
	return x / y
}

// Name implements Arithmetic.
func (IdealArith) Name() string { return "ideal" }

// RCP control constants (Dukkipati's thesis values), pre-scaled to the
// 1024-denominator fixed point the shift-add decomposition uses.
const (
	rcpAlphaQ10 = 410 // 0.4 · 1024
	rcpBetaQ10  = 231 // 0.226 · 1024
)

// RCPSites holds one Arithmetic per call site of the RCP update. A P4
// implementation instantiates one TCAM table per arithmetic statement, each
// with its own population tuned to that site's operand distribution, so the
// model does the same. Sites may share an implementation (the ideal
// baseline does).
type RCPSites struct {
	// YDiv computes the input rate y = bits / T.
	YDiv Arithmetic
	// QDiv computes the queue drain term q / d.
	QDiv Arithmetic
	// RAdjMul computes R · adj.
	RAdjMul Arithmetic
	// FracDiv computes (R · adj) / C.
	FracDiv Arithmetic
}

// UniformRCPSites uses the same Arithmetic at every site.
func UniformRCPSites(a Arithmetic) RCPSites {
	return RCPSites{YDiv: a, QDiv: a, RAdjMul: a, FracDiv: a}
}

// RCPState is the per-output-port RCP rate computation. Every control
// interval T it recomputes the offered rate
//
//	R ← R · (1 + (T/d)·(α(C − y) − β·q/d)/C)
//
// where y is the measured input rate and q the queue depth. Every
// multiplication and division between variables goes through the site's
// Arithmetic implementation (in Mbps/µs fixed point), so TCAM lookup error
// perturbs the rate exactly as it would on the switch. Constant factors
// (α, β, T/d) decompose into native shift-adds.
type RCPState struct {
	sim   *Simulator
	port  *Port
	sites RCPSites

	// CMbps is the link capacity in Mbps.
	CMbps uint64
	// DUs is the average RTT estimate in microseconds.
	DUs uint64
	// TUs is the control interval in microseconds.
	TUs uint64
	// RMbps is the current offered rate in Mbps.
	RMbps uint64

	bytesIn uint64
	// Updates counts control-interval recomputations.
	Updates uint64
}

// AttachRCP installs RCP processing on a port with one Arithmetic shared by
// all call sites, and starts its update timer. d is the RTT estimate; the
// control interval is set to d (the classic choice).
func AttachRCP(sim *Simulator, port *Port, arith Arithmetic, d Time) *RCPState {
	return AttachRCPSites(sim, port, UniformRCPSites(arith), d)
}

// AttachRCPSites is AttachRCP with per-call-site arithmetic.
func AttachRCPSites(sim *Simulator, port *Port, sites RCPSites, d Time) *RCPState {
	st := &RCPState{
		sim:   sim,
		port:  port,
		sites: sites,
		CMbps: uint64(port.RateBps / 1e6),
		DUs:   uint64(d / Microsecond),
		TUs:   uint64(d / Microsecond),
		RMbps: uint64(port.RateBps / 1e6), // start optimistic at line rate
	}
	if st.DUs == 0 {
		st.DUs = 1
	}
	if st.TUs == 0 {
		st.TUs = 1
	}
	port.RCP = st
	st.scheduleUpdate()
	return st
}

func (st *RCPState) scheduleUpdate() {
	st.sim.After(Time(st.TUs)*Microsecond, func() {
		st.update()
		st.scheduleUpdate()
	})
}

// OnPacket stamps a traversing packet with the offered rate and accounts its
// bytes toward the input-rate measurement.
func (st *RCPState) OnPacket(p *Packet) {
	st.bytesIn += uint64(p.Size)
	if p.RCPRate == 0 || p.Ack {
		return
	}
	offered := float64(st.RMbps) * 1e6
	if offered < p.RCPRate {
		p.RCPRate = offered
	}
}

// update recomputes R through the per-site arithmetic units.
func (st *RCPState) update() {
	st.Updates++
	// y: input rate in Mbps = bits / T(µs).  (1 bit/µs = 1 Mbps)
	bits := st.bytesIn * 8
	st.bytesIn = 0
	y := st.sites.YDiv.Divide(bits, st.TUs) // (1)

	// Spare capacity, sign tracked natively (the ALU subtracts fine).
	var spare uint64
	sparePos := true
	if st.CMbps >= y {
		spare = st.CMbps - y
	} else {
		spare = y - st.CMbps
		sparePos = false
	}
	// Constant multiplications (×0.4 ≈ ×410>>10, ×0.226 ≈ ×231>>10)
	// decompose into shift-adds the PISA ALU executes natively, so they do
	// NOT go through the TCAM; only variable×variable operations do.
	alphaTerm := constMul(spare, rcpAlphaQ10) >> 10 // (2) ≈ 0.4·spare

	// Queue drain term: q in bits over d µs → Mbps.
	qBits := uint64(st.port.QueuedBytes()) * 8
	qTerm := st.sites.QDiv.Divide(qBits, st.DUs)  // (3)
	betaTerm := constMul(qTerm, rcpBetaQ10) >> 10 // (4) ≈ 0.226·q/d

	// adj = ±α·spare − β·q/d, sign handled natively.
	var adj uint64
	adjPos := true
	if sparePos {
		if alphaTerm >= betaTerm {
			adj = alphaTerm - betaTerm
		} else {
			adj = betaTerm - alphaTerm
			adjPos = false
		}
	} else {
		adj = alphaTerm + betaTerm
		adjPos = false
	}

	// delta = R · adj / C · (T/d). T and d are configuration constants, so
	// T/d folds into a constant shift-add as well; R·adj and /C are the
	// variable operations that hit the TCAM.
	num := st.sites.RAdjMul.Multiply(st.RMbps, adj)    // (5)
	frac := st.sites.FracDiv.Divide(num, st.CMbps)     // (6)
	delta := constMul(frac, (st.TUs<<10)/st.DUs) >> 10 // (7) ×(T/d)

	if adjPos {
		if st.RMbps > math.MaxUint64-delta {
			st.RMbps = st.CMbps
		} else {
			st.RMbps += delta
		}
	} else if st.RMbps > delta {
		st.RMbps -= delta
	} else {
		st.RMbps = 0
	}
	// Bound to [C/1000, C].
	if st.RMbps > st.CMbps {
		st.RMbps = st.CMbps
	}
	if minR := st.CMbps / 1000; st.RMbps < minR && minR > 0 {
		st.RMbps = minR
	}
}

// constMul multiplies by a compile-time constant; on the switch this
// decomposes into a bounded sequence of shift-adds, which the PISA ALU
// supports natively, so it is exact.
func constMul(x, c uint64) uint64 {
	if c != 0 && x > math.MaxUint64/c {
		return math.MaxUint64
	}
	return x * c
}

// rcpTransport paces packets at the rate the network grants.
type rcpTransport struct {
	sim  *Simulator
	host *Host
	flow *Flow

	total    int
	sndUna   int
	sndNext  int
	rate     float64 // bps
	maxInfly int
	rtoSeq   int64
	started  bool
}

// NewRCPTransport returns a factory for RCP senders. initialRate is the
// first-RTT sending rate in bps (classic RCP starts at line rate).
func NewRCPTransport(initialRate float64) TransportFactory {
	return func(sim *Simulator, src *Host, f *Flow) Transport {
		return &rcpTransport{
			sim:      sim,
			host:     src,
			flow:     f,
			total:    f.NumPackets(),
			rate:     initialRate,
			maxInfly: 512,
		}
	}
}

// Start implements Transport.
func (t *rcpTransport) Start() {
	if t.started {
		return
	}
	t.started = true
	t.sendLoop()
	t.armRTO()
}

func (t *rcpTransport) sendLoop() {
	if t.flow.Done() {
		return
	}
	if t.sndNext >= t.total || t.sndNext-t.sndUna >= t.maxInfly {
		// Paused: resumes from OnAck.
		return
	}
	t.emit(t.sndNext)
	t.sndNext++
	if t.rate <= 0 {
		t.rate = 1e6
	}
	payloadBits := float64((MSS + HeaderBytes) * 8)
	gap := Time(payloadBits / t.rate * float64(Second))
	t.sim.After(gap, t.sendLoop)
}

func (t *rcpTransport) emit(seq int) {
	payload := t.flow.PacketPayload(seq)
	t.host.NIC.Send(&Packet{
		FlowID:  t.flow.ID,
		Src:     t.flow.Src,
		Dst:     t.flow.Dst,
		Seq:     seq,
		Size:    payload + HeaderBytes,
		Payload: payload,
		RCPRate: math.MaxFloat64, // routers lower it to their offer
		Sent:    t.sim.Now(),
	})
}

// OnAck implements Transport.
func (t *rcpTransport) OnAck(p *Packet) {
	if t.flow.Done() {
		return
	}
	if p.RCPRate > 0 && p.RCPRate < math.MaxFloat64 {
		t.rate = p.RCPRate
	}
	if p.AckNo > t.sndUna {
		wasBlocked := t.sndNext-t.sndUna >= t.maxInfly
		t.sndUna = p.AckNo
		if t.sndUna >= t.total {
			t.flow.Finish = t.sim.Now()
			if t.host.OnFlowDone != nil {
				t.host.OnFlowDone(t.flow)
			}
			return
		}
		if wasBlocked {
			t.sendLoop()
		}
	}
	t.armRTO()
}

func (t *rcpTransport) armRTO() {
	if t.flow.Done() {
		return
	}
	t.rtoSeq++
	seq := t.rtoSeq
	una := t.sndUna
	t.sim.After(2*Millisecond, func() {
		if seq != t.rtoSeq || t.flow.Done() {
			return
		}
		if t.sndUna == una {
			t.sndNext = t.sndUna // rewind and resend at current rate
			t.sendLoop()
		}
		t.armRTO()
	})
}
