package netsim

import (
	"testing"
)

func TestFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5} {
		if _, err := BuildFatTree(FatTreeConfig{K: k, LinkRateBps: 1e9}); err == nil {
			t.Errorf("k=%d: want error", k)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	cfg := FatTreeConfig{K: 4, LinkRateBps: 10e9, LinkDelay: Microsecond}
	topo, err := BuildFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Net.Hosts) != 16 {
		t.Errorf("hosts = %d, want 16 (k³/4)", len(topo.Net.Hosts))
	}
	// 8 edges + 8 aggs + 4 cores.
	if len(topo.Net.Switches) != 20 {
		t.Errorf("switches = %d, want 20", len(topo.Net.Switches))
	}
	// Every switch port accounted for: 16 host-down + 16 edge-up + 16
	// agg-down + 16 agg-up + 16 core-down = 80.
	if got := len(topo.AllSwitchPorts()); got != 80 {
		t.Errorf("switch ports = %d, want 80", got)
	}
}

func TestFatTreeAllPairsConnectivity(t *testing.T) {
	cfg := FatTreeConfig{K: 4, LinkRateBps: 10e9, LinkDelay: Microsecond}
	topo, err := BuildFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := topo.Net
	// Same edge, same pod different edge, and cross-pod pairs.
	pairs := [][2]int{{0, 1}, {0, 3}, {0, 5}, {0, 15}, {7, 8}, {15, 0}, {4, 11}}
	var flows []*Flow
	for _, pr := range pairs {
		f := net.AddFlow(&Flow{Src: pr[0], Dst: pr[1], Size: 32 * 1024, Start: 0})
		flows = append(flows, f)
		if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(5 * Second)
	for i, f := range flows {
		if !f.Done() {
			t.Errorf("pair %v did not complete", pairs[i])
		}
	}
	for _, sw := range net.Switches {
		if sw.Dropped() != 0 {
			t.Errorf("switch %d dropped %d to routing", sw.ID, sw.Dropped())
		}
	}
}

func TestFatTreeCrossPodUsesCore(t *testing.T) {
	topo, err := BuildFatTree(FatTreeConfig{K: 4, LinkRateBps: 10e9, LinkDelay: Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	net := topo.Net
	// Host 0 (pod 0) to host 15 (pod 3) must traverse some core switch.
	f := net.AddFlow(&Flow{Src: 0, Dst: 15, Size: 64 * 1024, Start: 0})
	if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(Second)
	if !f.Done() {
		t.Fatal("cross-pod flow incomplete")
	}
	coreDelivered := uint64(0)
	for id, ports := range topo.SpineDown {
		if id >= 5000 {
			for _, p := range ports {
				coreDelivered += p.Stats().DeliveredPkts
			}
		}
	}
	if coreDelivered == 0 {
		t.Error("cross-pod traffic never traversed a core switch")
	}
}

func TestFatTreeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := FatTreeConfig{K: 4, LinkRateBps: 10e9, LinkDelay: Microsecond}
	topo, err := BuildFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo.SetECNThreshold(30 * 1024)
	net := topo.Net
	wl := DefaultWorkload(0.4, 10*Millisecond, 5)
	flows := GenerateFlows(net, cfg.Hosts(), cfg.LinkRateBps, wl)
	if err := StartAll(net, flows, NewWindowTransport(DCTCP)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(100 * Millisecond)
	st := CollectFCT(net.Flows(), ShortFlows(wl.ShortMax))
	if st.N == 0 {
		t.Fatal("no short flows completed")
	}
	frac := float64(st.N) / float64(st.N+st.Unfinished)
	if frac < 0.95 {
		t.Errorf("only %.0f%% of short flows finished", frac*100)
	}
}
