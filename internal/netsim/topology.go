package netsim

// Topology wires hosts and switches and retains the port matrices so
// experiments can attach ECN thresholds, RCP state, rate limiters, and
// samplers to specific links.
type Topology struct {
	// Net is the underlying network.
	Net *Network
	// HostPorts[h] is host h's NIC (host → ToR).
	HostPorts []*Port
	// DownPorts[sw][i] are switch sw's ports toward hosts (ToR → host).
	DownPorts map[int][]*Port
	// UpPorts[sw][i] are leaf sw's ports toward spines.
	UpPorts map[int][]*Port
	// SpineDown[spine][leaf] are spine ports toward leaves.
	SpineDown map[int][]*Port
	// CorePorts are special inter-switch ports (dumbbell bottleneck).
	CorePorts []*Port
}

// AllSwitchPorts returns every switch-owned port (for fabric-wide settings
// such as the DCTCP ECN threshold).
func (t *Topology) AllSwitchPorts() []*Port {
	var out []*Port
	for _, ps := range t.DownPorts {
		out = append(out, ps...)
	}
	for _, ps := range t.UpPorts {
		out = append(out, ps...)
	}
	for _, ps := range t.SpineDown {
		out = append(out, ps...)
	}
	out = append(out, t.CorePorts...)
	return out
}

// SetECNThreshold applies an ECN marking threshold to every switch port.
func (t *Topology) SetECNThreshold(bytes int) {
	for _, p := range t.AllSwitchPorts() {
		p.ECNThreshold = bytes
	}
}

// flowHash spreads flows across ECMP uplinks deterministically.
func flowHash(p *Packet) int {
	h := uint32(p.FlowID)*2654435761 + uint32(p.Src)*40503 + uint32(p.Dst)*2057
	return int(h >> 4)
}

// LeafSpineConfig sizes a two-tier Clos fabric.
type LeafSpineConfig struct {
	// Spines and Leaves count the switches.
	Spines, Leaves int
	// HostsPerLeaf is the rack size.
	HostsPerLeaf int
	// LinkRateBps applies to every link (the paper uses 100 Gbps).
	LinkRateBps float64
	// LinkDelay is the per-hop propagation delay (the paper uses 1 µs).
	LinkDelay Time
}

// Hosts returns the total host count.
func (c LeafSpineConfig) Hosts() int { return c.Leaves * c.HostsPerLeaf }

// BuildLeafSpine constructs the §V-C topology: every host attaches to its
// leaf, every leaf attaches to every spine, ECMP by flow hash.
func BuildLeafSpine(cfg LeafSpineConfig) *Topology {
	net := NewNetwork()
	topo := &Topology{
		Net:       net,
		DownPorts: make(map[int][]*Port),
		UpPorts:   make(map[int][]*Port),
		SpineDown: make(map[int][]*Port),
	}
	sim := net.Sim

	leaves := make([]*Switch, cfg.Leaves)
	spines := make([]*Switch, cfg.Spines)
	for i := range spines {
		spines[i] = NewSwitch(sim, 1000+i)
		net.Switches = append(net.Switches, spines[i])
	}
	for l := range leaves {
		leaves[l] = NewSwitch(sim, 2000+l)
		net.Switches = append(net.Switches, leaves[l])
	}

	leafOf := func(host int) int { return host / cfg.HostsPerLeaf }

	// Hosts and access links.
	for h := 0; h < cfg.Hosts(); h++ {
		host := NewHost(sim, h)
		leaf := leaves[leafOf(h)]
		nic := NewPort(sim, portName("h", h, "up"), cfg.LinkRateBps, cfg.LinkDelay, leaf)
		host.NIC = nic
		down := NewPort(sim, portName("l", leaf.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, host)
		leaf.AddPort(down)
		topo.DownPorts[leaf.ID] = append(topo.DownPorts[leaf.ID], down)
		topo.HostPorts = append(topo.HostPorts, nic)
		net.Hosts = append(net.Hosts, host)
	}

	// Leaf ↔ spine links.
	for _, leaf := range leaves {
		for s, spine := range spines {
			up := NewPort(sim, portName("l", leaf.ID, "up"), cfg.LinkRateBps, cfg.LinkDelay, spine)
			leaf.AddPort(up)
			topo.UpPorts[leaf.ID] = append(topo.UpPorts[leaf.ID], up)

			down := NewPort(sim, portName("s", spine.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, leaf)
			spine.AddPort(down)
			topo.SpineDown[spine.ID] = append(topo.SpineDown[spine.ID], down)
			_ = s
		}
	}

	// Routing.
	for l, leaf := range leaves {
		l, leaf := l, leaf
		leaf.Route = func(p *Packet) *Port {
			if leafOf(p.Dst) == l {
				return topo.DownPorts[leaf.ID][p.Dst%cfg.HostsPerLeaf]
			}
			ups := topo.UpPorts[leaf.ID]
			return ups[flowHash(p)%len(ups)]
		}
	}
	for _, spine := range spines {
		spine := spine
		spine.Route = func(p *Packet) *Port {
			return topo.SpineDown[spine.ID][leafOf(p.Dst)]
		}
	}
	return topo
}

// DumbbellConfig sizes the two-switch bottleneck topology of §II-B's
// inter-arrival study.
type DumbbellConfig struct {
	// HostsPerSide hosts hang off each switch.
	HostsPerSide int
	// AccessRateBps is the host link rate.
	AccessRateBps float64
	// BottleneckRateBps is the switch-to-switch rate.
	BottleneckRateBps float64
	// LinkDelay is the per-hop propagation delay.
	LinkDelay Time
}

// BuildDumbbell constructs left hosts — switch L — switch R — right hosts.
// Host IDs 0..n-1 are left, n..2n-1 are right. The bottleneck ports are
// CorePorts[0] (L→R) and CorePorts[1] (R→L).
func BuildDumbbell(cfg DumbbellConfig) *Topology {
	net := NewNetwork()
	topo := &Topology{
		Net:       net,
		DownPorts: make(map[int][]*Port),
		UpPorts:   make(map[int][]*Port),
		SpineDown: make(map[int][]*Port),
	}
	sim := net.Sim
	left := NewSwitch(sim, 1)
	right := NewSwitch(sim, 2)
	net.Switches = append(net.Switches, left, right)

	n := cfg.HostsPerSide
	for h := 0; h < 2*n; h++ {
		host := NewHost(sim, h)
		sw := left
		if h >= n {
			sw = right
		}
		nic := NewPort(sim, portName("h", h, "up"), cfg.AccessRateBps, cfg.LinkDelay, sw)
		host.NIC = nic
		down := NewPort(sim, portName("sw", sw.ID, "down"), cfg.AccessRateBps, cfg.LinkDelay, host)
		sw.AddPort(down)
		topo.DownPorts[sw.ID] = append(topo.DownPorts[sw.ID], down)
		topo.HostPorts = append(topo.HostPorts, nic)
		net.Hosts = append(net.Hosts, host)
	}
	l2r := NewPort(sim, "L->R", cfg.BottleneckRateBps, cfg.LinkDelay, right)
	r2l := NewPort(sim, "R->L", cfg.BottleneckRateBps, cfg.LinkDelay, left)
	left.AddPort(l2r)
	right.AddPort(r2l)
	topo.CorePorts = []*Port{l2r, r2l}

	left.Route = func(p *Packet) *Port {
		if p.Dst < n {
			return topo.DownPorts[left.ID][p.Dst]
		}
		return l2r
	}
	right.Route = func(p *Packet) *Port {
		if p.Dst >= n {
			return topo.DownPorts[right.ID][p.Dst-n]
		}
		return r2l
	}
	return topo
}

// StarConfig sizes the single-switch testbed topology of §V-B (three
// servers in a star around the Tofino).
type StarConfig struct {
	// Hosts around the switch.
	Hosts int
	// LinkRateBps is every link's rate.
	LinkRateBps float64
	// LinkDelay is the per-hop propagation delay.
	LinkDelay Time
}

// BuildStar constructs hosts around one switch.
func BuildStar(cfg StarConfig) *Topology {
	net := NewNetwork()
	topo := &Topology{
		Net:       net,
		DownPorts: make(map[int][]*Port),
		UpPorts:   make(map[int][]*Port),
		SpineDown: make(map[int][]*Port),
	}
	sim := net.Sim
	sw := NewSwitch(sim, 1)
	net.Switches = append(net.Switches, sw)
	for h := 0; h < cfg.Hosts; h++ {
		host := NewHost(sim, h)
		nic := NewPort(sim, portName("h", h, "up"), cfg.LinkRateBps, cfg.LinkDelay, sw)
		host.NIC = nic
		down := NewPort(sim, portName("sw", sw.ID, "down"), cfg.LinkRateBps, cfg.LinkDelay, host)
		sw.AddPort(down)
		topo.DownPorts[sw.ID] = append(topo.DownPorts[sw.ID], down)
		topo.HostPorts = append(topo.HostPorts, nic)
		net.Hosts = append(net.Hosts, host)
	}
	sw.Route = func(p *Packet) *Port {
		if p.Dst < 0 || p.Dst >= cfg.Hosts {
			return nil
		}
		return topo.DownPorts[sw.ID][p.Dst]
	}
	return topo
}

func portName(kind string, id int, dir string) string {
	const digits = "0123456789"
	// Cheap concatenation; ports are created once at build time.
	buf := make([]byte, 0, 16)
	buf = append(buf, kind...)
	if id == 0 {
		buf = append(buf, '0')
	} else {
		var tmp [20]byte
		i := len(tmp)
		for v := id; v > 0; v /= 10 {
			i--
			tmp[i] = digits[v%10]
		}
		buf = append(buf, tmp[i:]...)
	}
	buf = append(buf, '.')
	buf = append(buf, dir...)
	return string(buf)
}
