package netsim

import (
	"testing"
)

// buildStarPair returns a 2-host star and its network.
func buildStarPair(rate float64) *Topology {
	return BuildStar(StarConfig{Hosts: 2, LinkRateBps: rate, LinkDelay: Microsecond})
}

func TestSingleFlowCompletes(t *testing.T) {
	topo := buildStarPair(10e9)
	net := topo.Net
	f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 100 * 1024, Start: 0})
	if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(Second)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// 100 KB at 10 Gbps with 4 µs RTT-ish path: well under a millisecond.
	if f.FCT() > 5*Millisecond {
		t.Errorf("FCT = %v, implausibly slow", f.FCT())
	}
	if f.FCT() <= 0 {
		t.Errorf("FCT = %v", f.FCT())
	}
}

func TestAllVariantsComplete(t *testing.T) {
	for _, variant := range []CCVariant{Reno, Cubic, DCTCP} {
		t.Run(variant.String(), func(t *testing.T) {
			topo := buildStarPair(10e9)
			if variant == DCTCP {
				topo.SetECNThreshold(65 * 1024)
			}
			net := topo.Net
			f := net.AddFlow(&Flow{Src: 0, Dst: 1, Size: 2 * 1024 * 1024, Start: 0})
			if err := net.StartFlow(f, NewWindowTransport(variant)); err != nil {
				t.Fatal(err)
			}
			net.Sim.Run(10 * Second)
			if !f.Done() {
				t.Fatalf("%v flow did not complete", variant)
			}
		})
	}
}

func TestFlowHelpers(t *testing.T) {
	f := &Flow{Size: 3000}
	if f.NumPackets() != 3 { // 1460+1460+80
		t.Errorf("NumPackets = %d, want 3", f.NumPackets())
	}
	if f.PacketPayload(0) != MSS || f.PacketPayload(2) != 80 {
		t.Errorf("payloads = %d, %d", f.PacketPayload(0), f.PacketPayload(2))
	}
	empty := &Flow{Size: 0}
	if empty.NumPackets() != 1 {
		t.Errorf("zero-size flow packets = %d, want 1", empty.NumPackets())
	}
	if f.Done() || f.FCT() != 0 {
		t.Error("unfinished flow must report not done")
	}
}

func TestCongestionSharingDumbbell(t *testing.T) {
	// Two senders share a 1 Gbps bottleneck: both must finish, and total
	// goodput cannot exceed the bottleneck.
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     10e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	net := topo.Net
	const size = 2 * 1024 * 1024
	f1 := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: size, Start: 0})
	f2 := net.AddFlow(&Flow{Src: 1, Dst: 3, Size: size, Start: 0})
	for _, f := range []*Flow{f1, f2} {
		if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(10 * Second)
	if !f1.Done() || !f2.Done() {
		t.Fatalf("flows done: %v %v", f1.Done(), f2.Done())
	}
	// Ideal serialised time for 4 MB over 1 Gbps is ~33.6 ms; congestion
	// overheads allowed, but an FCT below the ideal would indicate the
	// bottleneck was not enforced.
	last := f1.Finish
	if f2.Finish > last {
		last = f2.Finish
	}
	idealBits := float64(2*size+2*size/MSS*HeaderBytes) * 8
	ideal := Time(idealBits / 1e9 * float64(Second))
	if last < ideal {
		t.Errorf("completion %v beats ideal %v: bottleneck not enforced", last, ideal)
	}
	if last > 40*ideal {
		t.Errorf("completion %v way beyond ideal %v: transport broken", last, ideal)
	}
}

func TestDCTCPKeepsQueueNearThreshold(t *testing.T) {
	// §II-B: with DCTCP, queue size stays close to the ECN threshold — the
	// skew ADA exploits. Long-running flow into a 1 Gbps bottleneck.
	topo := BuildDumbbell(DumbbellConfig{
		HostsPerSide:      2,
		AccessRateBps:     10e9,
		BottleneckRateBps: 1e9,
		LinkDelay:         5 * Microsecond,
	})
	const ecnK = 30 * 1024
	topo.SetECNThreshold(ecnK)
	net := topo.Net
	rec := &QueueRecorder{}
	rec.Attach(topo.CorePorts[0])
	f := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 8 * 1024 * 1024, Start: 0})
	if err := net.StartFlow(f, NewWindowTransport(DCTCP)); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run(5 * Second)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if len(rec.Samples) == 0 {
		t.Fatal("no queue samples")
	}
	// The vast majority of samples must sit at or below a small multiple of
	// the threshold (DCTCP's working point).
	frac := rec.FractionBelow(3 * ecnK)
	if frac < 0.95 {
		t.Errorf("only %.2f of samples within 3×ECN threshold", frac)
	}
}

func TestRenoFillsBufferDeeperThanDCTCP(t *testing.T) {
	run := func(variant CCVariant, ecn int) float64 {
		topo := BuildDumbbell(DumbbellConfig{
			HostsPerSide:      2,
			AccessRateBps:     10e9,
			BottleneckRateBps: 1e9,
			LinkDelay:         5 * Microsecond,
		})
		if ecn > 0 {
			topo.SetECNThreshold(ecn)
		}
		net := topo.Net
		rec := &QueueRecorder{}
		rec.Attach(topo.CorePorts[0])
		f := net.AddFlow(&Flow{Src: 0, Dst: 2, Size: 8 * 1024 * 1024, Start: 0})
		if err := net.StartFlow(f, NewWindowTransport(variant)); err != nil {
			t.Fatal(err)
		}
		net.Sim.Run(5 * Second)
		// Mean queue depth.
		sum := 0.0
		for _, s := range rec.Samples {
			sum += float64(s)
		}
		if len(rec.Samples) == 0 {
			return 0
		}
		return sum / float64(len(rec.Samples))
	}
	reno := run(Reno, 0)
	dctcp := run(DCTCP, 30*1024)
	if dctcp >= reno {
		t.Errorf("DCTCP mean queue %.0f not below Reno %.0f", dctcp, reno)
	}
}

func TestIncastManyToOne(t *testing.T) {
	// 8 senders converge on host 0 through a star; all must eventually
	// complete despite buffer pressure (RTO recovery).
	topo := BuildStar(StarConfig{Hosts: 9, LinkRateBps: 1e9, LinkDelay: Microsecond})
	net := topo.Net
	var flows []*Flow
	for s := 1; s <= 8; s++ {
		f := net.AddFlow(&Flow{Src: s, Dst: 0, Size: 64 * 1024, Start: 0, Incast: true})
		flows = append(flows, f)
		if err := net.StartFlow(f, NewWindowTransport(Reno)); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run(10 * Second)
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("incast flow %d→%d stuck (sent buffer drops should recover via RTO)", f.Src, f.Dst)
		}
	}
}

func TestHostOutOfOrderReassembly(t *testing.T) {
	sim := NewSimulator()
	h := NewHost(sim, 0)
	out := &sink{}
	h.NIC = NewPort(sim, "h0", 1e9, 0, out)
	// Deliver seq 1 before seq 0: ACKs must stay cumulative.
	h.Receive(&Packet{FlowID: 1, Src: 9, Dst: 0, Seq: 1, Size: 1500, Payload: 1460})
	h.Receive(&Packet{FlowID: 1, Src: 9, Dst: 0, Seq: 0, Size: 1500, Payload: 1460})
	sim.Run(Second)
	if len(out.pkts) != 2 {
		t.Fatalf("acks sent = %d", len(out.pkts))
	}
	if out.pkts[0].AckNo != 0 {
		t.Errorf("first ack = %d, want 0 (dup)", out.pkts[0].AckNo)
	}
	if out.pkts[1].AckNo != 2 {
		t.Errorf("second ack = %d, want 2 (cumulative)", out.pkts[1].AckNo)
	}
}
