package trie

import (
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

// TestFromBinsRoundTrip rebalances a trie through many random rounds, then
// rebuilds it from its own leaves and checks the reconstruction is
// structurally identical — the property journal recovery rests on.
func TestFromBinsRoundTrip(t *testing.T) {
	tr, err := NewInitial(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		for i := 0; i < 200; i++ {
			tr.Record(uint64(rng.Intn(40))) // skewed: lower values hot
		}
		tr.Rebalance(0.2)
		if round%5 == 4 {
			tr.Expand()
		}

		got, err := FromBins(tr.Width(), tr.Leaves())
		if err != nil {
			t.Fatalf("round %d: FromBins: %v", round, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round %d: rebuilt trie invalid: %v", round, err)
		}
		a, b := tr.Leaves(), got.Leaves()
		if len(a) != len(b) {
			t.Fatalf("round %d: %d leaves rebuilt, want %d", round, len(b), len(a))
		}
		for i := range a {
			if a[i].Prefix.Compare(b[i].Prefix) != 0 || a[i].Hits != b[i].Hits {
				t.Fatalf("round %d leaf %d: got %v/%d, want %v/%d",
					round, i, b[i].Prefix, b[i].Hits, a[i].Prefix, a[i].Hits)
			}
		}
		if got.Depth() != tr.Depth() {
			t.Fatalf("round %d: depth %d, want %d", round, got.Depth(), tr.Depth())
		}
	}
}

// TestFromBinsStartsClean ensures a rebuilt trie has no pending dirty
// subtrees: recovery installs and populates explicitly, so the first
// incremental round after a restart must see a fully committed trie.
func TestFromBinsStartsClean(t *testing.T) {
	tr, _ := NewInitial(8, 6)
	for i := 0; i < 100; i++ {
		tr.Record(uint64(i % 13))
	}
	tr.Rebalance(0.2)
	got, err := FromBins(6, tr.Leaves())
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dirty(); len(d) != 0 {
		t.Errorf("rebuilt trie reports dirty subtrees: %v", d)
	}
}

func TestFromBinsValidation(t *testing.T) {
	p := func(s string) bitstr.Prefix {
		pr, err := bitstr.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	cases := []struct {
		name  string
		width int
		bins  []Bin
	}{
		{"empty", 3, nil},
		{"bad width", 4, []Bin{{Prefix: p("0xx")}, {Prefix: p("1xx")}}},
		{"gap", 3, []Bin{{Prefix: p("00x")}, {Prefix: p("1xx")}}},
		{"overlap", 3, []Bin{{Prefix: p("0xx")}, {Prefix: p("01x")}, {Prefix: p("1xx")}}},
	}
	for _, tc := range cases {
		if _, err := FromBins(tc.width, tc.bins); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// The degenerate single-root partition is valid.
	root, _ := bitstr.Root(3)
	tr, err := FromBins(3, []Bin{{Prefix: root, Hits: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 || tr.TotalHits() != 5 {
		t.Errorf("root-only trie: %d leaves, %d hits", tr.NumLeaves(), tr.TotalHits())
	}
}
