package trie

import (
	"fmt"

	"github.com/ada-repro/ada/internal/bitstr"
)

// FromBins rebuilds a trie from a committed leaf snapshot — the inverse of
// Leaves. The bins must partition the width-bit operand space (the shape a
// Leaves call on any valid trie produces); order does not matter. The
// restored trie starts clean: no dirty intervals, change sequence equal to
// the commit sequence, generation zero — exactly the state a freshly
// committed trie presents, so a recovered controller's first round diffs
// against it like any other.
func FromBins(width int, bins []Bin) (*Trie, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	if len(bins) == 0 {
		return nil, fmt.Errorf("%w: no bins", ErrBudget)
	}
	ps := make([]bitstr.Prefix, len(bins))
	for i, b := range bins {
		if b.Prefix.Width() != width {
			return nil, fmt.Errorf("trie: bin %d width %d, trie width %d", i, b.Prefix.Width(), width)
		}
		ps[i] = b.Prefix
	}
	if !bitstr.Partition(ps) {
		return nil, fmt.Errorf("trie: bins do not partition the %d-bit operand space", width)
	}
	root, err := bitstr.Root(width)
	if err != nil {
		return nil, err
	}
	t := &Trie{width: width, root: &Node{prefix: root}, leaves: len(bins)}
	var build func(n *Node, bs []Bin) error
	build = func(n *Node, bs []Bin) error {
		if len(bs) == 1 && bs[0].Prefix == n.prefix {
			n.hits = bs[0].Hits
			return nil
		}
		l, err := n.prefix.Left()
		if err != nil {
			return fmt.Errorf("trie: bins overflow prefix %v", n.prefix)
		}
		var lb, rb []Bin
		for _, b := range bs {
			if l.ContainsPrefix(b.Prefix) {
				lb = append(lb, b)
			} else {
				rb = append(rb, b)
			}
		}
		if len(lb) == 0 || len(rb) == 0 {
			// Partition passed, so this cannot happen for well-formed bins;
			// guard against it anyway rather than recurse forever.
			return fmt.Errorf("trie: bins do not split under prefix %v", n.prefix)
		}
		r, err := n.prefix.Right()
		if err != nil {
			return err
		}
		n.left = &Node{prefix: l}
		n.right = &Node{prefix: r}
		if err := build(n.left, lb); err != nil {
			return err
		}
		return build(n.right, rb)
	}
	if err := build(t.root, bins); err != nil {
		return nil, err
	}
	t.dirty = nil
	t.commitSeq = t.seq
	return t, nil
}
