package trie

import (
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
)

func mustTrie(t *testing.T, m, width int) *Trie {
	t.Helper()
	tr, err := NewInitial(m, width)
	if err != nil {
		t.Fatalf("NewInitial(%d, %d): %v", m, width, err)
	}
	return tr
}

func TestNewInitialStartsClean(t *testing.T) {
	tr := mustTrie(t, 8, 8)
	if n := tr.NumDirty(); n != 0 {
		t.Fatalf("fresh trie has %d dirty prefixes, want 0", n)
	}
	if tr.ChangeSeq() != tr.CommittedSeq() {
		t.Fatalf("fresh trie ChangeSeq %d != CommittedSeq %d", tr.ChangeSeq(), tr.CommittedSeq())
	}
	if got := tr.Dirty(); got != nil {
		t.Fatalf("fresh trie Dirty() = %v, want nil", got)
	}
}

func TestSetLeafHitsMarksOnlyChanges(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	base := []uint64{10, 20, 30, 40}
	if err := tr.SetLeafHits(base); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirty() != 4 {
		t.Fatalf("after first SetLeafHits: %d dirty, want 4", tr.NumDirty())
	}
	tr.CommitGeneration()
	seq := tr.ChangeSeq()

	// Identical snapshot: nothing changes.
	if err := tr.SetLeafHits(base); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirty() != 0 {
		t.Fatalf("identical SetLeafHits marked %d dirty, want 0", tr.NumDirty())
	}
	if tr.ChangeSeq() != seq {
		t.Fatalf("identical SetLeafHits advanced ChangeSeq %d -> %d", seq, tr.ChangeSeq())
	}

	// One leaf changes: exactly one dirty prefix.
	if err := tr.SetLeafHits([]uint64{10, 21, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirty() != 1 {
		t.Fatalf("single-leaf change marked %d dirty, want 1", tr.NumDirty())
	}
	if tr.ChangeSeq() != seq+1 {
		t.Fatalf("single-leaf change ChangeSeq = %d, want %d", tr.ChangeSeq(), seq+1)
	}
	leaves := tr.Leaves()
	if got := tr.Dirty()[0]; got != leaves[1].Prefix {
		t.Fatalf("dirty prefix %v, want second leaf %v", got, leaves[1].Prefix)
	}
}

func TestAddResetDecayMarkOnlyChanges(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	if err := tr.AddLeafHits([]uint64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirty() != 0 {
		t.Fatalf("zero AddLeafHits marked %d dirty", tr.NumDirty())
	}
	if err := tr.AddLeafHits([]uint64{0, 5, 0, 7}); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirty() != 2 {
		t.Fatalf("AddLeafHits marked %d dirty, want 2", tr.NumDirty())
	}
	tr.CommitGeneration()

	tr.DecayHits() // 0, 2, 0, 3 — only nonzero leaves change
	if tr.NumDirty() != 2 {
		t.Fatalf("DecayHits marked %d dirty, want 2", tr.NumDirty())
	}
	tr.CommitGeneration()

	tr.ResetHits()
	if tr.NumDirty() != 2 {
		t.Fatalf("ResetHits marked %d dirty, want 2", tr.NumDirty())
	}
	tr.CommitGeneration()
	tr.ResetHits() // already zero
	if tr.NumDirty() != 0 {
		t.Fatalf("ResetHits of zeroed trie marked %d dirty", tr.NumDirty())
	}
}

func TestRecordMarksContainingLeaf(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	tr.Record(0) // first leaf
	if tr.NumDirty() != 1 {
		t.Fatalf("Record marked %d dirty, want 1", tr.NumDirty())
	}
	if got, want := tr.Dirty()[0], tr.Leaves()[0].Prefix; got != want {
		t.Fatalf("Record dirty prefix %v, want %v", got, want)
	}
}

func TestRebalanceMarksParents(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	if err := tr.SetLeafHits([]uint64{100, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	tr.CommitGeneration()
	if !tr.Rebalance(0.2) {
		t.Fatal("Rebalance did not fire")
	}
	// The merge marks the cold pair's parent; the split marks the hot leaf
	// (which becomes the new parent). Both must overlap the dirty set.
	dirty := tr.Dirty()
	if len(dirty) < 2 {
		t.Fatalf("Rebalance marked %d dirty prefixes, want >= 2: %v", len(dirty), dirty)
	}
	overlapsDirty := func(p bitstr.Prefix) bool {
		for _, d := range dirty {
			if d.Overlaps(p) {
				return true
			}
		}
		return false
	}
	for _, b := range tr.Leaves() {
		if b.Prefix.Bits() != 2 && !overlapsDirty(b.Prefix) {
			t.Fatalf("reshaped leaf %v not covered by dirty set %v", b.Prefix, dirty)
		}
	}
}

func TestExpandMarksSplitLeaf(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	if err := tr.SetLeafHits([]uint64{1, 2, 3, 90}); err != nil {
		t.Fatal(err)
	}
	tr.CommitGeneration()
	hot := tr.MaxLeaf().Prefix
	if !tr.Expand() {
		t.Fatal("Expand did not fire")
	}
	found := false
	for _, d := range tr.Dirty() {
		if d == hot {
			found = true
		}
	}
	if !found {
		t.Fatalf("Expand dirty set %v does not include split leaf %v", tr.Dirty(), hot)
	}
}

func TestCloneCarriesDirtyState(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	if err := tr.SetLeafHits([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	c := tr.Clone()
	if c.NumDirty() != tr.NumDirty() {
		t.Fatalf("clone has %d dirty, original %d", c.NumDirty(), tr.NumDirty())
	}
	if c.ChangeSeq() != tr.ChangeSeq() || c.Generation() != tr.Generation() || c.CommittedSeq() != tr.CommittedSeq() {
		t.Fatal("clone did not carry seq/gen/commitSeq")
	}
	// Mutating the clone must not touch the original's dirty set.
	c.Record(0)
	if c.ChangeSeq() == tr.ChangeSeq() {
		t.Fatal("clone mutation advanced the original's ChangeSeq")
	}
	c.CommitGeneration()
	if tr.NumDirty() == 0 {
		t.Fatal("clone CommitGeneration cleared the original's dirty set")
	}
}

func TestCommitGenerationClears(t *testing.T) {
	tr := mustTrie(t, 4, 8)
	if err := tr.SetLeafHits([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	g := tr.Generation()
	if got := tr.CommitGeneration(); got != g+1 {
		t.Fatalf("CommitGeneration = %d, want %d", got, g+1)
	}
	if tr.NumDirty() != 0 {
		t.Fatalf("dirty set not cleared: %d", tr.NumDirty())
	}
	if tr.ChangeSeq() != tr.CommittedSeq() {
		t.Fatal("CommittedSeq did not catch up to ChangeSeq")
	}
}

func TestAggregateHitsDoesNotDirty(t *testing.T) {
	tr := mustTrie(t, 8, 8)
	if err := tr.SetLeafHits([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	tr.CommitGeneration()
	seq := tr.ChangeSeq()
	tr.AggregateHits()
	if tr.NumDirty() != 0 || tr.ChangeSeq() != seq {
		t.Fatal("AggregateHits marked dirty state; it only touches internal nodes")
	}
}
