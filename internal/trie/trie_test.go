package trie

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ada-repro/ada/internal/bitstr"
	"github.com/ada-repro/ada/internal/dist"
)

func TestNewInitialPaperExample(t *testing.T) {
	// Paper §III-A2: four entries over 3-bit operands → 00x, 01x, 10x, 11x.
	tr, err := NewInitial(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	bins := tr.Leaves()
	want := []string{"00x", "01x", "10x", "11x"}
	if len(bins) != len(want) {
		t.Fatalf("got %d bins, want %d", len(bins), len(want))
	}
	for i, b := range bins {
		if b.Prefix.String() != want[i] {
			t.Errorf("bin %d = %q, want %q", i, b.Prefix, want[i])
		}
	}
	if tr.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewInitialBudgets(t *testing.T) {
	tests := []struct {
		m, width   int
		wantLeaves int
	}{
		{1, 8, 1},   // b = 0
		{2, 8, 2},   // b = 1
		{3, 8, 2},   // floor(log2 3) = 1
		{7, 8, 4},   // floor(log2 7) = 2
		{8, 8, 8},   // b = 3
		{128, 3, 8}, // b capped at width
	}
	for _, tt := range tests {
		tr, err := NewInitial(tt.m, tt.width)
		if err != nil {
			t.Fatalf("NewInitial(%d, %d): %v", tt.m, tt.width, err)
		}
		if tr.NumLeaves() != tt.wantLeaves {
			t.Errorf("NewInitial(%d, %d) leaves = %d, want %d",
				tt.m, tt.width, tr.NumLeaves(), tt.wantLeaves)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("NewInitial(%d, %d): %v", tt.m, tt.width, err)
		}
	}
}

func TestNewInitialErrors(t *testing.T) {
	if _, err := NewInitial(0, 8); !errors.Is(err, ErrBudget) {
		t.Errorf("budget 0 error = %v, want ErrBudget", err)
	}
	if _, err := NewInitial(4, 0); !errors.Is(err, ErrWidth) {
		t.Errorf("width 0 error = %v, want ErrWidth", err)
	}
	if _, err := NewInitial(4, 65); !errors.Is(err, ErrWidth) {
		t.Errorf("width 65 error = %v, want ErrWidth", err)
	}
}

func TestRecord(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	for v := uint64(0); v < 8; v++ {
		tr.Record(v)
	}
	tr.Record(2) // extra hit in 01x
	bins := tr.Leaves()
	wantHits := []uint64{2, 3, 2, 2}
	for i, b := range bins {
		if b.Hits != wantHits[i] {
			t.Errorf("bin %s hits = %d, want %d", b.Prefix, b.Hits, wantHits[i])
		}
	}
	if tr.TotalHits() != 9 {
		t.Errorf("TotalHits = %d, want 9", tr.TotalHits())
	}
}

func TestRecordMasksWidth(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	tr.Record(0xFF) // masked to 0b111
	if got := tr.Leaves()[3].Hits; got != 1 {
		t.Errorf("masked record landed wrong: %v", tr)
	}
}

func TestRebalancePaperTransition(t *testing.T) {
	// Figure 4a → 4b: from uniform bins with hits favouring 01x, one
	// rebalance splits 01x and merges 10x+11x into 1xx.
	tr, _ := NewInitial(4, 3)
	// Hits from Figure 4a: 00x:5, 01x:14, 10x:2, 11x:1 (01x dominant,
	// 10x/11x cold).
	if err := tr.SetLeafHits([]uint64{5, 14, 2, 1}); err != nil {
		t.Fatal(err)
	}
	changed := tr.Rebalance(0.20)
	if !changed {
		t.Fatal("Rebalance must fire at this imbalance")
	}
	bins := tr.Leaves()
	want := []string{"00x", "010", "011", "1xx"}
	if len(bins) != 4 {
		t.Fatalf("leaf count changed: %d", len(bins))
	}
	for i, b := range bins {
		if b.Prefix.String() != want[i] {
			t.Errorf("bin %d = %q, want %q (trie: %v)", i, b.Prefix, want[i], tr)
		}
	}
	if tr.TotalHits() != 22 {
		t.Errorf("hits not conserved: %d, want 22", tr.TotalHits())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceBelowThreshold(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.SetLeafHits([]uint64{10, 10, 9, 10}); err != nil {
		t.Fatal(err)
	}
	// Imbalance = 1/10 < 0.20 → no change.
	if tr.Rebalance(0.20) {
		t.Error("Rebalance fired below threshold")
	}
}

func TestImbalance(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if tr.Imbalance() != 0 {
		t.Error("zero-hit imbalance must be 0")
	}
	if err := tr.SetLeafHits([]uint64{10, 5, 10, 10}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Imbalance(); got != 0.5 {
		t.Errorf("Imbalance = %g, want 0.5", got)
	}
}

func TestRebalanceDoesNotMergeSplitTarget(t *testing.T) {
	// Two leaves only: the hot leaf's sibling pair is the only mergeable
	// parent, and merging it would destroy the split target. Rebalance must
	// decline rather than corrupt the trie.
	tr, _ := NewInitial(2, 3)
	if err := tr.SetLeafHits([]uint64{100, 1}); err != nil {
		t.Fatal(err)
	}
	if tr.Rebalance(0.20) {
		t.Error("Rebalance must not merge the node it is about to split")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceAtFullDepth(t *testing.T) {
	// Width-1 operands: leaves 0 and 1 are fully specified; nothing can
	// split.
	tr, _ := NewInitial(2, 1)
	if err := tr.SetLeafHits([]uint64{100, 0}); err != nil {
		t.Fatal(err)
	}
	if tr.Rebalance(0.20) {
		t.Error("Rebalance at full depth must be a no-op")
	}
}

func TestExpand(t *testing.T) {
	tr, _ := NewInitial(2, 4) // two bins
	if err := tr.SetLeafHits([]uint64{9, 1}); err != nil {
		t.Fatal(err)
	}
	if !tr.Expand() {
		t.Fatal("Expand must split the hot leaf")
	}
	if tr.NumLeaves() != 3 {
		t.Errorf("leaves = %d, want 3", tr.NumLeaves())
	}
	if tr.TotalHits() != 10 {
		t.Errorf("hits not conserved: %d", tr.TotalHits())
	}
	bins := tr.Leaves()
	want := []string{"00xx", "01xx", "1xxx"}
	for i, b := range bins {
		if b.Prefix.String() != want[i] {
			t.Errorf("bin %d = %q, want %q", i, b.Prefix, want[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExpandExhausted(t *testing.T) {
	tr, _ := NewInitial(2, 1)
	if tr.Expand() {
		t.Error("Expand with all leaves at full depth must return false")
	}
}

func TestSnapshotErrors(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.SetLeafHits([]uint64{1, 2}); !errors.Is(err, ErrLeafCount) {
		t.Errorf("short snapshot error = %v, want ErrLeafCount", err)
	}
	if err := tr.AddLeafHits(make([]uint64, 9)); !errors.Is(err, ErrLeafCount) {
		t.Errorf("long snapshot error = %v, want ErrLeafCount", err)
	}
}

func TestAddAndResetAndDecay(t *testing.T) {
	tr, _ := NewInitial(2, 3)
	if err := tr.SetLeafHits([]uint64{4, 8}); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddLeafHits([]uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if tr.TotalHits() != 14 {
		t.Errorf("after add: %d, want 14", tr.TotalHits())
	}
	tr.DecayHits()
	if tr.TotalHits() != 6 { // 5/2 + 9/2 = 2 + 4
		t.Errorf("after decay: %d, want 6", tr.TotalHits())
	}
	tr.ResetHits()
	if tr.TotalHits() != 0 {
		t.Error("ResetHits left hits")
	}
}

func TestAggregateHits(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.SetLeafHits([]uint64{5, 7, 7, 3}); err != nil {
		t.Fatal(err)
	}
	total := tr.AggregateHits()
	if total != 22 {
		t.Errorf("AggregateHits = %d, want 22", total)
	}
	root := tr.Root()
	if root.Hits() != 22 {
		t.Errorf("root aggregated hits = %d, want 22", root.Hits())
	}
	if root.Left().Hits() != 12 || root.Right().Hits() != 10 {
		t.Errorf("children aggregates = %d, %d; want 12, 10",
			root.Left().Hits(), root.Right().Hits())
	}
}

func TestMaxMinLeaf(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.SetLeafHits([]uint64{5, 14, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxLeaf(); got.Prefix.String() != "01x" || got.Hits != 14 {
		t.Errorf("MaxLeaf = %v", got)
	}
	if got := tr.MinLeaf(); got.Prefix.String() != "11x" || got.Hits != 1 {
		t.Errorf("MinLeaf = %v", got)
	}
}

func TestClone(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.SetLeafHits([]uint64{5, 14, 2, 1}); err != nil {
		t.Fatal(err)
	}
	cp := tr.Clone()
	tr.Rebalance(0.2)
	tr.Record(7)
	if cp.String() != "00x:5 01x:14 10x:2 11x:1" {
		t.Errorf("clone mutated: %v", cp)
	}
}

func TestConvergenceToSkewedDistribution(t *testing.T) {
	// Drive Algorithm 2 with a tight Gaussian and check the bins zoom into
	// the dense region: after convergence, the bin containing the mean must
	// be much narrower than the initial uniform bin.
	const width = 20 // domain [0, 1M)
	tr, err := NewInitial(8, width)
	if err != nil {
		t.Fatal(err)
	}
	initialSize := tr.Leaves()[0].Prefix.Size()
	sampler := dist.NewIntSampler(
		dist.Truncated{D: dist.Gaussian{Mu: 300000, Sigma: 2000}, Lo: 0, Hi: 1 << width},
		1<<width-1, 99)
	for round := 0; round < 80; round++ {
		// Control-plane loop: fresh register snapshot per round, a bounded
		// number of Algorithm 2 iterations, then reset.
		tr.ResetHits()
		tr.RecordAll(sampler.Draw(2000))
		for i := 0; i < 4 && tr.Rebalance(0.20); i++ {
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	var meanBin Bin
	for _, b := range tr.Leaves() {
		if b.Prefix.Contains(300000) {
			meanBin = b
		}
	}
	if meanBin.Prefix.Size() > initialSize/16 {
		t.Errorf("bin at mean did not shrink: size %d (initial %d); trie: %v",
			meanBin.Prefix.Size(), initialSize, tr)
	}
}

// Property: Rebalance and Expand always preserve the partition invariant,
// leaf count semantics, and hit conservation.
func TestQuickMutationsPreserveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		width := 2 + rng.Intn(14)
		m := 1 + rng.Intn(32)
		tr, err := NewInitial(m, width)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			n := 1 + rng.Intn(200)
			for i := 0; i < n; i++ {
				tr.Record(rng.Uint64())
			}
			before := tr.TotalHits()
			leavesBefore := tr.NumLeaves()
			switch rng.Intn(3) {
			case 0:
				changed := tr.Rebalance(rng.Float64() * 0.5)
				if changed && tr.NumLeaves() != leavesBefore {
					t.Fatalf("Rebalance changed leaf count %d → %d", leavesBefore, tr.NumLeaves())
				}
			case 1:
				changed := tr.Expand()
				if changed && tr.NumLeaves() != leavesBefore+1 {
					t.Fatalf("Expand leaf count %d → %d", leavesBefore, tr.NumLeaves())
				}
			default:
				tr.AggregateHits() // must not corrupt leaves
			}
			if tr.TotalHits() != before {
				t.Fatalf("hits not conserved: %d → %d", before, tr.TotalHits())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

// Property: every recorded value lands in exactly one bin whose prefix
// contains it.
func TestQuickRecordLandsInContainingBin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := NewInitial(16, 12)
	for i := 0; i < 200; i++ {
		v := rng.Uint64() & 0xFFF
		before := make(map[string]uint64)
		for _, b := range tr.Leaves() {
			before[b.Prefix.String()] = b.Hits
		}
		tr.Record(v)
		bumped := 0
		for _, b := range tr.Leaves() {
			if b.Hits != before[b.Prefix.String()] {
				bumped++
				if !b.Prefix.Contains(v) {
					t.Fatalf("value %d bumped non-containing bin %v", v, b.Prefix)
				}
			}
		}
		if bumped != 1 {
			t.Fatalf("value %d bumped %d bins", v, bumped)
		}
		if i%20 == 0 {
			tr.Rebalance(0.1)
		}
	}
}

func TestSplitInternalNodeError(t *testing.T) {
	tr, _ := NewInitial(4, 3)
	if err := tr.split(tr.root); err == nil {
		t.Error("splitting internal node: want error")
	}
	if err := tr.merge(tr.root.left.left); err == nil {
		t.Error("merging a leaf: want error")
	}
}

var _ = bitstr.Prefix{} // keep the import for helper use in future tests
