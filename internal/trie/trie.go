// Package trie implements ADA's binning trie (paper §III-A): a binary trie
// over the operand bit-space whose leaves are the monitoring bins. Each leaf
// corresponds to one wildcard TCAM entry plus one hit register in the data
// plane.
//
// Algorithm 1 (initialisation) builds a complete trie with b = log2(M)
// significant bits, i.e. M equal-sized bins. Algorithm 2 (adaptive update)
// reshapes the trie: when the hit imbalance between the hottest and coldest
// bins exceeds a threshold, the coldest sibling pair of leaves is merged into
// its parent and the hottest leaf is split in two, keeping the entry count
// fixed while zooming into the dense region of the operand distribution.
package trie

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"github.com/ada-repro/ada/internal/bitstr"
)

var (
	// ErrBudget reports a monitoring entry budget below one.
	ErrBudget = errors.New("trie: entry budget must be at least 1")
	// ErrWidth reports an operand width outside [1, 64].
	ErrWidth = errors.New("trie: width must be in [1, 64]")
	// ErrLeafCount reports a register snapshot whose length does not match
	// the current leaf count.
	ErrLeafCount = errors.New("trie: snapshot length does not match leaf count")
	// ErrNoSplit reports that no leaf can be split (all at full depth).
	ErrNoSplit = errors.New("trie: no splittable leaf")
	// ErrNoMerge reports that no sibling leaf pair exists to merge.
	ErrNoMerge = errors.New("trie: no mergeable sibling pair")
)

// Node is one trie node. Leaves are bins; internal nodes exist only as
// structure. Nodes are exposed read-only so population schemes (Algorithm 3)
// can traverse the tree.
type Node struct {
	prefix      bitstr.Prefix
	left, right *Node
	hits        uint64
}

// Prefix returns the wildcard pattern this node covers.
func (n *Node) Prefix() bitstr.Prefix { return n.prefix }

// Left returns the 0-branch child, or nil for a leaf.
func (n *Node) Left() *Node { return n.left }

// Right returns the 1-branch child, or nil for a leaf.
func (n *Node) Right() *Node { return n.right }

// IsLeaf reports whether n is a bin.
func (n *Node) IsLeaf() bool { return n.left == nil && n.right == nil }

// Hits returns the hit count recorded at a leaf. For internal nodes it
// returns the aggregated subtree total as of the last call to the owning
// trie's AggregateHits.
func (n *Node) Hits() uint64 { return n.hits }

// Bin is a leaf snapshot: its covered interval and hit count.
type Bin struct {
	Prefix bitstr.Prefix
	Hits   uint64
}

// Trie is the mutable binning tree. It is not safe for concurrent use; the
// control plane owns it exclusively.
//
// The trie tracks which leaf intervals changed shape or hit mass since the
// last CommitGeneration call — the signal the incremental control round uses
// to skip Algorithm 3 recomputation over clean subtrees. Every mutation also
// advances a monotonic change sequence, so a population memo can tell "this
// exact trie content" apart from "a trie that mutated and mutated back across
// a commit".
type Trie struct {
	width  int
	root   *Node
	leaves int

	// dirty holds the leaf prefixes whose shape or hit mass changed since
	// the last CommitGeneration. A split or merge marks the enclosing parent
	// prefix, which covers every leaf the reshape touched.
	dirty map[bitstr.Prefix]struct{}
	// seq advances on every dirty-marking mutation; gen advances on every
	// CommitGeneration; commitSeq records seq as of the last commit.
	seq       uint64
	gen       uint64
	commitSeq uint64
}

// markDirty records that the interval p changed shape or mass.
func (t *Trie) markDirty(p bitstr.Prefix) {
	if t.dirty == nil {
		t.dirty = make(map[bitstr.Prefix]struct{})
	}
	t.dirty[p] = struct{}{}
	t.seq++
}

// NewInitial runs Algorithm 1: given the monitoring entry budget m over
// width-bit operands, it builds the trie with b = floor(log2(m)) significant
// bits, i.e. 2^b equal-sized bins (capped at the operand width).
func NewInitial(m, width int) (*Trie, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBudget, m)
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("%w: got %d", ErrWidth, width)
	}
	b := int(math.Floor(math.Log2(float64(m))))
	if b > width {
		b = width
	}
	root, err := bitstr.Root(width)
	if err != nil {
		return nil, err
	}
	t := &Trie{width: width, root: &Node{prefix: root}, leaves: 1}
	var grow func(n *Node, depth int) error
	grow = func(n *Node, depth int) error {
		if depth == 0 {
			return nil
		}
		if err := t.split(n); err != nil {
			return err
		}
		if err := grow(n.left, depth-1); err != nil {
			return err
		}
		return grow(n.right, depth-1)
	}
	if err := grow(t.root, b); err != nil {
		return nil, err
	}
	// Construction is the baseline population, not churn: start clean.
	t.dirty = nil
	t.commitSeq = t.seq
	return t, nil
}

// split turns leaf n into an internal node with two fresh children,
// distributing its hits evenly (remainder to the left child) so total hits
// are conserved.
func (t *Trie) split(n *Node) error {
	if !n.IsLeaf() {
		return fmt.Errorf("trie: split of internal node %v", n.prefix)
	}
	l, err := n.prefix.Left()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoSplit, err)
	}
	r, err := n.prefix.Right()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoSplit, err)
	}
	half := n.hits / 2
	n.left = &Node{prefix: l, hits: n.hits - half}
	n.right = &Node{prefix: r, hits: half}
	n.hits = 0
	t.leaves++
	t.markDirty(n.prefix)
	return nil
}

// merge collapses an internal node whose children are both leaves back into a
// leaf carrying the combined hits.
func (t *Trie) merge(n *Node) error {
	if n.IsLeaf() || !n.left.IsLeaf() || !n.right.IsLeaf() {
		return fmt.Errorf("%w: node %v", ErrNoMerge, n.prefix)
	}
	n.hits = n.left.hits + n.right.hits
	n.left, n.right = nil, nil
	t.leaves--
	t.markDirty(n.prefix)
	return nil
}

// Width returns the operand width in bits.
func (t *Trie) Width() int { return t.width }

// NumLeaves returns the current bin count (monitoring TCAM entries in use).
func (t *Trie) NumLeaves() int { return t.leaves }

// Root returns the root node for read-only traversal.
func (t *Trie) Root() *Node { return t.root }

// Depth returns the maximum leaf depth (significant bits of the deepest bin).
func (t *Trie) Depth() int {
	depth := 0
	t.walkLeaves(func(n *Node) {
		if n.prefix.Bits() > depth {
			depth = n.prefix.Bits()
		}
	})
	return depth
}

// walkLeaves visits leaves in order of ascending operand value.
func (t *Trie) walkLeaves(f func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.IsLeaf() {
			f(n)
			return
		}
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
}

// Leaves returns the bins in ascending value order. This is the in-order
// traversal Algorithm 2 returns to generate monitoring TCAM entries.
func (t *Trie) Leaves() []Bin {
	out := make([]Bin, 0, t.leaves)
	t.walkLeaves(func(n *Node) {
		out = append(out, Bin{Prefix: n.prefix, Hits: n.hits})
	})
	return out
}

// Record finds the bin containing v and increments its hit count, emulating
// the data-plane match-and-increment path. Values are masked to the operand
// width.
func (t *Trie) Record(v uint64) {
	if t.width < 64 {
		v &= (uint64(1) << uint(t.width)) - 1
	}
	n := t.root
	for !n.IsLeaf() {
		if n.left.prefix.Contains(v) {
			n = n.left
		} else {
			n = n.right
		}
	}
	n.hits++
	t.markDirty(n.prefix)
}

// RecordAll records every value in vs.
func (t *Trie) RecordAll(vs []uint64) {
	for _, v := range vs {
		t.Record(v)
	}
}

// SetLeafHits overwrites leaf hit counts from a register snapshot, in leaf
// order. This is how the control plane loads data-plane registers into the
// trie before an Algorithm 2 round.
func (t *Trie) SetLeafHits(hits []uint64) error {
	if len(hits) != t.leaves {
		return fmt.Errorf("%w: got %d, trie has %d leaves", ErrLeafCount, len(hits), t.leaves)
	}
	i := 0
	t.walkLeaves(func(n *Node) {
		if n.hits != hits[i] {
			n.hits = hits[i]
			t.markDirty(n.prefix)
		}
		i++
	})
	return nil
}

// AddLeafHits accumulates a register snapshot into the leaf hit counts.
func (t *Trie) AddLeafHits(hits []uint64) error {
	if len(hits) != t.leaves {
		return fmt.Errorf("%w: got %d, trie has %d leaves", ErrLeafCount, len(hits), t.leaves)
	}
	i := 0
	t.walkLeaves(func(n *Node) {
		if hits[i] != 0 {
			n.hits += hits[i]
			t.markDirty(n.prefix)
		}
		i++
	})
	return nil
}

// ResetHits zeroes every leaf counter (the per-round register reset).
func (t *Trie) ResetHits() {
	t.walkLeaves(func(n *Node) {
		if n.hits != 0 {
			n.hits = 0
			t.markDirty(n.prefix)
		}
	})
}

// DecayHits halves every leaf counter; the EWMA ablation of the paper's
// reset-per-round policy.
func (t *Trie) DecayHits() {
	t.walkLeaves(func(n *Node) {
		if n.hits != 0 {
			n.hits /= 2
			t.markDirty(n.prefix)
		}
	})
}

// TotalHits returns the sum of all leaf hits.
func (t *Trie) TotalHits() uint64 {
	var sum uint64
	t.walkLeaves(func(n *Node) { sum += n.hits })
	return sum
}

// MaxLeaf returns the hottest bin, preferring (on ties) the first in value
// order.
func (t *Trie) MaxLeaf() Bin {
	var best *Node
	t.walkLeaves(func(n *Node) {
		if best == nil || n.hits > best.hits {
			best = n
		}
	})
	return Bin{Prefix: best.prefix, Hits: best.hits}
}

// MinLeaf returns the coldest bin.
func (t *Trie) MinLeaf() Bin {
	var best *Node
	t.walkLeaves(func(n *Node) {
		if best == nil || n.hits < best.hits {
			best = n
		}
	})
	return Bin{Prefix: best.prefix, Hits: best.hits}
}

// Imbalance returns (max − min) / max over leaf hits, the quantity Algorithm
// 2 compares against th_balance (line 16). It returns 0 when the trie has no
// hits.
func (t *Trie) Imbalance() float64 {
	maxH, minH := t.MaxLeaf().Hits, t.MinLeaf().Hits
	if maxH == 0 {
		return 0
	}
	return float64(maxH-minH) / float64(maxH)
}

// maxSplittableLeaf returns the hottest leaf that still has wildcard bits, or
// nil when every leaf is fully specified.
func (t *Trie) maxSplittableLeaf() *Node {
	var best *Node
	t.walkLeaves(func(n *Node) {
		if n.prefix.Bits() >= t.width {
			return
		}
		if best == nil || n.hits > best.hits {
			best = n
		}
	})
	return best
}

// minMergeableParent returns the internal node with two leaf children whose
// combined hits are minimal, excluding the given node (the imminent split
// target must survive the merge). Returns nil when no such pair exists.
func (t *Trie) minMergeableParent(exclude *Node) *Node {
	var best *Node
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		if n.left.IsLeaf() && n.right.IsLeaf() && n.left != exclude && n.right != exclude {
			if best == nil || n.left.hits+n.right.hits < best.left.hits+best.right.hits {
				best = n
			}
		}
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
	return best
}

// Rebalance runs one Algorithm 2 balancing step: if the hit imbalance is at
// least thBalance (the paper uses 0.20), merge the coldest sibling leaf pair
// and split the hottest leaf, keeping the bin count constant. It reports
// whether the trie changed.
func (t *Trie) Rebalance(thBalance float64) bool {
	if t.Imbalance() < thBalance {
		return false
	}
	hot := t.maxSplittableLeaf()
	if hot == nil {
		return false
	}
	cold := t.minMergeableParent(hot)
	if cold == nil {
		// Cannot keep the count fixed; skip rather than grow implicitly.
		return false
	}
	// Merging before splitting matches Algorithm 2's order
	// (removeLowHitNode then devideHighHitNode).
	if err := t.merge(cold); err != nil {
		return false
	}
	if err := t.split(hot); err != nil {
		return false
	}
	return true
}

// Expand splits the hottest leaf without merging, growing the monitoring
// footprint by one entry. The controller invokes this when the trie depth
// keeps increasing (th_expansion, §III-B2), signalling a skewed distribution
// that deserves a bigger monitoring TCAM. It reports whether a split
// happened.
func (t *Trie) Expand() bool {
	hot := t.maxSplittableLeaf()
	if hot == nil {
		return false
	}
	return t.split(hot) == nil
}

// Clone returns a deep copy, including the dirty-tracking state, so the
// shadow-trie round workflow (clone → mutate → populate → commit) sees every
// change accumulated since the last commit.
func (t *Trie) Clone() *Trie {
	var copyNode func(n *Node) *Node
	copyNode = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		return &Node{prefix: n.prefix, hits: n.hits, left: copyNode(n.left), right: copyNode(n.right)}
	}
	c := &Trie{
		width:     t.width,
		root:      copyNode(t.root),
		leaves:    t.leaves,
		seq:       t.seq,
		gen:       t.gen,
		commitSeq: t.commitSeq,
	}
	if len(t.dirty) > 0 {
		c.dirty = make(map[bitstr.Prefix]struct{}, len(t.dirty))
		for p := range t.dirty {
			c.dirty[p] = struct{}{}
		}
	}
	return c
}

// Dirty returns the prefixes whose shape or hit mass changed since the last
// CommitGeneration, in unspecified order. Merged or split intervals appear as
// the enclosing parent prefix; a consumer invalidating cached work should
// treat any cached interval that overlaps a dirty prefix as stale.
func (t *Trie) Dirty() []bitstr.Prefix {
	if len(t.dirty) == 0 {
		return nil
	}
	out := make([]bitstr.Prefix, 0, len(t.dirty))
	for p := range t.dirty {
		out = append(out, p)
	}
	return out
}

// NumDirty returns the number of distinct dirty prefixes.
func (t *Trie) NumDirty() int { return len(t.dirty) }

// ChangeSeq returns the monotonic mutation sequence: it advances on every
// change to leaf shape or mass and never goes backward, so two observations
// with equal ChangeSeq saw identical trie content.
func (t *Trie) ChangeSeq() uint64 { return t.seq }

// Generation returns the number of CommitGeneration calls.
func (t *Trie) Generation() uint64 { return t.gen }

// CommittedSeq returns the value ChangeSeq had at the last CommitGeneration.
func (t *Trie) CommittedSeq() uint64 { return t.commitSeq }

// CommitGeneration marks the current trie content as installed in the data
// plane: the dirty set clears, the generation advances, and the committed
// sequence catches up to ChangeSeq. The controller calls this after a round's
// populate step succeeds. It returns the new generation.
func (t *Trie) CommitGeneration() uint64 {
	t.dirty = nil
	t.gen++
	t.commitSeq = t.seq
	return t.gen
}

// AggregateHits propagates leaf hits upward so every internal node holds its
// subtree total (Algorithm 3's updateFreq) and returns the grand total.
func (t *Trie) AggregateHits() uint64 {
	var rec func(n *Node) uint64
	rec = func(n *Node) uint64 {
		if n.IsLeaf() {
			return n.hits
		}
		n.hits = rec(n.left) + rec(n.right)
		return n.hits
	}
	return rec(t.root)
}

// Validate checks structural invariants: the leaves partition the operand
// domain and the cached leaf count is correct. It is used by tests and
// failure-injection paths.
func (t *Trie) Validate() error {
	bins := t.Leaves()
	if len(bins) != t.leaves {
		return fmt.Errorf("trie: cached leaf count %d, actual %d", t.leaves, len(bins))
	}
	ps := make([]bitstr.Prefix, len(bins))
	for i, b := range bins {
		ps[i] = b.Prefix
	}
	if !bitstr.Partition(ps) {
		return fmt.Errorf("trie: leaves do not partition the %d-bit domain", t.width)
	}
	return nil
}

// String renders the bins compactly, e.g. "00x:5 010:7 011:7 1xx:3".
func (t *Trie) String() string {
	var b strings.Builder
	for i, bin := range t.Leaves() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", bin.Prefix, bin.Hits)
	}
	return b.String()
}
