package serve

import (
	"fmt"

	"github.com/ada-repro/ada/internal/monitor"
)

// DriftConfig tunes a tenant's drift detector.
type DriftConfig struct {
	// Trigger is the total-variation distance at which the detector's
	// signal goes high (default 0.15 — the distribution moved 15% of its
	// mass relative to what the last control round consumed). A value
	// above 1 can never be reached, which disables drift triggering
	// entirely: the pacer then falls back to pure staleness pacing, the
	// paper's fixed cadence.
	Trigger float64
	// Rearm is the distance below which a high signal drops back low
	// (default Trigger/2). The gap between Trigger and Rearm is the
	// Schmitt-trigger hysteresis band: a distance oscillating inside the
	// band never flips the signal, so boundary noise cannot flap rounds.
	Rearm float64
	// MinSamples is the observation mass a snapshot needs before the
	// detector will change its signal (default 32). Right after a round the
	// registers hold a handful of hits whose normalized histogram is all
	// noise; holding the previous level until the window has substance
	// keeps that noise out of the pacer.
	MinSamples uint64
}

// DefaultDriftConfig returns the drift detector defaults.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Trigger: 0.15, Rearm: 0.075, MinSamples: 32}
}

func (c *DriftConfig) normalise() error {
	if c.Trigger == 0 {
		c.Trigger = 0.15
	}
	if c.Trigger < 0 {
		return fmt.Errorf("serve: negative drift trigger %v", c.Trigger)
	}
	if c.Rearm == 0 {
		c.Rearm = c.Trigger / 2
	}
	if c.Rearm < 0 || c.Rearm > c.Trigger {
		return fmt.Errorf("serve: drift rearm %v outside [0, trigger %v]", c.Rearm, c.Trigger)
	}
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
	return nil
}

// Detector turns one tenant's hit-register snapshots into a level-based
// drift signal. The baseline is the histogram the last committed control
// round consumed; Eval compares the current inter-round window against it
// with monitor.HitDistance (total variation over the normalized
// distributions, so absolute rate is factored out) and runs the distance
// through a Schmitt trigger. The signal is a level, not an edge: a round
// suppressed by spacing or budget arbitration still sees the signal high on
// the next tick and fires then, instead of losing the trigger.
//
// A Detector is owned by the pacer goroutine and is not safe for concurrent
// use.
type Detector struct {
	cfg  DriftConfig
	base []uint64
	has  bool
	high bool
	dist float64
}

// NewDetector builds a detector with cfg (zero fields take defaults).
func NewDetector(cfg DriftConfig) (*Detector, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Eval feeds the current hit-register snapshot and returns the drift
// distance plus the (possibly updated) signal level. Without a baseline —
// before the first round, or after Invalidate — the distance is reported as
// 1 and the signal goes high once the window has MinSamples, so a fresh or
// re-laid-out tenant asks for a round as soon as there is evidence to spend
// one on. A snapshot below MinSamples holds the previous level.
func (d *Detector) Eval(cur []uint64) (float64, bool) {
	var total uint64
	for _, v := range cur {
		total += v
	}
	if !d.has {
		d.dist = 1
	} else {
		d.dist = monitor.HitDistance(cur, d.base)
	}
	if total < d.cfg.MinSamples {
		return d.dist, d.high
	}
	switch {
	case d.dist >= d.cfg.Trigger:
		d.high = true
	case d.dist < d.cfg.Rearm:
		d.high = false
	}
	return d.dist, d.high
}

// High returns the current signal level without re-evaluating.
func (d *Detector) High() bool { return d.high }

// Distance returns the drift distance of the last Eval.
func (d *Detector) Distance() float64 { return d.dist }

// Rebase pins hist as the new baseline — call it with the snapshot a just
// committed round consumed — and drops the signal low (the round addressed
// the drift).
func (d *Detector) Rebase(hist []uint64) {
	d.base = append(d.base[:0], hist...)
	d.has = true
	d.high = false
}

// Invalidate discards the baseline — call it when the round changed the
// monitoring layout (expansion, rebalance), because the old histogram's
// bins no longer mean anything. The next adequately-sized snapshot reads as
// full drift, which is the honest answer for an incomparable baseline.
func (d *Detector) Invalidate() {
	d.base = d.base[:0]
	d.has = false
}
